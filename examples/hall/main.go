// Command hall reproduces Examples 1.2 and 6.12: the S-COVERING problem,
// its reduction to the complement of CERTAINTY(q_Hall), and the consistent
// first-order rewriting of Figure 2 (the ℓ = 3 case), whose size grows
// exponentially in ℓ as the paper remarks.
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/fo"
	"cqa/internal/matching"
	"cqa/internal/naive"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
)

func main() {
	// Figure 2 is the rewriting for ℓ = 3.
	q3 := reduction.QHall(3)
	fmt.Println("q_Hall (ℓ=3) =", q3)
	f, err := rewrite.Rewrite(q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsistent first-order rewriting (Figure 2):")
	fmt.Println(f)

	fmt.Println("\nrewriting size by ℓ (exponential growth, cf. Example 6.12):")
	fmt.Println("  ℓ   AST nodes")
	for l := 1; l <= 6; l++ {
		fl, err := rewrite.Rewrite(reduction.QHall(l))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d   %d\n", l, fo.Size(fl))
	}

	// A concrete S-COVERING instance: S = {a, b, c},
	// T1 = {a, b}, T2 = {b}, T3 = {b, c}.
	inst := matching.SCoveringInstance{
		S: []string{"a", "b", "c"},
		T: [][]string{{"a", "b"}, {"b"}, {"b", "c"}},
	}
	fmt.Printf("\nS-COVERING instance: S=%v, T=%v\n", inst.S, inst.T)
	fmt.Println("solvable (pick a from T1, b from T2, c from T3):", inst.Solvable())

	d := reduction.SCoveringToQHall(inst)
	certain, err := core.Certain(q3, d, core.EngineRewriting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CERTAINTY(q_Hall) on the reduced database:", certain)
	fmt.Println("(solvable instances make q_Hall uncertain — the repair that")
	fmt.Println(" picks the covering falsifies the query)")

	// An unsolvable variant: two elements, one set.
	inst2 := matching.SCoveringInstance{
		S: []string{"a", "b"},
		T: [][]string{{"a", "b"}},
	}
	d2 := reduction.SCoveringToQHall(inst2)
	q1 := reduction.QHall(1)
	certain2 := naive.IsCertain(q1, d2)
	fmt.Printf("\nunsolvable instance S=%v, T=%v: solvable=%v, CERTAINTY=%v\n",
		inst2.S, inst2.T, inst2.Solvable(), certain2)
}
