// Command matching reproduces Example 1.1 and Figure 1: the girls-boys
// database, the connection between CERTAINTY(q1) and BIPARTITE PERFECT
// MATCHING, and the Lemma 5.2 reduction run in both directions on random
// graphs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/graphx"
	"cqa/internal/matching"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
)

func main() {
	// Figure 1: R(girl | boy) = "girl knows boy"; S(boy | girl).
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | Bob)
		R(Maria | John)
		S(Bob | Alice)
		S(Bob | Maria)
		S(George | Alice)
		S(George | Maria)
	`)
	q1 := reduction.Q1()
	fmt.Println("q1 =", q1)
	fmt.Println("\nFigure 1 database:")
	fmt.Print(d)

	certain := naive.IsCertain(q1, d)
	fmt.Printf("\nCERTAINTY(q1) = %v\n", certain)
	if r := naive.FalsifyingRepair(q1, d); r != nil {
		fmt.Println("falsifying repair (the matching Alice–George, Maria–Bob):")
		fmt.Print(r)
	}

	// The mutual-knowledge bipartite graph and its perfect matching.
	b := mutualGraph(d)
	fmt.Printf("\nmutual-knowledge graph has perfect matching: %v\n",
		matching.HasPerfectMatching(b))

	// Lemma 5.2 on random graphs: CERTAINTY(q1) == no perfect matching.
	fmt.Println("\nLemma 5.2 on random bipartite graphs (n = side size):")
	rng := rand.New(rand.NewSource(1))
	fmt.Println("  n   edges  perfectMatching  certain(q1)  agree")
	for _, n := range []int{2, 3, 4, 5} {
		g := gen.Bipartite(rng, n, 0.35)
		db2, err := reduction.BPMToQ1(g)
		if err != nil {
			log.Fatal(err)
		}
		pm := matching.HasPerfectMatching(g)
		ct := naive.IsCertain(q1, db2)
		fmt.Printf("  %d   %-5d  %-15v  %-11v  %v\n",
			n, len(g.Edges()), pm, ct, pm != ct)
	}
}

// mutualGraph builds the bipartite graph of girl-boy pairs that know each
// other in both directions — the graph whose perfect matchings correspond
// to repairs falsifying q1.
func mutualGraph(d *db.Database) *graphx.Bipartite {
	girls := d.Relation("R").ColumnValues(0)
	boys := d.Relation("S").ColumnValues(0)
	b := graphx.NewBipartite(girls, boys)
	for _, rf := range d.Facts("R") {
		g, boy := rf.Args[0], rf.Args[1]
		if d.Has(db.F("S", boy, g)) {
			if err := b.AddEdge(g, boy); err != nil {
				log.Fatal(err)
			}
		}
	}
	return b
}
