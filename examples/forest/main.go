// Command forest reproduces Lemma 5.3 and Figure 4: the reduction from
// Undirected Forest Accessibility (UFA) to CERTAINTY(q2), where
// q2 = {R(x,y), ¬S(x|y), ¬T(y|x)}. It builds the Figure 4 database from a
// concrete two-component forest, shows the repair that falsifies q2 when
// the query nodes are disconnected, and sweeps random forests.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqa/internal/gen"
	"cqa/internal/graphx"
	"cqa/internal/naive"
	"cqa/internal/reduction"
)

func main() {
	// A forest with two components: u0–u1–u2–u3 and v0–v1.
	g := graphx.NewUndirected()
	for _, e := range [][2]string{{"u0", "u1"}, {"u1", "u2"}, {"u2", "u3"}, {"v0", "v1"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	q2 := reduction.Q2()
	fmt.Println("q2 =", q2)

	for _, pair := range [][2]string{{"u0", "u3"}, {"u0", "v1"}} {
		inst := reduction.UFAInstance{Graph: g, U: pair[0], V: pair[1]}
		d, err := reduction.UFAToQ2(inst)
		if err != nil {
			log.Fatal(err)
		}
		connected := g.Connected(pair[0], pair[1])
		certain := naive.IsCertain(q2, d)
		fmt.Printf("\nUFA(%s, %s): connected=%v, CERTAINTY(q2)=%v (Lemma 5.3: equal)\n",
			pair[0], pair[1], connected, certain)
		if !certain {
			if r := naive.FalsifyingRepair(q2, d); r != nil {
				fmt.Println("falsifying repair (cf. Figure 4 bottom: every vertex")
				fmt.Println("routes to u or v, covering all R-facts):")
				fmt.Print(r)
			}
		}
		if path := g.PathBetween(pair[0], pair[1]); path != nil {
			fmt.Println("forest path:", path)
		}
	}

	// Random sweep.
	fmt.Println("\nrandom two-component forests:")
	rng := rand.New(rand.NewSource(4))
	agree := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		inst := gen.UFA(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		d, err := reduction.UFAToQ2(inst)
		if err != nil {
			log.Fatal(err)
		}
		if naive.IsCertain(q2, d) == inst.Graph.Connected(inst.U, inst.V) {
			agree++
		}
	}
	fmt.Printf("agreement: %d/%d\n", agree, trials)
}
