// Command answers demonstrates non-Boolean consistent query answering:
// free variables are treated as constants (Section 1 of the paper), which
// can move a query into FO — the Boolean q1 has no consistent first-order
// rewriting, but q1(x) does. The example computes certain answers over an
// inconsistent HR database.
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

func main() {
	// Employee(name | dept): inconsistent department records.
	// Manager(dept | name): disputed managers.
	// Badge(name, dept): all-key audit log of badge usage.
	d := parse.MustDatabase(`
		Employee(ada    | search)
		Employee(ada    | ads)      # conflicting HR records
		Employee(grace  | infra)
		Employee(alan   | search)
		Manager(search  | grace)
		Manager(search  | alan)     # disputed
		Manager(infra   | grace)
		Badge(ada, search)
		Badge(grace, infra)
		Badge(alan, search)
	`)
	fmt.Println("inconsistent database:")
	fmt.Print(d)

	// Which employees certainly work in a department they badge into?
	q1 := parse.MustQuery("Employee(n | d), Badge(n, d)")
	fmt.Println("\nq(n) = which employees n certainly work where they badge in?")
	showAnswers(q1, []string{"n"}, d)

	// Which (dept, name) pairs certainly have a manager who is not an
	// employee of that department?
	q2 := parse.MustQuery("Manager(d | n), !Employee(n | d)")
	fmt.Println("\nq(d) = which departments d certainly have a manager from outside?")
	showAnswers(q2, []string{"d"}, d)

	// The Boolean q1 of the paper is not FO, but with x free it is.
	q3 := parse.MustQuery("R(x | y), !S(y | x)")
	if _, err := rewrite.Rewrite(q3); err != nil {
		fmt.Println("\nBoolean q1 has no rewriting:", err)
	}
	f, err := rewrite.RewriteFree(q3, []string{"x"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("q1(x) IS first-order rewritable; rewriting with x free:")
	fmt.Printf("  %s   (size %d)\n", f, fo.Size(f))
}

func showAnswers(q schema.Query, free []string, d *db.Database) {
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		log.Fatal(err)
	}
	answers, err := core.CertainAnswers(q, free, d)
	if err != nil {
		log.Fatal(err)
	}
	if len(answers) == 0 {
		fmt.Println("  (no certain answers)")
		return
	}
	for _, a := range answers {
		fmt.Printf("  %v\n", []string(a))
	}
}
