// Command mayors reproduces Example 4.6: a concrete schema of four binary
// relations between persons and towns — Likes(p, t) (all-key), Born(p|t),
// Lives(p|t), Mayor(t|p) — with meaningful queries on both sides of the
// dichotomy. It classifies all four queries, prints the rewritings of the
// two FO ones, and evaluates them on an inconsistent poll database.
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/naive"
	"cqa/internal/parse"
)

func main() {
	queries := []struct{ name, src, meaning string }{
		{"q1", "Mayor(t | p), !Lives(p | t)",
			"is there a town whose mayor does not live in it?"},
		{"q2", "Likes(p, t), !Lives(p | t), !Mayor(t | p)",
			"does someone like a town they neither live in nor govern?"},
		{"qa", "Lives(p | t), !Born(p | t), !Likes(p, t)",
			"does someone stay in a town that is not their birth town and which they do not like?"},
		{"qb", "Likes(p, t), !Born(p | t), !Lives(p | t)",
			"does someone like a town they were neither born in nor live in?"},
	}

	fmt.Println("classification (Theorem 4.3):")
	for _, e := range queries {
		q := parse.MustQuery(e.src)
		cls, err := core.Classify(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-2s  %-55s  %s", e.name, e.src, cls.Verdict)
		if cls.Verdict == core.VerdictNotFO {
			fmt.Printf(" (%s, cycle %s ⇄ %s)", cls.Hardness, cls.CycleF, cls.CycleG)
		}
		fmt.Println()
		fmt.Printf("      %s\n", e.meaning)
		if cls.Rewriting != nil {
			fmt.Printf("      rewriting: %s\n", cls.Rewriting)
		}
	}

	// An inconsistent civic database: conflicting residence and birth
	// records for ann; two mayor claims for mons.
	d := parse.MustDatabase(`
		Lives(ann   | mons)
		Lives(ann   | ghent)     # conflicting residence records
		Lives(bob   | mons)
		Lives(cyril | liege)
		Born(ann    | ghent)
		Born(bob    | mons)
		Born(cyril  | mons)
		Likes(ann, mons)
		Likes(bob, liege)
		Likes(cyril, liege)
		Mayor(mons  | ann)
		Mayor(mons  | bob)       # disputed election
		Mayor(liege | cyril)
	`)
	fmt.Println("\ninconsistent database:")
	fmt.Print(d)
	fmt.Printf("repairs: %.0f\n\n", d.NumRepairs())

	for _, e := range queries {
		q := parse.MustQuery(e.src)
		if err := parse.DeclareQueryRelations(d, q); err != nil {
			log.Fatal(err)
		}
		ans, err := core.Certain(q, d, core.EngineAuto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CERTAINTY(%s) = %v\n", e.name, ans)
		if !ans {
			if r := naive.FalsifyingRepair(q, d); r != nil {
				fmt.Printf("  falsified, e.g., by the repair choosing:\n")
				for _, line := range splitLines(r.String()) {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
