// Command quickstart is the smallest end-to-end tour of the library: parse
// a query, classify it under Theorem 4.3, print the consistent first-order
// rewriting and its SQL form, and answer CERTAINTY on a small inconsistent
// database with each engine.
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/parse"
	"cqa/internal/sqlgen"
)

func main() {
	// q3 from Example 4.2/4.5 of the paper: is there a P-block whose
	// value is not forbidden by the (inconsistent) N relation?
	q, err := parse.Query("P(x | y), !N('c' | y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:       ", q)

	cls, err := core.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("weakly-guarded:", cls.WeaklyGuarded)
	fmt.Println("attack graph acyclic:", cls.Acyclic)
	fmt.Println("verdict:     ", cls.Verdict)
	fmt.Println("rewriting:   ", cls.Rewriting)

	sql, err := sqlgen.Translate(cls.Rewriting, sqlgen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nas a single SQL query:")
	fmt.Println(sql)

	// An inconsistent database: the key 'p1' has two conflicting facts.
	d, err := parse.Database(`
		P(p1 | v1)
		P(p1 | v2)
		P(p2 | v2)
		N(c  | v2)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndatabase:")
	fmt.Print(d)
	fmt.Printf("repairs: %.0f\n\n", d.NumRepairs())

	for name, engine := range map[string]core.Engine{
		"rewriting (FO)": core.EngineRewriting,
		"Algorithm 1":    core.EngineDirect,
		"naive repairs":  core.EngineNaive,
	} {
		ans, err := core.Certain(q, d, engine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CERTAINTY via %-15s = %v\n", name, ans)
	}
}
