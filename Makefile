# Developer entry points. `make check` is the full pre-commit gate:
# vet, tests, the race detector, fuzz seed corpora, and a benchmark
# smoke run. Individual targets exist for the impatient.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench bench-smoke planner-smoke experiments serve-smoke store-smoke shard-smoke obs-smoke watch-smoke chaos bench-shard clean

check: vet test race fuzz bench bench-smoke planner-smoke shard-smoke obs-smoke watch-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target runs for $(FUZZTIME) (seed corpus plus mutation).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/parse
	$(GO) test -run '^$$' -fuzz FuzzDatabase -fuzztime $(FUZZTIME) ./internal/parse
	$(GO) test -run '^$$' -fuzz FuzzSQLExec -fuzztime $(FUZZTIME) ./internal/sqlexec
	$(GO) test -run '^$$' -fuzz FuzzServerCertainRequest -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzWALStream -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzCompiledEval -fuzztime $(FUZZTIME) ./internal/fo
	$(GO) test -run '^$$' -fuzz FuzzBitmapEval -fuzztime $(FUZZTIME) ./internal/fo
	$(GO) test -run '^$$' -fuzz FuzzWatchProtocol -fuzztime $(FUZZTIME) ./internal/server

# One iteration per benchmark: compiles and exercises every benchmark
# body without waiting for stable timings.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Compiled-vs-interpreted evaluation smoke: runs the E-series rewriting
# workloads at tiny sizes, regenerates BENCH_eval.json, and fails if any
# of the engine ordering gates break on the largest smoke instance: the
# compiled evaluator must beat the tree walker (E15), the bitmap
# evaluator must beat the scalar compiled one (E18), and the shared-pass
# batch must beat the per-item loop at batch 64 (E18). The gates live in
# certbench's -bench-out mode.
bench-smoke:
	$(GO) run ./cmd/certbench -bench-out BENCH_eval.json -quick

# Planner smoke: the graph deciders' differential tests against the
# naive repair-enumeration oracle (500 random cyclic instances), the
# shared-decision race check, and the end-to-end served-strategy checks
# through the HTTP stack (docs/PLANNER.md).
planner-smoke:
	$(GO) test -run 'TestDifferentialDecidersVsNaive|TestDecidersOnEdgeInstances|TestSharedDecisionRace' -count=1 ./internal/planner
	$(GO) test -run 'TestPlanner' -count=1 ./internal/server

experiments:
	$(GO) run ./cmd/certbench -quick

# Boot a real cqad on a random port, hit /healthz and answer one
# /v1/certain request, then shut it down. Fails loudly at each step.
serve-smoke:
	$(GO) build -o /tmp/cqad-smoke ./cmd/cqad
	@rm -f /tmp/cqad-smoke.addr; \
	/tmp/cqad-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-smoke.addr & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-smoke.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/cqad-smoke.addr) || { kill $$pid; exit 1; }; \
	echo "cqad on $$addr"; \
	curl -fsS "http://$$addr/healthz" || { kill $$pid; exit 1; }; echo; \
	out=$$(curl -fsS -d '{"query": "R(x | y)", "facts": "R(a | 1)\nR(a | 2)"}' \
	    "http://$$addr/v1/certain") || { kill $$pid; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q '"certain": *true' || { echo "unexpected answer"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	rm -f /tmp/cqad-smoke /tmp/cqad-smoke.addr; \
	echo "serve-smoke OK"

# Crash-recovery smoke: boot cqad with a data directory, create a
# database and write facts over HTTP, SIGKILL the daemon (no graceful
# shutdown, no checkpoint), restart on the same directory, and verify
# the facts and the certainty answer survived WAL replay.
store-smoke:
	$(GO) build -o /tmp/cqad-store-smoke ./cmd/cqad
	@rm -rf /tmp/cqad-store-smoke-data /tmp/cqad-store-smoke.addr; \
	/tmp/cqad-store-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-store-smoke.addr \
	    -data /tmp/cqad-store-smoke-data & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-store-smoke.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/cqad-store-smoke.addr) || { kill -9 $$pid; exit 1; }; \
	echo "cqad on $$addr (data: /tmp/cqad-store-smoke-data)"; \
	curl -fsS -d '{"name": "smoke", "facts": "R(a | 1)\nS(z | z)"}' \
	    "http://$$addr/v1/db/create" || { kill -9 $$pid; exit 1; }; echo; \
	curl -fsS -d '{"database": "smoke", "facts": "R(a | 2)\nR(b | 7)"}' \
	    "http://$$addr/v1/db/insert" || { kill -9 $$pid; exit 1; }; echo; \
	echo "SIGKILL $$pid (no graceful shutdown)"; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	rm -f /tmp/cqad-store-smoke.addr; \
	/tmp/cqad-store-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-store-smoke.addr \
	    -data /tmp/cqad-store-smoke-data & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-store-smoke.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/cqad-store-smoke.addr) || { kill -9 $$pid; exit 1; }; \
	echo "restarted cqad on $$addr"; \
	info=$$(curl -fsS "http://$$addr/v1/db/info") || { kill -9 $$pid; exit 1; }; \
	echo "$$info"; \
	echo "$$info" | grep -q '"facts": *4' || { echo "facts lost in crash"; kill -9 $$pid; exit 1; }; \
	out=$$(curl -fsS -d '{"query": "R(x | y), !S(y | x)", "database": "smoke"}' \
	    "http://$$addr/v1/certain") || { kill -9 $$pid; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q '"certain": *true' || { echo "unexpected answer after recovery"; kill -9 $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	rm -rf /tmp/cqad-store-smoke /tmp/cqad-store-smoke.addr /tmp/cqad-store-smoke-data; \
	echo "store-smoke OK"

# Incremental-maintenance smoke: boot a cqad with a fast /v1/watch
# heartbeat and run the cqaload mutable workload with watch
# subscriptions — every served read is validated against the
# contemporaneous shadow AND every pushed flip frame must match ground
# truth at its version with no missed or fabricated flips
# (docs/DELTA.md). Exit 1 on any mismatch.
watch-smoke:
	$(GO) build -o /tmp/cqad-watch-smoke ./cmd/cqad
	$(GO) build -o /tmp/cqaload-watch-smoke ./cmd/cqaload
	@rm -f /tmp/cqad-watch-smoke.addr; \
	/tmp/cqad-watch-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-watch-smoke.addr \
	    -watch-heartbeat 300ms & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-watch-smoke.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/cqad-watch-smoke.addr) || { kill $$pid; exit 1; }; \
	echo "cqad on $$addr (watch-heartbeat 300ms)"; \
	/tmp/cqaload-watch-smoke -url "http://$$addr" -mutate -watch -validate \
	    -writes 120 -readers 2 -db watchsmoke \
	    || { kill -9 $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	rm -f /tmp/cqad-watch-smoke /tmp/cqaload-watch-smoke /tmp/cqad-watch-smoke.addr; \
	echo "watch-smoke OK"

# Sharded-topology smoke: boot a router over four real cqad shard
# processes, SIGKILL one shard, verify explicit degraded serving
# (partial_result only for queries touching the dead shard), restart it,
# and verify full recovery. The heavier fault-injection loop is `make
# chaos` (TestChaosKillRecover at CHAOS_ROUNDS=20).
shard-smoke:
	$(GO) test -run TestShardSmoke -count=1 -v ./internal/shard/chaostest

chaos:
	CHAOS_ROUNDS=20 $(GO) test -run TestChaosKillRecover -count=1 -v ./internal/shard/chaostest

# Observability smoke: boot a router over two real cqad shard processes
# and run the cqaload coherence checker against it — traced explain
# queries, /debug/traces cross-checks, and a linted /metrics Prometheus
# scrape whose counters must move with the traffic (docs/OBSERVABILITY.md).
obs-smoke:
	$(GO) build -o /tmp/cqad-obs-smoke ./cmd/cqad
	$(GO) build -o /tmp/cqaload-obs-smoke ./cmd/cqaload
	@rm -f /tmp/cqad-obs-s0.addr /tmp/cqad-obs-s1.addr /tmp/cqad-obs-rt.addr; \
	/tmp/cqad-obs-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-obs-s0.addr & s0=$$!; \
	/tmp/cqad-obs-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-obs-s1.addr & s1=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-obs-s0.addr ] && [ -s /tmp/cqad-obs-s1.addr ] && break; sleep 0.1; done; \
	a0=$$(cat /tmp/cqad-obs-s0.addr) && a1=$$(cat /tmp/cqad-obs-s1.addr) \
	    || { kill $$s0 $$s1 2>/dev/null; exit 1; }; \
	/tmp/cqad-obs-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-obs-rt.addr \
	    -route "http://$$a0,http://$$a1" -slow-query 5s & rt=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-obs-rt.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/cqad-obs-rt.addr) || { kill $$s0 $$s1 $$rt 2>/dev/null; exit 1; }; \
	echo "router on $$addr over $$a0 $$a1"; \
	/tmp/cqaload-obs-smoke -obs -url "http://$$addr" -requests 8 \
	    || { kill -9 $$s0 $$s1 $$rt 2>/dev/null; exit 1; }; \
	kill -TERM $$s0 $$s1 $$rt; wait $$s0 $$s1 $$rt; \
	rm -f /tmp/cqad-obs-smoke /tmp/cqaload-obs-smoke /tmp/cqad-obs-*.addr; \
	echo "obs-smoke OK"

# Read-throughput scaling of the sharded tier: router over 1 vs 4 shard
# processes under the phased cqaload workload, regenerating
# BENCH_shard.json and failing below a 3x speedup.
bench-shard:
	$(GO) run ./cmd/shardbench

clean:
	$(GO) clean -testcache
