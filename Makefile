# Developer entry points. `make check` is the full pre-commit gate:
# vet, tests, the race detector, fuzz seed corpora, and a benchmark
# smoke run. Individual targets exist for the impatient.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench experiments clean

check: vet test race fuzz bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target runs for $(FUZZTIME) (seed corpus plus mutation).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/parse
	$(GO) test -run '^$$' -fuzz FuzzDatabase -fuzztime $(FUZZTIME) ./internal/parse
	$(GO) test -run '^$$' -fuzz FuzzSQLExec -fuzztime $(FUZZTIME) ./internal/sqlexec

# One iteration per benchmark: compiles and exercises every benchmark
# body without waiting for stable timings.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

experiments:
	$(GO) run ./cmd/certbench -quick

clean:
	$(GO) clean -testcache
