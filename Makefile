# Developer entry points. `make check` is the full pre-commit gate:
# vet, tests, the race detector, fuzz seed corpora, and a benchmark
# smoke run. Individual targets exist for the impatient.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench experiments serve-smoke clean

check: vet test race fuzz bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target runs for $(FUZZTIME) (seed corpus plus mutation).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/parse
	$(GO) test -run '^$$' -fuzz FuzzDatabase -fuzztime $(FUZZTIME) ./internal/parse
	$(GO) test -run '^$$' -fuzz FuzzSQLExec -fuzztime $(FUZZTIME) ./internal/sqlexec
	$(GO) test -run '^$$' -fuzz FuzzServerCertainRequest -fuzztime $(FUZZTIME) ./internal/server

# One iteration per benchmark: compiles and exercises every benchmark
# body without waiting for stable timings.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

experiments:
	$(GO) run ./cmd/certbench -quick

# Boot a real cqad on a random port, hit /healthz and answer one
# /v1/certain request, then shut it down. Fails loudly at each step.
serve-smoke:
	$(GO) build -o /tmp/cqad-smoke ./cmd/cqad
	@rm -f /tmp/cqad-smoke.addr; \
	/tmp/cqad-smoke -addr 127.0.0.1:0 -addr-file /tmp/cqad-smoke.addr & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/cqad-smoke.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/cqad-smoke.addr) || { kill $$pid; exit 1; }; \
	echo "cqad on $$addr"; \
	curl -fsS "http://$$addr/healthz" || { kill $$pid; exit 1; }; echo; \
	out=$$(curl -fsS -d '{"query": "R(x | y)", "facts": "R(a | 1)\nR(a | 2)"}' \
	    "http://$$addr/v1/certain") || { kill $$pid; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q '"certain": *true' || { echo "unexpected answer"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	rm -f /tmp/cqad-smoke /tmp/cqad-smoke.addr; \
	echo "serve-smoke OK"

clean:
	$(GO) clean -testcache
