module cqa

go 1.22
