// Scatter-gather certainty over sharded views.
//
// Why the per-shard combination rules look the way they do: a repair
// picks one fact per block, independently across blocks, and a
// block-hash partition keeps blocks whole, so the repairs of the full
// database are exactly the products of per-shard repairs.
//
//   - A single positive atom is certain iff some block's every fact
//     matches it. Blocks live on one shard, so the query is certain iff
//     it is certain on some shard: per-shard verdicts OR-combine, and
//     only shards that can own a matching block (shard.Touched) need
//     evaluating at all.
//
//   - Multi-atom queries do NOT decompose into per-shard verdicts: with
//     R(a|b) on shard 0 and S(b|c) on shard 1, the join R(x|y), S(y|z)
//     is certain on neither shard alone yet certain on the database.
//     Those queries evaluate on the merged union view — still one
//     process-local evaluation, with the union memoized per version.
//
// See docs/SHARDING.md for the full argument.
package engine

import (
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/schema"
	"cqa/internal/shard"
)

// ShardView is the engine's read interface onto one consistent
// cross-shard version: per-shard databases, a merged union, and the
// global version. *shard.View implements it.
type ShardView interface {
	NumShards() int
	Shard(i int) *db.Database
	Union() *db.Database
	Version() uint64
	// Owner reports which shard holds block (rel, key) under the
	// placement that wrote this view.
	Owner(rel string, key []string) int
}

// CertainSharded evaluates CERTAINTY(q) on a sharded view, without the
// result cache.
func (e *Engine) CertainSharded(q schema.Query, view ShardView) (bool, error) {
	if err := e.begin(); err != nil {
		return false, err
	}
	defer e.end()
	p, err := e.prepare(q)
	if err != nil {
		return false, err
	}
	return e.certainSharded(p, q, view), nil
}

// CertainShardedVersioned is CertainSharded behind the exact-version
// result cache: the global version plays the role a single store's
// version plays in CertainVersioned, and invalidation rides the same
// ApplyWrite path (the sharded facade reports one aggregate change per
// batch, in global-version order).
func (e *Engine) CertainShardedVersioned(q schema.Query, dbID string, view ShardView) (certain, cached bool, err error) {
	if err := e.begin(); err != nil {
		return false, false, err
	}
	defer e.end()
	sig := q.Signature()
	if ans, ok := e.results.get(sig, dbID, view.Version()); ok {
		return ans, true, nil
	}
	p, err := e.prepare(q)
	if err != nil {
		return false, false, err
	}
	certain = e.certainSharded(p, q, view)
	rels := make(map[string]bool)
	for _, a := range q.Atoms() {
		rels[a.Rel] = true
	}
	e.results.put(sig, dbID, view.Version(), rels, certain)
	return certain, false, nil
}

// certainSharded picks the evaluation strategy for a prepared query on
// a view.
func (e *Engine) certainSharded(p *core.Prepared, q schema.Query, view ShardView) bool {
	n := view.NumShards()
	if n == 1 {
		return e.certainWith(p, view.Shard(0))
	}
	if len(q.Lits) == 1 && !q.Lits[0].Neg {
		shards, _ := shard.TouchedOwned(q, n, view.Owner)
		for _, i := range shards {
			if e.certainWith(p, view.Shard(i)) {
				return true
			}
		}
		return false
	}
	// A multi-atom query confined to one shard's blocks (every key
	// ground, all owners equal) needs only that shard; anything else
	// joins across shards and evaluates on the union.
	if shards, all := shard.TouchedOwned(q, n, view.Owner); !all && len(shards) == 1 {
		return e.certainWith(p, view.Shard(shards[0]))
	}
	return e.certainWith(p, view.Union())
}
