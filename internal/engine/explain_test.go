package engine

import (
	"reflect"
	"strings"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/parse"
	"cqa/internal/shard"
	"cqa/internal/store"
)

func TestStrategyMirrorsCertainWith(t *testing.T) {
	queries := map[string]string{
		"fo": "P(x | y), !N('c' | y)",
		// Cyclic (not-FO, Sec 5.1) but negation-free, so neither planner
		// pattern applies: repair enumeration.
		"cyclic": "R(x | y), S(y | x)",
		// The paper's q1 and q2 shapes: planner graph deciders.
		"matching":     "R(x | y), !S(y | x)",
		"reachability": "E(x, y), !B(x | y), !C(y | x)",
	}

	cases := []struct {
		name  string
		opt   Options
		query string
		want  string
	}{
		{"bitmap default", Options{}, "fo", StrategyCompiledBitmap},
		{"bitmap rollback", Options{DisableBitmap: true}, "fo", StrategyCompiled},
		{"parallel", Options{ParallelEval: true}, "fo", StrategyCompiledParallel},
		{"tree-walk switch", Options{ForceTreeWalk: true}, "fo", StrategyTreeWalk},
		{"tree-walk beats bitmap", Options{ForceTreeWalk: true, DisableBitmap: true}, "fo", StrategyTreeWalk},
		{"tree-walk beats parallel", Options{ForceTreeWalk: true, ParallelEval: true}, "fo", StrategyTreeWalk},
		{"naive", Options{}, "cyclic", StrategyNaive},
		{"naive under parallel", Options{ParallelEval: true}, "cyclic", StrategyNaive},
		{"matching", Options{}, "matching", StrategyMatching},
		{"matching under parallel", Options{ParallelEval: true}, "matching", StrategyMatching},
		{"matching rollback", Options{ForceTreeWalk: true}, "matching", StrategyNaive},
		{"reachability", Options{}, "reachability", StrategyReachability},
		{"reachability rollback", Options{ForceTreeWalk: true}, "reachability", StrategyNaive},
	}
	for _, c := range cases {
		e := New(c.opt)
		q := mustQuery(t, queries[c.query])
		p, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := e.Strategy(p); got != c.want {
			t.Errorf("%s: Strategy = %q, want %q", c.name, got, c.want)
		}
	}
	// Batch items never take the parallel hot path.
	e := New(Options{ParallelEval: true})
	p, err := e.Prepare(mustQuery(t, queries["fo"]))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.BatchStrategy(p); got != StrategyCompiledBitmap {
		t.Errorf("BatchStrategy = %q, want %q", got, StrategyCompiledBitmap)
	}
}

func TestPrepareCachedReportsOutcome(t *testing.T) {
	e := New(Options{})
	q := mustQuery(t, "R(x | y), !S(x | y)")
	p1, hit, err := e.PrepareCached(q)
	if err != nil || hit {
		t.Fatalf("first PrepareCached: hit=%v err=%v", hit, err)
	}
	p2, hit, err := e.PrepareCached(q)
	if err != nil || !hit {
		t.Fatalf("second PrepareCached: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Fatal("cache returned a different plan")
	}
}

func TestExplainSurfaces(t *testing.T) {
	e := New(Options{})
	p, err := e.Prepare(mustQuery(t, "P(x | y), !N('c' | y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasCompiled() {
		t.Fatal("FO query should compile")
	}
	if n := p.RewritingSize(); n <= 0 {
		t.Fatalf("RewritingSize = %d", n)
	}
	sum := p.Program().PlanSummary()
	if len(sum) == 0 {
		t.Fatal("empty plan summary")
	}
	for _, line := range sum {
		if !strings.Contains(line, "∈") {
			t.Fatalf("malformed plan line %q", line)
		}
	}
	if got := fo.NodeCount(fo.Truth(true)); got != 1 {
		t.Fatalf("NodeCount(Truth) = %d", got)
	}

	np, err := e.Prepare(mustQuery(t, "R(x | y), S(y | x)"))
	if err != nil {
		t.Fatal(err)
	}
	if np.HasCompiled() || np.RewritingSize() != 0 {
		t.Fatal("not-FO query must report no compiled program and size 0")
	}
}

func TestShardPlanForMirrorsCertainSharded(t *testing.T) {
	sh, err := shard.NewSharded("d", 4, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ApplyDB(parse.MustDatabase("R(a | 1)\nR(b | 2)\nS(a | a)")); err != nil {
		t.Fatal(err)
	}
	view := sh.View()

	plan, shards := ShardPlanFor(mustQuery(t, "R(x | y)"), view)
	if plan != ShardPlanScatter || len(shards) != 4 {
		t.Errorf("open single atom: plan=%s shards=%v", plan, shards)
	}
	plan, shards = ShardPlanFor(mustQuery(t, "R('a' | y)"), view)
	if plan != ShardPlanScatter || len(shards) != 1 {
		t.Errorf("ground single atom: plan=%s shards=%v", plan, shards)
	}
	plan, shards = ShardPlanFor(mustQuery(t, "R('a' | y), !S('a' | y)"), view)
	if plan != ShardPlanPinned || len(shards) != 1 {
		t.Errorf("pinned multi-atom: plan=%s shards=%v", plan, shards)
	}
	plan, shards = ShardPlanFor(mustQuery(t, "R(x | y), !S(y | y)"), view)
	if plan != ShardPlanUnion || !reflect.DeepEqual(shards, []int{0, 1, 2, 3}) {
		t.Errorf("join: plan=%s shards=%v", plan, shards)
	}
}

func TestShardPlanSingleShard(t *testing.T) {
	sh, err := shard.NewSharded("d", 1, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ApplyDB(parse.MustDatabase("R(a | 1)")); err != nil {
		t.Fatal(err)
	}
	plan, shards := ShardPlanFor(mustQuery(t, "R(x | y), !S(y | x)"), sh.View())
	if plan != ShardPlanSingle || !reflect.DeepEqual(shards, []int{0}) {
		t.Errorf("single: plan=%s shards=%v", plan, shards)
	}
}
