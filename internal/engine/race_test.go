package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/parse"
)

// TestConcurrentPreparedAndCache hammers one engine — and through it one
// shared Prepared plan and the LRU cache — from 32 goroutines. Run under
// `go test -race ./...`; this is the concurrency contract of the engine:
// plans are immutable after Prepare, databases are safe for concurrent
// readers, and the cache serializes its own bookkeeping.
func TestConcurrentPreparedAndCache(t *testing.T) {
	const goroutines = 32
	const iters = 60

	e := New(Options{CacheSize: 8, Workers: 4})
	hot := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	rng := rand.New(rand.NewSource(99))

	// A fixed pool of databases, shared read-only by all goroutines, and
	// the expected answers computed sequentially up front.
	type testDB struct {
		d    *db.Database
		want bool
	}
	pool := make([]testDB, 8)
	p, err := e.Prepare(hot)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		d := gen.Database(rng, hot, gen.DBOptions{BlocksPerRelation: 6, MaxBlockSize: 2, DomainPerVariable: 4, ConstantBias: 0.7})
		pool[i] = testDB{d: d, want: p.Certain(d)}
	}

	// Churn queries force cache contention and evictions alongside the
	// hot plan.
	churn := make([]string, 24)
	for i := range churn {
		churn[i] = fmt.Sprintf("Q%d(x | y), !M%d(x | y)", i, i)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tc := pool[(g+i)%len(pool)]
				// Hammer the shared Prepared plan directly.
				if got := p.Certain(tc.d); got != tc.want {
					t.Errorf("shared plan: got %v, want %v", got, tc.want)
					return
				}
				// And through the cache (hot query stays resident).
				got, err := e.Certain(hot, tc.d)
				if err != nil {
					t.Error(err)
					return
				}
				if got != tc.want {
					t.Errorf("cached plan: got %v, want %v", got, tc.want)
					return
				}
				// Churn the LRU with goroutine-specific queries.
				q := parse.MustQuery(churn[(g*iters+i)%len(churn)])
				if _, err := e.Prepare(q); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					_ = e.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	st := e.Stats()
	if st.CachedPlans > 8 {
		t.Fatalf("cache exceeded capacity: %d plans", st.CachedPlans)
	}
	if st.CacheHits == 0 || st.CacheEvictions == 0 {
		t.Fatalf("stress run should hit and evict: %+v", st)
	}
}

// TestConcurrentBatches runs many batches concurrently on one engine,
// with parallel evaluation enabled, so batch workers, the parallel eval
// workers, and the cache all interleave.
func TestConcurrentBatches(t *testing.T) {
	e := New(Options{CacheSize: 16, Workers: 4, ParallelEval: true, MinParallelCandidates: 1})
	rng := rand.New(rand.NewSource(100))
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	items := make([]Item, 12)
	for i := range items {
		items[i] = Item{Query: q, DB: gen.Database(rng, q, gen.DefaultDBOptions())}
	}
	want := e.CertainBatch(context.Background(), items)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := e.CertainBatch(context.Background(), items)
			for i := range got {
				if got[i].Err != nil || got[i].Certain != want[i].Certain {
					t.Errorf("item %d: got (%v, %v), want (%v, nil)", i, got[i].Certain, got[i].Err, want[i].Certain)
					return
				}
			}
		}()
	}
	wg.Wait()
}
