package engine

import (
	"context"
	"fmt"
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

// batchWorkload builds a 64-item batch over nQueries distinct queries
// cycling against one shared snapshot — the duplicate-heavy shape the
// shared-pass grouping collapses.
func batchWorkload(tb testing.TB, nQueries int) ([]Item, *db.Database) {
	tb.Helper()
	d := db.New()
	d.MustDeclare("Lives", 2, 1)
	d.MustDeclare("Born", 2, 1)
	d.MustDeclare("Likes", 2, 2)
	for i := 0; i < 128; i++ {
		p := fmt.Sprintf("p%03d", i%48)
		c := fmt.Sprintf("c%03d", i%31)
		d.MustInsert(db.F("Lives", p, c))
		if i%5 == 0 {
			d.MustInsert(db.F("Born", p, c))
		}
	}
	queries := []string{
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"Lives(p | t), !Born(p | t)",
		"Born(p | t), !Likes(p, t)",
		"Lives(p | t), !Likes(t, p)",
	}
	if nQueries > len(queries) {
		tb.Fatalf("batchWorkload supports up to %d queries", len(queries))
	}
	items := make([]Item, 64)
	for i := range items {
		q, err := parse.Query(queries[i%nQueries])
		if err != nil {
			tb.Fatal(err)
		}
		items[i] = Item{Query: q, DB: d}
	}
	return items, d
}

// The shared pass groups identical (signature, snapshot) items into one
// evaluation: verdicts match the per-item loop exactly and the shared
// counter accounts for every collapsed item.
func TestCertainBatchShares(t *testing.T) {
	items, _ := batchWorkload(t, 4)

	shared := New(Options{Workers: 4})
	defer shared.Close()
	got := shared.CertainBatch(context.Background(), items)

	perItem := New(Options{Workers: 4, DisableBatchSharing: true})
	defer perItem.Close()
	want := perItem.CertainBatch(context.Background(), items)

	for i := range items {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("item %d errored: shared=%v per-item=%v", i, got[i].Err, want[i].Err)
		}
		if got[i].Certain != want[i].Certain {
			t.Fatalf("item %d: shared=%v per-item=%v", i, got[i].Certain, want[i].Certain)
		}
	}
	st := shared.Stats()
	if st.BatchItems != 64 {
		t.Fatalf("BatchItems = %d, want 64", st.BatchItems)
	}
	// 64 items over 4 distinct (query, db) groups: 60 shared.
	if st.BatchSharedItems != 60 {
		t.Fatalf("BatchSharedItems = %d, want 60", st.BatchSharedItems)
	}
	if pst := perItem.Stats(); pst.BatchSharedItems != 0 {
		t.Fatalf("per-item loop reported %d shared items", pst.BatchSharedItems)
	}
}

// Alpha-equivalent queries share a group (grouping is by canonical
// signature), and items on different snapshots do not.
func TestCertainBatchGroupKeys(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	d1 := db.New()
	d1.MustDeclare("R", 2, 1)
	d1.MustInsert(db.F("R", "a", "1"))
	d2 := db.New() // empty R: not certain
	d2.MustDeclare("R", 2, 1)

	q1, err := parse.Query("R(x | y)")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := parse.Query("R(u | w)") // alpha-variant of q1
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{
		{Query: q1, DB: d1}, {Query: q2, DB: d1}, // one group
		{Query: q1, DB: d2}, {Query: q2, DB: d2}, // another group
	}
	res := e.CertainBatch(context.Background(), items)
	if res[0].Certain != true || res[1].Certain != true {
		t.Fatalf("d1 verdicts: %+v", res[:2])
	}
	if res[2].Certain != false || res[3].Certain != false {
		t.Fatalf("d2 verdicts: %+v", res[2:])
	}
	if st := e.Stats(); st.BatchSharedItems != 2 {
		t.Fatalf("BatchSharedItems = %d, want 2 (one per alpha-variant pair)", st.BatchSharedItems)
	}
}

// A failing shared evaluation propagates its error to every member of
// the group, and error counting covers all of them.
func TestCertainBatchSharedErrorFanout(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	bad := schema.NewQuery(
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
		schema.Neg(schema.NewAtom("N", 1, schema.Var("z"))), // unsafe
	)
	d := db.New()
	items := []Item{{Query: bad, DB: d}, {Query: bad, DB: d}, {Query: bad, DB: d}}
	res := e.CertainBatch(context.Background(), items)
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("item %d: expected error", i)
		}
	}
	if st := e.Stats(); st.BatchErrors != 3 {
		t.Fatalf("BatchErrors = %d, want 3", st.BatchErrors)
	}
}

// The grouping bookkeeping is pooled: steady-state CertainBatch calls
// stay within a small per-item allocation budget (the result slice, the
// per-item signature canonicalization, and worker startup — not
// per-call maps, channels, or member slices). This is the allocs/op
// assertion for the sync.Pool satellite; regressions that reintroduce
// per-call bookkeeping allocations trip the bound.
func TestCertainBatchAllocsPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking in -short")
	}
	items, _ := batchWorkload(t, 4)
	e := New(Options{Workers: 4})
	defer e.Close()
	// Warm plan cache, bound cache, lazy bitset indexes, and the scratch
	// pool.
	for i := 0; i < 3; i++ {
		e.CertainBatch(context.Background(), items)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.CertainBatch(context.Background(), items)
		}
	})
	// 64 items: signature canonicalization is ~6 allocs/item and worker
	// startup ~2/worker; 12×items is comfortable headroom above that
	// but far below the unpooled bookkeeping this guards against.
	maxAllocs := int64(12 * len(items))
	if got := res.AllocsPerOp(); got > maxAllocs {
		t.Fatalf("CertainBatch allocs/op = %d, want ≤ %d (pooled scratch regressed?)", got, maxAllocs)
	}
	t.Logf("CertainBatch: %d ns/op, %d allocs/op (%d items)", res.NsPerOp(), res.AllocsPerOp(), len(items))
}

func BenchmarkCertainBatch(b *testing.B) {
	items, _ := batchWorkload(b, 4)
	e := New(Options{Workers: 4})
	defer e.Close()
	e.CertainBatch(context.Background(), items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CertainBatch(context.Background(), items)
	}
}

func BenchmarkCertainBatchPerItem(b *testing.B) {
	items, _ := batchWorkload(b, 4)
	e := New(Options{Workers: 4, DisableBatchSharing: true})
	defer e.Close()
	e.CertainBatch(context.Background(), items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CertainBatch(context.Background(), items)
	}
}
