package engine

import (
	"fmt"
	"sync/atomic"
)

// statsCounters holds the engine's live counters; cache counters live on
// the planCache itself.
type statsCounters struct {
	batches     atomic.Uint64
	items       atomic.Uint64
	sharedItems atomic.Uint64
	errors      atomic.Uint64
	cancelled   atomic.Uint64
	busyWorkers atomic.Int64
	peakBusy    atomic.Int64
}

func (s *statsCounters) observePeak(busy int64) {
	for {
		peak := s.peakBusy.Load()
		if busy <= peak || s.peakBusy.CompareAndSwap(peak, busy) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	// CacheHits and CacheMisses count Prepare lookups; CacheEvictions
	// counts plans dropped by the LRU policy; CachedPlans is the current
	// cache population.
	CacheHits, CacheMisses, CacheEvictions uint64
	CachedPlans                            int

	// ResultHits and ResultMisses count CertainVersioned lookups in the
	// versioned result cache; ResultInvalidations counts entries dropped
	// because a write touched a relation their query mentions;
	// CachedResults is the current population.
	ResultHits, ResultMisses, ResultInvalidations uint64
	CachedResults                                 int

	// Batches and BatchItems count CertainBatch calls and the items they
	// completed; BatchErrors counts items that returned an error
	// (including recovered panics) and CancelledItems the items skipped
	// because the batch context was cancelled. BatchSharedItems counts
	// items answered by another item's shared-pass evaluation (grouped by
	// identical canonical signature and database snapshot) instead of an
	// evaluation of their own.
	Batches, BatchItems, BatchErrors, CancelledItems uint64
	BatchSharedItems                                 uint64

	// Workers is the configured pool width. BusyWorkers is the number of
	// workers evaluating an item at snapshot time; PeakBusyWorkers the
	// maximum ever observed — together they show pool utilization.
	Workers         int
	BusyWorkers     int
	PeakBusyWorkers int
}

// Stats returns a snapshot of the engine's counters. Counters are read
// individually (not under one lock), so a snapshot taken while work is in
// flight is approximate.
func (e *Engine) Stats() Stats {
	hits, misses, evictions, size := e.cache.counters()
	rhits, rmisses, rinval, rsize := e.results.counters()
	return Stats{
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		CachedPlans:     size,

		ResultHits:          rhits,
		ResultMisses:        rmisses,
		ResultInvalidations: rinval,
		CachedResults:       rsize,
		Batches:          e.stats.batches.Load(),
		BatchItems:       e.stats.items.Load(),
		BatchSharedItems: e.stats.sharedItems.Load(),
		BatchErrors:      e.stats.errors.Load(),
		CancelledItems:   e.stats.cancelled.Load(),
		Workers:         e.opt.Workers,
		BusyWorkers:     int(e.stats.busyWorkers.Load()),
		PeakBusyWorkers: int(e.stats.peakBusy.Load()),
	}
}

// String renders the snapshot as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"cache: %d hits, %d misses, %d evictions, %d plans | results: %d hits, %d misses, %d invalidations, %d cached | batch: %d batches, %d items, %d shared, %d errors, %d cancelled | workers: %d/%d busy (peak %d)",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CachedPlans,
		s.ResultHits, s.ResultMisses, s.ResultInvalidations, s.CachedResults,
		s.Batches, s.BatchItems, s.BatchSharedItems, s.BatchErrors, s.CancelledItems,
		s.BusyWorkers, s.Workers, s.PeakBusyWorkers)
}
