// Package engine is the concurrent serving layer on top of core: a
// thread-safe LRU plan cache that memoizes core.Prepare (classification +
// consistent first-order rewriting + its compiled program, the expensive
// query-only work), a worker-pool batch API that fans independent
// CERTAINTY checks across goroutines, and an optional parallel evaluation
// hot path that splits top-level quantifier iteration of the rewriting
// across workers on large databases. Rewritings evaluate through the
// compiled pipeline (interned constants, slot-based environments,
// index-driven quantifier restriction — docs/EVAL.md) unless
// Options.ForceTreeWalk selects the interpreting tree walker. See
// docs/ENGINE.md for the architecture.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/delta"
	"cqa/internal/schema"
)

// ErrClosed is returned by engine methods after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine. The zero value selects sensible defaults.
type Options struct {
	// CacheSize is the maximum number of cached plans; ≤ 0 selects
	// DefaultCacheSize.
	CacheSize int
	// Workers bounds the goroutines used by CertainBatch and by the
	// parallel evaluation hot path; ≤ 0 selects GOMAXPROCS.
	Workers int
	// ParallelEval enables the fo parallel hot path for single-item
	// Certain calls: top-level quantifier iteration is split across
	// Workers goroutines once the candidate list reaches
	// MinParallelCandidates values. Batch items always evaluate
	// sequentially per item — the batch itself provides the parallelism.
	ParallelEval bool
	// MinParallelCandidates is the fan-out threshold for ParallelEval;
	// ≤ 0 selects fo.DefaultMinParallelCandidates.
	MinParallelCandidates int
	// ResultCacheSize is the maximum number of cached CERTAINTY answers
	// for versioned databases (CertainVersioned); ≤ 0 selects
	// DefaultResultCacheSize.
	ResultCacheSize int
	// ForceTreeWalk evaluates rewritings with the interpreting tree
	// walker (fo.Eval) instead of the compiled evaluation pipeline
	// (docs/EVAL.md). The compiled path is the default and is
	// differentially tested against the tree walker; this is the
	// operational rollback switch.
	ForceTreeWalk bool
	// DisableBitmap evaluates compiled rewritings on the scalar
	// per-candidate tree instead of the bitmap-vectorized tree
	// (docs/EVAL.md). The bitmap path is the default for programs with
	// vectorizable quantifiers and is differentially tested against the
	// scalar pipeline; this is its ForceTreeWalk-style rollback switch.
	DisableBitmap bool
	// DisableBatchSharing makes CertainBatch evaluate every item
	// independently instead of grouping identical (query, snapshot)
	// items into one shared evaluation. Rollback switch for the
	// shared-pass batching; also the per-item baseline certbench's E18
	// experiment measures against.
	DisableBatchSharing bool
}

// DefaultCacheSize is the plan-cache capacity when Options.CacheSize ≤ 0.
const DefaultCacheSize = 256

// DefaultResultCacheSize is the result-cache capacity when
// Options.ResultCacheSize ≤ 0.
const DefaultResultCacheSize = 4096

// Engine answers CERTAINTY(q) for serving workloads: plans are prepared
// once per canonical query signature and reused, and batches of
// independent (query, database) checks run on a worker pool. An Engine is
// safe for concurrent use by multiple goroutines.
type Engine struct {
	opt     Options
	cache   *planCache
	results *resultCache
	stats   statsCounters

	// delta maintains registered watches incrementally (watch.go);
	// hooks holds the observability callbacks installed after New.
	delta *delta.Manager
	hooks hooksPtr

	// Lifecycle: begin/end bracket every public operation so Close can
	// refuse new work and wait for in-flight work to drain.
	closeMu  sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// New returns an engine with the given options.
func New(opt Options) *Engine {
	if opt.CacheSize <= 0 {
		opt.CacheSize = DefaultCacheSize
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.ResultCacheSize <= 0 {
		opt.ResultCacheSize = DefaultResultCacheSize
	}
	e := &Engine{
		opt:     opt,
		cache:   newPlanCache(opt.CacheSize),
		results: newResultCache(opt.ResultCacheSize),
	}
	e.delta = newDeltaManager(e)
	return e
}

// begin registers one in-flight operation; it fails once Close has run.
// The closed check and the WaitGroup Add happen under one lock so Close
// cannot observe an empty WaitGroup while an operation is about to start.
func (e *Engine) begin() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.inflight.Add(1)
	return nil
}

func (e *Engine) end() { e.inflight.Done() }

// Close stops the engine: subsequent Prepare/Certain/CertainBatch calls
// fail with ErrClosed, and Close blocks until every in-flight call —
// including all batch workers — has returned. Close is idempotent and
// safe to call concurrently; every call waits for the drain. The plan
// cache is left intact so Stats remains meaningful after shutdown.
func (e *Engine) Close() {
	e.closeMu.Lock()
	e.closed = true
	e.closeMu.Unlock()
	e.inflight.Wait()
	e.delta.Close()
}

// Prepare returns the prepared plan for q, consulting the LRU cache
// first. Queries that are alpha-equivalent (identical up to literal order
// and variable renaming) share a plan; the Boolean CERTAINTY answer is
// invariant under renaming, though the cached Classification may display
// the variable names of the first query that produced the plan.
// Preparation errors are not cached.
func (e *Engine) Prepare(q schema.Query) (*core.Prepared, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.end()
	return e.prepare(q)
}

// prepare is Prepare without the lifecycle bracket, for internal callers
// that have already registered with begin.
func (e *Engine) prepare(q schema.Query) (*core.Prepared, error) {
	return e.prepareSig(q.Signature(), q)
}

// prepareSig is prepare for callers that already hold q's canonical
// signature (batch grouping computes it anyway), saving the
// re-canonicalization.
func (e *Engine) prepareSig(sig string, q schema.Query) (*core.Prepared, error) {
	if p, ok := e.cache.get(sig); ok {
		return p, nil
	}
	// Prepare outside the cache lock: concurrent misses for the same
	// signature duplicate work instead of serializing all queries behind
	// one slow rewrite.
	p, err := core.Prepare(q)
	if err != nil {
		return nil, err
	}
	e.cache.put(sig, p)
	return p, nil
}

// Certain answers CERTAINTY(q) on d using a cached plan, with the
// parallel evaluation hot path when Options.ParallelEval is set.
func (e *Engine) Certain(q schema.Query, d *db.Database) (bool, error) {
	if err := e.begin(); err != nil {
		return false, err
	}
	defer e.end()
	p, err := e.prepare(q)
	if err != nil {
		return false, err
	}
	return e.certainWith(p, d), nil
}

// certainWith evaluates a prepared plan on d honouring the engine's
// evaluation options (parallel fan-out, tree-walk rollback).
func (e *Engine) certainWith(p *core.Prepared, d *db.Database) bool {
	if e.opt.ForceTreeWalk {
		return p.CertainTreeWalk(d)
	}
	if e.opt.ParallelEval {
		return p.CertainParallel(d, e.opt.Workers, e.opt.MinParallelCandidates)
	}
	if e.opt.DisableBitmap {
		return p.Certain(d)
	}
	return p.CertainBitmap(d)
}

// CertainVersioned answers CERTAINTY(q) on one immutable snapshot of a
// named, versioned database (the store layer), consulting the result
// cache first: repeated checks of the same query against the same
// version — including versions reached only by writes to relations the
// query does not mention — return the memoized answer without touching
// the database. cached reports whether the answer came from the cache.
//
// dbID must name the database stably across versions, and writes to it
// must be reported via ApplyWrite in version order (wire the store's
// OnApply hook to ApplyWrite). d must be the immutable snapshot at
// exactly version.
func (e *Engine) CertainVersioned(q schema.Query, dbID string, version uint64, d *db.Database) (certain, cached bool, err error) {
	if err := e.begin(); err != nil {
		return false, false, err
	}
	defer e.end()
	// The result cache is consulted before the plan cache: a result hit
	// answers without preparing (or even touching d) at all.
	sig := q.Signature()
	if ans, ok := e.results.get(sig, dbID, version); ok {
		return ans, true, nil
	}
	p, err := e.prepare(q)
	if err != nil {
		return false, false, err
	}
	certain = e.certainWith(p, d)
	rels := make(map[string]bool)
	for _, a := range q.Atoms() {
		rels[a.Rel] = true
	}
	e.results.put(sig, dbID, version, rels, certain)
	return certain, false, nil
}

// ApplyWrite reports that dbID moved to newVersion by a write touching
// touchedRels: cached answers for queries mentioning any touched
// relation are invalidated, all other answers for dbID remain valid at
// the new version. Calls must arrive in version order per database.
func (e *Engine) ApplyWrite(dbID string, newVersion uint64, touchedRels []string) {
	e.results.applyWrite(dbID, newVersion, touchedRels)
}

// DropDB forgets every cached answer for dbID and closes every watch
// registered against it (the database was deleted or replaced
// wholesale; watch consumers re-register against the fresh state).
func (e *Engine) DropDB(dbID string) {
	e.results.dropDB(dbID)
	e.delta.DropDB(dbID)
}

// Item is one independent CERTAINTY check of a batch.
type Item struct {
	Query schema.Query
	DB    *db.Database
}

// Result is the outcome of one batch item. Exactly one of Certain being
// meaningful or Err being non-nil holds; items skipped because the
// context was cancelled carry the context error.
type Result struct {
	Certain bool
	Err     error
}

// batchKey identifies one shared evaluation of a batch: a canonical
// query signature against one database snapshot. Alpha-equivalent
// queries against the pointer-identical snapshot are one key.
type batchKey struct {
	sig string
	db  *db.Database
}

// batchScratch is the reusable grouping bookkeeping of one CertainBatch
// call, pooled so steady-state batches allocate only the caller-visible
// result slice. Inner member slices keep their capacity across calls.
type batchScratch struct {
	groupOf map[batchKey]int32
	sigs    []string  // group → canonical signature ("" when sharing is off)
	members [][]int32 // group → item indexes, in item order
}

var batchPool = sync.Pool{
	New: func() any { return &batchScratch{groupOf: make(map[batchKey]int32)} },
}

func (sc *batchScratch) addGroup(sig string) int32 {
	g := len(sc.members)
	if g < cap(sc.members) {
		sc.members = sc.members[:g+1]
		sc.members[g] = sc.members[g][:0]
	} else {
		sc.members = append(sc.members, nil)
	}
	sc.sigs = append(sc.sigs, sig)
	return int32(g)
}

func (sc *batchScratch) release() {
	clear(sc.groupOf)
	for i := range sc.members {
		sc.members[i] = sc.members[i][:0]
	}
	sc.members = sc.members[:0]
	sc.sigs = sc.sigs[:0]
	batchPool.Put(sc)
}

// CertainBatch fans the independent checks across the engine's worker
// pool and returns one result per item, in order. Items are first
// grouped by (canonical query signature, database snapshot): every
// group evaluates once in a shared pass — one plan, one bound program,
// one verdict fanned out to all members — so a batch with duplicated
// hot checks pays for each distinct check once (the sharded router
// preserves this: repeated named-database reads resolve to the
// pointer-identical memoized union snapshot). Options.DisableBatchSharing
// restores the per-item loop. Each group is evaluated sequentially (the
// batch is the parallelism); errors — including panics from malformed
// inputs — are isolated per group. Cancelling ctx stops dispatching new
// groups; in-flight groups run to completion.
func (e *Engine) CertainBatch(ctx context.Context, items []Item) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(items))
	if err := e.begin(); err != nil {
		for i := range results {
			results[i] = Result{Err: err}
		}
		return results
	}
	defer e.end()
	e.stats.batches.Add(1)

	sc := batchPool.Get().(*batchScratch)
	defer sc.release()
	share := !e.opt.DisableBatchSharing
	for i := range items {
		var g int32
		if share {
			k := batchKey{sig: items[i].Query.Signature(), db: items[i].DB}
			gi, ok := sc.groupOf[k]
			if !ok {
				gi = sc.addGroup(k.sig)
				sc.groupOf[k] = gi
			}
			g = gi
		} else {
			g = sc.addGroup("")
		}
		sc.members[g] = append(sc.members[g], int32(i))
	}
	nGroups := len(sc.members)

	workers := e.opt.Workers
	if workers > nGroups {
		workers = nGroups
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= nGroups {
					return
				}
				mem := sc.members[g]
				if ctx.Err() != nil {
					err := context.Cause(ctx)
					for _, i := range mem {
						results[i] = Result{Err: err}
					}
					e.stats.cancelled.Add(uint64(len(mem)))
					continue
				}
				busy := e.stats.busyWorkers.Add(1)
				e.stats.observePeak(busy)
				res := e.certainIsolated(items[mem[0]], sc.sigs[g])
				e.stats.busyWorkers.Add(-1)
				for _, i := range mem {
					results[i] = res
				}
				e.stats.items.Add(uint64(len(mem)))
				if len(mem) > 1 {
					e.stats.sharedItems.Add(uint64(len(mem) - 1))
				}
				if res.Err != nil {
					e.stats.errors.Add(uint64(len(mem)))
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// certainIsolated runs one check, converting panics (e.g. from malformed
// formulas or databases) into per-item errors so one bad item cannot take
// down the batch. sig is the item's canonical signature when the caller
// already computed it ("" recomputes). The dispatch mirrors
// BatchStrategy: batch items never take the parallel fan-out (the batch
// is the parallelism), bitmap evaluation is the default, and
// ForceTreeWalk/DisableBitmap roll back.
func (e *Engine) certainIsolated(it Item, sig string) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Errorf("engine: item panicked: %v", r)}
		}
	}()
	if sig == "" {
		sig = it.Query.Signature()
	}
	p, err := e.prepareSig(sig, it.Query)
	if err != nil {
		return Result{Err: err}
	}
	if e.opt.ForceTreeWalk {
		return Result{Certain: p.CertainTreeWalk(it.DB)}
	}
	if e.opt.DisableBitmap {
		return Result{Certain: p.Certain(it.DB)}
	}
	return Result{Certain: p.CertainBitmap(it.DB)}
}
