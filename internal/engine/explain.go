package engine

import (
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/planner"
	"cqa/internal/schema"
	"cqa/internal/shard"
)

// This file is the introspection surface behind explain output and the
// strategy/cache metric labels: it names, without evaluating anything,
// the evaluation strategy certainWith will take and the shard plan
// certainSharded will take. The names feed the `eval_total{strategy=…}`
// metric and the `"explain": true` response, and are the observable
// hooks the ROADMAP's meta-engine strategy selector will build on.

// Evaluation strategy names, as reported by Strategy and carried in the
// strategy metric label.
const (
	// StrategyCompiled evaluates the compiled FO rewriting on the scalar
	// per-candidate tree (docs/EVAL.md).
	StrategyCompiled = "compiled"
	// StrategyCompiledBitmap evaluates the compiled rewriting on the
	// bitmap-vectorized tree — word-parallel quantifier sweeps over
	// IDSet membership words (docs/EVAL.md). Default for programs with
	// vectorizable quantifiers; Options.DisableBitmap rolls back to
	// StrategyCompiled.
	StrategyCompiledBitmap = "compiled-bitmap"
	// StrategyCompiledParallel is the compiled rewriting with top-level
	// quantifier fan-out (Options.ParallelEval).
	StrategyCompiledParallel = "compiled-parallel"
	// StrategyTreeWalk interprets the rewriting with fo.Eval — selected
	// by Options.ForceTreeWalk or when no compiled program is available.
	StrategyTreeWalk = "tree-walk"
	// The non-FO strategies are named by the planner, which selects them
	// per query shape (docs/PLANNER.md): Hopcroft–Karp bipartite matching
	// for the mutual-negation pattern, union-find reachability for the
	// all-key edge pattern, and repair enumeration as the last resort.
	StrategyMatching     = planner.StrategyMatching
	StrategyReachability = planner.StrategyReachability
	StrategyNaive        = planner.StrategyNaive
)

// Strategy reports the evaluation strategy certainWith takes for p under
// this engine's options. The mapping mirrors certainWith exactly: not
// in FO → the planner's verdict (a polynomial graph decider when the
// query shape has one, repair enumeration otherwise — ForceTreeWalk
// disables the deciders too, it is the rollback switch for both
// pipelines); ForceTreeWalk or a missing compiled program → tree walker;
// otherwise the compiled pipeline, parallel when ParallelEval is set.
func (e *Engine) Strategy(p *core.Prepared) string {
	return e.strategy(p, e.opt.ParallelEval)
}

// BatchStrategy is Strategy for CertainBatch items, which always
// evaluate sequentially per item (the batch is the parallelism).
func (e *Engine) BatchStrategy(p *core.Prepared) string {
	return e.strategy(p, false)
}

func (e *Engine) strategy(p *core.Prepared, parallel bool) string {
	if !p.InFO() {
		if e.opt.ForceTreeWalk {
			return StrategyNaive
		}
		return p.PlanStrategy()
	}
	if e.opt.ForceTreeWalk || !p.HasCompiled() {
		return StrategyTreeWalk
	}
	if parallel {
		return StrategyCompiledParallel
	}
	if !e.opt.DisableBitmap && p.HasBitmap() {
		return StrategyCompiledBitmap
	}
	return StrategyCompiled
}

// Options returns a copy of the engine's configuration (for explain
// verification and operator tooling).
func (e *Engine) Options() Options { return e.opt }

// CertainWith evaluates a prepared plan on d honouring the engine's
// options — the same dispatch Certain takes after preparation. Servers
// that already hold p (from PrepareCached, for explain output) use this
// so the strategy explain reports is the strategy actually executed.
func (e *Engine) CertainWith(p *core.Prepared, d *db.Database) (bool, error) {
	if err := e.begin(); err != nil {
		return false, err
	}
	defer e.end()
	return e.certainWith(p, d), nil
}

// PrepareCached is Prepare plus the plan-cache outcome: hit reports
// whether the plan came from the cache. Explain and the cache-outcome
// metric label need the distinction; Prepare alone hides it.
func (e *Engine) PrepareCached(q schema.Query) (p *core.Prepared, hit bool, err error) {
	if err := e.begin(); err != nil {
		return nil, false, err
	}
	defer e.end()
	sig := q.Signature()
	if p, ok := e.cache.get(sig); ok {
		return p, true, nil
	}
	p, err = core.Prepare(q)
	if err != nil {
		return nil, false, err
	}
	e.cache.put(sig, p)
	return p, false, nil
}

// Shard plan names, as reported by ShardPlanFor.
const (
	// ShardPlanSingle: one shard holds everything; evaluate there.
	ShardPlanSingle = "single"
	// ShardPlanScatter: single positive atom; per-shard verdicts
	// OR-combine over the touched shards.
	ShardPlanScatter = "scatter"
	// ShardPlanPinned: multi-atom query whose ground keys confine it to
	// one shard's blocks.
	ShardPlanPinned = "pinned"
	// ShardPlanUnion: joins across shards; evaluate on the merged union.
	ShardPlanUnion = "union"
)

// ShardPlanFor reports, without evaluating, the plan certainSharded
// takes for q on view and the shards it consults (every shard for the
// union plan). The logic must mirror certainSharded exactly; the
// sharded differential tests cross-check the two.
func ShardPlanFor(q schema.Query, view ShardView) (plan string, shards []int) {
	n := view.NumShards()
	if n == 1 {
		return ShardPlanSingle, []int{0}
	}
	if len(q.Lits) == 1 && !q.Lits[0].Neg {
		touched, _ := shard.TouchedOwned(q, n, view.Owner)
		return ShardPlanScatter, touched
	}
	if touched, all := shard.TouchedOwned(q, n, view.Owner); !all && len(touched) == 1 {
		return ShardPlanPinned, touched
	}
	shards = make([]int, n)
	for i := range shards {
		shards[i] = i
	}
	return ShardPlanUnion, shards
}
