package engine

import (
	"sync/atomic"

	"cqa/internal/db"
	"cqa/internal/delta"
	"cqa/internal/obs"
	"cqa/internal/schema"
	"cqa/internal/store"
)

// WatchHooks are the observability callbacks of the engine's delta
// layer. The engine is constructed before the serving layer's metrics
// registry exists, so hooks are installed afterwards with
// SetWatchHooks; every field is optional.
type WatchHooks struct {
	// OnReeval is invoked once per (change, registration) decision with
	// the outcome (delta.Outcome*).
	OnReeval func(db, outcome string)
	// OnFlip is invoked once per published verdict flip.
	OnFlip func(db string)
	// OnFanin is invoked whenever the watch population changes, with the
	// total watch count and the distinct (signature, database) group
	// count backing them; watches − groups is the number of
	// subscriptions sharing another subscription's evaluation.
	OnFanin func(watches, groups int)
	// OnResultInvalidate is invoked once per result-cache entry
	// invalidated by a write, with the touched relation that triggered
	// the invalidation.
	OnResultInvalidate func(rel string)
	// Tracer records a "delta" span per processed change.
	Tracer *obs.Tracer
}

// SetWatchHooks installs the delta observability hooks. Must be called
// before traffic; hooks installed later apply to subsequent changes.
func (e *Engine) SetWatchHooks(h WatchHooks) {
	e.hooks.Store(&h)
	e.delta.SetTracer(h.Tracer)
	e.results.setOnInvalidate(h.OnResultInvalidate)
}

// newDeltaManager builds the engine's delta manager. The manager's
// hooks dereference the engine's installable hook set, so the manager
// can be created in New, before SetWatchHooks runs.
func newDeltaManager(e *Engine) *delta.Manager {
	return delta.New(delta.Options{
		OnReeval: func(db, outcome string) {
			if h := e.hooks.Load(); h != nil && h.OnReeval != nil {
				h.OnReeval(db, outcome)
			}
		},
		OnFlip: func(db string) {
			if h := e.hooks.Load(); h != nil && h.OnFlip != nil {
				h.OnFlip(db)
			}
		},
		OnFanin: func(watches, groups int) {
			if h := e.hooks.Load(); h != nil && h.OnFanin != nil {
				h.OnFanin(watches, groups)
			}
		},
	})
}

// hooksPtr is the engine-side storage for WatchHooks.
type hooksPtr = atomic.Pointer[WatchHooks]

// RegisterWatch registers q against the named database for incremental
// certainty maintenance: the returned State is the verdict at the
// version the watch starts from, and every later verdict flip is
// delivered on Watch.Events (bounded queue; slow consumers are
// resynced, never block the delta worker). snap must be a consistent
// (snapshot, version) capture of dbID, and dbID's changes must be fed
// via DeltaApply.
func (e *Engine) RegisterWatch(q schema.Query, dbID string, snap delta.Snapshot) (*delta.Watch, delta.State, error) {
	if err := e.begin(); err != nil {
		return nil, delta.State{}, err
	}
	defer e.end()
	p, err := e.prepare(q)
	if err != nil {
		return nil, delta.State{}, err
	}
	return e.delta.Register(dbID, q.Signature(), p, snap)
}

// UnregisterWatch removes a watch; its event channel is closed.
func (e *Engine) UnregisterWatch(w *delta.Watch) { e.delta.Unregister(w) }

// DeltaApply feeds one acknowledged write batch of dbID to the delta
// layer. dbFn must return the snapshot at exactly c.Version; it is
// resolved lazily, so an unwatched database pays nothing. Safe to call
// under the store's writer lock (never blocks on delta work).
func (e *Engine) DeltaApply(dbID string, c store.Change, dbFn func() *db.Database) {
	e.delta.Apply(dbID, c, dbFn)
}

// DeltaCounters reports the cumulative skip/re-evaluate/flip decision
// counts of the delta layer.
func (e *Engine) DeltaCounters() (skipped, reevaluated, flipped uint64) {
	return e.delta.Counters()
}

// DeltaQuiesce blocks until every change fed for dbID before the call
// has been processed. Test and benchmark hook.
func (e *Engine) DeltaQuiesce(dbID string) { e.delta.Quiesce(dbID) }

// WatchFanIn reports the delta layer's registration population: total
// watches and the distinct (signature, database) groups backing them.
func (e *Engine) WatchFanIn() (watches, groups int) { return e.delta.FanIn() }
