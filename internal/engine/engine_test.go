package engine

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func figure1() *db.Database {
	return parse.MustDatabase(`
		P(p1 | v1)
		P(p1 | v2)
		N(c | v2)
	`)
}

func mustQuery(t *testing.T, src string) schema.Query {
	t.Helper()
	q, err := parse.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCertainMatchesCore(t *testing.T) {
	e := New(Options{})
	q := mustQuery(t, "P(x | y), !N('c' | y)")
	d := figure1()
	want, err := core.Certain(q, d, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("engine = %v, core = %v", got, want)
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CachedPlans != 1 {
		t.Fatalf("expected one miss and one cached plan, got %+v", st)
	}
}

func TestPrepareCacheHitsAlphaVariants(t *testing.T) {
	e := New(Options{})
	variants := []string{
		"R(x | y), !S(x | y)",
		"R(a | b), !S(a | b)",
		"!S(u | w), R(u | w)",
	}
	var first *core.Prepared
	for i, src := range variants {
		p, err := e.Prepare(mustQuery(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = p
		} else if p != first {
			t.Fatalf("variant %q did not hit the cached plan", src)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
}

func TestPrepareErrorNotCached(t *testing.T) {
	e := New(Options{})
	bad := schema.NewQuery(
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
		schema.Neg(schema.NewAtom("N", 1, schema.Var("z"))), // unsafe: z not positive
	)
	if _, err := e.Prepare(bad); err == nil {
		t.Fatal("expected validation error")
	}
	st := e.Stats()
	if st.CachedPlans != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(Options{CacheSize: 2})
	queries := []string{"A(x | y)", "B(x | y)", "C(x | y)"}
	for _, src := range queries {
		if _, err := e.Prepare(mustQuery(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CachedPlans != 2 || st.CacheEvictions != 1 {
		t.Fatalf("plans/evictions = %d/%d, want 2/1", st.CachedPlans, st.CacheEvictions)
	}
	// A was least recently used and must have been evicted: preparing it
	// again misses.
	before := st.CacheMisses
	if _, err := e.Prepare(mustQuery(t, "A(x | y)")); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().CacheMisses; got != before+1 {
		t.Fatalf("expected re-prepare of evicted plan to miss (misses %d -> %d)", before, got)
	}
	// B stays cached (it was touched after A): preparing it hits.
	beforeHits := e.Stats().CacheHits
	if _, err := e.Prepare(mustQuery(t, "C(x | y)")); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().CacheHits; got != beforeHits+1 {
		t.Fatal("expected C to still be cached")
	}
}

func TestCertainBatch(t *testing.T) {
	e := New(Options{Workers: 4})
	rng := rand.New(rand.NewSource(11))
	q := mustQuery(t, "P(x | y), !N('c' | y)")
	items := make([]Item, 16)
	want := make([]bool, len(items))
	for i := range items {
		d := gen.Database(rng, q, gen.DefaultDBOptions())
		items[i] = Item{Query: q, DB: d}
		ans, err := core.Certain(q, d, core.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans
	}
	results := e.CertainBatch(context.Background(), items)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Certain != want[i] {
			t.Fatalf("item %d: batch = %v, core = %v", i, r.Certain, want[i])
		}
	}
	st := e.Stats()
	if st.BatchItems != 16 || st.Batches != 1 {
		t.Fatalf("batch counters wrong: %+v", st)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("one shared plan expected, misses = %d", st.CacheMisses)
	}
	if st.PeakBusyWorkers < 1 || st.PeakBusyWorkers > 4 {
		t.Fatalf("peak busy workers = %d", st.PeakBusyWorkers)
	}
	if st.BusyWorkers != 0 {
		t.Fatalf("busy workers after batch = %d, want 0", st.BusyWorkers)
	}
}

func TestCertainBatchErrorIsolation(t *testing.T) {
	e := New(Options{Workers: 2})
	good := mustQuery(t, "P(x | y)")
	bad := schema.NewQuery(
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
		schema.Neg(schema.NewAtom("N", 1, schema.Var("z"))),
	)
	d := figure1()
	items := []Item{
		{Query: good, DB: d},
		{Query: bad, DB: d},
		{Query: good, DB: d},
	}
	results := e.CertainBatch(context.Background(), items)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good items errored: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("bad item did not error")
	}
	if !results[0].Certain || !results[2].Certain {
		t.Fatal("P(x | y) is certain on figure1")
	}
	if e.Stats().BatchErrors != 1 {
		t.Fatalf("batch errors = %d, want 1", e.Stats().BatchErrors)
	}
}

func TestCertainBatchCancellation(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	q := mustQuery(t, "P(x | y)")
	d := figure1()
	// Cancel before dispatching: with an already-cancelled context, the
	// select in the dispatch loop may still dispatch a few items (both
	// channels are ready), but most items must carry the context error.
	cancel()
	items := make([]Item, 64)
	for i := range items {
		items[i] = Item{Query: q, DB: d}
	}
	results := e.CertainBatch(ctx, items)
	skipped := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancelled batch completed every item")
	}
}

func TestParallelEvalEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seq := New(Options{})
	par := New(Options{ParallelEval: true, MinParallelCandidates: 1, Workers: 8})
	q := mustQuery(t, "Lives(p | t), !Born(p | t), !Likes(p, t)")
	for trial := 0; trial < 25; trial++ {
		d := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: 10, MaxBlockSize: 2, DomainPerVariable: 6, ConstantBias: 0.7})
		a, err := seq.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: sequential = %v, parallel = %v", trial, a, b)
		}
	}
}

func TestStatsString(t *testing.T) {
	e := New(Options{Workers: 3})
	if _, err := e.Prepare(mustQuery(t, "R(x | y)")); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().String()
	for _, frag := range []string{"cache:", "batch:", "workers:"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("stats string %q missing %q", s, frag)
		}
	}
}
