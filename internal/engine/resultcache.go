package engine

import (
	"container/list"
	"sync"
)

// resultCache memoizes CERTAINTY answers for named, versioned databases
// (the store layer): entries are keyed by (canonical query signature,
// database id) and carry the store version they are valid at plus the
// set of relations the query mentions. Invalidation is incremental at
// relation granularity — the block structure of the paper localizes a
// write to one block of one relation, and a CERTAINTY answer can only
// change when the query mentions a written relation. So on a write:
//
//   - entries whose query mentions a touched relation are dropped
//     (counted as invalidations);
//   - every other entry of that database is advanced to the new version
//     and stays a hit — an irrelevant write costs nothing.
//
// Writes must be reported in version order (ApplyWrite is driven by the
// store's OnApply hook, which runs under the store's writer lock).
// Lookups and inserts carry the version of the snapshot they evaluated
// against; an insert computed against a version that is no longer
// current is discarded, so a slow reader racing a writer can never
// plant a stale answer.
type resultCache struct {
	mu  sync.Mutex
	cap int
	// order is the recency list; front = most recently used. Values are
	// *resultEntry.
	order   *list.List
	entries map[resultKey]*list.Element
	// byDB indexes entries per database id for O(|entries of db|)
	// invalidation and drop.
	byDB map[string]map[resultKey]*list.Element
	// current is the latest version ApplyWrite (or a first insert)
	// reported per database id.
	current map[string]uint64

	// onInvalidate is invoked once per invalidated entry with the
	// touched relation that triggered the invalidation (the first
	// matching relation of the write's touched set). Invoked outside
	// the cache lock.
	onInvalidate func(rel string)

	hits, misses, invalidations uint64
}

type resultKey struct {
	sig  string
	dbID string
}

type resultEntry struct {
	key     resultKey
	version uint64
	certain bool
	// rels are the relations the query mentions; a write touching any
	// of them invalidates the entry.
	rels map[string]bool
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[resultKey]*list.Element),
		byDB:    make(map[string]map[resultKey]*list.Element),
		current: make(map[string]uint64),
	}
}

// get returns the cached answer for (sig, dbID) at exactly version.
func (c *resultCache) get(sig, dbID string, version uint64) (bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[resultKey{sig, dbID}]
	if !ok || el.Value.(*resultEntry).version != version {
		c.misses++
		return false, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*resultEntry).certain, true
}

// put records an answer computed against the snapshot at version. It is
// discarded when a write has moved the database past that version — the
// answer may already be stale.
func (c *resultCache) put(sig, dbID string, version uint64, rels map[string]bool, certain bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.current[dbID]; ok && cur != version {
		return
	}
	c.current[dbID] = version
	key := resultKey{sig, dbID}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*resultEntry)
		e.version, e.certain, e.rels = version, certain, rels
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&resultEntry{key: key, version: version, certain: certain, rels: rels})
	c.entries[key] = el
	if c.byDB[dbID] == nil {
		c.byDB[dbID] = make(map[resultKey]*list.Element)
	}
	c.byDB[dbID][key] = el
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.removeLocked(back.Value.(*resultEntry).key)
	}
}

// applyWrite advances dbID to newVersion: entries whose query mentions
// a touched relation are invalidated, all others stay valid at the new
// version.
func (c *resultCache) applyWrite(dbID string, newVersion uint64, touched []string) {
	c.mu.Lock()
	c.current[dbID] = newVersion
	var triggers []string
	for key, el := range c.byDB[dbID] {
		e := el.Value.(*resultEntry)
		trigger := ""
		for _, r := range touched {
			if e.rels[r] {
				trigger = r
				break
			}
		}
		if trigger != "" {
			c.removeLocked(key)
			c.invalidations++
			if c.onInvalidate != nil {
				triggers = append(triggers, trigger)
			}
		} else {
			e.version = newVersion
		}
	}
	hook := c.onInvalidate
	c.mu.Unlock()
	if hook != nil {
		for _, r := range triggers {
			hook(r)
		}
	}
}

// setOnInvalidate installs the per-invalidation callback.
func (c *resultCache) setOnInvalidate(fn func(rel string)) {
	c.mu.Lock()
	c.onInvalidate = fn
	c.mu.Unlock()
}

// dropDB forgets every entry and the version watermark of dbID (the
// database was deleted or replaced wholesale).
func (c *resultCache) dropDB(dbID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.byDB[dbID] {
		c.removeLocked(key)
	}
	delete(c.current, dbID)
}

func (c *resultCache) removeLocked(key resultKey) {
	el, ok := c.entries[key]
	if !ok {
		return
	}
	c.order.Remove(el)
	delete(c.entries, key)
	if m := c.byDB[key.dbID]; m != nil {
		delete(m, key)
		if len(m) == 0 {
			delete(c.byDB, key.dbID)
		}
	}
}

// counters snapshots the hit/miss/invalidation counters and size.
func (c *resultCache) counters() (hits, misses, invalidations uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations, c.order.Len()
}
