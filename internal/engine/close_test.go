package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqa/internal/gen"
	"cqa/internal/parse"

	"math/rand"
)

func TestCloseRejectsNewWork(t *testing.T) {
	e := New(Options{})
	q := parse.MustQuery("R(x | y)")
	d := parse.MustDatabase("R(a | 1)\nR(a | 2)\n")

	if _, err := e.Certain(q, d); err != nil {
		t.Fatal(err)
	}
	e.Close()

	if _, err := e.Prepare(q); !errors.Is(err, ErrClosed) {
		t.Errorf("Prepare after Close: err = %v, want ErrClosed", err)
	}
	if _, err := e.Certain(q, d); !errors.Is(err, ErrClosed) {
		t.Errorf("Certain after Close: err = %v, want ErrClosed", err)
	}
	results := e.CertainBatch(context.Background(), []Item{{Query: q, DB: d}, {Query: q, DB: d}})
	if len(results) != 2 {
		t.Fatalf("batch after Close returned %d results, want 2", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrClosed) {
			t.Errorf("batch item %d after Close: err = %v, want ErrClosed", i, r.Err)
		}
	}
	// Close is idempotent.
	e.Close()

	// Stats survive shutdown: the cached plan is still visible.
	if s := e.Stats(); s.CachedPlans != 1 {
		t.Errorf("CachedPlans after Close = %d, want 1", s.CachedPlans)
	}
}

func TestCloseWaitsForInflightBatch(t *testing.T) {
	e := New(Options{Workers: 4})
	rng := rand.New(rand.NewSource(7))
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	items := make([]Item, 32)
	for i := range items {
		items[i] = Item{Query: q, DB: gen.Database(rng, q, gen.DBOptions{
			BlocksPerRelation: 64, MaxBlockSize: 2, DomainPerVariable: 16, ConstantBias: 0.7})}
	}

	var batchDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		results := e.CertainBatch(context.Background(), items)
		batchDone.Store(true)
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("in-flight batch item %d errored during Close: %v", i, r.Err)
			}
		}
	}()
	<-started
	// Give the batch a moment to actually dispatch before closing.
	time.Sleep(time.Millisecond)
	e.Close()
	if !batchDone.Load() {
		t.Error("Close returned before the in-flight batch completed")
	}
	wg.Wait()
}

func TestCloseConcurrentWithTraffic(t *testing.T) {
	e := New(Options{})
	q := parse.MustQuery("R(x | y)")
	d := parse.MustDatabase("R(a | 1)\nR(a | 2)\n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := e.Certain(q, d); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Close()
	}()
	wg.Wait()
	if _, err := e.Certain(q, d); !errors.Is(err, ErrClosed) {
		t.Errorf("after concurrent Close: err = %v, want ErrClosed", err)
	}
}
