package engine

import (
	"container/list"
	"sync"

	"cqa/internal/core"
)

// planCache is a thread-safe LRU cache of prepared plans keyed by the
// canonical query signature (schema.Query.Signature). Classification and
// rewriting are query-only work — often exponential in the query size —
// so memoizing them lets repeated queries skip straight to evaluation.
type planCache struct {
	mu  sync.Mutex
	cap int
	// order is the recency list; front = most recently used. Values are
	// *cacheEntry.
	order   *list.List
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	sig  string
	plan *core.Prepared
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached plan for sig, promoting it to most recently
// used.
func (c *planCache) get(sig string) (*core.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[sig]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put inserts a plan, evicting the least recently used entry when over
// capacity. Concurrent misses for the same signature may both call put;
// the second call just refreshes the entry.
func (c *planCache) put(sig string, plan *core.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sig]; ok {
		el.Value.(*cacheEntry).plan = plan
		c.order.MoveToFront(el)
		return
	}
	c.entries[sig] = c.order.PushFront(&cacheEntry{sig: sig, plan: plan})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).sig)
		c.evictions++
	}
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// counters snapshots the hit/miss/eviction counters.
func (c *planCache) counters() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}
