package engine

import (
	"context"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/gen"
	"cqa/internal/naive"
)

// TestDifferentialEngineVsNaive is the property-based oracle check for
// the engine paths: for ≥ 500 random sjfBCQ¬ queries with acyclic attack
// graphs (CERTAINTY in FO) and small random databases, the cached
// rewriting evaluation, the parallel evaluation hot path, and the batch
// API must all agree with brute-force repair enumeration. This extends
// the exhaustive_test.go style of internal/rewrite to the engine layer:
// the same oracle, but through the plan cache and the concurrent paths.
func TestDifferentialEngineVsNaive(t *testing.T) {
	const cases = 500

	rng := rand.New(rand.NewSource(20180610))
	qOpts := gen.DefaultQueryOptions()
	// Small enough for the naive all-repairs oracle: ≤ 2 facts per block,
	// ≤ 2 blocks per relation, ≤ 5 relations → ≤ 2^10 repairs.
	dbOpts := gen.DBOptions{BlocksPerRelation: 2, MaxBlockSize: 2, DomainPerVariable: 3, ConstantBias: 0.7}

	seq := New(Options{CacheSize: 64})
	par := New(Options{CacheSize: 64, ParallelEval: true, MinParallelCandidates: 1, Workers: 4})

	done := 0
	var batch []Item
	var batchWant []bool
	for done < cases {
		q := gen.Query(rng, qOpts)
		cls, err := core.Classify(q)
		if err != nil {
			t.Fatalf("classify %s: %v", q, err)
		}
		if cls.Verdict != core.VerdictFO {
			continue // only acyclic attack graphs: the rewriting must exist
		}
		done++
		d := gen.Database(rng, q, dbOpts)
		want := naive.IsCertain(q, d)

		// Cached sequential path — twice, so the second call exercises a
		// cache hit (alpha-variants of earlier queries hit too).
		for pass := 0; pass < 2; pass++ {
			got, err := seq.Certain(q, d)
			if err != nil {
				t.Fatalf("engine %s: %v", q, err)
			}
			if got != want {
				t.Fatalf("case %d: engine = %v, naive oracle = %v\nquery: %s\ndb:\n%s", done, got, want, q, d)
			}
		}

		// Parallel hot path (threshold 1 forces the fan-out).
		got, err := par.Certain(q, d)
		if err != nil {
			t.Fatalf("parallel engine %s: %v", q, err)
		}
		if got != want {
			t.Fatalf("case %d: parallel engine = %v, naive oracle = %v\nquery: %s\ndb:\n%s", done, got, want, q, d)
		}

		batch = append(batch, Item{Query: q, DB: d})
		batchWant = append(batchWant, want)

		// Flush accumulated checks through the batch API periodically so
		// the worker pool sees mixed workloads.
		if len(batch) == 50 || done == cases {
			results := seq.CertainBatch(context.Background(), batch)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("batch item %d (%s): %v", i, batch[i].Query, r.Err)
				}
				if r.Certain != batchWant[i] {
					t.Fatalf("batch item %d: engine = %v, naive oracle = %v\nquery: %s", i, r.Certain, batchWant[i], batch[i].Query)
				}
			}
			batch, batchWant = batch[:0], batchWant[:0]
		}
	}

	if st := seq.Stats(); st.CacheHits == 0 {
		t.Fatalf("differential sweep never hit the cache: %+v", st)
	}
}
