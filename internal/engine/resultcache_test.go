package engine_test

import (
	"fmt"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/parse"
	"cqa/internal/store"
)

// The acceptance property of incremental invalidation: after a write to
// a relation q does not mention, re-answering q is a result-cache hit;
// after a write to a mentioned relation it is a miss, and the recomputed
// answer matches core.Certain on the new snapshot.
func TestResultCacheIncrementalInvalidation(t *testing.T) {
	e := engine.New(engine.Options{})
	defer e.Close()
	st := store.NewMem("d", parse.MustDatabase("R(a | 1)\nR(a | 2)\nS(a | 1)\nT(z | z)"))
	st.SetOnApply(func(c store.Change) { e.ApplyWrite("d", c.Version, c.Rels) })

	q := parse.MustQuery("R(x | y), !S(y | x)") // mentions R and S, not T
	ask := func() (bool, bool) {
		t.Helper()
		snap := st.Snapshot()
		certain, cached, err := e.CertainVersioned(q, "d", snap.Version, snap.DB)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Certain(q, snap.DB, core.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		if certain != want {
			t.Fatalf("served %v at v%d, core.Certain says %v", certain, snap.Version, want)
		}
		return certain, cached
	}

	if _, cached := ask(); cached {
		t.Fatal("first ask must be a miss")
	}
	if _, cached := ask(); !cached {
		t.Fatal("repeat ask at same version must be a hit")
	}

	// Write to T — not mentioned by q: the answer must stay cached even
	// though the version moved.
	if _, err := st.Insert(db.F("T", "new", "fact")); err != nil {
		t.Fatal(err)
	}
	if _, cached := ask(); !cached {
		t.Fatal("write to unmentioned relation must keep the cache hit")
	}

	// Write to R — mentioned by q: the entry must be invalidated and the
	// recomputed answer must match ground truth on the new snapshot.
	if _, err := st.Insert(db.F("R", "b", "7")); err != nil {
		t.Fatal(err)
	}
	if _, cached := ask(); cached {
		t.Fatal("write to mentioned relation must be a cache miss")
	}
	if _, cached := ask(); !cached {
		t.Fatal("recomputed answer must be cached again")
	}

	stats := e.Stats()
	if stats.ResultInvalidations != 1 {
		t.Errorf("invalidations = %d, want 1", stats.ResultInvalidations)
	}
	if stats.ResultHits != 3 || stats.ResultMisses != 2 {
		t.Errorf("result cache hits/misses = %d/%d, want 3/2", stats.ResultHits, stats.ResultMisses)
	}
}

// A no-op write (version unchanged) must not disturb cached answers.
func TestResultCacheNoOpWrite(t *testing.T) {
	e := engine.New(engine.Options{})
	defer e.Close()
	st := store.NewMem("d", parse.MustDatabase("R(a | 1)"))
	st.SetOnApply(func(c store.Change) { e.ApplyWrite("d", c.Version, c.Rels) })
	q := parse.MustQuery("R(x | y)")
	snap := st.Snapshot()
	if _, _, err := e.CertainVersioned(q, "d", snap.Version, snap.DB); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(db.F("R", "a", "1")); err != nil { // duplicate: no-op
		t.Fatal(err)
	}
	snap = st.Snapshot()
	if _, cached, _ := e.CertainVersioned(q, "d", snap.Version, snap.DB); !cached {
		t.Fatal("no-op write must keep the cache hit")
	}
}

// A reader that computed against a pre-write snapshot must not plant a
// stale answer after the write: its put is discarded because the
// version watermark moved.
func TestResultCacheRejectsStalePut(t *testing.T) {
	e := engine.New(engine.Options{})
	defer e.Close()
	st := store.NewMem("d", parse.MustDatabase("R(a | 1)\nR(a | 2)"))
	st.SetOnApply(func(c store.Change) { e.ApplyWrite("d", c.Version, c.Rels) })
	q := parse.MustQuery("R(x | y)")

	// Take the snapshot before the write, evaluate after it.
	old := st.Snapshot()
	if _, err := st.Delete(db.F("R", "a", "1"), db.F("R", "a", "2")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.CertainVersioned(q, "d", old.Version, old.DB); err != nil {
		t.Fatal(err)
	}
	// The stale evaluation must not be served at the current version.
	now := st.Snapshot()
	certain, cached, err := e.CertainVersioned(q, "d", now.Version, now.DB)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("stale put leaked into the current version")
	}
	if certain {
		t.Fatal("empty R cannot be certain for R(x | y)")
	}
}

// Entries are per-database: the same query on two stores does not
// collide, and DropDB forgets one database only.
func TestResultCachePerDatabaseIsolation(t *testing.T) {
	e := engine.New(engine.Options{})
	defer e.Close()
	q := parse.MustQuery("R(x | y), !S(y | x)")
	mk := func(id, facts string) *store.Store {
		st := store.NewMem(id, parse.MustDatabase(facts))
		st.SetOnApply(func(c store.Change) { e.ApplyWrite(id, c.Version, c.Rels) })
		return st
	}
	a := mk("a", "R(a | 1)\nS(z | z)")
	b := mk("b", "R(a | 1)\nS(1 | a)")
	askOn := func(id string, st *store.Store) (bool, bool) {
		t.Helper()
		snap := st.Snapshot()
		certain, cached, err := e.CertainVersioned(q, id, snap.Version, snap.DB)
		if err != nil {
			t.Fatal(err)
		}
		return certain, cached
	}
	ca, _ := askOn("a", a)
	cb, _ := askOn("b", b)
	if !ca || cb {
		t.Fatalf("answers = %v/%v, want true/false", ca, cb)
	}
	if _, cached := askOn("a", a); !cached {
		t.Fatal("a should be cached")
	}
	e.DropDB("a")
	if _, cached := askOn("a", a); cached {
		t.Fatal("DropDB(a) should evict a's entries")
	}
	if _, cached := askOn("b", b); !cached {
		t.Fatal("DropDB(a) must not evict b's entries")
	}
}

// LRU eviction keeps the cache bounded.
func TestResultCacheEviction(t *testing.T) {
	e := engine.New(engine.Options{ResultCacheSize: 2})
	defer e.Close()
	q := parse.MustQuery("R(x | y)")
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("db%d", i)
		st := store.NewMem(id, parse.MustDatabase("R(a | 1)"))
		snap := st.Snapshot()
		if _, _, err := e.CertainVersioned(q, id, snap.Version, snap.DB); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().CachedResults; got != 2 {
		t.Fatalf("cached results = %d, want 2 (capacity)", got)
	}
}
