package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"cqa/internal/server"
)

func TestRunObsAgainstInProcessServer(t *testing.T) {
	s := server.New(server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	w := NewWorkload(7, WorkloadOptions{Queries: 3, DBsPerQuery: 2})
	rep, err := RunObs(context.Background(), ts.URL, w, ObsOptions{Requests: 6, Seed: 7})
	if err != nil {
		t.Fatalf("coherence run failed: %v\nreport so far: %v", err, rep)
	}
	if rep.Requests != 6 {
		t.Errorf("requests = %d, want 6", rep.Requests)
	}
	// parse + prepare + eval per request, at minimum.
	if rep.Spans < 3*rep.Requests {
		t.Errorf("spans = %d, want ≥ %d", rep.Spans, 3*rep.Requests)
	}
	if len(rep.Checks) == 0 {
		t.Error("no checks recorded")
	}
	if !strings.Contains(rep.String(), "check(s) passed") {
		t.Errorf("report = %q", rep)
	}
}

func TestRunObsEmptyWorkload(t *testing.T) {
	if _, err := RunObs(context.Background(), "http://127.0.0.1:0", &Workload{}, ObsOptions{}); err == nil {
		t.Error("empty workload should fail")
	}
}
