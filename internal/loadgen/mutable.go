package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/metrics"
	"cqa/internal/parse"
	"cqa/internal/schema"
	"cqa/internal/server"
)

// The mutable workload drives one named server database with a single
// writer and N concurrent readers. The writer mirrors every acknowledged
// batch into a local shadow database and clones it per version, so after
// the run every served answer can be cross-checked against core.Certain
// on the exact snapshot the server answered from — the version in the
// response names it. The relations are fixed:
//
//	R(2,1), S(2,1)  — written by the writer
//	T(2,1)          — never written after the seed
//
// and the reader queries are chosen so that q2 mentions only T: its
// answers must stay result-cache hits across writes (incremental
// invalidation), while q0/q1 are invalidated by R/S writes.
var mutableQueries = []string{
	"R(x | y)",
	"R(x | y), !S(y | x)",
	"T(x | y)",
}

// mutableSeed declares the three relations and gives T its only facts.
const mutableSeed = "R(k0 | v0)\nS(k0 | v1)\nT(t0 | u0)\nT(t0 | u1)\n"

// MutableOptions configures RunMutable.
type MutableOptions struct {
	// Database is the server database name; empty selects "mutable".
	// The database must not already exist; RunMutable creates it.
	Database string
	// Readers is the number of concurrent read loops; ≤ 0 selects 4.
	Readers int
	// Writes is the number of write batches the single writer issues;
	// ≤ 0 selects 40. The run ends when the writer is done.
	Writes int
	// Seed drives the mutation and read sequences.
	Seed int64
	// Timeout is the per-request client timeout; ≤ 0 selects 30s.
	Timeout time.Duration
	// Watch additionally subscribes to /v1/watch for every watchQueries
	// entry before the writer starts, collects the pushed flip stream,
	// and waits for the streams to converge on the final version; the
	// frames land in MutableReport.Watch for ValidateWatch.
	Watch bool
}

// MutRead records one read: which query, the version the server answered
// at, the answer, and whether it came from the result cache.
type MutRead struct {
	QueryIdx int
	Version  uint64
	Certain  bool
	Cached   bool
	Err      string
}

// MutQueryStats aggregates the reads of one query.
type MutQueryStats struct {
	Reads  int
	Cached int
}

// MutableReport is the outcome of a RunMutable: every read, the shadow
// snapshot per acknowledged version, and aggregate counters.
type MutableReport struct {
	Duration time.Duration
	Writes   int
	Applied  int // effective mutations acknowledged by the server
	Reads    int
	Failures int
	PerQuery []MutQueryStats
	Latency  metrics.HistogramSnapshot

	Queries []schema.Query
	Calls   []MutRead
	// Shadows maps every acknowledged store version to the database
	// content at that version, rebuilt client-side from the writes.
	Shadows map[uint64]*db.Database
	// Watch is the collected /v1/watch flip streams (nil unless
	// MutableOptions.Watch was set).
	Watch *WatchReport
}

// String renders the report as a short multi-line summary.
func (r *MutableReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d writes (%d applied) + %d reads in %v, %d failed\n",
		r.Writes, r.Applied, r.Reads, r.Duration.Round(time.Millisecond), r.Failures)
	for i, qs := range r.PerQuery {
		frac := 0.0
		if qs.Reads > 0 {
			frac = float64(qs.Cached) / float64(qs.Reads)
		}
		fmt.Fprintf(&b, "  q%d %-24s reads=%-4d cached=%.0f%%\n", i, r.Queries[i].String(), qs.Reads, 100*frac)
	}
	fmt.Fprintf(&b, "  latency: %s", r.Latency)
	return b.String()
}

// RunMutable creates a fresh named database on the server and drives it
// with one writer (insert/delete batches over R and S) and opt.Readers
// concurrent readers (named-database /v1/certain over mutableQueries)
// until the writer has issued opt.Writes batches.
func RunMutable(ctx context.Context, baseURL string, opt MutableOptions) (*MutableReport, error) {
	if opt.Database == "" {
		opt.Database = "mutable"
	}
	if opt.Readers <= 0 {
		opt.Readers = 4
	}
	if opt.Writes <= 0 {
		opt.Writes = 40
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	rep := &MutableReport{
		PerQuery: make([]MutQueryStats, len(mutableQueries)),
		Shadows:  make(map[uint64]*db.Database),
	}
	for _, src := range mutableQueries {
		q, err := parse.Query(src)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad mutable query %q: %v", src, err)
		}
		rep.Queries = append(rep.Queries, q)
	}
	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Readers + 2,
			MaxIdleConnsPerHost: opt.Readers + 2,
		},
	}
	defer client.CloseIdleConnections()

	// Create the database and seed the shadow at the create version.
	shadow, err := parse.Database(mutableSeed)
	if err != nil {
		return nil, err
	}
	var created server.DBWriteResponse
	if err := postDecode(ctx, client, baseURL+"/v1/db/create",
		server.DBCreateRequest{Name: opt.Database, Facts: mutableSeed}, &created); err != nil {
		return nil, fmt.Errorf("loadgen: creating %s: %w", opt.Database, err)
	}
	rep.Shadows[created.Version] = shadow.Clone()

	// Watch subscriptions open before the first write so every flip the
	// writer causes lands inside the recorded window.
	var watches *watchSet
	if opt.Watch {
		var err error
		watches, err = startWatchers(ctx, baseURL, opt.Database)
		if err != nil {
			return nil, err
		}
	}

	hist := metrics.NewHistogram(nil)
	done := make(chan struct{})
	var mu sync.Mutex // guards rep.Calls, rep.Shadows, counters

	// The single writer: random insert/delete batches over R and S. Each
	// acknowledged version gets a shadow clone.
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(opt.Seed))
		for i := 0; i < opt.Writes && ctx.Err() == nil; i++ {
			rel := []string{"R", "S"}[rng.Intn(2)]
			fact := db.F(rel, fmt.Sprintf("k%d", rng.Intn(4)), fmt.Sprintf("v%d", rng.Intn(3)))
			del := rng.Intn(3) == 0 // 2:1 insert:delete keeps the db non-empty
			path := "/v1/db/insert"
			if del {
				path = "/v1/db/delete"
			}
			var ack server.DBWriteResponse
			err := postDecode(ctx, client, baseURL+path, server.DBWriteRequest{
				Database: opt.Database,
				Facts:    fmt.Sprintf("%s(%s | %s)\n", fact.Rel, fact.Args[0], fact.Args[1]),
			}, &ack)
			if err != nil {
				writerErr = fmt.Errorf("loadgen: write %d: %w", i, err)
				return
			}
			// Mirror the server's batch semantics: duplicate inserts and
			// absent deletes are no-ops and do not move the version.
			switch {
			case del && shadow.Has(fact):
				shadow.Remove(fact)
			case !del && !shadow.Has(fact):
				shadow.MustInsert(fact)
			}
			mu.Lock()
			rep.Writes++
			rep.Applied += ack.Applied
			if _, ok := rep.Shadows[ack.Version]; !ok {
				rep.Shadows[ack.Version] = shadow.Clone()
			}
			mu.Unlock()
		}
	}()

	// Readers: hammer the named database until the writer is done.
	for c := 0; c < opt.Readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + 1 + int64(c)*7919))
			for ctx.Err() == nil {
				select {
				case <-done:
					return
				default:
				}
				qi := rng.Intn(len(mutableQueries))
				var out server.CertainResponse
				t0 := time.Now()
				err := postDecode(ctx, client, baseURL+"/v1/certain",
					server.CertainRequest{Query: mutableQueries[qi], Database: opt.Database}, &out)
				hist.Observe(time.Since(t0))
				call := MutRead{QueryIdx: qi, Version: out.Version, Certain: out.Certain}
				if out.Cached != nil {
					call.Cached = *out.Cached
				}
				if err != nil {
					call.Err = err.Error()
				}
				mu.Lock()
				rep.Reads++
				rep.PerQuery[qi].Reads++
				if call.Cached {
					rep.PerQuery[qi].Cached++
				}
				if call.Err != "" {
					rep.Failures++
				}
				rep.Calls = append(rep.Calls, call)
				mu.Unlock()
			}
		}(c)
	}

	start := time.Now()
	wg.Wait()
	rep.Duration = time.Since(start)
	rep.Latency = hist.Snapshot()
	if watches != nil {
		convergeErr := writerErr
		if convergeErr == nil && ctx.Err() == nil {
			convergeErr = watchConverge(watches, rep)
		}
		rep.Watch = watches.stop()
		if writerErr == nil && convergeErr != nil {
			return rep, convergeErr
		}
	}
	if writerErr != nil {
		return rep, writerErr
	}
	return rep, ctx.Err()
}

// watchConverge computes the final shadow verdict per watched query and
// waits for every subscription to settle on it at (or past) the final
// acknowledged version before the streams are torn down.
func watchConverge(watches *watchSet, rep *MutableReport) error {
	var finalVersion uint64
	for v := range rep.Shadows {
		if v > finalVersion {
			finalVersion = v
		}
	}
	snap := rep.Shadows[finalVersion]
	queries := make([]schema.Query, len(watchQueries))
	final := make(map[int]bool, len(watchQueries))
	for i, src := range watchQueries {
		q, err := parse.Query(src)
		if err != nil {
			return fmt.Errorf("loadgen: bad watch query %q: %v", src, err)
		}
		queries[i] = q
		want, err := core.Certain(q, snap, core.EngineAuto)
		if err != nil {
			return err
		}
		final[i] = want
	}
	return watches.converge(queries, final, finalVersion)
}

// ValidateMutable cross-checks every successful read against core.Certain
// on the shadow snapshot of the version the server answered at — the
// contemporaneous database content, not the final one. Ground truth is
// memoized per (query, version). Returns the number of answers checked.
func ValidateMutable(rep *MutableReport) (int, error) {
	type key struct {
		qi int
		v  uint64
	}
	truth := make(map[key]bool)
	checked := 0
	for _, call := range rep.Calls {
		if call.Err != "" {
			continue
		}
		snap, ok := rep.Shadows[call.Version]
		if !ok {
			return checked, fmt.Errorf("loadgen: served version %d has no shadow snapshot", call.Version)
		}
		k := key{call.QueryIdx, call.Version}
		want, ok := truth[k]
		if !ok {
			var err error
			want, err = core.Certain(rep.Queries[call.QueryIdx], snap, core.EngineAuto)
			if err != nil {
				return checked, fmt.Errorf("loadgen: ground truth for q%d at v%d: %w", call.QueryIdx, call.Version, err)
			}
			truth[k] = want
		}
		if call.Certain != want {
			return checked, fmt.Errorf("loadgen: q%d at v%d: served %v, ground truth %v",
				call.QueryIdx, call.Version, call.Certain, want)
		}
		checked++
	}
	return checked, nil
}

// postDecode posts body as JSON and decodes a 200 response into out; a
// non-200 response becomes an error carrying the body.
func postDecode(ctx context.Context, client *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
