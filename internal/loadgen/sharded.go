package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/metrics"
	"cqa/internal/parse"
	"cqa/internal/server"
)

// The sharded workload drives a sharded/replicated cqad topology in
// three phases — write, quiesce, read — so the read phase measures
// steady-state read throughput at one frozen version and every served
// answer has a single unambiguous ground truth (the final shadow):
//
//  1. Write: create one named database seeded with R and S blocks over
//     a key space sized by Keys, then issue Writes single-fact
//     insert/delete batches through the write endpoint (the router or
//     primary), mirroring each acknowledged batch into a local shadow.
//  2. Quiesce: poll the read endpoint's /v1/db/info until its served
//     version reaches the last acknowledged write version — a no-op
//     when reads and writes hit the same server, the catch-up wait
//     when reads go to a follower.
//  3. Read: Readers concurrent clients each issue Reads ground-key
//     /v1/certain requests. Ground keys pin blocks, so on a router
//     every read touches exactly the shards owning its key — the
//     workload whose throughput is expected to scale with shard count.
//
// Two read shapes alternate: pinned single-atom queries (R('k' | y),
// R('k' | 'v')) answered by verdict scatter, and — every JoinEvery-th
// read — the confined two-atom query R('k' | x), !S('k' | x), which a
// router serves by fetching the owning shard's slice (same-key blocks
// co-locate) and evaluating the merge locally.
const (
	shardedValues  = 3 // v0..v2
	shardedRelR    = "R"
	shardedRelS    = "S"
	shardedSSpread = 2 // every 2nd key gets an S seed fact
)

// ShardedOptions configures RunSharded.
type ShardedOptions struct {
	// Database is the server database name; empty selects "sharded".
	// The database must not already exist; RunSharded creates it.
	Database string
	// ReadURL is the base URL read traffic targets; empty selects the
	// write URL (read-your-own-writes on one server).
	ReadURL string
	// Keys is the block key space; ≤ 0 selects 64.
	Keys int
	// Writes is the number of single-fact write batches; ≤ 0 selects
	// 100. Negative Writes are allowed as "no write phase" with -1.
	Writes int
	// Readers and Reads size the read phase: Readers concurrent
	// clients, Reads requests each; ≤ 0 selects 4 and 100.
	Readers, Reads int
	// JoinEvery makes every n-th read the confined two-atom query;
	// 0 disables joins, 1 makes every read a join.
	JoinEvery int
	// Seed drives key, value, and shape sequencing.
	Seed int64
	// Timeout is the per-request client timeout; ≤ 0 selects 30s.
	Timeout time.Duration
	// Quiesce bounds the catch-up wait between the phases; ≤ 0
	// selects 30s.
	Quiesce time.Duration
}

// ShardedRead records one read-phase request.
type ShardedRead struct {
	Query   string
	Certain bool
	Err     string
}

// ShardedReport is the outcome of a RunSharded.
type ShardedReport struct {
	WriteDuration   time.Duration
	QuiesceDuration time.Duration
	ReadDuration    time.Duration
	Writes          int
	Applied         int
	FinalVersion    uint64 // last acknowledged write version
	Reads           int
	Failures        int
	Latency         metrics.HistogramSnapshot

	Calls  []ShardedRead
	Shadow *db.Database // database content after the write phase
}

// ReadThroughput returns read-phase requests per second.
func (r *ShardedReport) ReadThroughput() float64 {
	if r.ReadDuration <= 0 {
		return 0
	}
	return float64(r.Reads) / r.ReadDuration.Seconds()
}

// String renders the report as a short multi-line summary.
func (r *ShardedReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "write: %d batches (%d applied) in %v to version %d; quiesce %v\n",
		r.Writes, r.Applied, r.WriteDuration.Round(time.Millisecond), r.FinalVersion,
		r.QuiesceDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "read:  %d requests in %v (%.0f req/s), %d failed\n",
		r.Reads, r.ReadDuration.Round(time.Millisecond), r.ReadThroughput(), r.Failures)
	fmt.Fprintf(&b, "  latency: %s", r.Latency)
	return b.String()
}

// RunSharded runs the write → quiesce → read phases against writeURL
// (and opt.ReadURL for reads). The returned report is complete even on
// error or cancellation — it covers what ran.
func RunSharded(ctx context.Context, writeURL string, opt ShardedOptions) (*ShardedReport, error) {
	if opt.Database == "" {
		opt.Database = "sharded"
	}
	if opt.ReadURL == "" {
		opt.ReadURL = writeURL
	}
	if opt.Keys <= 0 {
		opt.Keys = 64
	}
	if opt.Writes == 0 {
		opt.Writes = 100
	}
	if opt.Writes < 0 {
		opt.Writes = 0
	}
	if opt.Readers <= 0 {
		opt.Readers = 4
	}
	if opt.Reads <= 0 {
		opt.Reads = 100
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.Quiesce <= 0 {
		opt.Quiesce = 30 * time.Second
	}
	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Readers * 2,
			MaxIdleConnsPerHost: opt.Readers * 2,
		},
	}
	defer client.CloseIdleConnections()
	rep := &ShardedReport{}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Phase 1: create and write. The shadow mirrors every acknowledged
	// batch with the server's no-op semantics.
	var seed strings.Builder
	for i := 0; i < opt.Keys; i++ {
		fmt.Fprintf(&seed, "%s(k%d | v%d)\n", shardedRelR, i, rng.Intn(shardedValues))
		if i%shardedSSpread == 0 {
			fmt.Fprintf(&seed, "%s(k%d | v%d)\n", shardedRelS, i, rng.Intn(shardedValues))
		}
	}
	shadow, err := parse.Database(seed.String())
	if err != nil {
		return rep, err
	}
	rep.Shadow = shadow
	start := time.Now()
	var created server.DBWriteResponse
	if err := postDecode(ctx, client, writeURL+"/v1/db/create",
		server.DBCreateRequest{Name: opt.Database, Facts: seed.String()}, &created); err != nil {
		return rep, fmt.Errorf("loadgen: creating %s: %w", opt.Database, err)
	}
	rep.FinalVersion = created.Version
	for i := 0; i < opt.Writes && ctx.Err() == nil; i++ {
		rel := shardedRelR
		if rng.Intn(3) == 0 {
			rel = shardedRelS
		}
		fact := db.F(rel, fmt.Sprintf("k%d", rng.Intn(opt.Keys)), fmt.Sprintf("v%d", rng.Intn(shardedValues)))
		del := rng.Intn(3) == 0
		path := "/v1/db/insert"
		if del {
			path = "/v1/db/delete"
		}
		var ack server.DBWriteResponse
		err := postDecode(ctx, client, writeURL+path, server.DBWriteRequest{
			Database: opt.Database,
			Facts:    fmt.Sprintf("%s(%s | %s)\n", fact.Rel, fact.Args[0], fact.Args[1]),
		}, &ack)
		if err != nil {
			return rep, fmt.Errorf("loadgen: write %d: %w", i, err)
		}
		switch {
		case del && shadow.Has(fact):
			shadow.Remove(fact)
		case !del && !shadow.Has(fact):
			shadow.MustInsert(fact)
		}
		rep.Writes++
		rep.Applied += ack.Applied
		if ack.Version > rep.FinalVersion {
			rep.FinalVersion = ack.Version
		}
	}
	rep.WriteDuration = time.Since(start)
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}

	// Phase 2: quiesce. The read side's served version must reach the
	// last acknowledged write version (both are the same monotone sum
	// of shard store versions).
	start = time.Now()
	deadline := time.Now().Add(opt.Quiesce)
	for {
		v, err := servedVersion(ctx, client, opt.ReadURL, opt.Database)
		if err == nil && v >= rep.FinalVersion {
			break
		}
		if time.Now().After(deadline) {
			rep.QuiesceDuration = time.Since(start)
			if err == nil {
				err = fmt.Errorf("read side at version %d, writes reached %d", v, rep.FinalVersion)
			}
			return rep, fmt.Errorf("loadgen: quiesce: %w", err)
		}
		select {
		case <-ctx.Done():
			rep.QuiesceDuration = time.Since(start)
			return rep, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	rep.QuiesceDuration = time.Since(start)

	// Phase 3: read. Ground-key queries only; shapes alternate by the
	// per-reader sequence so the mix is deterministic in the seed.
	hist := metrics.NewHistogram(nil)
	perReader := make([][]ShardedRead, opt.Readers)
	var wg sync.WaitGroup
	start = time.Now()
	for c := 0; c < opt.Readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + 1 + int64(c)*7919))
			calls := make([]ShardedRead, 0, opt.Reads)
			for i := 0; i < opt.Reads && ctx.Err() == nil; i++ {
				k := rng.Intn(opt.Keys)
				var query string
				switch {
				case opt.JoinEvery > 0 && i%opt.JoinEvery == opt.JoinEvery-1:
					query = fmt.Sprintf("%s('k%d' | x), !%s('k%d' | x)", shardedRelR, k, shardedRelS, k)
				case rng.Intn(2) == 0:
					query = fmt.Sprintf("%s('k%d' | y)", shardedRelR, k)
				default:
					query = fmt.Sprintf("%s('k%d' | 'v%d')", shardedRelR, k, rng.Intn(shardedValues))
				}
				var out server.CertainResponse
				t0 := time.Now()
				err := postDecode(ctx, client, opt.ReadURL+"/v1/certain",
					server.CertainRequest{Query: query, Database: opt.Database}, &out)
				hist.Observe(time.Since(t0))
				call := ShardedRead{Query: query, Certain: out.Certain}
				if err != nil {
					call.Err = err.Error()
				}
				calls = append(calls, call)
			}
			perReader[c] = calls
		}(c)
	}
	wg.Wait()
	rep.ReadDuration = time.Since(start)
	rep.Latency = hist.Snapshot()
	for _, calls := range perReader {
		for _, call := range calls {
			rep.Reads++
			if call.Err != "" {
				rep.Failures++
			}
			rep.Calls = append(rep.Calls, call)
		}
	}
	return rep, ctx.Err()
}

// servedVersion reads the read endpoint's version for the database.
func servedVersion(ctx context.Context, client *http.Client, baseURL, name string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/db/info", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/v1/db/info: status %d", resp.StatusCode)
	}
	var info server.DBInfoResponse
	if err := decodeJSON(resp.Body, &info); err != nil {
		return 0, err
	}
	for _, d := range info.Databases {
		if d.Name == name {
			return d.Version, nil
		}
	}
	return 0, fmt.Errorf("database %s not served", name)
}

func decodeJSON(r io.Reader, out any) error { return json.NewDecoder(r).Decode(out) }

// ValidateSharded cross-checks every successful read against
// core.Certain on the final shadow — sound because the read phase runs
// quiesced at one frozen version. Ground truth is memoized per query
// text. Returns the number of answers checked.
func ValidateSharded(rep *ShardedReport) (int, error) {
	truth := make(map[string]bool)
	checked := 0
	for _, call := range rep.Calls {
		if call.Err != "" {
			continue
		}
		want, ok := truth[call.Query]
		if !ok {
			q, err := parse.Query(call.Query)
			if err != nil {
				return checked, fmt.Errorf("loadgen: bad read query %q: %w", call.Query, err)
			}
			want, err = core.Certain(q, rep.Shadow, core.EngineAuto)
			if err != nil {
				return checked, fmt.Errorf("loadgen: ground truth for %q: %w", call.Query, err)
			}
			truth[call.Query] = want
		}
		if call.Certain != want {
			return checked, fmt.Errorf("loadgen: %q: served %v, ground truth %v", call.Query, call.Certain, want)
		}
		checked++
	}
	return checked, nil
}
