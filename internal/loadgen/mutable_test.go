package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"

	"cqa/internal/server"
)

func TestRunMutableValidates(t *testing.T) {
	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunMutable(context.Background(), ts.URL, MutableOptions{
		Readers: 3,
		Writes:  30,
		Seed:    7,
	})
	if err != nil {
		t.Fatalf("RunMutable: %v\n%s", err, rep)
	}
	if rep.Writes != 30 {
		t.Errorf("writes = %d, want 30", rep.Writes)
	}
	if rep.Reads == 0 {
		t.Error("no reads issued")
	}
	if rep.Failures != 0 {
		t.Errorf("%d reads failed\n%s", rep.Failures, rep)
	}
	checked, err := ValidateMutable(rep)
	if err != nil {
		t.Fatalf("validation failed after %d checks: %v", checked, err)
	}
	if checked == 0 {
		t.Fatal("validated zero answers")
	}

	// q2 mentions only T, which the writer never touches, so writes never
	// invalidate its entry. Misses still occur when an evaluation
	// straddles a version bump (the stale-put watermark conservatively
	// discards it), so assert a majority of hits rather than all-but-one;
	// the exact invalidation semantics are pinned down deterministically
	// in internal/engine and certbench E14.
	if q2 := rep.PerQuery[2]; q2.Reads >= 10 && q2.Cached*2 < q2.Reads {
		t.Errorf("q2 (T only): %d of %d reads cached, want a clear majority\n%s",
			q2.Cached, q2.Reads, rep)
	}
}

func TestRunMutableRejectsExistingDatabase(t *testing.T) {
	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := RunMutable(context.Background(), ts.URL, MutableOptions{Database: "dup", Writes: 1, Readers: 1}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := RunMutable(context.Background(), ts.URL, MutableOptions{Database: "dup", Writes: 1, Readers: 1}); err == nil {
		t.Fatal("second run against the same name should fail on create")
	}
}
