package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"cqa/internal/core"
	"cqa/internal/parse"
	"cqa/internal/schema"
	"cqa/internal/server"
)

// The watch workload extends the mutable workload: alongside the
// readers, one /v1/watch subscription per watch query collects every
// pushed frame while the writer mutates. Validation is post-hoc and
// exact — every flip must leave the verdict equal to contemporaneous
// shadow ground truth at the flip's version, with no unreported flip at
// any intermediate version. Ground-key queries are added to the read
// mix because they flip often (one block's content decides them).
var watchQueries = []string{
	"R('k0' | 'v0')",
	"R('k1' | x), !S('k1' | x)",
	"R(x | y)",
	"R(x | y), !S(y | x)",
	"T(x | y)",
}

// WatchReport is the collected watch side of a mutable run.
type WatchReport struct {
	// Queries are the watched queries, parsed.
	Queries []schema.Query
	// Sources are the watched queries in surface syntax.
	Sources []string
	// Events holds, per query, every frame received in order.
	Events [][]server.WatchEvent
}

// watcher is one live watch subscription.
type watcher struct {
	mu         sync.Mutex
	events     []server.WatchEvent
	maxVersion uint64
	verdict    bool // flip-tracked verdict (state/flip frames only)
	started    bool
	err        error
}

func (ws *watcher) record(ev server.WatchEvent) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.events = append(ws.events, ev)
	if ev.Version > ws.maxVersion {
		ws.maxVersion = ev.Version
	}
	if ev.Type == server.WatchEventState || ev.Type == server.WatchEventFlip {
		ws.verdict = ev.Verdict
		ws.started = true
	}
}

func (ws *watcher) state() (maxVersion uint64, verdict, started bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.maxVersion, ws.verdict, ws.started
}

// watchSet drives one subscription per watch query.
type watchSet struct {
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	watchers []*watcher
}

// startWatchers opens the subscriptions and blocks until every stream
// has delivered its header state (so the writer's flips all land inside
// the recorded window).
func startWatchers(ctx context.Context, baseURL, database string) (*watchSet, error) {
	wctx, cancel := context.WithCancel(ctx)
	set := &watchSet{cancel: cancel}
	// Streams are long-lived: no overall request timeout.
	client := &http.Client{}
	for range watchQueries {
		set.watchers = append(set.watchers, &watcher{})
	}
	for i, src := range watchQueries {
		set.wg.Add(1)
		go func(i int, src string) {
			defer set.wg.Done()
			set.watchers[i].run(wctx, client, baseURL, database, src)
		}(i, src)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, ws := range set.watchers {
		for {
			if _, _, started := ws.state(); started {
				break
			}
			ws.mu.Lock()
			err := ws.err
			ws.mu.Unlock()
			if err != nil || time.Now().After(deadline) {
				cancel()
				set.wg.Wait()
				if err == nil {
					err = fmt.Errorf("timed out")
				}
				return nil, fmt.Errorf("loadgen: watch header: %w", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return set, nil
}

// run keeps one subscription alive, resuming from the last seen
// version on reconnect (the stream may break if the server restarts;
// the resumed header arrives as a state frame and validation treats it
// as a resynchronization).
func (ws *watcher) run(ctx context.Context, client *http.Client, baseURL, database, query string) {
	for ctx.Err() == nil {
		if err := ws.streamOnce(ctx, client, baseURL, database, query); err != nil && ctx.Err() == nil {
			ws.mu.Lock()
			ws.err = err
			ws.mu.Unlock()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func (ws *watcher) streamOnce(ctx context.Context, client *http.Client, baseURL, database, query string) error {
	from, _, _ := ws.state()
	body, _ := json.Marshal(server.WatchRequest{Database: database, Query: query, From: from})
	req, err := http.NewRequestWithContext(ctx, "POST", baseURL+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		ev, err := server.ParseWatchEvent(sc.Bytes())
		if err != nil {
			return fmt.Errorf("watch frame: %w", err)
		}
		ws.record(ev)
	}
	return sc.Err()
}

// converge waits until every subscription has caught up with the final
// write: its stream reached finalVersion and its flip-tracked verdict
// matches ground truth there. This closes the race between the last
// flip's heartbeat (state is settled) and its flip frame (still in
// flight when the writer finishes).
func (set *watchSet) converge(queries []schema.Query, final map[int]bool, finalVersion uint64) error {
	deadline := time.Now().Add(20 * time.Second)
	for i, ws := range set.watchers {
		for {
			v, verdict, started := ws.state()
			if started && v >= finalVersion && verdict == final[i] {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("loadgen: watch %q did not converge to v%d (at v%d, verdict %v, want %v)",
					queries[i], finalVersion, v, verdict, final[i])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}

// stop cancels the subscriptions and collects the report.
func (set *watchSet) stop() *WatchReport {
	set.cancel()
	set.wg.Wait()
	rep := &WatchReport{Sources: append([]string(nil), watchQueries...)}
	for _, src := range watchQueries {
		q, _ := parse.Query(src)
		rep.Queries = append(rep.Queries, q)
	}
	for _, ws := range set.watchers {
		rep.Events = append(rep.Events, ws.events)
	}
	return rep
}

// ValidateWatch cross-checks every collected watch frame against the
// shadow snapshots: a frame's verdict must equal core.Certain on the
// shadow at the frame's version, a flip's From must equal the verdict
// the stream previously settled on, and no intermediate version between
// two consecutive flip baselines may disagree with the earlier verdict
// (a disagreement is a flip the stream failed to push). State frames
// reset the baseline (resynchronization after shedding or reconnect).
// Returns the number of frames checked.
func ValidateWatch(rep *MutableReport) (int, error) {
	w := rep.Watch
	if w == nil {
		return 0, fmt.Errorf("loadgen: run collected no watch report")
	}
	versions := make([]uint64, 0, len(rep.Shadows))
	for v := range rep.Shadows {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	finalVersion := versions[len(versions)-1]

	type key struct {
		qi int
		v  uint64
	}
	memo := make(map[key]bool)
	truth := func(qi int, v uint64) (bool, error) {
		k := key{qi, v}
		if got, ok := memo[k]; ok {
			return got, nil
		}
		snap, ok := rep.Shadows[v]
		if !ok {
			return false, fmt.Errorf("version %d has no shadow snapshot", v)
		}
		got, err := core.Certain(w.Queries[qi], snap, core.EngineAuto)
		if err != nil {
			return false, err
		}
		memo[k] = got
		return got, nil
	}
	// between checks that every shadow version in (lo, hi) agrees with
	// verdict — i.e. no flip went unreported inside the window.
	between := func(qi int, lo, hi uint64, verdict bool) error {
		i := sort.Search(len(versions), func(i int) bool { return versions[i] > lo })
		for ; i < len(versions) && versions[i] < hi; i++ {
			got, err := truth(qi, versions[i])
			if err != nil {
				return err
			}
			if got != verdict {
				return fmt.Errorf("verdict flipped at v%d but no flip frame covers it", versions[i])
			}
		}
		return nil
	}

	checked := 0
	for qi := range w.Queries {
		var lastVerdict bool
		var lastVersion uint64
		started := false
		for fi, ev := range w.Events[qi] {
			want, err := truth(qi, ev.Version)
			if err != nil {
				return checked, fmt.Errorf("loadgen: watch %q frame %d: %w", w.Sources[qi], fi, err)
			}
			fail := func(format string, args ...any) error {
				return fmt.Errorf("loadgen: watch %q frame %d (%+v): %s",
					w.Sources[qi], fi, ev, fmt.Sprintf(format, args...))
			}
			switch ev.Type {
			case server.WatchEventState:
				if ev.Verdict != want {
					return checked, fail("state verdict %v, shadow says %v", ev.Verdict, want)
				}
				lastVerdict, lastVersion, started = ev.Verdict, ev.Version, true
			case server.WatchEventHeartbeat:
				if ev.Verdict != want {
					return checked, fail("heartbeat verdict %v, shadow says %v", ev.Verdict, want)
				}
			case server.WatchEventFlip:
				if !started {
					return checked, fail("flip before the header state")
				}
				if *ev.From != lastVerdict {
					return checked, fail("flip from %v, stream settled on %v — a flip was missed", *ev.From, lastVerdict)
				}
				if ev.Verdict != want {
					return checked, fail("flip to %v, shadow says %v", ev.Verdict, want)
				}
				if err := between(qi, lastVersion, ev.Version, lastVerdict); err != nil {
					return checked, fail("%v", err)
				}
				lastVerdict, lastVersion = ev.Verdict, ev.Version
			}
			checked++
		}
		if !started {
			return checked, fmt.Errorf("loadgen: watch %q delivered no state", w.Sources[qi])
		}
		// Tail: no unreported flip between the last baseline and the end
		// of the run, and the final verdicts agree.
		if err := between(qi, lastVersion, finalVersion, lastVerdict); err != nil {
			return checked, fmt.Errorf("loadgen: watch %q tail: %w", w.Sources[qi], err)
		}
		finalWant, err := truth(qi, finalVersion)
		if err != nil {
			return checked, err
		}
		if lastVersion < finalVersion && finalWant != lastVerdict {
			return checked, fmt.Errorf("loadgen: watch %q: final verdict %v at v%d never pushed (stream settled on %v)",
				w.Sources[qi], finalWant, finalVersion, lastVerdict)
		}
	}
	return checked, nil
}
