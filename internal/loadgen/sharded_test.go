package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/server"
)

// RunSharded through a real router over two shard servers: writes
// partition, the quiesce phase is a no-op (same endpoint), and every
// quiesced read validates against the shadow.
func TestRunShardedThroughRouter(t *testing.T) {
	const n = 2
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{
			Engine:    engine.New(engine.Options{}),
			Databases: map[string]*db.Database{},
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt := server.NewRouter(server.RouterOptions{
		Shards:  urls,
		Options: server.Options{Engine: engine.New(engine.Options{})},
	})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	rep, err := RunSharded(context.Background(), rts.URL, ShardedOptions{
		Keys:      24,
		Writes:    30,
		Readers:   3,
		Reads:     20,
		JoinEvery: 2,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("RunSharded: %v\n%s", err, rep)
	}
	if rep.Failures != 0 {
		t.Fatalf("%d failed requests\n%s", rep.Failures, rep)
	}
	if rep.Reads != 3*20 || rep.Writes != 30 {
		t.Fatalf("unexpected counts: %+v", rep)
	}
	checked, err := ValidateSharded(rep)
	if err != nil {
		t.Fatalf("validation: %v", err)
	}
	if checked != rep.Reads {
		t.Fatalf("checked %d of %d reads", checked, rep.Reads)
	}
}
