package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"cqa/internal/metrics"
	"cqa/internal/obs"
	"cqa/internal/server"
)

// This file is the trace/metric coherence assertion mode behind
// `cqaload -obs`: it drives traced explain queries against a live cqad
// and checks that the three observability surfaces agree with each
// other and with what the client actually did — the response header,
// the explain block, and /debug/traces name the same trace ID; the
// trace's spans nest inside its duration and inside the latency the
// client measured; and the /metrics counters move by at least the
// traffic this run generated, on a lint-clean Prometheus exposition.

// ObsOptions configures RunObs.
type ObsOptions struct {
	// Requests is the number of traced explain queries; ≤ 0 selects 8.
	Requests int
	// Seed drives query/database selection order.
	Seed int64
}

// ObsReport summarizes a coherence run.
type ObsReport struct {
	Requests int      // traced queries issued
	Spans    int      // spans observed across the fetched traces
	Checks   []string // assertions that held, in order
}

func (r *ObsReport) String() string {
	return fmt.Sprintf("obs coherence: %d traced request(s), %d span(s), %d check(s) passed:\n  %s",
		r.Requests, r.Spans, len(r.Checks), strings.Join(r.Checks, "\n  "))
}

// RunObs issues traced /v1/certain explain requests from the workload
// and asserts trace/metric coherence. The server may be serving other
// traffic concurrently, so counter assertions are "moved by at least
// what we sent", not exact equality.
func RunObs(ctx context.Context, baseURL string, w *Workload, opt ObsOptions) (*ObsReport, error) {
	n := opt.Requests
	if n <= 0 {
		n = 8
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("empty workload")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	rep := &ObsReport{Requests: n}

	before, err := scrapeMetrics(ctx, client, baseURL)
	if err != nil {
		return rep, fmt.Errorf("before scrape: %w", err)
	}
	rep.pass("/metrics parses and lints clean before the run")

	for i := 0; i < n; i++ {
		wq := w.Queries[(int(opt.Seed)+i)%len(w.Queries)]
		facts := wq.Facts[i%len(wq.Facts)]
		if err := oneObsRequest(ctx, client, baseURL, rep, i, wq.Source, facts); err != nil {
			return rep, fmt.Errorf("request %d: %w", i, err)
		}
	}
	rep.pass(fmt.Sprintf("%d explain responses named the trace the X-CQA-Trace response header named", n))
	rep.pass("every trace at /debug/traces covers parse and eval, spans inside the trace, trace inside the client latency")

	after, err := scrapeMetrics(ctx, client, baseURL)
	if err != nil {
		return rep, fmt.Errorf("after scrape: %w", err)
	}
	rep.pass("/metrics parses and lints clean after the run")

	for _, c := range []struct {
		name string
		kv   []string
	}{
		{"requests_total", nil},
		{"certain_total", nil},
		{"request_latency_seconds_count", nil},
		{"requests_by_endpoint_total", []string{"endpoint", "certain"}},
	} {
		b, _ := before.Value(c.name, c.kv...)
		a, ok := after.Value(c.name, c.kv...)
		if !ok {
			return rep, fmt.Errorf("metric %s%v missing after the run", c.name, c.kv)
		}
		if a-b < float64(n) {
			return rep, fmt.Errorf("metric %s%v moved by %g, want ≥ %d", c.name, c.kv, a-b, n)
		}
	}
	rep.pass(fmt.Sprintf("request/certain/latency counters all moved by ≥ %d", n))

	if d := sumFamily(after, "eval_total") - sumFamily(before, "eval_total"); d < float64(n) {
		return rep, fmt.Errorf("eval_total (summed over strategy/cache labels) moved by %g, want ≥ %d", d, n)
	}
	rep.pass(fmt.Sprintf("eval_total summed across strategy/cache labels moved by ≥ %d", n))

	bs, _ := before.Value("traces_sampled")
	as, ok := after.Value("traces_sampled")
	if !ok {
		return rep, fmt.Errorf("traces_sampled missing after the run")
	}
	if as-bs < float64(n) {
		return rep, fmt.Errorf("traces_sampled moved by %g, want ≥ %d (is -trace-sample below 1?)", as-bs, n)
	}
	rep.pass(fmt.Sprintf("tracer recorded ≥ %d new traces", n))
	return rep, nil
}

func (r *ObsReport) pass(check string) { r.Checks = append(r.Checks, check) }

// oneObsRequest issues one traced explain query and cross-checks the
// header, the explain block, and the served trace against each other.
func oneObsRequest(ctx context.Context, client *http.Client, baseURL string, rep *ObsReport, i int, query, facts string) error {
	req := server.CertainRequest{Query: query, Facts: facts, Explain: true}
	start := time.Now()
	resp, hdr, err := postDecodeHeader(ctx, client, baseURL+"/v1/certain", req)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	id := hdr.Get(obs.TraceHeader)
	if id == "" {
		return fmt.Errorf("no %s response header", obs.TraceHeader)
	}
	if resp.Explain == nil {
		return fmt.Errorf("explain requested but absent")
	}
	if resp.Explain.TraceID != id {
		return fmt.Errorf("explain names trace %q, header names %q", resp.Explain.TraceID, id)
	}
	if resp.Explain.Strategy == "" {
		return fmt.Errorf("explain has no strategy")
	}
	var stageSum int64
	for _, st := range resp.Explain.Stages {
		stageSum += st.Nanos
	}
	if stageSum > elapsed.Nanoseconds() {
		return fmt.Errorf("explain stages sum to %dns, more than the %s the request took", stageSum, elapsed)
	}

	tr, err := fetchTrace(ctx, client, baseURL, id)
	if err != nil {
		return err
	}
	if tr.DurNanos > elapsed.Nanoseconds() {
		return fmt.Errorf("trace %s lasted %dns, more than the %s the client measured", id, tr.DurNanos, elapsed)
	}
	want := map[string]bool{"parse": false, "eval": false}
	for _, sp := range tr.Spans {
		rep.Spans++
		if sp.DurNanos < 0 || sp.OffsetNanos < 0 || sp.OffsetNanos+sp.DurNanos > tr.DurNanos {
			return fmt.Errorf("trace %s: span %s [%d, +%d] outside trace duration %d",
				id, sp.Name, sp.OffsetNanos, sp.DurNanos, tr.DurNanos)
		}
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			return fmt.Errorf("trace %s has no %s span (spans: %s)", id, name, spanNameList(tr.Spans))
		}
	}
	return nil
}

// postDecodeHeader is postDecode plus access to the response headers.
func postDecodeHeader(ctx context.Context, client *http.Client, url string, body server.CertainRequest) (*server.CertainResponse, http.Header, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.Header, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out server.CertainResponse
	return &out, resp.Header, json.Unmarshal(raw, &out)
}

// fetchTrace pulls one trace by ID from GET /debug/traces.
func fetchTrace(ctx context.Context, client *http.Client, baseURL, id string) (*obs.TraceView, error) {
	u := baseURL + "/debug/traces?id=" + url.QueryEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/traces: status %d", resp.StatusCode)
	}
	var doc struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := decodeJSON(resp.Body, &doc); err != nil {
		return nil, err
	}
	if len(doc.Traces) == 0 {
		return nil, fmt.Errorf("trace %s not found in /debug/traces (evicted by a too-small -trace-buffer?)", id)
	}
	return &doc.Traces[0], nil
}

// scrapeMetrics GETs /metrics, lints the exposition, and parses it.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (*metrics.PromExposition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return nil, fmt.Errorf("/metrics: Content-Type %q is not the text exposition format", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := metrics.LintPrometheus(string(text)); err != nil {
		return nil, fmt.Errorf("exposition lint: %w", err)
	}
	return metrics.ParsePrometheus(string(text))
}

// sumFamily totals every sample of one family, across all label sets.
func sumFamily(exp *metrics.PromExposition, name string) float64 {
	var sum float64
	for _, s := range exp.Find(name) {
		sum += s.Value
	}
	return sum
}

func spanNameList(spans []obs.SpanView) string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return strings.Join(names, ", ")
}
