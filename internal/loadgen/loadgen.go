// Package loadgen is a closed-loop load generator for the cqad HTTP API:
// N clients each issue M requests drawn from a classify/certain/batch
// mix over a reproducible workload (internal/gen queries and databases),
// recording throughput, a latency histogram, and every served answer so
// the run can be validated against core.Certain ground truth afterwards.
// It is both the engine of cmd/cqaload and the driver of certbench E13.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/metrics"
	"cqa/internal/schema"
	"cqa/internal/server"
)

// Workload is the fixed universe a run draws from: queries with their
// wire text and, per query, databases with their rendered fact text.
// Everything is deterministic in the seed.
type Workload struct {
	Queries []WorkloadQuery
}

// WorkloadQuery is one query with its candidate databases.
type WorkloadQuery struct {
	Query  schema.Query
	Source string // wire form, parse.Query-compatible
	DBs    []*db.Database
	Facts  []string // DBs rendered in the fact syntax, index-aligned
}

// WorkloadOptions controls workload generation.
type WorkloadOptions struct {
	// Queries and DBsPerQuery size the universe; ≤ 0 selects 6 and 4.
	Queries, DBsPerQuery int
	// DB controls database shape; the zero value selects
	// gen.DefaultDBOptions (small enough for naive fallbacks).
	DB gen.DBOptions
}

// NewWorkload generates a reproducible workload: random weakly-guarded
// sjfBCQ¬ queries (a mix of FO and non-FO) and typed databases for each.
func NewWorkload(seed int64, opt WorkloadOptions) *Workload {
	if opt.Queries <= 0 {
		opt.Queries = 6
	}
	if opt.DBsPerQuery <= 0 {
		opt.DBsPerQuery = 4
	}
	if opt.DB == (gen.DBOptions{}) {
		opt.DB = gen.DefaultDBOptions()
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for len(w.Queries) < opt.Queries {
		q := gen.Query(rng, gen.DefaultQueryOptions())
		wq := WorkloadQuery{Query: q, Source: q.String()}
		for i := 0; i < opt.DBsPerQuery; i++ {
			d := gen.Database(rng, q, opt.DB)
			wq.DBs = append(wq.DBs, d)
			wq.Facts = append(wq.Facts, d.String())
		}
		w.Queries = append(w.Queries, wq)
	}
	return w
}

// Mix weights the request kinds; zero-valued mixes select 1/8/1.
type Mix struct {
	Classify, Certain, Batch int
}

func (m Mix) normalize() Mix {
	if m.Classify <= 0 && m.Certain <= 0 && m.Batch <= 0 {
		return Mix{Classify: 1, Certain: 8, Batch: 1}
	}
	if m.Classify < 0 {
		m.Classify = 0
	}
	if m.Certain < 0 {
		m.Certain = 0
	}
	if m.Batch < 0 {
		m.Batch = 0
	}
	return m
}

// Options configures a run.
type Options struct {
	// Clients is the number of concurrent closed-loop clients; ≤ 0
	// selects 4. Requests is per client; ≤ 0 selects 25.
	Clients, Requests int
	// Seed drives request sequencing (not the workload).
	Seed int64
	// Mix weights the request kinds.
	Mix Mix
	// BatchSize is the databases per /v1/batch request; ≤ 0 selects 4
	// (capped at the query's database count).
	BatchSize int
	// Timeout is the per-request client timeout; ≤ 0 selects 30s.
	Timeout time.Duration
}

// Call records one request and the served answer, keyed into the
// workload so Validate can recompute ground truth.
type Call struct {
	Kind     string // "classify", "certain", or "batch"
	QueryIdx int
	DBIdx    []int  // databases involved, in request order (empty for classify)
	Status   int    // HTTP status
	Err      string // transport or non-200 failure
	Verdict  string
	Certain  []bool // served answers, index-aligned with DBIdx
}

// Report is the outcome of a run.
type Report struct {
	Duration time.Duration
	Total    int
	Failures int
	Kinds    map[string]int
	Latency  metrics.HistogramSnapshot
	Calls    []Call
}

// Throughput returns requests per second over the whole run.
func (r *Report) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Total) / r.Duration.Seconds()
}

// String renders the report as a short multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests in %v (%.0f req/s), %d failed\n",
		r.Total, r.Duration.Round(time.Millisecond), r.Throughput(), r.Failures)
	fmt.Fprintf(&b, "  mix: classify=%d certain=%d batch=%d\n",
		r.Kinds["classify"], r.Kinds["certain"], r.Kinds["batch"])
	fmt.Fprintf(&b, "  latency: %s", r.Latency)
	return b.String()
}

// Run drives baseURL with opt over w until every client has issued its
// requests or ctx is cancelled. The returned report is complete even on
// cancellation (it covers the requests that ran).
func Run(ctx context.Context, baseURL string, w *Workload, opt Options) (*Report, error) {
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty workload")
	}
	if opt.Clients <= 0 {
		opt.Clients = 4
	}
	if opt.Requests <= 0 {
		opt.Requests = 25
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 4
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	mix := opt.Mix.normalize()
	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Clients * 2,
			MaxIdleConnsPerHost: opt.Clients * 2,
		},
	}
	defer client.CloseIdleConnections()

	hist := metrics.NewHistogram(nil)
	perClient := make([][]Call, opt.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(c)*7919))
			calls := make([]Call, 0, opt.Requests)
			for i := 0; i < opt.Requests; i++ {
				if ctx.Err() != nil {
					break
				}
				call := oneRequest(ctx, client, baseURL, w, rng, mix, opt.BatchSize, hist)
				calls = append(calls, call)
			}
			perClient[c] = calls
		}(c)
	}
	wg.Wait()

	rep := &Report{
		Duration: time.Since(start),
		Kinds:    map[string]int{},
		Latency:  hist.Snapshot(),
	}
	for _, calls := range perClient {
		for _, call := range calls {
			rep.Total++
			rep.Kinds[call.Kind]++
			if call.Err != "" {
				rep.Failures++
			}
			rep.Calls = append(rep.Calls, call)
		}
	}
	return rep, ctx.Err()
}

// oneRequest issues a single request of a kind drawn from the mix.
func oneRequest(ctx context.Context, client *http.Client, baseURL string, w *Workload, rng *rand.Rand, mix Mix, batchSize int, hist *metrics.Histogram) Call {
	qi := rng.Intn(len(w.Queries))
	wq := &w.Queries[qi]
	pick := rng.Intn(mix.Classify + mix.Certain + mix.Batch)
	var call Call
	call.QueryIdx = qi

	var path string
	var body any
	switch {
	case pick < mix.Classify:
		call.Kind = "classify"
		path = "/v1/classify"
		body = server.ClassifyRequest{Query: wq.Source}
	case pick < mix.Classify+mix.Certain:
		call.Kind = "certain"
		di := rng.Intn(len(wq.DBs))
		call.DBIdx = []int{di}
		path = "/v1/certain"
		body = server.CertainRequest{Query: wq.Source, Facts: wq.Facts[di]}
	default:
		call.Kind = "batch"
		n := batchSize
		if n > len(wq.DBs) {
			n = len(wq.DBs)
		}
		facts := make([]string, n)
		for i := 0; i < n; i++ {
			di := rng.Intn(len(wq.DBs))
			call.DBIdx = append(call.DBIdx, di)
			facts[i] = wq.Facts[di]
		}
		path = "/v1/batch"
		body = server.BatchRequest{Query: wq.Source, Facts: facts}
	}

	buf, err := json.Marshal(body)
	if err != nil {
		call.Err = err.Error()
		return call
	}
	req, err := http.NewRequestWithContext(ctx, "POST", baseURL+path, bytes.NewReader(buf))
	if err != nil {
		call.Err = err.Error()
		return call
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	hist.Observe(time.Since(t0))
	if err != nil {
		call.Err = err.Error()
		return call
	}
	defer resp.Body.Close()
	call.Status = resp.StatusCode
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		call.Err = err.Error()
		return call
	}
	if resp.StatusCode != http.StatusOK {
		call.Err = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		return call
	}
	switch call.Kind {
	case "classify":
		var out server.ClassifyResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			call.Err = err.Error()
			return call
		}
		call.Verdict = out.Verdict
	case "certain":
		var out server.CertainResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			call.Err = err.Error()
			return call
		}
		call.Verdict = out.Verdict
		call.Certain = []bool{out.Certain}
	case "batch":
		var out server.BatchResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			call.Err = err.Error()
			return call
		}
		call.Verdict = out.Verdict
		if len(out.Results) != len(call.DBIdx) {
			call.Err = fmt.Sprintf("batch returned %d results for %d databases", len(out.Results), len(call.DBIdx))
			return call
		}
		for i, res := range out.Results {
			if res.Error != "" {
				call.Err = fmt.Sprintf("batch item %d: %s", i, res.Error)
				return call
			}
			call.Certain = append(call.Certain, res.Certain)
		}
	}
	return call
}

// Validate cross-checks every successful served answer in the report
// against ground truth computed independently of the server: verdicts
// against core.Classify, CERTAINTY answers against core.Certain with
// EngineAuto (a fresh, uncached classification and evaluation per pair).
// Ground-truth results are memoized per (query, database) pair, so
// repeated traffic over the same pair is checked once. Returns the
// number of answers checked.
func Validate(rep *Report, w *Workload) (int, error) {
	type key struct{ qi, di int }
	truth := make(map[key]bool)
	verdicts := make(map[int]string)
	checked := 0
	for _, call := range rep.Calls {
		if call.Err != "" {
			continue
		}
		wq := &w.Queries[call.QueryIdx]
		want, ok := verdicts[call.QueryIdx]
		if !ok {
			cls, err := core.Classify(wq.Query)
			if err != nil {
				return checked, fmt.Errorf("ground-truth classify of %s: %w", wq.Source, err)
			}
			want = string(cls.Verdict)
			verdicts[call.QueryIdx] = want
		}
		if call.Verdict != "" && call.Verdict != want {
			return checked, fmt.Errorf("query %s: served verdict %q, ground truth %q", wq.Source, call.Verdict, want)
		}
		for i, di := range call.DBIdx {
			if i >= len(call.Certain) {
				break
			}
			k := key{call.QueryIdx, di}
			wantAns, ok := truth[k]
			if !ok {
				var err error
				wantAns, err = core.Certain(wq.Query, wq.DBs[di], core.EngineAuto)
				if err != nil {
					return checked, fmt.Errorf("ground truth for %s on db %d: %w", wq.Source, di, err)
				}
				truth[k] = wantAns
			}
			if call.Certain[i] != wantAns {
				return checked, fmt.Errorf("%s request: query %s db %d served %v, ground truth %v",
					call.Kind, wq.Source, di, call.Certain[i], wantAns)
			}
			checked++
		}
	}
	return checked, nil
}
