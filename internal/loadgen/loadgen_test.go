package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"

	"cqa/internal/server"
)

func TestWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(42, WorkloadOptions{Queries: 3, DBsPerQuery: 2})
	b := NewWorkload(42, WorkloadOptions{Queries: 3, DBsPerQuery: 2})
	if len(a.Queries) != 3 {
		t.Fatalf("queries = %d", len(a.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i].Source != b.Queries[i].Source {
			t.Errorf("query %d differs across same-seed workloads", i)
		}
		if len(a.Queries[i].Facts) != 2 {
			t.Errorf("query %d has %d databases", i, len(a.Queries[i].Facts))
		}
		for j := range a.Queries[i].Facts {
			if a.Queries[i].Facts[j] != b.Queries[i].Facts[j] {
				t.Errorf("query %d db %d differs across same-seed workloads", i, j)
			}
		}
	}
	c := NewWorkload(43, WorkloadOptions{Queries: 3, DBsPerQuery: 2})
	same := true
	for i := range a.Queries {
		if a.Queries[i].Source != c.Queries[i].Source {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestRunAgainstInProcessServer(t *testing.T) {
	s := server.New(server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	w := NewWorkload(7, WorkloadOptions{Queries: 3, DBsPerQuery: 2})
	rep, err := Run(context.Background(), ts.URL, w, Options{
		Clients:  3,
		Requests: 10,
		Seed:     99,
		Mix:      Mix{Classify: 1, Certain: 3, Batch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 30 {
		t.Errorf("total = %d, want 30", rep.Total)
	}
	if rep.Failures != 0 {
		for _, c := range rep.Calls {
			if c.Err != "" {
				t.Errorf("%s q%d: %s", c.Kind, c.QueryIdx, c.Err)
			}
		}
		t.Fatalf("failures = %d", rep.Failures)
	}
	if rep.Kinds["classify"]+rep.Kinds["certain"]+rep.Kinds["batch"] != 30 {
		t.Errorf("kinds = %v", rep.Kinds)
	}
	if rep.Latency.Count != 30 || rep.Throughput() <= 0 {
		t.Errorf("latency count = %d, throughput = %v", rep.Latency.Count, rep.Throughput())
	}

	checked, err := Validate(rep, w)
	if err != nil {
		t.Fatalf("validation: %v", err)
	}
	if checked == 0 {
		t.Error("validation checked no answers")
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	s := server.New(server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := NewWorkload(7, WorkloadOptions{Queries: 2, DBsPerQuery: 2})
	rep, err := Run(ctx, ts.URL, w, Options{Clients: 2, Requests: 100})
	if err == nil {
		t.Error("cancelled run should report the context error")
	}
	if rep == nil || rep.Total > 4 {
		t.Errorf("cancelled run still issued %v requests", rep)
	}
}

func TestRunEmptyWorkload(t *testing.T) {
	if _, err := Run(context.Background(), "http://127.0.0.1:0", &Workload{}, Options{}); err == nil {
		t.Error("empty workload should fail")
	}
}
