package fo_test

import (
	"testing"

	"cqa/internal/fo"
)

// FuzzBitmapEval decodes a small database and a closed formula from the
// fuzz input (same decoder as FuzzCompiledEval) and checks that the
// bitmap-vectorized evaluator agrees with the scalar compiled pipeline
// and the unoptimized reference. Part of `make fuzz`.
func FuzzBitmapEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2, 5, 9, 200, 14, 3, 3, 7})
	f.Add([]byte{7, 255, 1, 0, 42, 17, 6, 6, 6, 80, 80, 13, 2, 91})
	f.Add([]byte{4, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := &fuzzDecoder{data: data}
		d := fz.database()
		formula := fz.sentence()
		want := fo.EvalReference(d, formula)
		p, err := fo.Compile(formula)
		if err != nil {
			t.Fatalf("Compile(%s): %v", formula, err)
		}
		b := p.Bind(d.Interned())
		if got := b.Eval(); got != want {
			t.Fatalf("compiled = %v, reference = %v on %s with db:\n%s", got, want, formula, d)
		}
		if got := b.EvalBitmap(); got != want {
			t.Fatalf("compiled-bitmap = %v, reference = %v on %s (vec quants %d) with db:\n%s",
				got, want, formula, p.VecQuants(), d)
		}
	})
}
