package fo_test

import (
	"math/rand"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// TestEvalParallelAgreesWithEval checks the parallel hot path against the
// sequential evaluator on random rewritings and databases, forcing the
// fan-out with a threshold of 1 so even tiny candidate lists take the
// parallel path.
func TestEvalParallelAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DBOptions{BlocksPerRelation: 5, MaxBlockSize: 3, DomainPerVariable: 4, ConstantBias: 0.7}
	cases := 0
	for cases < 120 {
		q := gen.Query(rng, opts)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			continue // not FO; the parallel path only sees rewritings
		}
		cases++
		d := gen.Database(rng, q, dbOpts)
		want := fo.Eval(d, f)
		for _, workers := range []int{1, 2, 7} {
			if got := fo.EvalParallelOpts(d, f, workers, 1); got != want {
				t.Fatalf("EvalParallel(workers=%d) = %v, Eval = %v on %s\n%s", workers, got, want, q, d)
			}
		}
		if got := fo.EvalParallel(d, f, 4); got != want {
			t.Fatalf("EvalParallel(default threshold) = %v, Eval = %v on %s", got, want, q)
		}
	}
}

// The fixed example queries exercise ∀-heavy rewritings (negated atoms
// become guarded universals) through the parallel path.
func TestEvalParallelExamples(t *testing.T) {
	queries := []string{
		"R(x | y), S(y | z)",
		"P(x | y), !N('c' | y)",
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)",
	}
	rng := rand.New(rand.NewSource(78))
	for _, src := range queries {
		q := parse.MustQuery(src)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for trial := 0; trial < 20; trial++ {
			d := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: 8, MaxBlockSize: 2, DomainPerVariable: 5, ConstantBias: 0.6})
			want := fo.Eval(d, f)
			if got := fo.EvalParallelOpts(d, f, 8, 1); got != want {
				t.Fatalf("%s: parallel = %v, sequential = %v\n%s", src, got, want, d)
			}
		}
	}
}

// EvalParallel must reject non-sentences exactly like Eval.
func TestEvalParallelPanicsOnFreeVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on free variables")
		}
	}()
	d := parse.MustDatabase("R(a | b)")
	f := fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{schema.Var("x"), schema.Var("y")}}
	fo.EvalParallel(d, f, 2)
}
