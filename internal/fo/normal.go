package fo

import (
	"fmt"
	"strconv"

	"cqa/internal/schema"
)

// NNF returns the negation normal form: negation is pushed inward until
// it rests on atoms and equalities, implications are expanded, and double
// negations are collapsed. The transformation is semantics-preserving on
// every database.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, negated bool) Formula {
	switch g := f.(type) {
	case Truth:
		return Truth(bool(g) != negated)
	case Atom:
		if negated {
			return Not{F: g}
		}
		return g
	case Eq:
		if negated {
			return Not{F: g}
		}
		return g
	case Not:
		return nnf(g.F, !negated)
	case And:
		parts := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			parts[i] = nnf(sub, negated)
		}
		if negated {
			return NewOr(parts...)
		}
		return NewAnd(parts...)
	case Or:
		parts := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			parts[i] = nnf(sub, negated)
		}
		if negated {
			return NewAnd(parts...)
		}
		return NewOr(parts...)
	case Implies:
		// L → R ≡ ¬L ∨ R.
		if negated {
			return NewAnd(nnf(g.L, false), nnf(g.R, true))
		}
		return NewOr(nnf(g.L, true), nnf(g.R, false))
	case Exists:
		body := nnf(g.Body, negated)
		if negated {
			return Forall{Vars: g.Vars, Body: body}
		}
		return Exists{Vars: g.Vars, Body: body}
	case Forall:
		body := nnf(g.Body, negated)
		if negated {
			return Exists{Vars: g.Vars, Body: body}
		}
		return Forall{Vars: g.Vars, Body: body}
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// QuantifierRank returns the maximum nesting depth of quantifiers.
func QuantifierRank(f Formula) int {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return 0
	case Not:
		return QuantifierRank(g.F)
	case And:
		m := 0
		for _, sub := range g.Fs {
			if r := QuantifierRank(sub); r > m {
				m = r
			}
		}
		return m
	case Or:
		m := 0
		for _, sub := range g.Fs {
			if r := QuantifierRank(sub); r > m {
				m = r
			}
		}
		return m
	case Implies:
		l, r := QuantifierRank(g.L), QuantifierRank(g.R)
		if l > r {
			return l
		}
		return r
	case Exists:
		return len(g.Vars) + QuantifierRank(g.Body)
	case Forall:
		return len(g.Vars) + QuantifierRank(g.Body)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// AlternationDepth returns the number of ∃/∀ alternations along the
// deepest path of the NNF of the formula — a coarse measure of logical
// complexity used to report rewriting shapes.
func AlternationDepth(f Formula) int {
	depth, _ := alternation(NNF(f), 0)
	return depth
}

// alternation returns the maximum alternation count below f, given the
// last quantifier kind (0 none, 1 ∃, 2 ∀).
func alternation(f Formula, last int) (int, int) {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return 0, last
	case Not:
		return alternation(g.F, last)
	case And:
		m := 0
		for _, sub := range g.Fs {
			if d, _ := alternation(sub, last); d > m {
				m = d
			}
		}
		return m, last
	case Or:
		m := 0
		for _, sub := range g.Fs {
			if d, _ := alternation(sub, last); d > m {
				m = d
			}
		}
		return m, last
	case Implies:
		l, _ := alternation(g.L, last)
		r, _ := alternation(g.R, last)
		if l > r {
			return l, last
		}
		return r, last
	case Exists:
		inc := 0
		if last == 2 {
			inc = 1
		}
		d, _ := alternation(g.Body, 1)
		return inc + d, 1
	case Forall:
		inc := 0
		if last == 1 {
			inc = 1
		}
		d, _ := alternation(g.Body, 2)
		return inc + d, 2
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// Prenex returns an equivalent formula with all quantifiers at the front,
// after NNF and with bound variables renamed apart. The equivalence holds
// over non-empty active domains (the classical prenex laws assume a
// non-empty universe; an empty active domain arises only for an empty
// database and constant-free formula).
func Prenex(f Formula) Formula {
	p := &prenexer{used: make(map[string]bool)}
	for v := range FreeVars(f) {
		p.used[v] = true
	}
	collectAllVars(f, p.used)
	prefix, matrix := p.pull(NNF(f), map[string]string{})
	out := matrix
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i].forall {
			out = Forall{Vars: []string{prefix[i].name}, Body: out}
		} else {
			out = Exists{Vars: []string{prefix[i].name}, Body: out}
		}
	}
	return out
}

type quant struct {
	name   string
	forall bool
}

type prenexer struct {
	used map[string]bool
	next int
}

func (p *prenexer) fresh(base string) string {
	if !p.used[base] {
		p.used[base] = true
		return base
	}
	for {
		p.next++
		name := base + "_" + strconv.Itoa(p.next)
		if !p.used[name] {
			p.used[name] = true
			return name
		}
	}
}

// pull extracts the quantifier prefix from an NNF formula, renaming bound
// variables apart; ren maps original bound names to their fresh names in
// the current scope.
func (p *prenexer) pull(f Formula, ren map[string]string) ([]quant, Formula) {
	switch g := f.(type) {
	case Truth:
		return nil, g
	case Atom:
		return nil, Atom{Rel: g.Rel, Key: g.Key, Terms: renameTerms(g.Terms, ren)}
	case Eq:
		ts := renameTerms([]schema.Term{g.L, g.R}, ren)
		return nil, Eq{L: ts[0], R: ts[1]}
	case Not:
		// NNF: negation only on atoms/equalities.
		inner, matrix := p.pull(g.F, ren)
		if len(inner) != 0 {
			panic("fo: Prenex on non-NNF input")
		}
		return nil, Not{F: matrix}
	case And:
		var prefix []quant
		parts := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			pre, matrix := p.pull(sub, ren)
			prefix = append(prefix, pre...)
			parts[i] = matrix
		}
		return prefix, NewAnd(parts...)
	case Or:
		var prefix []quant
		parts := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			pre, matrix := p.pull(sub, ren)
			prefix = append(prefix, pre...)
			parts[i] = matrix
		}
		return prefix, NewOr(parts...)
	case Exists:
		return p.pullQuant(g.Vars, g.Body, ren, false)
	case Forall:
		return p.pullQuant(g.Vars, g.Body, ren, true)
	default:
		panic(fmt.Sprintf("fo: Prenex on unexpected node %T (not NNF?)", f))
	}
}

func (p *prenexer) pullQuant(vars []string, body Formula, ren map[string]string, forall bool) ([]quant, Formula) {
	inner := make(map[string]string, len(ren)+len(vars))
	for k, v := range ren {
		inner[k] = v
	}
	var prefix []quant
	for _, v := range vars {
		fresh := p.fresh(v)
		inner[v] = fresh
		prefix = append(prefix, quant{name: fresh, forall: forall})
	}
	sub, matrix := p.pull(body, inner)
	return append(prefix, sub...), matrix
}

// renameTerms applies the bound-variable renaming to a term list.
func renameTerms(ts []schema.Term, ren map[string]string) []schema.Term {
	out := make([]schema.Term, len(ts))
	for i, t := range ts {
		if t.IsVar {
			if fresh, ok := ren[t.Name]; ok {
				out[i] = schema.Var(fresh)
				continue
			}
		}
		out[i] = t
	}
	return out
}

// collectAllVars adds every variable name occurring anywhere (free or
// bound) to the set, so fresh names never collide.
func collectAllVars(f Formula, out map[string]bool) {
	switch g := f.(type) {
	case Atom:
		for _, t := range g.Terms {
			if t.IsVar {
				out[t.Name] = true
			}
		}
	case Eq:
		for _, t := range []schema.Term{g.L, g.R} {
			if t.IsVar {
				out[t.Name] = true
			}
		}
	case Truth:
	case Not:
		collectAllVars(g.F, out)
	case And:
		for _, sub := range g.Fs {
			collectAllVars(sub, out)
		}
	case Or:
		for _, sub := range g.Fs {
			collectAllVars(sub, out)
		}
	case Implies:
		collectAllVars(g.L, out)
		collectAllVars(g.R, out)
	case Exists:
		for _, v := range g.Vars {
			out[v] = true
		}
		collectAllVars(g.Body, out)
	case Forall:
		for _, v := range g.Vars {
			out[v] = true
		}
		collectAllVars(g.Body, out)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}
