package fo

import "cqa/internal/db"

// This file implements support-set recording for the delta layer
// (internal/delta): an evaluation run can optionally record the set of
// blocks its membership probes touched. A compiled evaluation is a
// deterministic function of (constant resolution, candidate lists,
// probe answers); replaying a recorded run against a later version
// yields the same verdict as long as those three inputs are unchanged.
// The support set makes the probe-answer part checkable: a write that
// dirties no recorded block cannot change any probe answer along the
// recorded trajectory. The candidate-list and constant parts are
// checked by the delta layer from the static program analysis below
// (CandSources, UsesDomain) and the dictionary chain (db.Interned ids
// are stable across InternNext).

// Support is the compact record of one evaluation run: the blocks every
// membership probe touched, keyed by BlockHash over the probed
// relation's name and the probe's key-prefix ids (ids of Ix's
// dictionary chain; probes through unresolved constants use their
// synthetic ids, which only ever produce spurious matches — the delta
// layer re-evaluates whenever a dirty block carries a value the
// recorded view did not know). Read-only after EvalSupport.
type Support struct {
	// Ix is the interned view the recording ran against.
	Ix *db.Interned
	// Blocks holds BlockHash(rel, keyIDs) for every probed block.
	Blocks map[uint64]struct{}
	// AbsentRels lists program relations the database did not declare
	// at bind time: every probe on them answered false without touching
	// a block, so any write to them must force re-evaluation.
	AbsentRels []string
}

// Holds reports whether the support's block set contains the block
// hash h.
func (s *Support) Holds(h uint64) bool {
	_, ok := s.Blocks[h]
	return ok
}

// BlockSeed returns the per-relation seed of the block hash: FNV-1a/64
// over the relation name. Extending a seed with a block's key-prefix
// ids (BlockHashIDs) identifies the block across every version that
// shares the recorded view's dictionary chain.
func BlockSeed(rel string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(rel); i++ {
		h ^= uint64(rel[i])
		h *= 1099511628211
	}
	return h
}

// BlockHashIDs extends a relation seed with a block's key-prefix ids.
func BlockHashIDs(seed uint64, key []int32) uint64 {
	h := seed
	for _, v := range key {
		u := uint32(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= 1099511628211
		}
	}
	return h
}

// recorder accumulates probed blocks during one EvalSupport run. seeds
// is indexed by the program's relation table, so a probe costs one hash
// and one set insert on top of the normal probe.
type recorder struct {
	seeds  []uint64
	blocks map[uint64]struct{}
}

func (rc *recorder) probe(rel int, key []int32) {
	rc.blocks[BlockHashIDs(rc.seeds[rel], key)] = struct{}{}
}

// EvalSupport evaluates the bound program like Eval while recording the
// support set of the run. It is the registration/re-evaluation path of
// the delta layer, not a hot path: it allocates a private machine and a
// fresh Support per call. Safe for concurrent use.
func (b *Bound) EvalSupport() (bool, *Support) {
	rc := &recorder{
		seeds:  make([]uint64, len(b.p.rels)),
		blocks: make(map[uint64]struct{}),
	}
	sup := &Support{Ix: b.ix, Blocks: rc.blocks}
	for i, name := range b.p.rels {
		rc.seeds[i] = BlockSeed(name)
		if b.rels[i] == nil {
			sup.AbsentRels = append(sup.AbsentRels, name)
		}
	}
	m := &mach{b: b, env: make([]int32, b.p.slots), argbuf: make([]int32, b.p.maxArity), rec: rc}
	return b.p.root.eval(m), sup
}

// Rels returns the distinct relation names the program mentions. The
// caller must not mutate the result.
func (p *Program) Rels() []string { return p.rels }

// CandSource names one posting-list candidate source of a program: the
// quantifier-restriction analysis may draw a variable's candidate
// values from column Col of relation Rel. The delta layer re-evaluates
// a registration whenever a write changes the value set of any of its
// program's candidate sources — that covers every alternative of a
// pick (Bind's size-based choice may differ across versions) and every
// branch of a union.
type CandSource struct {
	Rel string
	Col int
}

// CandSources returns every posting-list candidate source occurring in
// the program's candidate plans, deduplicated.
func (p *Program) CandSources() []CandSource {
	seen := make(map[CandSource]bool)
	var out []CandSource
	var walk func(plan candPlan)
	walk = func(plan candPlan) {
		switch g := plan.(type) {
		case candCol:
			cs := CandSource{Rel: p.rels[g.rel], Col: g.col}
			if !seen[cs] {
				seen[cs] = true
				out = append(out, cs)
			}
		case candPick:
			for _, sub := range g.of {
				walk(sub)
			}
		case candUnion:
			for _, sub := range g.of {
				walk(sub)
			}
		}
	}
	for _, plan := range p.cands {
		walk(plan)
	}
	return out
}

// UsesDomain reports whether any quantifier of the program falls back
// to active-domain candidates. Such programs are sensitive to every
// write that introduces or retires a domain value, so the delta layer
// excludes them from block-level skipping.
func (p *Program) UsesDomain() bool {
	var uses func(plan candPlan) bool
	uses = func(plan candPlan) bool {
		switch g := plan.(type) {
		case candDomain:
			return true
		case candPick:
			// Bind keeps only the smallest alternative, but the choice is
			// version-dependent; treat a domain alternative as domain use.
			for _, sub := range g.of {
				if uses(sub) {
					return true
				}
			}
		case candUnion:
			for _, sub := range g.of {
				if uses(sub) {
					return true
				}
			}
		}
		return false
	}
	for _, plan := range p.cands {
		if uses(plan) {
			return true
		}
	}
	return false
}
