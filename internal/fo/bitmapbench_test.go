package fo_test

import (
	"math/rand"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
)

// benchBound builds the E-series scaling workload at the given block
// count and returns the bound program (certbench measures the official
// numbers; this benchmark is the in-package probe).
func benchBound(b *testing.B, blocks int) *fo.Bound {
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(blocks)))
	opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2,
		DomainPerVariable: blocks, ConstantBias: 0.7}
	d := gen.Database(rng, q, opt)
	p := fo.MustCompile(f)
	bound := p.Bind(d.Interned())
	if bound.EvalBitmap() != bound.Eval() {
		b.Fatal("bitmap disagrees with scalar on the benchmark workload")
	}
	return bound
}

func BenchmarkBitmapEval1024(b *testing.B) {
	bound := benchBound(b, 1024)
	bound.EvalBitmap() // build the lazy hole indexes outside the timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound.EvalBitmap()
	}
}

func BenchmarkScalarEval1024(b *testing.B) {
	bound := benchBound(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound.Eval()
	}
}
