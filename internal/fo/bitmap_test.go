package fo_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// 500-case differential test: the bitmap-vectorized evaluator agrees
// with the scalar compiled evaluator, the tree walker, and the
// unoptimized reference on random closed formulas — including formulas
// with constants outside the database and databases with empty or
// missing relations.
func TestBitmapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(318))
	trials := 0
	for trials < 500 {
		f := randFormula(rng, 1+rng.Intn(3), nil)
		if !fo.FreeVars(f).Empty() {
			continue
		}
		trials++
		d := randSmallDB(rng)
		if trials%7 == 0 {
			// Exercise the empty-relation path: declared but no facts.
			d = db.New()
			d.MustDeclare("R", 2, 1)
			d.MustDeclare("S", 1, 1)
		}
		want := fo.EvalReference(d, f)
		if got := fo.Eval(d, f); got != want {
			t.Fatalf("tree walker = %v, reference = %v on %s with db:\n%s", got, want, f, d)
		}
		p, err := fo.Compile(f)
		if err != nil {
			t.Fatalf("Compile(%s): %v", f, err)
		}
		b := p.Bind(d.Interned())
		if got := b.Eval(); got != want {
			t.Fatalf("compiled = %v, reference = %v on %s with db:\n%s", got, want, f, d)
		}
		if got := b.EvalBitmap(); got != want {
			t.Fatalf("compiled-bitmap = %v, reference = %v on %s (vec quants %d) with db:\n%s",
				got, want, f, p.VecQuants(), d)
		}
	}
}

// randFormula draws constants from {a,b,c,d} while randSmallDB only
// inserts {a,b,c}, so the differential above already sees out-of-db
// constants; this pins the synthetic-id interplay with vectorized
// equality and quantification explicitly.
func TestBitmapConstantsOutsideDatabase(t *testing.T) {
	d := db.New()
	d.MustDeclare("S", 1, 1)
	d.MustInsert(db.F("S", "a"))
	// ∃x (x = zzz ∧ ¬S(x)): the witness is the synthetic id of zzz.
	f := fo.Exists{Vars: []string{"x"}, Body: fo.NewAnd(
		fo.Eq{L: schema.Var("x"), R: schema.Const("zzz-not-in-db")},
		fo.Not{F: fo.Atom{Rel: "S", Key: 1, Terms: []schema.Term{schema.Var("x")}}},
	)}
	p := fo.MustCompile(f)
	if p.VecQuants() == 0 {
		t.Fatal("quantifier with equality + negated atom did not vectorize")
	}
	b := p.Bind(d.Interned())
	if !b.EvalBitmap() {
		t.Fatal("bitmap eval lost the synthetic-constant witness")
	}
	if b.EvalBitmap() != b.Eval() {
		t.Fatal("bitmap disagrees with scalar on synthetic constants")
	}
	// Same over an undeclared relation: ∃x (x = c ∧ ¬R(x, x)) is true.
	g := fo.Exists{Vars: []string{"x"}, Body: fo.NewAnd(
		fo.Eq{L: schema.Var("x"), R: schema.Const("c")},
		fo.Not{F: fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{schema.Var("x"), schema.Var("x")}}},
	)}
	pg := fo.MustCompile(g)
	bg := pg.Bind(d.Interned())
	if bg.EvalBitmap() != bg.Eval() {
		t.Fatal("bitmap disagrees with scalar on an undeclared relation")
	}
}

// The bitmap evaluator agrees with the scalar pipeline on real
// certain-answer rewritings over generated databases, and the rewriting
// shapes the serving tier benchmarks actually vectorize.
func TestBitmapAgreesOnRewritings(t *testing.T) {
	rng := rand.New(rand.NewSource(319))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested, vectorized := 0, 0
	for tested < 40 {
		q := gen.Query(rng, opts)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			continue
		}
		tested++
		d := gen.Database(rng, q, dbOpts)
		want := fo.Eval(d, f)
		p := fo.MustCompile(f)
		if p.VecQuants() > 0 {
			vectorized++
		}
		b := p.Bind(d.Interned())
		for i := 0; i < 3; i++ {
			if got := b.EvalBitmap(); got != want {
				t.Fatalf("compiled-bitmap = %v, tree walker = %v on rewriting of %s\n%s", got, want, q, d)
			}
		}
		if got := b.Eval(); got != want {
			t.Fatalf("scalar Bound broken after bitmap use on rewriting of %s", q)
		}
	}
	if vectorized == 0 {
		t.Fatal("no generated rewriting vectorized a single quantifier")
	}
}

// The benchmark workloads must take the vectorized path, otherwise the
// E18 gate measures nothing.
func TestBitmapVectorizesBenchQueries(t *testing.T) {
	for _, qs := range []string{
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"R0(x0 | x1), R1(x1 | x2), R2(x2 | x3), !N(x0 | x1)",
	} {
		q, err := parse.Query(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		f, err := rewrite.Rewrite(q)
		if err != nil {
			t.Fatalf("rewrite %q: %v", qs, err)
		}
		p := fo.MustCompile(f)
		if p.VecQuants() == 0 {
			t.Fatalf("rewriting of %q lowered zero vectorized quantifiers", qs)
		}
	}
}

// 32 goroutines share one Bound (one pool, one lazily built set of hole
// indexes) and must all read the same verdicts from both pipelines. Run
// under -race this is the shared-program race test.
func TestBitmapSharedBoundRace(t *testing.T) {
	rng := rand.New(rand.NewSource(320))
	d := db.New()
	d.MustDeclare("Lives", 2, 1)
	d.MustDeclare("Born", 2, 1)
	d.MustDeclare("Likes", 2, 2)
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("p%d", rng.Intn(60))
		c := fmt.Sprintf("c%d", rng.Intn(40))
		d.MustInsert(db.F("Lives", p, c))
		if rng.Intn(3) == 0 {
			d.MustInsert(db.F("Born", p, c))
		}
	}
	q, err := parse.Query("Lives(p | t), !Born(p | t), !Likes(p, t)")
	if err != nil {
		t.Fatal(err)
	}
	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	p := fo.MustCompile(f)
	b := p.Bind(d.Interned())
	want := b.Eval()

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := b.EvalBitmap(); got != want {
					errs <- fmt.Sprintf("bitmap verdict flipped to %v", got)
					return
				}
				if got := b.Eval(); got != want {
					errs <- fmt.Sprintf("scalar verdict flipped to %v", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Larger instances push the IDSet construction across the dense/sparse
// boundary; the verdicts must not depend on the representation.
func TestBitmapDenseSparseBoundary(t *testing.T) {
	for _, n := range []int{4, 64, 300, 1500} {
		d := db.New()
		d.MustDeclare("Lives", 2, 1)
		d.MustDeclare("Born", 2, 1)
		d.MustDeclare("Likes", 2, 2)
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("p%06d", i)
			c := fmt.Sprintf("c%06d", i%97)
			d.MustInsert(db.F("Lives", p, c))
			if i%13 == 0 {
				d.MustInsert(db.F("Lives", p, fmt.Sprintf("c%06d", (i+1)%97)))
			}
			if i%7 == 0 {
				d.MustInsert(db.F("Born", p, c))
			}
		}
		q, err := parse.Query("Lives(p | t), !Born(p | t), !Likes(p, t)")
		if err != nil {
			t.Fatal(err)
		}
		f, err := rewrite.Rewrite(q)
		if err != nil {
			t.Fatal(err)
		}
		p := fo.MustCompile(f)
		b := p.Bind(d.Interned())
		if got, want := b.EvalBitmap(), b.Eval(); got != want {
			t.Fatalf("n=%d: bitmap = %v, scalar = %v", n, got, want)
		}
	}
}
