package fo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cqa/internal/db"
)

// DefaultMinParallelCandidates is the candidate-list size at which
// EvalParallel starts fanning a top-level quantifier across workers.
// Below it the per-goroutine overhead dominates and the sequential
// evaluator wins; the candidate list is derived from the database (column
// indexes or active domain), so this is effectively a database-size
// threshold.
const DefaultMinParallelCandidates = 64

// EvalParallel model-checks a sentence like Eval, but splits the
// iteration of top-level quantifiers over their candidate values across
// up to workers goroutines. Top-level here means quantifiers reachable
// from the root through ∧, ∨, and ¬ only — exactly the shape of the
// consistent first-order rewritings (∃-blocks and guarded ∀-blocks joined
// by Boolean connectives). Inner quantifiers always run sequentially.
// workers ≤ 0 selects GOMAXPROCS. The answer is identical to Eval.
func EvalParallel(d *db.Database, f Formula, workers int) bool {
	return EvalParallelOpts(d, f, workers, DefaultMinParallelCandidates)
}

// EvalParallelOpts is EvalParallel with an explicit fan-out threshold: a
// quantifier is parallelized only when its candidate list has at least
// minCandidates values (minCandidates ≤ 0 selects the default).
func EvalParallelOpts(d *db.Database, f Formula, workers, minCandidates int) bool {
	if free := FreeVars(f); !free.Empty() {
		panic(fmt.Sprintf("fo: EvalParallel on non-sentence with free variables %s", free))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if minCandidates <= 0 {
		minCandidates = DefaultMinParallelCandidates
	}
	ev := &evaluator{d: d}
	ev.domain = activeDomain(d, f)
	pe := &parEvaluator{ev: ev, workers: workers, minCandidates: minCandidates}
	return pe.eval(f)
}

// parEvaluator drives the top-level Boolean skeleton of a sentence,
// delegating quantifier fan-out to parExists. The wrapped evaluator is
// read-only and shared by all workers; every worker owns its environment.
type parEvaluator struct {
	ev            *evaluator
	workers       int
	minCandidates int
}

func (pe *parEvaluator) eval(f Formula) bool {
	switch g := f.(type) {
	case And:
		for _, sub := range g.Fs {
			if !pe.eval(sub) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if pe.eval(sub) {
				return true
			}
		}
		return false
	case Not:
		return !pe.eval(g.F)
	case Implies:
		return !pe.eval(g.L) || pe.eval(g.R)
	case Exists:
		return pe.exists(g.Vars, g.Body)
	case Forall:
		// ∀x⃗ φ ≡ ¬∃x⃗ ¬φ, as in the sequential evaluator.
		return !pe.exists(g.Vars, Not{F: g.Body})
	default:
		return pe.ev.eval(f, make(map[string]string))
	}
}

// EvalParallel evaluates the bound program like Eval, but splits the
// candidate iteration of top-level quantifiers (those reachable from the
// root through ∧, ∨, ¬, and → only — the shape of the consistent
// first-order rewritings) across up to workers goroutines. Inner
// quantifiers run sequentially per worker. workers ≤ 0 selects
// GOMAXPROCS, minCandidates ≤ 0 selects DefaultMinParallelCandidates.
// The answer is identical to Eval.
func (b *Bound) EvalParallel(workers, minCandidates int) bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if minCandidates <= 0 {
		minCandidates = DefaultMinParallelCandidates
	}
	return b.parNode(b.p.root, workers, minCandidates)
}

func (b *Bound) parNode(n node, workers, minCandidates int) bool {
	switch g := n.(type) {
	case *nAnd:
		for _, sub := range g.fs {
			if !b.parNode(sub, workers, minCandidates) {
				return false
			}
		}
		return true
	case *nOr:
		for _, sub := range g.fs {
			if b.parNode(sub, workers, minCandidates) {
				return true
			}
		}
		return false
	case *nNot:
		return !b.parNode(g.f, workers, minCandidates)
	case *nImplies:
		return !b.parNode(g.l, workers, minCandidates) || b.parNode(g.r, workers, minCandidates)
	case *nExists:
		return b.parExists(g, workers, minCandidates)
	default:
		return b.evalNode(n)
	}
}

// evalNode evaluates one subtree on a pooled machine.
func (b *Bound) evalNode(n node) bool {
	m := b.pool.Get().(*mach)
	r := n.eval(m)
	b.pool.Put(m)
	return r
}

// parExists fans the candidate list of one compiled quantifier across
// workers; each worker owns a pooled machine and evaluates the body
// sequentially. Early exit is cooperative, exactly like the tree walker's
// parallel path.
func (b *Bound) parExists(e *nExists, workers, minCandidates int) bool {
	cands := b.cands[e.cand]
	if workers <= 1 || len(cands) < minCandidates {
		return b.evalNode(e)
	}
	var found atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := b.pool.Get().(*mach)
			defer b.pool.Put(m)
			for !found.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				m.env[e.slot] = cands[i]
				if e.body.eval(m) {
					found.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return found.Load()
}

// exists fans the candidate values of the first quantified variable
// across workers; each worker runs the sequential evaluator for the
// remaining variables and body. Early exit is cooperative: the first
// worker to find a witness flips the flag and the rest stop at their next
// candidate.
func (pe *parEvaluator) exists(vars []string, body Formula) bool {
	if len(vars) == 0 {
		return pe.eval(body)
	}
	x, rest := vars[0], vars[1:]
	cands, restricted := pe.ev.candidates(x, body, true)
	if !restricted {
		cands = pe.ev.domain
	}
	if pe.workers <= 1 || len(cands) < pe.minCandidates {
		return pe.ev.exists(vars, body, make(map[string]string))
	}
	var found atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < pe.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := make(map[string]string)
			for !found.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				env[x] = cands[i]
				if pe.ev.exists(rest, body, env) {
					found.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return found.Load()
}
