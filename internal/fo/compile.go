package fo

import (
	"fmt"
	"sort"
	"sync"

	"cqa/internal/db"
	"cqa/internal/schema"
)

// This file implements the compiled evaluation pipeline: a Formula is
// lowered once into a Program whose environments are slot-indexed []int32
// (no map[string]string, no strings.Join tuple keys), whose constants are
// resolved to dictionary ids, and whose quantifiers range over
// precomputed candidate lists (column posting lists of the interned
// database, constant singletons, or the active domain as a last resort).
// The quantifier-restriction analysis is the compile-time mirror of
// evaluator.candidates, so Program results are identical to Eval by
// construction; FuzzCompiledEval and TestCompiledDifferential enforce it.
//
// Lifecycle: Compile once per formula → Bind once per (program, interned
// database) → Eval any number of times, concurrently. Programs, plans,
// and Bounds are read-only after construction; per-evaluation state lives
// in pooled machines, so steady-state evaluation performs no allocation.

// termRef encodes a compiled term: values ≥ 0 are environment slots,
// values < 0 are constant-table indexes (^ref).
type termRef int32

func slotRef(s int) termRef  { return termRef(s) }
func constRef(c int) termRef { return ^termRef(c) }

// candPlan is a compile-time description of where a quantified variable's
// candidate values come from. Plans are materialized into concrete
// []int32 lists at Bind time (they depend only on the database, never on
// the environment).
type candPlan interface{ isCand() }

// candDomain ranges over the active domain (no restricting guard found).
type candDomain struct{}

// candCol ranges over the posting list of one positive-atom column.
type candCol struct{ rel, col int }

// candConst is the singleton from a ground equality x = c.
type candConst struct{ c int }

// candPick takes the smallest of several sound restrictions (conjunctive
// contexts: any single restriction is sound).
type candPick struct{ of []candPlan }

// candUnion takes the union of several restrictions (disjunctive
// contexts: every branch must restrict for the union to be sound).
type candUnion struct{ of []candPlan }

func (candDomain) isCand() {}
func (candCol) isCand()    {}
func (candConst) isCand()  {}
func (candPick) isCand()   {}
func (candUnion) isCand()  {}

// node is one compiled formula node. eval must not retain m.
type node interface{ eval(m *mach) bool }

type nTruth bool

type nAtom struct {
	rel   int // index into Bound.rels; nil entry = relation absent = false
	terms []termRef
}

type nEq struct{ l, r termRef }

type nNot struct{ f node }

type nAnd struct{ fs []node }

type nOr struct{ fs []node }

type nImplies struct{ l, r node }

// nExists binds one variable (one slot) over one candidate list.
// Multi-variable quantifier blocks compile to nested nExists.
type nExists struct {
	slot int32
	cand int32 // index into Bound.cands
	body node
}

func (t nTruth) eval(*mach) bool { return bool(t) }

func (a *nAtom) eval(m *mach) bool {
	r := m.b.rels[a.rel]
	if r == nil {
		return false
	}
	buf := m.argbuf[:len(a.terms)]
	for i, t := range a.terms {
		buf[i] = m.get(t)
	}
	if m.rec != nil {
		m.rec.probe(a.rel, buf[:r.Key])
	}
	return r.Has(buf)
}

func (e *nEq) eval(m *mach) bool { return m.get(e.l) == m.get(e.r) }

func (n *nNot) eval(m *mach) bool { return !n.f.eval(m) }

func (n *nAnd) eval(m *mach) bool {
	for _, f := range n.fs {
		if !f.eval(m) {
			return false
		}
	}
	return true
}

func (n *nOr) eval(m *mach) bool {
	for _, f := range n.fs {
		if f.eval(m) {
			return true
		}
	}
	return false
}

func (n *nImplies) eval(m *mach) bool { return !n.l.eval(m) || n.r.eval(m) }

func (e *nExists) eval(m *mach) bool {
	body, env := e.body, m.env
	for _, v := range m.b.cands[e.cand] {
		env[e.slot] = v
		if body.eval(m) {
			return true
		}
	}
	return false
}

// Program is a formula lowered to slot-based form. It is independent of
// any database: constants and relations are symbolic tables resolved at
// Bind time. Read-only after Compile; safe for concurrent Binds.
type Program struct {
	root     node
	slots    int
	consts   []string // distinct constant values, indexed by constRef
	rels     []string // distinct relation names, indexed by nAtom.rel
	cands    []candPlan
	maxArity int
	source   Formula

	// Bitmap lowering (bitmap.go): bmRoot is the vectorized tree (nil
	// when no quantifier vectorized), vecQuants counts vectorized
	// quantifiers, vecCand marks candidate plans that must materialize
	// as IDSets at Bind time, and nVSets/nVBits/nVIds size the machine
	// scratch the vector nodes index into.
	bmRoot    node
	vecQuants int
	vecCand   []bool
	nVSets    int
	nVBits    int
	nVIds     int
}

// Slots returns the number of environment slots (binder occurrences).
func (p *Program) Slots() int { return p.slots }

// Source returns the formula the program was compiled from.
func (p *Program) Source() Formula { return p.source }

type compiler struct {
	p        *Program
	constIdx map[string]int
	relIdx   map[string]int
	err      error
}

// Compile lowers a sentence into a Program. It fails on free variables —
// programs evaluate closed formulas only, like Eval.
func Compile(f Formula) (*Program, error) {
	if free := FreeVars(f); !free.Empty() {
		return nil, fmt.Errorf("fo: Compile on non-sentence with free variables %s", free)
	}
	c := &compiler{
		p:        &Program{source: f},
		constIdx: make(map[string]int),
		relIdx:   make(map[string]int),
	}
	c.p.root = c.compile(f, make(map[string]int32))
	if c.err != nil {
		return nil, c.err
	}
	c.lowerBitmap()
	return c.p, nil
}

// MustCompile is Compile for known-good sentences (e.g. rewritings).
func MustCompile(f Formula) *Program {
	p, err := Compile(f)
	if err != nil {
		panic(err)
	}
	return p
}

func (c *compiler) constant(v string) int {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := len(c.p.consts)
	c.constIdx[v] = i
	c.p.consts = append(c.p.consts, v)
	return i
}

func (c *compiler) relation(name string) int {
	if i, ok := c.relIdx[name]; ok {
		return i
	}
	i := len(c.p.rels)
	c.relIdx[name] = i
	c.p.rels = append(c.p.rels, name)
	return i
}

func (c *compiler) term(t schema.Term, scope map[string]int32) termRef {
	if !t.IsVar {
		return constRef(c.constant(t.Name))
	}
	s, ok := scope[t.Name]
	if !ok {
		c.fail("fo: compile: unbound variable %s", t.Name)
		return slotRef(0)
	}
	return slotRef(int(s))
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *compiler) compile(f Formula, scope map[string]int32) node {
	switch g := f.(type) {
	case Truth:
		return nTruth(g)
	case Atom:
		terms := make([]termRef, len(g.Terms))
		for i, t := range g.Terms {
			terms[i] = c.term(t, scope)
		}
		if len(terms) > c.p.maxArity {
			c.p.maxArity = len(terms)
		}
		return &nAtom{rel: c.relation(g.Rel), terms: terms}
	case Eq:
		return &nEq{l: c.term(g.L, scope), r: c.term(g.R, scope)}
	case Not:
		return &nNot{f: c.compile(g.F, scope)}
	case And:
		fs := make([]node, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = c.compile(sub, scope)
		}
		return &nAnd{fs: fs}
	case Or:
		fs := make([]node, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = c.compile(sub, scope)
		}
		return &nOr{fs: fs}
	case Implies:
		return &nImplies{l: c.compile(g.L, scope), r: c.compile(g.R, scope)}
	case Exists:
		return c.compileExists(g.Vars, g.Body, scope)
	case Forall:
		// ∀x⃗ φ ≡ ¬∃x⃗ ¬φ; the exists path restricts candidates using
		// the guards inside ¬φ, exactly like the tree walker.
		return &nNot{f: c.compileExists(g.Vars, Not{F: g.Body}, scope)}
	default:
		c.fail("fo: compile: unknown formula %T", f)
		return nTruth(false)
	}
}

// compileExists lowers an ∃-block to nested single-variable nExists
// nodes. Every binder occurrence gets a fresh slot, so shadowed names
// need no save/restore at run time.
func (c *compiler) compileExists(vars []string, body Formula, scope map[string]int32) node {
	if len(vars) == 0 {
		return c.compile(body, scope)
	}
	x := vars[0]
	plan, ok := c.candidates(x, body, true)
	if !ok {
		plan = candDomain{}
	}
	ci := len(c.p.cands)
	c.p.cands = append(c.p.cands, plan)
	slot := int32(c.p.slots)
	c.p.slots++
	old, had := scope[x]
	scope[x] = slot
	inner := c.compileExists(vars[1:], body, scope)
	if had {
		scope[x] = old
	} else {
		delete(scope, x)
	}
	return &nExists{slot: slot, cand: int32(ci), body: inner}
}

// candidates is the compile-time mirror of evaluator.candidates: it
// returns a plan for a sound over-approximation of the values of x for
// which f can be true (positive) or false (negative). The boolean result
// reports whether a restriction exists; restriction existence is purely
// structural, so it is decidable at compile time (an unknown relation
// materializes as an empty posting list at Bind time).
func (c *compiler) candidates(x string, f Formula, positive bool) (candPlan, bool) {
	switch g := f.(type) {
	case Truth:
		return nil, false
	case Atom:
		if !positive {
			return nil, false
		}
		for i, t := range g.Terms {
			if t.IsVar && t.Name == x {
				return candCol{rel: c.relation(g.Rel), col: i}, true
			}
		}
		return nil, false
	case Eq:
		if !positive {
			return nil, false
		}
		if g.L.IsVar && g.L.Name == x && !g.R.IsVar {
			return candConst{c: c.constant(g.R.Name)}, true
		}
		if g.R.IsVar && g.R.Name == x && !g.L.IsVar {
			return candConst{c: c.constant(g.L.Name)}, true
		}
		return nil, false
	case Not:
		return c.candidates(x, g.F, !positive)
	case And:
		if positive {
			return c.pickRestriction(x, g.Fs, true)
		}
		return c.unionRestriction(x, g.Fs, false)
	case Or:
		if positive {
			return c.unionRestriction(x, g.Fs, true)
		}
		return c.pickRestriction(x, g.Fs, false)
	case Implies:
		if positive {
			return c.unionRestriction(x, []Formula{Not{F: g.L}, g.R}, true)
		}
		// L→R false: L true and R false; any restriction is sound.
		if plan, ok := c.candidates(x, g.L, true); ok {
			return plan, true
		}
		return c.candidates(x, g.R, false)
	case Exists:
		for _, v := range g.Vars {
			if v == x {
				return nil, false // x is shadowed; no free occurrence below
			}
		}
		if positive {
			return c.candidates(x, g.Body, true)
		}
		return nil, false
	case Forall:
		for _, v := range g.Vars {
			if v == x {
				return nil, false
			}
		}
		if !positive {
			return c.candidates(x, g.Body, false)
		}
		return nil, false
	default:
		c.fail("fo: compile: unknown formula %T", f)
		return nil, false
	}
}

// pickRestriction: in a conjunctive context any single child restriction
// is sound; Bind materializes every restricting child and keeps the
// smallest list (the same choice the tree walker makes).
func (c *compiler) pickRestriction(x string, fs []Formula, positive bool) (candPlan, bool) {
	var of []candPlan
	for _, sub := range fs {
		if plan, ok := c.candidates(x, sub, positive); ok {
			of = append(of, plan)
		}
	}
	switch len(of) {
	case 0:
		return nil, false
	case 1:
		return of[0], true
	default:
		return candPick{of: of}, true
	}
}

// unionRestriction: in a disjunctive context every child must restrict;
// the candidate set is the union.
func (c *compiler) unionRestriction(x string, fs []Formula, positive bool) (candPlan, bool) {
	var of []candPlan
	for _, sub := range fs {
		plan, ok := c.candidates(x, sub, positive)
		if !ok {
			return nil, false
		}
		of = append(of, plan)
	}
	switch len(of) {
	case 0:
		return nil, false
	case 1:
		return of[0], true
	default:
		return candUnion{of: of}, true
	}
}

// Bound is a Program linked against one interned database: constants
// resolved to ids, relations resolved to indexes, and every quantifier's
// candidate plan materialized into a concrete list. Read-only after Bind
// and safe for unbounded concurrent Eval/EvalParallel calls; per-call
// state lives in pooled machines.
type Bound struct {
	p      *Program
	ix     *db.Interned
	consts []int32
	rels   []*db.InternedRelation
	cands  [][]int32
	domain []int32
	pool   sync.Pool

	// candSets materializes the candidate lists of vectorized
	// quantifiers as IDSets (nil entries for scalar-only cands). Only
	// populated when the program has a bitmap lowering.
	candSets []*db.IDSet
}

// Bind links the program against ix. Constants unknown to the database
// receive synthetic ids (≥ ix.NumIDs()) that match no fact but
// participate in equality and quantification, preserving the tree
// walker's active-domain semantics (database constants ∪ formula
// constants).
func (p *Program) Bind(ix *db.Interned) *Bound {
	b := &Bound{p: p, ix: ix}
	b.consts = make([]int32, len(p.consts))
	synth := ix.NumIDs()
	for i, v := range p.consts {
		if id, ok := ix.ID(v); ok {
			b.consts[i] = id
		} else {
			b.consts[i] = synth
			synth++
		}
	}
	b.rels = make([]*db.InternedRelation, len(p.rels))
	for i, name := range p.rels {
		b.rels[i] = ix.Relation(name)
	}
	// The quantification domain is the active domain plus any formula
	// constant not occurring in the database.
	b.domain = ix.DomainIDs()
	var extra []int32
	for _, id := range b.consts {
		if !containsID(b.domain, id) && !containsID(extra, id) {
			extra = append(extra, id)
		}
	}
	if len(extra) > 0 {
		merged := make([]int32, 0, len(b.domain)+len(extra))
		merged = append(merged, b.domain...)
		merged = append(merged, extra...)
		sortIDs(merged)
		b.domain = merged
	}
	b.cands = make([][]int32, len(p.cands))
	for i, plan := range p.cands {
		b.cands[i] = b.materialize(plan)
	}
	if p.bmRoot != nil {
		b.candSets = make([]*db.IDSet, len(p.cands))
		dom := ix.DomainIDs()
		for i := range p.cands {
			if i >= len(p.vecCand) || !p.vecCand[i] {
				continue
			}
			list := b.cands[i]
			// The unmerged active domain reuses the view-wide memoized
			// set; everything else builds its own.
			if len(list) > 0 && len(list) == len(dom) && &list[0] == &dom[0] {
				b.candSets[i] = ix.DomainSet()
			} else {
				b.candSets[i] = db.NewIDSet(list)
			}
		}
	}
	b.pool.New = func() any {
		m := &mach{b: b, env: make([]int32, p.slots), argbuf: make([]int32, p.maxArity)}
		if p.bmRoot != nil {
			m.vsets = make([]*db.IDSet, p.nVSets)
			m.vbits = make([]bool, p.nVBits)
			m.vids = make([]int32, p.nVIds)
			m.restbuf = make([]int32, p.maxArity)
		}
		return m
	}
	return b
}

func containsID(s []int32, id int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

func sortIDs(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// materialize turns a candidate plan into a concrete sorted id list.
func (b *Bound) materialize(plan candPlan) []int32 {
	switch p := plan.(type) {
	case candDomain:
		return b.domain
	case candCol:
		r := b.rels[p.rel]
		if r == nil {
			return nil // unknown relation: the atom can never hold
		}
		return r.Posting(p.col)
	case candConst:
		return []int32{b.consts[p.c]}
	case candPick:
		best := b.materialize(p.of[0])
		for _, sub := range p.of[1:] {
			if got := b.materialize(sub); len(got) < len(best) {
				best = got
			}
		}
		return best
	case candUnion:
		set := make(map[int32]bool)
		for _, sub := range p.of {
			for _, id := range b.materialize(sub) {
				set[id] = true
			}
		}
		out := make([]int32, 0, len(set))
		for id := range set {
			out = append(out, id)
		}
		sortIDs(out)
		return out
	default:
		panic(fmt.Sprintf("fo: unknown candidate plan %T", plan))
	}
}

// Interned returns the interned database the program is bound to.
func (b *Bound) Interned() *db.Interned { return b.ix }

// mach is the per-evaluation state: the slot environment and the atom
// argument scratch buffer. Machines are pooled by the Bound; one machine
// is used by exactly one goroutine at a time. rec is nil on the hot
// path; EvalSupport sets it on a private machine to record the blocks
// every membership probe touches (see support.go).
type mach struct {
	b      *Bound
	env    []int32
	argbuf []int32
	rec    *recorder

	// Bitmap-evaluation scratch (bitmap.go): per-quantifier prep results
	// indexed by the program-wide unique slots the vector nodes carry.
	// Nested vectorized quantifiers never collide because indexes are
	// globally distinct.
	vsets   []*db.IDSet
	vbits   []bool
	vids    []int32
	restbuf []int32
}

func (m *mach) get(t termRef) int32 {
	if t >= 0 {
		return m.env[t]
	}
	return m.b.consts[^t]
}

// Eval evaluates the bound program. Safe for concurrent use; steady-state
// calls allocate nothing.
func (b *Bound) Eval() bool {
	m := b.pool.Get().(*mach)
	r := b.p.root.eval(m)
	b.pool.Put(m)
	return r
}

// EvalCompiled is the convenience one-shot pipeline: intern (memoized on
// d), compile, bind, evaluate. Serving paths should Compile/Bind once and
// reuse the Bound instead.
func EvalCompiled(d *db.Database, f Formula) bool {
	p, err := Compile(f)
	if err != nil {
		panic(err)
	}
	return p.Bind(d.Interned()).Eval()
}
