package fo

import (
	"fmt"
	"strings"
)

// This file provides the introspection surface behind the server's
// `"explain": true` option: the size of a rewriting and a human-readable
// summary of the compile-time quantifier-restriction plans. Nothing here
// runs on the evaluation hot path.

// NodeCount returns the number of formula nodes in f — the "rewriting
// size" reported by explain output. Counting is structural: every
// connective, atom, equality, and quantifier block counts as one node.
func NodeCount(f Formula) int {
	switch g := f.(type) {
	case Truth, Atom, Eq:
		return 1
	case Not:
		return 1 + NodeCount(g.F)
	case And:
		n := 1
		for _, sub := range g.Fs {
			n += NodeCount(sub)
		}
		return n
	case Or:
		n := 1
		for _, sub := range g.Fs {
			n += NodeCount(sub)
		}
		return n
	case Implies:
		return 1 + NodeCount(g.L) + NodeCount(g.R)
	case Exists:
		return 1 + NodeCount(g.Body)
	case Forall:
		return 1 + NodeCount(g.Body)
	default:
		return 1
	}
}

// PlanSummary describes every quantifier's candidate-restriction plan,
// one line per binder in compile order: "s0 ∈ R.1", "s1 ∈ min(R.0,
// S.1)", "s2 ∈ domain". Binders and candidate plans are allocated in
// lockstep by compileExists, so entry i is slot i's plan.
func (p *Program) PlanSummary() []string {
	out := make([]string, len(p.cands))
	for i, plan := range p.cands {
		out[i] = fmt.Sprintf("s%d ∈ %s", i, p.describe(plan))
	}
	return out
}

func (p *Program) describe(plan candPlan) string {
	switch c := plan.(type) {
	case candDomain:
		return "domain"
	case candCol:
		return fmt.Sprintf("%s.%d", p.rels[c.rel], c.col)
	case candConst:
		return fmt.Sprintf("%q", p.consts[c.c])
	case candPick:
		return "min(" + p.describeAll(c.of) + ")"
	case candUnion:
		return "union(" + p.describeAll(c.of) + ")"
	default:
		return fmt.Sprintf("%T", plan)
	}
}

func (p *Program) describeAll(plans []candPlan) string {
	parts := make([]string, len(plans))
	for i, sub := range plans {
		parts[i] = p.describe(sub)
	}
	return strings.Join(parts, ", ")
}
