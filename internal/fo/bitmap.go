package fo

// This file implements the bitmap-vectorized evaluation engine
// ("compiled-bitmap"). The scalar compiled evaluator (compile.go) tests
// one candidate assignment at a time: an innermost ∃x loops over a
// candidate id list and re-evaluates its body per value, costing one
// hash probe per atom per candidate. Here, innermost quantifiers — those
// whose variable does not occur free under any deeper quantifier — are
// lowered once more into a vector form that evaluates the body for 64
// candidates at a time with word-parallel AND / OR / ANDNOT sweeps over
// db.IDSet membership words:
//
//   - an atom R(..., x, ...) with x at one column ("hole") and all other
//     terms fixed by the outer environment becomes the IDSet of hole
//     values stored with that rest-of-row (InternedRelation.HoleSet);
//   - an equality x = t becomes a one-bit singleton word;
//   - subtrees not mentioning x are evaluated once per outer environment
//     and broadcast as all-ones/all-zero words;
//   - ∧/∨/¬/→ become &, |, ^, and (^l | r) on the words.
//
// The sweep is driven by the smallest available set: the quantifier's
// candidate set, or any "must" atom set — an atom the body forces true
// at every witness (computed by polarity walk, so ¬(R(x)→φ) still
// contributes R's set). For rewritings of the Koutris–Wijsen form this
// turns the inner ∀-block from O(|posting|) probes per outer candidate
// into a lookup of the outer block's value set (O(block size) words),
// which is where the measured E18 speedup comes from.
//
// ∀ needs no special casing: compile.go already lowers ∀x φ to ¬∃x ¬φ.
// Support recording (support.go) keeps walking the scalar tree, so the
// delta layer's proof-carrying skip rules are unaffected. Lowering is
// purely additive: Program.root is untouched and Bound.Eval and
// EvalParallel still run the scalar pipeline, which is what the
// DisableBitmap rollback flag falls back to.

// vnode is one vectorized formula node, evaluated over the bound
// quantifier's candidate ids. word returns the 64-candidate membership
// word for ids [w*64, w*64+64); bit evaluates a single id. Both read
// only machine scratch filled during prep — they never touch the
// environment, so the per-candidate inner loop does no slot writes.
type vnode interface {
	word(m *mach, w int32) uint64
	bit(m *mach, id int32) bool
}

// vTrue is the constant-true vector (from x = x).
type vTrue struct{}

func (vTrue) word(*mach, int32) uint64 { return ^uint64(0) }
func (vTrue) bit(*mach, int32) bool    { return true }

// vScalar wraps a subtree with no free occurrence of the vectorized
// variable: prep evaluates it once per outer environment into
// m.vbits[idx] and the vector view broadcasts the bit.
type vScalar struct {
	f   node
	idx int
}

func (s *vScalar) word(m *mach, _ int32) uint64 {
	if m.vbits[s.idx] {
		return ^uint64(0)
	}
	return 0
}

func (s *vScalar) bit(m *mach, _ int32) bool { return m.vbits[s.idx] }

// vAtom is an atom with the vectorized variable at exactly one column
// (the hole). prep resolves the remaining terms against the outer
// environment and stores the relation's hole set in m.vsets[idx]; nil
// means no fact matches the rest-of-row (or the relation is absent), so
// the atom is false for every candidate.
type vAtom struct {
	rel  int
	hole int
	rest []termRef // the non-hole columns, in column order
	idx  int
}

func (a *vAtom) word(m *mach, w int32) uint64 {
	s := m.vsets[a.idx]
	if s == nil {
		return 0
	}
	return s.Word(w)
}

func (a *vAtom) bit(m *mach, id int32) bool {
	s := m.vsets[a.idx]
	return s != nil && s.Contains(id)
}

// vEqC is the equality x = t where t is a constant or an outer slot:
// prep resolves t's id into m.vids[idx] and the vector view is a
// one-bit singleton.
type vEqC struct {
	t   termRef
	idx int
}

func (e *vEqC) word(m *mach, w int32) uint64 {
	id := m.vids[e.idx]
	if id>>6 != w {
		return 0
	}
	return 1 << (uint(id) & 63)
}

func (e *vEqC) bit(m *mach, id int32) bool { return m.vids[e.idx] == id }

type vNot struct{ f vnode }

func (n *vNot) word(m *mach, w int32) uint64 { return ^n.f.word(m, w) }
func (n *vNot) bit(m *mach, id int32) bool   { return !n.f.bit(m, id) }

type vAnd struct{ fs []vnode }

func (n *vAnd) word(m *mach, w int32) uint64 {
	acc := ^uint64(0)
	for _, f := range n.fs {
		acc &= f.word(m, w)
		if acc == 0 {
			return 0
		}
	}
	return acc
}

func (n *vAnd) bit(m *mach, id int32) bool {
	for _, f := range n.fs {
		if !f.bit(m, id) {
			return false
		}
	}
	return true
}

type vOr struct{ fs []vnode }

func (n *vOr) word(m *mach, w int32) uint64 {
	var acc uint64
	for _, f := range n.fs {
		acc |= f.word(m, w)
	}
	return acc
}

func (n *vOr) bit(m *mach, id int32) bool {
	for _, f := range n.fs {
		if f.bit(m, id) {
			return true
		}
	}
	return false
}

type vImplies struct{ l, r vnode }

func (n *vImplies) word(m *mach, w int32) uint64 { return ^n.l.word(m, w) | n.r.word(m, w) }
func (n *vImplies) bit(m *mach, id int32) bool   { return !n.l.bit(m, id) || n.r.bit(m, id) }

// nExistsVec is the vectorized form of nExists. It keeps the scalar body
// (for support recording and as documentation of what vec was lowered
// from) and adds the vector tree plus the prep lists: the scalar
// subtrees, hole atoms, and equality ids that must be resolved against
// the outer environment before the word sweep.
type nExistsVec struct {
	slot int32
	cand int32
	body node // scalar equivalent; used when support recording is active

	vec     vnode
	scalars []*vScalar
	atoms   []*vAtom
	eqs     []*vEqC
	// musts are m.vsets indexes of atoms every witness must satisfy
	// (true at any id where vec is true); the sweep is driven by the
	// smallest of these sets and the candidate set, which is what turns
	// per-candidate probing into per-block lookups.
	musts []int32
}

func (e *nExistsVec) scalarEval(m *mach) bool {
	body, env := e.body, m.env
	for _, v := range m.b.cands[e.cand] {
		env[e.slot] = v
		if body.eval(m) {
			return true
		}
	}
	return false
}

func (e *nExistsVec) eval(m *mach) bool {
	if m.rec != nil {
		// Support recording needs every membership probe to hit the
		// recorder, which only the scalar tree does.
		return e.scalarEval(m)
	}
	b := m.b
	cset := b.candSets[e.cand]
	if cset == nil || cset.Empty() {
		return false
	}

	// Prep: resolve everything that depends on the outer environment,
	// once for all candidates. After this the sweep reads scratch only.
	for _, s := range e.scalars {
		m.vbits[s.idx] = s.f.eval(m)
	}
	for _, a := range e.atoms {
		r := b.rels[a.rel]
		if r == nil {
			m.vsets[a.idx] = nil
			continue
		}
		rest := m.restbuf[:len(a.rest)]
		for i, t := range a.rest {
			rest[i] = m.get(t)
		}
		m.vsets[a.idx] = r.HoleSet(a.hole, rest)
	}
	for _, q := range e.eqs {
		m.vids[q.idx] = m.get(q.t)
	}

	// Pick the sweep driver: the smallest set that must contain every
	// witness. A nil/empty must set means some required atom can never
	// hold, so there is no witness at all.
	driver := cset
	for _, si := range e.musts {
		s := m.vsets[si]
		if s == nil || s.Empty() {
			return false
		}
		if s.Card() < driver.Card() {
			driver = s
		}
	}

	if sp := driver.SparseIDs(); sp != nil {
		for _, id := range sp {
			if driver != cset && !cset.Contains(id) {
				continue
			}
			if e.vec.bit(m, id) {
				return true
			}
		}
		return false
	}
	for w, dw := range driver.Words() {
		if dw == 0 {
			continue
		}
		if driver != cset {
			dw &= cset.Word(int32(w))
			if dw == 0 {
				continue
			}
		}
		if dw&e.vec.word(m, int32(w)) != 0 {
			return true
		}
	}
	return false
}

// vecBuilder accumulates the prep lists and scratch indexes while
// vectorizing one quantifier body.
type vecBuilder struct {
	c       *compiler
	slot    int32
	scalars []*vScalar
	atoms   []*vAtom
	eqs     []*vEqC
	failed  bool
}

func (vb *vecBuilder) fail() vnode {
	vb.failed = true
	return vTrue{}
}

func (vb *vecBuilder) build(n node) vnode {
	if vb.failed {
		return vTrue{}
	}
	if !usesSlot(n, vb.slot) {
		s := &vScalar{f: n, idx: vb.c.p.nVBits}
		vb.c.p.nVBits++
		vb.scalars = append(vb.scalars, s)
		return s
	}
	switch g := n.(type) {
	case *nAtom:
		hole := -1
		for i, t := range g.terms {
			if t >= 0 && int32(t) == vb.slot {
				if hole >= 0 {
					return vb.fail() // x occurs twice, e.g. R(x, x)
				}
				hole = i
			}
		}
		rest := make([]termRef, 0, len(g.terms)-1)
		for i, t := range g.terms {
			if i != hole {
				rest = append(rest, t)
			}
		}
		a := &vAtom{rel: g.rel, hole: hole, rest: rest, idx: vb.c.p.nVSets}
		vb.c.p.nVSets++
		vb.atoms = append(vb.atoms, a)
		return a
	case *nEq:
		lIsX := g.l >= 0 && int32(g.l) == vb.slot
		rIsX := g.r >= 0 && int32(g.r) == vb.slot
		if lIsX && rIsX {
			return vTrue{}
		}
		other := g.r
		if rIsX {
			other = g.l
		}
		e := &vEqC{t: other, idx: vb.c.p.nVIds}
		vb.c.p.nVIds++
		vb.eqs = append(vb.eqs, e)
		return e
	case *nNot:
		return &vNot{f: vb.build(g.f)}
	case *nAnd:
		fs := make([]vnode, len(g.fs))
		for i, f := range g.fs {
			fs[i] = vb.build(f)
		}
		return &vAnd{fs: fs}
	case *nOr:
		fs := make([]vnode, len(g.fs))
		for i, f := range g.fs {
			fs[i] = vb.build(f)
		}
		return &vOr{fs: fs}
	case *nImplies:
		return &vImplies{l: vb.build(g.l), r: vb.build(g.r)}
	default:
		// x occurs free under a deeper quantifier (nExists/nExistsVec):
		// its value would have to thread through the inner loop, so this
		// quantifier stays scalar.
		return vb.fail()
	}
}

// usesSlot reports whether slot occurs in the subtree. Slots are unique
// per binder occurrence (compileExists), so no shadowing check is
// needed.
func usesSlot(n node, slot int32) bool {
	switch g := n.(type) {
	case nTruth:
		return false
	case *nAtom:
		for _, t := range g.terms {
			if t >= 0 && int32(t) == slot {
				return true
			}
		}
		return false
	case *nEq:
		return (g.l >= 0 && int32(g.l) == slot) || (g.r >= 0 && int32(g.r) == slot)
	case *nNot:
		return usesSlot(g.f, slot)
	case *nAnd:
		for _, f := range g.fs {
			if usesSlot(f, slot) {
				return true
			}
		}
		return false
	case *nOr:
		for _, f := range g.fs {
			if usesSlot(f, slot) {
				return true
			}
		}
		return false
	case *nImplies:
		return usesSlot(g.l, slot) || usesSlot(g.r, slot)
	case *nExists:
		return usesSlot(g.body, slot)
	case *nExistsVec:
		return usesSlot(g.body, slot)
	default:
		return true // unknown node: be conservative, block vectorization
	}
}

// mustSets collects the vsets indexes of atoms that are forced true at
// every id where the tree evaluates to pos. The polarity walk sees
// through negation, so ¬(R(x) → φ) — the shape ∀-rewritings take after
// ∀ ≡ ¬∃¬ — still yields R as a driver.
func mustSets(v vnode, pos bool, out []int32) []int32 {
	switch g := v.(type) {
	case *vAtom:
		if pos {
			out = append(out, int32(g.idx))
		}
	case *vNot:
		out = mustSets(g.f, !pos, out)
	case *vAnd:
		if pos {
			for _, f := range g.fs {
				out = mustSets(f, true, out)
			}
		}
	case *vOr:
		if !pos {
			for _, f := range g.fs {
				out = mustSets(f, false, out)
			}
		}
	case *vImplies:
		if !pos {
			out = mustSets(g.l, true, out)
			out = mustSets(g.r, false, out)
		}
	}
	return out
}

// lowerBitmap runs after compile: it rewrites the scalar tree bottom-up,
// replacing every vectorizable nExists with an nExistsVec, and installs
// the result as p.bmRoot when at least one quantifier vectorized. The
// scalar root is left untouched.
func (c *compiler) lowerBitmap() {
	p := c.p
	root, n := c.lowerNode(p.root)
	if n > 0 {
		p.bmRoot = root
		p.vecQuants = n
	}
}

func (c *compiler) lowerNode(n node) (node, int) {
	switch g := n.(type) {
	case *nNot:
		f, k := c.lowerNode(g.f)
		if k == 0 {
			return g, 0
		}
		return &nNot{f: f}, k
	case *nAnd:
		fs := make([]node, len(g.fs))
		k := 0
		for i, f := range g.fs {
			var ki int
			fs[i], ki = c.lowerNode(f)
			k += ki
		}
		if k == 0 {
			return g, 0
		}
		return &nAnd{fs: fs}, k
	case *nOr:
		fs := make([]node, len(g.fs))
		k := 0
		for i, f := range g.fs {
			var ki int
			fs[i], ki = c.lowerNode(f)
			k += ki
		}
		if k == 0 {
			return g, 0
		}
		return &nOr{fs: fs}, k
	case *nImplies:
		l, kl := c.lowerNode(g.l)
		r, kr := c.lowerNode(g.r)
		if kl+kr == 0 {
			return g, 0
		}
		return &nImplies{l: l, r: r}, kl + kr
	case *nExists:
		body, k := c.lowerNode(g.body)
		// Snapshot scratch counters so a failed attempt does not leak
		// unused machine slots.
		p := c.p
		sets, bits, ids := p.nVSets, p.nVBits, p.nVIds
		vb := &vecBuilder{c: c, slot: g.slot}
		vec := vb.build(body)
		if vb.failed {
			p.nVSets, p.nVBits, p.nVIds = sets, bits, ids
			if k == 0 {
				return g, 0
			}
			return &nExists{slot: g.slot, cand: g.cand, body: body}, k
		}
		c.markVecCand(g.cand)
		return &nExistsVec{
			slot:    g.slot,
			cand:    g.cand,
			body:    body,
			vec:     vec,
			scalars: vb.scalars,
			atoms:   vb.atoms,
			eqs:     vb.eqs,
			musts:   mustSets(vec, true, nil),
		}, k + 1
	default:
		return n, 0
	}
}

func (c *compiler) markVecCand(cand int32) {
	p := c.p
	for len(p.vecCand) < len(p.cands) {
		p.vecCand = append(p.vecCand, false)
	}
	p.vecCand[cand] = true
}

// HasBitmap reports whether at least one quantifier lowered to the
// vectorized form; when false EvalBitmap is exactly Eval.
func (p *Program) HasBitmap() bool { return p.bmRoot != nil }

// VecQuants returns the number of quantifiers that lowered to the
// vectorized form (0 when HasBitmap is false).
func (p *Program) VecQuants() int { return p.vecQuants }

// EvalBitmap evaluates the bound program on the bitmap-vectorized tree.
// It agrees with Eval on every program by construction (the vector
// semantics mirror the scalar body; TestBitmapDifferential and
// FuzzBitmapEval enforce it) and falls back to Eval when no quantifier
// vectorized. Safe for concurrent use; steady-state calls allocate
// nothing once the lazy hole indexes are built.
func (b *Bound) EvalBitmap() bool {
	if b.p.bmRoot == nil {
		return b.Eval()
	}
	m := b.pool.Get().(*mach)
	r := b.p.bmRoot.eval(m)
	b.pool.Put(m)
	return r
}
