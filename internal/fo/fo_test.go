package fo_test

import (
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/schema"
)

var (
	x = schema.Var("x")
	y = schema.Var("y")
	z = schema.Var("z")
	a = schema.Const("a")
	b = schema.Const("b")
)

func atomR(terms ...schema.Term) fo.Atom { return fo.Atom{Rel: "R", Key: 1, Terms: terms} }
func atomS(terms ...schema.Term) fo.Atom { return fo.Atom{Rel: "S", Key: 1, Terms: terms} }

func testDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 1, 1)
	d.MustInsert(db.F("R", "a", "b"))
	d.MustInsert(db.F("R", "a", "c"))
	d.MustInsert(db.F("R", "d", "b"))
	d.MustInsert(db.F("S", "a"))
	return d
}

func TestEvalGroundAtom(t *testing.T) {
	d := testDB(t)
	if !fo.Eval(d, atomR(a, b)) {
		t.Error("R(a,b) should hold")
	}
	if fo.Eval(d, atomR(b, a)) {
		t.Error("R(b,a) should not hold")
	}
	if fo.Eval(d, fo.Atom{Rel: "Unknown", Key: 1, Terms: []schema.Term{a}}) {
		t.Error("atom over unknown relation should be false")
	}
}

func TestEvalExists(t *testing.T) {
	d := testDB(t)
	// ∃x R(x, 'b')
	f := fo.NewExists([]string{"x"}, atomR(x, b))
	if !fo.Eval(d, f) {
		t.Error("∃x R(x,b) should hold")
	}
	// ∃x R(x, 'z')
	f = fo.NewExists([]string{"x"}, atomR(x, schema.Const("zz")))
	if fo.Eval(d, f) {
		t.Error("∃x R(x,zz) should not hold")
	}
	// ∃x∃y R(x, y) ∧ S(x)
	f = fo.NewExists([]string{"x", "y"}, fo.NewAnd(atomR(x, y), atomS(x)))
	if !fo.Eval(d, f) {
		t.Error("join should hold (x=a)")
	}
}

func TestEvalForall(t *testing.T) {
	d := testDB(t)
	// ∀x∀y (R(x,y) → ∃z R(x,z)) — trivially true.
	f := fo.NewForall([]string{"x", "y"},
		fo.Implies{L: atomR(x, y), R: fo.NewExists([]string{"z"}, atomR(x, z))})
	if !fo.Eval(d, f) {
		t.Error("trivial ∀ should hold")
	}
	// ∀x (S(x) → R(x, 'b')): S = {a}, R(a,b) holds.
	f = fo.NewForall([]string{"x"}, fo.Implies{L: atomS(x), R: atomR(x, b)})
	if !fo.Eval(d, f) {
		t.Error("∀x(S(x)→R(x,b)) should hold")
	}
	// ∀x (R(x,'b') → S(x)): R(d,b) holds but S(d) does not.
	f = fo.NewForall([]string{"x"}, fo.Implies{L: atomR(x, b), R: atomS(x)})
	if fo.Eval(d, f) {
		t.Error("∀x(R(x,b)→S(x)) should fail at x=d")
	}
}

func TestEvalEqNeq(t *testing.T) {
	d := testDB(t)
	// ∃x (S(x) ∧ x = 'a')
	f := fo.NewExists([]string{"x"}, fo.NewAnd(atomS(x), fo.Eq{L: x, R: a}))
	if !fo.Eval(d, f) {
		t.Error("equality restriction failed")
	}
	// ∃x (S(x) ∧ x ≠ 'a') — S = {a} only.
	f = fo.NewExists([]string{"x"}, fo.NewAnd(atomS(x), fo.Neq(x, a)))
	if fo.Eval(d, f) {
		t.Error("x ≠ a should eliminate the only S value")
	}
}

func TestEvalOrAndTruth(t *testing.T) {
	d := testDB(t)
	f := fo.NewOr(fo.Truth(false), atomR(a, b))
	if !fo.Eval(d, f) {
		t.Error("Or with true disjunct failed")
	}
	if !fo.Eval(d, fo.Truth(true)) || fo.Eval(d, fo.Truth(false)) {
		t.Error("Truth mis-evaluated")
	}
	if fo.Eval(d, fo.And{}) != true {
		t.Error("empty And should be true")
	}
	if fo.Eval(d, fo.Or{}) != false {
		t.Error("empty Or should be false")
	}
}

// Quantifier over a variable only occurring under negation must fall back
// to the active domain and stay correct.
func TestEvalUnrestrictedQuantifier(t *testing.T) {
	d := testDB(t)
	// ∃x ¬S(x): domain has values not in S (e.g. 'b').
	f := fo.NewExists([]string{"x"}, fo.Not{F: atomS(x)})
	if !fo.Eval(d, f) {
		t.Error("∃x ¬S(x) should hold")
	}
	// ∀x S(x): false, domain is larger than S.
	f = fo.NewForall([]string{"x"}, atomS(x))
	if fo.Eval(d, f) {
		t.Error("∀x S(x) should fail")
	}
}

// Formula constants outside the database participate in the active domain.
func TestEvalFormulaConstantInDomain(t *testing.T) {
	d := testDB(t)
	// ∃x (x = 'q' ∧ ¬S(x)): 'q' is not a database constant.
	f := fo.NewExists([]string{"x"}, fo.NewAnd(fo.Eq{L: x, R: schema.Const("q")}, fo.Not{F: atomS(x)}))
	if !fo.Eval(d, f) {
		t.Error("formula constant should be in the evaluation domain")
	}
}

func TestEvalEmptyDatabase(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	// ∃x∃y R(x,y) over empty db: false.
	if fo.Eval(d, fo.NewExists([]string{"x", "y"}, atomR(x, y))) {
		t.Error("∃ over empty database should be false")
	}
	// ∀x∀y R(x,y): vacuously true over the empty domain.
	if !fo.Eval(d, fo.NewForall([]string{"x", "y"}, atomR(x, y))) {
		t.Error("∀ over empty domain should be vacuously true")
	}
}

func TestEvalPanicsOnFreeVariable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval on an open formula should panic")
		}
	}()
	fo.Eval(testDB(t), atomR(x, y))
}

func TestEvalWith(t *testing.T) {
	d := testDB(t)
	if !fo.EvalWith(d, atomR(x, y), map[string]string{"x": "a", "y": "b"}) {
		t.Error("EvalWith failed on bound atom")
	}
}

func TestFreeVars(t *testing.T) {
	f := fo.NewExists([]string{"x"}, fo.NewAnd(atomR(x, y), fo.Eq{L: z, R: a}))
	free := fo.FreeVars(f)
	if !free.Equal(schema.NewVarSet("y", "z")) {
		t.Errorf("free vars = %v", free)
	}
	// Shadowing: ∃x R(x,y) ∧ x free outside... Exists(x, Exists(x, ...)).
	g := fo.Exists{Vars: []string{"x"}, Body: fo.Exists{Vars: []string{"x"}, Body: atomR(x, x)}}
	if !fo.FreeVars(g).Empty() {
		t.Errorf("shadowed vars leaked: %v", fo.FreeVars(g))
	}
}

func TestConstants(t *testing.T) {
	f := fo.NewAnd(atomR(a, x), fo.Eq{L: x, R: b})
	consts := fo.Constants(f)
	if !consts["a"] || !consts["b"] || len(consts) != 2 {
		t.Errorf("constants = %v", consts)
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct {
		in   fo.Formula
		want string
	}{
		{fo.NewAnd(fo.Truth(true), atomS(a)), "S('a')"},
		{fo.NewAnd(fo.Truth(false), atomS(a)), "false"},
		{fo.NewOr(fo.Truth(true), atomS(a)), "true"},
		{fo.Not{F: fo.Not{F: atomS(a)}}, "S('a')"},
		{fo.Implies{L: fo.Truth(true), R: atomS(a)}, "S('a')"},
		{fo.Implies{L: atomS(a), R: fo.Truth(false)}, "¬S('a')"},
		{fo.Forall{Vars: []string{"x"}, Body: fo.Truth(true)}, "true"},
		{fo.Exists{Vars: []string{"x"}, Body: fo.Truth(false)}, "false"},
		{fo.Exists{Vars: []string{"x"}, Body: fo.Exists{Vars: []string{"y"}, Body: atomR(x, y)}}, "∃x∃y(R(x, y))"},
	}
	for _, c := range cases {
		if got := fo.Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Simplification preserves evaluation on a concrete database.
func TestSimplifyPreservesSemantics(t *testing.T) {
	d := testDB(t)
	formulas := []fo.Formula{
		fo.NewForall([]string{"x"}, fo.Implies{L: atomS(x), R: fo.NewAnd(fo.Truth(true), atomR(x, b))}),
		fo.NewExists([]string{"x"}, fo.NewOr(fo.Truth(false), atomS(x))),
		fo.Not{F: fo.Not{F: fo.NewExists([]string{"x"}, atomS(x))}},
	}
	for _, f := range formulas {
		if fo.Eval(d, f) != fo.Eval(d, fo.Simplify(f)) {
			t.Errorf("Simplify changed semantics of %s", f)
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := fo.NewForall([]string{"z"},
		fo.Implies{L: fo.Atom{Rel: "N", Key: 1, Terms: []schema.Term{schema.Const("c"), z}},
			R: fo.NewExists([]string{"x"}, fo.NewAnd(atomS(x), fo.Neq(x, z)))})
	s := f.String()
	for _, frag := range []string{"∀z", "N('c', z)", "→", "∃x", "x ≠ z"} {
		if !strings.Contains(s, frag) {
			t.Errorf("render %q lacks %q", s, frag)
		}
	}
}

func TestSize(t *testing.T) {
	f := fo.NewAnd(atomS(a), fo.Not{F: atomS(b)})
	if got := fo.Size(f); got != 4 { // And + Atom + Not + Atom
		t.Errorf("Size = %d, want 4", got)
	}
}

func TestNewConstructors(t *testing.T) {
	// NewAnd flattens.
	f := fo.NewAnd(fo.NewAnd(atomS(a), atomS(b)), atomS(a))
	if and, ok := f.(fo.And); !ok || len(and.Fs) != 3 {
		t.Errorf("NewAnd did not flatten: %v", f)
	}
	// Single-element And collapses.
	if _, ok := fo.NewAnd(atomS(a)).(fo.Atom); !ok {
		t.Error("singleton And should collapse")
	}
	// NewExists with no vars returns the body.
	if _, ok := fo.NewExists(nil, atomS(a)).(fo.Atom); !ok {
		t.Error("empty Exists should collapse")
	}
}

// Variable shadowing across nested quantifiers of the same name.
func TestEvalShadowing(t *testing.T) {
	d := testDB(t)
	// ∃x (S(x) ∧ ∃x R(x, 'b') ∧ S(x)): inner x independent; outer x = a.
	f := fo.NewExists([]string{"x"},
		fo.NewAnd(atomS(x),
			fo.Exists{Vars: []string{"x"}, Body: atomR(x, b)},
			atomS(x)))
	if !fo.Eval(d, f) {
		t.Error("shadowed evaluation failed")
	}
}
