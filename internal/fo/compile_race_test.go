package fo_test

import (
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/rewrite"
)

// One compiled program and one interned database shared by 32 goroutines:
// programs, bounds, and indexes must be read-only after build, with all
// per-evaluation state confined to pooled machines. Run under -race.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(318))
	opts := gen.DefaultQueryOptions()
	var f fo.Formula
	var q = gen.Query(rng, opts)
	for {
		rw, err := rewrite.Rewrite(q)
		if err == nil {
			f = rw
			break
		}
		q = gen.Query(rng, opts)
	}
	d := gen.Database(rng, q, gen.DBOptions{
		BlocksPerRelation: 64, MaxBlockSize: 2, DomainPerVariable: 16, ConstantBias: 0.7,
	})
	ix := d.Interned()
	p := fo.MustCompile(f)
	b := p.Bind(ix)
	want := fo.Eval(d, f)

	const goroutines = 32
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var got bool
				switch (g + i) % 3 {
				case 0:
					got = b.Eval()
				case 1:
					got = b.EvalParallel(2, 1)
				default:
					// Concurrent Bind against the shared interned view.
					got = p.Bind(ix).Eval()
				}
				if got != want {
					select {
					case errs <- "concurrent evaluation disagreed with sequential answer":
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
