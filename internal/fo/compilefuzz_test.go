package fo_test

import (
	"sort"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/schema"
)

// FuzzCompiledEval decodes a small database and a closed formula from the
// fuzz input and checks that the compiled pipeline (sequential and
// parallel) agrees with both the tree walker and the unoptimized
// reference evaluator. Part of `make fuzz`.
func FuzzCompiledEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2, 5, 9, 200, 14, 3, 3, 7})
	f.Add([]byte{7, 255, 1, 0, 42, 17, 6, 6, 6, 80, 80, 13, 2, 91})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := &fuzzDecoder{data: data}
		d := fz.database()
		formula := fz.sentence()
		want := fo.EvalReference(d, formula)
		if got := fo.Eval(d, formula); got != want {
			t.Fatalf("tree walker = %v, reference = %v on %s with db:\n%s", got, want, formula, d)
		}
		p, err := fo.Compile(formula)
		if err != nil {
			t.Fatalf("Compile(%s): %v", formula, err)
		}
		b := p.Bind(d.Interned())
		if got := b.Eval(); got != want {
			t.Fatalf("compiled = %v, reference = %v on %s with db:\n%s", got, want, formula, d)
		}
		if got := b.EvalParallel(2, 1); got != want {
			t.Fatalf("compiled parallel = %v, reference = %v on %s with db:\n%s", got, want, formula, d)
		}
	})
}

// fuzzDecoder turns a byte stream into a small database and formula;
// exhausted input yields zero bytes, so every input decodes.
type fuzzDecoder struct {
	data []byte
	pos  int
}

func (z *fuzzDecoder) byte() byte {
	if z.pos >= len(z.data) {
		return 0
	}
	b := z.data[z.pos]
	z.pos++
	return b
}

var fuzzDom = []string{"a", "b", "c", "d"}

func (z *fuzzDecoder) value() string { return fuzzDom[int(z.byte())%len(fuzzDom)] }

func (z *fuzzDecoder) database() *db.Database {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 1, 1)
	n := int(z.byte()) % 8
	for i := 0; i < n; i++ {
		if z.byte()%2 == 0 {
			d.MustInsert(db.F("R", z.value(), z.value()))
		} else {
			d.MustInsert(db.F("S", z.value()))
		}
	}
	return d
}

// sentence decodes a formula and closes it by quantifying every remaining
// free variable existentially.
func (z *fuzzDecoder) sentence() fo.Formula {
	f := z.formula(3, nil)
	free := fo.FreeVars(f)
	if len(free) > 0 {
		vars := make([]string, 0, len(free))
		for v := range free {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		f = fo.NewExists(vars, f)
	}
	return f
}

func (z *fuzzDecoder) term(scope []string) schema.Term {
	b := z.byte()
	if len(scope) > 0 && b%2 == 0 {
		return schema.Var(scope[int(b/2)%len(scope)])
	}
	return schema.Const(fuzzDom[int(b)%len(fuzzDom)])
}

func (z *fuzzDecoder) formula(depth int, scope []string) fo.Formula {
	if depth == 0 || z.pos >= len(z.data) {
		switch z.byte() % 4 {
		case 0:
			return fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{z.term(scope), z.term(scope)}}
		case 1:
			return fo.Atom{Rel: "S", Key: 1, Terms: []schema.Term{z.term(scope)}}
		case 2:
			return fo.Eq{L: z.term(scope), R: z.term(scope)}
		default:
			return fo.Truth(z.byte()%2 == 0)
		}
	}
	switch z.byte() % 8 {
	case 0:
		return fo.Not{F: z.formula(depth-1, scope)}
	case 1:
		return fo.NewAnd(z.formula(depth-1, scope), z.formula(depth-1, scope))
	case 2:
		return fo.NewOr(z.formula(depth-1, scope), z.formula(depth-1, scope))
	case 3:
		return fo.Implies{L: z.formula(depth-1, scope), R: z.formula(depth-1, scope)}
	case 4, 5:
		v := "v" + string(rune('0'+len(scope)))
		return fo.Exists{Vars: []string{v}, Body: z.formula(depth-1, append(scope, v))}
	case 6:
		v := "v" + string(rune('0'+len(scope)))
		return fo.Forall{Vars: []string{v}, Body: z.formula(depth-1, append(scope, v))}
	default:
		// Shadow an existing variable to exercise fresh-slot handling.
		if len(scope) == 0 {
			return z.formula(depth-1, scope)
		}
		v := scope[int(z.byte())%len(scope)]
		return fo.Exists{Vars: []string{v}, Body: z.formula(depth-1, scope)}
	}
}
