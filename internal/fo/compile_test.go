package fo_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// The compiled pipeline agrees with both the optimized tree walker and
// the unoptimized reference on random closed formulas — this is the
// correctness argument for the slot compiler and the compile-time
// candidate-restriction analysis.
func TestCompiledAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(316))
	for trial := 0; trial < 400; trial++ {
		f := randFormula(rng, 1+rng.Intn(3), nil)
		if !fo.FreeVars(f).Empty() {
			continue
		}
		d := randSmallDB(rng)
		want := fo.EvalReference(d, f)
		if got := fo.Eval(d, f); got != want {
			t.Fatalf("tree walker disagrees with reference on %s with db:\n%s", f, d)
		}
		if got := fo.EvalCompiled(d, f); got != want {
			t.Fatalf("compiled = %v, reference = %v on %s with db:\n%s", got, want, f, d)
		}
	}
}

// The compiled pipeline agrees on real rewritings over generated
// databases, sequentially and with the parallel fan-out, and the Bound is
// reusable across evaluations.
func TestCompiledAgreesOnRewritings(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested := 0
	for tested < 25 {
		q := gen.Query(rng, opts)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			continue
		}
		tested++
		d := gen.Database(rng, q, dbOpts)
		want := fo.Eval(d, f)
		p, err := fo.Compile(f)
		if err != nil {
			t.Fatalf("Compile(%s): %v", f, err)
		}
		b := p.Bind(d.Interned())
		for i := 0; i < 3; i++ {
			if got := b.Eval(); got != want {
				t.Fatalf("compiled = %v, tree walker = %v on rewriting of %s\n%s", got, want, q, d)
			}
		}
		if got := b.EvalParallel(4, 1); got != want {
			t.Fatalf("compiled parallel = %v, tree walker = %v on rewriting of %s\n%s", got, want, q, d)
		}
	}
}

// Compile rejects formulas with free variables.
func TestCompileRejectsFreeVariables(t *testing.T) {
	f := fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{schema.Var("x"), schema.Const("a")}}
	if _, err := fo.Compile(f); err == nil {
		t.Fatal("Compile accepted a formula with free variable x")
	}
}

// Atoms over relations the database does not declare are false, and
// quantifiers restricted by them range over the empty list — no clone or
// declaration is needed (unlike the tree-walker path through
// core.withQueryRels).
func TestCompiledMissingRelation(t *testing.T) {
	d := db.New()
	d.MustDeclare("S", 1, 1)
	d.MustInsert(db.F("S", "a"))
	// ∃x (R(x,x)) over undeclared R: false.
	f := fo.Exists{Vars: []string{"x"}, Body: fo.Atom{Rel: "R", Key: 1,
		Terms: []schema.Term{schema.Var("x"), schema.Var("x")}}}
	if fo.EvalCompiled(d, f) {
		t.Fatal("atom over undeclared relation evaluated to true")
	}
	// ¬∃x R(x,x): true.
	if !fo.EvalCompiled(d, fo.Not{F: f}) {
		t.Fatal("negated atom over undeclared relation evaluated to false")
	}
}

// Formula constants outside the database participate in equality and
// quantification via synthetic ids: ∃x (x = c ∧ ¬S(x)) must be true when
// c does not occur in the database.
func TestCompiledConstantsOutsideDatabase(t *testing.T) {
	d := db.New()
	d.MustDeclare("S", 1, 1)
	d.MustInsert(db.F("S", "a"))
	c := schema.Const("zzz-not-in-db")
	f := fo.Exists{Vars: []string{"x"}, Body: fo.NewAnd(
		fo.Eq{L: schema.Var("x"), R: c},
		fo.Not{F: fo.Atom{Rel: "S", Key: 1, Terms: []schema.Term{schema.Var("x")}}},
	)}
	if want := fo.Eval(d, f); !want {
		t.Fatal("tree walker: expected true")
	}
	if !fo.EvalCompiled(d, f) {
		t.Fatal("compiled: synthetic constant lost in quantification")
	}
	// Two distinct unseen constants must stay distinct, the same one equal.
	g := fo.Exists{Vars: []string{"x"}, Body: fo.NewAnd(
		fo.Eq{L: schema.Var("x"), R: schema.Const("u1")},
		fo.Eq{L: schema.Var("x"), R: schema.Const("u2")},
	)}
	if fo.EvalCompiled(d, g) != fo.Eval(d, g) {
		t.Fatal("distinct unseen constants compared equal")
	}
}

// Inner quantifiers shadowing an outer variable of the same name get
// their own slot; the outer binding is untouched.
func TestCompiledShadowing(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustInsert(db.F("R", "a", "b"))
	// ∃x (R(x,·) ∧ ∃x S-free: x = b) — inner x shadows outer.
	f := fo.Exists{Vars: []string{"x"}, Body: fo.NewAnd(
		fo.Exists{Vars: []string{"y"}, Body: fo.Atom{Rel: "R", Key: 1,
			Terms: []schema.Term{schema.Var("x"), schema.Var("y")}}},
		fo.Exists{Vars: []string{"x"}, Body: fo.Eq{L: schema.Var("x"), R: schema.Const("b")}},
		fo.Eq{L: schema.Var("x"), R: schema.Const("a")},
	)}
	if want, got := fo.Eval(d, f), fo.EvalCompiled(d, f); got != want {
		t.Fatalf("shadowing: compiled = %v, tree walker = %v", got, want)
	}
}

// InternNext reuses the indexes of relations shared between COW
// snapshots and stays correct on the rebuilt ones.
func TestCompiledInternNextCOW(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 1, 1)
	d.MustInsert(db.F("R", "a", "b"))
	d.MustInsert(db.F("S", "a"))
	ix1 := d.Interned()

	next := d.CloneCOW("S")
	next.MustInsert(db.F("S", "zzz"))
	ix2 := db.InternNext(ix1, next)
	next.SeedInterned(ix2)

	if ix2.Relation("R") != ix1.Relation("R") {
		t.Fatal("untouched relation index was rebuilt instead of reused")
	}
	if ix2.Relation("S") == ix1.Relation("S") {
		t.Fatal("touched relation index was reused")
	}
	// Ids are stable across the chain: "a" has the same id in both views.
	id1, ok1 := ix1.ID("a")
	id2, ok2 := ix2.ID("a")
	if !ok1 || !ok2 || id1 != id2 {
		t.Fatalf("id of shared constant drifted: %d/%v vs %d/%v", id1, ok1, id2, ok2)
	}
	// And the evaluation on the new snapshot sees the new fact.
	f := fo.Exists{Vars: []string{"x"}, Body: fo.NewAnd(
		fo.Atom{Rel: "S", Key: 1, Terms: []schema.Term{schema.Var("x")}},
		fo.Eq{L: schema.Var("x"), R: schema.Const("zzz")},
	)}
	p := fo.MustCompile(f)
	if p.Bind(ix1).Eval() {
		t.Fatal("old snapshot sees the new fact")
	}
	if !p.Bind(ix2).Eval() {
		t.Fatal("new snapshot misses the new fact")
	}
}
