package fo_test

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
)

// isNNF reports whether negation appears only on atoms/equalities and no
// implication remains.
func isNNF(f fo.Formula) bool {
	switch g := f.(type) {
	case fo.Atom, fo.Eq, fo.Truth:
		return true
	case fo.Not:
		switch g.F.(type) {
		case fo.Atom, fo.Eq:
			return true
		}
		return false
	case fo.And:
		for _, sub := range g.Fs {
			if !isNNF(sub) {
				return false
			}
		}
		return true
	case fo.Or:
		for _, sub := range g.Fs {
			if !isNNF(sub) {
				return false
			}
		}
		return true
	case fo.Implies:
		return false
	case fo.Exists:
		return isNNF(g.Body)
	case fo.Forall:
		return isNNF(g.Body)
	default:
		return false
	}
}

// isPrenex reports whether the formula is a quantifier prefix followed by
// a quantifier-free matrix.
func isPrenex(f fo.Formula) bool {
	for {
		switch g := f.(type) {
		case fo.Exists:
			f = g.Body
		case fo.Forall:
			f = g.Body
		default:
			return fo.QuantifierRank(f) == 0
		}
	}
}

func TestNNFShapeAndSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 300; trial++ {
		f := randFormula(rng, 1+rng.Intn(3), nil)
		if !fo.FreeVars(f).Empty() {
			continue
		}
		n := fo.NNF(f)
		if !isNNF(n) {
			t.Fatalf("NNF(%s) = %s is not in NNF", f, n)
		}
		d := randSmallDB(rng)
		if fo.EvalReference(d, f) != fo.EvalReference(d, n) {
			t.Fatalf("NNF changed semantics of %s", f)
		}
	}
}

func TestPrenexShapeAndSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	for trial := 0; trial < 300; trial++ {
		f := randFormula(rng, 1+rng.Intn(3), nil)
		if !fo.FreeVars(f).Empty() {
			continue
		}
		p := fo.Prenex(f)
		if !isPrenex(p) {
			t.Fatalf("Prenex(%s) = %s is not prenex", f, p)
		}
		if !fo.FreeVars(p).Empty() {
			t.Fatalf("Prenex introduced free variables: %s", p)
		}
		d := randSmallDB(rng)
		if len(d.ActiveDomain()) == 0 {
			continue // prenex laws need a non-empty domain
		}
		if fo.EvalReference(d, f) != fo.EvalReference(d, p) {
			t.Fatalf("Prenex changed semantics of %s (to %s)", f, p)
		}
	}
}

// Prenexing real rewritings preserves the certainty answer.
func TestPrenexOnRewritings(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	p := fo.Prenex(f)
	if !isPrenex(p) {
		t.Fatal("not prenex")
	}
	d := parse.MustDatabase(`
		P(p1 | v1)
		P(p2 | v2)
		N(c | v1)
	`)
	if fo.Eval(d, f) != fo.Eval(d, p) {
		t.Error("prenex rewriting disagrees")
	}
}

func TestQuantifierRank(t *testing.T) {
	f := fo.Exists{Vars: []string{"x", "y"}, Body: fo.Forall{Vars: []string{"z"}, Body: fo.Truth(true)}}
	if got := fo.QuantifierRank(f); got != 3 {
		t.Errorf("rank = %d, want 3", got)
	}
	if got := fo.QuantifierRank(fo.Truth(true)); got != 0 {
		t.Errorf("rank of truth = %d", got)
	}
}

func TestAlternationDepth(t *testing.T) {
	// ∃x ∀z ∃w: two alternations.
	f := fo.Exists{Vars: []string{"x"},
		Body: fo.Forall{Vars: []string{"z"},
			Body: fo.Exists{Vars: []string{"w"}, Body: fo.Truth(true)}}}
	if got := fo.AlternationDepth(f); got != 2 {
		t.Errorf("alternation = %d, want 2", got)
	}
	// ∃x ∃y: none.
	g := fo.Exists{Vars: []string{"x", "y"}, Body: fo.Truth(true)}
	if got := fo.AlternationDepth(g); got != 0 {
		t.Errorf("alternation = %d, want 0", got)
	}
	// Negation flips ∀/∃ in NNF: ¬∃x∀z φ has the same depth.
	h := fo.Not{F: f}
	if got := fo.AlternationDepth(h); got != 2 {
		t.Errorf("alternation under negation = %d, want 2", got)
	}
}

// The q_Hall rewriting is a conjunction of Π₂ sentences for every ℓ: the
// quantifier alternation depth stays constant at 1 while the size grows
// exponentially — a shape statistic reported in EXPERIMENTS.md.
func TestQHallAlternationConstant(t *testing.T) {
	for l := 1; l <= 4; l++ {
		src := "S(x)"
		for i := 1; i <= l; i++ {
			src += ", !N" + string(rune('0'+i)) + "('c' | x)"
		}
		f, err := rewrite.Rewrite(parse.MustQuery(src))
		if err != nil {
			t.Fatal(err)
		}
		if depth := fo.AlternationDepth(f); depth != 1 {
			t.Errorf("ℓ=%d: alternation depth = %d, want 1 (Π₂ conjuncts)", l, depth)
		}
		if rank := fo.QuantifierRank(f); rank != l+1 {
			t.Errorf("ℓ=%d: quantifier rank = %d, want %d", l, rank, l+1)
		}
	}
}

func TestLaTeX(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	tex := fo.LaTeX(f)
	for _, frag := range []string{"\\exists x", "\\forall z2", "\\wedge", "\\to", "\\neq", "\\mathrm{c}"} {
		if !strings.Contains(tex, frag) {
			t.Errorf("LaTeX lacks %q:\n%s", frag, tex)
		}
	}
	// Balanced \big( ... \big).
	if strings.Count(tex, "\\big(") != strings.Count(tex, "\\big)") {
		t.Error("unbalanced \\big parens")
	}
	if got := fo.LaTeX(fo.Truth(true)); got != "\\top" {
		t.Errorf("LaTeX(true) = %q", got)
	}
}
