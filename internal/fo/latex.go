package fo

import (
	"fmt"
	"strings"
)

// LaTeX renders the formula as LaTeX math source, in the notation of the
// paper (Figure 2): \exists, \forall, \wedge, \vee, \neg, \to, \neq.
// Constants are typeset upright; variables as-is.
func LaTeX(f Formula) string {
	var b strings.Builder
	latex(f, &b)
	return b.String()
}

func latex(f Formula, b *strings.Builder) {
	switch g := f.(type) {
	case Truth:
		if g {
			b.WriteString("\\top")
		} else {
			b.WriteString("\\bot")
		}
	case Atom:
		b.WriteString(g.Rel)
		b.WriteString("(")
		for i, t := range g.Terms {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(latexTerm(t))
		}
		b.WriteString(")")
	case Eq:
		fmt.Fprintf(b, "%s = %s", latexTerm(g.L), latexTerm(g.R))
	case Not:
		if eq, ok := g.F.(Eq); ok {
			fmt.Fprintf(b, "%s \\neq %s", latexTerm(eq.L), latexTerm(eq.R))
			return
		}
		b.WriteString("\\neg ")
		latexParen(g.F, b)
	case And:
		latexJoin(g.Fs, " \\wedge ", b)
	case Or:
		latexJoin(g.Fs, " \\vee ", b)
	case Implies:
		latexParen(g.L, b)
		b.WriteString(" \\to ")
		latexParen(g.R, b)
	case Exists:
		for _, v := range g.Vars {
			fmt.Fprintf(b, "\\exists %s ", v)
		}
		b.WriteString("\\big(")
		latex(g.Body, b)
		b.WriteString("\\big)")
	case Forall:
		for _, v := range g.Vars {
			fmt.Fprintf(b, "\\forall %s ", v)
		}
		b.WriteString("\\big(")
		latex(g.Body, b)
		b.WriteString("\\big)")
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

func latexJoin(fs []Formula, sep string, b *strings.Builder) {
	if len(fs) == 0 {
		b.WriteString("\\top")
		return
	}
	for i, sub := range fs {
		if i > 0 {
			b.WriteString(sep)
		}
		latexParen(sub, b)
	}
}

func latexParen(f Formula, b *strings.Builder) {
	switch f.(type) {
	case Atom, Truth, Eq, Not, Exists, Forall:
		latex(f, b)
	default:
		b.WriteString("(")
		latex(f, b)
		b.WriteString(")")
	}
}

func latexTerm(t interface{ String() string }) string {
	s := t.String()
	if strings.HasPrefix(s, "'") {
		return "\\mathrm{" + strings.Trim(s, "'") + "}"
	}
	return s
}
