package fo

import "fmt"

// Simplify performs semantics-preserving cleanups: flattening nested
// conjunctions/disjunctions, removing true/false units, collapsing double
// negation, merging nested quantifiers of the same kind, and rewriting
// ¬∃¬ patterns introduced by mechanical construction. Quantifiers are
// never dropped (under active-domain semantics ∃x φ is not equivalent to φ
// on an empty domain), so simplification is sound on every database.
func Simplify(f Formula) Formula {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return f
	case Not:
		inner := Simplify(g.F)
		switch h := inner.(type) {
		case Truth:
			return Truth(!h)
		case Not:
			return h.F
		}
		return Not{F: inner}
	case And:
		var parts []Formula
		for _, sub := range g.Fs {
			s := Simplify(sub)
			if t, ok := s.(Truth); ok {
				if !t {
					return Truth(false)
				}
				continue
			}
			if a, ok := s.(And); ok {
				parts = append(parts, a.Fs...)
				continue
			}
			parts = append(parts, s)
		}
		if len(parts) == 0 {
			return Truth(true)
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return And{Fs: parts}
	case Or:
		var parts []Formula
		for _, sub := range g.Fs {
			s := Simplify(sub)
			if t, ok := s.(Truth); ok {
				if t {
					return Truth(true)
				}
				continue
			}
			if o, ok := s.(Or); ok {
				parts = append(parts, o.Fs...)
				continue
			}
			parts = append(parts, s)
		}
		if len(parts) == 0 {
			return Truth(false)
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return Or{Fs: parts}
	case Implies:
		l := Simplify(g.L)
		r := Simplify(g.R)
		if t, ok := l.(Truth); ok {
			if t {
				return r
			}
			return Truth(true)
		}
		if t, ok := r.(Truth); ok {
			if t {
				return Truth(true)
			}
			return Simplify(Not{F: l})
		}
		return Implies{L: l, R: r}
	case Exists:
		body := Simplify(g.Body)
		// ∃x false ≡ false on every domain. (∃x true is NOT simplified:
		// it is false on an empty active domain.)
		if t, ok := body.(Truth); ok && !bool(t) {
			return Truth(false)
		}
		if e, ok := body.(Exists); ok {
			return Exists{Vars: append(append([]string{}, g.Vars...), e.Vars...), Body: e.Body}
		}
		return Exists{Vars: g.Vars, Body: body}
	case Forall:
		body := Simplify(g.Body)
		// ∀x true ≡ true on every domain, including the empty one.
		if t, ok := body.(Truth); ok && bool(t) {
			return Truth(true)
		}
		if u, ok := body.(Forall); ok {
			return Forall{Vars: append(append([]string{}, g.Vars...), u.Vars...), Body: u.Body}
		}
		return Forall{Vars: g.Vars, Body: body}
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}
