package fo

import (
	"fmt"

	"cqa/internal/db"
	"cqa/internal/schema"
)

// EvalReference is a deliberately simple active-domain model checker with
// no quantifier-range optimization: every quantifier iterates the whole
// active domain. It exists to cross-validate Eval (whose guard-based
// candidate restriction is the only clever part of the evaluator) and for
// debugging; production code should use Eval.
func EvalReference(d *db.Database, f Formula) bool {
	if free := FreeVars(f); !free.Empty() {
		panic(fmt.Sprintf("fo: EvalReference on non-sentence with free variables %s", free))
	}
	domain := activeDomain(d, f)
	return refEval(d, domain, f, make(map[string]string))
}

func refEval(d *db.Database, domain []string, f Formula, env map[string]string) bool {
	switch g := f.(type) {
	case Truth:
		return bool(g)
	case Atom:
		args := make([]string, len(g.Terms))
		for i, t := range g.Terms {
			args[i] = refGround(t, env)
		}
		return d.Has(db.Fact{Rel: g.Rel, Args: args})
	case Eq:
		return refGround(g.L, env) == refGround(g.R, env)
	case Not:
		return !refEval(d, domain, g.F, env)
	case And:
		for _, sub := range g.Fs {
			if !refEval(d, domain, sub, env) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if refEval(d, domain, sub, env) {
				return true
			}
		}
		return false
	case Implies:
		return !refEval(d, domain, g.L, env) || refEval(d, domain, g.R, env)
	case Exists:
		return refQuant(d, domain, g.Vars, g.Body, env, false)
	case Forall:
		return refQuant(d, domain, g.Vars, g.Body, env, true)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// refQuant binds vars over the full domain; universal=true checks all
// bindings, otherwise it searches for one.
func refQuant(d *db.Database, domain []string, vars []string, body Formula, env map[string]string, universal bool) bool {
	if len(vars) == 0 {
		return refEval(d, domain, body, env)
	}
	x, rest := vars[0], vars[1:]
	saved, had := env[x]
	defer func() {
		if had {
			env[x] = saved
		} else {
			delete(env, x)
		}
	}()
	for _, v := range domain {
		env[x] = v
		ok := refQuant(d, domain, rest, body, env, universal)
		if universal && !ok {
			return false
		}
		if !universal && ok {
			return true
		}
	}
	return universal
}

func refGround(t schema.Term, env map[string]string) string {
	if !t.IsVar {
		return t.Name
	}
	v, ok := env[t.Name]
	if !ok {
		panic(fmt.Sprintf("fo: unbound variable %s", t.Name))
	}
	return v
}
