package fo_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// randFormula builds a random closed formula over relations R(2,1) and
// S(1,1), quantifying every variable it introduces.
func randFormula(rng *rand.Rand, depth int, scope []string) fo.Formula {
	mkTerm := func() schema.Term {
		if len(scope) > 0 && rng.Intn(4) != 0 {
			return schema.Var(scope[rng.Intn(len(scope))])
		}
		return schema.Const([]string{"a", "b", "c", "d"}[rng.Intn(4)])
	}
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{mkTerm(), mkTerm()}}
		case 1:
			return fo.Atom{Rel: "S", Key: 1, Terms: []schema.Term{mkTerm()}}
		default:
			return fo.Eq{L: mkTerm(), R: mkTerm()}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return fo.Not{F: randFormula(rng, depth-1, scope)}
	case 1:
		return fo.NewAnd(randFormula(rng, depth-1, scope), randFormula(rng, depth-1, scope))
	case 2:
		return fo.NewOr(randFormula(rng, depth-1, scope), randFormula(rng, depth-1, scope))
	case 3:
		return fo.Implies{L: randFormula(rng, depth-1, scope), R: randFormula(rng, depth-1, scope)}
	case 4:
		v := newVar(scope)
		return fo.Exists{Vars: []string{v}, Body: randFormula(rng, depth-1, append(scope, v))}
	default:
		v := newVar(scope)
		return fo.Forall{Vars: []string{v}, Body: randFormula(rng, depth-1, append(scope, v))}
	}
}

func newVar(scope []string) string {
	return "v" + string(rune('0'+len(scope)))
}

func randSmallDB(rng *rand.Rand) *db.Database {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 1, 1)
	dom := []string{"a", "b", "c"}
	for i := 0; i < 5; i++ {
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("R", dom[rng.Intn(3)], dom[rng.Intn(3)]))
		}
		if rng.Intn(3) == 0 {
			d.MustInsert(db.F("S", dom[rng.Intn(3)]))
		}
	}
	return d
}

// The optimized evaluator agrees with the unoptimized reference on random
// closed formulas — this is the correctness argument for the guard-based
// candidate restriction.
func TestEvalAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 400; trial++ {
		f := randFormula(rng, 1+rng.Intn(3), nil)
		if !fo.FreeVars(f).Empty() {
			continue
		}
		d := randSmallDB(rng)
		if fo.Eval(d, f) != fo.EvalReference(d, f) {
			t.Fatalf("evaluators disagree on %s with db:\n%s", f, d)
		}
		// Simplification must preserve both.
		s := fo.Simplify(f)
		if fo.Eval(d, s) != fo.EvalReference(d, f) {
			t.Fatalf("Simplify changed semantics of %s (to %s)", f, s)
		}
	}
}

// The evaluators also agree on real rewritings over generated databases.
func TestEvalAgreesOnRewritings(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested := 0
	for tested < 25 {
		q := gen.Query(rng, opts)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			continue
		}
		tested++
		d := gen.Database(rng, q, dbOpts)
		if fo.Eval(d, f) != fo.EvalReference(d, f) {
			t.Fatalf("evaluators disagree on rewriting of %s\n%s", q, d)
		}
	}
}
