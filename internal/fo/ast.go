// Package fo implements the fragment of first-order logic needed for
// consistent first-order rewritings: formulas with relation atoms,
// (dis)equalities, Boolean connectives, implication, and quantifiers,
// together with an active-domain model checker over internal/db databases,
// a simplifier, and a pretty printer.
//
// The complexity class FO of the paper is "first-order logic with equality
// and constants, but without other built-in predicates or function
// symbols"; this AST is exactly that fragment.
package fo

import (
	"fmt"
	"strings"

	"cqa/internal/schema"
)

// Formula is a first-order formula. Implementations are Atom, Eq, Truth,
// Not, And, Or, Implies, Exists, and Forall.
type Formula interface {
	isFormula()
	// String renders the formula with Unicode logical symbols.
	String() string
}

// Atom is a relation atom R(t₁,…,tₙ). Key records the number of
// primary-key positions so that printers can show the separator; it has no
// logical meaning.
type Atom struct {
	Rel   string
	Key   int
	Terms []schema.Term
}

// Eq is the equality t₁ = t₂.
type Eq struct{ L, R schema.Term }

// Truth is the constant true or false formula.
type Truth bool

// Not is negation.
type Not struct{ F Formula }

// And is conjunction over zero or more formulas (empty = true).
type And struct{ Fs []Formula }

// Or is disjunction over zero or more formulas (empty = false).
type Or struct{ Fs []Formula }

// Implies is the implication L → R.
type Implies struct{ L, R Formula }

// Exists is existential quantification over one or more variables.
type Exists struct {
	Vars []string
	Body Formula
}

// Forall is universal quantification over one or more variables.
type Forall struct {
	Vars []string
	Body Formula
}

func (Atom) isFormula()    {}
func (Eq) isFormula()      {}
func (Truth) isFormula()   {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Exists) isFormula()  {}
func (Forall) isFormula()  {}

// NewAnd builds a conjunction, flattening nested Ands.
func NewAnd(fs ...Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		if a, ok := f.(And); ok {
			flat = append(flat, a.Fs...)
			continue
		}
		flat = append(flat, f)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Fs: flat}
}

// NewOr builds a disjunction, flattening nested Ors.
func NewOr(fs ...Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		if o, ok := f.(Or); ok {
			flat = append(flat, o.Fs...)
			continue
		}
		flat = append(flat, f)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Or{Fs: flat}
}

// NewExists quantifies body over vars; with no vars it returns body.
func NewExists(vars []string, body Formula) Formula {
	if len(vars) == 0 {
		return body
	}
	if e, ok := body.(Exists); ok {
		return Exists{Vars: append(append([]string{}, vars...), e.Vars...), Body: e.Body}
	}
	return Exists{Vars: vars, Body: body}
}

// NewForall quantifies body over vars; with no vars it returns body.
func NewForall(vars []string, body Formula) Formula {
	if len(vars) == 0 {
		return body
	}
	if u, ok := body.(Forall); ok {
		return Forall{Vars: append(append([]string{}, vars...), u.Vars...), Body: u.Body}
	}
	return Forall{Vars: vars, Body: body}
}

// Neq builds the disequality ¬(l = r).
func Neq(l, r schema.Term) Formula { return Not{F: Eq{L: l, R: r}} }

// FreeVars returns the free variables of the formula.
func FreeVars(f Formula) schema.VarSet {
	out := make(schema.VarSet)
	collectFree(f, make(schema.VarSet), out)
	return out
}

func collectFree(f Formula, bound, out schema.VarSet) {
	switch g := f.(type) {
	case Atom:
		for _, t := range g.Terms {
			if t.IsVar && !bound.Has(t.Name) {
				out[t.Name] = true
			}
		}
	case Eq:
		for _, t := range []schema.Term{g.L, g.R} {
			if t.IsVar && !bound.Has(t.Name) {
				out[t.Name] = true
			}
		}
	case Truth:
	case Not:
		collectFree(g.F, bound, out)
	case And:
		for _, sub := range g.Fs {
			collectFree(sub, bound, out)
		}
	case Or:
		for _, sub := range g.Fs {
			collectFree(sub, bound, out)
		}
	case Implies:
		collectFree(g.L, bound, out)
		collectFree(g.R, bound, out)
	case Exists:
		inner := bound.Copy()
		for _, v := range g.Vars {
			inner[v] = true
		}
		collectFree(g.Body, inner, out)
	case Forall:
		inner := bound.Copy()
		for _, v := range g.Vars {
			inner[v] = true
		}
		collectFree(g.Body, inner, out)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// Constants returns the set of constant values occurring in the formula.
func Constants(f Formula) map[string]bool {
	out := make(map[string]bool)
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Atom:
			for _, t := range g.Terms {
				if !t.IsVar {
					out[t.Name] = true
				}
			}
		case Eq:
			for _, t := range []schema.Term{g.L, g.R} {
				if !t.IsVar {
					out[t.Name] = true
				}
			}
		case Truth:
		case Not:
			walk(g.F)
		case And:
			for _, sub := range g.Fs {
				walk(sub)
			}
		case Or:
			for _, sub := range g.Fs {
				walk(sub)
			}
		case Implies:
			walk(g.L)
			walk(g.R)
		case Exists:
			walk(g.Body)
		case Forall:
			walk(g.Body)
		default:
			panic(fmt.Sprintf("fo: unknown formula %T", f))
		}
	}
	walk(f)
	return out
}

// Size returns the number of AST nodes; terms are not counted. It is the
// measure used to report rewriting growth (the paper remarks that the
// rewriting of q_Hall is exponential in the query size).
func Size(f Formula) int {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return 1
	case Not:
		return 1 + Size(g.F)
	case And:
		n := 1
		for _, sub := range g.Fs {
			n += Size(sub)
		}
		return n
	case Or:
		n := 1
		for _, sub := range g.Fs {
			n += Size(sub)
		}
		return n
	case Implies:
		return 1 + Size(g.L) + Size(g.R)
	case Exists:
		return 1 + Size(g.Body)
	case Forall:
		return 1 + Size(g.Body)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }

func (t Truth) String() string {
	if t {
		return "true"
	}
	return "false"
}

func (n Not) String() string {
	if eq, ok := n.F.(Eq); ok {
		return eq.L.String() + " ≠ " + eq.R.String()
	}
	return "¬" + paren(n.F)
}

func (a And) String() string {
	if len(a.Fs) == 0 {
		return "true"
	}
	parts := make([]string, len(a.Fs))
	for i, f := range a.Fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, " ∧ ")
}

func (o Or) String() string {
	if len(o.Fs) == 0 {
		return "false"
	}
	parts := make([]string, len(o.Fs))
	for i, f := range o.Fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, " ∨ ")
}

func (im Implies) String() string { return paren(im.L) + " → " + paren(im.R) }

func (e Exists) String() string {
	return "∃" + strings.Join(e.Vars, "∃") + "(" + e.Body.String() + ")"
}

func (u Forall) String() string {
	return "∀" + strings.Join(u.Vars, "∀") + "(" + u.Body.String() + ")"
}

// paren parenthesizes compound subformulas for unambiguous output.
func paren(f Formula) string {
	switch f.(type) {
	case Atom, Truth, Exists, Forall, Not, Eq:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}
