package fo

import (
	"fmt"
	"sort"

	"cqa/internal/db"
	"cqa/internal/schema"
)

// Eval model-checks a first-order sentence against a database under
// active-domain semantics: quantifiers range over the constants of the
// database plus the constants of the formula. This is faithful to the
// paper's constructions, whose quantified witnesses always come from
// positive atoms and hence from the active domain.
//
// Eval panics if the formula has free variables (it must be a sentence) or
// contains an unknown node type.
func Eval(d *db.Database, f Formula) bool {
	if free := FreeVars(f); !free.Empty() {
		panic(fmt.Sprintf("fo: Eval on non-sentence with free variables %s", free))
	}
	ev := &evaluator{d: d}
	ev.domain = activeDomain(d, f)
	return ev.eval(f, make(map[string]string))
}

// EvalWith model-checks a formula whose free variables are bound by env.
func EvalWith(d *db.Database, f Formula, env map[string]string) bool {
	ev := &evaluator{d: d}
	ev.domain = activeDomain(d, f)
	e := make(map[string]string, len(env))
	for k, v := range env {
		e[k] = v
	}
	return ev.eval(f, e)
}

func activeDomain(d *db.Database, f Formula) []string {
	set := make(map[string]bool)
	for _, v := range d.ActiveDomain() {
		set[v] = true
	}
	for c := range Constants(f) {
		set[c] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

type evaluator struct {
	d      *db.Database
	domain []string
}

func (ev *evaluator) eval(f Formula, env map[string]string) bool {
	switch g := f.(type) {
	case Truth:
		return bool(g)
	case Atom:
		args := make([]string, len(g.Terms))
		for i, t := range g.Terms {
			args[i] = ev.ground(t, env)
		}
		return ev.d.Has(db.Fact{Rel: g.Rel, Args: args})
	case Eq:
		return ev.ground(g.L, env) == ev.ground(g.R, env)
	case Not:
		return !ev.eval(g.F, env)
	case And:
		for _, sub := range g.Fs {
			if !ev.eval(sub, env) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if ev.eval(sub, env) {
				return true
			}
		}
		return false
	case Implies:
		return !ev.eval(g.L, env) || ev.eval(g.R, env)
	case Exists:
		return ev.exists(g.Vars, g.Body, env)
	case Forall:
		// ∀x⃗ φ ≡ ¬∃x⃗ ¬φ; the exists path knows how to restrict
		// candidate values using the guards inside ¬φ.
		return !ev.exists(g.Vars, Not{F: g.Body}, env)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

func (ev *evaluator) ground(t schema.Term, env map[string]string) string {
	if !t.IsVar {
		return t.Name
	}
	v, ok := env[t.Name]
	if !ok {
		panic(fmt.Sprintf("fo: unbound variable %s (formula is not a sentence or quantifier order is broken)", t.Name))
	}
	return v
}

// exists binds the variables one at a time, restricting each variable's
// range with guard atoms found in the body, and reports whether some
// binding satisfies the body.
func (ev *evaluator) exists(vars []string, body Formula, env map[string]string) bool {
	if len(vars) == 0 {
		return ev.eval(body, env)
	}
	x, rest := vars[0], vars[1:]
	if _, shadowedAlready := env[x]; shadowedAlready {
		// Inner quantifier shadows an outer binding of the same name;
		// save and restore.
		saved := env[x]
		defer func() { env[x] = saved }()
	}
	cands, restricted := ev.candidates(x, body, true)
	if !restricted {
		cands = ev.domain
	}
	for _, v := range cands {
		env[x] = v
		if ev.exists(rest, body, env) {
			delete(env, x)
			return true
		}
	}
	delete(env, x)
	return false
}

// candidates returns a sound over-approximation of the values of x for
// which f can be true (positive=true) or false (positive=false), by
// scanning for guard atoms and ground equalities. The boolean result
// reports whether a restriction was found; when false the caller must fall
// back to the active domain.
func (ev *evaluator) candidates(x string, f Formula, positive bool) ([]string, bool) {
	switch g := f.(type) {
	case Truth:
		return nil, false
	case Atom:
		if !positive {
			return nil, false
		}
		var out []string
		found := false
		r := ev.d.Relation(g.Rel)
		for i, t := range g.Terms {
			if t.IsVar && t.Name == x {
				if r == nil {
					// Unknown relation: the atom can never hold.
					return nil, true
				}
				if !found {
					out = r.ColumnValues(i)
					found = true
				}
			}
		}
		return out, found
	case Eq:
		if !positive {
			return nil, false
		}
		if g.L.IsVar && g.L.Name == x && !g.R.IsVar {
			return []string{g.R.Name}, true
		}
		if g.R.IsVar && g.R.Name == x && !g.L.IsVar {
			return []string{g.L.Name}, true
		}
		return nil, false
	case Not:
		return ev.candidates(x, g.F, !positive)
	case And:
		if positive {
			// All conjuncts must hold; any single restriction is sound.
			return ev.firstRestriction(x, g.Fs, true)
		}
		// Some conjunct must fail; need the union over all of them.
		return ev.unionRestriction(x, g.Fs, false)
	case Or:
		if positive {
			return ev.unionRestriction(x, g.Fs, true)
		}
		return ev.firstRestriction(x, g.Fs, false)
	case Implies:
		if positive {
			// L→R true: either ¬L or R; union like Or.
			return ev.unionRestriction2(x, Not{F: g.L}, g.R, true)
		}
		// L→R false: L true and R false; any restriction is sound.
		if out, ok := ev.candidates(x, g.L, true); ok {
			return out, true
		}
		return ev.candidates(x, g.R, false)
	case Exists:
		for _, v := range g.Vars {
			if v == x {
				return nil, false // x is shadowed; no free occurrence below
			}
		}
		if positive {
			return ev.candidates(x, g.Body, true)
		}
		return nil, false
	case Forall:
		for _, v := range g.Vars {
			if v == x {
				return nil, false
			}
		}
		if !positive {
			// ∀z φ false ⟺ φ false for some z; restrictions on x from φ
			// being false are sound.
			return ev.candidates(x, g.Body, false)
		}
		return nil, false
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// firstRestriction returns the smallest single-child restriction, trying
// every child.
func (ev *evaluator) firstRestriction(x string, fs []Formula, positive bool) ([]string, bool) {
	var best []string
	found := false
	for _, sub := range fs {
		if out, ok := ev.candidates(x, sub, positive); ok {
			if !found || len(out) < len(best) {
				best = out
				found = true
			}
		}
	}
	return best, found
}

// unionRestriction returns the union of the children's restrictions; every
// child must restrict, otherwise there is no sound restriction.
func (ev *evaluator) unionRestriction(x string, fs []Formula, positive bool) ([]string, bool) {
	set := make(map[string]bool)
	for _, sub := range fs {
		out, ok := ev.candidates(x, sub, positive)
		if !ok {
			return nil, false
		}
		for _, v := range out {
			set[v] = true
		}
	}
	vals := make([]string, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals, true
}

func (ev *evaluator) unionRestriction2(x string, a, b Formula, positive bool) ([]string, bool) {
	return ev.unionRestriction(x, []Formula{a, b}, positive)
}
