package sqlexec_test

import (
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/sqlexec"
	"cqa/internal/sqlgen"
)

// FuzzSQLExec checks that the sqlgen-dialect SQL interpreter never panics:
// arbitrary input either parses and executes (against a small fixed
// database) or is rejected with an error. The seed corpus mixes real
// sqlgen.Translate output for paper queries with hand-broken statements.
func FuzzSQLExec(f *testing.F) {
	seeds := []string{
		`WITH adom(v) AS (
  SELECT c1 AS v FROM R UNION SELECT c2 AS v FROM R
)
SELECT CASE WHEN
  EXISTS (SELECT 1 FROM adom d1 WHERE
    EXISTS (SELECT 1 FROM R t1 WHERE t1.c1 = d1.v AND t1.c2 = 'b'))
THEN 1 ELSE 0 END AS certain;`,
		`WITH adom(v) AS (SELECT NULL AS v WHERE 1 = 0)
SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS certain;`,
		"WITH adom(v) AS (SELECT c1 AS v FROM R)\nSELECT CASE WHEN NOT (1 = 1) THEN 1 ELSE 0 END AS certain;",
		"WITH adom(v AS (SELECT c1 AS v FROM R) SELECT 1;",
		"SELECT 1;",
		"",
		"WITH adom(v) AS (SELECT c9 AS v FROM R)\nSELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS certain;",
	}
	for _, src := range []string{
		"P(x | y), !N('c' | y)",
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"R(x | y), S(y | z)",
	} {
		q := parse.MustQuery(src)
		fml, err := rewrite.Rewrite(q)
		if err != nil {
			f.Fatal(err)
		}
		sql, err := sqlgen.Translate(fml, sqlgen.Options{})
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, sql)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustInsert(db.F("R", "a", "b"))
		d.MustInsert(db.F("R", "a", "c"))
		d.MustDeclare("S", 2, 1)
		d.MustInsert(db.F("S", "b", "a"))
		stmt, err := sqlexec.Parse(src)
		if err != nil {
			return
		}
		// Accepted statements must execute without panicking; runtime
		// errors (unknown tables, out-of-range columns) are fine.
		if _, err := sqlexec.Exec(stmt, d); err != nil {
			return
		}
	})
}
