// Package sqlexec executes the SQL dialect produced by internal/sqlgen
// against an internal/db database. It is a deliberately small engine —
// WITH one CTE, EXISTS/NOT/AND/OR/equality, nested-loop joins over
// aliased tables — but it is a real parser and executor, so the test
// suite can check end-to-end that the generated "single SQL query"
// computes exactly CERTAINTY(q): parse(translate(rewrite(q))) evaluated
// on db equals repair enumeration.
package sqlexec

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // 'quoted'
	tokPunct  // ( ) , . ; =
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src    []rune
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src)}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		r := l.src[l.pos]
		switch {
		case r == '\'':
			start := l.pos
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sqlexec: unterminated string at %d", start)
				}
				if l.src[l.pos] == '\'' {
					// '' is an escaped quote.
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteRune(l.src[l.pos])
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
		case strings.ContainsRune("(),.;=", r):
			l.tokens = append(l.tokens, token{kind: tokPunct, text: string(r), pos: l.pos})
			l.pos++
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokIdent, text: string(l.src[start:l.pos]), pos: start})
		default:
			return nil, fmt.Errorf("sqlexec: unexpected character %q at %d", r, l.pos)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
}
