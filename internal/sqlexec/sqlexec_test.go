package sqlexec_test

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/sqlexec"
	"cqa/internal/sqlgen"
)

func TestParseSimpleStatement(t *testing.T) {
	src := `WITH adom(v) AS (
  SELECT c1 AS v FROM R
  UNION
  SELECT c2 AS v FROM R
)
SELECT CASE WHEN
  EXISTS (SELECT 1 FROM adom d1 WHERE
    EXISTS (SELECT 1 FROM R t2 WHERE t2.c1 = d1.v AND t2.c2 = 'b'))
THEN 1 ELSE 0 END AS certain;`
	stmt, err := sqlexec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.CTEName != "adom" || stmt.CTECol != "v" || len(stmt.CTE) != 2 {
		t.Errorf("CTE parsed wrong: %+v", stmt)
	}
	if stmt.Out != "certain" {
		t.Errorf("output column = %q", stmt.Out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT 1;",
		"WITH adom(v AS (SELECT c1 AS v FROM R) SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS c;",
		"WITH adom(v) AS (SELECT c1 AS v FROM R) SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS c", // no semicolon
		"WITH adom(v) AS (SELECT q7 AS v FROM R) SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS c;",
	}
	for _, src := range cases {
		if _, err := sqlexec.Parse(src); err == nil {
			t.Errorf("parse(%.40q) should fail", src)
		}
	}
}

func TestRunSimple(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustInsert(db.F("R", "a", "b"))
	src := `WITH adom(v) AS (
  SELECT c1 AS v FROM R UNION SELECT c2 AS v FROM R
)
SELECT CASE WHEN
  EXISTS (SELECT 1 FROM adom d1 WHERE
    EXISTS (SELECT 1 FROM R t1 WHERE t1.c1 = d1.v AND t1.c2 = 'b'))
THEN 1 ELSE 0 END AS certain;`
	got, err := sqlexec.Run(src, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("R(a,b) exists; query should be true")
	}
	src2 := strings.Replace(src, "'b'", "'zz'", 1)
	got, err = sqlexec.Run(src2, d)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("no R(·, zz); query should be false")
	}
}

func TestRunEmptyCTE(t *testing.T) {
	d := db.New()
	src := `WITH adom(v) AS (
  SELECT NULL AS v WHERE 1 = 0
)
SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS certain;`
	got, err := sqlexec.Run(src, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("tautology should be true on an empty database")
	}
}

func TestRunUnknownTable(t *testing.T) {
	d := db.New()
	src := `WITH adom(v) AS (SELECT c1 AS v FROM Ghost)
SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS certain;`
	if _, err := sqlexec.Run(src, d); err == nil {
		t.Error("unknown table should fail")
	}
}

// End-to-end on the paper's FO queries: rewriting → SQL → execution
// equals repair enumeration. This closes the loop on the paper's claim
// that FO membership means "solvable by a single SQL query".
func TestEndToEndPaperQueries(t *testing.T) {
	queries := []string{
		"P(x | y), !N('c' | y)",
		"S(x), !N1('c' | x), !N2('c' | x)",
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"Likes(p, t), !Born(p | t), !Lives(p | t)",
	}
	rng := rand.New(rand.NewSource(2718))
	dbOpts := gen.DefaultDBOptions()
	for _, src := range queries {
		q := parse.MustQuery(src)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		sql, err := sqlgen.Translate(f, sqlgen.Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for trial := 0; trial < 25; trial++ {
			d := gen.Database(rng, q, dbOpts)
			want := naive.IsCertain(q, d)
			got, err := sqlexec.Run(sql, d)
			if err != nil {
				t.Fatalf("%s: %v\nSQL:\n%s", src, err, sql)
			}
			if got != want {
				t.Fatalf("%s: SQL = %v, naive = %v\ndb:\n%s\nSQL:\n%s", src, got, want, d, sql)
			}
		}
	}
}

// End-to-end on random generated queries: SQL execution equals the FO
// evaluator on the same rewriting.
func TestEndToEndRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1618))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested := 0
	for tested < 25 {
		q := gen.Query(rng, opts)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			continue
		}
		sql, err := sqlgen.Translate(f, sqlgen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tested++
		d := gen.Database(rng, q, dbOpts)
		want := fo.Eval(d, f)
		got, err := sqlexec.Run(sql, d)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got != want {
			t.Fatalf("SQL = %v, fo.Eval = %v for %s\ndb:\n%s\nSQL:\n%s", got, want, q, d, sql)
		}
	}
}

func TestParseExpressionErrors(t *testing.T) {
	// Each case corrupts a different production.
	prefix := "WITH adom(v) AS (SELECT c1 AS v FROM R) SELECT CASE WHEN "
	suffix := " THEN 1 ELSE 0 END AS c;"
	bad := []string{
		"EXISTS SELECT 1 FROM R t1 WHERE (1 = 1)",   // missing '('
		"EXISTS (SELECT 2 FROM R t1 WHERE (1 = 1))", // SELECT not-1
		"EXISTS (SELECT 1 FROM R WHERE (1 = 1))",    // missing alias
		"EXISTS (SELECT 1 FROM R t1 WHERE 1 = 1",    // unclosed
		"t1.c1 =",                                   // missing operand
		"NOT",                                       // dangling NOT
		"(t1.c1 = 'x' AND)",                         // dangling AND
		"t1. = 'x'",                                 // missing column
	}
	for _, b := range bad {
		if _, err := sqlexec.Parse(prefix + b + suffix); err == nil {
			t.Errorf("parse should fail for %q", b)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := sqlexec.Parse("WITH adom(v) AS (SELECT c1 AS v FROM R) SELECT CASE WHEN ('unterminated THEN 1 ELSE 0 END AS c;"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := sqlexec.Parse("WITH adom(v) AS (SELECT c1 AS v FROM R) SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS c; @"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestRunColumnOutOfRange(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 1, 1)
	d.MustInsert(db.F("R", "a"))
	src := `WITH adom(v) AS (SELECT c5 AS v FROM R)
SELECT CASE WHEN (1 = 1) THEN 1 ELSE 0 END AS certain;`
	if _, err := sqlexec.Run(src, d); err == nil {
		t.Error("out-of-range CTE column should fail")
	}
	src2 := `WITH adom(v) AS (SELECT c1 AS v FROM R)
SELECT CASE WHEN EXISTS (SELECT 1 FROM R t1 WHERE t1.c9 = 'a') THEN 1 ELSE 0 END AS certain;`
	if _, err := sqlexec.Run(src2, d); err == nil {
		t.Error("out-of-range row column should fail")
	}
	src3 := `WITH adom(v) AS (SELECT c1 AS v FROM R)
SELECT CASE WHEN t9.c1 = 'a' THEN 1 ELSE 0 END AS certain;`
	if _, err := sqlexec.Run(src3, d); err == nil {
		t.Error("unknown alias should fail")
	}
	src4 := `WITH adom(v) AS (SELECT c1 AS v FROM R)
SELECT CASE WHEN EXISTS (SELECT 1 FROM Ghost t1 WHERE t1.c1 = 'a') THEN 1 ELSE 0 END AS certain;`
	if _, err := sqlexec.Run(src4, d); err == nil {
		t.Error("unknown FROM table should fail")
	}
}

func TestEscapedQuoteRoundTrip(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 1, 1)
	d.MustInsert(db.F("R", "o'hara"))
	src := `WITH adom(v) AS (SELECT c1 AS v FROM R)
SELECT CASE WHEN EXISTS (SELECT 1 FROM R t1 WHERE t1.c1 = 'o''hara') THEN 1 ELSE 0 END AS certain;`
	got, err := sqlexec.Run(src, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("escaped quote literal should match")
	}
}
