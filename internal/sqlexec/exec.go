package sqlexec

import (
	"fmt"
	"sort"

	"cqa/internal/db"
)

// Run parses and executes a sqlgen statement against the database,
// returning the boolean value of the `certain` column. Table names are
// matched case-sensitively against the database's relations; the CTE name
// is visible as a one-column table in FROM lists.
func Run(src string, d *db.Database) (bool, error) {
	stmt, err := Parse(src)
	if err != nil {
		return false, err
	}
	return Exec(stmt, d)
}

// Exec executes a parsed statement.
func Exec(stmt *Statement, d *db.Database) (bool, error) {
	ex := &executor{d: d, stmt: stmt, env: map[string][]string{}}
	if err := ex.materializeCTE(); err != nil {
		return false, err
	}
	return ex.eval(stmt.Cond)
}

type executor struct {
	d    *db.Database
	stmt *Statement
	// cte holds the materialized single-column CTE rows.
	cte [][]string
	// env maps a FROM alias to its current row.
	env map[string][]string
}

// materializeCTE computes the UNION of the CTE branches with duplicate
// elimination, as SQL UNION requires.
func (ex *executor) materializeCTE() error {
	seen := map[string]bool{}
	for _, br := range ex.stmt.CTE {
		rel := ex.d.Relation(br.Table)
		if rel == nil {
			return fmt.Errorf("sqlexec: unknown table %s in CTE", br.Table)
		}
		if br.Column > rel.Arity {
			return fmt.Errorf("sqlexec: column c%d out of range for %s", br.Column, br.Table)
		}
		for _, f := range ex.d.Facts(br.Table) {
			v := f.Args[br.Column-1]
			if !seen[v] {
				seen[v] = true
			}
		}
	}
	vals := make([]string, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	for _, v := range vals {
		ex.cte = append(ex.cte, []string{v})
	}
	return nil
}

// rows returns the rows of a FROM table (base relation or the CTE).
func (ex *executor) rows(table string) ([][]string, error) {
	if table == ex.stmt.CTEName {
		return ex.cte, nil
	}
	rel := ex.d.Relation(table)
	if rel == nil {
		return nil, fmt.Errorf("sqlexec: unknown table %s", table)
	}
	facts := ex.d.Facts(table)
	out := make([][]string, len(facts))
	for i, f := range facts {
		out[i] = f.Args
	}
	return out, nil
}

func (ex *executor) eval(e Expr) (bool, error) {
	switch g := e.(type) {
	case Cmp:
		l, err := ex.operand(g.L)
		if err != nil {
			return false, err
		}
		r, err := ex.operand(g.R)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case NotExpr:
		v, err := ex.eval(g.E)
		return !v, err
	case AndExpr:
		for _, sub := range g.Es {
			v, err := ex.eval(sub)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case OrExpr:
		for _, sub := range g.Es {
			v, err := ex.eval(sub)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case ExistsExpr:
		return ex.exists(g, 0)
	default:
		return false, fmt.Errorf("sqlexec: unknown expression %T", e)
	}
}

// exists performs a nested-loop join over the FROM list.
func (ex *executor) exists(g ExistsExpr, i int) (bool, error) {
	if i == len(g.From) {
		return ex.eval(g.Where)
	}
	ref := g.From[i]
	rows, err := ex.rows(ref.Table)
	if err != nil {
		return false, err
	}
	saved, had := ex.env[ref.Alias]
	defer func() {
		if had {
			ex.env[ref.Alias] = saved
		} else {
			delete(ex.env, ref.Alias)
		}
	}()
	for _, row := range rows {
		ex.env[ref.Alias] = row
		ok, err := ex.exists(g, i+1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (ex *executor) operand(o Operand) (string, error) {
	if !o.IsCol {
		return o.Lit, nil
	}
	row, ok := ex.env[o.Alias]
	if !ok {
		return "", fmt.Errorf("sqlexec: unknown alias %s", o.Alias)
	}
	if o.Column == ex.stmt.CTECol {
		if len(row) != 1 {
			return "", fmt.Errorf("sqlexec: alias %s is not the CTE", o.Alias)
		}
		return row[0], nil
	}
	idx, err := columnIndex(o.Column)
	if err != nil {
		return "", err
	}
	if idx > len(row) {
		return "", fmt.Errorf("sqlexec: column %s.%s out of range", o.Alias, o.Column)
	}
	return row[idx-1], nil
}
