package sqlexec

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is the parsed form of a sqlgen query:
//
//	WITH <cte>(<col>) AS ( <union of column selects> )
//	SELECT CASE WHEN <cond> THEN 1 ELSE 0 END AS <out>;
type Statement struct {
	CTEName string
	CTECol  string
	// CTE lists the union branches; an empty slice means the degenerate
	// "SELECT NULL AS v WHERE 1 = 0" branch only.
	CTE  []CTEBranch
	Cond Expr
	Out  string
}

// CTEBranch is one "SELECT c<i> AS v FROM <table>" arm of the CTE union.
type CTEBranch struct {
	Column int // 1-based
	Table  string
}

// Expr is a boolean SQL expression. Implementations: Cmp, NotExpr,
// AndExpr, OrExpr, ExistsExpr.
type Expr interface{ isExpr() }

// Operand is a comparison operand: a column reference or a literal.
type Operand struct {
	// IsCol marks a column reference alias.column; otherwise Lit holds a
	// literal value.
	IsCol  bool
	Alias  string
	Column string // "v" or "c<i>"
	Lit    string
}

// Cmp is the equality l = r.
type Cmp struct{ L, R Operand }

// NotExpr negates an expression.
type NotExpr struct{ E Expr }

// AndExpr is a conjunction.
type AndExpr struct{ Es []Expr }

// OrExpr is a disjunction.
type OrExpr struct{ Es []Expr }

// ExistsExpr is EXISTS (SELECT 1 FROM t1 a1, t2 a2 WHERE e).
type ExistsExpr struct {
	From  []TableRef
	Where Expr
}

// TableRef is a table with its alias in a FROM list.
type TableRef struct{ Table, Alias string }

func (Cmp) isExpr()        {}
func (NotExpr) isExpr()    {}
func (AndExpr) isExpr()    {}
func (OrExpr) isExpr()     {}
func (ExistsExpr) isExpr() {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a statement in the sqlgen dialect.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atPunct(";") {
		return nil, p.errf("expected ';'")
	}
	p.pos++
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after ';'")
	}
	return stmt, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlexec: %s at token %d (%q)", fmt.Sprintf(format, args...), p.pos, p.cur().text)
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	p.pos++
	return nil
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q", s)
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (*Statement, error) {
	stmt := &Statement{}
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.CTEName = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.CTECol = col
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.cteBody(stmt); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	for _, kw := range []string{"SELECT", "CASE", "WHEN"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	cond, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	stmt.Cond = cond
	for _, kw := range []string{"THEN", "1", "ELSE", "0", "END", "AS"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	out, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Out = out
	return stmt, nil
}

// cteBody parses the union of column selects (or the degenerate empty
// branch "SELECT NULL AS v WHERE 1 = 0").
func (p *parser) cteBody(stmt *Statement) error {
	for {
		if err := p.expectKeyword("SELECT"); err != nil {
			return err
		}
		if p.atKeyword("NULL") {
			p.pos++
			if err := p.expectKeyword("AS"); err != nil {
				return err
			}
			if _, err := p.ident(); err != nil {
				return err
			}
			// WHERE 1 = 0
			if err := p.expectKeyword("WHERE"); err != nil {
				return err
			}
			if err := p.expectKeyword("1"); err != nil {
				return err
			}
			if err := p.expectPunct("="); err != nil {
				return err
			}
			if err := p.expectKeyword("0"); err != nil {
				return err
			}
		} else {
			colName, err := p.ident()
			if err != nil {
				return err
			}
			idx, err := columnIndex(colName)
			if err != nil {
				return p.errf("%v", err)
			}
			if err := p.expectKeyword("AS"); err != nil {
				return err
			}
			if _, err := p.ident(); err != nil {
				return err
			}
			if err := p.expectKeyword("FROM"); err != nil {
				return err
			}
			table, err := p.ident()
			if err != nil {
				return err
			}
			stmt.CTE = append(stmt.CTE, CTEBranch{Column: idx, Table: table})
		}
		if p.atKeyword("UNION") {
			p.pos++
			continue
		}
		return nil
	}
}

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	parts := []Expr{left}
	for p.atKeyword("OR") {
		p.pos++
		next, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return OrExpr{Es: parts}, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	parts := []Expr{left}
	for p.atKeyword("AND") {
		p.pos++
		next, err := p.unary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return AndExpr{Es: parts}, nil
}

func (p *parser) unary() (Expr, error) {
	switch {
	case p.atKeyword("NOT"):
		p.pos++
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: inner}, nil
	case p.atKeyword("EXISTS"):
		p.pos++
		return p.exists()
	case p.atPunct("("):
		// Either a parenthesized boolean expression or a comparison
		// like (a = b); both parse as orExpr followed by ')'. A
		// comparison's left operand can also start here, so try the
		// comparison path when the inner parse yields an operand shape.
		p.pos++
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.comparison()
	}
}

func (p *parser) exists() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("1"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var from []TableRef
	for {
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		from = append(from, TableRef{Table: table, Alias: alias})
		if p.atPunct(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	where, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return ExistsExpr{From: from, Where: where}, nil
}

// comparison parses operand = operand.
func (p *parser) comparison() (Expr, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return Cmp{L: l, R: r}, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.pos++
		return Operand{Lit: t.text}, nil
	case tokIdent:
		p.pos++
		if p.atPunct(".") {
			p.pos++
			col, err := p.ident()
			if err != nil {
				return Operand{}, err
			}
			return Operand{IsCol: true, Alias: t.text, Column: col}, nil
		}
		// A bare identifier operand is a numeric literal like 1 or 0.
		return Operand{Lit: t.text}, nil
	default:
		return Operand{}, p.errf("expected operand")
	}
}

// columnIndex maps "c3" to 3.
func columnIndex(name string) (int, error) {
	if !strings.HasPrefix(name, "c") {
		return 0, fmt.Errorf("column %q is not of the form c<i>", name)
	}
	i, err := strconv.Atoi(name[1:])
	if err != nil || i < 1 {
		return 0, fmt.Errorf("column %q is not of the form c<i>", name)
	}
	return i, nil
}
