package graphx

import (
	"math/rand"
	"testing"
)

func TestIntUnionFindBasics(t *testing.T) {
	u := NewIntUnionFind(5)
	if u.Len() != 5 {
		t.Fatalf("Len = %d", u.Len())
	}
	for i := int32(0); i < 5; i++ {
		if u.Find(i) != i || u.Size(i) != 1 {
			t.Fatalf("singleton %d: find=%d size=%d", i, u.Find(i), u.Size(i))
		}
	}
	r := u.Union(0, 1)
	if u.Find(0) != r || u.Find(1) != r || u.Size(0) != 2 {
		t.Fatalf("after union(0,1): find0=%d find1=%d size=%d", u.Find(0), u.Find(1), u.Size(0))
	}
	// Union of already-joined elements returns the common root unchanged.
	if got := u.Union(1, 0); got != r {
		t.Fatalf("redundant union root = %d, want %d", got, r)
	}
	if u.Size(0) != 2 {
		t.Fatalf("redundant union changed size to %d", u.Size(0))
	}
	r2 := u.Union(2, 3)
	r3 := u.Union(0, 2)
	if r3 != r && r3 != r2 {
		t.Fatalf("merge root %d is neither prior root (%d, %d)", r3, r, r2)
	}
	if u.Size(3) != 4 || u.Find(4) == u.Find(0) {
		t.Fatalf("component sizes wrong: size=%d", u.Size(3))
	}
}

// TestIntUnionFindAgainstStringUnionFind drives both implementations
// with the same random union sequence and compares the induced
// partition via pairwise connectivity.
func TestIntUnionFindAgainstStringUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 64
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i%26)) + string(rune('0'+i/26))
	}
	iu := NewIntUnionFind(n)
	su := NewUnionFind()
	for i := 0; i < 200; i++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		iu.Union(a, b)
		su.Union(names[a], names[b])
	}
	for a := int32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			got := iu.Find(a) == iu.Find(b)
			want := su.Find(names[a]) == su.Find(names[b])
			if got != want {
				t.Fatalf("connectivity(%d,%d) = %v, string oracle %v", a, b, got, want)
			}
		}
	}
}
