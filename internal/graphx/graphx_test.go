package graphx_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqa/internal/graphx"
)

func TestEdgeCanon(t *testing.T) {
	e := graphx.Edge{U: "b", V: "a"}
	if c := e.Canon(); c.U != "a" || c.V != "b" {
		t.Errorf("canon = %v", c)
	}
	if e.String() != "{a,b}" {
		t.Errorf("string = %q", e.String())
	}
}

func TestUndirectedBasics(t *testing.T) {
	g := graphx.NewUndirected()
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); err == nil {
		t.Error("duplicate edge should fail")
	}
	if err := g.AddEdge("b", "a"); err == nil {
		t.Error("reversed duplicate should fail")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self-loop should fail")
	}
	if !g.HasEdge("b", "a") {
		t.Error("HasEdge should be orientation-free")
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("counts = %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestConnectivity(t *testing.T) {
	g := graphx.NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("c", "d")
	g.AddVertex("e")
	if !g.Connected("a", "b") || g.Connected("a", "c") || g.Connected("a", "e") {
		t.Error("connectivity broken")
	}
	if !g.Connected("e", "e") {
		t.Error("vertex should be connected to itself")
	}
	if g.Connected("x", "a") {
		t.Error("unknown vertex should not be connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Errorf("components = %v", comps)
	}
}

func TestIsForest(t *testing.T) {
	g := graphx.NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	if !g.IsForest() {
		t.Error("path should be a forest")
	}
	g.AddEdge("c", "a")
	if g.IsForest() {
		t.Error("triangle is not a forest")
	}
}

func TestPathBetween(t *testing.T) {
	g := graphx.NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	g.AddEdge("x", "y")
	path := g.PathBetween("a", "d")
	want := []string{"a", "b", "c", "d"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if g.PathBetween("a", "x") != nil {
		t.Error("disconnected path should be nil")
	}
	if p := g.PathBetween("a", "a"); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestUnionFind(t *testing.T) {
	uf := graphx.NewUnionFind()
	if !uf.Union("a", "b") {
		t.Error("first union should merge")
	}
	if uf.Union("a", "b") {
		t.Error("repeated union should not merge")
	}
	uf.Union("c", "d")
	if uf.Find("a") == uf.Find("c") {
		t.Error("separate sets merged")
	}
	uf.Union("b", "c")
	if uf.Find("a") != uf.Find("d") {
		t.Error("transitive union broken")
	}
}

func TestBipartite(t *testing.T) {
	b := graphx.NewBipartite([]string{"l1", "l2"}, []string{"r1"})
	if err := b.AddEdge("l1", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge("l1", "r1"); err == nil {
		t.Error("duplicate should fail")
	}
	if err := b.AddEdge("zz", "r1"); err == nil {
		t.Error("unknown left vertex should fail")
	}
	if err := b.AddEdge("l1", "zz"); err == nil {
		t.Error("unknown right vertex should fail")
	}
	edges := b.Edges()
	if len(edges) != 1 || edges[0] != [2]string{"l1", "r1"} {
		t.Errorf("edges = %v", edges)
	}
}

// Property: components partition the vertex set.
func TestComponentsPartition(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphx.NewUndirected()
		names := []string{"a", "b", "c", "d", "e", "f"}
		for _, n := range names {
			g.AddVertex(n)
		}
		for i := 0; i < 5; i++ {
			u, v := names[rng.Intn(6)], names[rng.Intn(6)]
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		seen := make(map[string]int)
		for _, comp := range g.Components() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != 6 {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
