// Package graphx provides the small graph utilities the reductions need:
// undirected graphs with string vertices, union-find connectivity, forest
// checking, and bipartite graphs (the input of BIPARTITE PERFECT MATCHING
// and of the Lemma 5.2 reduction).
package graphx

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two named vertices.
type Edge struct{ U, V string }

// Canon returns the edge with endpoints in lexicographic order, so that
// {a, b} and {b, a} compare equal.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// String renders the edge as {u,v} in canonical order.
func (e Edge) String() string {
	c := e.Canon()
	return "{" + c.U + "," + c.V + "}"
}

// Undirected is a simple undirected graph.
type Undirected struct {
	vertices map[string]bool
	adj      map[string][]string
	edges    map[Edge]bool
}

// NewUndirected returns an empty graph.
func NewUndirected() *Undirected {
	return &Undirected{
		vertices: make(map[string]bool),
		adj:      make(map[string][]string),
		edges:    make(map[Edge]bool),
	}
}

// AddVertex ensures the vertex exists.
func (g *Undirected) AddVertex(v string) { g.vertices[v] = true }

// AddEdge inserts an undirected edge, adding endpoints as needed.
// Self-loops and duplicate edges are rejected with an error.
func (g *Undirected) AddEdge(u, v string) error {
	if u == v {
		return fmt.Errorf("graphx: self-loop at %s", u)
	}
	e := Edge{U: u, V: v}.Canon()
	if g.edges[e] {
		return fmt.Errorf("graphx: duplicate edge %s", e)
	}
	g.edges[e] = true
	g.AddVertex(u)
	g.AddVertex(v)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Undirected) HasEdge(u, v string) bool { return g.edges[Edge{U: u, V: v}.Canon()] }

// Vertices returns the vertices in sorted order.
func (g *Undirected) Vertices() []string {
	out := make([]string, 0, len(g.vertices))
	for v := range g.vertices {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Edges returns the edges in canonical sorted order.
func (g *Undirected) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Neighbors returns the adjacency list of v (not sorted).
func (g *Undirected) Neighbors(v string) []string { return g.adj[v] }

// NumVertices returns the number of vertices.
func (g *Undirected) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of edges.
func (g *Undirected) NumEdges() int { return len(g.edges) }

// Connected reports whether u and v are in the same component. A vertex is
// connected to itself.
func (g *Undirected) Connected(u, v string) bool {
	if u == v {
		return g.vertices[u]
	}
	if !g.vertices[u] || !g.vertices[v] {
		return false
	}
	uf := NewUnionFind()
	for e := range g.edges {
		uf.Union(e.U, e.V)
	}
	return uf.Find(u) == uf.Find(v)
}

// Components returns the connected components as sorted vertex slices,
// ordered by their smallest vertex.
func (g *Undirected) Components() [][]string {
	uf := NewUnionFind()
	for v := range g.vertices {
		uf.Find(v)
	}
	for e := range g.edges {
		uf.Union(e.U, e.V)
	}
	groups := make(map[string][]string)
	for v := range g.vertices {
		root := uf.Find(v)
		groups[root] = append(groups[root], v)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// IsForest reports whether the graph is acyclic.
func (g *Undirected) IsForest() bool {
	// A graph is a forest iff |E| = |V| - #components.
	return g.NumEdges() == g.NumVertices()-len(g.Components())
}

// PathBetween returns the unique path between u and v in a forest (as a
// vertex sequence including both endpoints), or nil if they are not
// connected. Behaviour is undefined on graphs with cycles.
func (g *Undirected) PathBetween(u, v string) []string {
	if !g.vertices[u] || !g.vertices[v] {
		return nil
	}
	if u == v {
		return []string{u}
	}
	parent := map[string]string{u: u}
	queue := []string{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, seen := parent[nb]; seen {
				continue
			}
			parent[nb] = cur
			if nb == v {
				var path []string
				for w := v; ; w = parent[w] {
					path = append(path, w)
					if w == u {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// UnionFind is a disjoint-set structure over string elements with path
// compression and union by size.
type UnionFind struct {
	parent map[string]string
	size   map[string]int
}

// NewUnionFind returns an empty structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[string]string), size: make(map[string]int)}
}

// Find returns the representative of x, creating the singleton set if x is
// new.
func (u *UnionFind) Find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		u.size[x] = 1
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the sets of a and b and reports whether they were distinct.
func (u *UnionFind) Union(a, b string) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// IntUnionFind is a disjoint-set structure over the dense integer range
// [0, n) with union by size and path halving. It is the allocation-light
// counterpart of UnionFind for graph deciders that work on interned int32
// ids: two slices, no per-element map entries, no recursion.
type IntUnionFind struct {
	parent []int32
	size   []int32
}

// NewIntUnionFind returns n singleton sets {0}, …, {n-1}.
func NewIntUnionFind(n int) *IntUnionFind {
	u := &IntUnionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Len returns the size of the underlying element range.
func (u *IntUnionFind) Len() int { return len(u.parent) }

// Find returns the representative of x, halving the path on the way up.
func (u *IntUnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and returns the surviving root. When
// the sets were already equal it returns that common root unchanged.
// Callers that maintain per-root aggregates can fold the absorbed root's
// value into the returned one.
func (u *IntUnionFind) Union(a, b int32) int32 {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}

// Size returns the number of elements in x's set.
func (u *IntUnionFind) Size(x int32) int32 { return u.size[u.Find(x)] }

// Bipartite is a bipartite graph with named left and right vertices.
type Bipartite struct {
	Left, Right []string
	// Adj maps a left vertex to its right neighbours.
	Adj map[string][]string
}

// NewBipartite builds a bipartite graph over the given vertex sets.
func NewBipartite(left, right []string) *Bipartite {
	l := make([]string, len(left))
	copy(l, left)
	r := make([]string, len(right))
	copy(r, right)
	sort.Strings(l)
	sort.Strings(r)
	return &Bipartite{Left: l, Right: r, Adj: make(map[string][]string)}
}

// AddEdge inserts the edge (l, r). Endpoints must already be declared.
func (b *Bipartite) AddEdge(l, r string) error {
	if !contains(b.Left, l) {
		return fmt.Errorf("graphx: unknown left vertex %s", l)
	}
	if !contains(b.Right, r) {
		return fmt.Errorf("graphx: unknown right vertex %s", r)
	}
	for _, x := range b.Adj[l] {
		if x == r {
			return fmt.Errorf("graphx: duplicate edge (%s, %s)", l, r)
		}
	}
	b.Adj[l] = append(b.Adj[l], r)
	return nil
}

// Edges returns all (left, right) pairs in sorted order.
func (b *Bipartite) Edges() [][2]string {
	var out [][2]string
	for _, l := range b.Left {
		rs := make([]string, len(b.Adj[l]))
		copy(rs, b.Adj[l])
		sort.Strings(rs)
		for _, r := range rs {
			out = append(out, [2]string{l, r})
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
