package reduction_test

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/schema"
)

// checkProp72 verifies the three guarantees of the witness database for
// an attacked variable x of q.
func checkProp72(t *testing.T, q schema.Query, x string) {
	t.Helper()
	d, err := reduction.Prop72Witness(q, x, "α", "β")
	if err != nil {
		t.Fatalf("%s, %s: %v", q, x, err)
	}
	if got := d.NumRepairs(); got != 2 {
		t.Fatalf("%s, %s: witness has %.0f repairs, want 2\n%s", q, x, got, d)
	}
	if !naive.IsCertain(q, d) {
		t.Fatalf("%s, %s: both repairs should satisfy q\n%s", q, x, d)
	}
	// No constant reifies x: q[x↦c] is not certain for any c in the
	// active domain (values outside it cannot bind x either, since x
	// occurs in a positive atom).
	for _, c := range d.ActiveDomain() {
		qc := q.Substitute(map[string]schema.Term{x: schema.Const(c)})
		if naive.IsCertain(qc, d) {
			t.Fatalf("%s: q[%s↦%s] is certain; x should not be reifiable\n%s", q, x, c, d)
		}
	}
}

// Example 4.2's q3: N attacks both x and y, so neither is reifiable in
// the direction of Proposition 7.2.
func TestProp72OnQ3(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	checkProp72(t, q, "x")
	checkProp72(t, q, "y")
}

// q1's variables are all attacked.
func TestProp72OnQ1(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	checkProp72(t, q, "x")
	checkProp72(t, q, "y")
}

func TestProp72RejectsUnattacked(t *testing.T) {
	// In R(x|y), S(y|z), the variable x is unattacked.
	q := parse.MustQuery("R(x | y), S(y | z)")
	if _, err := reduction.Prop72Witness(q, "x", "a", "b"); err == nil {
		t.Fatal("unattacked variable should be rejected")
	}
	if _, err := reduction.Prop72Witness(q, "y", "a", "a"); err == nil {
		t.Fatal("equal constants should be rejected")
	}
}

// Property sweep: on random weakly-guarded queries, every attacked
// variable admits a valid Proposition 7.2 witness. Together with
// Corollary 6.9 (tested through the rewriting), this pins the paper's
// characterization: reifiable = unattacked.
func TestProp72RandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	opts := gen.DefaultQueryOptions()
	checked := 0
	for checked < 60 {
		q := gen.Query(rng, opts)
		g := attack.New(q)
		attacked := make(schema.VarSet)
		for _, rel := range g.Atoms() {
			attacked.AddAll(g.AttackedVars(rel))
		}
		for _, x := range attacked.Sorted() {
			checkProp72(t, q, x)
			checked++
		}
	}
}
