package reduction

import (
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

// Bottom is the constant the Θ^a_b valuations assign to variables
// reached by neither attack.
const Bottom = "⊥"

// Pair renders the pair constant ⟨a, b⟩ used by the Θ^a_b valuations.
func Pair(a, b string) string { return "⟨" + a + "," + b + "⟩" }

// Theta is the family of valuations Θ^a_b over vars(q) used by the
// reductions of Lemmas 5.6 and 5.7 for an attack 2-cycle F ⇄ G:
//
//	Θ^a_b(w) = a      if G|v_G ⇝ w and F|v_F ̸⇝ w
//	           b      if F|v_F ⇝ w and G|v_G ̸⇝ w
//	           ⟨a,b⟩  if F|v_F ⇝ w and G|v_G ⇝ w
//	           ⊥      otherwise
//
// where v_F ∈ vars(F) attacks some u ∈ key(G) and v_G ∈ vars(G) attacks
// some u' ∈ key(F).
type Theta struct {
	Q    schema.Query
	F, G string
	// VF, U, VG, UPrime are the witnesses of the mutual attacks.
	VF, U, VG, UPrime string

	reachF, reachG schema.VarSet
}

// NewTheta builds the valuation family for the 2-cycle F ⇄ G of q. It
// fails when the atoms do not mutually attack each other.
func NewTheta(q schema.Query, fRel, gRel string) (*Theta, error) {
	g := attack.New(q)
	if !g.Attacks(fRel, gRel) || !g.Attacks(gRel, fRel) {
		return nil, fmt.Errorf("reduction: %s and %s do not form an attack 2-cycle in %s", fRel, gRel, q)
	}
	fAtom, ok := q.AtomByRel(fRel)
	if !ok {
		return nil, fmt.Errorf("reduction: no atom %s in %s", fRel, q)
	}
	gAtom, ok := q.AtomByRel(gRel)
	if !ok {
		return nil, fmt.Errorf("reduction: no atom %s in %s", gRel, q)
	}
	th := &Theta{Q: q, F: fRel, G: gRel}
	for _, u := range gAtom.KeyVars().Sorted() {
		if vf, _, ok := g.AttackVarWitness(fRel, u); ok {
			th.VF, th.U = vf, u
			break
		}
	}
	for _, u := range fAtom.KeyVars().Sorted() {
		if vg, _, ok := g.AttackVarWitness(gRel, u); ok {
			th.VG, th.UPrime = vg, u
			break
		}
	}
	if th.VF == "" || th.VG == "" {
		return nil, fmt.Errorf("reduction: internal: 2-cycle %s ⇄ %s without variable witnesses", fRel, gRel)
	}
	th.reachF = g.ReachFrom(fRel, th.VF)
	th.reachG = g.ReachFrom(gRel, th.VG)
	return th, nil
}

// Value returns Θ^a_b(w) for a variable w.
func (th *Theta) Value(w, a, b string) string {
	inF := th.reachF.Has(w)
	inG := th.reachG.Has(w)
	switch {
	case inG && !inF:
		return a
	case inF && !inG:
		return b
	case inF && inG:
		return Pair(a, b)
	default:
		return Bottom
	}
}

// Fact applies Θ^a_b to an atom of q, yielding a fact. Constants in the
// atom are kept (the valuation is the identity on constants).
func (th *Theta) Fact(atom schema.Atom, a, b string) db.Fact {
	args := make([]string, len(atom.Terms))
	for i, t := range atom.Terms {
		if t.IsVar {
			args[i] = th.Value(t.Name, a, b)
		} else {
			args[i] = t.Name
		}
	}
	return db.Fact{Rel: atom.Rel, Args: args}
}

// declareQ declares every relation of q on a fresh database.
func declareQ(q schema.Query) *db.Database {
	d := db.New()
	for _, a := range q.Atoms() {
		d.MustDeclare(a.Rel, a.Arity(), a.Key)
	}
	return d
}

// Lemma56 reduces an instance of CERTAINTY(q1), q1 = {R(x|y), ¬S(y|x)},
// to an instance of CERTAINTY(q), where q has an attack 2-cycle F ⇄ G
// with F ∈ q⁺ and G ∈ q⁻:
//
//   - for every R(a|b) in src, the result includes Θ^a_b(q⁺);
//   - for every S(b|a) in src, the result includes Θ^a_b(G).
//
// Every repair of src satisfies q1 iff every repair of the result
// satisfies q.
func Lemma56(q schema.Query, fRel, gRel string, src *db.Database) (*db.Database, error) {
	if !q.IsNegated(gRel) || q.IsNegated(fRel) {
		return nil, fmt.Errorf("reduction: Lemma 5.6 needs F ∈ q⁺ and G ∈ q⁻ (got F=%s, G=%s)", fRel, gRel)
	}
	th, err := NewTheta(q, fRel, gRel)
	if err != nil {
		return nil, err
	}
	out := declareQ(q)
	for _, rf := range src.Facts("R") {
		a, b := rf.Args[0], rf.Args[1]
		for _, p := range q.Positive() {
			if err := out.Insert(th.Fact(p, a, b)); err != nil {
				return nil, err
			}
		}
	}
	gAtom, _ := q.AtomByRel(gRel)
	for _, sf := range src.Facts("S") {
		b, a := sf.Args[0], sf.Args[1]
		if err := out.Insert(th.Fact(gAtom, a, b)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Q2Appendix returns the Appendix B naming of the canonical two-negation
// query: {T(x,y), ¬R(x|y), ¬S(y|x)} with T all-key. It is the same query
// as Q2 up to a renaming of relations.
func Q2Appendix() schema.Query { return parse.MustQuery("T(x, y), !R(x | y), !S(y | x)") }

// Lemma57 reduces an instance of CERTAINTY over Q2Appendix (relations T
// positive, R and S negated) to CERTAINTY(q), where q has an attack
// 2-cycle F ⇄ G with both F, G ∈ q⁻ and F keyed like R (by a), G keyed
// like S (by b):
//
//   - for every T(a|b) in src, the result includes Θ^a_b(q⁺);
//   - for every R(a|b) in src, the result includes Θ^a_b(F);
//   - for every S(b|a) in src, the result includes Θ^a_b(G).
func Lemma57(q schema.Query, fRel, gRel string, src *db.Database) (*db.Database, error) {
	if !q.IsNegated(gRel) || !q.IsNegated(fRel) {
		return nil, fmt.Errorf("reduction: Lemma 5.7 needs F, G ∈ q⁻ (got F=%s, G=%s)", fRel, gRel)
	}
	th, err := NewTheta(q, fRel, gRel)
	if err != nil {
		return nil, err
	}
	out := declareQ(q)
	for _, tf := range src.Facts("T") {
		a, b := tf.Args[0], tf.Args[1]
		for _, p := range q.Positive() {
			if err := out.Insert(th.Fact(p, a, b)); err != nil {
				return nil, err
			}
		}
	}
	fAtom, _ := q.AtomByRel(fRel)
	for _, rf := range src.Facts("R") {
		a, b := rf.Args[0], rf.Args[1]
		if err := out.Insert(th.Fact(fAtom, a, b)); err != nil {
			return nil, err
		}
	}
	gAtom, _ := q.AtomByRel(gRel)
	for _, sf := range src.Facts("S") {
		b, a := sf.Args[0], sf.Args[1]
		if err := out.Insert(th.Fact(gAtom, a, b)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
