package reduction_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// randQ1DB builds a random database over q1's schema (R(x|y), S(y|x)).
func randQ1DB(rng *rand.Rand) *db.Database {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	as := []string{"a1", "a2"}
	bs := []string{"b1", "b2"}
	for i := 0; i < 4; i++ {
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("R", as[rng.Intn(2)], bs[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("S", bs[rng.Intn(2)], as[rng.Intn(2)]))
		}
	}
	return d
}

// randQ2DB builds a random database over the Appendix-B schema
// (T(x,y) positive all-key, R(x|y), S(y|x) negated).
func randQ2DB(rng *rand.Rand) *db.Database {
	d := db.New()
	d.MustDeclare("T", 2, 2)
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	as := []string{"a1", "a2"}
	bs := []string{"b1", "b2"}
	for i := 0; i < 3; i++ {
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("T", as[rng.Intn(2)], bs[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("R", as[rng.Intn(2)], bs[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("S", bs[rng.Intn(2)], as[rng.Intn(2)]))
		}
	}
	return d
}

// Applying the Lemma 5.6 machinery to q1 itself must be the identity
// mapping: Θ^a_b(R(x,y)) = R(a,b) and Θ^a_b(S(y,x)) = S(b,a).
func TestThetaOnQ1IsIdentity(t *testing.T) {
	q := reduction.Q1()
	th, err := reduction.NewTheta(q, "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	rAtom, _ := q.AtomByRel("R")
	sAtom, _ := q.AtomByRel("S")
	if f := th.Fact(rAtom, "a", "b"); !f.Equal(db.F("R", "a", "b")) {
		t.Errorf("Θ(R) = %v", f)
	}
	if f := th.Fact(sAtom, "a", "b"); !f.Equal(db.F("S", "b", "a")) {
		t.Errorf("Θ(S) = %v", f)
	}
}

func TestNewThetaRejectsNonCycle(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	if _, err := reduction.NewTheta(q, "P", "N"); err == nil {
		t.Error("P and N do not form a 2-cycle; NewTheta should fail")
	}
}

// Lemma 5.6 answer preservation on a family of queries with a
// positive/negated 2-cycle, including extra atoms around the cycle.
func TestLemma56Preservation(t *testing.T) {
	cases := []struct {
		query string
		f, g  string
	}{
		// q1 itself (identity reduction).
		{"R0(x | y), !S0(y | x)", "R0", "S0"},
		// The cycle embedded with an extra all-key positive atom.
		{"R0(x | y), !S0(y | x), A(x, y)", "R0", "S0"},
		// Extra negated atom riding along (its relation stays empty).
		{"R0(x | y), !S0(y | x), !M(x | y)", "R0", "S0"},
		// Wider atoms: F has an extra column.
		{"R0(x | y, y), !S0(y | x)", "R0", "S0"},
	}
	rng := rand.New(rand.NewSource(17))
	for _, c := range cases {
		q := parse.MustQuery(c.query)
		for trial := 0; trial < 80; trial++ {
			src := randQ1DB(rng)
			dst, err := reduction.Lemma56(q, c.f, c.g, src)
			if err != nil {
				t.Fatalf("%s: %v", c.query, err)
			}
			want := naive.IsCertain(reduction.Q1(), src)
			got := naive.IsCertain(q, dst)
			if want != got {
				t.Fatalf("query %s trial %d: src certain=%v, dst certain=%v\nsrc:\n%s\ndst:\n%s",
					c.query, trial, want, got, src, dst)
			}
		}
	}
}

// Lemma 5.7 answer preservation for queries with a two-negated-atom
// 2-cycle (weakly-guarded).
func TestLemma57Preservation(t *testing.T) {
	// Note the canonical q2 itself does NOT qualify as a target here: its
	// only 2-cycle is T ⇄ S with T positive. Example 4.1's query is the
	// canonical target with both cycle atoms negated (R ⇄ S).
	cases := []struct {
		query string
		f, g  string
	}{
		// Example 4.1 with relations renamed.
		{"P(x, y), !R0(x | y), !S0(y | x)", "R0", "S0"},
		// Extra all-key atom riding along.
		{"P(x, y), !R0(x | y), !S0(y | x), A(x, y)", "R0", "S0"},
	}
	rng := rand.New(rand.NewSource(23))
	for _, c := range cases {
		q := parse.MustQuery(c.query)
		if !q.WeaklyGuarded() {
			t.Fatalf("%s must be weakly-guarded for Lemma 5.7", c.query)
		}
		for trial := 0; trial < 80; trial++ {
			src := randQ2DB(rng)
			dst, err := reduction.Lemma57(q, c.f, c.g, src)
			if err != nil {
				t.Fatalf("%s: %v", c.query, err)
			}
			want := naive.IsCertain(reduction.Q2Appendix(), src)
			got := naive.IsCertain(q, dst)
			if want != got {
				t.Fatalf("query %s trial %d: src certain=%v, dst certain=%v\nsrc:\n%s\ndst:\n%s",
					c.query, trial, want, got, src, dst)
			}
		}
	}
}

func TestLemmaPolarityChecks(t *testing.T) {
	q := parse.MustQuery("T0(x | y), !R0(x | y), !S0(y | x)")
	src := db.New()
	if _, err := reduction.Lemma56(q, "R0", "S0", src); err == nil {
		t.Error("Lemma 5.6 requires F positive")
	}
	q2 := parse.MustQuery("R0(x | y), !S0(y | x)")
	if _, err := reduction.Lemma57(q2, "R0", "S0", src); err == nil {
		t.Error("Lemma 5.7 requires both atoms negated")
	}
}

// Lemma 6.6: encoding a disequality as a fresh all-key relation preserves
// certainty.
func TestLemma66EncodeDiseq(t *testing.T) {
	q := parse.MustQuery("P(x | y)")
	e := schema.Ext(q).WithDiseq(schema.NewDiseq(
		[]schema.Term{schema.Var("y")}, []schema.Term{schema.Const("1")}))
	rng := rand.New(rand.NewSource(29))
	dom := []string{"1", "2"}
	for trial := 0; trial < 80; trial++ {
		d := db.New()
		d.MustDeclare("P", 2, 1)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("P", dom[rng.Intn(2)], dom[rng.Intn(2)]))
			}
		}
		e2, d2, err := reduction.EncodeDiseq(e, 0, d, "E")
		if err != nil {
			t.Fatal(err)
		}
		if len(e2.Diseqs) != 0 {
			t.Fatal("disequality not removed")
		}
		if naive.IsCertainExt(e, d) != naive.IsCertainExt(e2, d2) {
			t.Fatalf("trial %d: Lemma 6.6 not answer-preserving", trial)
		}
	}
}

func TestEncodeDiseqErrors(t *testing.T) {
	q := parse.MustQuery("P(x | y)")
	e := schema.Ext(q)
	d := db.New()
	if _, _, err := reduction.EncodeDiseq(e, 0, d, "E"); err == nil {
		t.Error("out-of-range index should fail")
	}
	e = e.WithDiseq(schema.NewDiseq([]schema.Term{schema.Var("y")}, []schema.Term{schema.Var("z")}))
	if _, _, err := reduction.EncodeDiseq(e, 0, d, "E"); err == nil {
		t.Error("variable right side should fail")
	}
	e2 := schema.Ext(q).WithDiseq(schema.NewDiseq([]schema.Term{schema.Var("y")}, []schema.Term{schema.Const("1")}))
	if _, _, err := reduction.EncodeDiseq(e2, 0, d, "P"); err == nil {
		t.Error("relation-name collision should fail")
	}
}

// Lemma 6.6 through the FO path: the rewriting of q ∪ C evaluated on db
// agrees with the rewriting of q ∪ {¬E(v⃗)} evaluated on db ∪ {E(c⃗)}.
func TestLemma66ThroughRewriting(t *testing.T) {
	q := parse.MustQuery("P(x | y)")
	e := schema.Ext(q).WithDiseq(schema.NewDiseq(
		[]schema.Term{schema.Var("y")}, []schema.Term{schema.Const("1")}))
	f1, err := rewrite.RewriteExt(e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	dom := []string{"1", "2"}
	for trial := 0; trial < 60; trial++ {
		d := db.New()
		d.MustDeclare("P", 2, 1)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("P", dom[rng.Intn(2)], dom[rng.Intn(2)]))
			}
		}
		e2, d2, err := reduction.EncodeDiseq(e, 0, d, "E")
		if err != nil {
			t.Fatal(err)
		}
		f2, err := rewrite.RewriteExt(e2)
		if err != nil {
			t.Fatal(err)
		}
		if fo.Eval(d, f1) != fo.Eval(d2, f2) {
			t.Fatalf("trial %d: Lemma 6.6 FO path diverged\n%s", trial, d)
		}
		// Both also agree with naive.
		if fo.Eval(d, f1) != naive.IsCertainExt(e, d) {
			t.Fatalf("trial %d: diseq rewriting diverged from naive", trial)
		}
	}
}
