package reduction_test

import (
	"testing"

	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/schema"
)

// consistentPair reports whether two facts can coexist in a consistent
// database: they are not key-equal, or they are equal.
func consistentPair(key int, a, b []string) bool {
	keyEqual := true
	for i := 0; i < key; i++ {
		if a[i] != b[i] {
			keyEqual = false
			break
		}
	}
	if !keyEqual {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The Θ sublemmas of Lemmas 5.6/5.7 (Sublemmas 5.1–5.3 and B.1–B.3),
// checked directly on a corpus of 2-cycle queries:
//
//  1. for every positive H (other than F in the 5.6 case), the facts
//     Θ^a_b(H) and Θ^{a'}_{b'}(H) are consistent for all a, b, a', b';
//  2. Θ^a_b(F) and Θ^{a'}_{b'}(F) are key-equal iff a = a', and equal iff
//     additionally b = b';
//  3. symmetrically for G with the roles of a and b swapped.
func TestThetaSublemmas(t *testing.T) {
	cases := []struct {
		query     string
		f, g      string
		fPositive bool
	}{
		{"R0(x | y), !S0(y | x)", "R0", "S0", true},            // Lemma 5.6 shape
		{"R0(x | y, y), !S0(y | x)", "R0", "S0", true},         // wider F
		{"P(x, y), !R0(x | y), !S0(y | x)", "R0", "S0", false}, // Lemma 5.7 shape
		{"P(x, y), !R0(x | y), !S0(y | x), A(x, y)", "R0", "S0", false},
	}
	as := []string{"α1", "α2"}
	bs := []string{"β1", "β2"}
	for _, c := range cases {
		q := parse.MustQuery(c.query)
		th, err := reduction.NewTheta(q, c.f, c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		fAtom, _ := q.AtomByRel(c.f)
		gAtom, _ := q.AtomByRel(c.g)

		// Sublemma 1: positive atoms' images are pairwise consistent.
		for _, h := range q.Positive() {
			if c.fPositive && h.Rel == c.f {
				continue // F itself is covered by sublemma 2
			}
			forAllPairs(as, bs, func(a, b, a2, b2 string) {
				f1 := th.Fact(h, a, b)
				f2 := th.Fact(h, a2, b2)
				if !consistentPair(h.Key, f1.Args, f2.Args) {
					t.Fatalf("%s: Sublemma 1 violated for %s: %v vs %v", c.query, h.Rel, f1, f2)
				}
			})
		}

		// Sublemma 2: F images keyed by a, distinguished by (a, b).
		forAllPairs(as, bs, func(a, b, a2, b2 string) {
			f1 := th.Fact(fAtom, a, b)
			f2 := th.Fact(fAtom, a2, b2)
			keyEq := sliceEq(f1.Args[:fAtom.Key], f2.Args[:fAtom.Key])
			if keyEq != (a == a2) {
				t.Fatalf("%s: Sublemma 2(1) violated: key-equal=%v for a=%s a'=%s", c.query, keyEq, a, a2)
			}
			eq := sliceEq(f1.Args, f2.Args)
			if eq != (a == a2 && b == b2) {
				t.Fatalf("%s: Sublemma 2(2) violated: equal=%v for (%s,%s) vs (%s,%s)", c.query, eq, a, b, a2, b2)
			}
		})

		// Sublemma 3: G images keyed by b.
		forAllPairs(as, bs, func(a, b, a2, b2 string) {
			g1 := th.Fact(gAtom, a, b)
			g2 := th.Fact(gAtom, a2, b2)
			keyEq := sliceEq(g1.Args[:gAtom.Key], g2.Args[:gAtom.Key])
			if keyEq != (b == b2) {
				t.Fatalf("%s: Sublemma 3(1) violated: key-equal=%v for b=%s b'=%s", c.query, keyEq, b, b2)
			}
			eq := sliceEq(g1.Args, g2.Args)
			if eq != (a == a2 && b == b2) {
				t.Fatalf("%s: Sublemma 3(2) violated", c.query)
			}
		})

		// The proof's orientation facts: Θ^a_b(u') = a and Θ^a_b(u) = b.
		if got := th.Value(th.UPrime, "a", "b"); got != "a" {
			t.Fatalf("%s: Θ(u') = %s, want a", c.query, got)
		}
		if got := th.Value(th.U, "a", "b"); got != "b" {
			t.Fatalf("%s: Θ(u) = %s, want b", c.query, got)
		}
	}
}

func forAllPairs(as, bs []string, fn func(a, b, a2, b2 string)) {
	for _, a := range as {
		for _, b := range bs {
			for _, a2 := range as {
				for _, b2 := range bs {
					fn(a, b, a2, b2)
				}
			}
		}
	}
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The schema package's Diseq is used pervasively by the rewriting; pin
// its printable form used in traces.
func TestDiseqRendering(t *testing.T) {
	d := schema.NewDiseq(
		[]schema.Term{schema.Var("y")},
		[]schema.Term{schema.Const("v1")})
	if d.String() != "<y> != <'v1'>" {
		t.Errorf("diseq rendering = %q", d.String())
	}
}
