package reduction_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/graphx"
	"cqa/internal/matching"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
)

// Figure 1 / Example 1.1: the girls-boys database. A matching exists
// (Alice–George, Maria–Bob), so CERTAINTY(q1) must be false.
func TestFigure1Q1NotCertain(t *testing.T) {
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | Bob)
		R(Maria | John)
		S(Bob | Alice)
		S(Bob | Maria)
		S(George | Alice)
		S(George | Maria)
	`)
	if naive.IsCertain(reduction.Q1(), d) {
		t.Fatal("Figure 1: q1 should not be certain (the matching repair falsifies it)")
	}
	// The specific repair from Example 1.1 falsifies q1.
	r := parse.MustDatabase(`
		R(Alice | George)
		R(Maria | Bob)
		S(George | Alice)
		S(Bob | Maria)
	`)
	if naive.SatQuery(reduction.Q1(), r) {
		t.Fatal("the matching repair should falsify q1")
	}
}

// Lemma 5.2: on random bipartite graphs with equal sides and no isolated
// left vertex, CERTAINTY(q1) on the reduced database is the complement of
// perfect matching.
func TestLemma52BPM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(4)
		g := gen.Bipartite(rng, n, 0.4)
		d, err := reduction.BPMToQ1(g)
		if err != nil {
			t.Fatal(err)
		}
		hasPM := matching.HasPerfectMatching(g)
		certain := naive.IsCertain(reduction.Q1(), d)
		if hasPM == certain {
			t.Fatalf("trial %d: perfect matching = %v but certain = %v\ngraph edges %v",
				trial, hasPM, certain, g.Edges())
		}
	}
}

func TestBPMPreconditions(t *testing.T) {
	g := graphx.NewBipartite([]string{"a"}, []string{"b", "c"})
	g.AddEdge("a", "b")
	if _, err := reduction.BPMToQ1(g); err == nil {
		t.Error("unequal sides should be rejected")
	}
	g2 := graphx.NewBipartite([]string{"a1", "a2"}, []string{"b1", "b2"})
	g2.AddEdge("a1", "b1")
	if _, err := reduction.BPMToQ1(g2); err == nil {
		t.Error("isolated left vertex should be rejected")
	}
}

// Lemma 5.3 / Figure 4: on random two-component forests, CERTAINTY(q2) on
// the reduced database holds iff U and V are connected.
func TestLemma53UFA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		inst := gen.UFA(rng, 2+rng.Intn(3), 2+rng.Intn(3))
		d, err := reduction.UFAToQ2(inst)
		if err != nil {
			t.Fatal(err)
		}
		connected := inst.Graph.Connected(inst.U, inst.V)
		certain := naive.IsCertain(reduction.Q2(), d)
		if connected != certain {
			t.Fatalf("trial %d: connected(%s,%s) = %v but certain = %v\n%s",
				trial, inst.U, inst.V, connected, certain, d)
		}
	}
}

func TestUFAValidation(t *testing.T) {
	g := graphx.NewUndirected()
	g.AddEdge("a", "b")
	// Only one component.
	inst := reduction.UFAInstance{Graph: g, U: "a", V: "b"}
	if _, err := reduction.UFAToQ2(inst); err == nil {
		t.Error("single component should be rejected")
	}
	g.AddEdge("c", "d")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c") // creates a cycle a-b-c-a
	inst = reduction.UFAInstance{Graph: g, U: "a", V: "d"}
	if _, err := reduction.UFAToQ2(inst); err == nil {
		t.Error("cyclic graph should be rejected")
	}
}

// Examples 1.2 and 6.12: S-COVERING solvable iff CERTAINTY(q_Hall) false.
func TestSCoveringQHall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		inst := gen.SCovering(rng, rng.Intn(4), 1+rng.Intn(3), 0.5)
		d := reduction.SCoveringToQHall(inst)
		q := reduction.QHall(len(inst.T))
		solvable := inst.Solvable()
		certain := naive.IsCertain(q, d)
		// Careful: with S empty, q_Hall has no satisfying valuation, so
		// certainty is false while the instance is trivially solvable.
		if len(inst.S) == 0 {
			if certain {
				t.Fatalf("trial %d: empty S must make q_Hall uncertain", trial)
			}
			continue
		}
		if solvable == certain {
			t.Fatalf("trial %d: solvable = %v but certain = %v\nS=%v T=%v",
				trial, solvable, certain, inst.S, inst.T)
		}
	}
}

// Lemma 5.4: dropping negated atoms preserves the certainty answer.
func TestLemma54DropNegated(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x), !U(x | y)")
	qPrime := parse.MustQuery("R(x | y), !S(y | x)")
	rng := rand.New(rand.NewSource(3))
	dom := []string{"1", "2"}
	for trial := 0; trial < 100; trial++ {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 2, 1)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("R", dom[rng.Intn(2)], dom[rng.Intn(2)]))
			}
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("S", dom[rng.Intn(2)], dom[rng.Intn(2)]))
			}
		}
		d0, err := reduction.DropNegated(q, qPrime, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(d0.Facts("U")) != 0 {
			t.Fatal("U should be empty in the reduced database")
		}
		if naive.IsCertain(qPrime, d) != naive.IsCertain(q, d0) {
			t.Fatalf("trial %d: Lemma 5.4 answer not preserved", trial)
		}
	}
}

func TestDropNegatedRejectsMissingPositive(t *testing.T) {
	q := parse.MustQuery("R(x | y), S(y | x)")
	qPrime := parse.MustQuery("R(x | y)")
	d := db.New()
	d.MustDeclare("R", 2, 1)
	if _, err := reduction.DropNegated(q, qPrime, d); err == nil {
		t.Error("missing positive atom should be rejected")
	}
}
