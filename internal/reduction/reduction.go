// Package reduction implements, as executable database transformations,
// the first-order reductions the paper uses to prove hardness and to
// eliminate disequalities:
//
//   - BIPARTITE PERFECT MATCHING → co-CERTAINTY(q1)      (Lemma 5.2)
//   - UFA (undirected forest accessibility) → CERTAINTY(q2) (Lemma 5.3)
//   - S-COVERING → co-CERTAINTY(q_Hall)                  (Examples 1.2, 6.12)
//   - CERTAINTY(q') → CERTAINTY(q) for q' ⊆ q with q⁺ ⊆ q' (Lemma 5.4)
//   - the generic Θ^a_b reductions for attack 2-cycles with one
//     (Lemma 5.6) or two (Lemma 5.7) negated atoms
//   - disequality elimination via a fresh all-key relation (Lemma 6.6)
//
// Each reduction is a pure function from an instance of the source problem
// to a database (and query) of the target problem; the test suite verifies
// answer preservation against the naive certainty engine.
package reduction

import (
	"fmt"

	"cqa/internal/db"
	"cqa/internal/graphx"
	"cqa/internal/matching"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

// Q1 returns q1 = {R(x|y), ¬S(y|x)} (Example 1.1).
func Q1() schema.Query { return parse.MustQuery("R(x | y), !S(y | x)") }

// Q2 returns q2 = {R(x,y), ¬S(x|y), ¬T(y|x)} (Section 5.1), the canonical
// query whose attack 2-cycle consists of two negated atoms. The positive
// atom R is all-key: that is what puts the 2-cycle S ⇄ T between the two
// negated atoms (with a simple key on R the cycle would involve R itself,
// contradicting the paper's "zero, one, and two negated atoms" narrative
// and breaking the Lemma 5.7 reduction).
func Q2() schema.Query { return parse.MustQuery("R(x, y), !S(x | y), !T(y | x)") }

// Q0 returns q0 = {R(x|y), S(y|x)}, the classical negation-free hard query.
func Q0() schema.Query { return parse.MustQuery("R(x | y), S(y | x)") }

// QHall returns q_Hall = {S(x), ¬N1(c|x), …, ¬Nℓ(c|x)} (Example 1.2).
func QHall(l int) schema.Query {
	lits := []schema.Literal{schema.Pos(schema.NewAtom("S", 1, schema.Var("x")))}
	for i := 1; i <= l; i++ {
		lits = append(lits, schema.Neg(schema.NewAtom(
			fmt.Sprintf("N%d", i), 1, schema.Const("c"), schema.Var("x"))))
	}
	return schema.NewQuery(lits...)
}

// BPMToQ1 builds the Lemma 5.2 database for a bipartite graph: for every
// edge {a, b} it contains R(a|b) and S(b|a). Provided the graph has
// equally many left and right vertices and no isolated left vertex, the
// graph has a perfect matching iff some repair falsifies q1, i.e. iff
// CERTAINTY(q1) answers false.
func BPMToQ1(g *graphx.Bipartite) (*db.Database, error) {
	if len(g.Left) != len(g.Right) {
		return nil, fmt.Errorf("reduction: sides have %d and %d vertices; the Lemma 5.2 equivalence needs equal sides",
			len(g.Left), len(g.Right))
	}
	for _, l := range g.Left {
		if len(g.Adj[l]) == 0 {
			return nil, fmt.Errorf("reduction: left vertex %s is isolated; the Lemma 5.2 equivalence needs every left vertex to have an edge", l)
		}
	}
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	for _, e := range g.Edges() {
		d.MustInsert(db.F("R", e[0], e[1]))
		d.MustInsert(db.F("S", e[1], e[0]))
	}
	return d, nil
}

// UFAInstance is an instance of Undirected Forest Accessibility: an
// acyclic undirected graph with exactly two connected components, each
// containing at least one edge, and two nodes U and V. The question is
// whether U and V are connected.
type UFAInstance struct {
	Graph *graphx.Undirected
	U, V  string
}

// Validate checks the structural preconditions of Lemma 5.3.
func (inst UFAInstance) Validate() error {
	if inst.U == inst.V {
		return fmt.Errorf("reduction: UFA nodes must be distinct (the reduction encodes a path of length ≥ 1)")
	}
	if !inst.Graph.IsForest() {
		return fmt.Errorf("reduction: UFA graph has a cycle")
	}
	comps := inst.Graph.Components()
	if len(comps) != 2 {
		return fmt.Errorf("reduction: UFA graph has %d components, want 2", len(comps))
	}
	for _, c := range comps {
		if len(c) < 2 {
			return fmt.Errorf("reduction: UFA component %v has no edge", c)
		}
	}
	for _, v := range []string{inst.U, inst.V} {
		found := false
		for _, w := range inst.Graph.Vertices() {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("reduction: UFA node %s not in graph", v)
		}
	}
	return nil
}

// UFAToQ2 builds the Lemma 5.3 database: for every edge {a, b} the
// database contains R(a|e), R(b|e), S(a|e), S(b|e), T(e|a), T(e|b) where
// e is the edge constant "{a,b}", plus R(u|t), R(v|t), S(u|t), S(v|t) for
// a fresh constant t. U and V are connected in the forest iff every repair
// satisfies q2.
func UFAToQ2(inst UFAInstance) (*db.Database, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	d := db.New()
	d.MustDeclare("R", 2, 2) // all-key, matching Q2
	d.MustDeclare("S", 2, 1)
	d.MustDeclare("T", 2, 1)
	for _, e := range inst.Graph.Edges() {
		ec := e.String()
		d.MustInsert(db.F("R", e.U, ec))
		d.MustInsert(db.F("R", e.V, ec))
		d.MustInsert(db.F("S", e.U, ec))
		d.MustInsert(db.F("S", e.V, ec))
		d.MustInsert(db.F("T", ec, e.U))
		d.MustInsert(db.F("T", ec, e.V))
	}
	const fresh = "t·fresh"
	d.MustInsert(db.F("R", inst.U, fresh))
	d.MustInsert(db.F("R", inst.V, fresh))
	d.MustInsert(db.F("S", inst.U, fresh))
	d.MustInsert(db.F("S", inst.V, fresh))
	return d, nil
}

// SCoveringToQHall builds the Example 1.2 database: S(a) for a ∈ S and
// Nᵢ(c|a) for a ∈ Tᵢ. The instance is solvable iff some repair falsifies
// q_Hall, i.e. iff CERTAINTY(q_Hall) answers false. Use QHall(len(inst.T))
// as the query.
func SCoveringToQHall(inst matching.SCoveringInstance) *db.Database {
	d := db.New()
	d.MustDeclare("S", 1, 1)
	for i := range inst.T {
		d.MustDeclare(fmt.Sprintf("N%d", i+1), 2, 1)
	}
	for _, a := range inst.S {
		d.MustInsert(db.F("S", a))
	}
	for i, t := range inst.T {
		for _, a := range t {
			d.MustInsert(db.F(fmt.Sprintf("N%d", i+1), "c", a))
		}
	}
	return d
}

// DropNegated implements Lemma 5.4: given q' ⊆ q with q⁺ ⊆ q' and a
// database for CERTAINTY(q'), it produces the database for CERTAINTY(q)
// obtained by deleting all N-facts for every ¬N ∈ q \ q' (and declaring
// the extra relations empty). Every repair of db satisfies q' iff every
// repair of the result satisfies q.
func DropNegated(q, qPrime schema.Query, d *db.Database) (*db.Database, error) {
	inQPrime := make(map[string]bool)
	for _, a := range qPrime.Atoms() {
		inQPrime[a.Rel] = true
	}
	out := db.New()
	for _, a := range q.Atoms() {
		if err := out.DeclareRelation(a.Rel, a.Arity(), a.Key); err != nil {
			return nil, err
		}
		if !inQPrime[a.Rel] {
			if !q.IsNegated(a.Rel) {
				return nil, fmt.Errorf("reduction: atom %s of q is positive but missing from q'", a.Rel)
			}
			continue // leave the extra negated relation empty
		}
		for _, f := range d.Facts(a.Rel) {
			if err := out.Insert(f); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// EncodeDiseq implements Lemma 6.6: it removes one disequality v⃗ ≠ c⃗
// from the extended query, replacing it by ¬E(v⃗) for a fresh all-key
// relation E, and adds the fact E(c⃗) to the database. The right-hand side
// of the disequality must be ground.
func EncodeDiseq(e schema.ExtQuery, i int, d *db.Database, eRel string) (schema.ExtQuery, *db.Database, error) {
	if i < 0 || i >= len(e.Diseqs) {
		return schema.ExtQuery{}, nil, fmt.Errorf("reduction: disequality index %d out of range", i)
	}
	dq := e.Diseqs[i]
	args := make([]string, len(dq.Right))
	terms := make([]schema.Term, len(dq.Left))
	for j := range dq.Right {
		if dq.Right[j].IsVar {
			return schema.ExtQuery{}, nil, fmt.Errorf("reduction: disequality %s has non-ground right side", dq)
		}
		args[j] = dq.Right[j].Name
		terms[j] = dq.Left[j]
	}
	if _, exists := e.AtomByRel(eRel); exists {
		return schema.ExtQuery{}, nil, fmt.Errorf("reduction: relation %s already occurs in the query", eRel)
	}
	newQ := e.Query.Clone()
	newQ.Lits = append(newQ.Lits, schema.Neg(schema.NewAtom(eRel, len(terms), terms...)))
	var rest []schema.Diseq
	rest = append(rest, e.Diseqs[:i]...)
	rest = append(rest, e.Diseqs[i+1:]...)

	out := d.Clone()
	if err := out.DeclareRelation(eRel, len(args), len(args)); err != nil {
		return schema.ExtQuery{}, nil, err
	}
	if err := out.Insert(db.Fact{Rel: eRel, Args: args}); err != nil {
		return schema.ExtQuery{}, nil, err
	}
	return schema.ExtQuery{Query: newQ, Diseqs: rest}, out, nil
}
