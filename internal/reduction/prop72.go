package reduction

import (
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/schema"
)

// Prop72Witness constructs the database from the proof of Proposition 7.2
// witnessing that an attacked variable x is not reifiable in q: the
// returned database has exactly two repairs, both satisfy q, yet for
// every constant c at least one repair falsifies q[x ↦ c].
//
// The construction: pick F with F|v_F ⇝ x, define the valuations
// Θ_c(w) = c if F|v_F ⇝ w and ⊥ otherwise, and take
// db = Θ_a(q⁺) ∪ Θ_b(q⁺) ∪ {Θ_a(F), Θ_b(F)} for distinct fresh constants
// a, b. The two Θ(F) facts are key-equal (key(F) ⊆ F^{⊕,q} maps to ⊥) but
// distinct (v_F is reached), and by Lemma 4.7 no other pair of facts
// conflicts, so the F-block is the only choice point.
func Prop72Witness(q schema.Query, x, a, b string) (*db.Database, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if a == b {
		return nil, fmt.Errorf("reduction: witness constants must be distinct")
	}
	g := attack.New(q)
	var fRel, vF string
	for _, rel := range g.Atoms() {
		if !g.AttacksVar(rel, x) {
			continue
		}
		if u, _, ok := g.AttackVarWitness(rel, x); ok {
			fRel, vF = rel, u
			break
		}
	}
	if fRel == "" {
		return nil, fmt.Errorf("reduction: variable %s is unattacked in %s (Proposition 7.2 does not apply)", x, q)
	}
	reach := g.ReachFrom(fRel, vF)

	theta := func(c string, atom schema.Atom) db.Fact {
		args := make([]string, len(atom.Terms))
		for i, t := range atom.Terms {
			switch {
			case !t.IsVar:
				args[i] = t.Name
			case reach.Has(t.Name):
				args[i] = c
			default:
				args[i] = Bottom
			}
		}
		return db.Fact{Rel: atom.Rel, Args: args}
	}

	d := declareQ(q)
	fAtom, _ := q.AtomByRel(fRel)
	for _, c := range []string{a, b} {
		for _, p := range q.Positive() {
			if err := d.Insert(theta(c, p)); err != nil {
				return nil, err
			}
		}
		if err := d.Insert(theta(c, fAtom)); err != nil {
			return nil, err
		}
	}
	return d, nil
}
