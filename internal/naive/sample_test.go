package naive_test

import (
	"math"
	"math/rand"
	"testing"

	"cqa/internal/naive"
	"cqa/internal/parse"
)

func TestSampleRepairIsARepair(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	d := parse.MustDatabase(`
		R(a | 1)
		R(a | 2)
		R(b | 1)
		S(1 | a)
		S(1 | b)
	`)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		r := naive.SampleRepair(q, d, rng)
		if !r.IsConsistent() {
			t.Fatal("sampled repair is inconsistent")
		}
		// One fact per block: 2 R-blocks + 1 S-block.
		if r.Size() != 3 {
			t.Fatalf("sampled repair has %d facts, want 3", r.Size())
		}
		for _, f := range r.AllFacts() {
			if !d.Has(f) {
				t.Fatalf("sampled repair contains foreign fact %v", f)
			}
		}
	}
}

// The Monte-Carlo estimate converges to the exact repair frequency.
func TestEstimateFrequencyConverges(t *testing.T) {
	q := parse.MustQuery("R(x | '1')")
	// R-block {R(a|1), R(a|2)} and {R(b|1), R(b|3)}: q holds unless both
	// blocks pick the non-1 fact: frequency = 3/4.
	d := parse.MustDatabase(`
		R(a | 1)
		R(a | 2)
		R(b | 1)
		R(b | 3)
	`)
	exact := naive.Frequency(q, d)
	if exact != 0.75 {
		t.Fatalf("exact frequency = %v, want 0.75", exact)
	}
	rng := rand.New(rand.NewSource(2))
	est := naive.EstimateFrequency(q, d, 4000, rng)
	if math.Abs(est-exact) > 0.05 {
		t.Fatalf("estimate %v too far from %v", est, exact)
	}
	if naive.EstimateFrequency(q, d, 0, rng) != 0 {
		t.Error("n = 0 should estimate 0")
	}
}

// Sampling uniformity: each repair of a 2-repair database appears about
// half the time.
func TestSampleRepairUniform(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	d := parse.MustDatabase("R(a | 1)\nR(a | 2)")
	rng := rand.New(rand.NewSource(3))
	first := 0
	const n = 2000
	for i := 0; i < n; i++ {
		r := naive.SampleRepair(q, d, rng)
		if r.Has(parse.MustDatabase("R(a | 1)").AllFacts()[0]) {
			first++
		}
	}
	ratio := float64(first) / n
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("sampling skewed: ratio = %v", ratio)
	}
}
