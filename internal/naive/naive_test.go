package naive_test

import (
	"testing"

	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func TestSatBasic(t *testing.T) {
	d := parse.MustDatabase(`
		R(a | 1)
		S(1 | b)
	`)
	q := parse.MustQuery("R(x | y), S(y | z)")
	if !naive.SatQuery(q, d) {
		t.Error("join should be satisfied")
	}
	q2 := parse.MustQuery("R(x | y), S(x | z)")
	if naive.SatQuery(q2, d) {
		t.Error("S(a|...) does not exist")
	}
}

func TestSatNegation(t *testing.T) {
	d := parse.MustDatabase(`
		R(a | 1)
		S(1 | a)
	`)
	// Example 3.3 style: R(x|y), ¬S(y|x).
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if naive.SatQuery(q, d) {
		t.Error("S(1|a) blocks the only valuation")
	}
	d2 := parse.MustDatabase("R(a | 1)")
	if err := parse.DeclareQueryRelations(d2, q); err != nil {
		t.Fatal(err)
	}
	if !naive.SatQuery(q, d2) {
		t.Error("without the S fact the query should be satisfied")
	}
}

func TestSatConstants(t *testing.T) {
	d := parse.MustDatabase("N(c | 5)")
	q := parse.MustQuery("N('c' | y)")
	if !naive.SatQuery(q, d) {
		t.Error("constant key should match")
	}
	q2 := parse.MustQuery("N('d' | y)")
	if naive.SatQuery(q2, d) {
		t.Error("wrong constant should not match")
	}
}

func TestSatRepeatedVariables(t *testing.T) {
	d := parse.MustDatabase("R(a | a)\nR(b | c)")
	q := parse.MustQuery("R(x | x)")
	if !naive.SatQuery(q, d) {
		t.Error("R(a|a) matches R(x|x)")
	}
	d2 := parse.MustDatabase("R(b | c)")
	if naive.SatQuery(q, d2) {
		t.Error("R(b|c) does not match R(x|x)")
	}
}

func TestSatDiseq(t *testing.T) {
	d := parse.MustDatabase("R(a | 1)\nR(b | 2)")
	q := parse.MustQuery("R(x | y)")
	e := schema.Ext(q).WithDiseq(schema.NewDiseq(
		[]schema.Term{schema.Var("y")}, []schema.Term{schema.Const("1")}))
	if !naive.Sat(e, d) {
		t.Error("R(b|2) satisfies y ≠ 1")
	}
	d2 := parse.MustDatabase("R(a | 1)")
	if naive.Sat(e, d2) {
		t.Error("only fact violates the disequality")
	}
	// Multi-coordinate disequality: one differing coordinate suffices.
	e2 := schema.Ext(q).WithDiseq(schema.NewDiseq(
		[]schema.Term{schema.Var("x"), schema.Var("y")},
		[]schema.Term{schema.Const("a"), schema.Const("2")}))
	if !naive.Sat(e2, d2) {
		t.Error("(a,1) ≠ (a,2) in the second coordinate")
	}
}

func TestIsCertainConsistentDatabase(t *testing.T) {
	d := parse.MustDatabase("R(a | 1)")
	q := parse.MustQuery("R(x | y)")
	if !naive.IsCertain(q, d) {
		t.Error("consistent database satisfying q must be certain")
	}
	q2 := parse.MustQuery("R(x | 'zz')")
	if naive.IsCertain(q2, d) {
		t.Error("unsatisfied query cannot be certain")
	}
}

func TestIsCertainBlocks(t *testing.T) {
	// R-block {R(a|1), R(a|2)}: q = ∃x R(x|1) is true only in one repair.
	d := parse.MustDatabase("R(a | 1)\nR(a | 2)")
	q := parse.MustQuery("R(x | '1')")
	if naive.IsCertain(q, d) {
		t.Error("repair choosing R(a|2) falsifies q")
	}
	q2 := parse.MustQuery("R(x | y)")
	if !naive.IsCertain(q2, d) {
		t.Error("every repair has some R fact")
	}
}

func TestIsCertainIgnoresUnrelatedRelations(t *testing.T) {
	// A huge inconsistent relation that q does not mention must not blow
	// up enumeration (repairs are restricted to q's relations).
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("Junk", 2, 1)
	d.MustInsert(db.F("R", "a", "1"))
	for i := 0; i < 30; i++ {
		d.MustInsert(db.F("Junk", "k", string(rune('a'+i))))
	}
	q := parse.MustQuery("R(x | y)")
	if !naive.IsCertain(q, d) {
		t.Error("junk relation changed the answer")
	}
}

func TestIsCertainEmptyPositiveRelation(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	q := parse.MustQuery("R(x | y)")
	if naive.IsCertain(q, d) {
		t.Error("empty relation: q false in the unique repair")
	}
	// Relation not even declared: same answer.
	q2 := parse.MustQuery("Q(x | y)")
	if naive.IsCertain(q2, db.New()) {
		t.Error("undeclared relation should behave as empty")
	}
}

func TestNegatedRelationAbsentFromDatabase(t *testing.T) {
	// ¬N over an undeclared relation is vacuously satisfied.
	d := parse.MustDatabase("R(a | 1)")
	q := parse.MustQuery("R(x | y), !N(x | y)")
	if !naive.IsCertain(q, d) {
		t.Error("absent negated relation should not block certainty")
	}
}

func TestFalsifyingRepair(t *testing.T) {
	d := parse.MustDatabase("R(a | 1)\nR(a | 2)")
	q := parse.MustQuery("R(x | '1')")
	r := naive.FalsifyingRepair(q, d)
	if r == nil {
		t.Fatal("a falsifying repair exists")
	}
	if naive.SatQuery(q, r) {
		t.Error("returned repair satisfies q")
	}
	if !r.Has(db.F("R", "a", "2")) {
		t.Errorf("unexpected repair:\n%s", r)
	}
	q2 := parse.MustQuery("R(x | y)")
	if naive.FalsifyingRepair(q2, d) != nil {
		t.Error("certain query should have no falsifying repair")
	}
}

// The empty query (no literals) is vacuously true everywhere.
func TestEmptyQueryCertain(t *testing.T) {
	if !naive.IsCertain(schema.Query{}, db.New()) {
		t.Error("empty query should be certain")
	}
}

// Positive-atom ordering by extension size must not change answers.
func TestSatOrderIndependence(t *testing.T) {
	d := parse.MustDatabase(`
		R(a | 1)
		R(b | 2)
		S(1 | x)
		T(x | q)
	`)
	q1 := parse.MustQuery("R(x | y), S(y | z), T(z | w)")
	q2 := parse.MustQuery("T(z | w), S(y | z), R(x | y)")
	if naive.SatQuery(q1, d) != naive.SatQuery(q2, d) {
		t.Error("literal order changed satisfaction")
	}
	if !naive.SatQuery(q1, d) {
		t.Error("chain should be satisfied via a,1,x,q")
	}
}
