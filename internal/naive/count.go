package naive

import (
	"cqa/internal/db"
	"cqa/internal/schema"
)

// CountSatisfyingRepairs returns the number of repairs of d (restricted
// to the relations q mentions) that satisfy q, together with the total
// number of repairs. This is the counting variant ♯CERTAINTY(q) discussed
// in the paper's related work (Maslowski & Wijsen): CERTAINTY(q) holds
// iff satisfying == total.
//
// The computation enumerates repairs and is exponential; it is meant as
// ground truth for small instances.
func CountSatisfyingRepairs(q schema.Query, d *db.Database) (satisfying, total int) {
	rels := make([]string, 0, len(q.Lits))
	for _, a := range q.Atoms() {
		rels = append(rels, a.Rel)
	}
	d.Repairs(rels, func(r *db.Database) bool {
		total++
		if SatQuery(q, r) {
			satisfying++
		}
		return true
	})
	return satisfying, total
}

// Frequency returns the fraction of repairs satisfying q, in [0, 1].
// A database with a single (trivial) repair yields 0 or 1.
func Frequency(q schema.Query, d *db.Database) float64 {
	sat, total := CountSatisfyingRepairs(q, d)
	if total == 0 {
		return 0
	}
	return float64(sat) / float64(total)
}
