// Package naive provides the executable ground truth for CERTAINTY(q): it
// enumerates the repairs of the database (Definition in Section 3) and
// evaluates the query on each by backtracking join. Every other certainty
// engine in this repository is validated against this one.
package naive

import (
	"sort"

	"cqa/internal/db"
	"cqa/internal/schema"
)

// Sat reports whether the database satisfies the extended query
// q ∪ C ∈ sjfBCQ¬≠: there is a valuation θ over vars(q) with θ(P) ∈ db for
// every positive P, θ(N) ∉ db for every negated N, and every disequality
// violated in at least one coordinate.
func Sat(e schema.ExtQuery, d *db.Database) bool {
	pos := e.Positive()
	// Order positive atoms by extension size for cheaper backtracking.
	sort.SliceStable(pos, func(i, j int) bool {
		ri, rj := d.Relation(pos[i].Rel), d.Relation(pos[j].Rel)
		si, sj := 0, 0
		if ri != nil {
			si = ri.Size()
		}
		if rj != nil {
			sj = rj.Size()
		}
		return si < sj
	})
	env := make(map[string]string)
	return match(pos, 0, env, e, d)
}

// SatQuery reports whether the database satisfies a plain query.
func SatQuery(q schema.Query, d *db.Database) bool { return Sat(schema.Ext(q), d) }

func match(pos []schema.Atom, i int, env map[string]string, e schema.ExtQuery, d *db.Database) bool {
	if i == len(pos) {
		return checkNegAndDiseq(env, e, d)
	}
	a := pos[i]
	for _, f := range d.Facts(a.Rel) {
		bound := bindAtom(a, f, env)
		if bound == nil {
			continue
		}
		if match(pos, i+1, env, e, d) {
			unbind(env, bound)
			return true
		}
		unbind(env, bound)
	}
	return false
}

// bindAtom tries to unify atom a with fact f under env. On success it
// returns the list of newly bound variables (to undo later); on mismatch
// it returns nil having already undone any partial bindings.
func bindAtom(a schema.Atom, f db.Fact, env map[string]string) []string {
	var bound []string
	for i, t := range a.Terms {
		v := f.Args[i]
		if !t.IsVar {
			if t.Name != v {
				unbind(env, bound)
				return nil
			}
			continue
		}
		if cur, ok := env[t.Name]; ok {
			if cur != v {
				unbind(env, bound)
				return nil
			}
			continue
		}
		env[t.Name] = v
		bound = append(bound, t.Name)
	}
	if bound == nil {
		bound = []string{}
	}
	return bound
}

func unbind(env map[string]string, names []string) {
	for _, n := range names {
		delete(env, n)
	}
}

func checkNegAndDiseq(env map[string]string, e schema.ExtQuery, d *db.Database) bool {
	for _, n := range e.Negated() {
		args := make([]string, len(n.Terms))
		for i, t := range n.Terms {
			if t.IsVar {
				v, ok := env[t.Name]
				if !ok {
					// Unsafe variable; treat as non-match. Validated
					// queries never reach this.
					return false
				}
				args[i] = v
			} else {
				args[i] = t.Name
			}
		}
		if d.Has(db.Fact{Rel: n.Rel, Args: args}) {
			return false
		}
	}
	for _, dq := range e.Diseqs {
		if !diseqHolds(dq, env) {
			return false
		}
	}
	return true
}

func diseqHolds(dq schema.Diseq, env map[string]string) bool {
	ground := func(t schema.Term) (string, bool) {
		if !t.IsVar {
			return t.Name, true
		}
		v, ok := env[t.Name]
		return v, ok
	}
	for i := range dq.Left {
		l, okL := ground(dq.Left[i])
		r, okR := ground(dq.Right[i])
		if !okL || !okR {
			// An unbound side cannot witness disequality; skip the
			// coordinate. Validated rewriting state never reaches this.
			continue
		}
		if l != r {
			return true
		}
	}
	return false
}

// IsCertain reports whether q is true in every repair of d, by direct
// enumeration of the repairs restricted to the relations q mentions
// (repairs of other relations cannot affect q). It stops at the first
// falsifying repair.
func IsCertain(q schema.Query, d *db.Database) bool {
	return IsCertainExt(schema.Ext(q), d)
}

// IsCertainExt is IsCertain for extended queries with disequalities.
func IsCertainExt(e schema.ExtQuery, d *db.Database) bool {
	rels := make([]string, 0, len(e.Lits))
	for _, a := range e.Atoms() {
		rels = append(rels, a.Rel)
	}
	certain := true
	d.Repairs(rels, func(r *db.Database) bool {
		if !Sat(e, r) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// FalsifyingRepair returns a repair that falsifies q, or nil when q is
// certain. The returned database is an independent copy.
func FalsifyingRepair(q schema.Query, d *db.Database) *db.Database {
	rels := make([]string, 0, len(q.Lits))
	for _, a := range q.Atoms() {
		rels = append(rels, a.Rel)
	}
	var out *db.Database
	d.Repairs(rels, func(r *db.Database) bool {
		if !SatQuery(q, r) {
			out = r.Clone()
			return false
		}
		return true
	})
	return out
}
