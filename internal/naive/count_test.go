package naive_test

import (
	"testing"

	"cqa/internal/naive"
	"cqa/internal/parse"
)

func TestCountSatisfyingRepairs(t *testing.T) {
	// R-block of size 2 × S-block of size 2 = 4 repairs.
	d := parse.MustDatabase(`
		R(a | 1)
		R(a | 2)
		S(1 | x)
		S(1 | y)
	`)
	q := parse.MustQuery("R(x | y), S(y | z)")
	sat, total := naive.CountSatisfyingRepairs(q, d)
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
	// q needs R(a,1) (only y=1 joins) — 2 of the 4 repairs contain it.
	if sat != 2 {
		t.Fatalf("satisfying = %d, want 2", sat)
	}
	if f := naive.Frequency(q, d); f != 0.5 {
		t.Fatalf("frequency = %v, want 0.5", f)
	}
}

func TestCountMatchesIsCertain(t *testing.T) {
	d := parse.MustDatabase(`
		R(a | 1)
		R(a | 2)
		R(b | 1)
		S(1 | a)
	`)
	for _, src := range []string{
		"R(x | y)",
		"R(x | y), !S(y | x)",
		"R(x | '1')",
	} {
		q := parse.MustQuery(src)
		if err := parse.DeclareQueryRelations(d, q); err != nil {
			t.Fatal(err)
		}
		sat, total := naive.CountSatisfyingRepairs(q, d)
		if (sat == total) != naive.IsCertain(q, d) {
			t.Errorf("%s: counting (%d/%d) inconsistent with IsCertain", src, sat, total)
		}
	}
}

func TestFrequencyEdgeCases(t *testing.T) {
	// Empty database restricted to q's relations: exactly one (empty)
	// repair, which falsifies any query with positive atoms.
	q := parse.MustQuery("R(x | y)")
	d := parse.MustDatabase("")
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		t.Fatal(err)
	}
	sat, total := naive.CountSatisfyingRepairs(q, d)
	if total != 1 || sat != 0 {
		t.Fatalf("empty db: %d/%d, want 0/1", sat, total)
	}
}
