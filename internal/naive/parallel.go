package naive

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cqa/internal/db"
	"cqa/internal/schema"
)

// IsCertainParallel is IsCertain with the repair search fanned out over
// worker goroutines: the choices of the first multi-fact block are
// distributed, and each worker enumerates the completions independently
// with early termination as soon as any worker finds a falsifying repair.
// workers ≤ 0 selects GOMAXPROCS. The answer is identical to IsCertain.
func IsCertainParallel(q schema.Query, d *db.Database, workers int) bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rels := make([]string, 0, len(q.Lits))
	for _, a := range q.Atoms() {
		rels = append(rels, a.Rel)
	}

	var blocks []blockRef
	skeleton := db.New()
	for _, name := range rels {
		r := d.Relation(name)
		if r == nil {
			continue
		}
		skeleton.MustDeclare(name, r.Arity, r.Key)
		d.Blocks(name, func(b []db.Fact) bool {
			blocks = append(blocks, blockRef{rel: name, facts: b})
			return true
		})
	}

	// Sort multi-fact blocks to the front and pick a prefix whose choice
	// combinations give enough tasks to keep the workers busy.
	sortMultiFirst(blocks)
	prefix := 0
	combos := 1
	for prefix < len(blocks) && combos < workers*8 && combos*len(blocks[prefix].facts) <= 4096 {
		combos *= len(blocks[prefix].facts)
		prefix++
	}
	if combos == 1 {
		// Consistent (restricted) database: it is its own repair.
		repair := skeleton.Clone()
		for _, b := range blocks {
			repair.MustInsert(b.facts[0])
		}
		return Sat(schema.Ext(q), repair)
	}

	var falsified atomic.Bool
	tasks := make(chan []db.Fact)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			repair := skeleton.Clone()
			for choice := range tasks {
				if falsified.Load() {
					continue // drain
				}
				for _, f := range choice {
					repair.MustInsert(f)
				}
				enumerate(q, repair, blocks[prefix:], &falsified)
				for _, f := range choice {
					repair.Remove(f)
				}
			}
		}()
	}
	emitPrefixes(blocks[:prefix], nil, tasks, &falsified)
	close(tasks)
	wg.Wait()
	return !falsified.Load()
}

// blockRef is one block of the restricted database during enumeration.
type blockRef struct {
	rel   string
	facts []db.Fact
}

// sortMultiFirst stably moves multi-fact blocks before singleton blocks,
// so the task prefix gets real branching.
func sortMultiFirst(blocks []blockRef) {
	out := make([]blockRef, 0, len(blocks))
	for _, b := range blocks {
		if len(b.facts) > 1 {
			out = append(out, b)
		}
	}
	for _, b := range blocks {
		if len(b.facts) == 1 {
			out = append(out, b)
		}
	}
	copy(blocks, out)
}

// emitPrefixes streams every combination of choices for the prefix
// blocks, aborting early when a falsifying repair has been found.
func emitPrefixes(blocks []blockRef, acc []db.Fact, tasks chan<- []db.Fact, falsified *atomic.Bool) {
	if falsified.Load() {
		return
	}
	if len(blocks) == 0 {
		choice := make([]db.Fact, len(acc))
		copy(choice, acc)
		tasks <- choice
		return
	}
	for _, f := range blocks[0].facts {
		emitPrefixes(blocks[1:], append(acc, f), tasks, falsified)
	}
}

// enumerate walks the remaining block choices, setting falsified when a
// repair does not satisfy q. It aborts as soon as the flag is set by any
// worker.
func enumerate(q schema.Query, repair *db.Database, blocks []blockRef, falsified *atomic.Bool) {
	if falsified.Load() {
		return
	}
	if len(blocks) == 0 {
		if !Sat(schema.Ext(q), repair) {
			falsified.Store(true)
		}
		return
	}
	for _, f := range blocks[0].facts {
		repair.MustInsert(f)
		enumerate(q, repair, blocks[1:], falsified)
		repair.Remove(f)
		if falsified.Load() {
			return
		}
	}
}
