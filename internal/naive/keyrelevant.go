package naive

import (
	"cqa/internal/db"
	"cqa/internal/schema"
)

// Valuations enumerates every valuation θ over vars(q) with θ(q⁺) ⊆ d,
// θ(N) ∉ d for all negated N, and all disequalities satisfied, calling fn
// for each; enumeration stops early when fn returns false. The map passed
// to fn is reused; copy it to retain.
func Valuations(e schema.ExtQuery, d *db.Database, fn func(theta map[string]string) bool) {
	pos := e.Positive()
	env := make(map[string]string)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pos) {
			if !checkNegAndDiseq(env, e, d) {
				return true
			}
			return fn(env)
		}
		a := pos[i]
		for _, f := range d.Facts(a.Rel) {
			bound := bindAtom(a, f, env)
			if bound == nil {
				continue
			}
			cont := rec(i + 1)
			unbind(env, bound)
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}

// KeyRelevant reports whether the fact A is key-relevant for q in the
// consistent database r (Section 3): there exists a valuation θ over
// vars(q) with r ⊨ θ(q) and θ(F) ~ A, where F is q's atom over A's
// relation name.
//
// Example 3.3: for q₁ = {R(x|y), ¬S(y|x)} and
// r = {R(b|1), S(1|a), S(2|a)}, the fact S(1|a) is key-relevant (the only
// valuation maps S's pattern to the key-equal S(1|b)) while S(2|a) is not.
func KeyRelevant(q schema.Query, r *db.Database, a db.Fact) bool {
	f, ok := q.AtomByRel(a.Rel)
	if !ok {
		return false
	}
	relevant := false
	Valuations(schema.Ext(q), r, func(theta map[string]string) bool {
		// θ(F) ~ A: same relation and same key values.
		for i := 0; i < f.Key; i++ {
			t := f.Terms[i]
			var v string
			if t.IsVar {
				v = theta[t.Name]
			} else {
				v = t.Name
			}
			if v != a.Args[i] {
				return true // keep searching
			}
		}
		relevant = true
		return false
	})
	return relevant
}
