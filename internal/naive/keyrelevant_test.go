package naive_test

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

// Example 3.3 of the paper, verbatim.
func TestExample33KeyRelevant(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	r := parse.MustDatabase(`
		R(b | 1)
		S(1 | a)
		S(2 | a)
	`)
	if !naive.KeyRelevant(q, r, db.F("S", "1", "a")) {
		t.Error("S(1|a) should be key-relevant (θ = {x↦b, y↦1})")
	}
	if naive.KeyRelevant(q, r, db.F("S", "2", "a")) {
		t.Error("S(2|a) should not be key-relevant")
	}
	if !naive.KeyRelevant(q, r, db.F("R", "b", "1")) {
		t.Error("R(b|1) should be key-relevant (it is the matched fact)")
	}
	if naive.KeyRelevant(q, r, db.F("Unknown", "x")) {
		t.Error("facts over relations outside q are never key-relevant")
	}
}

func TestValuationsEnumeration(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	d := parse.MustDatabase("R(a | 1)\nR(b | 2)")
	var seen []map[string]string
	naive.Valuations(schema.Ext(q), d, func(theta map[string]string) bool {
		cp := map[string]string{}
		for k, v := range theta {
			cp[k] = v
		}
		seen = append(seen, cp)
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("valuations = %v, want 2", seen)
	}
	// Early stop.
	n := 0
	naive.Valuations(schema.Ext(q), d, func(map[string]string) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d valuations", n)
	}
}

// Lemma 6.8, tested empirically: let q be weakly-guarded, X unattacked
// variables, G an atom of q, r a consistent database, A ∈ r key-relevant
// for q in r, and B key-equal to A. Then for every valuation ζ over X:
// if r_B = (r \ {A}) ∪ {B} satisfies ζ(q), so does r.
func TestLemma68SwapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	dbOpts.MaxBlockSize = 1 // consistent databases
	checked := 0
	for trials := 0; trials < 300 && checked < 400; trials++ {
		q := gen.Query(rng, opts)
		g := attack.New(q)
		unattacked := g.UnattackedVars()
		r := gen.Database(rng, q, dbOpts)
		if !r.IsConsistent() {
			continue
		}
		dom := r.ActiveDomain()
		if len(dom) == 0 {
			continue
		}
		for _, atom := range q.Atoms() {
			// G must not attack any X variable; take X = unattacked ∩
			// vars(q), which no atom attacks at all — stronger than the
			// lemma needs, and what Corollary 6.9 uses.
			gRel := atom.Rel
			for _, a := range r.Facts(gRel) {
				if !naive.KeyRelevant(q, r, a) {
					continue
				}
				// Build B: key-equal to A, different non-key part.
				if atom.AllKey() {
					continue // B = A, trivial
				}
				b := db.Fact{Rel: a.Rel, Args: append([]string{}, a.Args...)}
				b.Args[len(b.Args)-1] = dom[rng.Intn(len(dom))] + "·alt"
				rB := r.Clone()
				rB.Remove(a)
				rB.MustInsert(b)

				// Check the implication for every ζ over X (including
				// the empty valuation when X is empty).
				xs := unattacked.Sorted()
				var walk func(i int, zeta map[string]schema.Term) bool
				walk = func(i int, zeta map[string]schema.Term) bool {
					if i == len(xs) {
						qz := q.Substitute(zeta)
						if naive.SatQuery(qz, rB) && !naive.SatQuery(qz, r) {
							t.Fatalf("Lemma 6.8 violated:\nq = %s\nζ = %v\nA = %s, B = %s\nr:\n%s",
								q, zeta, a, b, r)
						}
						checked++
						return true
					}
					for _, c := range dom {
						zeta[xs[i]] = schema.Const(c)
						if !walk(i+1, zeta) {
							return false
						}
					}
					delete(zeta, xs[i])
					return true
				}
				if len(xs) <= 2 { // keep the sweep tractable
					walk(0, map[string]schema.Term{})
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no key-relevant swap cases generated")
	}
}
