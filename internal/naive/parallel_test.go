package naive_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	for trial := 0; trial < 40; trial++ {
		q := gen.Query(rng, opts)
		d := gen.Database(rng, q, dbOpts)
		want := naive.IsCertain(q, d)
		for _, workers := range []int{0, 1, 4} {
			if got := naive.IsCertainParallel(q, d, workers); got != want {
				t.Fatalf("parallel(%d) = %v, sequential = %v\nquery %s\n%s",
					workers, got, want, q, d)
			}
		}
	}
}

func TestParallelConsistentDatabase(t *testing.T) {
	// No multi-fact block: the consistent path.
	d := parse.MustDatabase("R(a | 1)\nS(1 | b)")
	q := parse.MustQuery("R(x | y), S(y | z)")
	if !naive.IsCertainParallel(q, d, 4) {
		t.Error("consistent satisfying database should be certain")
	}
	q2 := parse.MustQuery("R(x | 'zz')")
	if naive.IsCertainParallel(q2, d, 4) {
		t.Error("unsatisfied query should not be certain")
	}
}

func TestParallelUndeclaredRelation(t *testing.T) {
	q := parse.MustQuery("R(x | y), !N(x | y)")
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustInsert(db.F("R", "a", "1"))
	if !naive.IsCertainParallel(q, d, 2) {
		t.Error("absent negated relation should not block certainty")
	}
}

func TestParallelEarlyExit(t *testing.T) {
	// Many blocks, all falsifying: must terminate quickly and return
	// false regardless of worker count.
	d := db.New()
	d.MustDeclare("R", 2, 1)
	for i := 0; i < 18; i++ {
		k := string(rune('a' + i))
		d.MustInsert(db.F("R", k, "1"))
		d.MustInsert(db.F("R", k, "2"))
	}
	q := parse.MustQuery("R(x | '3')")
	if naive.IsCertainParallel(q, d, 8) {
		t.Error("query is false in every repair")
	}
}
