package naive

import (
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/schema"
)

// SampleRepair returns one repair of d (restricted to the relations q
// mentions) drawn uniformly at random: each block contributes one fact
// chosen uniformly and independently, which induces the uniform
// distribution over repairs.
func SampleRepair(q schema.Query, d *db.Database, rng *rand.Rand) *db.Database {
	repair := db.New()
	for _, a := range q.Atoms() {
		r := d.Relation(a.Rel)
		if r == nil {
			continue
		}
		repair.MustDeclare(a.Rel, r.Arity, r.Key)
		d.Blocks(a.Rel, func(b []db.Fact) bool {
			repair.MustInsert(b[rng.Intn(len(b))])
			return true
		})
	}
	return repair
}

// EstimateFrequency estimates the fraction of repairs satisfying q by
// Monte-Carlo sampling of n uniform repairs. It is the tractable
// companion of Frequency (exact, exponential): by Hoeffding's inequality
// the estimate is within ε of the truth with probability ≥ 1 − 2e^{−2nε²}.
func EstimateFrequency(q schema.Query, d *db.Database, n int, rng *rand.Rand) float64 {
	if n <= 0 {
		return 0
	}
	sat := 0
	for i := 0; i < n; i++ {
		if SatQuery(q, SampleRepair(q, d, rng)) {
			sat++
		}
	}
	return float64(sat) / float64(n)
}
