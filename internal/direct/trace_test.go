package direct_test

import (
	"strings"
	"testing"

	"cqa/internal/direct"
	"cqa/internal/parse"
)

func TestIsCertainTraced(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	d := parse.MustDatabase(`
		P(p1 | v1)
		P(p2 | v2)
		N(c | v1)
	`)
	var lines []string
	maxDepth := 0
	got, err := direct.IsCertainTraced(q, d, func(depth int, msg string) {
		lines = append(lines, msg)
		if depth > maxDepth {
			maxDepth = depth
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("query should be certain (block p2 avoids v1)")
	}
	if len(lines) == 0 || maxDepth == 0 {
		t.Fatal("trace should have nested steps")
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{"Lemma 6.5", "Corollary 6.9", "reif", "base case"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("trace lacks %q:\n%s", frag, joined)
		}
	}
	// The traced result must equal the untraced one.
	plain, err := direct.IsCertain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if plain != got {
		t.Error("traced and untraced answers differ")
	}
}

func TestIsCertainTracedErrors(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if _, err := direct.IsCertainTraced(q, parse.MustDatabase(""), nil); err != direct.ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}
