package direct_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func mustCertain(t *testing.T, q schema.Query, d *db.Database) bool {
	t.Helper()
	got, err := direct.IsCertain(q, d)
	if err != nil {
		t.Fatalf("direct(%s): %v", q, err)
	}
	return got
}

func TestRejectsCyclic(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if _, err := direct.IsCertain(q, db.New()); err != direct.ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestRejectsNotWeaklyGuarded(t *testing.T) {
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	if _, err := direct.IsCertain(q, db.New()); err != direct.ErrNotWeaklyGuarded {
		t.Fatalf("err = %v, want ErrNotWeaklyGuarded", err)
	}
}

func TestRejectsInvalid(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
		schema.Neg(schema.NewAtom("N", 1, schema.Var("z"))),
	)
	if _, err := direct.IsCertain(q, db.New()); err == nil {
		t.Fatal("unsafe query should be rejected")
	}
}

func TestExample45EndToEnd(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	// The rewriting semantics: P non-empty, and for every N(c, a) there
	// is a P-block avoiding a.
	d := parse.MustDatabase(`
		P(p1 | v1)
		P(p2 | v2)
		N(c | v1)
	`)
	if !mustCertain(t, q, d) {
		t.Error("block p2 avoids v1; certainty should hold")
	}
	d2 := parse.MustDatabase(`
		P(p1 | v1)
		N(c | v1)
	`)
	if mustCertain(t, q, d2) {
		t.Error("the only P-block holds v1; not certain")
	}
	// Inconsistent P-block: P(p1|v1), P(p1|v2): block p1 contains v1 in
	// one repair but not the other; the rewriting needs a single block
	// avoiding v1 in all its facts... here block p1 has a fact with v1,
	// so it does not qualify; still certain? No: the repair {P(p1|v1)}
	// together with N(c|v1) falsifies q.
	d3 := parse.MustDatabase(`
		P(p1 | v1)
		P(p1 | v2)
		N(c | v1)
	`)
	want := naive.IsCertain(q, d3)
	if got := mustCertain(t, q, d3); got != want {
		t.Errorf("direct = %v, naive = %v", got, want)
	}
}

// Randomized agreement with the naive engine over generated acyclic
// weakly-guarded queries and typed databases.
func TestRandomAgreementWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested := 0
	for tested < 60 {
		q := gen.Query(rng, opts)
		if _, err := direct.IsCertain(q, db.New()); err != nil {
			continue // cyclic or otherwise out of scope for Algorithm 1
		}
		tested++
		for i := 0; i < 3; i++ {
			d := gen.Database(rng, q, dbOpts)
			want := naive.IsCertain(q, d)
			if got := mustCertain(t, q, d); got != want {
				t.Fatalf("direct = %v, naive = %v\nquery %s\ndb:\n%s", got, want, q, d)
			}
		}
	}
}

func TestAllKeyBaseCase(t *testing.T) {
	q := parse.MustQuery("A(x, y), !B(x, y)")
	d := parse.MustDatabase("A(1, 2)")
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		t.Fatal(err)
	}
	if !mustCertain(t, q, d) {
		t.Error("all-key query over consistent data should reduce to satisfaction")
	}
	d.MustInsert(db.F("B", "1", "2"))
	if mustCertain(t, q, d) {
		t.Error("B(1,2) blocks the only valuation")
	}
}

func TestEmptyDatabase(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	d := db.New()
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		t.Fatal(err)
	}
	if mustCertain(t, q, d) {
		t.Error("empty database cannot satisfy the positive part")
	}
}
