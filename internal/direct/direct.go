// Package direct implements Algorithm 1 of the paper (IsCertain): a
// recursive decision procedure for CERTAINTY(q) that works directly on the
// database instead of first building a first-order rewriting. It applies
// to weakly-guarded queries with acyclic attack graphs, has polynomial
// data complexity for a fixed query, and serves as an engine independent
// of internal/rewrite for cross-validation.
package direct

import (
	"errors"
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/schema"
)

// ErrNotWeaklyGuarded reports that the query is outside Theorem 4.3.
var ErrNotWeaklyGuarded = errors.New("direct: negation is not weakly-guarded")

// ErrCyclic reports a cyclic attack graph, for which Algorithm 1 does not
// apply (CERTAINTY(q) is then not in FO by Theorem 4.3).
var ErrCyclic = errors.New("direct: attack graph is cyclic")

// IsCertain reports whether q is true in every repair of d, by the
// recursion of Algorithm 1. It fails when q is invalid, not
// weakly-guarded, or has a cyclic attack graph.
func IsCertain(q schema.Query, d *db.Database) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	if !q.WeaklyGuarded() {
		return false, ErrNotWeaklyGuarded
	}
	if !attack.New(q).IsAcyclic() {
		return false, ErrCyclic
	}
	return isCertain(schema.Ext(q), d, nil), nil
}

// TraceFunc receives one line per step of the Algorithm 1 recursion;
// depth is the recursion depth (for indentation).
type TraceFunc func(depth int, msg string)

// IsCertainTraced is IsCertain with a step-by-step derivation trace, for
// the `cqa explain` command and for debugging.
func IsCertainTraced(q schema.Query, d *db.Database, trace TraceFunc) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	if !q.WeaklyGuarded() {
		return false, ErrNotWeaklyGuarded
	}
	if !attack.New(q).IsAcyclic() {
		return false, ErrCyclic
	}
	t := &tracer{fn: trace}
	return isCertain(schema.Ext(q), d, t), nil
}

// tracer carries the trace callback and the current depth; a nil tracer
// (or nil callback) is silent.
type tracer struct {
	fn    TraceFunc
	depth int
}

func (t *tracer) logf(format string, args ...any) {
	if t == nil || t.fn == nil {
		return
	}
	t.fn(t.depth, fmt.Sprintf(format, args...))
}

func (t *tracer) deeper() *tracer {
	if t == nil || t.fn == nil {
		return t
	}
	return &tracer{fn: t.fn, depth: t.depth + 1}
}

func isCertain(e schema.ExtQuery, d *db.Database, t *tracer) bool {
	f, negated, ok := pick(e.Query)
	if !ok {
		// Every atom is all-key: the database restricted to the query's
		// relations is consistent and is its own unique repair.
		sat := naive.Sat(e, d)
		t.logf("base case: all atoms all-key; satisfaction of {%s} = %v", e, sat)
		return sat
	}
	t.logf("query {%s}: pick unattacked atom %s%s", e, negMark(negated), f)

	keyVars := distinctVars(f.KeyTerms())
	if len(keyVars) > 0 {
		// Reification (Corollary 6.9): key(F) is unattacked, so q is
		// certain iff q[x⃗ ↦ c⃗] is certain for some constants c⃗. All
		// useful candidates appear in the columns where the variables
		// occur in positive atoms (safety guarantees there is one).
		t.logf("reify key(%s) = %v (Corollary 6.9)", f.Rel, keyVars)
		return reify(e, d, keyVars, 0, make(map[string]schema.Term), t)
	}

	if negated {
		return negatedCase(e, f, d, t)
	}
	return positiveCase(e, f, d, t)
}

func negMark(neg bool) string {
	if neg {
		return "¬"
	}
	return ""
}

// pick selects an unattacked non-all-key atom, as in Algorithm 1.
func pick(q schema.Query) (f schema.Atom, negated, ok bool) {
	any := false
	for _, l := range q.Lits {
		if !l.Atom.AllKey() {
			any = true
			break
		}
	}
	if !any {
		return schema.Atom{}, false, false
	}
	g := attack.New(q)
	for _, rel := range g.Atoms() {
		a, _ := q.AtomByRel(rel)
		if a.AllKey() {
			continue
		}
		if g.InDegree(rel) == 0 {
			return a, q.IsNegated(rel), true
		}
	}
	panic(fmt.Sprintf("direct: no unattacked non-all-key atom in %s", q))
}

// reify binds keyVars[i:] to candidate constants and recurses; true when
// some full binding makes the instantiated query certain.
func reify(e schema.ExtQuery, d *db.Database, keyVars []string, i int, sub map[string]schema.Term, t *tracer) bool {
	if i == len(keyVars) {
		t.logf("try reification %v", sub)
		return isCertain(e.Substitute(sub), d, t.deeper())
	}
	x := keyVars[i]
	for _, c := range candidateValues(e.Query, d, x) {
		sub[x] = schema.Const(c)
		if reify(e, d, keyVars, i+1, sub, t) {
			delete(sub, x)
			return true
		}
	}
	delete(sub, x)
	return false
}

// candidateValues returns the constants that can instantiate x: the union
// of the column values at positions where x occurs in positive atoms. A
// certainty witness valuation maps every variable into such a column, so
// the restriction is sound.
func candidateValues(q schema.Query, d *db.Database, x string) []string {
	set := make(map[string]bool)
	for _, p := range q.Positive() {
		r := d.Relation(p.Rel)
		if r == nil {
			continue
		}
		for pos, t := range p.Terms {
			if t.IsVar && t.Name == x {
				for _, v := range r.ColumnValues(pos) {
					set[v] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// positiveCase handles a positive F with ground key: F's block must be
// non-empty and every fact of the block must match F's non-key pattern and
// certify the remaining query.
func positiveCase(e schema.ExtQuery, f schema.Atom, d *db.Database, t *tracer) bool {
	block := d.Block(f.Rel, groundArgs(f.KeyTerms()))
	t.logf("positive %s with ground key: block has %d fact(s)", f, len(block))
	if len(block) == 0 {
		t.logf("block empty: not certain")
		return false
	}
	rest := schema.ExtQuery{Query: e.Query.Without(f.Rel), Diseqs: e.Diseqs}
	for _, a := range block {
		sub, ok := matchNonKey(f, a)
		if !ok {
			t.logf("fact %s does not match the pattern of %s: not certain", a, f)
			return false
		}
		t.logf("fact %s: check the rest under %v", a, sub)
		if !isCertain(rest.Substitute(sub), d, t.deeper()) {
			return false
		}
	}
	return true
}

// negatedCase handles a negated F with ground key, per Lemmas 6.2 and 6.5:
// the remaining query must be certain, and for every matching fact in F's
// block the remaining query with the corresponding disequality must be
// certain (when F has no non-key variables, a matching fact simply makes
// the query uncertain).
func negatedCase(e schema.ExtQuery, f schema.Atom, d *db.Database, t *tracer) bool {
	rest := schema.ExtQuery{Query: e.Query.Without(f.Rel), Diseqs: e.Diseqs}
	t.logf("negated ¬%s with ground key: first check q without it (Lemma 6.5)", f)
	if !isCertain(rest, d, t.deeper()) {
		return false
	}
	yVars := distinctVars(f.NonKeyTerms())
	block := d.Block(f.Rel, groundArgs(f.KeyTerms()))
	t.logf("block of %s has %d fact(s)", f, len(block))
	for _, a := range block {
		sub, ok := matchNonKey(f, a)
		if !ok {
			continue // the fact does not instantiate F
		}
		if len(yVars) == 0 {
			// F ∈ db: Lemma 6.2 makes the query uncertain.
			t.logf("ground negated fact %s present (Lemma 6.2): not certain", a)
			return false
		}
		left := make([]schema.Term, len(yVars))
		right := make([]schema.Term, len(yVars))
		for i, y := range yVars {
			left[i] = schema.Var(y)
			right[i] = sub[y]
		}
		t.logf("fact %s: check the rest with disequality %s", a, schema.NewDiseq(left, right))
		if !isCertain(rest.WithDiseq(schema.NewDiseq(left, right)), d, t.deeper()) {
			return false
		}
	}
	return true
}

// matchNonKey unifies F's non-key pattern with the fact's non-key
// arguments; it returns the variable binding, or ok=false when a constant
// position or a repeated variable disagrees.
func matchNonKey(f schema.Atom, a db.Fact) (map[string]schema.Term, bool) {
	sub := make(map[string]schema.Term)
	for i, t := range f.NonKeyTerms() {
		v := a.Args[f.Key+i]
		if !t.IsVar {
			if t.Name != v {
				return nil, false
			}
			continue
		}
		if prev, seen := sub[t.Name]; seen {
			if prev.Name != v {
				return nil, false
			}
			continue
		}
		sub[t.Name] = schema.Const(v)
	}
	return sub, true
}

func groundArgs(ts []schema.Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		if t.IsVar {
			panic(fmt.Sprintf("direct: variable %s in supposedly ground key", t.Name))
		}
		out[i] = t.Name
	}
	return out
}

func distinctVars(ts []schema.Term) []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range ts {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}
