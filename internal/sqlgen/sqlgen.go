// Package sqlgen translates a consistent first-order rewriting into a
// single SQL query, substantiating the paper's point that membership of
// CERTAINTY(q) in FO means the problem "can be solved using standard SQL
// database technology".
//
// The translation is the textbook active-domain one: an `adom` CTE unions
// every column of every relation the formula mentions; quantifiers become
// (NOT) EXISTS subqueries over `adom`; atoms become EXISTS subqueries over
// their table. The result is one self-contained SELECT statement returning
// a single boolean column `certain`.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/fo"
	"cqa/internal/schema"
)

// Options controls identifier rendering.
type Options struct {
	// LowercaseTables renders relation names in lower case (common SQL
	// convention). Column names are always c1, c2, ….
	LowercaseTables bool
}

// Translate renders a sentence as a single SQL statement. The formula must
// be a sentence (no free variables).
func Translate(f fo.Formula, opt Options) (string, error) {
	if free := fo.FreeVars(f); !free.Empty() {
		return "", fmt.Errorf("sqlgen: formula has free variables %s", free)
	}
	g := &generator{opt: opt, arity: map[string]int{}}
	g.collectRelations(f)
	var b strings.Builder
	b.WriteString("WITH adom(v) AS (\n")
	b.WriteString(g.adomCTE())
	b.WriteString("\n)\nSELECT CASE WHEN\n  ")
	expr := g.expr(f, map[string]string{}, 1)
	b.WriteString(expr)
	b.WriteString("\nTHEN 1 ELSE 0 END AS certain;")
	return b.String(), nil
}

type generator struct {
	opt   Options
	arity map[string]int
	alias int
}

func (g *generator) table(rel string) string {
	if g.opt.LowercaseTables {
		return strings.ToLower(rel)
	}
	return rel
}

func (g *generator) collectRelations(f fo.Formula) {
	switch h := f.(type) {
	case fo.Atom:
		g.arity[h.Rel] = len(h.Terms)
	case fo.Eq, fo.Truth:
	case fo.Not:
		g.collectRelations(h.F)
	case fo.And:
		for _, sub := range h.Fs {
			g.collectRelations(sub)
		}
	case fo.Or:
		for _, sub := range h.Fs {
			g.collectRelations(sub)
		}
	case fo.Implies:
		g.collectRelations(h.L)
		g.collectRelations(h.R)
	case fo.Exists:
		g.collectRelations(h.Body)
	case fo.Forall:
		g.collectRelations(h.Body)
	default:
		panic(fmt.Sprintf("sqlgen: unknown formula %T", f))
	}
}

// adomCTE unions every column of every mentioned relation.
func (g *generator) adomCTE() string {
	rels := make([]string, 0, len(g.arity))
	for r := range g.arity {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	var parts []string
	for _, r := range rels {
		for i := 1; i <= g.arity[r]; i++ {
			parts = append(parts, fmt.Sprintf("  SELECT c%d AS v FROM %s", i, g.table(r)))
		}
	}
	if len(parts) == 0 {
		// A formula without atoms: an empty domain suffices.
		return "  SELECT NULL AS v WHERE 1 = 0"
	}
	return strings.Join(parts, "\n  UNION\n")
}

// expr renders a formula as a SQL boolean expression; env maps logical
// variables to SQL expressions; depth controls indentation.
func (g *generator) expr(f fo.Formula, env map[string]string, depth int) string {
	pad := strings.Repeat("  ", depth)
	switch h := f.(type) {
	case fo.Truth:
		if h {
			return "(1 = 1)"
		}
		return "(1 = 0)"
	case fo.Eq:
		return "(" + g.term(h.L, env) + " = " + g.term(h.R, env) + ")"
	case fo.Atom:
		g.alias++
		a := fmt.Sprintf("t%d", g.alias)
		var conds []string
		for i, t := range h.Terms {
			conds = append(conds, fmt.Sprintf("%s.c%d = %s", a, i+1, g.term(t, env)))
		}
		return fmt.Sprintf("EXISTS (SELECT 1 FROM %s %s WHERE %s)",
			g.table(h.Rel), a, strings.Join(conds, " AND "))
	case fo.Not:
		return "NOT " + g.expr(h.F, env, depth)
	case fo.And:
		if len(h.Fs) == 0 {
			return "(1 = 1)"
		}
		parts := make([]string, len(h.Fs))
		for i, sub := range h.Fs {
			parts[i] = g.expr(sub, env, depth+1)
		}
		return "(" + strings.Join(parts, "\n"+pad+"AND ") + ")"
	case fo.Or:
		if len(h.Fs) == 0 {
			return "(1 = 0)"
		}
		parts := make([]string, len(h.Fs))
		for i, sub := range h.Fs {
			parts[i] = g.expr(sub, env, depth+1)
		}
		return "(" + strings.Join(parts, "\n"+pad+"OR ") + ")"
	case fo.Implies:
		return "(NOT " + g.expr(h.L, env, depth+1) + "\n" + pad + "OR " + g.expr(h.R, env, depth+1) + ")"
	case fo.Exists:
		return g.quantifier(h.Vars, h.Body, env, depth, false)
	case fo.Forall:
		return g.quantifier(h.Vars, fo.Not{F: h.Body}, env, depth, true)
	default:
		panic(fmt.Sprintf("sqlgen: unknown formula %T", f))
	}
}

// quantifier renders ∃x⃗ body (negated=false) or ∀x⃗ body, the latter as
// NOT EXISTS x⃗ (¬body); body has already been negated by the caller.
func (g *generator) quantifier(vars []string, body fo.Formula, env map[string]string, depth int, negated bool) string {
	pad := strings.Repeat("  ", depth)
	inner := make(map[string]string, len(env))
	for k, v := range env {
		inner[k] = v
	}
	var froms []string
	for _, x := range vars {
		g.alias++
		a := fmt.Sprintf("d%d", g.alias)
		froms = append(froms, "adom "+a)
		inner[x] = a + ".v"
	}
	prefix := "EXISTS"
	if negated {
		prefix = "NOT EXISTS"
	}
	return fmt.Sprintf("%s (SELECT 1 FROM %s WHERE\n%s  %s)",
		prefix, strings.Join(froms, ", "), pad, g.expr(body, inner, depth+1))
}

func (g *generator) term(t schema.Term, env map[string]string) string {
	if t.IsVar {
		e, ok := env[t.Name]
		if !ok {
			panic(fmt.Sprintf("sqlgen: unbound variable %s", t.Name))
		}
		return e
	}
	return "'" + strings.ReplaceAll(t.Name, "'", "''") + "'"
}
