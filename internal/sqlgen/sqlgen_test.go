package sqlgen_test

import (
	"strings"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
	"cqa/internal/sqlgen"
)

func mustSQL(t *testing.T, f fo.Formula) string {
	t.Helper()
	s, err := sqlgen.Translate(f, sqlgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func balanced(s string) bool {
	depth := 0
	for _, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}

func TestTranslateQ3Rewriting(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	sql := mustSQL(t, f)
	for _, frag := range []string{
		"WITH adom(v) AS",
		"SELECT c1 AS v FROM P",
		"SELECT c2 AS v FROM N",
		"EXISTS (SELECT 1 FROM P",
		"NOT EXISTS (SELECT 1 FROM adom",
		"THEN 1 ELSE 0 END AS certain;",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL lacks fragment %q:\n%s", frag, sql)
		}
	}
	if !balanced(sql) {
		t.Error("unbalanced parentheses in SQL")
	}
}

func TestTranslateIsSingleStatement(t *testing.T) {
	q := parse.MustQuery("S(x), !N1('c' | x), !N2('c' | x)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	sql := mustSQL(t, f)
	if strings.Count(sql, ";") != 1 || !strings.HasSuffix(sql, ";") {
		t.Error("translation should be exactly one statement")
	}
}

func TestTranslateRejectsOpenFormula(t *testing.T) {
	f := fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{schema.Var("x")}}
	if _, err := sqlgen.Translate(f, sqlgen.Options{}); err == nil {
		t.Error("open formula should be rejected")
	}
}

func TestTranslateConstantsEscaped(t *testing.T) {
	f := fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{schema.Const("o'hara")}}
	sql := mustSQL(t, f)
	if !strings.Contains(sql, "'o''hara'") {
		t.Errorf("constant not escaped:\n%s", sql)
	}
}

func TestTranslateLowercaseOption(t *testing.T) {
	f := fo.Atom{Rel: "Likes", Key: 2, Terms: []schema.Term{schema.Const("a"), schema.Const("b")}}
	sql, err := sqlgen.Translate(f, sqlgen.Options{LowercaseTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM likes") || strings.Contains(sql, "FROM Likes") {
		t.Errorf("lowercase option ignored:\n%s", sql)
	}
}

func TestTranslateTruthAndConnectives(t *testing.T) {
	f := fo.NewAnd(fo.Truth(true),
		fo.NewOr(fo.Truth(false),
			fo.Not{F: fo.Atom{Rel: "R", Key: 1, Terms: []schema.Term{schema.Const("a")}}}))
	sql := mustSQL(t, f)
	for _, frag := range []string{"(1 = 1)", "(1 = 0)", "NOT EXISTS"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL lacks %q:\n%s", frag, sql)
		}
	}
	if !balanced(sql) {
		t.Error("unbalanced parentheses")
	}
}

func TestTranslateNoAtoms(t *testing.T) {
	sql := mustSQL(t, fo.Truth(true))
	if !strings.Contains(sql, "WHERE 1 = 0") {
		t.Errorf("empty adom CTE expected:\n%s", sql)
	}
}

// Every rewriting of the paper's FO example queries translates to
// balanced, single-statement SQL.
func TestTranslatePaperQueries(t *testing.T) {
	for _, src := range []string{
		"P(x | y), !N('c' | y)",
		"S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)",
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"Likes(p, t), !Born(p | t), !Lives(p | t)",
	} {
		f, err := rewrite.Rewrite(parse.MustQuery(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		sql := mustSQL(t, f)
		if !balanced(sql) {
			t.Errorf("%s: unbalanced SQL", src)
		}
		if !strings.HasPrefix(sql, "WITH adom(v) AS") {
			t.Errorf("%s: missing adom CTE", src)
		}
	}
}
