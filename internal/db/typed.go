package db

import (
	"fmt"

	"cqa/internal/schema"
)

// TypeTransform implements the Section 3 remark: because q is
// self-join-free, any database can be transformed into one that is typed
// relative to q without changing the CERTAINTY answer. For every relation
// of q and every position:
//
//   - a position holding variable x maps value a to the typed constant
//     "x·a" — positions sharing a variable share a type, so joins are
//     preserved, and distinct variables get disjoint types;
//   - a position holding constant c keeps the value c and prefixes every
//     other value with "≁" so that it can never accidentally equal c (or
//     any typed constant).
//
// The per-position maps are injective, so blocks, consistency, and repair
// structure are preserved exactly. Relations not mentioned by q are
// dropped (they cannot influence the answer).
func TypeTransform(q schema.Query, d *Database) (*Database, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := New()
	for _, atom := range q.Atoms() {
		if err := out.DeclareRelation(atom.Rel, atom.Arity(), atom.Key); err != nil {
			return nil, err
		}
		rel := d.Relation(atom.Rel)
		if rel == nil {
			continue
		}
		if rel.Arity != atom.Arity() || rel.Key != atom.Key {
			return nil, fmt.Errorf("db: relation %s has signature [%d, %d] in the database but [%d, %d] in the query",
				atom.Rel, rel.Arity, rel.Key, atom.Arity(), atom.Key)
		}
		for _, f := range d.Facts(atom.Rel) {
			args := make([]string, len(f.Args))
			for i, v := range f.Args {
				args[i] = typedValue(atom.Terms[i], v)
			}
			if err := out.Insert(Fact{Rel: atom.Rel, Args: args}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func typedValue(term schema.Term, v string) string {
	if term.IsVar {
		return term.Name + "·" + v
	}
	if v == term.Name {
		return v
	}
	return "≁" + v
}
