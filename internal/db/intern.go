package db

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the dictionary-encoded ("interned") read-only view
// of a Database that the compiled first-order evaluator runs against. Every
// constant is mapped to a dense int32 id, every relation gets an
// open-addressing hash index over its interned tuples plus per-column
// posting lists (the sorted distinct ids of each column), and the active
// domain becomes a sorted []int32. See docs/EVAL.md.
//
// An Interned is immutable after construction and safe for unbounded
// concurrent readers. Dictionaries are append-only and may be shared by
// the Interned views of consecutive store versions (InternNext), so ids
// are stable across versions: an index built for an untouched relation of
// version v is reused verbatim by version v+1.

// dict is an append-only mapping between constant strings and dense int32
// ids. It may be shared by many Interned views; all access to the mutable
// map/slice goes through the mutex. Ids once assigned are never reused,
// so a value's id is identical in every version that knows it.
type dict struct {
	mu   sync.Mutex
	ids  map[string]int32
	vals []string
}

func newDict() *dict {
	return &dict{ids: make(map[string]int32)}
}

// addAll interns every value in vs (sorted first for id determinism) and
// returns the new dictionary size and a snapshot of the value table.
func (dc *dict) addAll(vs []string) (int32, []string) {
	sorted := append([]string(nil), vs...)
	sort.Strings(sorted)
	dc.mu.Lock()
	defer dc.mu.Unlock()
	for _, v := range sorted {
		if _, ok := dc.ids[v]; !ok {
			dc.ids[v] = int32(len(dc.vals))
			dc.vals = append(dc.vals, v)
		}
	}
	return int32(len(dc.vals)), dc.vals
}

// lookup returns the id for v if the dictionary knows it.
func (dc *dict) lookup(v string) (int32, bool) {
	dc.mu.Lock()
	id, ok := dc.ids[v]
	dc.mu.Unlock()
	return id, ok
}

// InternedRelation is the compiled-evaluator view of one relation: a flat
// tuple array, an open-addressing hash set over the tuples, and per-column
// posting lists. Read-only after construction.
type InternedRelation struct {
	src   *Relation // identity for cross-version reuse, never dereferenced after build
	Arity int
	Key   int

	rows int
	data []int32 // rows*Arity interned tuples, row-major
	// table is an open-addressing hash table at load factor ≤ 0.5:
	// entries are row+1, 0 means empty, mask = len(table)-1.
	table []int32
	mask  uint32

	postings [][]int32 // per column: sorted distinct ids

	// blocks and maxBlock snapshot the key-group statistics of the source
	// relation at build time (number of blocks, size of the largest
	// block). The planner consults them to choose and justify an
	// evaluation strategy without touching the mutable database.
	blocks   int
	maxBlock int

	// blockIdx lazily groups rows by key prefix for the delta layer's
	// dirty-block diffs. Built at most once per view; atomic so racing
	// readers may each build identical indexes with the last published
	// winning.
	blockIdx atomic.Pointer[map[uint64][]int32]

	// colSets and holeIdx are the bitmap evaluator's lazy indexes (see
	// bitset.go): per-column posting lists as IDSets, and per-hole-column
	// groupings of rows by rest-of-row. Same build-once-atomically idiom
	// as blockIdx; COW-shared relations carry them across versions.
	colSets atomic.Pointer[[]*IDSet]
	holeIdx []atomic.Pointer[holeIndex]
}

// Rows returns the number of stored tuples.
func (r *InternedRelation) Rows() int { return r.rows }

// NumBlocks returns the number of blocks (maximal key-equal fact groups)
// the relation had when this view was built.
func (r *InternedRelation) NumBlocks() int { return r.blocks }

// MaxBlockSize returns the size of the relation's largest block at build
// time (0 for an empty relation). MaxBlockSize == 1 means the relation is
// consistent: it contributes exactly one choice to every repair.
func (r *InternedRelation) MaxBlockSize() int { return r.maxBlock }

// Row returns the i-th interned tuple as a shared subslice of the
// relation's row-major tuple array. The caller must not mutate it. Row
// order is the build order of the view; it is deterministic for a given
// build history but not sorted.
func (r *InternedRelation) Row(i int) []int32 {
	return r.data[i*r.Arity : (i+1)*r.Arity]
}

// Posting returns the sorted distinct ids of column col. The caller must
// not mutate the result.
func (r *InternedRelation) Posting(col int) []int32 { return r.postings[col] }

// PostingHas reports whether id occurs in column col of some stored
// tuple (binary search over the sorted posting list).
func (r *InternedRelation) PostingHas(col int, id int32) bool {
	p := r.postings[col]
	i := sort.Search(len(p), func(i int) bool { return p[i] >= id })
	return i < len(p) && p[i] == id
}

// hashKey64 is FNV-1a/64 over the int32 words of a key prefix; it keys
// the lazy block index.
func hashKey64(key []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range key {
		u := uint32(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= 1099511628211
		}
	}
	return h
}

// BlockRows returns the indexes of every row whose key prefix equals
// key (i.e. the rows of one block), in build order. The first call
// builds a block index over the whole relation; later calls are O(block
// size). The caller must not mutate the result.
func (r *InternedRelation) BlockRows(key []int32) []int32 {
	if len(key) != r.Key || r.rows == 0 {
		return nil
	}
	idx := r.blockIdx.Load()
	if idx == nil {
		m := make(map[uint64][]int32, r.blocks)
		for i := 0; i < r.rows; i++ {
			h := hashKey64(r.Row(i)[:r.Key])
			m[h] = append(m[h], int32(i))
		}
		idx = &m
		r.blockIdx.Store(idx)
	}
	rows := (*idx)[hashKey64(key)]
	// Filter hash collisions by comparing the actual key prefix.
	out := rows
	filtered := false
	for n, i := range rows {
		row := r.Row(int(i))
		match := true
		for c, v := range key {
			if row[c] != v {
				match = false
				break
			}
		}
		if match {
			if filtered {
				out = append(out, i)
			}
			continue
		}
		if !filtered {
			out = append([]int32(nil), rows[:n]...)
			filtered = true
		}
	}
	return out
}

// hashTuple is FNV-1a over the int32 words of a tuple.
func hashTuple(args []int32) uint32 {
	h := uint32(2166136261)
	for _, v := range args {
		h ^= uint32(v)
		h *= 16777619
	}
	return h
}

// Has reports whether the interned tuple args is a fact of the relation.
// It performs no allocation.
func (r *InternedRelation) Has(args []int32) bool {
	if len(args) != r.Arity || r.rows == 0 {
		return false
	}
	h := hashTuple(args) & r.mask
	for {
		e := r.table[h]
		if e == 0 {
			return false
		}
		row := r.data[int(e-1)*r.Arity : int(e)*r.Arity]
		match := true
		for i, v := range args {
			if row[i] != v {
				match = false
				break
			}
		}
		if match {
			return true
		}
		h = (h + 1) & r.mask
	}
}

func (r *InternedRelation) insert(rowIdx int) {
	row := r.data[rowIdx*r.Arity : (rowIdx+1)*r.Arity]
	h := hashTuple(row) & r.mask
	for r.table[h] != 0 {
		h = (h + 1) & r.mask
	}
	r.table[h] = int32(rowIdx + 1)
}

// Interned is an immutable dictionary-encoded view of a Database at one
// point in time. It is safe for unbounded concurrent readers.
type Interned struct {
	dc *dict
	// n and vals snapshot the dictionary at build time: every id used by
	// this view is < n, and vals[:n] is stable even if the shared
	// dictionary grows for later versions.
	n    int32
	vals []string

	rels   map[string]*InternedRelation
	domain []int32 // sorted ids occurring in the database

	// domainSet lazily memoizes the active domain as an IDSet for the
	// bitmap evaluator (bitset.go).
	domainSet atomic.Pointer[IDSet]
}

// Intern builds a fresh interned view of d with its own dictionary.
// d must not be mutated while Intern runs.
func Intern(d *Database) *Interned {
	return internWith(newDict(), nil, d)
}

// InternNext builds the interned view of next reusing prev's dictionary
// and, for every relation of next that is pointer-identical to the
// relation prev was built from (the copy-on-write sharing of the store
// layer), prev's index verbatim. Ids are stable across the chain, so a
// reused index stays correct. next must not be mutated while InternNext
// runs, and the shared relations must be immutable (the CloneCOW
// contract).
func InternNext(prev *Interned, next *Database) *Interned {
	if prev == nil {
		return Intern(next)
	}
	return internWith(prev.dc, prev, next)
}

func internWith(dc *dict, prev *Interned, d *Database) *Interned {
	ix := &Interned{dc: dc, rels: make(map[string]*InternedRelation, len(d.rels))}

	// Collect the values the dictionary does not know yet, in one pass,
	// and intern them in sorted order so ids are deterministic for a
	// given build history.
	var fresh []string
	seen := make(map[string]bool)
	dc.mu.Lock()
	for _, r := range d.rels {
		for _, col := range r.colVals {
			for v := range col {
				if _, ok := dc.ids[v]; !ok && !seen[v] {
					seen[v] = true
					fresh = append(fresh, v)
				}
			}
		}
	}
	dc.mu.Unlock()
	ix.n, ix.vals = dc.addAll(fresh)

	// Index every relation, reusing prev's indexes for shared relations.
	for name, r := range d.rels {
		if prev != nil {
			if pr, ok := prev.rels[name]; ok && pr.src == r {
				ix.rels[name] = pr
				continue
			}
		}
		ix.rels[name] = ix.buildRelation(r)
	}

	// Active domain: ids of every value occurring in some column.
	domSet := make(map[int32]bool)
	for _, ir := range ix.rels {
		for _, p := range ir.postings {
			for _, id := range p {
				domSet[id] = true
			}
		}
	}
	ix.domain = make([]int32, 0, len(domSet))
	for id := range domSet {
		ix.domain = append(ix.domain, id)
	}
	sort.Slice(ix.domain, func(i, j int) bool { return ix.domain[i] < ix.domain[j] })
	return ix
}

func (ix *Interned) buildRelation(r *Relation) *InternedRelation {
	ir := &InternedRelation{src: r, Arity: r.Arity, Key: r.Key, rows: len(r.facts)}
	ir.holeIdx = make([]atomic.Pointer[holeIndex], r.Arity)
	ir.blocks = len(r.blocks)
	for _, b := range r.blocks {
		if len(b) > ir.maxBlock {
			ir.maxBlock = len(b)
		}
	}
	ir.data = make([]int32, 0, ir.rows*r.Arity)
	size := uint32(4)
	for size < uint32(ir.rows)*2 {
		size *= 2
	}
	ir.table = make([]int32, size)
	ir.mask = size - 1
	row := 0
	for _, f := range r.facts {
		for _, a := range f.Args {
			id, _ := ix.dc.lookup(a)
			ir.data = append(ir.data, id)
		}
		ir.insert(row)
		row++
	}
	ir.postings = make([][]int32, r.Arity)
	for i, col := range r.colVals {
		p := make([]int32, 0, len(col))
		for v := range col {
			id, _ := ix.dc.lookup(v)
			p = append(p, id)
		}
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
		ir.postings[i] = p
	}
	return ir
}

// NumIDs returns the dictionary size this view was built against; every
// id stored in the view is < NumIDs. Synthetic ids handed out by the
// compiler for constants outside the dictionary start at NumIDs.
func (ix *Interned) NumIDs() int32 { return ix.n }

// ID returns the id of a constant known to this view's dictionary
// snapshot.
func (ix *Interned) ID(v string) (int32, bool) {
	id, ok := ix.dc.lookup(v)
	if !ok || id >= ix.n {
		return 0, false
	}
	return id, true
}

// Value returns the constant for an id of this view. Synthetic ids
// (≥ NumIDs) have no stored value and return "".
func (ix *Interned) Value(id int32) string {
	if id < 0 || id >= ix.n {
		return ""
	}
	return ix.vals[id]
}

// Relation returns the interned relation, or nil when the database does
// not declare it (atoms over it are simply false).
func (ix *Interned) Relation(name string) *InternedRelation { return ix.rels[name] }

// DomainIDs returns the sorted ids of the database's active domain. The
// caller must not mutate the result.
func (ix *Interned) DomainIDs() []int32 { return ix.domain }

// SameDict reports whether two views share one append-only dictionary
// (the InternNext chain), which makes their ids directly comparable: a
// value known to both has the same id in both. The delta layer relies
// on this to compare recorded support sets against later versions'
// dirty blocks without re-resolving strings.
func (ix *Interned) SameDict(o *Interned) bool { return o != nil && ix.dc == o.dc }

// Interned returns the memoized interned view of the database, building
// it on first use. The result is invalidated by any write; racing readers
// may each build (identical) views, the last one published wins. The
// returned view must be treated as immutable.
func (d *Database) Interned() *Interned {
	if p := d.interned.Load(); p != nil {
		return p
	}
	ix := Intern(d)
	d.interned.Store(ix)
	return ix
}

// InternedIfBuilt returns the memoized interned view if one has been
// built since the last write, else nil. The store layer uses it to decide
// whether to chain dictionaries across versions.
func (d *Database) InternedIfBuilt() *Interned { return d.interned.Load() }

// SeedInterned installs a prebuilt interned view (from InternNext) as the
// memoized view of d. ix must have been built from exactly d's current
// contents.
func (d *Database) SeedInterned(ix *Interned) { d.interned.Store(ix) }
