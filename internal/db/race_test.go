package db

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReaders exercises every read path from many goroutines at
// once. Run under `go test -race`; the Database documents that readers
// never race with each other, including the racy-fill memoization of
// ActiveDomain and NumRepairs.
func TestConcurrentReaders(t *testing.T) {
	d := New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 3, 2)
	for i := 0; i < 40; i++ {
		d.MustInsert(F("R", fmt.Sprintf("k%d", i%10), fmt.Sprintf("v%d", i)))
		d.MustInsert(F("S", fmt.Sprintf("a%d", i%8), fmt.Sprintf("b%d", i%4), fmt.Sprintf("c%d", i)))
	}
	wantDom := len(d.Clone().ActiveDomain())
	wantRepairs := d.Clone().NumRepairs()

	const readers = 32
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := len(d.ActiveDomain()); got != wantDom {
					t.Errorf("ActiveDomain size = %d, want %d", got, wantDom)
					return
				}
				if got := d.NumRepairs(); got != wantRepairs {
					t.Errorf("NumRepairs = %v, want %v", got, wantRepairs)
					return
				}
				d.Has(F("R", "k1", "v1"))
				d.Facts("S")
				d.Block("R", []string{fmt.Sprintf("k%d", i%10)})
				d.Blocks("R", func(b []Fact) bool { return true })
				d.Relation("S").ColumnValues(g % 3)
				d.IsConsistent()
				_ = d.Size()
			}
		}(g)
	}
	wg.Wait()
}

// TestMemoInvalidation checks that writes invalidate the memoized
// ActiveDomain and NumRepairs.
func TestMemoInvalidation(t *testing.T) {
	d := New()
	d.MustDeclare("R", 2, 1)
	d.MustInsert(F("R", "a", "b"))
	if got := d.NumRepairs(); got != 1 {
		t.Fatalf("NumRepairs = %v, want 1", got)
	}
	if got := len(d.ActiveDomain()); got != 2 {
		t.Fatalf("|ActiveDomain| = %d, want 2", got)
	}
	d.MustInsert(F("R", "a", "c"))
	if got := d.NumRepairs(); got != 2 {
		t.Fatalf("after insert: NumRepairs = %v, want 2", got)
	}
	if got := len(d.ActiveDomain()); got != 3 {
		t.Fatalf("after insert: |ActiveDomain| = %d, want 3", got)
	}
	d.Remove(F("R", "a", "c"))
	if got := d.NumRepairs(); got != 1 {
		t.Fatalf("after remove: NumRepairs = %v, want 1", got)
	}
}
