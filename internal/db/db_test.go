package db_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqa/internal/db"
)

func girlsBoys(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	// Figure 1 of the paper.
	for _, f := range []db.Fact{
		db.F("R", "Alice", "Bob"), db.F("R", "Alice", "George"),
		db.F("R", "Maria", "Bob"), db.F("R", "Maria", "John"),
		db.F("S", "Bob", "Alice"), db.F("S", "Bob", "Maria"),
		db.F("S", "George", "Alice"), db.F("S", "George", "Maria"),
	} {
		d.MustInsert(f)
	}
	return d
}

func TestFigure1Blocks(t *testing.T) {
	d := girlsBoys(t)
	if d.Size() != 8 {
		t.Fatalf("size = %d, want 8", d.Size())
	}
	if d.IsConsistent() {
		t.Fatal("Figure 1 database should be inconsistent")
	}
	if got := len(d.Block("R", []string{"Alice"})); got != 2 {
		t.Errorf("Alice block = %d facts, want 2", got)
	}
	if got := d.NumRepairs(); got != 16 {
		t.Errorf("repairs = %v, want 2^4 = 16", got)
	}
}

func TestRepairEnumeration(t *testing.T) {
	d := girlsBoys(t)
	count := 0
	seen := make(map[string]bool)
	d.Repairs(nil, func(r *db.Database) bool {
		count++
		if !r.IsConsistent() {
			t.Fatal("repair is inconsistent")
		}
		if r.Size() != 4 {
			t.Fatalf("repair size = %d, want 4 (one per block)", r.Size())
		}
		key := r.String()
		if seen[key] {
			t.Fatal("duplicate repair enumerated")
		}
		seen[key] = true
		return true
	})
	if count != 16 {
		t.Fatalf("enumerated %d repairs, want 16", count)
	}
}

func TestRepairEarlyStop(t *testing.T) {
	d := girlsBoys(t)
	count := 0
	d.Repairs(nil, func(r *db.Database) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d callbacks", count)
	}
}

func TestRepairsRestrictedRelations(t *testing.T) {
	d := girlsBoys(t)
	count := 0
	d.Repairs([]string{"R"}, func(r *db.Database) bool {
		count++
		if len(r.Facts("S")) != 0 {
			t.Fatal("restricted repair contains S-facts")
		}
		return true
	})
	if count != 4 {
		t.Fatalf("R-only repairs = %d, want 4", count)
	}
}

func TestInsertDuplicateIsNoop(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustInsert(db.F("R", "a", "b"))
	d.MustInsert(db.F("R", "a", "b"))
	if d.Size() != 1 {
		t.Fatalf("size = %d after duplicate insert", d.Size())
	}
}

func TestInsertErrors(t *testing.T) {
	d := db.New()
	if err := d.Insert(db.F("R", "a")); err == nil {
		t.Error("insert into undeclared relation should fail")
	}
	d.MustDeclare("R", 2, 1)
	if err := d.Insert(db.F("R", "a")); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestDeclareClash(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	if err := d.DeclareRelation("R", 2, 1); err != nil {
		t.Errorf("idempotent declare failed: %v", err)
	}
	if err := d.DeclareRelation("R", 2, 2); err == nil {
		t.Error("signature clash should fail")
	}
	if err := d.DeclareRelation("X", 0, 0); err == nil {
		t.Error("invalid signature should fail")
	}
}

func TestHasAndFactsOrder(t *testing.T) {
	d := girlsBoys(t)
	if !d.Has(db.F("R", "Alice", "Bob")) {
		t.Error("Has missed a present fact")
	}
	if d.Has(db.F("R", "Alice", "John")) {
		t.Error("Has found a ghost")
	}
	if d.Has(db.F("Q", "a")) {
		t.Error("Has on unknown relation should be false")
	}
	facts := d.Facts("R")
	for i := 1; i < len(facts); i++ {
		if facts[i-1].String() > facts[i].String() {
			t.Fatal("Facts not sorted")
		}
	}
}

func TestActiveDomain(t *testing.T) {
	d := girlsBoys(t)
	dom := d.ActiveDomain()
	want := []string{"Alice", "Bob", "George", "John", "Maria"}
	if len(dom) != len(want) {
		t.Fatalf("active domain = %v", dom)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("active domain = %v, want %v", dom, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := girlsBoys(t)
	c := d.Clone()
	c.MustInsert(db.F("R", "Zoe", "Bob"))
	if d.Has(db.F("R", "Zoe", "Bob")) {
		t.Error("Clone shares storage")
	}
	if c.Size() != d.Size()+1 {
		t.Error("Clone lost facts")
	}
}

func TestColumnValues(t *testing.T) {
	d := girlsBoys(t)
	r := d.Relation("R")
	col0 := r.ColumnValues(0)
	if len(col0) != 2 || col0[0] != "Alice" || col0[1] != "Maria" {
		t.Errorf("column 0 = %v", col0)
	}
	if got := r.NumBlocks(); got != 2 {
		t.Errorf("blocks = %d", got)
	}
}

func TestBlocksIteration(t *testing.T) {
	d := girlsBoys(t)
	total := 0
	d.Blocks("R", func(b []db.Fact) bool {
		total += len(b)
		return true
	})
	if total != 4 {
		t.Errorf("facts via blocks = %d, want 4", total)
	}
	// Early stop.
	n := 0
	d.Blocks("R", func(b []db.Fact) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d blocks", n)
	}
}

// Property: the number of enumerated repairs equals the product of block
// sizes, and every repair picks exactly one fact per block.
func TestRepairCountProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 1, 1)
		keys := []string{"k1", "k2", "k3"}
		vals := []string{"v1", "v2", "v3"}
		for i := 0; i < 6; i++ {
			d.MustInsert(db.F("R", keys[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		d.MustInsert(db.F("S", "s"))
		want := d.NumRepairs()
		got := 0
		d.Repairs(nil, func(r *db.Database) bool {
			got++
			return true
		})
		return float64(got) == want
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// The enumeration callback's database must not leak mutations across
// iterations: after enumeration the original database is intact.
func TestRepairsDoNotMutateOriginal(t *testing.T) {
	d := girlsBoys(t)
	before := d.String()
	d.Repairs(nil, func(r *db.Database) bool { return true })
	if d.String() != before {
		t.Error("Repairs mutated the original database")
	}
}

// Block iteration order must depend only on the stored content: a
// database reached by inserts and removes iterates exactly like one
// built directly from the surviving facts.
func TestBlocksDeterministicAfterRemoval(t *testing.T) {
	build := func(insert []db.Fact, remove []db.Fact) *db.Database {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		for _, f := range insert {
			d.MustInsert(f)
		}
		for _, f := range remove {
			d.Remove(f)
		}
		return d
	}
	blockOrder := func(d *db.Database) []string {
		var order []string
		d.Blocks("R", func(b []db.Fact) bool {
			order = append(order, b[0].Args[0])
			return true
		})
		return order
	}
	// Same surviving facts via two different histories.
	a := build(
		[]db.Fact{db.F("R", "c", "1"), db.F("R", "a", "1"), db.F("R", "b", "1")},
		[]db.Fact{db.F("R", "c", "1")})
	b := build(
		[]db.Fact{db.F("R", "a", "1"), db.F("R", "b", "1")},
		nil)
	ga, gb := blockOrder(a), blockOrder(b)
	if len(ga) != 2 || ga[0] != "a" || ga[1] != "b" {
		t.Fatalf("block order after removal = %v, want [a b]", ga)
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("histories diverge: %v vs %v", ga, gb)
		}
	}
	// Re-inserting a removed block key lands it back in sorted position.
	a.MustInsert(db.F("R", "aa", "1"))
	if got := blockOrder(a); got[0] != "a" || got[1] != "aa" || got[2] != "b" {
		t.Fatalf("block order after re-insert = %v, want [a aa b]", got)
	}
}

// Removal must keep the column value index exact: removed-only values
// disappear, shared values survive while referenced.
func TestColumnValuesExactAfterRemoval(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustInsert(db.F("R", "a", "x"))
	d.MustInsert(db.F("R", "a", "y"))
	d.MustInsert(db.F("R", "b", "x"))
	d.Remove(db.F("R", "a", "x"))
	r := d.Relation("R")
	if got := r.ColumnValues(0); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("column 0 after removal = %v, want [a b]", got)
	}
	d.Remove(db.F("R", "a", "y"))
	if got := r.ColumnValues(0); len(got) != 1 || got[0] != "b" {
		t.Errorf("column 0 after removing all a-facts = %v, want [b]", got)
	}
	if got := r.ColumnValues(1); len(got) != 1 || got[0] != "x" {
		t.Errorf("column 1 = %v, want [x]", got)
	}
	if r.NumBlocks() != 1 {
		t.Errorf("blocks = %d, want 1", r.NumBlocks())
	}
	// Removing an absent fact is a no-op.
	d.Remove(db.F("R", "z", "z"))
	if d.Size() != 1 {
		t.Errorf("size = %d after no-op removal, want 1", d.Size())
	}
}

// A COW clone shares untouched relations and deep-copies named ones;
// mutating the copied relation must not leak into the original.
func TestCloneCOW(t *testing.T) {
	d := girlsBoys(t)
	c := d.CloneCOW("R")
	c.MustInsert(db.F("R", "Zoe", "Bob"))
	c.Remove(db.F("R", "Alice", "Bob"))
	if d.Has(db.F("R", "Zoe", "Bob")) || !d.Has(db.F("R", "Alice", "Bob")) {
		t.Fatal("CloneCOW leaked R mutations into the original")
	}
	if !c.Has(db.F("S", "Bob", "Alice")) {
		t.Fatal("CloneCOW lost shared relation S")
	}
	if c.Size() != d.Size() {
		t.Fatalf("clone size = %d, original %d", c.Size(), d.Size())
	}
	if names := c.RelationNames(); len(names) != 2 {
		t.Fatalf("clone relations = %v", names)
	}
	// Declaring a new relation on the clone must not appear on the original.
	c.MustDeclare("T", 1, 1)
	if d.Relation("T") != nil {
		t.Fatal("CloneCOW shares the relation registry")
	}
}

func TestStringFormat(t *testing.T) {
	d := db.New()
	d.MustDeclare("R", 3, 2)
	d.MustInsert(db.F("R", "a", "b", "c"))
	if got := d.String(); got != "R(a, b | c)\n" {
		t.Errorf("String = %q", got)
	}
}

func TestRelationNames(t *testing.T) {
	d := girlsBoys(t)
	names := d.RelationNames()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("names = %v", names)
	}
}
