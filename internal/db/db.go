// Package db implements the (possibly inconsistent) database model of the
// paper: a finite set of facts over relations with primary-key signatures
// [n, k]. It provides blocks (maximal sets of key-equal facts), consistency
// checking, repair enumeration and counting, and the column/key indexes
// used by the first-order model checker.
package db

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Fact is an R-fact: a relation name and constant arguments.
type Fact struct {
	Rel  string
	Args []string
}

// F is shorthand for constructing a fact.
func F(rel string, args ...string) Fact { return Fact{Rel: rel, Args: args} }

// String renders the fact without signature information.
func (f Fact) String() string {
	return f.Rel + "(" + strings.Join(f.Args, ", ") + ")"
}

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

const sep = "\x00"

func tupleKey(args []string) string { return strings.Join(args, sep) }

// Relation is the stored extension of one relation name together with its
// signature.
type Relation struct {
	Name  string
	Arity int
	// Key is the number of leading primary-key positions.
	Key int

	facts  map[string]Fact   // full-tuple key -> fact
	blocks map[string][]Fact // key-tuple key -> block, insertion order
	// blockKeys holds the block keys in arbitrary (insertion) order;
	// ordered readers go through sortedBlockKeys, which sorts a copy
	// lazily and memoizes it, so bulk loads are linearithmic instead of
	// quadratic (no per-insert insertion sort). Iteration order remains a
	// function of the stored content alone — two databases holding the
	// same facts iterate identically regardless of insert/remove history.
	// The store layer depends on this: a database recovered from a
	// checkpoint plus WAL replay must behave exactly like the one that
	// wrote it.
	blockKeys []string
	// sortedBlocks memoizes the sorted copy of blockKeys between writes;
	// once published a copy is immutable, so racing readers that rebuild
	// it concurrently are safe.
	sortedBlocks atomic.Pointer[[]string]
	// colVals[i] maps each distinct value in column i to its reference
	// count, so removals keep the index exact instead of monotonically
	// stale.
	colVals []map[string]int
}

func newRelation(name string, arity, key int) *Relation {
	cols := make([]map[string]int, arity)
	for i := range cols {
		cols[i] = make(map[string]int)
	}
	return &Relation{
		Name:  name,
		Arity: arity,
		Key:   key,
		facts: make(map[string]Fact), blocks: make(map[string][]Fact),
		colVals: cols,
	}
}

// Size returns the number of facts stored.
func (r *Relation) Size() int { return len(r.facts) }

// NumBlocks returns the number of blocks.
func (r *Relation) NumBlocks() int { return len(r.blocks) }

// AllKey reports whether the relation's signature is all-key.
func (r *Relation) AllKey() bool { return r.Key == r.Arity }

// sortedBlockKeys returns the block keys in sorted order, rebuilding the
// memoized copy if a write invalidated it. Safe for concurrent readers.
func (r *Relation) sortedBlockKeys() []string {
	if p := r.sortedBlocks.Load(); p != nil {
		return *p
	}
	out := append([]string(nil), r.blockKeys...)
	sort.Strings(out)
	r.sortedBlocks.Store(&out)
	return out
}

// ColumnValues returns the distinct values in column i (0-based), sorted.
func (r *Relation) ColumnValues(i int) []string {
	out := make([]string, 0, len(r.colVals[i]))
	for v := range r.colVals[i] {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Database is a finite set of facts over a fixed set of relations.
//
// Concurrency: a Database is safe for any number of concurrent readers
// (Has, Facts, Block, Blocks, ColumnValues, ActiveDomain, NumRepairs,
// Size, String, Repairs, Clone, …) as long as no goroutine mutates it at
// the same time. Mutating methods — DeclareRelation, Insert, Remove, and
// their Must variants — are not safe to call concurrently with anything
// else. The memoized ActiveDomain and NumRepairs values are published
// atomically, so racing readers that fill them concurrently are safe.
type Database struct {
	rels map[string]*Relation
	// relNames preserves deterministic iteration order.
	relNames []string
	// adom, numRepairs, and interned memoize ActiveDomain, NumRepairs,
	// and the dictionary-encoded view between writes; writers invalidate,
	// racing readers may each recompute and publish (identical) values.
	adom       atomic.Pointer[[]string]
	numRepairs atomic.Pointer[float64]
	interned   atomic.Pointer[Interned]
}

// New returns an empty database.
func New() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// DeclareRelation registers a relation name with signature [arity, key].
// It is idempotent for matching signatures and returns an error on a
// signature clash.
func (d *Database) DeclareRelation(name string, arity, key int) error {
	if arity < 1 || key < 1 || key > arity {
		return fmt.Errorf("db: invalid signature [%d, %d] for %s", arity, key, name)
	}
	if r, ok := d.rels[name]; ok {
		if r.Arity != arity || r.Key != key {
			return fmt.Errorf("db: relation %s redeclared with signature [%d, %d] (was [%d, %d])",
				name, arity, key, r.Arity, r.Key)
		}
		return nil
	}
	d.rels[name] = newRelation(name, arity, key)
	d.relNames = append(d.relNames, name)
	sort.Strings(d.relNames)
	d.invalidate()
	return nil
}

// invalidate drops memoized read-path state after a write.
func (d *Database) invalidate() {
	d.adom.Store(nil)
	d.numRepairs.Store(nil)
	d.interned.Store(nil)
}

// Relation returns the stored relation for the name, or nil if absent.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// RelationNames returns the declared relation names in sorted order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.relNames))
	copy(out, d.relNames)
	return out
}

// Insert adds a fact. The relation must have been declared and the arity
// must match. Inserting a duplicate fact is a no-op.
func (d *Database) Insert(f Fact) error {
	r, ok := d.rels[f.Rel]
	if !ok {
		return fmt.Errorf("db: relation %s not declared", f.Rel)
	}
	if len(f.Args) != r.Arity {
		return fmt.Errorf("db: fact %s has arity %d, relation %s has arity %d",
			f, len(f.Args), f.Rel, r.Arity)
	}
	tk := tupleKey(f.Args)
	if _, dup := r.facts[tk]; dup {
		return nil
	}
	r.facts[tk] = f
	bk := tupleKey(f.Args[:r.Key])
	if _, seen := r.blocks[bk]; !seen {
		r.blockKeys = append(r.blockKeys, bk)
		r.sortedBlocks.Store(nil)
	}
	r.blocks[bk] = append(r.blocks[bk], f)
	for i, v := range f.Args {
		r.colVals[i][v]++
	}
	d.invalidate()
	return nil
}

// MustInsert inserts and panics on error; for tests and literals.
func (d *Database) MustInsert(f Fact) {
	if err := d.Insert(f); err != nil {
		panic(err)
	}
}

// MustDeclare declares and panics on error; for tests and literals.
func (d *Database) MustDeclare(name string, arity, key int) {
	if err := d.DeclareRelation(name, arity, key); err != nil {
		panic(err)
	}
}

// Has reports whether the fact is in the database. Unknown relations
// report false.
func (d *Database) Has(f Fact) bool {
	r, ok := d.rels[f.Rel]
	if !ok {
		return false
	}
	_, found := r.facts[tupleKey(f.Args)]
	return found
}

// Facts returns all facts of the relation in deterministic (sorted) order.
func (d *Database) Facts(rel string) []Fact {
	r, ok := d.rels[rel]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(r.facts))
	for k := range r.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Fact, len(keys))
	for i, k := range keys {
		out[i] = r.facts[k]
	}
	return out
}

// AllFacts returns every fact in the database in deterministic order.
func (d *Database) AllFacts() []Fact {
	var out []Fact
	for _, name := range d.relNames {
		out = append(out, d.Facts(name)...)
	}
	return out
}

// Size returns the total number of facts.
func (d *Database) Size() int {
	n := 0
	for _, r := range d.rels {
		n += len(r.facts)
	}
	return n
}

// Block returns the block of facts key-equal to the given key values, in
// insertion order.
func (d *Database) Block(rel string, keyArgs []string) []Fact {
	r, ok := d.rels[rel]
	if !ok {
		return nil
	}
	return r.blocks[tupleKey(keyArgs)]
}

// Blocks calls fn for every block of the relation in sorted block-key
// order (deterministic in the stored content, independent of the
// insert/remove history), stopping early if fn returns false.
func (d *Database) Blocks(rel string, fn func(block []Fact) bool) {
	r, ok := d.rels[rel]
	if !ok {
		return
	}
	for _, bk := range r.sortedBlockKeys() {
		if !fn(r.blocks[bk]) {
			return
		}
	}
}

// IsConsistent reports whether every block is a singleton.
func (d *Database) IsConsistent() bool {
	for _, r := range d.rels {
		for _, b := range r.blocks {
			if len(b) > 1 {
				return false
			}
		}
	}
	return true
}

// ActiveDomain returns the sorted set of constants occurring in the
// database. The result is memoized until the next write; callers must not
// mutate the returned slice.
func (d *Database) ActiveDomain() []string {
	if p := d.adom.Load(); p != nil {
		return *p
	}
	set := make(map[string]bool)
	for _, r := range d.rels {
		for _, col := range r.colVals {
			for v := range col {
				set[v] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	d.adom.Store(&out)
	return out
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	c := New()
	for _, name := range d.relNames {
		r := d.rels[name]
		c.MustDeclare(name, r.Arity, r.Key)
		for _, f := range r.facts {
			c.MustInsert(f)
		}
	}
	return c
}

// clone returns a deep copy of one relation's storage.
func (r *Relation) clone() *Relation {
	c := newRelation(r.Name, r.Arity, r.Key)
	for k, f := range r.facts {
		c.facts[k] = f
	}
	for k, b := range r.blocks {
		c.blocks[k] = append([]Fact(nil), b...)
	}
	c.blockKeys = append([]string(nil), r.blockKeys...)
	// A published sorted copy is immutable, so the clone can share it.
	if p := r.sortedBlocks.Load(); p != nil {
		c.sortedBlocks.Store(p)
	}
	for i := range r.colVals {
		for v, n := range r.colVals[i] {
			c.colVals[i][v] = n
		}
	}
	return c
}

// CloneCOW returns a copy-on-write clone: relations named in rels are
// deep-copied (and therefore safely mutable on the clone), every other
// relation is shared by pointer with the receiver. The clone's shared
// relations must not be mutated — the intended use is a versioned store
// that publishes immutable snapshots and pays only for the relation a
// write touches. Names in rels that are not declared are ignored.
func (d *Database) CloneCOW(rels ...string) *Database {
	c := New()
	c.relNames = append([]string(nil), d.relNames...)
	copied := make(map[string]bool, len(rels))
	for _, name := range rels {
		copied[name] = true
	}
	for name, r := range d.rels {
		if copied[name] {
			c.rels[name] = r.clone()
		} else {
			c.rels[name] = r
		}
	}
	return c
}

// NumRepairs returns the number of repairs (the product of all block
// sizes) as a float64; it may overflow to +Inf for adversarial inputs.
// The result is memoized until the next write.
func (d *Database) NumRepairs() float64 {
	if p := d.numRepairs.Load(); p != nil {
		return *p
	}
	n := 1.0
	for _, r := range d.rels {
		for _, b := range r.blocks {
			n *= float64(len(b))
			if math.IsInf(n, 1) {
				break
			}
		}
	}
	d.numRepairs.Store(&n)
	return n
}

// Repairs enumerates the repairs of the database restricted to the given
// relation names (nil means all relations). For every repair it calls fn;
// enumeration stops early when fn returns false. Restricting to the
// relations a query mentions is sound for CERTAINTY because a repair's
// content on other relations cannot affect the query.
func (d *Database) Repairs(rels []string, fn func(repair *Database) bool) {
	if rels == nil {
		rels = d.relNames
	}
	// Gather blocks of the restricted relations.
	type blockRef struct {
		rel   string
		facts []Fact
	}
	var blocks []blockRef
	repair := New()
	for _, name := range rels {
		r, ok := d.rels[name]
		if !ok {
			continue
		}
		repair.MustDeclare(name, r.Arity, r.Key)
		for _, bk := range r.sortedBlockKeys() {
			blocks = append(blocks, blockRef{rel: name, facts: r.blocks[bk]})
		}
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(blocks) {
			return fn(repair)
		}
		b := blocks[i]
		for _, f := range b.facts {
			repair.MustInsert(f)
			cont := rec(i + 1)
			repair.remove(f)
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}

// Remove deletes a fact if present. All indexes — blocks, the sorted
// block-key list, and the per-column value counts — stay exact, so a
// database that inserts and removes facts is indistinguishable from one
// built directly from the surviving facts.
func (d *Database) Remove(f Fact) { d.remove(f) }

// remove deletes a fact; internal support for repair enumeration.
func (d *Database) remove(f Fact) {
	r, ok := d.rels[f.Rel]
	if !ok {
		return
	}
	tk := tupleKey(f.Args)
	if _, found := r.facts[tk]; !found {
		return
	}
	d.invalidate()
	delete(r.facts, tk)
	bk := tupleKey(f.Args[:r.Key])
	b := r.blocks[bk]
	for i := range b {
		if b[i].Equal(f) {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(r.blocks, bk)
		for i := range r.blockKeys {
			if r.blockKeys[i] == bk {
				r.blockKeys = append(r.blockKeys[:i], r.blockKeys[i+1:]...)
				break
			}
		}
		r.sortedBlocks.Store(nil)
	} else {
		r.blocks[bk] = b
	}
	for i, v := range f.Args {
		if r.colVals[i][v]--; r.colVals[i][v] <= 0 {
			delete(r.colVals[i], v)
		}
	}
}

// String renders the database as fact lines grouped by relation.
func (d *Database) String() string {
	var b strings.Builder
	for _, name := range d.relNames {
		for _, f := range d.Facts(name) {
			r := d.rels[name]
			b.WriteString(name)
			b.WriteByte('(')
			for i, a := range f.Args {
				if i > 0 {
					if i == r.Key {
						b.WriteString(" | ")
					} else {
						b.WriteString(", ")
					}
				}
				b.WriteString(a)
			}
			b.WriteString(")\n")
		}
	}
	return b.String()
}
