package db

import (
	"sort"
)

// This file adds the set representations the bitmap-vectorized evaluator
// (internal/fo/bitmap.go) runs on: IDSet, an immutable set of interned
// ids stored either as dense 64-bit words or as a sorted sparse id list
// depending on density, plus lazily built per-relation indexes — column
// sets (posting lists as IDSets) and hole indexes (rows grouped by every
// column but one, each group exposing the set of ids at the remaining
// "hole" column). All indexes follow the blockIdx idiom: built at most
// once per view behind an atomic pointer, racing builders may each build
// identical indexes with the last published winning, and COW-shared
// InternedRelations carry their indexes across versions for free.

const (
	// idsetDenseFloor: universes up to this many ids are always dense —
	// at most 128 words, cheaper than any branchy sparse representation.
	idsetDenseFloor = 1024
	// idsetDenseDiv: above the floor, a set is dense when it fills at
	// least 1/idsetDenseDiv of its universe; sparser sets keep the sorted
	// id list (the roaring-style container fallback).
	idsetDenseDiv = 16
)

// IDSet is an immutable set of non-negative interned ids. Safe for
// unbounded concurrent readers.
type IDSet struct {
	words  []uint64 // dense: bit (id&63) of words[id>>6]; nil when sparse
	sparse []int32  // sparse: sorted distinct ids; nil when dense
	card   int
}

var emptyIDSet = &IDSet{}

// EmptyIDSet returns the canonical empty set.
func EmptyIDSet() *IDSet { return emptyIDSet }

// NewIDSet builds a set from a sorted, duplicate-free id slice. The
// slice may be retained (sparse representation aliases it); the caller
// must not mutate it afterwards.
func NewIDSet(sorted []int32) *IDSet {
	if len(sorted) == 0 {
		return emptyIDSet
	}
	universe := int(sorted[len(sorted)-1]) + 1
	if universe <= idsetDenseFloor || len(sorted)*idsetDenseDiv >= universe {
		words := make([]uint64, (universe+63)>>6)
		for _, id := range sorted {
			words[id>>6] |= 1 << (uint(id) & 63)
		}
		return &IDSet{words: words, card: len(sorted)}
	}
	return &IDSet{sparse: sorted, card: len(sorted)}
}

// Card returns the number of ids in the set.
func (s *IDSet) Card() int { return s.card }

// Empty reports whether the set has no ids.
func (s *IDSet) Empty() bool { return s.card == 0 }

// Dense reports whether the set uses the word representation.
func (s *IDSet) Dense() bool { return s.words != nil }

// Words returns the dense word array, or nil for sparse sets. Bit
// (id&63) of Words()[id>>6] is set iff id is in the set. The caller must
// not mutate the result.
func (s *IDSet) Words() []uint64 { return s.words }

// SparseIDs returns the sorted id list of a sparse set, or nil for dense
// sets. The caller must not mutate the result.
func (s *IDSet) SparseIDs() []int32 { return s.sparse }

// NumWords returns the number of 64-id words the set spans: every member
// id is < NumWords()*64.
func (s *IDSet) NumWords() int32 {
	if s.words != nil {
		return int32(len(s.words))
	}
	if len(s.sparse) == 0 {
		return 0
	}
	return (s.sparse[len(s.sparse)-1] >> 6) + 1
}

// Contains reports whether id is in the set.
func (s *IDSet) Contains(id int32) bool {
	if id < 0 {
		return false
	}
	if s.words != nil {
		w := int(id >> 6)
		return w < len(s.words) && s.words[w]&(1<<(uint(id)&63)) != 0
	}
	p := s.sparse
	i := sort.Search(len(p), func(i int) bool { return p[i] >= id })
	return i < len(p) && p[i] == id
}

// Word returns the 64-id membership word covering ids [w*64, w*64+64).
// For sparse sets the word is assembled by binary search, so dense
// callers iterating many words should prefer Words().
func (s *IDSet) Word(w int32) uint64 {
	if w < 0 {
		return 0
	}
	if s.words != nil {
		if int(w) >= len(s.words) {
			return 0
		}
		return s.words[w]
	}
	p := s.sparse
	lo := int32(w) << 6
	i := sort.Search(len(p), func(i int) bool { return p[i] >= lo })
	var out uint64
	for ; i < len(p) && p[i] < lo+64; i++ {
		out |= 1 << (uint(p[i]) & 63)
	}
	return out
}

func eqIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// ColSet returns column col's posting list as an IDSet. Built lazily for
// all columns on first use, memoized per view (and per COW-shared
// relation across versions).
func (r *InternedRelation) ColSet(col int) *IDSet {
	if col < 0 || col >= r.Arity {
		return emptyIDSet
	}
	sets := r.colSets.Load()
	if sets == nil {
		built := make([]*IDSet, r.Arity)
		for c := range built {
			built[c] = NewIDSet(r.postings[c])
		}
		sets = &built
		r.colSets.Store(sets)
	}
	return (*sets)[col]
}

// holeGroup is one group of a hole index: the values of every column but
// the hole (in column order) and the set of ids occurring at the hole
// among the group's rows.
type holeGroup struct {
	rest []int32
	set  *IDSet
}

// holeIndex groups a relation's rows by rest-of-row for one hole column.
// Groups chain under their FNV-1a hash; lookups verify the actual rest
// values, so hash collisions cannot conflate groups.
type holeIndex struct {
	groups map[uint64][]holeGroup
}

func (r *InternedRelation) buildHoleIndex(hole int) *holeIndex {
	type acc struct {
		rest []int32
		vals []int32
	}
	m := make(map[uint64][]*acc)
	restbuf := make([]int32, 0, r.Arity-1)
	for i := 0; i < r.rows; i++ {
		row := r.Row(i)
		restbuf = restbuf[:0]
		for c, v := range row {
			if c != hole {
				restbuf = append(restbuf, v)
			}
		}
		h := hashKey64(restbuf)
		var g *acc
		for _, cand := range m[h] {
			if eqIDs(cand.rest, restbuf) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &acc{rest: append([]int32(nil), restbuf...)}
			m[h] = append(m[h], g)
		}
		g.vals = append(g.vals, row[hole])
	}
	hi := &holeIndex{groups: make(map[uint64][]holeGroup, len(m))}
	for h, gs := range m {
		out := make([]holeGroup, 0, len(gs))
		for _, g := range gs {
			vals := g.vals
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			dedup := vals[:0]
			for i, v := range vals {
				if i == 0 || v != dedup[len(dedup)-1] {
					dedup = append(dedup, v)
				}
			}
			out = append(out, holeGroup{rest: g.rest, set: NewIDSet(dedup)})
		}
		hi.groups[h] = out
	}
	return hi
}

// HoleSet returns the set of ids v such that inserting v at column hole
// among rest (the remaining columns' values, in column order) forms a
// stored fact, or nil when no row matches rest. The first call for a
// hole column indexes the whole relation; later calls are one hash
// lookup. rest is not retained.
func (r *InternedRelation) HoleSet(hole int, rest []int32) *IDSet {
	if r.rows == 0 || hole < 0 || hole >= r.Arity || len(rest) != r.Arity-1 {
		return nil
	}
	hi := r.holeIdx[hole].Load()
	if hi == nil {
		hi = r.buildHoleIndex(hole)
		r.holeIdx[hole].Store(hi)
	}
	for _, g := range hi.groups[hashKey64(rest)] {
		if eqIDs(g.rest, rest) {
			return g.set
		}
	}
	return nil
}

// DomainSet returns the active domain as an IDSet, built lazily and
// memoized on the view.
func (ix *Interned) DomainSet() *IDSet {
	if s := ix.domainSet.Load(); s != nil {
		return s
	}
	s := NewIDSet(ix.domain)
	ix.domainSet.Store(s)
	return s
}
