package db_test

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/parse"
)

func TestTypeTransformShape(t *testing.T) {
	q := parse.MustQuery("R(x | y), !N('c' | y)")
	d := parse.MustDatabase(`
		R(a | 1)
		N(c | 1)
		N(d | 1)
		Junk(zz | zz)
	`)
	td, err := db.TypeTransform(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if td.Relation("Junk") != nil {
		t.Error("relations outside q must be dropped")
	}
	if !td.Has(db.F("R", "x·a", "y·1")) {
		t.Errorf("typed R fact missing:\n%s", td)
	}
	if !td.Has(db.F("N", "c", "y·1")) {
		t.Errorf("matching constant should be kept:\n%s", td)
	}
	if !td.Has(db.F("N", "≁d", "y·1")) {
		t.Errorf("non-matching constant should be marked:\n%s", td)
	}
	// Typedness: every value in a variable position carries its type.
	for _, f := range td.Facts("R") {
		if !strings.HasPrefix(f.Args[0], "x·") || !strings.HasPrefix(f.Args[1], "y·") {
			t.Errorf("fact %v not typed", f)
		}
	}
}

func TestTypeTransformSignatureClash(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	d := db.New()
	d.MustDeclare("R", 2, 2)
	if _, err := db.TypeTransform(q, d); err == nil {
		t.Error("signature clash should fail")
	}
}

// The Section 3 claim: the transformation preserves the CERTAINTY answer.
// Checked on random messy (untyped, value-sharing) databases.
func TestTypeTransformPreservesCertainty(t *testing.T) {
	queries := []string{
		"R(x | y), !S(y | x)",
		"R(x | y), !N('c' | y)",
		"R(x | y), S(y | z)",
		"R(x | x, y), !S(x | y)",
	}
	rng := rand.New(rand.NewSource(33))
	vals := []string{"a", "b", "c"} // deliberately shared across columns
	for _, src := range queries {
		q := parse.MustQuery(src)
		for trial := 0; trial < 80; trial++ {
			d := db.New()
			for _, a := range q.Atoms() {
				d.MustDeclare(a.Rel, a.Arity(), a.Key)
				for i := 0; i < 4; i++ {
					if rng.Intn(2) == 0 {
						args := make([]string, a.Arity())
						for j := range args {
							args[j] = vals[rng.Intn(len(vals))]
						}
						d.MustInsert(db.Fact{Rel: a.Rel, Args: args})
					}
				}
			}
			td, err := db.TypeTransform(q, d)
			if err != nil {
				t.Fatal(err)
			}
			if naive.IsCertain(q, d) != naive.IsCertain(q, td) {
				t.Fatalf("%s: transformation changed the answer\noriginal:\n%s\ntyped:\n%s", src, d, td)
			}
			// Block structure is preserved relation by relation.
			for _, a := range q.Atoms() {
				if d.Relation(a.Rel) == nil {
					continue
				}
				if d.Relation(a.Rel).NumBlocks() != td.Relation(a.Rel).NumBlocks() {
					t.Fatalf("%s: block count changed for %s", src, a.Rel)
				}
				if len(d.Facts(a.Rel)) != len(td.Facts(a.Rel)) {
					t.Fatalf("%s: fact count changed for %s", src, a.Rel)
				}
			}
		}
	}
}
