package db

import (
	"fmt"
	"testing"
)

func internTestDB() *Database {
	d := New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 1, 1)
	d.MustInsert(F("R", "a", "b"))
	d.MustInsert(F("R", "a", "c"))
	d.MustInsert(F("R", "b", "b"))
	d.MustInsert(F("S", "c"))
	return d
}

func TestInternHasAndPostings(t *testing.T) {
	d := internTestDB()
	ix := Intern(d)
	id := func(v string) int32 {
		got, ok := ix.ID(v)
		if !ok {
			t.Fatalf("constant %q not interned", v)
		}
		return got
	}
	r := ix.Relation("R")
	if r == nil || r.Rows() != 3 {
		t.Fatalf("R: got %v", r)
	}
	if !r.Has([]int32{id("a"), id("b")}) || !r.Has([]int32{id("b"), id("b")}) {
		t.Fatal("stored tuple missing from index")
	}
	if r.Has([]int32{id("b"), id("a")}) || r.Has([]int32{id("c"), id("c")}) {
		t.Fatal("absent tuple found in index")
	}
	if r.Has([]int32{id("a")}) {
		t.Fatal("arity mismatch must be false")
	}
	// Postings are sorted distinct ids per column.
	p0 := r.Posting(0)
	if len(p0) != 2 { // a, b
		t.Fatalf("R column 0 posting: %v", p0)
	}
	for i := 1; i < len(p0); i++ {
		if p0[i-1] >= p0[i] {
			t.Fatalf("posting not strictly sorted: %v", p0)
		}
	}
	// Domain covers every value of every relation.
	if len(ix.DomainIDs()) != 3 { // a, b, c
		t.Fatalf("domain: %v", ix.DomainIDs())
	}
	// Ids round-trip through Value.
	for _, v := range []string{"a", "b", "c"} {
		if ix.Value(id(v)) != v {
			t.Fatalf("Value(ID(%q)) = %q", v, ix.Value(id(v)))
		}
	}
	if ix.Value(ix.NumIDs()) != "" {
		t.Fatal("synthetic id must have no stored value")
	}
	if ix.Relation("missing") != nil {
		t.Fatal("unknown relation must be nil")
	}
}

func TestInternMemoInvalidation(t *testing.T) {
	d := internTestDB()
	ix1 := d.Interned()
	if d.Interned() != ix1 {
		t.Fatal("memoized view not reused")
	}
	d.MustInsert(F("S", "zzz"))
	ix2 := d.Interned()
	if ix2 == ix1 {
		t.Fatal("write did not invalidate the interned view")
	}
	id, ok := ix2.ID("zzz")
	if !ok {
		t.Fatal("new constant missing after rebuild")
	}
	if !ix2.Relation("S").Has([]int32{id}) {
		t.Fatal("new fact missing after rebuild")
	}
}

func TestInternNextReusesSharedRelations(t *testing.T) {
	d := internTestDB()
	ix1 := Intern(d)
	next := d.CloneCOW("S")
	next.MustInsert(F("S", "d"))
	next.Remove(F("S", "c"))
	ix2 := InternNext(ix1, next)
	if ix2.Relation("R") != ix1.Relation("R") {
		t.Fatal("pointer-shared relation was re-indexed")
	}
	if ix2.Relation("S") == ix1.Relation("S") {
		t.Fatal("rebuilt relation was wrongly reused")
	}
	// Old ids stay valid in the new view; removed values leave the domain.
	ida, _ := ix1.ID("a")
	idb, _ := ix2.ID("a")
	if ida != idb {
		t.Fatal("id drift across InternNext")
	}
	idd, ok := ix2.ID("d")
	if !ok || !ix2.Relation("S").Has([]int32{idd}) {
		t.Fatal("new fact missing from chained view")
	}
	idc, _ := ix1.ID("c")
	if ix2.Relation("S").Has([]int32{idc}) {
		t.Fatal("removed fact still in chained view")
	}
}

// Bulk load must be linearithmic: the per-insert insertion sort of block
// keys was O(n²) (db.go, pre-compiled-evaluator); keys are now appended
// and sorted lazily on first ordered read. The benchmark output (ns/op
// scaling ~linearly in size) is the regression guard.
func BenchmarkBulkLoad(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := New()
				d.MustDeclare("R", 2, 1)
				for j := 0; j < n; j++ {
					// Descending keys: the worst case for insertion sort.
					d.MustInsert(F("R", fmt.Sprintf("k%09d", n-j), "v"))
				}
			}
		})
	}
}

// Ordered reads after bulk load still see sorted, deterministic block
// order regardless of insertion order.
func TestBlocksSortedAfterUnorderedLoad(t *testing.T) {
	d := New()
	d.MustDeclare("R", 2, 1)
	for _, k := range []string{"c", "a", "b", "e", "d"} {
		d.MustInsert(F("R", k, "v"))
	}
	d.Remove(F("R", "e", "v"))
	var got []string
	d.Blocks("R", func(block []Fact) bool {
		got = append(got, block[0].Args[0])
		return true
	})
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("blocks: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("blocks out of order: %v", got)
		}
	}
}
