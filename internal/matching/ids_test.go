package matching

import (
	"math/rand"
	"testing"
)

// TestHopcroftKarpIDsAgrees drives the int32 variant and the original
// int variant with the same random bipartite graphs and compares the
// matching sizes.
func TestHopcroftKarpIDsAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		nLeft, nRight := rng.Intn(8), rng.Intn(8)
		adj := make([][]int, nLeft)
		adj32 := make([][]int32, nLeft)
		for u := 0; u < nLeft; u++ {
			for v := 0; v < nRight; v++ {
				if rng.Intn(3) == 0 {
					adj[u] = append(adj[u], v)
					adj32[u] = append(adj32[u], int32(v))
				}
			}
		}
		want, _ := HopcroftKarp(nLeft, nRight, adj)
		if got := HopcroftKarpIDs(nLeft, nRight, adj32); got != want {
			t.Fatalf("case %d: HopcroftKarpIDs = %d, HopcroftKarp = %d (nLeft=%d nRight=%d adj=%v)",
				i, got, want, nLeft, nRight, adj)
		}
	}
}

func TestHopcroftKarpIDsEmpty(t *testing.T) {
	if got := HopcroftKarpIDs(0, 0, nil); got != 0 {
		t.Fatalf("empty graph matching = %d", got)
	}
	if got := HopcroftKarpIDs(3, 2, make([][]int32, 3)); got != 0 {
		t.Fatalf("edgeless graph matching = %d", got)
	}
}
