// Package matching implements the classical matching problems that the
// paper connects to CERTAINTY(q): bipartite maximum matching via
// Hopcroft–Karp (for BIPARTITE PERFECT MATCHING, Example 1.1 and
// Lemma 5.2), Hall's marriage condition, and the S-COVERING problem of
// Example 1.2.
package matching

import (
	"sort"

	"cqa/internal/graphx"
)

// HopcroftKarp computes a maximum matching in a bipartite graph given as
// adjacency lists from nLeft left vertices (0-based) to right vertex
// indexes (0-based, nRight vertices). It returns the matching size and the
// matching itself as matchLeft (left index → right index or -1).
func HopcroftKarp(nLeft, nRight int, adj [][]int) (int, []int) {
	const inf = int(^uint(0) >> 1)
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)

	bfs := func() bool {
		queue := make([]int, 0, nLeft)
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return size, matchL
}

// HopcroftKarpIDs is HopcroftKarp over int32 adjacency lists, returning
// only the matching size. It exists for the planner's graph deciders,
// which build adjacency directly from interned int32 ids (dense posting
// indexes) and only need to compare the size against the left side.
func HopcroftKarpIDs(nLeft, nRight int, adj [][]int32) int {
	const inf = int32(^uint32(0) >> 1)
	matchL := make([]int32, nLeft)
	matchR := make([]int32, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int32, nLeft)

	bfs := func() bool {
		queue := make([]int32, 0, nLeft)
		for u := int32(0); u < int32(nLeft); u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	size := 0
	for bfs() {
		for u := int32(0); u < int32(nLeft); u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return size
}

// MaxMatching computes a maximum matching of a named bipartite graph. It
// returns the matching as a map from left vertex to right vertex.
func MaxMatching(b *graphx.Bipartite) map[string]string {
	rIndex := make(map[string]int, len(b.Right))
	for i, r := range b.Right {
		rIndex[r] = i
	}
	adj := make([][]int, len(b.Left))
	for i, l := range b.Left {
		for _, r := range b.Adj[l] {
			adj[i] = append(adj[i], rIndex[r])
		}
		sort.Ints(adj[i])
	}
	_, matchL := HopcroftKarp(len(b.Left), len(b.Right), adj)
	out := make(map[string]string)
	for i, v := range matchL {
		if v >= 0 {
			out[b.Left[i]] = b.Right[v]
		}
	}
	return out
}

// HasPerfectMatching reports whether the bipartite graph has a matching
// that saturates both sides. This requires equally many left and right
// vertices.
func HasPerfectMatching(b *graphx.Bipartite) bool {
	if len(b.Left) != len(b.Right) {
		return false
	}
	return len(MaxMatching(b)) == len(b.Left)
}

// HallCondition reports whether every subset of left vertices has at least
// as many right neighbours (Hall's marriage condition [14]); by Hall's
// theorem this is equivalent to the existence of a left-saturating
// matching, which is how it is computed here.
func HallCondition(b *graphx.Bipartite) bool {
	return len(MaxMatching(b)) == len(b.Left)
}

// SCoveringInstance is an instance of the S-COVERING problem of
// Example 1.2: a set S and a list of (possibly empty) subsets T₁,…,Tₗ.
type SCoveringInstance struct {
	S []string
	T [][]string
}

// Solvable reports whether one can pick at most one element from each Tᵢ
// so that every element of S is picked once — i.e. whether there is an
// injective f : S → {1,…,ℓ} with a ∈ T_{f(a)}. This is a left-saturating
// bipartite matching from S to the subset indexes.
func (inst SCoveringInstance) Solvable() bool {
	right := make([]string, len(inst.T))
	for i := range inst.T {
		right[i] = idxName(i)
	}
	b := graphx.NewBipartite(inst.S, right)
	for i, t := range inst.T {
		for _, a := range t {
			if containsStr(inst.S, a) {
				// Ignore duplicate memberships.
				dup := false
				for _, r := range b.Adj[a] {
					if r == idxName(i) {
						dup = true
						break
					}
				}
				if !dup {
					if err := b.AddEdge(a, idxName(i)); err != nil {
						panic(err) // unreachable: endpoints are declared
					}
				}
			}
		}
	}
	return len(MaxMatching(b)) == len(inst.S)
}

func idxName(i int) string {
	return "T" + itoa(i+1)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
