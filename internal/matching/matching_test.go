package matching_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqa/internal/graphx"
	"cqa/internal/matching"
)

func TestHopcroftKarpSmall(t *testing.T) {
	// 0-0, 0-1, 1-0: maximum matching 2.
	size, matchL := matching.HopcroftKarp(2, 2, [][]int{{0, 1}, {0}})
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	if matchL[0] != 1 || matchL[1] != 0 {
		t.Errorf("matchL = %v", matchL)
	}
}

func TestHopcroftKarpNoEdges(t *testing.T) {
	size, _ := matching.HopcroftKarp(3, 3, [][]int{{}, {}, {}})
	if size != 0 {
		t.Errorf("size = %d, want 0", size)
	}
}

func TestHopcroftKarpStar(t *testing.T) {
	// All left vertices only connect to right 0: matching size 1.
	size, _ := matching.HopcroftKarp(3, 3, [][]int{{0}, {0}, {0}})
	if size != 1 {
		t.Errorf("size = %d, want 1", size)
	}
}

// bruteMax computes a maximum matching by exhaustive search.
func bruteMax(nLeft int, adj [][]int) int {
	usedR := make(map[int]bool)
	var rec func(i int) int
	rec = func(i int) int {
		if i == nLeft {
			return 0
		}
		best := rec(i + 1) // leave i unmatched
		for _, r := range adj[i] {
			if !usedR[r] {
				usedR[r] = true
				if got := 1 + rec(i+1); got > best {
					best = got
				}
				delete(usedR, r)
			}
		}
		return best
	}
	return rec(0)
}

// Property: Hopcroft–Karp matches brute force on random small graphs.
func TestHopcroftKarpAgainstBrute(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		adj := make([][]int, n)
		for i := range adj {
			for j := 0; j < m; j++ {
				if rng.Intn(3) == 0 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		size, matchL := matching.HopcroftKarp(n, m, adj)
		if size != bruteMax(n, adj) {
			return false
		}
		// The returned matching must be valid and of the right size.
		cnt := 0
		usedR := make(map[int]bool)
		for i, r := range matchL {
			if r == -1 {
				continue
			}
			cnt++
			if usedR[r] {
				return false
			}
			usedR[r] = true
			found := false
			for _, v := range adj[i] {
				if v == r {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return cnt == size
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestPerfectMatchingNamed(t *testing.T) {
	b := graphx.NewBipartite([]string{"g1", "g2"}, []string{"b1", "b2"})
	b.AddEdge("g1", "b1")
	b.AddEdge("g1", "b2")
	b.AddEdge("g2", "b1")
	if !matching.HasPerfectMatching(b) {
		t.Error("perfect matching exists (g1-b2, g2-b1)")
	}
	b2 := graphx.NewBipartite([]string{"g1", "g2"}, []string{"b1", "b2"})
	b2.AddEdge("g1", "b1")
	b2.AddEdge("g2", "b1")
	if matching.HasPerfectMatching(b2) {
		t.Error("both girls know only b1: no perfect matching")
	}
	// Unequal sides never have a perfect matching.
	b3 := graphx.NewBipartite([]string{"g1"}, []string{"b1", "b2"})
	b3.AddEdge("g1", "b1")
	if matching.HasPerfectMatching(b3) {
		t.Error("unequal sides cannot be perfectly matched")
	}
}

// Example 1.1 / Figure 1: the mutual-knowledge graph on girls
// {Alice, Maria} and boys {Bob, George} (restricted to pairs who know each
// other both ways) has a perfect matching Alice–George, Maria–Bob.
func TestFigure1Matching(t *testing.T) {
	b := graphx.NewBipartite([]string{"Alice", "Maria"}, []string{"Bob", "George"})
	// R ∩ S⁻¹: Alice-Bob, Alice-George, Maria-Bob.
	b.AddEdge("Alice", "Bob")
	b.AddEdge("Alice", "George")
	b.AddEdge("Maria", "Bob")
	if !matching.HasPerfectMatching(b) {
		t.Error("Figure 1 graph should have a perfect matching")
	}
	m := matching.MaxMatching(b)
	if len(m) != 2 {
		t.Errorf("matching = %v", m)
	}
}

func TestHallCondition(t *testing.T) {
	b := graphx.NewBipartite([]string{"l1", "l2", "l3"}, []string{"r1", "r2", "r3"})
	b.AddEdge("l1", "r1")
	b.AddEdge("l2", "r1")
	b.AddEdge("l3", "r2")
	// {l1, l2} has only one neighbour r1 → Hall fails.
	if matching.HallCondition(b) {
		t.Error("Hall condition should fail")
	}
	b.AddEdge("l2", "r3")
	if !matching.HallCondition(b) {
		t.Error("Hall condition should now hold")
	}
}

func TestSCoveringSolvable(t *testing.T) {
	inst := matching.SCoveringInstance{
		S: []string{"a", "b"},
		T: [][]string{{"a", "b"}, {"b"}},
	}
	if !inst.Solvable() {
		t.Error("pick a from T1, b from T2")
	}
	inst2 := matching.SCoveringInstance{
		S: []string{"a", "b"},
		T: [][]string{{"a", "b"}},
	}
	if inst2.Solvable() {
		t.Error("one set cannot cover two elements")
	}
	inst3 := matching.SCoveringInstance{S: nil, T: [][]string{{"a"}}}
	if !inst3.Solvable() {
		t.Error("empty S is trivially coverable")
	}
	// Membership of elements outside S is ignored.
	inst4 := matching.SCoveringInstance{
		S: []string{"a"},
		T: [][]string{{"zz", "a", "a"}}, // duplicate membership too
	}
	if !inst4.Solvable() {
		t.Error("stray memberships should not break covering")
	}
}

// S-COVERING via matching equals a brute-force assignment search.
func TestSCoveringAgainstBrute(t *testing.T) {
	brute := func(inst matching.SCoveringInstance) bool {
		usedT := make([]bool, len(inst.T))
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(inst.S) {
				return true
			}
			for j, tset := range inst.T {
				if usedT[j] {
					continue
				}
				for _, a := range tset {
					if a == inst.S[i] {
						usedT[j] = true
						if rec(i + 1) {
							return true
						}
						usedT[j] = false
						break
					}
				}
			}
			return false
		}
		return rec(0)
	}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		els := []string{"a", "b", "c", "d"}
		nS := rng.Intn(4)
		nT := rng.Intn(4)
		inst := matching.SCoveringInstance{S: els[:nS], T: make([][]string, nT)}
		for i := range inst.T {
			for _, e := range els[:nS] {
				if rng.Intn(2) == 0 {
					inst.T[i] = append(inst.T[i], e)
				}
			}
		}
		return inst.Solvable() == brute(inst)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
