package core

import (
	"fmt"
	"sync"

	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/fo"
	"cqa/internal/naive"
	"cqa/internal/planner"
	"cqa/internal/schema"
)

// maxBoundCache bounds the per-plan cache of compiled programs linked
// against interned databases. Serving workloads hit a handful of
// databases per query; the cache is evicted arbitrarily beyond that.
const maxBoundCache = 16

// Prepared is a query analysed once and evaluated many times: the
// classification (attack graph, verdict), the consistent first-order
// rewriting, and the compiled form of that rewriting (slot-based
// environments, interned constants, index-driven quantifier restriction;
// see docs/EVAL.md) are computed by Prepare and reused by every Certain
// call. This is the intended API for serving workloads — Classify+Certain
// per request would redo the query-complexity work, which is exponential
// in the query size in the worst case (the rewriting can be exponentially
// large) although polynomial per database.
type Prepared struct {
	cls *Classification
	// prog is the compiled rewriting (FO verdicts only).
	prog *fo.Program
	// plan is the planner's strategy selection; for non-FO queries it
	// carries the polynomial graph decider Certain dispatches to.
	plan *planner.Plan

	// bounds caches the program linked against interned databases, so a
	// hot (query, database-version) pair pays for constant resolution and
	// candidate materialization once. decisions caches the planner's
	// recorded decision the same way (explain output asks per request).
	mu        sync.Mutex
	bounds    map[*db.Interned]*fo.Bound
	decisions map[*db.Interned]*planner.Decision
}

// Prepare validates, classifies, and — when CERTAINTY(q) is in FO —
// compiles the rewriting.
func Prepare(q schema.Query) (*Prepared, error) {
	cls, err := Classify(q)
	if err != nil {
		return nil, err
	}
	p := &Prepared{cls: cls, plan: planner.New(q, cls.Verdict == VerdictFO)}
	if cls.Verdict == VerdictFO {
		prog, err := fo.Compile(cls.Rewriting)
		if err != nil {
			// Rewritings are sentences, so this is unreachable; fall back
			// to the tree walker rather than failing the preparation.
			prog = nil
		}
		p.prog = prog
	}
	return p, nil
}

// Classification exposes the analysis result.
func (p *Prepared) Classification() *Classification { return p.cls }

// InFO reports whether CERTAINTY(q) is in FO (a rewriting is available).
func (p *Prepared) InFO() bool { return p.cls.Verdict == VerdictFO }

// HasCompiled reports whether the rewriting compiled to a program — the
// fast path Certain actually takes for FO queries. False either because
// the query is not in FO or because compilation fell back (unreachable
// in practice, but explain output must report the executed path).
func (p *Prepared) HasCompiled() bool { return p.prog != nil }

// Program returns the compiled rewriting, or nil when HasCompiled is
// false. Read-only; used by explain output for plan summaries.
func (p *Prepared) Program() *fo.Program { return p.prog }

// RewritingSize returns the node count of the consistent first-order
// rewriting, or 0 when the query is not in FO.
func (p *Prepared) RewritingSize() int {
	if !p.InFO() {
		return 0
	}
	return fo.NodeCount(p.cls.Rewriting)
}

// bound returns the compiled rewriting linked against d's interned view,
// consulting the per-plan cache first. Returns nil when no compiled
// program is available.
func (p *Prepared) bound(d *db.Database) *fo.Bound {
	if p.prog == nil {
		return nil
	}
	ix := d.Interned()
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.bounds[ix]; ok {
		return b
	}
	b := p.prog.Bind(ix)
	if p.bounds == nil {
		p.bounds = make(map[*db.Interned]*fo.Bound)
	}
	if len(p.bounds) >= maxBoundCache {
		for k := range p.bounds {
			delete(p.bounds, k)
			break
		}
	}
	p.bounds[ix] = b
	return b
}

// QueryRels returns the distinct relation names the query mentions
// (positive and negated atoms), in first-occurrence order.
func (p *Prepared) QueryRels() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range p.cls.Query.Atoms() {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

// CertainSupport answers CERTAINTY(q) on d while recording the support
// set of the evaluation (the blocks every membership probe touched; see
// fo.Support). supported is false when the query has no compiled
// rewriting — non-FO queries and compile fallbacks — in which case the
// verdict is computed by Certain's normal dispatch and sup is nil: the
// delta layer then degrades to relation-level re-evaluation.
func (p *Prepared) CertainSupport(d *db.Database) (verdict bool, sup *fo.Support, supported bool) {
	if p.InFO() {
		if b := p.bound(d); b != nil {
			verdict, sup = b.EvalSupport()
			return verdict, sup, true
		}
	}
	return p.Certain(d), nil, false
}

// Plan returns the planner's strategy selection for the query.
func (p *Prepared) Plan() *planner.Plan { return p.plan }

// PlanStrategy returns the evaluation-strategy label of the planner's
// plan for non-FO queries ("matching", "reachability", "naive-repair").
// It is "" for FO queries, whose strategy the engine names (the choice
// between compiled and tree-walk evaluation is an engine option).
func (p *Prepared) PlanStrategy() string { return p.plan.Strategy }

// Decision returns the planner's recorded decision for d's current
// snapshot — strategy, reason, and the relation statistics consulted —
// consulting the per-plan cache first.
func (p *Prepared) Decision(d *db.Database) *planner.Decision {
	ix := d.Interned()
	p.mu.Lock()
	defer p.mu.Unlock()
	if dec, ok := p.decisions[ix]; ok {
		return dec
	}
	dec := p.plan.Decide(ix)
	if p.decisions == nil {
		p.decisions = make(map[*db.Interned]*planner.Decision)
	}
	if len(p.decisions) >= maxBoundCache {
		for k := range p.decisions {
			delete(p.decisions, k)
			break
		}
	}
	p.decisions[ix] = dec
	return dec
}

// Certain answers CERTAINTY(q) on d: via the compiled rewriting when the
// query is in FO, via the planner's polynomial graph decider when one
// matches the (cyclic) query shape, by repair enumeration otherwise.
func (p *Prepared) Certain(d *db.Database) bool {
	if p.InFO() {
		if b := p.bound(d); b != nil {
			return b.Eval()
		}
		return evalOn(d, p.cls.Query, p.cls.Rewriting)
	}
	return p.certainNonFO(d)
}

// HasBitmap reports whether the compiled rewriting lowered at least one
// quantifier to the bitmap-vectorized form — the path CertainBitmap
// actually accelerates. False for non-FO queries, compile fallbacks,
// and programs with no vectorizable quantifier (where CertainBitmap is
// exactly Certain).
func (p *Prepared) HasBitmap() bool { return p.prog != nil && p.prog.HasBitmap() }

// CertainBitmap answers like Certain but evaluates the compiled
// rewriting on the bitmap-vectorized tree (fo.Bound.EvalBitmap; see
// docs/EVAL.md). Verdicts are identical to Certain by construction;
// non-FO queries and compile fallbacks take the same dispatch as
// Certain. This is the engine's default serving path; the
// engine.Options.DisableBitmap rollback restores Certain.
func (p *Prepared) CertainBitmap(d *db.Database) bool {
	if p.InFO() {
		if b := p.bound(d); b != nil {
			return b.EvalBitmap()
		}
		return evalOn(d, p.cls.Query, p.cls.Rewriting)
	}
	return p.certainNonFO(d)
}

// certainNonFO dispatches a non-FO query to the planner's decider when
// one exists, else to repair enumeration.
func (p *Prepared) certainNonFO(d *db.Database) bool {
	if certain, ok := p.plan.Certain(d.Interned()); ok {
		return certain
	}
	return naive.IsCertain(p.cls.Query, d)
}

// CertainTreeWalk answers like Certain but evaluates the rewriting with
// the interpreting tree walker (fo.Eval) instead of the compiled program,
// and non-FO queries with repair enumeration instead of the planner's
// graph deciders. It exists as the reference oracle for differential
// tests and as the operational rollback switch for both the compiled
// pipeline and the planner (engine.Options.ForceTreeWalk).
func (p *Prepared) CertainTreeWalk(d *db.Database) bool {
	if p.InFO() {
		return evalOn(d, p.cls.Query, p.cls.Rewriting)
	}
	return naive.IsCertain(p.cls.Query, d)
}

// CertainParallel answers CERTAINTY(q) on d like Certain, but fans the
// evaluation across up to workers goroutines: for FO queries the
// top-level quantifier iteration of the compiled rewriting is split over
// candidate values (when the candidate list reaches minCandidates values;
// ≤ 0 selects fo.DefaultMinParallelCandidates), for non-FO queries the
// repair search is parallelized. workers ≤ 0 selects GOMAXPROCS. d must
// not be mutated while the call runs; concurrent readers are fine (see
// db.Database).
func (p *Prepared) CertainParallel(d *db.Database, workers, minCandidates int) bool {
	if p.InFO() {
		if b := p.bound(d); b != nil {
			return b.EvalParallel(workers, minCandidates)
		}
		return evalOnParallel(d, p.cls.Query, p.cls.Rewriting, workers, minCandidates)
	}
	// The planner's graph deciders are near-linear single passes; when
	// one matches there is nothing worth fanning out.
	if certain, ok := p.plan.Certain(d.Interned()); ok {
		return certain
	}
	return naive.IsCertainParallel(p.cls.Query, d, workers)
}

// CertainVia answers with an explicit engine, reusing the prepared
// rewriting for EngineRewriting.
func (p *Prepared) CertainVia(d *db.Database, engine Engine) (bool, error) {
	switch engine {
	case EngineAuto:
		return p.Certain(d), nil
	case EngineRewriting:
		if !p.InFO() {
			return false, ErrNoRewriting
		}
		if b := p.bound(d); b != nil {
			return b.Eval(), nil
		}
		return evalOn(d, p.cls.Query, p.cls.Rewriting), nil
	case EngineDirect:
		return direct.IsCertain(p.cls.Query, d)
	case EngineNaive:
		return naive.IsCertain(p.cls.Query, d), nil
	default:
		return false, fmt.Errorf("core: unknown engine %d", engine)
	}
}
