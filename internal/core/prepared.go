package core

import (
	"fmt"

	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/naive"
	"cqa/internal/schema"
)

// Prepared is a query analysed once and evaluated many times: the
// classification (attack graph, verdict) and, when available, the
// consistent first-order rewriting are computed by Prepare and reused by
// every Certain call. This is the intended API for serving workloads —
// Classify+Certain per request would redo the query-complexity work,
// which is exponential in the query size in the worst case (the rewriting
// can be exponentially large) although polynomial per database.
type Prepared struct {
	cls *Classification
}

// Prepare validates and classifies q.
func Prepare(q schema.Query) (*Prepared, error) {
	cls, err := Classify(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{cls: cls}, nil
}

// Classification exposes the analysis result.
func (p *Prepared) Classification() *Classification { return p.cls }

// InFO reports whether CERTAINTY(q) is in FO (a rewriting is available).
func (p *Prepared) InFO() bool { return p.cls.Verdict == VerdictFO }

// Certain answers CERTAINTY(q) on d: via the precomputed rewriting when
// the query is in FO, by repair enumeration otherwise.
func (p *Prepared) Certain(d *db.Database) bool {
	if p.InFO() {
		return evalOn(d, p.cls.Query, p.cls.Rewriting)
	}
	return naive.IsCertain(p.cls.Query, d)
}

// CertainParallel answers CERTAINTY(q) on d like Certain, but fans the
// evaluation across up to workers goroutines: for FO queries the
// top-level quantifier iteration of the rewriting is split over relation
// blocks (when the candidate list reaches minCandidates values; ≤ 0
// selects fo.DefaultMinParallelCandidates), for non-FO queries the repair
// search is parallelized. workers ≤ 0 selects GOMAXPROCS. d must not be
// mutated while the call runs; concurrent readers are fine (see
// db.Database).
func (p *Prepared) CertainParallel(d *db.Database, workers, minCandidates int) bool {
	if p.InFO() {
		return evalOnParallel(d, p.cls.Query, p.cls.Rewriting, workers, minCandidates)
	}
	return naive.IsCertainParallel(p.cls.Query, d, workers)
}

// CertainVia answers with an explicit engine, reusing the prepared
// rewriting for EngineRewriting.
func (p *Prepared) CertainVia(d *db.Database, engine Engine) (bool, error) {
	switch engine {
	case EngineAuto:
		return p.Certain(d), nil
	case EngineRewriting:
		if !p.InFO() {
			return false, ErrNoRewriting
		}
		return evalOn(d, p.cls.Query, p.cls.Rewriting), nil
	case EngineDirect:
		return direct.IsCertain(p.cls.Query, d)
	case EngineNaive:
		return naive.IsCertain(p.cls.Query, d), nil
	default:
		return false, fmt.Errorf("core: unknown engine %d", engine)
	}
}
