package core_test

import (
	"fmt"

	"cqa/internal/core"
	"cqa/internal/parse"
)

func ExampleClassify() {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	cls, _ := core.Classify(q)
	fmt.Println(cls.Verdict)
	fmt.Println(cls.Rewriting)
	// Output:
	// FO
	// ∃x∃z1(P(x, z1)) ∧ ∀z2(N('c', z2) → ∃x(∃z3(P(x, z3)) ∧ ∀z3(P(x, z3) → z3 ≠ z2)))
}

func ExampleClassify_hard() {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	cls, _ := core.Classify(q)
	fmt.Println(cls.Verdict, cls.Hardness)
	// Output:
	// not-FO NL-hard
}

func ExampleCertain() {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	d := parse.MustDatabase(`
		P(p1 | v1)
		P(p2 | v2)
		N(c | v1)
	`)
	parse.DeclareQueryRelations(d, q)
	ans, _ := core.Certain(q, d, core.EngineAuto)
	fmt.Println(ans)
	// Output:
	// true
}

func ExampleCertainAnswers() {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Maria | John)
		S(Bob | Alice)
	`)
	answers, _ := core.CertainAnswers(q, []string{"x"}, d)
	for _, a := range answers {
		fmt.Println(a[0])
	}
	// Output:
	// Maria
}

func ExampleReifiableVars() {
	q := parse.MustQuery("R(x | y), S(y | z)")
	rv, _ := core.ReifiableVars(q)
	fmt.Println(rv)
	// Output:
	// {x}
}
