package core_test

import (
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

// The full classification table for every example query in the paper.
func TestPaperClassificationTable(t *testing.T) {
	cases := []struct {
		name, src string
		verdict   core.Verdict
		hardness  string
		wg        bool
	}{
		{"q0 (Sec 5.1)", "R(x | y), S(y | x)", core.VerdictNotFO, "L-hard", true},
		{"q1 (Ex 1.1)", "R(x | y), !S(y | x)", core.VerdictNotFO, "NL-hard", true},
		{"q2 (Sec 5.1)", "R(x, y), !S(x | y), !T(y | x)", core.VerdictNotFO, "L-hard", true},
		{"q3 (Ex 4.2)", "P(x | y), !N('c' | y)", core.VerdictFO, "", true},
		{"qHall ℓ=3 (Ex 6.12)", "S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)", core.VerdictFO, "", true},
		{"mayors q1 (Ex 4.6)", "Mayor(t | p), !Lives(p | t)", core.VerdictNotFO, "NL-hard", true},
		{"mayors q2 (Ex 4.6)", "Likes(p, t), !Lives(p | t), !Mayor(t | p)", core.VerdictNotFO, "L-hard", true},
		{"mayors qa (Ex 4.6)", "Lives(p | t), !Born(p | t), !Likes(p, t)", core.VerdictFO, "", true},
		{"mayors qb (Ex 4.6)", "Likes(p, t), !Born(p | t), !Lives(p | t)", core.VerdictFO, "", true},
		{"q4 (Ex 7.1)", "X(x), Y(y), !R(x | y), !S(y | x)", core.VerdictOutOfScope, "", false},
		// The paper only uses this query to illustrate weak guards; our
		// classifier additionally finds the positive 2-cycle R ⇄ S.
		{"wg not guarded (Ex 3.2)", "R(x | y, z, u), S(y | w, z), T(x | u, w), !N(x | y, z, u, w)", core.VerdictNotFO, "L-hard", true},
	}
	for _, c := range cases {
		cls, err := core.Classify(parse.MustQuery(c.src))
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if cls.Verdict != c.verdict {
			t.Errorf("%s: verdict = %v, want %v", c.name, cls.Verdict, c.verdict)
		}
		if cls.Hardness != c.hardness {
			t.Errorf("%s: hardness = %q, want %q", c.name, cls.Hardness, c.hardness)
		}
		if cls.WeaklyGuarded != c.wg {
			t.Errorf("%s: weakly-guarded = %v, want %v", c.name, cls.WeaklyGuarded, c.wg)
		}
		if c.verdict == core.VerdictFO && cls.Rewriting == nil {
			t.Errorf("%s: FO verdict without rewriting", c.name)
		}
		if c.verdict == core.VerdictNotFO && (cls.CycleF == "" || cls.CycleG == "") {
			t.Errorf("%s: non-FO verdict without a 2-cycle witness", c.name)
		}
	}
}

// mayors q2 is NL-hard? No — wait, this is asserted above as L-hard. The
// cycle structure is pinned separately here: its 2-cycle is between the
// two negated atoms Lives and Mayor.
func TestMayorsQ2Cycle(t *testing.T) {
	cls, err := core.Classify(parse.MustQuery("Likes(p, t), !Lives(p | t), !Mayor(t | p)"))
	if err != nil {
		t.Fatal(err)
	}
	pair := cls.CycleF + cls.CycleG
	if pair != "LivesMayor" && pair != "MayorLives" {
		t.Errorf("2-cycle = (%s, %s), want Lives ⇄ Mayor", cls.CycleF, cls.CycleG)
	}
	if cls.CycleNegated != 2 {
		t.Errorf("negated atoms in cycle = %d, want 2", cls.CycleNegated)
	}
}

// Hardness prefers the strongest bound: a query with both a 0-negated and
// a 1-negated 2-cycle reports NL-hard.
func TestHardnessPreference(t *testing.T) {
	// R ⇄ S (both positive, L-hard) and R' ⇄ S' pattern with one negated:
	// combine q0 and q1 over disjoint relations.
	q := parse.MustQuery("R(x | y), S(y | x), A(u | v), !B(v | u)")
	cls, err := core.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Verdict != core.VerdictNotFO || cls.Hardness != "NL-hard" {
		t.Errorf("verdict = %v/%s, want not-FO/NL-hard", cls.Verdict, cls.Hardness)
	}
	if cls.CycleNegated != 1 {
		t.Errorf("preferred cycle has %d negated atoms, want 1", cls.CycleNegated)
	}
}

// A non-weakly-guarded query with a 2-cycle containing one positive atom
// is still provably not in FO (Lemmas 5.5/5.6 need no weak guards).
func TestNotWGButProvablyHard(t *testing.T) {
	// Add the q1 cycle to a non-weakly-guarded pattern.
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x), A(u | w), !B(w | u)")
	cls, err := core.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if cls.WeaklyGuarded {
		t.Fatal("query should not be weakly-guarded")
	}
	if cls.Verdict != core.VerdictNotFO {
		t.Errorf("verdict = %v, want not-FO via the A ⇄ B cycle", cls.Verdict)
	}
}

func TestClassifyRejectsInvalid(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
	)
	if _, err := core.Classify(q); err == nil {
		t.Error("self-join should be rejected")
	}
}

// All engines agree on random acyclic weakly-guarded queries.
func TestEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested := 0
	for tested < 40 {
		q := gen.Query(rng, opts)
		cls, err := core.Classify(q)
		if err != nil || cls.Verdict != core.VerdictFO {
			continue
		}
		tested++
		d := gen.Database(rng, q, dbOpts)
		want, err := core.Certain(q, d, core.EngineNaive)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []core.Engine{core.EngineAuto, core.EngineRewriting, core.EngineDirect} {
			got, err := core.Certain(q, d, e)
			if err != nil {
				t.Fatalf("engine %d: %v", e, err)
			}
			if got != want {
				t.Fatalf("engine %d = %v, naive = %v\nquery %s\ndb:\n%s", e, got, want, q, d)
			}
		}
	}
}

// EngineAuto falls back to naive for non-FO queries.
func TestAutoFallback(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	d := parse.MustDatabase(`
		R(g | b)
		S(b | g)
	`)
	got, err := core.Certain(q, d, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if got != naive.IsCertain(q, d) {
		t.Error("auto fallback disagrees with naive")
	}
}

// EngineRewriting fails cleanly on a non-FO query.
func TestRewritingEngineError(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if _, err := core.Certain(q, db.New(), core.EngineRewriting); err == nil {
		t.Error("rewriting engine should fail for a cyclic query")
	}
}

// Undeclared relations are treated as empty by every engine.
func TestUndeclaredRelations(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	d := db.New()
	d.MustDeclare("P", 2, 1)
	d.MustInsert(db.F("P", "a", "1"))
	// N is not declared at all.
	for _, e := range []core.Engine{core.EngineAuto, core.EngineRewriting, core.EngineDirect, core.EngineNaive} {
		got, err := core.Certain(q, d, e)
		if err != nil {
			t.Fatalf("engine %d: %v", e, err)
		}
		if !got {
			t.Errorf("engine %d: empty N should make q certain", e)
		}
	}
}
