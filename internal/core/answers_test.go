package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// q1 with x free becomes FO: the attack graph of the frozen query is
// acyclic, so RewriteFree succeeds where Rewrite fails.
func TestRewriteFreeChangesClassification(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if _, err := rewrite.Rewrite(q); err == nil {
		t.Fatal("Boolean q1 must have no rewriting")
	}
	f, err := rewrite.RewriteFree(q, []string{"x"})
	if err != nil {
		t.Fatalf("q1(x) should be FO: %v", err)
	}
	if free := fo.FreeVars(f); !free.Equal(schema.NewVarSet("x")) {
		t.Fatalf("free vars of rewriting = %v, want {x}", free)
	}
}

func TestRewriteFreeErrors(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	if _, err := rewrite.RewriteFree(q, []string{"z"}); err == nil {
		t.Error("unknown free variable should fail")
	}
	if _, err := rewrite.RewriteFree(q, []string{"x", "x"}); err == nil {
		t.Error("duplicate free variable should fail")
	}
}

func TestCertainAnswersBasic(t *testing.T) {
	// Girls-boys: which girls g make q1[x↦g] certain? g is certain iff
	// in every repair some R(g, b) has no S(b, g): i.e. the girl cannot
	// be "mutually matched" in some repair.
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | John)
		S(Bob | Alice)
	`)
	q := parse.MustQuery("R(x | y), !S(y | x)")
	got, err := core.CertainAnswers(q, []string{"x"}, d)
	if err != nil {
		t.Fatal(err)
	}
	// Maria: only fact R(Maria|John), S(John|Maria) absent → certain.
	// Alice: repair may choose R(Alice|Bob) with S(Bob|Alice) present →
	// that repair falsifies → not certain.
	want := []core.Answer{{"Maria"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestCertainAnswersTwoFreeVars(t *testing.T) {
	d := parse.MustDatabase(`
		Lives(ann | mons)
		Lives(bob | mons)
		Lives(bob | ghent)
		Born(ann | mons)
	`)
	q := parse.MustQuery("Lives(p | t), !Born(p | t)")
	got, err := core.CertainAnswers(q, []string{"p", "t"}, d)
	if err != nil {
		t.Fatal(err)
	}
	// ann lives in mons in the unique Lives(ann|·) choice but Born(ann|mons)
	// blocks it. bob: two Lives choices → no (bob, t) certain.
	if len(got) != 0 {
		t.Fatalf("answers = %v, want none", got)
	}
	d2 := parse.MustDatabase(`
		Lives(ann | mons)
		Born(ann | ghent)
	`)
	if err := parse.DeclareQueryRelations(d2, q); err != nil {
		t.Fatal(err)
	}
	got2, err := core.CertainAnswers(q, []string{"p", "t"}, d2)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Answer{{"ann", "mons"}}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("answers = %v, want %v", got2, want)
	}
}

func TestCertainAnswersErrors(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	if _, err := core.CertainAnswers(q, nil, db.New()); err == nil {
		t.Error("no free variables should fail")
	}
	if _, err := core.CertainAnswers(q, []string{"nope"}, db.New()); err == nil {
		t.Error("unknown free variable should fail")
	}
}

// Property: CertainAnswers equals the brute-force definition on random
// queries and databases, whether or not the frozen query is FO.
func TestCertainAnswersAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	for trial := 0; trial < 40; trial++ {
		q := gen.Query(rng, opts)
		vars := q.PositiveVars().Sorted()
		if len(vars) == 0 {
			continue
		}
		x := vars[rng.Intn(len(vars))]
		d := gen.Database(rng, q, dbOpts)
		got, err := core.CertainAnswers(q, []string{x}, d)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		gotSet := make(map[string]bool, len(got))
		for _, a := range got {
			gotSet[a[0]] = true
		}
		// Brute force over the full active domain.
		for _, c := range d.ActiveDomain() {
			qc := q.Substitute(map[string]schema.Term{x: schema.Const(c)})
			want := naive.IsCertain(qc, d)
			if want != gotSet[c] {
				t.Fatalf("%s, %s↦%s: CertainAnswers=%v, naive=%v\n%s",
					q, x, c, gotSet[c], want, d)
			}
		}
	}
}
