package core_test

import (
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
)

func TestPreparedFO(t *testing.T) {
	p, err := core.Prepare(parse.MustQuery("P(x | y), !N('c' | y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.InFO() {
		t.Fatal("q3 should be FO")
	}
	d := parse.MustDatabase(`
		P(p1 | v1)
		P(p2 | v2)
		N(c | v1)
	`)
	if !p.Certain(d) {
		t.Error("q3 should be certain here")
	}
	got, err := p.CertainVia(d, core.EngineRewriting)
	if err != nil || !got {
		t.Errorf("CertainVia(rewriting) = %v, %v", got, err)
	}
	got, err = p.CertainVia(d, core.EngineDirect)
	if err != nil || !got {
		t.Errorf("CertainVia(direct) = %v, %v", got, err)
	}
}

func TestPreparedHardQuery(t *testing.T) {
	p, err := core.Prepare(parse.MustQuery("R(x | y), !S(y | x)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.InFO() {
		t.Fatal("q1 should not be FO")
	}
	d := parse.MustDatabase("R(g | b)\nS(b | g)")
	if p.Certain(d) != naive.IsCertain(p.Classification().Query, d) {
		t.Error("fallback disagrees with naive")
	}
	if _, err := p.CertainVia(d, core.EngineRewriting); err == nil {
		t.Error("rewriting engine should fail for a hard query")
	}
}

func TestPreparedInvalid(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	q.Lits = append(q.Lits, q.Lits[0]) // create a self-join
	if _, err := core.Prepare(q); err == nil {
		t.Error("invalid query should fail to prepare")
	}
}

// Prepared answers match one-shot Certain across random queries and
// databases — and preparation dominates the per-call cost for FO queries.
func TestPreparedMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	for trial := 0; trial < 30; trial++ {
		q := gen.Query(rng, opts)
		p, err := core.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			d := gen.Database(rng, q, dbOpts)
			want, err := core.Certain(q, d, core.EngineAuto)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.Certain(d); got != want {
				t.Fatalf("prepared = %v, one-shot = %v on %s", got, want, q)
			}
		}
	}
}
