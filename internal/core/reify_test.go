package core_test

import (
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func TestReifiableVarsExamples(t *testing.T) {
	// q3: both x and y are attacked by N (Example 4.2).
	rv, err := core.ReifiableVars(parse.MustQuery("P(x | y), !N('c' | y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Empty() {
		t.Errorf("q3 reifiable vars = %v, want {}", rv)
	}
	// Path query: only x is unattacked.
	rv, err = core.ReifiableVars(parse.MustQuery("R(x | y), S(y | z)"))
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Equal(schema.NewVarSet("x")) {
		t.Errorf("path reifiable vars = %v, want {x}", rv)
	}
}

func TestReifiableVarsRejectsNonWG(t *testing.T) {
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	if _, err := core.ReifiableVars(q); err == nil {
		t.Fatal("q4 should be rejected: characterization is open there")
	}
}

// Semantic check of Corollary 6.9's direction: on random weakly-guarded
// queries and random databases, whenever q is certain, every reifiable
// variable x admits a constant c with q[x↦c] certain.
func TestReifiableVarsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	checked := 0
	for tries := 0; tries < 400 && checked < 20; tries++ {
		q := gen.Query(rng, opts)
		rv, err := core.ReifiableVars(q)
		if err != nil || rv.Empty() {
			continue
		}
		d := gen.Database(rng, q, dbOpts)
		if !naive.IsCertain(q, d) {
			continue
		}
		checked++
		for _, x := range rv.Sorted() {
			found := false
			for _, c := range d.ActiveDomain() {
				qc := q.Substitute(map[string]schema.Term{x: schema.Const(c)})
				if naive.IsCertain(qc, d) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("reifiable variable %s of %s has no witness constant on\n%s", x, q, d)
			}
		}
	}
	if checked == 0 {
		t.Skip("no certain instances found; generator tuning needed")
	}
}
