package core

import (
	"fmt"
	"sort"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/naive"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// Answer is one certain answer: a binding of the free variables.
type Answer []string

// CertainAnswers computes the certain answers of a non-Boolean query: the
// tuples c⃗ over the active domain such that q[x⃗ ↦ c⃗] is true in every
// repair of d. Free variables are treated as constants (Section 1 of the
// paper, citing [19, §3.3]).
//
// When the frozen query has a consistent first-order rewriting, the
// rewriting is constructed once and evaluated per candidate binding;
// otherwise each candidate falls back to repair enumeration. Candidate
// values for each free variable are drawn from the database columns in
// which the variable occurs in positive atoms (certain answers cannot
// bind free variables elsewhere). Answers are returned in sorted order.
func CertainAnswers(q schema.Query, free []string, d *db.Database) ([]Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(free) == 0 {
		return nil, fmt.Errorf("core: no free variables; use Certain for Boolean queries")
	}
	vars := q.Vars()
	for _, x := range free {
		if !vars.Has(x) {
			return nil, fmt.Errorf("core: free variable %s does not occur in the query", x)
		}
	}

	f, rewriteErr := rewrite.RewriteFree(q, free)

	// Candidate pools per free variable.
	pools := make([][]string, len(free))
	for i, x := range free {
		set := make(map[string]bool)
		for _, p := range q.Positive() {
			rel := d.Relation(p.Rel)
			if rel == nil {
				continue
			}
			for pos, t := range p.Terms {
				if t.IsVar && t.Name == x {
					for _, v := range rel.ColumnValues(pos) {
						set[v] = true
					}
				}
			}
		}
		pool := make([]string, 0, len(set))
		for v := range set {
			pool = append(pool, v)
		}
		sort.Strings(pool)
		pools[i] = pool
	}

	var answers []Answer
	binding := make([]string, len(free))
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(free) {
			ok, err := checkBinding(q, free, binding, d, f, rewriteErr)
			if err != nil {
				return err
			}
			if ok {
				answers = append(answers, append(Answer{}, binding...))
			}
			return nil
		}
		for _, v := range pools[i] {
			binding[i] = v
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return answers, nil
}

func checkBinding(q schema.Query, free []string, binding []string, d *db.Database, f fo.Formula, rewriteErr error) (bool, error) {
	if rewriteErr == nil {
		env := make(map[string]string, len(free))
		for i, x := range free {
			env[x] = binding[i]
		}
		needs := false
		for _, a := range q.Atoms() {
			if d.Relation(a.Rel) == nil {
				needs = true
				break
			}
		}
		dd := d
		if needs {
			dd = d.Clone()
			for _, a := range q.Atoms() {
				if dd.Relation(a.Rel) == nil {
					dd.MustDeclare(a.Rel, a.Arity(), a.Key)
				}
			}
		}
		return fo.EvalWith(dd, f, env), nil
	}
	sub := make(map[string]schema.Term, len(free))
	for i, x := range free {
		sub[x] = schema.Const(binding[i])
	}
	return naive.IsCertain(q.Substitute(sub), d), nil
}
