// Package core is the public facade of the library: it classifies a query
// according to Theorem 4.3 of Koutris & Wijsen (PODS 2018) and answers
// CERTAINTY(q) with a choice of engines.
//
// For a self-join-free Boolean conjunctive query q with negated atoms and
// weakly-guarded negation:
//
//   - if the attack graph of q is acyclic, CERTAINTY(q) is in FO and
//     Classify returns a consistent first-order rewriting;
//   - if the attack graph is cyclic, CERTAINTY(q) is L-hard or NL-hard
//     (hence not in FO), and Classify reports the 2-cycle witnessing it.
//
// Outside weakly-guarded negation the theorem does not apply; Classify
// still reports "not in FO" when a 2-cycle with at most one negated atom
// exists (Lemmas 5.5 and 5.6 hold unconditionally) and reports
// VerdictOutOfScope otherwise.
package core

import (
	"errors"
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/fo"
	"cqa/internal/naive"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// Verdict is the FO-membership classification of CERTAINTY(q).
type Verdict string

// Verdicts returned by Classify.
const (
	// VerdictFO: CERTAINTY(q) is in FO; a rewriting is available.
	VerdictFO Verdict = "FO"
	// VerdictNotFO: CERTAINTY(q) is provably not in FO.
	VerdictNotFO Verdict = "not-FO"
	// VerdictOutOfScope: negation is not weakly-guarded and no
	// unconditional hardness lemma applies; Theorem 4.3 is silent.
	VerdictOutOfScope Verdict = "out-of-scope"
)

// Classification is the result of analysing a query.
type Classification struct {
	Query         schema.Query
	Guarded       bool
	WeaklyGuarded bool
	Graph         *attack.Graph
	Acyclic       bool
	Verdict       Verdict

	// Hardness is the lower bound shown for non-FO queries: "L-hard" or
	// "NL-hard" (Lemmas 5.5–5.7).
	Hardness string
	// CycleF ⇄ CycleG is the witnessing attack 2-cycle (non-FO only);
	// CycleNegated counts its negated atoms.
	CycleF, CycleG string
	CycleNegated   int

	// Rewriting is the consistent first-order rewriting (FO only).
	Rewriting fo.Formula
}

// Classify validates q and decides membership of CERTAINTY(q) in FO.
func Classify(q schema.Query) (*Classification, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c := &Classification{
		Query:         q,
		Guarded:       q.Guarded(),
		WeaklyGuarded: q.WeaklyGuarded(),
		Graph:         attack.New(q),
	}
	c.Acyclic = c.Graph.IsAcyclic()

	if c.WeaklyGuarded && c.Acyclic {
		f, err := rewrite.Rewrite(q)
		if err != nil {
			return nil, fmt.Errorf("core: internal: acyclic weakly-guarded query failed to rewrite: %w", err)
		}
		c.Verdict = VerdictFO
		c.Rewriting = f
		return c, nil
	}

	// Look for a 2-cycle. Prefer the strongest applicable bound:
	// a 1-negated 2-cycle gives NL-hardness (Lemma 5.6); 0- and
	// 2-negated cycles give L-hardness (Lemmas 5.5, 5.7). Without weak
	// guards only cycles with ≤ 1 negated atom yield hardness.
	bestNeg := -1
	for _, a := range c.Graph.Atoms() {
		for _, b := range c.Graph.Atoms() {
			if a >= b || !c.Graph.Attacks(a, b) || !c.Graph.Attacks(b, a) {
				continue
			}
			n := c.Graph.NegatedInPair(a, b)
			if !c.WeaklyGuarded && n == 2 {
				continue // Lemma 5.7 requires weak guards (cf. Example 7.1)
			}
			better := bestNeg == -1 || rank(n) > rank(bestNeg)
			if better {
				c.CycleF, c.CycleG, bestNeg = a, b, n
			}
		}
	}
	if bestNeg >= 0 {
		c.Verdict = VerdictNotFO
		c.CycleNegated = bestNeg
		if bestNeg == 1 {
			c.Hardness = "NL-hard"
		} else {
			c.Hardness = "L-hard"
		}
		return c, nil
	}

	// Cyclic (or weak-guard failure) without a usable 2-cycle. For
	// weakly-guarded queries Lemma 4.9 guarantees a 2-cycle, so this
	// point is only reachable when negation is not weakly-guarded.
	c.Verdict = VerdictOutOfScope
	return c, nil
}

// rank orders hardness strength: NL-hard (1 negated atom) beats L-hard.
func rank(negated int) int {
	if negated == 1 {
		return 2
	}
	return 1
}

// ReifiableVars returns the set of reifiable variables of q: variables x
// such that whenever q is certain on a database, some constant c makes
// q[x ↦ c] certain too. For weakly-guarded negation the paper fully
// characterizes this set as the unattacked variables (Corollary 6.9 gives
// sufficiency, Proposition 7.2 necessity). For non-weakly-guarded queries
// the characterization is open — Example 7.1's q4 — so an error is
// returned.
func ReifiableVars(q schema.Query) (schema.VarSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.WeaklyGuarded() {
		return nil, errors.New("core: reifiable variables are only characterized for weakly-guarded negation (attacked variables are never reifiable, but the converse is open; cf. Section 7)")
	}
	return attack.New(q).UnattackedVars(), nil
}

// Engine selects how Certain answers CERTAINTY(q).
type Engine int

// Engines supported by Certain.
const (
	// EngineAuto uses the rewriting when CERTAINTY(q) is in FO and
	// falls back to naive repair enumeration otherwise.
	EngineAuto Engine = iota
	// EngineRewriting evaluates the consistent first-order rewriting.
	EngineRewriting
	// EngineDirect runs Algorithm 1 on the database.
	EngineDirect
	// EngineNaive enumerates repairs (exponential; ground truth).
	EngineNaive
)

// ErrNoRewriting is returned when EngineRewriting or EngineDirect is
// requested for a query whose CERTAINTY problem is not in FO (or out of
// the theorem's scope).
var ErrNoRewriting = errors.New("core: query has no consistent first-order rewriting")

// Certain reports whether q is true in every repair of d using the chosen
// engine. Relations mentioned by q that the database does not know are
// treated as empty.
func Certain(q schema.Query, d *db.Database, engine Engine) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	switch engine {
	case EngineNaive:
		return naive.IsCertain(q, d), nil
	case EngineDirect:
		return direct.IsCertain(q, d)
	case EngineRewriting:
		f, err := rewrite.Rewrite(q)
		if err != nil {
			return false, fmt.Errorf("%w: %v", ErrNoRewriting, err)
		}
		return evalOn(d, q, f), nil
	case EngineAuto:
		c, err := Classify(q)
		if err != nil {
			return false, err
		}
		if c.Verdict == VerdictFO {
			return evalOn(d, q, c.Rewriting), nil
		}
		return naive.IsCertain(q, d), nil
	default:
		return false, fmt.Errorf("core: unknown engine %d", engine)
	}
}

// evalOn evaluates a rewriting after making sure every relation of q is
// declared, so formulas over empty relations behave correctly.
func evalOn(d *db.Database, q schema.Query, f fo.Formula) bool {
	return fo.Eval(withQueryRels(d, q), f)
}

// evalOnParallel is evalOn with the fo parallel evaluation hot path.
func evalOnParallel(d *db.Database, q schema.Query, f fo.Formula, workers, minCandidates int) bool {
	return fo.EvalParallelOpts(withQueryRels(d, q), f, workers, minCandidates)
}

// withQueryRels returns d with every relation of q declared, cloning only
// when a declaration is missing.
func withQueryRels(d *db.Database, q schema.Query) *db.Database {
	needsDeclare := false
	for _, a := range q.Atoms() {
		if d.Relation(a.Rel) == nil {
			needsDeclare = true
			break
		}
	}
	if needsDeclare {
		d = d.Clone()
		for _, a := range q.Atoms() {
			if d.Relation(a.Rel) == nil {
				d.MustDeclare(a.Rel, a.Arity(), a.Key)
			}
		}
	}
	return d
}
