// Package special implements the ad-hoc first-order decision procedure of
// Example 7.1 for the query
//
//	q4 = {X(x), Y(y), ¬R(x|y), ¬S(y|x)}
//
// whose negation is NOT weakly-guarded and whose attack graph is cyclic,
// yet CERTAINTY(q4) is in FO by a counting argument: with m X-facts and n
// Y-facts, a repair can cover at most m + n of the m·n pairs, so whenever
// m·n > m + n every repair satisfies q4. The remaining degenerate cases
// (m = 1, n = 1, m = n = 2) are decided directly. This demonstrates the
// paper's point that rewriting-by-reification is not the only route to FO.
package special

import "cqa/internal/db"

// Q4Schema declares the relations of q4 on a database.
func Q4Schema(d *db.Database) {
	d.MustDeclare("X", 1, 1)
	d.MustDeclare("Y", 1, 1)
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
}

// Q4Certain reports whether q4 is true in every repair of d, in time
// polynomial in the database (the procedure corresponds to a fixed
// first-order sentence).
func Q4Certain(d *db.Database) bool {
	xs := values(d, "X")
	ys := values(d, "Y")
	m, n := len(xs), len(ys)
	if m == 0 || n == 0 {
		// No valuation can satisfy the positive part.
		return false
	}
	if m*n > m+n {
		// The counting argument: no repair can cover all pairs.
		return true
	}
	if m == 1 {
		return !coverableOneX(d, xs[0], ys)
	}
	if n == 1 {
		return !coverableOneY(d, ys[0], xs)
	}
	// m == n == 2: a repair falsifying q4 exists iff db includes
	// {R(a1,b_{j1}), R(a2,b_{j2}), S(b_{j1},a2), S(b_{j2},a1)} with
	// j1 ≠ j2 (Example 7.1).
	a1, a2 := xs[0], xs[1]
	for j1 := 0; j1 < 2; j1++ {
		j2 := 1 - j1
		if d.Has(db.F("R", a1, ys[j1])) && d.Has(db.F("R", a2, ys[j2])) &&
			d.Has(db.F("S", ys[j1], a2)) && d.Has(db.F("S", ys[j2], a1)) {
			return false
		}
	}
	return true
}

// coverableOneX decides, for a single X-fact a, whether some repair covers
// every pair (a, b): the repair's unique R(a, ·) fact covers at most one
// b, and every other b must be covered by choosing S(b, a) in its S-block,
// which is possible exactly when S(b, a) ∈ db.
func coverableOneX(d *db.Database, a string, ys []string) bool {
	var uncovered []string
	for _, b := range ys {
		if !d.Has(db.F("S", b, a)) {
			uncovered = append(uncovered, b)
		}
	}
	switch len(uncovered) {
	case 0:
		return true
	case 1:
		return d.Has(db.F("R", a, uncovered[0]))
	default:
		return false
	}
}

// coverableOneY is the symmetric case for a single Y-fact b.
func coverableOneY(d *db.Database, b string, xs []string) bool {
	var uncovered []string
	for _, a := range xs {
		if !d.Has(db.F("R", a, b)) {
			uncovered = append(uncovered, a)
		}
	}
	switch len(uncovered) {
	case 0:
		return true
	case 1:
		return d.Has(db.F("S", b, uncovered[0]))
	default:
		return false
	}
}

func values(d *db.Database, rel string) []string {
	facts := d.Facts(rel)
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.Args[0]
	}
	return out
}

// Figure3Database builds the database of Figure 3: three X-facts, two
// Y-facts, and the full R/S content over the 3×2 pairs. Since 3·2 > 3+2,
// every repair satisfies q4 (the outcome of Q4Certain is independent of
// the R/S content), and with the full R/S content no single variable of q4
// is reifiable: for every value c, some repair falsifies q4[x↦c] (and
// likewise for y), which is the Section 7 point that the FO procedure for
// q4 cannot be reification-based.
func Figure3Database() *db.Database {
	d := db.New()
	Q4Schema(d)
	xs := []string{"1", "2", "3"}
	ys := []string{"a", "b"}
	for _, a := range xs {
		d.MustInsert(db.F("X", a))
	}
	for _, b := range ys {
		d.MustInsert(db.F("Y", b))
	}
	for _, a := range xs {
		for _, b := range ys {
			d.MustInsert(db.F("R", a, b))
			d.MustInsert(db.F("S", b, a))
		}
	}
	return d
}
