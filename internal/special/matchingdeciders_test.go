package special_test

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/special"
)

// Q1Certain on the Figure 1 database must agree with enumeration: not
// certain, because the matching Alice–George / Maria–Bob exists.
func TestQ1CertainFigure1(t *testing.T) {
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | Bob)
		R(Maria | John)
		S(Bob | Alice)
		S(Bob | Maria)
		S(George | Alice)
		S(George | Maria)
	`)
	if special.Q1Certain(d) {
		t.Fatal("Figure 1: q1 should not be certain")
	}
}

// Exhaustive agreement with repair enumeration over all small databases.
func TestQ1CertainExhaustive(t *testing.T) {
	q1 := reduction.Q1()
	var facts []db.Fact
	for _, a := range []string{"a1", "a2"} {
		for _, b := range []string{"b1", "b2"} {
			facts = append(facts, db.F("R", a, b), db.F("S", b, a))
		}
	}
	for mask := 0; mask < 1<<len(facts); mask++ {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 2, 1)
		for i, f := range facts {
			if mask&(1<<i) != 0 {
				d.MustInsert(f)
			}
		}
		want := naive.IsCertain(q1, d)
		if got := special.Q1Certain(d); got != want {
			t.Fatalf("mask %d: matching decider = %v, naive = %v\n%s", mask, got, want, d)
		}
	}
}

// Random agreement with larger domains (beyond exhaustive reach).
func TestQ1CertainRandom(t *testing.T) {
	q1 := reduction.Q1()
	rng := rand.New(rand.NewSource(12))
	as := []string{"a1", "a2", "a3"}
	bs := []string{"b1", "b2", "b3"}
	for trial := 0; trial < 300; trial++ {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 2, 1)
		for i := 0; i < 6; i++ {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("R", as[rng.Intn(3)], bs[rng.Intn(3)]))
			}
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("S", bs[rng.Intn(3)], as[rng.Intn(3)]))
			}
		}
		want := naive.IsCertain(q1, d)
		if got := special.Q1Certain(d); got != want {
			t.Fatalf("trial %d: matching decider = %v, naive = %v\n%s", trial, got, want, d)
		}
	}
}

// QHallCertain agrees with repair enumeration on random S-COVERING
// databases, including stray Nᵢ facts with non-'c' keys (which are
// irrelevant to the query).
func TestQHallCertainRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		l := 1 + rng.Intn(3)
		inst := gen.SCovering(rng, rng.Intn(4), l, 0.5)
		d := reduction.SCoveringToQHall(inst)
		if rng.Intn(2) == 0 {
			// Stray facts in other blocks must not change the answer.
			d.MustInsert(db.F("N1", "other", "junk"))
		}
		q := reduction.QHall(l)
		want := naive.IsCertain(q, d)
		got, err := special.QHallCertain(d, l)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: matching decider = %v, naive = %v\n%s", trial, got, want, d)
		}
	}
}

func TestQHallCertainEdges(t *testing.T) {
	d := db.New()
	got, err := special.QHallCertain(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("no S facts: not certain")
	}
	if _, err := special.QHallCertain(d, -1); err == nil {
		t.Error("negative ℓ should fail")
	}
}

func TestQ1CertainEmpty(t *testing.T) {
	if special.Q1Certain(db.New()) {
		t.Error("empty database: q1 not certain")
	}
}
