package special_test

import (
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/special"
)

func TestFigure3(t *testing.T) {
	d := special.Figure3Database()
	if !special.Q4Certain(d) {
		t.Fatal("Figure 3: 3·2 > 3+2, every repair must satisfy q4")
	}
	// Cross-check against the naive engine.
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	if !naive.IsCertain(q, d) {
		t.Fatal("naive disagrees on Figure 3")
	}
}

// Exhaustive validation of the q4 decision procedure against repair
// enumeration over all small databases with up to 2 X-values, 2 Y-values,
// and a selection of R/S facts.
func TestQ4ExhaustiveSmall(t *testing.T) {
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	xs := []string{"a1", "a2"}
	ys := []string{"b1", "b2"}
	var rFacts, sFacts []db.Fact
	for _, a := range xs {
		for _, b := range ys {
			rFacts = append(rFacts, db.F("R", a, b))
			sFacts = append(sFacts, db.F("S", b, a))
		}
	}
	// Masks: which X facts, Y facts, R facts, S facts are present.
	for xm := 0; xm < 4; xm++ {
		for ym := 0; ym < 4; ym++ {
			for rm := 0; rm < 16; rm++ {
				for sm := 0; sm < 16; sm += 3 { // stride keeps runtime modest
					d := db.New()
					special.Q4Schema(d)
					for i, a := range xs {
						if xm&(1<<i) != 0 {
							d.MustInsert(db.F("X", a))
						}
					}
					for i, b := range ys {
						if ym&(1<<i) != 0 {
							d.MustInsert(db.F("Y", b))
						}
					}
					for i, f := range rFacts {
						if rm&(1<<i) != 0 {
							d.MustInsert(f)
						}
					}
					for i, f := range sFacts {
						if sm&(1<<i) != 0 {
							d.MustInsert(f)
						}
					}
					want := naive.IsCertain(q, d)
					got := special.Q4Certain(d)
					if got != want {
						t.Fatalf("q4 special = %v, naive = %v on\n%s", got, want, d)
					}
				}
			}
		}
	}
}

// Random validation with larger domains, exercising the m·n > m+n branch
// and the m=1 / n=1 branches.
func TestQ4Random(t *testing.T) {
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		d := db.New()
		special.Q4Schema(d)
		m := rng.Intn(4)
		n := rng.Intn(4)
		var xs, ys []string
		for i := 0; i < m; i++ {
			xs = append(xs, string(rune('a'+i)))
			d.MustInsert(db.F("X", xs[i]))
		}
		for i := 0; i < n; i++ {
			ys = append(ys, string(rune('p'+i)))
			d.MustInsert(db.F("Y", ys[i]))
		}
		for i := 0; i < 5; i++ {
			if m > 0 && n > 0 && rng.Intn(2) == 0 {
				d.MustInsert(db.F("R", xs[rng.Intn(m)], ys[rng.Intn(n)]))
			}
			if m > 0 && n > 0 && rng.Intn(2) == 0 {
				d.MustInsert(db.F("S", ys[rng.Intn(n)], xs[rng.Intn(m)]))
			}
		}
		want := naive.IsCertain(q, d)
		if got := special.Q4Certain(d); got != want {
			t.Fatalf("trial %d: q4 special = %v, naive = %v on\n%s", trial, got, want, d)
		}
	}
}

// q4's attack graph is cyclic and its negation is not weakly-guarded, so
// the general classifier must put it out of scope — the whole point of
// Section 7 is that its FO membership needs the ad-hoc argument.
func TestQ4OutOfScope(t *testing.T) {
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	c, err := core.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.WeaklyGuarded {
		t.Error("q4 negation should not be weakly-guarded")
	}
	if c.Acyclic {
		t.Error("q4 attack graph should be cyclic")
	}
	if c.Verdict != core.VerdictOutOfScope {
		t.Errorf("verdict = %v, want out-of-scope", c.Verdict)
	}
}

// Proposition 7.2 witness behaviour: X and Y values in Figure 3 are not
// reifiable — fixing any single x makes some repair falsify q4[x↦c].
func TestFigure3NoReification(t *testing.T) {
	d := special.Figure3Database()
	for _, a := range []string{"1", "2", "3"} {
		qc := parse.MustQuery("X('" + a + "'), Y(y), !R('" + a + "' | y), !S(y | '" + a + "')")
		if naive.IsCertain(qc, d) {
			t.Errorf("q4[x↦%s] should not be certain on Figure 3", a)
		}
	}
	for _, b := range []string{"a", "b"} {
		qc := parse.MustQuery("X(x), Y('" + b + "'), !R(x | '" + b + "'), !S('" + b + "' | x)")
		if naive.IsCertain(qc, d) {
			t.Errorf("q4[y↦%s] should not be certain on Figure 3", b)
		}
	}
}
