package special

import (
	"fmt"

	"cqa/internal/db"
	"cqa/internal/matching"
	"cqa/internal/planner"
	"cqa/internal/schema"
)

// q1Plan is the planner's plan for q1 = {R(x|y), ¬S(y|x)}: the matching
// class, whose decider runs on interned ids. Built once — Plans are
// immutable and safe for concurrent use.
var q1Plan = planner.New(schema.NewQuery(
	schema.Pos(schema.NewAtom("R", 1, schema.Var("x"), schema.Var("y"))),
	schema.Neg(schema.NewAtom("S", 1, schema.Var("y"), schema.Var("x"))),
), false)

// Q1Certain decides CERTAINTY(q1) for q1 = {R(x|y), ¬S(y|x)} on an
// arbitrary database in polynomial time, via bipartite matching. The
// problem is NL-hard and not in FO (Lemma 5.2), but it is in P:
//
// A repair falsifies q1 iff every chosen R-fact R(a, b) has S(b, a)
// chosen too. Since the S-block of b can serve only one a, a falsifying
// repair corresponds exactly to a system of distinct representatives:
// an injective map a ↦ b_a over the R-block keys with R(a, b_a) ∈ db and
// S(b_a, a) ∈ db. Such a system exists iff the "mutual graph"
// {(a, b) : R(a,b) ∈ db and S(b,a) ∈ db} has a matching saturating all
// R-block keys — decidable by Hopcroft–Karp. CERTAINTY(q1) is the
// negation.
//
// This generalizes Example 1.1 from the "every fact is mutual" setting to
// arbitrary databases. The algorithm itself lives in internal/planner,
// which further generalizes the shape to arbitrary relation names and
// variables and runs it on interned int32 ids — the database's facts are
// distinct, so the interned rows need no per-call dedup set at all
// (the old string-keyed implementation allocated one per block).
func Q1Certain(d *db.Database) bool {
	certain, ok := q1Plan.Certain(d.Interned())
	if !ok {
		panic("special: q1 plan lost its matching class") // unreachable
	}
	return certain
}

// QHallCertain decides CERTAINTY(q_Hall) for
// q_Hall = {S(x), ¬N₁(c|x), …, ¬N_ℓ(c|x)} on an arbitrary database in
// polynomial time via S-COVERING (Examples 1.2 and 6.12): a repair
// falsifies q_Hall iff the choices of the Nᵢ(c|·) blocks cover every
// S-value, which is a left-saturating bipartite matching question. The
// rewriting of Figure 2 answers the same question in FO but with size
// exponential in ℓ; this decider is the matching-based alternative.
func QHallCertain(d *db.Database, l int) (bool, error) {
	if l < 0 {
		return false, fmt.Errorf("special: negative ℓ")
	}
	sRel := d.Relation("S")
	if sRel == nil || sRel.Size() == 0 {
		return false, nil // no satisfying valuation at all
	}
	sVals := sRel.ColumnValues(0)
	inst := matching.SCoveringInstance{S: sVals, T: make([][]string, l)}
	for i := 1; i <= l; i++ {
		for _, f := range d.Facts(fmt.Sprintf("N%d", i)) {
			if f.Args[0] == "c" {
				inst.T[i-1] = append(inst.T[i-1], f.Args[1])
			}
		}
	}
	return !inst.Solvable(), nil
}
