package special

import (
	"fmt"
	"sort"

	"cqa/internal/db"
	"cqa/internal/graphx"
	"cqa/internal/matching"
)

// Q1Certain decides CERTAINTY(q1) for q1 = {R(x|y), ¬S(y|x)} on an
// arbitrary database in polynomial time, via bipartite matching. The
// problem is NL-hard and not in FO (Lemma 5.2), but it is in P:
//
// A repair falsifies q1 iff every chosen R-fact R(a, b) has S(b, a)
// chosen too. Since the S-block of b can serve only one a, a falsifying
// repair corresponds exactly to a system of distinct representatives:
// an injective map a ↦ b_a over the R-block keys with R(a, b_a) ∈ db and
// S(b_a, a) ∈ db. Such a system exists iff the "mutual graph"
// {(a, b) : R(a,b) ∈ db and S(b,a) ∈ db} has a matching saturating all
// R-block keys — decidable by Hopcroft–Karp. CERTAINTY(q1) is the
// negation.
//
// This generalizes Example 1.1 from the "every fact is mutual" setting to
// arbitrary databases.
func Q1Certain(d *db.Database) bool {
	rRel := d.Relation("R")
	if rRel == nil || rRel.Size() == 0 {
		// No R-facts: q1 is false in the unique (empty-R) repair.
		return false
	}
	girls := rRel.ColumnValues(0) // R-block keys
	boySet := map[string]bool{}
	adj := make(map[string][]string)
	for _, f := range d.Facts("R") {
		a, b := f.Args[0], f.Args[1]
		if d.Has(db.F("S", b, a)) {
			adj[a] = append(adj[a], b)
			boySet[b] = true
		}
	}
	boys := make([]string, 0, len(boySet))
	for b := range boySet {
		boys = append(boys, b)
	}
	sort.Strings(boys)
	bg := graphx.NewBipartite(girls, boys)
	for a, bs := range adj {
		seen := map[string]bool{}
		for _, b := range bs {
			if !seen[b] {
				seen[b] = true
				if err := bg.AddEdge(a, b); err != nil {
					panic(err) // unreachable: endpoints declared
				}
			}
		}
	}
	saturating := len(matching.MaxMatching(bg)) == len(girls)
	return !saturating
}

// QHallCertain decides CERTAINTY(q_Hall) for
// q_Hall = {S(x), ¬N₁(c|x), …, ¬N_ℓ(c|x)} on an arbitrary database in
// polynomial time via S-COVERING (Examples 1.2 and 6.12): a repair
// falsifies q_Hall iff the choices of the Nᵢ(c|·) blocks cover every
// S-value, which is a left-saturating bipartite matching question. The
// rewriting of Figure 2 answers the same question in FO but with size
// exponential in ℓ; this decider is the matching-based alternative.
func QHallCertain(d *db.Database, l int) (bool, error) {
	if l < 0 {
		return false, fmt.Errorf("special: negative ℓ")
	}
	sRel := d.Relation("S")
	if sRel == nil || sRel.Size() == 0 {
		return false, nil // no satisfying valuation at all
	}
	sVals := sRel.ColumnValues(0)
	inst := matching.SCoveringInstance{S: sVals, T: make([][]string, l)}
	for i := 1; i <= l; i++ {
		for _, f := range d.Facts(fmt.Sprintf("N%d", i)) {
			if f.Args[0] == "c" {
				inst.T[i-1] = append(inst.T[i-1], f.Args[1])
			}
		}
	}
	return !inst.Solvable(), nil
}
