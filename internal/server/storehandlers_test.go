package server

import (
	"net/http"
	"path/filepath"
	"testing"

	"cqa/internal/shard"
	"cqa/internal/store"
)

func TestDBCreateInsertDeleteInfo(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp := postJSON(t, ts.URL+"/v1/db/create", DBCreateRequest{Name: "orders", Facts: "O(a | 1)\nO(b | 2)\n"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	cr := decodeBody[DBWriteResponse](t, resp)
	if cr.Database != "orders" || cr.Applied != 2 {
		t.Fatalf("create response: %+v", cr)
	}

	// Duplicate create conflicts; bad names are rejected.
	resp = postJSON(t, ts.URL+"/v1/db/create", DBCreateRequest{Name: "orders"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/db/create", DBCreateRequest{Name: "../evil"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad name status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// An insert bumps the version and reports what it touched; the no-op
	// part of the batch is filtered.
	resp = postJSON(t, ts.URL+"/v1/db/insert", DBWriteRequest{Database: "orders", Facts: "O(a | 1)\nO(c | 3)\n"})
	wr := decodeBody[DBWriteResponse](t, resp)
	if wr.Applied != 1 || len(wr.Touched) != 1 || wr.Touched[0] != "O" {
		t.Fatalf("insert response: %+v", wr)
	}

	// The new database answers /v1/certain with version and cache state.
	resp = postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "O(x | y)", Database: "orders"})
	ans := decodeBody[CertainResponse](t, resp)
	if !ans.Certain || ans.Version != wr.Version || ans.Cached == nil || *ans.Cached {
		t.Fatalf("first certain: %+v", ans)
	}

	resp = postJSON(t, ts.URL+"/v1/db/delete", DBWriteRequest{Database: "orders", Facts: "O(a | 1)\nO(b | 2)\nO(c | 3)\n"})
	wr = decodeBody[DBWriteResponse](t, resp)
	if wr.Applied != 3 {
		t.Fatalf("delete response: %+v", wr)
	}
	resp = postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "O(x | y)", Database: "orders"})
	ans = decodeBody[CertainResponse](t, resp)
	if ans.Certain {
		t.Fatalf("empty O should not be certain: %+v", ans)
	}

	// Writes to a database that does not exist are 404.
	resp = postJSON(t, ts.URL+"/v1/db/insert", DBWriteRequest{Database: "ghost", Facts: "O(a | 1)"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown db insert status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Info lists both the preloaded and the created database.
	resp, err := http.Get(ts.URL + "/v1/db/info")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[DBInfoResponse](t, resp)
	byName := make(map[string]DBInfo)
	for _, d := range info.Databases {
		byName[d.Name] = d
	}
	if len(byName) != 2 {
		t.Fatalf("info databases: %+v", info.Databases)
	}
	if p := byName["people"]; p.Facts != 2 || p.Durable {
		t.Errorf("people info: %+v", p)
	}
	if o := byName["orders"]; o.Facts != 0 || o.Version != wr.Version || o.Durable {
		t.Errorf("orders info: %+v", o)
	}
}

// The acceptance criterion end to end over HTTP: a write to a relation
// the query does not mention keeps the answer cached; a write to a
// mentioned relation invalidates it and the recomputed answer reflects
// the new facts.
func TestResultCacheInvalidationOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, DBCreateRequest{Name: "d", Facts: "R(a | 1)\nS(z | z)\nT(z | z)\n"})

	askCached := func(wantCertain bool) bool {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y), !S(y | x)", Database: "d"})
		ans := decodeBody[CertainResponse](t, resp)
		if ans.Certain != wantCertain {
			t.Fatalf("certain = %v, want %v (version %d)", ans.Certain, wantCertain, ans.Version)
		}
		if ans.Cached == nil {
			t.Fatal("named-db response lacks cached field")
		}
		return *ans.Cached
	}

	if askCached(true) {
		t.Fatal("first ask must be a miss")
	}
	if !askCached(true) {
		t.Fatal("repeat ask must be a hit")
	}
	// T is not mentioned by the query: the version moves, the cache holds.
	postJSON(t, ts.URL+"/v1/db/insert", DBWriteRequest{Database: "d", Facts: "T(new | fact)"}).Body.Close()
	if !askCached(true) {
		t.Fatal("write to unmentioned relation must keep the cache hit")
	}
	// S(1|a) blocks the only witness R(a|1): the answer itself flips.
	postJSON(t, ts.URL+"/v1/db/insert", DBWriteRequest{Database: "d", Facts: "S(1 | a)"}).Body.Close()
	if askCached(false) {
		t.Fatal("write to mentioned relation must be a miss")
	}
}

// A server handed a durable store set persists HTTP writes across a
// restart of the whole stack.
func TestDurableStoresSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	set, err := shard.OpenSet(store.Options{Dir: dir, Sync: false}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Stores: set})
	mustCreate(t, ts.URL, DBCreateRequest{Name: "k", Facts: "R(a | 1)"})
	postJSON(t, ts.URL+"/v1/db/insert", DBWriteRequest{Database: "k", Facts: "R(b | 2)"}).Body.Close()
	ts.Close()
	if err := set.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "k.*")); len(m) == 0 {
		t.Fatal("no k.wal/k.snap files on disk after close")
	}

	set2, err := shard.OpenSet(store.Options{Dir: dir}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer set2.CloseAll()
	_, ts2 := newTestServer(t, Options{Stores: set2})
	resp := postJSON(t, ts2.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "k"})
	ans := decodeBody[CertainResponse](t, resp)
	if !ans.Certain {
		t.Fatal("facts written before restart must survive")
	}
	resp, err = http.Get(ts2.URL + "/v1/db/info")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[DBInfoResponse](t, resp)
	found := false
	for _, d := range info.Databases {
		if d.Name == "k" {
			found = true
			if !d.Durable || d.Facts != 2 {
				t.Errorf("recovered info: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("database k not listed after restart")
	}
}

func mustCreate(t *testing.T, base string, req DBCreateRequest) {
	t.Helper()
	resp := postJSON(t, base+"/v1/db/create", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("creating %s: status %d", req.Name, resp.StatusCode)
	}
}
