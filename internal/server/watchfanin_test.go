package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// openWatch starts one /v1/watch stream and returns its header frame
// plus a cancel func; fatal if the header does not arrive.
func openWatch(t *testing.T, url, database, query string) (WatchEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(WatchRequest{Database: database, Query: query})
	req, err := http.NewRequestWithContext(ctx, "POST", url+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		resp.Body.Close()
		t.Fatal("watch stream ended before header")
	}
	ev, err := ParseWatchEvent(sc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-ctx.Done()
		resp.Body.Close()
	}()
	return ev, cancel
}

// waitGauge polls fn until it returns want or the deadline passes.
func waitGauge(t *testing.T, what string, want int64, fn func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := fn(); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, fn(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchFanInGauge: alpha-equivalent /v1/watch subscriptions on one
// database share a registration group; the watch_fanin gauge counts the
// subscriptions answered by another subscription's evaluation and
// settles back as streams close.
func TestWatchFanInGauge(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	fanin := func() int64 { return s.reg.Gauge("watch_fanin").Value() }

	h1, cancel1 := openWatch(t, ts.URL, "people", "R(x | y)")
	h2, cancel2 := openWatch(t, ts.URL, "people", "R(u | w)") // alpha-variant
	_, cancel3 := openWatch(t, ts.URL, "people", "R('a' | y)")
	defer cancel1()
	defer cancel2()
	defer cancel3()

	if h1.Signature != h2.Signature {
		t.Fatalf("alpha-variants canonicalize apart: %q vs %q", h1.Signature, h2.Signature)
	}
	if h1.Verdict != h2.Verdict || h1.Version != h2.Version {
		t.Fatalf("shared group headers disagree: %+v vs %+v", h1, h2)
	}
	// 3 watches over 2 groups: one subscription rides along.
	waitGauge(t, "watch_fanin", 1, fanin)

	wch, gch := s.Engine().WatchFanIn()
	if wch != 3 || gch != 2 {
		t.Fatalf("WatchFanIn = (%d, %d), want (3, 2)", wch, gch)
	}

	cancel2()
	waitGauge(t, "watch_fanin after leave", 0, fanin)
}
