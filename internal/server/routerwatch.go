package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/schema"
	"cqa/internal/shard"
)

// handleWatch answers POST /v1/watch on the router: it opens one watch
// stream per shard (replica-preferring, reconnecting like the
// follower's WAL streams) and merges them into one global flip stream.
// For a single positive atom the global verdict is the OR of the shard
// verdicts carried by the streams themselves; every other query
// re-evaluates on the merged touched-shard facts whenever a touched
// shard reports a change. Untouched shards cannot affect the verdict
// (the placement owns their blocks elsewhere) but their streams keep
// the version accounting exact: the stream's version is the sum of all
// shard versions — the same global version the write path acknowledges,
// so write acks work directly as resume watermarks.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.inner.opt.MaxBodyBytes)
	var req WatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		rt.inner.writeDecodeError(w, err)
		return
	}
	if req.Database == "" {
		rt.inner.writeError(w, http.StatusBadRequest, "missing_database", "request lacks a database name")
		return
	}
	if req.Query == "" {
		rt.inner.writeError(w, http.StatusBadRequest, "missing_query", "request lacks a query")
		return
	}
	q, err := parse.Query(req.Query)
	if err != nil {
		rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	p, err := rt.inner.eng.Prepare(q)
	if err != nil {
		rt.inner.writeError(w, http.StatusUnprocessableEntity, "watch_failed", err.Error())
		return
	}
	n := len(rt.shards)
	touched, _ := shard.Touched(q, n)
	isTouched := make(map[int]bool, len(touched))
	for _, i := range touched {
		isTouched[i] = true
	}
	scatter := len(q.Lits) == 1 && !q.Lits[0].Neg

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	events := make(chan shardWatchEvent, 4*n)
	for i := 0; i < n; i++ {
		go rt.watchShard(ctx, i, req.Database, req.Query, events)
	}

	active := rt.inner.reg.Gauge("watch_active")
	active.Add(1)
	defer active.Add(-1)

	flusher, _ := w.(http.Flusher)
	emit := func(ev WatchEvent) bool {
		if _, err := w.Write(EncodeWatchEvent(ev)); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	heartbeat := rt.inner.opt.WatchHeartbeat
	if heartbeat <= 0 {
		heartbeat = DefaultWatchHeartbeat
	}

	// Per-shard stream state. The router's global state settles once
	// every shard has reported a header; until then — and while the sum
	// is behind the req.From watermark — no frame is written.
	versions := make(map[int]uint64, n)
	verdicts := make(map[int]bool, len(touched))
	known := make(map[int]bool, n)
	sum := func() uint64 {
		var v uint64
		for i := 0; i < n; i++ {
			v += versions[i]
		}
		return v
	}
	globalVerdict := func() (bool, error) {
		if scatter {
			for _, i := range touched {
				if verdicts[i] {
					return true, nil
				}
			}
			return false, nil
		}
		return rt.gatherEval(ctx, q, p, req.Database, touched)
	}

	headerSent := false
	var last bool
	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			if headerSent {
				if !emit(WatchEvent{Type: WatchEventHeartbeat, Version: sum(), Verdict: last}) {
					return
				}
			}
		case sev := <-events:
			if sev.err != nil {
				// The shard watcher reconnects on its own; heartbeats keep
				// flowing with the last settled state meanwhile.
				continue
			}
			idle := sev.ev.Type == WatchEventHeartbeat && sev.ev.Version == versions[sev.shard]
			versions[sev.shard] = sev.ev.Version
			if scatter && isTouched[sev.shard] {
				verdicts[sev.shard] = sev.ev.Verdict
			}
			firstSight := !known[sev.shard]
			known[sev.shard] = true
			if len(known) < n {
				continue
			}
			if headerSent && (!isTouched[sev.shard] || (idle && !firstSight)) {
				// Untouched shards only keep the version sum exact, and an
				// idle heartbeat moved nothing: skip the (possibly
				// facts-merging) global recomputation.
				continue
			}
			if !headerSent {
				if sum() < req.From {
					continue
				}
				v, err := globalVerdict()
				if err != nil {
					continue // a shard died mid-registration; retry on next event
				}
				last = v
				headerSent = true
				if !emit(WatchEvent{
					Type: WatchEventState, Database: req.Database,
					Signature: q.Signature(), Version: sum(), Verdict: last,
				}) {
					return
				}
				continue
			}
			v, err := globalVerdict()
			if err != nil {
				continue
			}
			if v == last {
				continue
			}
			from := last
			last = v
			// A flip triggered by a shard's own flip frame is exact; a
			// change first observed through a state frame (shard resync
			// or stream reconnect) may collapse several flips, so it is
			// relayed as a state frame too.
			if sev.ev.Type == WatchEventFlip && !firstSight {
				if !emit(WatchEvent{Type: WatchEventFlip, Version: sum(), From: &from, Verdict: last, Blocks: sev.ev.Blocks}) {
					return
				}
			} else if !emit(WatchEvent{Type: WatchEventState, Version: sum(), Verdict: last}) {
				return
			}
		}
	}
}

// shardWatchEvent is one parsed frame (or stream failure) of a
// downstream shard watch.
type shardWatchEvent struct {
	shard int
	ev    WatchEvent
	err   error
}

// watchShard keeps one shard's watch stream alive: connect
// replica-first, relay parsed frames, back off and reconnect with the
// shard's last seen version as the resume watermark.
func (rt *Router) watchShard(ctx context.Context, i int, database, query string, out chan<- shardWatchEvent) {
	var from uint64
	for ctx.Err() == nil {
		err := rt.watchShardOnce(ctx, i, database, query, &from, out)
		if ctx.Err() != nil {
			return
		}
		select {
		case out <- shardWatchEvent{shard: i, err: err}:
		case <-ctx.Done():
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
}

func (rt *Router) watchShardOnce(ctx context.Context, i int, database, query string, from *uint64, out chan<- shardWatchEvent) error {
	var lastErr error
	for _, base := range rt.readTargets(i) {
		body := fmt.Sprintf(`{"database":%q,"query":%q,"from":%d}`, database, query, *from)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/watch", strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		// The watch stream is long-lived: the router's pooled client has
		// an overall request timeout, so streams use a dedicated one.
		resp, err := rt.watchClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %d watch: status %d", i, resp.StatusCode)
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			ev, err := ParseWatchEvent(sc.Bytes())
			if err != nil {
				resp.Body.Close()
				return fmt.Errorf("shard %d watch frame: %w", i, err)
			}
			if ev.Version > *from {
				*from = ev.Version
			}
			select {
			case out <- shardWatchEvent{shard: i, ev: ev}:
			case <-ctx.Done():
				resp.Body.Close()
				return nil
			}
		}
		resp.Body.Close()
		return sc.Err()
	}
	return lastErr
}

// gatherEval fetches the touched shards' slices and evaluates p on the
// merged database: the watch-path twin of handleCertain's facts-merge
// read, without the explain/trace scaffolding.
func (rt *Router) gatherEval(ctx context.Context, q schema.Query, p *core.Prepared, database string, touched []int) (bool, error) {
	merged := db.New()
	for _, i := range touched {
		var fr FactsResponse
		err := rt.readShard(ctx, i, func(base string) error {
			return rt.getJSON(ctx, base, "/v1/db/facts?db="+url.QueryEscape(database), &fr)
		})
		if err != nil {
			return false, err
		}
		if err := mergeFacts(merged, fr); err != nil {
			return false, err
		}
	}
	if err := parse.DeclareQueryRelations(merged, q); err != nil {
		return false, err
	}
	return rt.inner.eng.CertainWith(p, merged)
}
