package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/obs"
	"cqa/internal/parse"
)

// tracesDoc mirrors the GET /debug/traces payload.
type tracesDoc struct {
	Sampled uint64          `json:"sampled"`
	Dropped uint64          `json:"dropped"`
	Slow    uint64          `json:"slow"`
	Traces  []obs.TraceView `json:"traces"`
}

func getTraces(t *testing.T, base, query string) tracesDoc {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc tracesDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func spanNames(tv obs.TraceView) map[string]obs.SpanView {
	m := make(map[string]obs.SpanView, len(tv.Spans))
	for _, sp := range tv.Spans {
		m[sp.Name] = sp
	}
	return m
}

func attr(sp obs.SpanView, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTraceCoverageThroughRouter is the tentpole acceptance check: one
// traced /v1/certain through a 4-shard router yields a single trace ID
// covering the router's parse/prepare and one RPC span per contacted
// shard, with the same ID joined on every shard server's own trace, and
// span durations that fit inside the measured request latency.
func TestTraceCoverageThroughRouter(t *testing.T) {
	const n = 4
	shardURLs := make([]string, n)
	for i := 0; i < n; i++ {
		_, ts := newTestServer(t, Options{Databases: map[string]*db.Database{}})
		shardURLs[i] = ts.URL
	}
	rt := NewRouter(RouterOptions{Shards: shardURLs, Options: Options{Engine: engine.New(engine.Options{})}})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	// R exists everywhere but is empty, so the scatter cannot
	// short-circuit: all four shards must be contacted.
	mustCreate(t, rts.URL, DBCreateRequest{Name: "d", Declare: []RelSig{{Name: "R", Arity: 2, Key: 1}}})

	begin := time.Now()
	resp := postJSON(t, rts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "d", Explain: true})
	latency := time.Since(begin)
	traceID := resp.Header.Get(obs.TraceHeader)
	ans := decodeBody[CertainResponse](t, resp)
	if traceID == "" {
		t.Fatal("response lacks the X-CQA-Trace header")
	}
	if ans.Certain {
		t.Fatalf("empty relation cannot be certain: %+v", ans)
	}
	if ans.Explain == nil {
		t.Fatal("explain requested but absent")
	}
	if ans.Explain.TraceID != traceID {
		t.Errorf("explain traceId %q != header %q", ans.Explain.TraceID, traceID)
	}
	if ans.Explain.ShardPlan != engine.ShardPlanScatter || len(ans.Explain.Shards) != n {
		t.Errorf("explain shard plan = %q %v, want scatter over %d shards", ans.Explain.ShardPlan, ans.Explain.Shards, n)
	}

	doc := getTraces(t, rts.URL, "?id="+traceID)
	if len(doc.Traces) != 1 {
		t.Fatalf("router has %d traces for id %s, want 1", len(doc.Traces), traceID)
	}
	tv := doc.Traces[0]
	if tv.DurNanos > latency.Nanoseconds() {
		t.Errorf("trace duration %dns exceeds measured request latency %dns", tv.DurNanos, latency.Nanoseconds())
	}
	spans := spanNames(tv)
	prep, ok := spans["prepare"]
	if !ok {
		t.Fatalf("router trace lacks a prepare span: %+v", tv.Spans)
	}
	if attr(prep, "planCache") == "" || attr(prep, "strategy") == "" {
		t.Errorf("prepare span lacks planCache/strategy attrs: %v", prep.Attrs)
	}
	if _, ok := spans["parse"]; !ok {
		t.Errorf("router trace lacks a parse span")
	}
	rpcShards := map[string]bool{}
	var sum int64
	for _, sp := range tv.Spans {
		sum += sp.DurNanos
		if sp.OffsetNanos < 0 || sp.OffsetNanos+sp.DurNanos > tv.DurNanos {
			t.Errorf("span %s [%d,+%d] outside trace duration %d", sp.Name, sp.OffsetNanos, sp.DurNanos, tv.DurNanos)
		}
		if sp.Name == "rpc" {
			rpcShards[attr(sp, "shard")] = true
		}
	}
	if sum > latency.Nanoseconds() {
		t.Errorf("span durations sum to %dns, more than the request latency %dns", sum, latency.Nanoseconds())
	}
	for i := 0; i < n; i++ {
		if !rpcShards[strconv.Itoa(i)] {
			t.Errorf("router fan-out has no rpc span for shard %d (got %v)", i, rpcShards)
		}
	}

	// Every shard joined the same trace ID and recorded its evaluation.
	for i, base := range shardURLs {
		sd := getTraces(t, base, "?id="+traceID)
		if len(sd.Traces) != 1 {
			t.Fatalf("shard %d has %d traces for id %s, want 1", i, len(sd.Traces), traceID)
		}
		ss := spanNames(sd.Traces[0])
		if _, ok := ss["eval"]; !ok {
			t.Errorf("shard %d trace lacks an eval span: %+v", i, sd.Traces[0].Spans)
		}
		if sp, ok := ss["prepare"]; !ok || attr(sp, "planCache") == "" {
			t.Errorf("shard %d trace lacks a prepare span with planCache: %+v", i, sd.Traces[0].Spans)
		}
	}

	// The limit filter caps the listing.
	if doc := getTraces(t, rts.URL, "?limit=1"); len(doc.Traces) > 1 {
		t.Errorf("limit=1 returned %d traces", len(doc.Traces))
	}
}

// TestExplainReportsExecutedStrategy cross-checks `"explain": true`
// against engine.Options: the strategy in the response must be the one
// the engine actually dispatches for its configuration.
func TestExplainReportsExecutedStrategy(t *testing.T) {
	cases := []struct {
		name string
		opt  engine.Options
		want string
	}{
		{"bitmap default", engine.Options{}, engine.StrategyCompiledBitmap},
		{"bitmap rollback", engine.Options{DisableBitmap: true}, engine.StrategyCompiled},
		{"tree-walk", engine.Options{ForceTreeWalk: true}, engine.StrategyTreeWalk},
		{"parallel", engine.Options{ParallelEval: true}, engine.StrategyCompiledParallel},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, ts := newTestServer(t, Options{Engine: engine.New(c.opt)})
			if got := s.Engine().Options().ForceTreeWalk; got != c.opt.ForceTreeWalk {
				t.Fatalf("engine options not surfaced: ForceTreeWalk=%v", got)
			}
			resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people", Explain: true})
			ans := decodeBody[CertainResponse](t, resp)
			if ans.Explain == nil {
				t.Fatal("explain absent")
			}
			if ans.Explain.Strategy != c.want {
				t.Errorf("explain strategy = %q, want %q", ans.Explain.Strategy, c.want)
			}
			if ans.Explain.RewritingSize <= 0 {
				t.Errorf("rewriting size = %d, want > 0", ans.Explain.RewritingSize)
			}
			if !c.opt.ForceTreeWalk && len(ans.Explain.Quantifiers) == 0 {
				t.Error("compiled strategies should report a quantifier plan")
			}
			if ans.Explain.ResultCache != "miss" {
				t.Errorf("first evaluation resultCache = %q, want miss", ans.Explain.ResultCache)
			}
			stages := map[string]bool{}
			for _, st := range ans.Explain.Stages {
				stages[st.Name] = true
				if st.Nanos < 0 {
					t.Errorf("stage %s has negative duration", st.Name)
				}
			}
			for _, want := range []string{"parse", "prepare", "eval"} {
				if !stages[want] {
					t.Errorf("stages lack %q: %+v", want, ans.Explain.Stages)
				}
			}

			// Second ask: plan and result cache both hit.
			resp = postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people", Explain: true})
			ans = decodeBody[CertainResponse](t, resp)
			if ans.Explain.PlanCache != "hit" || ans.Explain.ResultCache != "hit" {
				t.Errorf("repeat explain: planCache=%q resultCache=%q, want hit/hit", ans.Explain.PlanCache, ans.Explain.ResultCache)
			}

			// Inline facts bypass the result cache entirely.
			resp = postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Facts: "R(a | 1)\n", Explain: true})
			ans = decodeBody[CertainResponse](t, resp)
			if ans.Explain == nil || ans.Explain.ResultCache != "" || ans.Explain.ShardPlan != "" {
				t.Errorf("inline explain = %+v, want no result-cache/shard-plan fields", ans.Explain)
			}
		})
	}

	// Batch explain reports the batch strategy (never parallel).
	_, ts := newTestServer(t, Options{Engine: engine.New(engine.Options{ParallelEval: true})})
	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Query: "R(x | y)", Databases: []string{"people"}, Explain: true})
	bat := decodeBody[BatchResponse](t, resp)
	if bat.Explain == nil || bat.Explain.Strategy != engine.StrategyCompiledBitmap {
		t.Errorf("batch explain = %+v, want strategy %q", bat.Explain, engine.StrategyCompiledBitmap)
	}
}

// TestTraceIDInErrorBodies asserts the satellite contract: admission
// rejections (429) and panic-isolation responses (500) carry the
// request's trace ID in the structured error body, joinable with
// /debug/traces.
func TestTraceIDInErrorBodies(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInFlight: 1})
	// Fill the admission semaphore so the next API request is shed.
	s.sem <- struct{}{}
	resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	body := decodeBody[ErrorBody](t, resp)
	if traceID == "" || body.Error.TraceID != traceID {
		t.Errorf("429 traceId = %q, header = %q; want equal and non-empty", body.Error.TraceID, traceID)
	}
	<-s.sem

	// Panic isolation: a handler that panics still answers 500 with the
	// request's trace ID in the body.
	h := s.traced(s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	pts := httptest.NewServer(h)
	t.Cleanup(pts.Close)
	resp = postJSON(t, pts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	traceID = resp.Header.Get(obs.TraceHeader)
	body = decodeBody[ErrorBody](t, resp)
	if traceID == "" || body.Error.TraceID != traceID {
		t.Errorf("500 traceId = %q, header = %q; want equal and non-empty", body.Error.TraceID, traceID)
	}
	if s.reg.Counter("panics_total").Value() == 0 {
		t.Error("panics_total did not move")
	}
}

// TestRouterStatsAggregation asserts the /v1/stats satellite: the
// router's response has scope "router" and one entry per shard server,
// each carrying that server's own stats; a dead shard degrades to an
// Error entry instead of failing the endpoint.
func TestRouterStatsAggregation(t *testing.T) {
	_, ts0 := newTestServer(t, Options{Databases: map[string]*db.Database{
		"d0": parse.MustDatabase("R(a | 1)\n"),
	}})
	_, ts1 := newTestServer(t, Options{Databases: map[string]*db.Database{}})
	rt := NewRouter(RouterOptions{Shards: []string{ts0.URL, ts1.URL}, Options: Options{Engine: engine.New(engine.Options{})}})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	resp, err := http.Get(rts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[StatsResponse](t, resp)
	if stats.Scope != "router" {
		t.Errorf("router stats scope = %q", stats.Scope)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("router stats has %d shard entries, want 2", len(stats.Shards))
	}
	for i, e := range stats.Shards {
		if e.Index != i || e.Error != "" || e.Stats == nil {
			t.Fatalf("shard entry %d = %+v, want live stats", i, e)
		}
		if e.Stats.Scope != "primary" {
			t.Errorf("shard %d scope = %q, want primary", i, e.Stats.Scope)
		}
	}

	ts1.Close()
	resp, err = http.Get(rts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats with a dead shard: status %d, want 200", resp.StatusCode)
	}
	stats = decodeBody[StatsResponse](t, resp)
	if stats.Shards[0].Error != "" || stats.Shards[0].Stats == nil {
		t.Errorf("live shard entry degraded: %+v", stats.Shards[0])
	}
	if stats.Shards[1].Error == "" || stats.Shards[1].Stats != nil {
		t.Errorf("dead shard entry = %+v, want Error set and no stats", stats.Shards[1])
	}
}
