package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/metrics"
	"cqa/internal/obs"
	"cqa/internal/parse"
	"cqa/internal/schema"
	"cqa/internal/shard"
)

// Router is the cross-process serving tier: it fronts N shard servers
// (each an ordinary cqad holding one slice of every database's blocks)
// plus optional follower replicas, partitions writes by block owner,
// and scatter-gathers reads.
//
//   - Writes: each fact routes to shard.Owner(rel, key, N); relation
//     signatures are broadcast to every shard so negated atoms find
//     their (possibly empty) relations everywhere.
//   - Single-positive-atom reads: the query's touched shards (ground
//     keys pin blocks) answer locally and the verdicts OR-combine —
//     sound because blocks are whole on one shard (docs/SHARDING.md).
//   - Everything else: the touched shards' facts are fetched, merged
//     locally, and evaluated on the router's own engine.
//
// Reads prefer a shard's replica and fall back to its primary. A dead
// shard degrades serving: queries whose touched set avoids it are
// answered exactly; queries that need it get 503 partial_result. The
// router holds no durable state, so a restarted shard rejoins the
// moment its process is back — routing is pure hashing.
type Router struct {
	inner    *Router0
	shards   []string
	replicas []string
	client   *http.Client
	// watchClient issues the long-lived per-shard watch streams; it has
	// no overall timeout (client disconnect cancels via context).
	watchClient *http.Client
	handler     http.Handler
}

// Router0 is the local half of a Router: a plain Server with no stores,
// used for classification, inline-facts evaluation, stats, and the
// shared middleware. (Named to keep the embedding explicit.)
type Router0 = Server

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Shards are the shard servers' base URLs, in shard order. The
	// length fixes N: block i of a write and the touched-shard set of a
	// read use shard.Owner over this count.
	Shards []string
	// Replicas are optional follower base URLs, one per shard ("" =
	// none); reads prefer them and fall back to the primary.
	Replicas []string
	// Options configures the router's local serving half (engine,
	// admission control, timeouts, metrics). Stores and Databases are
	// ignored: the router holds no data.
	Options Options
	// Client issues the fan-out requests; nil selects a client with a
	// 10s timeout.
	Client *http.Client
}

// NewRouter builds the routing tier over the given shard servers.
func NewRouter(opt RouterOptions) *Router {
	opt.Options.Stores = nil
	opt.Options.Databases = nil
	rt := &Router{
		inner:    New(opt.Options),
		shards:   opt.Shards,
		replicas: opt.Replicas,
		client:   opt.Client,
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 10 * time.Second}
	}
	rt.watchClient = &http.Client{}
	mux := http.NewServeMux()
	mux.Handle("POST /v1/certain", rt.inner.api("certain_total", rt.handleCertain))
	// Watch streams are long-lived: registered outside the admission
	// middleware, like the shard servers' own /v1/watch.
	mux.HandleFunc("POST /v1/watch", rt.handleWatch)
	mux.Handle("POST /v1/db/create", rt.inner.api("db_create_total", rt.handleDBCreate))
	mux.Handle("POST /v1/db/insert", rt.inner.api("db_insert_total", rt.handleDBWrite(false)))
	mux.Handle("POST /v1/db/delete", rt.inner.api("db_delete_total", rt.handleDBWrite(true)))
	mux.HandleFunc("GET /v1/db/info", rt.handleDBInfo)
	mux.HandleFunc("GET /v1/shards", rt.handleShards)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	// Everything else — classify, inline batch, health, metrics — is
	// served by the local half.
	mux.Handle("/", rt.inner.Handler())
	// traced is outermost so fan-out endpoints get a trace covering every
	// per-shard RPC span; the local half's own middleware sees the trace
	// in the context and does not mint a second one.
	rt.handler = rt.inner.traced(rt.inner.recoverPanics(mux))
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Inner exposes the local serving half (engine, registry, drain).
func (rt *Router) Inner() *Server { return rt.inner }

// readTargets lists the base URLs to try for a read of shard i:
// replica first, then primary.
func (rt *Router) readTargets(i int) []string {
	if i < len(rt.replicas) && rt.replicas[i] != "" {
		return []string{rt.replicas[i], rt.shards[i]}
	}
	return []string{rt.shards[i]}
}

// postJSON posts body to base+path and decodes the response into out.
// Non-2xx responses decode the error envelope into an error.
func (rt *Router) postJSON(ctx context.Context, base, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.FromContext(ctx).ID(); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeShardResponse(resp, out)
}

// getJSON fetches base+path and decodes the response into out.
func (rt *Router) getJSON(ctx context.Context, base, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	if id := obs.FromContext(ctx).ID(); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeShardResponse(resp, out)
}

// decodeShardResponse decodes a shard server's reply: the payload on
// 2xx, the error envelope otherwise.
func decodeShardResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil && eb.Error.Code != "" {
			return &shardError{status: resp.StatusCode, code: eb.Error.Code, msg: eb.Error.Message}
		}
		return fmt.Errorf("shard returned status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// shardError is a structured error relayed from a shard server.
type shardError struct {
	status int
	code   string
	msg    string
}

func (e *shardError) Error() string { return fmt.Sprintf("%s: %s", e.code, e.msg) }

// rpc runs one logical shard interaction under a span and the per-shard
// RPC metrics: shard_rpc_latency{shard} observes the wall clock,
// shard_rpc_total{shard,outcome} counts successes and failures, and a
// failing call marks the span failed (the signal the chaos tests assert
// after a SIGKILL).
func (rt *Router) rpc(ctx context.Context, i int, name string, do func() error) error {
	sh := strconv.Itoa(i)
	sp := obs.FromContext(ctx).StartSpan("rpc").SetAttr("shard", sh).SetAttr("op", name)
	start := time.Now()
	err := do()
	rt.inner.reg.Histogram(metrics.Label("shard_rpc_latency", "shard", sh)).Observe(time.Since(start))
	outcome := "ok"
	if err != nil {
		outcome = "error"
		sp.Fail(err)
	}
	rt.inner.reg.Counter(metrics.Label("shard_rpc_total", "shard", sh, "outcome", outcome)).Inc()
	sp.End()
	return err
}

// readShard tries a read request against shard i's targets in
// preference order. A structured shard error (the shard is alive and
// rejected the request) is returned as-is; connection failures fall
// through to the next target.
func (rt *Router) readShard(ctx context.Context, i int, do func(base string) error) error {
	return rt.rpc(ctx, i, "read", func() error {
		var last error
		for _, base := range rt.readTargets(i) {
			err := do(base)
			if err == nil {
				return nil
			}
			if _, structured := err.(*shardError); structured {
				return err
			}
			last = err
		}
		return fmt.Errorf("shard %d unreachable: %w", i, last)
	})
}

// writePartialResult reports a read that needed a dead shard: the
// explicit partial-result error of degraded serving.
func (rt *Router) writePartialResult(w http.ResponseWriter, r *http.Request, err error) {
	rt.inner.reg.Counter("partial_result_total").Inc()
	rt.inner.writeErrorTraced(w, r, http.StatusServiceUnavailable, "partial_result",
		fmt.Sprintf("query touches an unreachable shard: %v", err))
}

// handleCertain answers POST /v1/certain on the router. Inline-facts
// requests evaluate locally; named databases scatter-gather.
func (rt *Router) handleCertain(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.inner.writeDecodeError(w, err)
		return
	}
	req, err := ParseCertainRequest(body)
	if err != nil {
		rt.inner.writeDecodeError(w, err)
		return
	}
	if req.Database == "" {
		r.Body = io.NopCloser(bytes.NewReader(body))
		rt.inner.handleCertain(w, r)
		return
	}
	tr := obs.FromContext(r.Context())
	clock := &stageClock{}
	var q schema.Query
	psp := tr.StartSpan("parse")
	clock.time("parse", func() { q, err = parse.Query(req.Query) })
	if err != nil {
		psp.Fail(err)
		psp.End()
		rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	psp.End()
	var p *core.Prepared
	var planHit bool
	sp := tr.StartSpan("prepare")
	clock.time("prepare", func() { p, planHit, err = rt.inner.eng.PrepareCached(q) })
	if err != nil {
		sp.Fail(err)
		sp.End()
		rt.inner.writeWorkError(w, err)
		return
	}
	strategy := rt.inner.eng.Strategy(p)
	sp.SetAttr("planCache", cacheOutcome(planHit)).SetAttr("strategy", strategy)
	sp.End()
	verdict := string(p.Classification().Verdict)
	n := len(rt.shards)
	touched, _ := shard.Touched(q, n)

	if len(q.Lits) == 1 && !q.Lits[0].Neg {
		// Verdict scatter: per-shard answers OR-combine for a single
		// positive atom, so only the touched shards are asked and the
		// first true short-circuits. Evaluation runs on the shards; the
		// explain reports the scatter plan and the contacted shards.
		certain := false
		asked := touched[:0:0]
		clock.time("scatter", func() {
			for _, i := range touched {
				var ans CertainResponse
				err = rt.readShard(r.Context(), i, func(base string) error {
					return rt.postJSON(r.Context(), base, "/v1/certain",
						CertainRequest{Query: req.Query, Database: req.Database}, &ans)
				})
				if err != nil {
					return
				}
				asked = append(asked, i)
				if ans.Certain {
					certain = true
					return
				}
			}
		})
		if err != nil {
			rt.relayShardError(w, r, err)
			return
		}
		resp := CertainResponse{
			Certain: certain, Verdict: verdict, Database: req.Database,
		}
		if req.Explain {
			info := explainFor(p, strategy, cacheOutcome(planHit), clock, tr)
			info.ShardPlan = engine.ShardPlanScatter
			info.Shards = asked
			resp.Explain = info
		}
		rt.inner.writeJSON(w, http.StatusOK, resp)
		return
	}

	// Facts-merge evaluation: fetch the touched shards' slices at their
	// served versions, merge, and evaluate locally. Ground-key
	// multi-atom queries confined to live shards stay answerable when
	// other shards are down.
	merged := db.New()
	var mergeErr error
	clock.time("gather", func() {
		for _, i := range touched {
			var fr FactsResponse
			err = rt.readShard(r.Context(), i, func(base string) error {
				return rt.getJSON(r.Context(), base, "/v1/db/facts?db="+url.QueryEscape(req.Database), &fr)
			})
			if err != nil {
				return
			}
			if mergeErr = mergeFacts(merged, fr); mergeErr != nil {
				return
			}
		}
	})
	if err != nil {
		rt.relayShardError(w, r, err)
		return
	}
	if mergeErr != nil {
		rt.inner.writeError(w, http.StatusBadGateway, "bad_shard_facts", mergeErr.Error())
		return
	}
	if err := parse.DeclareQueryRelations(merged, q); err != nil {
		rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	v, err := rt.inner.bounded(r.Context(), func() (any, error) {
		var certain bool
		var err error
		esp := tr.StartSpan("eval")
		clock.time("eval", func() { certain, err = rt.inner.eng.CertainWith(p, merged) })
		if err != nil {
			esp.Fail(err)
			esp.End()
			return nil, err
		}
		esp.End()
		rt.inner.reg.Counter(metrics.Label("eval_total",
			"strategy", strategy, "cache", "bypass")).Inc()
		resp := CertainResponse{
			Certain: certain, Verdict: verdict, Database: req.Database,
		}
		if req.Explain {
			info := explainFor(p, strategy, cacheOutcome(planHit), clock, tr)
			info.ShardPlan = "merge"
			info.Shards = touched
			resp.Explain = info
		}
		return resp, nil
	})
	if err != nil {
		rt.inner.writeWorkError(w, err)
		return
	}
	rt.inner.writeJSON(w, http.StatusOK, v)
}

// relayShardError maps a fan-out failure: unknown_database and other
// structured shard rejections relay with their status; connection
// failures become the 503 partial_result of degraded serving.
func (rt *Router) relayShardError(w http.ResponseWriter, r *http.Request, err error) {
	if se, ok := err.(*shardError); ok {
		rt.inner.writeError(w, se.status, se.code, se.msg)
		return
	}
	rt.writePartialResult(w, r, err)
}

// mergeFacts folds one shard's facts export into dst.
func mergeFacts(dst *db.Database, fr FactsResponse) error {
	for _, sig := range fr.Relations {
		if err := dst.DeclareRelation(sig.Name, sig.Arity, sig.Key); err != nil {
			return err
		}
	}
	d, err := parse.Database(fr.Facts)
	if err != nil {
		return err
	}
	for _, rel := range d.RelationNames() {
		for _, f := range d.Facts(rel) {
			if err := dst.Insert(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// partition splits a parsed batch into per-shard fact texts, routing
// each fact to its block's owner, and collects the batch's relation
// signatures for broadcast.
func (rt *Router) partition(d *db.Database, extra []RelSig) (perShard []string, sigs []RelSig, err error) {
	n := len(rt.shards)
	bufs := make([]strings.Builder, n)
	for _, rel := range d.RelationNames() {
		r := d.Relation(rel)
		sigs = append(sigs, RelSig{Name: rel, Arity: r.Arity, Key: r.Key})
		for _, f := range d.Facts(rel) {
			line, err := parse.FormatFact(f, r.Key)
			if err != nil {
				return nil, nil, err
			}
			owner := shard.Owner(rel, f.Args[:r.Key], n)
			bufs[owner].WriteString(line)
			bufs[owner].WriteByte('\n')
		}
	}
	seen := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		seen[s.Name] = true
	}
	for _, s := range extra {
		if !seen[s.Name] {
			sigs = append(sigs, s)
			seen[s.Name] = true
		}
	}
	perShard = make([]string, n)
	for i := range bufs {
		perShard[i] = bufs[i].String()
	}
	return perShard, sigs, nil
}

// handleDBCreate broadcasts a create: every shard server gets the full
// schema and its slice of the seed facts.
func (rt *Router) handleDBCreate(w http.ResponseWriter, r *http.Request) {
	var req DBCreateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		rt.inner.writeDecodeError(w, err)
		return
	}
	if req.Name == "" {
		rt.inner.writeError(w, http.StatusBadRequest, "missing_name", "request lacks a database name")
		return
	}
	seed, err := parse.Database(req.Facts)
	if err != nil {
		rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
		return
	}
	perShard, sigs, err := rt.partition(seed, req.Declare)
	if err != nil {
		rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
		return
	}
	var total uint64
	for i, base := range rt.shards {
		var ack DBWriteResponse
		err := rt.rpc(r.Context(), i, "create", func() error {
			return rt.postJSON(r.Context(), base, "/v1/db/create",
				DBCreateRequest{Name: req.Name, Facts: perShard[i], Declare: sigs}, &ack)
		})
		if err != nil {
			rt.relayWriteError(w, r, i, err)
			return
		}
		total += ack.Version
	}
	rt.inner.writeJSON(w, http.StatusOK, DBWriteResponse{
		Database: req.Name, Version: total, Applied: seed.Size(),
	})
}

// handleDBWrite partitions one write batch across the shard servers.
// Every shard receives the batch's relation signatures (schema
// broadcast) plus its own facts; the acknowledged global version is the
// sum of shard versions.
func (rt *Router) handleDBWrite(del bool) func(w http.ResponseWriter, r *http.Request) {
	path := "/v1/db/insert"
	if del {
		path = "/v1/db/delete"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		var req DBWriteRequest
		if err := decodeJSON(r.Body, &req); err != nil {
			rt.inner.writeDecodeError(w, err)
			return
		}
		if req.Database == "" {
			rt.inner.writeError(w, http.StatusBadRequest, "missing_database", "request lacks a database name")
			return
		}
		batch, err := parse.Database(req.Facts)
		if err != nil {
			rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
			return
		}
		perShard, sigs, err := rt.partition(batch, req.Declare)
		if err != nil {
			rt.inner.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
			return
		}
		resp := DBWriteResponse{Database: req.Database}
		touched := make(map[string]bool)
		for i, base := range rt.shards {
			var ack DBWriteResponse
			err := rt.rpc(r.Context(), i, "write", func() error {
				return rt.postJSON(r.Context(), base, path,
					DBWriteRequest{Database: req.Database, Facts: perShard[i], Declare: sigs}, &ack)
			})
			if err != nil {
				rt.relayWriteError(w, r, i, err)
				return
			}
			resp.Version += ack.Version
			resp.Applied += ack.Applied
			for _, rel := range ack.Touched {
				touched[rel] = true
			}
		}
		for rel := range touched {
			resp.Touched = append(resp.Touched, rel)
		}
		sort.Strings(resp.Touched)
		rt.inner.writeJSON(w, http.StatusOK, resp)
	}
}

// relayWriteError reports a write fan-out failure. A cross-shard write
// is not atomic: shards before i already applied their slices, so the
// error names the failing shard explicitly (partial_write) rather than
// pretending nothing happened. Structured rejections (exists, bad
// facts) relay as-is.
func (rt *Router) relayWriteError(w http.ResponseWriter, r *http.Request, i int, err error) {
	if se, ok := err.(*shardError); ok {
		rt.inner.writeError(w, se.status, se.code, se.msg)
		return
	}
	rt.inner.reg.Counter("partial_write_total").Inc()
	rt.inner.writeErrorTraced(w, r, http.StatusServiceUnavailable, "partial_write",
		fmt.Sprintf("shard %d failed mid-batch; earlier shards applied their slices: %v", i, err))
}

// handleDBInfo aggregates every shard server's /v1/db/info by database
// name: versions and counters sum, relations union.
func (rt *Router) handleDBInfo(w http.ResponseWriter, r *http.Request) {
	byName := make(map[string]*DBInfo)
	var order []string
	for i := range rt.shards {
		var info DBInfoResponse
		err := rt.readShard(r.Context(), i, func(base string) error {
			return rt.getJSON(r.Context(), base, "/v1/db/info", &info)
		})
		if err != nil {
			rt.writePartialResult(w, r, err)
			return
		}
		for _, d := range info.Databases {
			agg, ok := byName[d.Name]
			if !ok {
				agg = &DBInfo{Name: d.Name, Shards: 0, Durable: d.Durable}
				byName[d.Name] = agg
				order = append(order, d.Name)
			}
			agg.Shards++
			agg.Version += d.Version
			agg.Facts += d.Facts
			agg.WALRecords += d.WALRecords
			agg.SegmentRecords += d.SegmentRecords
			agg.CheckpointVersion += d.CheckpointVersion
			agg.Checkpoints += d.Checkpoints
			for _, rel := range d.Relations {
				if !containsStr(agg.Relations, rel) {
					agg.Relations = append(agg.Relations, rel)
				}
			}
		}
	}
	resp := DBInfoResponse{Databases: make([]DBInfo, 0, len(order))}
	for _, name := range order {
		resp.Databases = append(resp.Databases, *byName[name])
	}
	rt.inner.writeJSON(w, http.StatusOK, resp)
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// handleStats answers GET /v1/stats on the router: the local half's own
// stats under scope "router", plus one aggregated entry per downstream
// shard server (replica-first, like every read). A dead shard yields an
// entry with Error set instead of failing the whole response, so the
// stats endpoint stays useful exactly when shards are down.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := rt.inner.statsResponse()
	resp.Scope = "router"
	for i := range rt.shards {
		entry := ShardStatsEntry{Index: i, URL: rt.shards[i]}
		var st StatsResponse
		err := rt.readShard(r.Context(), i, func(base string) error {
			entry.URL = base
			return rt.getJSON(r.Context(), base, "/v1/stats", &st)
		})
		if err != nil {
			entry.Error = err.Error()
		} else {
			entry.Stats = &st
		}
		resp.Shards = append(resp.Shards, entry)
	}
	rt.inner.writeJSON(w, http.StatusOK, resp)
}

// handleShards reports the router role and per-shard health: each
// primary and replica is probed with a short /healthz request.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	resp := ShardsResponse{Role: "router", DefaultShards: len(rt.shards)}
	for i, base := range rt.shards {
		h := ShardHealth{Index: i, Primary: base}
		if i < len(rt.replicas) {
			h.Replica = rt.replicas[i]
		}
		if err := rt.probe(r.Context(), base); err != nil {
			h.Error = err.Error()
		} else {
			h.Alive = true
		}
		if h.Replica != "" {
			h.ReplicaAlive = rt.probe(r.Context(), h.Replica) == nil
		}
		resp.Shards = append(resp.Shards, h)
	}
	rt.inner.writeJSON(w, http.StatusOK, resp)
}

// probe checks one server's liveness with a bounded /healthz request.
func (rt *Router) probe(ctx context.Context, base string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}
