package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/metrics"
	"cqa/internal/obs"
	"cqa/internal/parse"
	"cqa/internal/schema"
	"cqa/internal/sqlgen"
)

// writeJSON writes v with the given status. Encoding failures at this
// point cannot be reported to the client; they surface in errors_total.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("errors_total").Inc()
	}
}

// writeError writes the structured error envelope and counts it.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeErrorDetail(w, ErrorDetail{Status: status, Code: code, Message: msg})
}

// writeErrorDetail writes a fully built error detail (writeErrorTraced
// adds the trace ID before calling here).
func (s *Server) writeErrorDetail(w http.ResponseWriter, d ErrorDetail) {
	s.reg.Counter("errors_total").Inc()
	if d.Status >= 500 || d.Status == http.StatusTooManyRequests {
		// Shedding and failures must not be cached by intermediaries.
		w.Header().Set("Cache-Control", "no-store")
	}
	s.writeJSON(w, d.Status, ErrorBody{Error: d})
}

// writeDecodeError maps a request-decoding failure to 413 (body over
// MaxBodyBytes) or 400 (everything else) with a structured body.
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		return
	}
	s.writeError(w, http.StatusBadRequest, "bad_json", err.Error())
}

// handleClassify answers POST /v1/classify.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if req.Query == "" {
		s.writeError(w, http.StatusBadRequest, "missing_query", "request lacks a query")
		return
	}
	q, err := parse.Query(req.Query)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	v, err := s.bounded(r.Context(), func() (any, error) {
		p, err := s.eng.Prepare(q)
		if err != nil {
			return nil, err
		}
		cls := p.Classification()
		resp := ClassifyResponse{
			Query:         cls.Query.String(),
			Verdict:       string(cls.Verdict),
			Guarded:       cls.Guarded,
			WeaklyGuarded: cls.WeaklyGuarded,
			Acyclic:       cls.Acyclic,
			AttackEdges:   cls.Graph.Edges(),
			Hardness:      cls.Hardness,
		}
		if resp.AttackEdges == nil {
			resp.AttackEdges = [][2]string{}
		}
		if cls.CycleF != "" {
			resp.Cycle = []string{cls.CycleF, cls.CycleG}
		}
		if cls.Verdict == core.VerdictFO {
			resp.Rewriting = cls.Rewriting.String()
			sql, err := sqlgen.Translate(cls.Rewriting, sqlgen.Options{})
			if err != nil {
				return nil, fmt.Errorf("sql translation: %w", err)
			}
			resp.SQL = sql
		} else {
			// Non-FO queries are not condemned to repair enumeration: the
			// planner may have a polynomial graph decider for the shape.
			// Strategy (not PlanStrategy) so the ForceTreeWalk rollback is
			// reflected — the response names what this server will execute.
			resp.PlannedStrategy = s.eng.Strategy(p)
			resp.PlannerReason = p.Plan().Reason
		}
		return resp, nil
	})
	if err != nil {
		s.writeWorkError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, v)
}

// handleCertain answers POST /v1/certain. The handler is fully
// instrumented: parse/prepare/eval spans hang off the request trace,
// the eval_total{strategy,cache} counter records what ran, and
// `"explain": true` returns the strategy, cache outcomes, rewriting
// size, quantifier plan, shard plan, and per-stage timings.
func (s *Server) handleCertain(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	clock := &stageClock{}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeDecodeError(w, err)
		return
	}
	req, err := ParseCertainRequest(body)
	if err != nil {
		s.writeDecodeError(w, err)
		return
	}
	var q schema.Query
	psp := tr.StartSpan("parse")
	clock.time("parse", func() { q, err = parse.Query(req.Query) })
	if err != nil {
		psp.Fail(err)
		psp.End()
		s.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	psp.End()
	if req.Database != "" {
		// Named databases are sharded versioned stores: answer on one
		// consistent cross-shard view through the engine's result cache,
		// so repeated checks at an unchanged global version — or a version
		// moved only by writes to relations q does not mention — skip
		// evaluation entirely. Evaluation itself scatter-gathers:
		// single-atom queries OR per-shard verdicts, joins run on the
		// memoized union (engine.CertainSharded).
		sh := s.stores.Get(req.Database)
		if sh == nil {
			s.writeError(w, http.StatusNotFound, "unknown_database",
				fmt.Sprintf("no database named %q", req.Database))
			return
		}
		view := sh.View()
		v, err := s.bounded(r.Context(), func() (any, error) {
			var p *core.Prepared
			var planHit bool
			var err error
			sp := tr.StartSpan("prepare")
			clock.time("prepare", func() { p, planHit, err = s.eng.PrepareCached(q) })
			if err != nil {
				sp.Fail(err)
				sp.End()
				return nil, err
			}
			strategy := s.eng.Strategy(p)
			sp.SetAttr("planCache", cacheOutcome(planHit)).SetAttr("strategy", strategy)
			sp.End()

			var certain, cached bool
			esp := tr.StartSpan("eval")
			clock.time("eval", func() { certain, cached, err = s.eng.CertainShardedVersioned(q, req.Database, view) })
			if err != nil {
				esp.Fail(err)
				esp.End()
				return nil, err
			}
			shardPlan, shards := engine.ShardPlanFor(q, view)
			esp.SetAttr("resultCache", cacheOutcome(cached)).SetAttr("shardPlan", shardPlan)
			esp.End()
			s.reg.Counter(metrics.Label("eval_total",
				"strategy", strategy, "cache", cacheOutcome(cached))).Inc()
			resp := CertainResponse{
				Certain:  certain,
				Verdict:  string(p.Classification().Verdict),
				Database: req.Database,
				Version:  view.Version(),
				Cached:   &cached,
			}
			if req.Explain {
				info := explainFor(p, strategy, cacheOutcome(planHit), clock, tr)
				info.ResultCache = cacheOutcome(cached)
				info.ShardPlan = shardPlan
				info.Shards = shards
				// Non-FO decisions are recorded against the union view —
				// the snapshot certainSharded evaluates multi-atom (hence
				// every planner-pattern) queries on.
				s.attachPlanDecision(info, p, view.Union())
				resp.Explain = info
			}
			return resp, nil
		})
		if err != nil {
			s.writeWorkError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, v)
		return
	}
	var d *db.Database
	fsp := tr.StartSpan("parse-facts")
	clock.time("parse-facts", func() {
		d, err = parse.Database(req.Facts)
		if err == nil {
			err = parse.DeclareQueryRelations(d, q)
		}
	})
	if err != nil {
		fsp.Fail(err)
		fsp.End()
		s.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
		return
	}
	fsp.End()
	v, err := s.bounded(r.Context(), func() (any, error) {
		var p *core.Prepared
		var planHit bool
		var err error
		sp := tr.StartSpan("prepare")
		clock.time("prepare", func() { p, planHit, err = s.eng.PrepareCached(q) })
		if err != nil {
			sp.Fail(err)
			sp.End()
			return nil, err
		}
		strategy := s.eng.Strategy(p)
		sp.SetAttr("planCache", cacheOutcome(planHit)).SetAttr("strategy", strategy)
		sp.End()

		var certain bool
		esp := tr.StartSpan("eval")
		clock.time("eval", func() { certain, err = s.eng.CertainWith(p, d) })
		if err != nil {
			esp.Fail(err)
			esp.End()
			return nil, err
		}
		esp.End()
		// Inline facts bypass the versioned result cache (there is no
		// version to key on); the cache label says so.
		s.reg.Counter(metrics.Label("eval_total",
			"strategy", strategy, "cache", "bypass")).Inc()
		resp := CertainResponse{
			Certain: certain,
			Verdict: string(p.Classification().Verdict),
		}
		if req.Explain {
			resp.Explain = explainFor(p, strategy, cacheOutcome(planHit), clock, tr)
			s.attachPlanDecision(resp.Explain, p, d)
		}
		return resp, nil
	})
	if err != nil {
		s.writeWorkError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, v)
}

// explainFor assembles the common part of an ExplainInfo; callers fill
// in the result-cache and shard-plan fields that apply to their path.
func explainFor(p *core.Prepared, strategy, planCache string, clock *stageClock, tr *obs.Trace) *ExplainInfo {
	info := &ExplainInfo{
		Strategy:      strategy,
		PlanCache:     planCache,
		RewritingSize: p.RewritingSize(),
		Stages:        clock.stages,
		TraceID:       tr.ID(),
	}
	if p.HasCompiled() {
		info.Quantifiers = p.Program().PlanSummary()
	}
	if info.Stages == nil {
		info.Stages = []ExplainStage{}
	}
	return info
}

// attachPlanDecision adds the planner's recorded decision for the
// evaluated snapshot to a non-FO explain. FO queries carry their plan in
// the rewriting fields, and under ForceTreeWalk the decision would name
// a decider that was deliberately not run, so both skip it.
func (s *Server) attachPlanDecision(info *ExplainInfo, p *core.Prepared, d *db.Database) {
	if p.InFO() || s.eng.Options().ForceTreeWalk {
		return
	}
	info.PlanDecision = p.Decision(d)
}

// handleBatch answers POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	clock := &stageClock{}
	var req BatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if req.Query == "" {
		s.writeError(w, http.StatusBadRequest, "missing_query", "request lacks a query")
		return
	}
	n := len(req.Databases) + len(req.Facts)
	if n == 0 {
		s.writeError(w, http.StatusBadRequest, "missing_databases",
			"request needs at least one database name or inline facts entry")
		return
	}
	if n > s.opt.MaxBatchItems {
		s.writeError(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("batch of %d databases exceeds the limit of %d", n, s.opt.MaxBatchItems))
		return
	}
	var q schema.Query
	var err error
	psp := tr.StartSpan("parse")
	clock.time("parse", func() { q, err = parse.Query(req.Query) })
	if err != nil {
		psp.Fail(err)
		psp.End()
		s.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	psp.End()
	items := make([]engine.Item, 0, n)
	resolveErrs := make([]string, 0, n)
	// Named databases resolve to a consistent snapshot each; the batch
	// path evaluates directly (it bypasses the versioned result cache —
	// batches mix many databases, and their per-item answers are rarely
	// re-asked at an identical version).
	for _, name := range req.Databases {
		sh := s.stores.Get(name)
		if sh == nil {
			resolveErrs = append(resolveErrs, fmt.Sprintf("no database named %q", name))
			items = append(items, engine.Item{})
			continue
		}
		resolveErrs = append(resolveErrs, "")
		// The union of one consistent view; for single-shard members this
		// is the snapshot itself, no merge happens.
		items = append(items, engine.Item{Query: q, DB: sh.View().Union()})
	}
	for _, facts := range req.Facts {
		d, err := parse.Database(facts)
		if err == nil {
			err = parse.DeclareQueryRelations(d, q)
		}
		if err != nil {
			resolveErrs = append(resolveErrs, err.Error())
			items = append(items, engine.Item{})
			continue
		}
		resolveErrs = append(resolveErrs, "")
		items = append(items, engine.Item{Query: q, DB: d})
	}
	// Resolvable items run as one engine batch; unresolvable ones carry
	// their error through in order. Plugging the real query into the
	// placeholder items would re-answer on a nil database, so the batch
	// only receives the good ones.
	good := make([]engine.Item, 0, n)
	for i, it := range items {
		if resolveErrs[i] == "" {
			good = append(good, it)
		}
	}
	s.reg.Counter("batch_items_total").Add(uint64(len(good)))
	var results []engine.Result
	esp := tr.StartSpan("eval")
	esp.SetAttr("items", strconv.Itoa(len(good)))
	clock.time("eval", func() { results = s.eng.CertainBatch(r.Context(), good) })
	esp.End()
	resp := BatchResponse{Results: make([]BatchResult, n)}
	gi := 0
	for i := range items {
		if resolveErrs[i] != "" {
			resp.Results[i] = BatchResult{Error: resolveErrs[i]}
			continue
		}
		res := results[gi]
		gi++
		if res.Err != nil {
			resp.Results[i] = BatchResult{Error: res.Err.Error()}
		} else {
			resp.Results[i] = BatchResult{Certain: res.Certain}
		}
	}
	if p, planHit, err := s.eng.PrepareCached(q); err == nil {
		resp.Verdict = string(p.Classification().Verdict)
		strategy := s.eng.BatchStrategy(p)
		s.reg.Counter(metrics.Label("eval_total",
			"strategy", strategy, "cache", "bypass")).Add(uint64(len(good)))
		if req.Explain {
			// Batches bypass the versioned result cache; the explain covers
			// the batch as a whole (BatchStrategy: items never take the
			// parallel hot path, the batch is the parallelism).
			resp.Explain = explainFor(p, strategy, cacheOutcome(planHit), clock, tr)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeWorkError maps evaluation-stage failures: context expiry becomes
// the timeout response, engine shutdown 503, anything else 422.
func (s *Server) writeWorkError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.reg.Counter("timeouts_total").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "timeout",
			fmt.Sprintf("request exceeded the per-request timeout (%s)", s.opt.RequestTimeout))
	case errors.Is(err, engine.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
	default:
		s.writeError(w, http.StatusUnprocessableEntity, "classify_failed", err.Error())
	}
}

// handleStats answers GET /v1/stats with engine and server counters,
// daemon uptime, and the plan/result cache hit ratios. On a router the
// response is built by Router.handleStats instead, which adds the
// aggregated per-shard entries.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.statsResponse())
}

// statsResponse assembles this server's own StatsResponse.
func (s *Server) statsResponse() StatsResponse {
	st := s.eng.Stats()
	resp := StatsResponse{
		Scope:         s.role(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Engine: EngineStats{
			CacheHits:           st.CacheHits,
			CacheMisses:         st.CacheMisses,
			CacheEvictions:      st.CacheEvictions,
			CachedPlans:         st.CachedPlans,
			ResultHits:          st.ResultHits,
			ResultMisses:        st.ResultMisses,
			ResultInvalidations: st.ResultInvalidations,
			CachedResults:       st.CachedResults,
			Batches:             st.Batches,
			BatchItems:          st.BatchItems,
			BatchSharedItems:    st.BatchSharedItems,
			BatchErrors:         st.BatchErrors,
			CancelledItems:      st.CancelledItems,
			Workers:             st.Workers,
			BusyWorkers:         st.BusyWorkers,
			PeakBusyWorkers:     st.PeakBusyWorkers,
		},
		Server: s.reg.Values(),
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		resp.Engine.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	if total := st.ResultHits + st.ResultMisses; total > 0 {
		resp.Engine.ResultHitRate = float64(st.ResultHits) / float64(total)
	}
	return resp
}

// handleHealthz reports liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 503 once draining has begun.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics answers GET /metrics in the Prometheus text exposition
// format (version 0.0.4): one TYPE line per family, labeled series for
// per-endpoint, per-shard, per-strategy, and cache-outcome instruments,
// histograms as cumulative buckets in seconds. metrics.LintPrometheus
// guards the format in tests and `make obs-smoke`.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.reg.Counter("errors_total").Inc()
	}
}

// handleDebugVars serves the expvar JSON document: every expvar-published
// variable (cmdline, memstats, anything the process registered) plus this
// server's registry under the key "cqad". Serving our own document —
// rather than expvar.Publish'ing the registry — keeps multiple servers in
// one process (tests, embedded use) from fighting over the global name.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	fmt.Fprintf(w, "%q: %s", "cqad", s.reg.String())
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "cqad" {
			return // a globally published registry must not duplicate ours
		}
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "\n}\n")
}
