package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"cqa/internal/engine"
	"cqa/internal/metrics"
)

// TestPlannerServedEndToEnd is the acceptance path for the planner
// subsystem: a cyclic two-atom mutual-negation query — previously
// naive repair enumeration — is answered through the full HTTP stack
// by the matching decider, visible in the explain payload, in
// /v1/classify, and in the eval_total{strategy="matching"} counter.
func TestPlannerServedEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// No S-fact mirrors any R-fact, so no repair falsifies the query.
	req := CertainRequest{
		Query:   "R(x | y), !S(y | x)",
		Facts:   "R(a | 1)\nR(a | 2)\nR(b | 1)\nS(z | z)",
		Explain: true,
	}
	resp := postJSON(t, ts.URL+"/v1/certain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/certain status = %d", resp.StatusCode)
	}
	cr := decodeBody[CertainResponse](t, resp)
	if !cr.Certain {
		t.Error("mutual-negation query with no mutual facts must be certain")
	}
	if cr.Explain == nil {
		t.Fatal("explain requested but absent")
	}
	if cr.Explain.Strategy != engine.StrategyMatching {
		t.Errorf("explain strategy = %q, want %q", cr.Explain.Strategy, engine.StrategyMatching)
	}
	dec := cr.Explain.PlanDecision
	if dec == nil {
		t.Fatal("explain lacks planDecision for a planner-served query")
	}
	if dec.Strategy != engine.StrategyMatching {
		t.Errorf("planDecision strategy = %q", dec.Strategy)
	}
	if dec.Reason == "" {
		t.Error("planDecision reason is empty")
	}
	if len(dec.Stats) != 2 || dec.Stats[0].Rel != "R" || dec.Stats[0].Facts != 3 {
		t.Errorf("planDecision stats = %+v", dec.Stats)
	}

	// Classification reports the planned strategy for the non-FO query.
	cresp := postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: req.Query})
	cl := decodeBody[ClassifyResponse](t, cresp)
	if cl.Verdict == "fo" {
		t.Fatalf("verdict = %q, want non-FO", cl.Verdict)
	}
	if cl.PlannedStrategy != engine.StrategyMatching {
		t.Errorf("plannedStrategy = %q, want %q", cl.PlannedStrategy, engine.StrategyMatching)
	}
	if cl.PlannerReason == "" {
		t.Error("plannerReason is empty for a planner-served query")
	}

	// The evaluation shows up under the new strategy label.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	exp, err := metrics.ParsePrometheus(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("eval_total", "strategy", engine.StrategyMatching, "cache", "bypass"); !ok || v != 1 {
		t.Errorf("eval_total{strategy=matching,cache=bypass} = %v (present=%v), want 1", v, ok)
	}
}

// TestPlannerRollbackEndToEnd flips ForceTreeWalk and checks the same
// query degrades to naive repair enumeration with no planDecision —
// the operational rollback story in docs/PLANNER.md.
func TestPlannerRollbackEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: engine.New(engine.Options{ForceTreeWalk: true})})

	req := CertainRequest{
		Query:   "R(x | y), !S(y | x)",
		Facts:   "R(a | 1)\nS(z | z)",
		Explain: true,
	}
	cr := decodeBody[CertainResponse](t, postJSON(t, ts.URL+"/v1/certain", req))
	if !cr.Certain {
		t.Error("rollback path changed the answer")
	}
	if cr.Explain == nil || cr.Explain.Strategy != engine.StrategyNaive {
		t.Fatalf("rollback explain = %+v, want strategy %q", cr.Explain, engine.StrategyNaive)
	}
	if cr.Explain.PlanDecision != nil {
		t.Error("planDecision must be absent under ForceTreeWalk rollback")
	}

	cl := decodeBody[ClassifyResponse](t, postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: req.Query}))
	if cl.PlannedStrategy != engine.StrategyNaive {
		t.Errorf("rollback plannedStrategy = %q, want %q", cl.PlannedStrategy, engine.StrategyNaive)
	}
}

// TestPlannerReachabilityOverNamedDB serves the q2 shape against a
// preloaded database so the decision flows through the sharded view's
// union snapshot.
func TestPlannerReachabilityOverNamedDB(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, DBCreateRequest{Name: "graph", Facts: "E(a, b)\nE(a, c)\nB(a | b)\nB(a | c)\n"})

	req := CertainRequest{
		Query:    "E(x, y), !B(x | y), !C(y | x)",
		Database: "graph",
		Explain:  true,
	}
	cr := decodeBody[CertainResponse](t, postJSON(t, ts.URL+"/v1/certain", req))
	// Block B(a|·) cannot cover both edges: certain.
	if !cr.Certain {
		t.Error("overloaded block instance must be certain")
	}
	if cr.Explain == nil || cr.Explain.Strategy != engine.StrategyReachability {
		t.Fatalf("explain = %+v, want strategy %q", cr.Explain, engine.StrategyReachability)
	}
	if cr.Explain.PlanDecision == nil {
		t.Fatal("named-db explain lacks planDecision")
	}
	if got := cr.Explain.PlanDecision.Strategy; got != engine.StrategyReachability {
		t.Errorf("planDecision strategy = %q", got)
	}
	if !strings.Contains(cr.Explain.PlanDecision.Reason, "union-find") &&
		!strings.Contains(cr.Explain.PlanDecision.Reason, "orientation") {
		t.Errorf("planDecision reason = %q", cr.Explain.PlanDecision.Reason)
	}
}
