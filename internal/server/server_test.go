package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/metrics"
	"cqa/internal/parse"
)

// newTestServer builds a server with a small preloaded database named
// "people" and returns it with its httptest wrapper.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Databases == nil {
		opt.Databases = map[string]*db.Database{
			"people": parse.MustDatabase("R(a | 1)\nR(a | 2)\n"),
		}
	}
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestClassifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp := postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: "P(x | y), !N('c' | y)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeBody[ClassifyResponse](t, resp)
	if out.Verdict != "FO" || out.Rewriting == "" || !strings.Contains(out.SQL, "SELECT") {
		t.Errorf("FO classify response wrong: %+v", out)
	}

	resp = postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: "R(x | y), !S(y | x)"})
	out = decodeBody[ClassifyResponse](t, resp)
	if out.Verdict != "not-FO" || out.Hardness != "NL-hard" || len(out.Cycle) != 2 {
		t.Errorf("non-FO classify response wrong: %+v", out)
	}
	if out.SQL != "" || out.Rewriting != "" {
		t.Errorf("non-FO response should not carry a rewriting: %+v", out)
	}
}

func TestCertainEndpointInlineFacts(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []struct {
		query, facts string
		want         bool
	}{
		{"R(x | y)", "R(a | 1)\nR(a | 2)\n", true},
		{"R(x | '1')", "R(a | 1)\nR(a | 2)\n", false},
		{"P(x | y), !N('c' | y)", "P(p1 | v1)\nP(p1 | v2)\nN(c | v2)\n", false},
	} {
		resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: tc.query, Facts: tc.facts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", tc.query, resp.StatusCode)
		}
		out := decodeBody[CertainResponse](t, resp)
		if out.Certain != tc.want {
			t.Errorf("%s: certain = %v, want %v", tc.query, out.Certain, tc.want)
		}
		if out.Verdict != "FO" {
			t.Errorf("%s: verdict = %q", tc.query, out.Verdict)
		}
	}
}

func TestCertainEndpointNamedDatabase(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out := decodeBody[CertainResponse](t, resp); !out.Certain {
		t.Errorf("named-db certain = false, want true")
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Query:     "R(x | y)",
		Databases: []string{"people", "missing"},
		Facts:     []string{"R(b | 7)\n", ""},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(out.Results))
	}
	if !out.Results[0].Certain || out.Results[0].Error != "" {
		t.Errorf("people: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Errorf("missing database should carry an error: %+v", out.Results[1])
	}
	if !out.Results[2].Certain {
		t.Errorf("inline facts: %+v", out.Results[2])
	}
	if out.Results[3].Certain {
		t.Errorf("empty facts has no R fact, want not certain: %+v", out.Results[3])
	}
	if out.Verdict != "FO" {
		t.Errorf("verdict = %q", out.Verdict)
	}
}

func TestStatsAndOpsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Drive a little traffic so the counters move.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people"})
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[StatsResponse](t, resp)
	// Each named-db request does one plan-cache lookup in the handler (for
	// the verdict); the first also prepares inside CertainVersioned, the
	// later two hit the versioned result cache instead: 3 hits, 1 miss.
	if stats.Engine.CacheHits != 3 || stats.Engine.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 3/1", stats.Engine.CacheHits, stats.Engine.CacheMisses)
	}
	if got := stats.Engine.CacheHitRate; got != 0.75 {
		t.Errorf("cache hit rate = %v, want 0.75", got)
	}
	if stats.Engine.ResultHits != 2 || stats.Engine.ResultMisses != 1 {
		t.Errorf("result hits/misses = %d/%d, want 2/1", stats.Engine.ResultHits, stats.Engine.ResultMisses)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v, want > 0", stats.UptimeSeconds)
	}
	if stats.Scope != "primary" {
		t.Errorf("stats scope = %q, want primary", stats.Scope)
	}
	if stats.Server["certain_total"] != float64(3) {
		t.Errorf("certain_total = %v, want 3", stats.Server["certain_total"])
	}

	for path, want := range map[string]string{
		"/healthz": "ok",
		"/readyz":  "ready",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || strings.TrimSpace(buf.String()) != want {
			t.Errorf("%s: %d %q", path, resp.StatusCode, buf.String())
		}
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	if err := metrics.LintPrometheus(text); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v\n%s", err, text)
	}
	exp, err := metrics.ParsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"requests_total":                3,
		"certain_total":                 3,
		"request_latency_seconds_count": 3,
		"engine_cache_hit_rate":         0.75,
	} {
		if v, ok := exp.Value(name); !ok || v != want {
			t.Errorf("/metrics %s = %v (present=%v), want %v", name, v, ok, want)
		}
	}
	if v, ok := exp.Value("requests_by_endpoint_total", "endpoint", "certain"); !ok || v != 3 {
		t.Errorf("endpoint-labeled counter = %v (present=%v), want 3", v, ok)
	}
	// One evaluation ran (compiled strategy, result-cache miss); the two
	// repeats hit the versioned result cache.
	if v, ok := exp.Value("eval_total", "strategy", engine.StrategyCompiledBitmap, "cache", "miss"); !ok || v != 1 {
		t.Errorf("eval_total miss = %v (present=%v), want 1", v, ok)
	}
	if v, ok := exp.Value("eval_total", "strategy", engine.StrategyCompiledBitmap, "cache", "hit"); !ok || v != 2 {
		t.Errorf("eval_total hit = %v (present=%v), want 2", v, ok)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeBody[map[string]any](t, resp)
	cqad, ok := vars["cqad"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars lacks cqad: %v", vars)
	}
	if cqad["certain_total"] != float64(3) {
		t.Errorf("expvar certain_total = %v", cqad["certain_total"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars lacks the standard expvar memstats")
	}
	lat, ok := cqad["request_latency"].(map[string]any)
	if !ok || lat["count"] != float64(3) || lat["p99_ns"] == float64(0) {
		t.Errorf("expvar latency histogram wrong: %v", cqad["request_latency"])
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/certain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/certain = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

func TestServerAfterEngineClose(t *testing.T) {
	eng := engine.New(engine.Options{})
	_, ts := newTestServer(t, Options{Engine: eng})
	eng.Close()
	resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "people"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status after engine close = %d, want 503", resp.StatusCode)
	}
	out := decodeBody[ErrorBody](t, resp)
	if out.Error.Code != "shutting_down" {
		t.Errorf("code = %q", out.Error.Code)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	_, off := newTestServer(t, Options{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Options{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status = %d, want 200", resp.StatusCode)
	}
}

func ExampleServer() {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := http.Post(ts.URL+"/v1/certain", "application/json",
		strings.NewReader(`{"query": "R(x | y)", "facts": "R(a | 1)\nR(a | 2)"}`))
	var out CertainResponse
	json.NewDecoder(resp.Body).Decode(&out)
	fmt.Println(out.Certain, out.Verdict)
	// Output: true FO
}
