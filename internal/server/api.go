package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire types of the HTTP/JSON API. See docs/SERVING.md for the contract.

// ClassifyRequest asks for the Theorem 4.3 classification of one query.
type ClassifyRequest struct {
	Query string `json:"query"`
}

// ClassifyResponse reports the classification, and — when CERTAINTY(q)
// is in FO — the consistent first-order rewriting and its SQL form.
type ClassifyResponse struct {
	Query         string      `json:"query"`
	Verdict       string      `json:"verdict"`
	Guarded       bool        `json:"guarded"`
	WeaklyGuarded bool        `json:"weaklyGuarded"`
	Acyclic       bool        `json:"acyclic"`
	AttackEdges   [][2]string `json:"attackEdges"`
	Hardness      string      `json:"hardness,omitempty"`
	Cycle         []string    `json:"cycle,omitempty"`
	Rewriting     string      `json:"rewriting,omitempty"`
	SQL           string      `json:"sql,omitempty"`
}

// CertainRequest asks CERTAINTY(q) on one database: either inline fact
// text (the cqa database syntax, one fact per line) or the name of a
// database preloaded by the daemon. Exactly one of Facts and Database
// must be set.
type CertainRequest struct {
	Query    string `json:"query"`
	Facts    string `json:"facts,omitempty"`
	Database string `json:"database,omitempty"`
}

// CertainResponse is the answer for one database. For a named database
// the response also carries the store version the answer is valid at and
// whether it came from the versioned result cache.
type CertainResponse struct {
	Certain  bool   `json:"certain"`
	Verdict  string `json:"verdict"`
	Database string `json:"database,omitempty"`
	Version  uint64 `json:"version,omitempty"`
	Cached   *bool  `json:"cached,omitempty"`
}

// DBCreateRequest asks for a new named database, optionally seeded with
// inline facts (the cqa database syntax, one fact per line).
type DBCreateRequest struct {
	Name  string `json:"name"`
	Facts string `json:"facts,omitempty"`
}

// DBWriteRequest applies one atomic batch of facts to a named database
// (POST /v1/db/insert and /v1/db/delete).
type DBWriteRequest struct {
	Database string `json:"database"`
	Facts    string `json:"facts"`
}

// DBWriteResponse acknowledges a write: the store version after the
// batch, how many mutations took effect (no-ops are filtered), and the
// relations the batch touched.
type DBWriteResponse struct {
	Database string   `json:"database"`
	Version  uint64   `json:"version"`
	Applied  int      `json:"applied"`
	Touched  []string `json:"touched,omitempty"`
}

// DBInfoResponse lists every named database (GET /v1/db/info).
type DBInfoResponse struct {
	Databases []DBInfo `json:"databases"`
}

// DBInfo describes one named database from a consistent snapshot.
type DBInfo struct {
	Name              string   `json:"name"`
	Version           uint64   `json:"version"`
	Facts             int      `json:"facts"`
	Relations         []string `json:"relations"`
	Durable           bool     `json:"durable"`
	WALRecords        uint64   `json:"walRecords"`
	SegmentRecords    uint64   `json:"segmentRecords"`
	CheckpointVersion uint64   `json:"checkpointVersion"`
	Checkpoints       uint64   `json:"checkpoints"`
}

// BatchRequest fans one query across many databases (named, inline, or a
// mix; named databases run first, in order, then the inline ones).
type BatchRequest struct {
	Query     string   `json:"query"`
	Databases []string `json:"databases,omitempty"`
	Facts     []string `json:"facts,omitempty"`
}

// BatchResult is the outcome for one database of a batch.
type BatchResult struct {
	Certain bool   `json:"certain"`
	Error   string `json:"error,omitempty"`
}

// BatchResponse carries one result per database, in request order.
type BatchResponse struct {
	Verdict string        `json:"verdict"`
	Results []BatchResult `json:"results"`
}

// ErrorBody is the structured error envelope every non-2xx response
// carries: {"error": {"status": 400, "code": "bad_json", "message": ...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail describes one request failure.
type ErrorDetail struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	UptimeSeconds float64        `json:"uptimeSeconds"`
	Engine        EngineStats    `json:"engine"`
	Server        map[string]any `json:"server"`
}

// EngineStats mirrors engine.Stats in JSON form, with derived hit
// ratios for the plan cache and the versioned result cache.
type EngineStats struct {
	CacheHits           uint64  `json:"cacheHits"`
	CacheMisses         uint64  `json:"cacheMisses"`
	CacheEvictions      uint64  `json:"cacheEvictions"`
	CachedPlans         int     `json:"cachedPlans"`
	CacheHitRate        float64 `json:"cacheHitRate"`
	ResultHits          uint64  `json:"resultHits"`
	ResultMisses        uint64  `json:"resultMisses"`
	ResultInvalidations uint64  `json:"resultInvalidations"`
	CachedResults       int     `json:"cachedResults"`
	ResultHitRate       float64 `json:"resultHitRate"`
	Batches             uint64  `json:"batches"`
	BatchItems          uint64  `json:"batchItems"`
	BatchErrors         uint64  `json:"batchErrors"`
	CancelledItems      uint64  `json:"cancelledItems"`
	Workers             int     `json:"workers"`
	BusyWorkers         int     `json:"busyWorkers"`
	PeakBusyWorkers     int     `json:"peakBusyWorkers"`
}

// decodeJSON strictly decodes one JSON value from r into v: unknown
// fields, trailing garbage, and oversized bodies are errors. The caller
// wraps r in http.MaxBytesReader, so an *http.MaxBytesError surfaces
// through the returned error for the 413 mapping.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Reject a second JSON value (or any trailing non-space bytes).
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// ParseCertainRequest decodes and shape-checks a /v1/certain body. It is
// exported (within the package tree) for the fuzz target: it must never
// panic, whatever the bytes.
func ParseCertainRequest(body []byte) (CertainRequest, error) {
	var req CertainRequest
	if err := decodeJSON(bytes.NewReader(body), &req); err != nil {
		return CertainRequest{}, err
	}
	if req.Query == "" {
		return CertainRequest{}, fmt.Errorf("missing query")
	}
	if (req.Facts == "") == (req.Database == "") {
		return CertainRequest{}, fmt.Errorf("exactly one of facts and database must be set")
	}
	return req, nil
}
