package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"cqa/internal/planner"
)

// Wire types of the HTTP/JSON API. See docs/SERVING.md for the contract.

// ClassifyRequest asks for the Theorem 4.3 classification of one query.
type ClassifyRequest struct {
	Query string `json:"query"`
}

// ClassifyResponse reports the classification, and — when CERTAINTY(q)
// is in FO — the consistent first-order rewriting and its SQL form. For
// non-FO queries it instead reports the strategy the planner selected
// (hardness does not mean repair enumeration: the recognized cyclic
// shapes are served by polynomial graph deciders, docs/PLANNER.md) and
// the planner's justification.
type ClassifyResponse struct {
	Query         string      `json:"query"`
	Verdict       string      `json:"verdict"`
	Guarded       bool        `json:"guarded"`
	WeaklyGuarded bool        `json:"weaklyGuarded"`
	Acyclic       bool        `json:"acyclic"`
	AttackEdges   [][2]string `json:"attackEdges"`
	Hardness      string      `json:"hardness,omitempty"`
	Cycle         []string    `json:"cycle,omitempty"`
	Rewriting     string      `json:"rewriting,omitempty"`
	SQL           string      `json:"sql,omitempty"`
	// PlannedStrategy is the evaluation strategy this server will execute
	// for the query ("matching", "reachability", "naive-repair"); set for
	// non-FO verdicts only.
	PlannedStrategy string `json:"plannedStrategy,omitempty"`
	// PlannerReason justifies the planner's selection (non-FO only).
	PlannerReason string `json:"plannerReason,omitempty"`
}

// CertainRequest asks CERTAINTY(q) on one database: either inline fact
// text (the cqa database syntax, one fact per line) or the name of a
// database preloaded by the daemon. Exactly one of Facts and Database
// must be set.
type CertainRequest struct {
	Query    string `json:"query"`
	Facts    string `json:"facts,omitempty"`
	Database string `json:"database,omitempty"`
	// Explain asks for an ExplainInfo in the response: the evaluation
	// strategy actually executed, cache outcomes, the rewriting size and
	// quantifier-restriction plan, and per-stage timings.
	Explain bool `json:"explain,omitempty"`
}

// CertainResponse is the answer for one database. For a named database
// the response also carries the store version the answer is valid at and
// whether it came from the versioned result cache.
type CertainResponse struct {
	Certain  bool         `json:"certain"`
	Verdict  string       `json:"verdict"`
	Database string       `json:"database,omitempty"`
	Version  uint64       `json:"version,omitempty"`
	Cached   *bool        `json:"cached,omitempty"`
	Explain  *ExplainInfo `json:"explain,omitempty"`
}

// ExplainInfo is the `"explain": true` payload: what the engine chose
// and what it cost, stage by stage. Strategy names come from
// engine.Strategy ("compiled", "compiled-parallel", "tree-walk",
// "naive-repair"); shard plans from engine.ShardPlanFor ("single",
// "scatter", "pinned", "union"). See docs/OBSERVABILITY.md for the
// schema contract.
type ExplainInfo struct {
	// Strategy is the evaluation strategy actually executed.
	Strategy string `json:"strategy"`
	// PlanCache is "hit" or "miss" — whether the prepared plan came from
	// the engine's plan cache.
	PlanCache string `json:"planCache"`
	// ResultCache is "hit", "miss", or "" when the request bypassed the
	// versioned result cache (inline facts).
	ResultCache string `json:"resultCache,omitempty"`
	// RewritingSize is the node count of the consistent FO rewriting
	// (0 when CERTAINTY(q) is not in FO).
	RewritingSize int `json:"rewritingSize"`
	// Quantifiers summarizes the compiled quantifier-restriction plan,
	// one line per binder slot ("s0 ∈ R.1", "s1 ∈ min(R.0, S.1)", …).
	Quantifiers []string `json:"quantifiers,omitempty"`
	// ShardPlan and Shards report how a named-database evaluation was
	// spread over the store's shards (absent for inline facts).
	ShardPlan string `json:"shardPlan,omitempty"`
	Shards    []int  `json:"shards,omitempty"`
	// PlanDecision is the planner's recorded strategy selection for
	// non-FO queries: the graph decider (or naive fallback) chosen, why,
	// and the relation statistics consulted on the evaluated snapshot.
	// Absent for FO queries (their plan is the rewriting, reported via
	// RewritingSize and Quantifiers), under the ForceTreeWalk rollback,
	// and in batch explains (the decision is per database).
	PlanDecision *planner.Decision `json:"planDecision,omitempty"`
	// Stages holds per-stage wall-clock timings in request order.
	Stages []ExplainStage `json:"stages"`
	// TraceID joins this explain with the trace recorded for the request
	// (empty when tracing is disabled).
	TraceID string `json:"traceId,omitempty"`
}

// ExplainStage is one timed stage of a request (parse, prepare, eval, …).
type ExplainStage struct {
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
}

// RelSig is one relation signature: name, arity, and the length of the
// primary-key prefix.
type RelSig struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	Key   int    `json:"key"`
}

// DBCreateRequest asks for a new named database, optionally seeded with
// inline facts (the cqa database syntax, one fact per line). Declare
// registers relation signatures explicitly — the fact syntax can only
// infer signatures from facts, so relations that must exist empty (a
// router broadcasting a schema across shard servers) are declared here.
type DBCreateRequest struct {
	Name    string   `json:"name"`
	Facts   string   `json:"facts,omitempty"`
	Declare []RelSig `json:"declare,omitempty"`
}

// DBWriteRequest applies one atomic batch of facts to a named database
// (POST /v1/db/insert and /v1/db/delete). Declare registers relation
// signatures that ride with the batch (see DBCreateRequest.Declare).
type DBWriteRequest struct {
	Database string   `json:"database"`
	Facts    string   `json:"facts"`
	Declare  []RelSig `json:"declare,omitempty"`
}

// DBWriteResponse acknowledges a write: the store version after the
// batch, how many mutations took effect (no-ops are filtered), and the
// relations the batch touched.
type DBWriteResponse struct {
	Database string   `json:"database"`
	Version  uint64   `json:"version"`
	Applied  int      `json:"applied"`
	Touched  []string `json:"touched,omitempty"`
}

// DBInfoResponse lists every named database (GET /v1/db/info).
type DBInfoResponse struct {
	Databases []DBInfo `json:"databases"`
}

// DBInfo describes one named database from a consistent cross-shard
// view. Version is the global version (the sum of shard versions); the
// durability counters are summed over shards — per-shard detail is in
// GET /v1/shards.
type DBInfo struct {
	Name              string   `json:"name"`
	Version           uint64   `json:"version"`
	Shards            int      `json:"shards"`
	Facts             int      `json:"facts"`
	Relations         []string `json:"relations"`
	Durable           bool     `json:"durable"`
	WALRecords        uint64   `json:"walRecords"`
	SegmentRecords    uint64   `json:"segmentRecords"`
	CheckpointVersion uint64   `json:"checkpointVersion"`
	Checkpoints       uint64   `json:"checkpoints"`
}

// ShardsResponse is the GET /v1/shards payload: the serving role and
// the shard topology of every named database.
type ShardsResponse struct {
	// Role is "primary", "follower", or "router".
	Role string `json:"role"`
	// DefaultShards is the shard count for databases created here.
	DefaultShards int `json:"defaultShards"`
	// Databases lists every member with per-shard stats; on a router it
	// instead summarizes the downstream shard servers (see ShardHealth).
	Databases []DBShards `json:"databases,omitempty"`
	// Shards reports downstream shard-server health (router role only).
	Shards []ShardHealth `json:"shards,omitempty"`
}

// DBShards is the shard topology of one database.
type DBShards struct {
	Name     string      `json:"name"`
	Shards   int         `json:"shards"`
	Version  uint64      `json:"version"`
	Durable  bool        `json:"durable"`
	PerShard []ShardInfo `json:"perShard"`
}

// ShardInfo is one shard's store stats.
type ShardInfo struct {
	Index             int    `json:"index"`
	Version           uint64 `json:"version"`
	Facts             int    `json:"facts"`
	WALRecords        uint64 `json:"walRecords"`
	SegmentRecords    uint64 `json:"segmentRecords"`
	TailRecords       uint64 `json:"tailRecords"`
	TailFloor         uint64 `json:"tailFloor"`
	Followers         int    `json:"followers"`
	CheckpointVersion uint64 `json:"checkpointVersion"`
	Checkpoints       uint64 `json:"checkpoints"`
}

// ShardHealth is a router's view of one downstream shard server.
type ShardHealth struct {
	Index   int    `json:"index"`
	Primary string `json:"primary"`
	Replica string `json:"replica,omitempty"`
	// Alive reports whether the primary answered the last health probe;
	// ReplicaAlive the same for the replica.
	Alive        bool   `json:"alive"`
	ReplicaAlive bool   `json:"replicaAlive,omitempty"`
	Error        string `json:"error,omitempty"`
}

// FactsResponse is the GET /v1/db/facts payload: one shard's facts in
// the cqa database syntax, plus every relation signature (the syntax
// cannot express relations that are empty on this shard), at one
// consistent version. The router merges these to evaluate cross-shard
// joins.
type FactsResponse struct {
	Database  string   `json:"database"`
	Shard     int      `json:"shard"`
	Shards    int      `json:"shards"`
	Version   uint64   `json:"version"`
	Relations []RelSig `json:"relations"`
	Facts     string   `json:"facts"`
}

// BatchRequest fans one query across many databases (named, inline, or a
// mix; named databases run first, in order, then the inline ones).
type BatchRequest struct {
	Query     string   `json:"query"`
	Databases []string `json:"databases,omitempty"`
	Facts     []string `json:"facts,omitempty"`
	// Explain asks for an ExplainInfo covering the batch as a whole.
	Explain bool `json:"explain,omitempty"`
}

// BatchResult is the outcome for one database of a batch.
type BatchResult struct {
	Certain bool   `json:"certain"`
	Error   string `json:"error,omitempty"`
}

// BatchResponse carries one result per database, in request order.
type BatchResponse struct {
	Verdict string        `json:"verdict"`
	Results []BatchResult `json:"results"`
	Explain *ExplainInfo  `json:"explain,omitempty"`
}

// ErrorBody is the structured error envelope every non-2xx response
// carries: {"error": {"status": 400, "code": "bad_json", "message": ...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail describes one request failure. TraceID, when present,
// joins the error with the trace recorded for the request (the same ID
// the X-CQA-Trace response header carries) — set on admission rejections
// and panic-isolation responses so structured errors are joinable with
// /debug/traces.
type ErrorDetail struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"traceId,omitempty"`
}

// StatsResponse is the GET /v1/stats payload. Scope names the tier that
// produced it: "primary", "follower", or "router". A router's response
// additionally aggregates every downstream shard server under Shards.
type StatsResponse struct {
	Scope         string            `json:"scope"`
	UptimeSeconds float64           `json:"uptimeSeconds"`
	Engine        EngineStats       `json:"engine"`
	Server        map[string]any    `json:"server"`
	Shards        []ShardStatsEntry `json:"shards,omitempty"`
}

// ShardStatsEntry is a router's view of one downstream shard server's
// /v1/stats. Stats is nil (and Error set) when the shard — and, when
// configured, its replica — did not answer.
type ShardStatsEntry struct {
	Index int            `json:"index"`
	URL   string         `json:"url"`
	Stats *StatsResponse `json:"stats,omitempty"`
	Error string         `json:"error,omitempty"`
}

// EngineStats mirrors engine.Stats in JSON form, with derived hit
// ratios for the plan cache and the versioned result cache.
type EngineStats struct {
	CacheHits           uint64  `json:"cacheHits"`
	CacheMisses         uint64  `json:"cacheMisses"`
	CacheEvictions      uint64  `json:"cacheEvictions"`
	CachedPlans         int     `json:"cachedPlans"`
	CacheHitRate        float64 `json:"cacheHitRate"`
	ResultHits          uint64  `json:"resultHits"`
	ResultMisses        uint64  `json:"resultMisses"`
	ResultInvalidations uint64  `json:"resultInvalidations"`
	CachedResults       int     `json:"cachedResults"`
	ResultHitRate       float64 `json:"resultHitRate"`
	Batches             uint64  `json:"batches"`
	BatchItems          uint64  `json:"batchItems"`
	BatchSharedItems    uint64  `json:"batchSharedItems"`
	BatchErrors         uint64  `json:"batchErrors"`
	CancelledItems      uint64  `json:"cancelledItems"`
	Workers             int     `json:"workers"`
	BusyWorkers         int     `json:"busyWorkers"`
	PeakBusyWorkers     int     `json:"peakBusyWorkers"`
}

// decodeJSON strictly decodes one JSON value from r into v: unknown
// fields, trailing garbage, and oversized bodies are errors. The caller
// wraps r in http.MaxBytesReader, so an *http.MaxBytesError surfaces
// through the returned error for the 413 mapping.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Reject a second JSON value (or any trailing non-space bytes).
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// ParseCertainRequest decodes and shape-checks a /v1/certain body. It is
// exported (within the package tree) for the fuzz target: it must never
// panic, whatever the bytes.
func ParseCertainRequest(body []byte) (CertainRequest, error) {
	var req CertainRequest
	if err := decodeJSON(bytes.NewReader(body), &req); err != nil {
		return CertainRequest{}, err
	}
	if req.Query == "" {
		return CertainRequest{}, fmt.Errorf("missing query")
	}
	if (req.Facts == "") == (req.Database == "") {
		return CertainRequest{}, fmt.Errorf("exactly one of facts and database must be set")
	}
	return req, nil
}
