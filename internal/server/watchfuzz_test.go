package server

import (
	"bytes"
	"testing"
)

// FuzzWatchProtocol fuzzes the /v1/watch wire codec: ParseWatchEvent
// must never panic on arbitrary bytes, and every frame it accepts must
// survive an encode/parse round trip unchanged — the property the
// stream consumers (loadgen validator, router merge, chaos resume
// test) rely on when they treat a parsed frame as the frame that was
// sent.
func FuzzWatchProtocol(f *testing.F) {
	f.Add([]byte(`{"type":"state","database":"m","signature":"R('k0'|'v0')","version":3,"verdict":true}`))
	f.Add([]byte(`{"type":"state","version":9,"verdict":false}`))
	f.Add([]byte(`{"type":"flip","version":4,"from":false,"verdict":true,"blocks":["R(k0)"]}`))
	f.Add([]byte(`{"type":"flip","version":4,"from":true,"verdict":false}`))
	f.Add([]byte(`{"type":"heartbeat","version":7,"verdict":true}`))
	f.Add([]byte(`{"type":"flip","version":4,"verdict":true}`))
	f.Add([]byte(`{"type":"flip","version":4,"from":true,"verdict":true}`))
	f.Add([]byte(`{"type":"heartbeat","version":7,"verdict":true,"blocks":["R(k0)"]}`))
	f.Add([]byte(`{"type":"nonsense","version":1,"verdict":true}`))
	f.Add([]byte(`{"type":"state","version":1,"verdict":true}{"trailing":1}`))
	f.Add([]byte(`{"type":"state","version":1,"verdict":true,"unknown":[]}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := ParseWatchEvent(line)
		if err != nil {
			return
		}
		// Round trip: re-encoding an accepted frame and parsing it back
		// must reproduce the frame exactly.
		wire := EncodeWatchEvent(ev)
		ev2, err := ParseWatchEvent(bytes.TrimSuffix(wire, []byte("\n")))
		if err != nil {
			t.Fatalf("re-parse of encoded frame failed: %v\nframe: %+v\nwire: %s", err, ev, wire)
		}
		if ev.Type != ev2.Type || ev.Database != ev2.Database || ev.Signature != ev2.Signature ||
			ev.Version != ev2.Version || ev.Verdict != ev2.Verdict {
			t.Fatalf("round trip changed the frame: %+v -> %+v", ev, ev2)
		}
		if (ev.From == nil) != (ev2.From == nil) || (ev.From != nil && *ev.From != *ev2.From) {
			t.Fatalf("round trip changed from: %+v -> %+v", ev, ev2)
		}
		if len(ev.Blocks) != len(ev2.Blocks) {
			t.Fatalf("round trip changed blocks: %+v -> %+v", ev, ev2)
		}
		for i := range ev.Blocks {
			if ev.Blocks[i] != ev2.Blocks[i] {
				t.Fatalf("round trip changed blocks: %+v -> %+v", ev, ev2)
			}
		}
	})
}
