package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"cqa/internal/obs"
)

// Request tracing: the outermost middleware mints (or joins) a trace per
// API request, carries it through the request context so handlers — and,
// on a router, the per-shard RPCs — hang spans off it, and publishes it
// to the tracer's ring buffer at GET /debug/traces. A request arriving
// with an X-CQA-Trace header joins that trace ID instead of minting one,
// which is how one traced /v1/certain through the router yields a single
// trace ID covering the router and every contacted shard. See
// docs/OBSERVABILITY.md for the trace model.

// traced wraps the whole handler chain in one trace per API request. The
// trace ID is echoed in the X-CQA-Trace response header on every traced
// request, including errors.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !traceablePath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if obs.FromContext(r.Context()) != nil {
			// Already traced by an enclosing middleware (a router falling
			// through to its local half); don't mint a second trace.
			next.ServeHTTP(w, r)
			return
		}
		tr := s.tracer.Start(r.Method+" "+r.URL.Path, r.Header.Get(obs.TraceHeader))
		if tr == nil { // tracing disabled or sampled out
			next.ServeHTTP(w, r)
			return
		}
		defer tr.Finish()
		w.Header().Set(obs.TraceHeader, tr.ID())
		next.ServeHTTP(w, r.WithContext(obs.With(r.Context(), tr)))
	})
}

// traceablePath excludes operational probes (scrapes and health checks
// would flood the ring) and the long-lived WAL stream (its trace would
// only finish when the follower disconnects).
func traceablePath(p string) bool {
	switch p {
	case "/healthz", "/readyz", "/metrics", "/debug/vars", "/debug/traces", "/v1/wal/stream":
		return false
	}
	return !strings.HasPrefix(p, "/debug/pprof")
}

// writeErrorTraced is writeError plus the request's trace ID in the
// body, so structured errors join with /debug/traces entries.
func (s *Server) writeErrorTraced(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	s.writeErrorDetail(w, ErrorDetail{
		Status: status, Code: code, Message: msg,
		TraceID: obs.FromContext(r.Context()).ID(),
	})
}

// handleDebugTraces serves the tracer's ring buffer, newest first.
// Query parameters: id (exact trace ID), min (Go duration, e.g. 50ms),
// limit (max entries, default the full ring).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	var q obs.Query
	q.ID = r.URL.Query().Get("id")
	if v := r.URL.Query().Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_min", err.Error())
			return
		}
		q.MinDur = d
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_limit", err.Error())
			return
		}
		q.Limit = n
	}
	sampled, dropped, slow := s.tracer.Stats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"sampled": sampled,
		"dropped": dropped,
		"slow":    slow,
		"traces":  s.tracer.Snapshot(q),
	})
}

// cacheOutcome names a boolean cache result for metric labels and
// explain output.
func cacheOutcome(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// stageClock accumulates named wall-clock stage timings for explain
// output. The zero value is ready; not safe for concurrent use (each
// request owns one).
type stageClock struct {
	stages []ExplainStage
}

// time runs fn as one named stage and records its duration.
func (c *stageClock) time(name string, fn func()) {
	start := time.Now()
	fn()
	c.stages = append(c.stages, ExplainStage{Name: name, Nanos: time.Since(start).Nanoseconds()})
}
