package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"cqa/internal/db"
	"cqa/internal/metrics"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// Follower turns a read-only server into a WAL-shipping replica of a
// primary: it discovers the primary's databases and shard topology via
// GET /v1/shards, opens one following GET /v1/wal/stream per shard, and
// applies the streams through store.Replica into locally adopted
// sharded members. Reads on the follower are served from the replica
// views; every applied batch invalidates the engine's result cache the
// same way a local write would, and a snapshot-bootstrap reset (the
// replica diverged or fell past the primary's retention floor) drops
// the database's cached answers entirely — resets may reuse version
// numbers of a divergent incarnation, so exact-version caching alone is
// not enough there.
//
// A dead primary degrades the follower to serving its last applied
// state; the streams reconnect with backoff and resume (or bootstrap)
// when the primary returns. See docs/SHARDING.md.
type Follower struct {
	primary string
	id      string
	srv     *Server
	client  *http.Client
	retry   time.Duration
	logf    func(format string, v ...any)

	mu      sync.Mutex
	tracked map[string]*followerDB

	wg sync.WaitGroup
}

// followerDB is one replicated database: the serving facade over the
// per-shard replicas, plus the hook serialization lock (concurrent
// shard streams must report monotone global versions to the engine).
type followerDB struct {
	sh       *shard.Sharded
	replicas []*store.Replica
	hookMu   sync.Mutex
}

// FollowerOptions configures NewFollower.
type FollowerOptions struct {
	// Primary is the base URL of the primary server.
	Primary string
	// ID registers this follower in the primary's WAL retention floor;
	// empty selects "follower".
	ID string
	// Server is the local read-only serving side; replicated databases
	// are adopted into its store set.
	Server *Server
	// Client issues discovery and stream requests; nil selects a client
	// without an overall timeout (streams are long-lived by design).
	Client *http.Client
	// Retry is the reconnect backoff; ≤ 0 selects 500ms.
	Retry time.Duration
	// Logf receives connection lifecycle messages; nil discards them.
	Logf func(format string, v ...any)
}

// NewFollower builds a follower; Run starts it.
func NewFollower(opt FollowerOptions) *Follower {
	f := &Follower{
		primary: opt.Primary,
		id:      opt.ID,
		srv:     opt.Server,
		client:  opt.Client,
		retry:   opt.Retry,
		logf:    opt.Logf,
		tracked: make(map[string]*followerDB),
	}
	if f.id == "" {
		f.id = "follower"
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.retry <= 0 {
		f.retry = 500 * time.Millisecond
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	return f
}

// Run discovers the primary's topology, starts one stream per shard,
// and keeps re-discovering (new databases appear on the primary) until
// ctx is cancelled. It returns after every stream goroutine has
// stopped.
func (f *Follower) Run(ctx context.Context) {
	for {
		if topo, err := f.topology(ctx); err == nil {
			for _, d := range topo.Databases {
				f.track(ctx, d)
			}
			f.updateLag(topo)
		} else if ctx.Err() == nil {
			f.logf("follower: discovery: %v", err)
		}
		select {
		case <-ctx.Done():
			f.wg.Wait()
			return
		case <-time.After(f.retry * 4):
		}
	}
}

// topology fetches the primary's GET /v1/shards document.
func (f *Follower) topology(ctx context.Context) (*ShardsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/shards", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("primary /v1/shards: status %d", resp.StatusCode)
	}
	var topo ShardsResponse
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return nil, err
	}
	return &topo, nil
}

// updateLag refreshes the follower_lag_versions{db} gauge on every
// discovery tick: how many global versions each tracked database is
// behind the primary's advertised topology. A caught-up (or recovered)
// follower reads 0.
func (f *Follower) updateLag(topo *ShardsResponse) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range topo.Databases {
		fdb, ok := f.tracked[d.Name]
		if !ok {
			continue
		}
		lag := int64(d.Version) - int64(fdb.sh.Version())
		if lag < 0 {
			// The primary moved on between serving /v1/shards and our
			// streams applying newer batches; we are caught up.
			lag = 0
		}
		f.srv.Registry().Gauge(metrics.Label("follower_lag_versions", "db", d.Name)).Set(lag)
	}
}

// track starts replicating one database if it is not already tracked.
func (f *Follower) track(ctx context.Context, d DBShards) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.tracked[d.Name]; ok {
		return
	}
	fdb := &followerDB{}
	stores := make([]*store.Store, d.Shards)
	for i := 0; i < d.Shards; i++ {
		r := store.NewReplica(shardReplicaName(d.Name, i, d.Shards))
		fdb.replicas = append(fdb.replicas, r)
		stores[i] = r.Store()
	}
	fdb.sh = shard.NewShardedFromStores(d.Name, stores)
	name := d.Name
	for i, r := range fdb.replicas {
		shardIdx := i
		r.SetOnBatch(func(c store.Change) {
			fdb.hookMu.Lock()
			defer fdb.hookMu.Unlock()
			view := fdb.sh.Refresh()
			v := view.Version()
			f.srv.Engine().ApplyWrite(name, v, c.Rels)
			// Watches on the follower see the replica's global versions;
			// the per-shard change carries the dirty blocks.
			gc := c
			gc.Version = v
			f.srv.Engine().DeltaApply(name, gc, func() *db.Database { return view.Union() })
		})
		r.SetOnReset(func(version uint64) {
			fdb.hookMu.Lock()
			defer fdb.hookMu.Unlock()
			fdb.sh.Refresh()
			// A reset may reuse version numbers of a divergent
			// incarnation: forget everything cached for this database.
			f.srv.Engine().DropDB(name)
			f.logf("follower: %s shard %d reset to version %d", name, shardIdx, version)
		})
	}
	if err := f.srv.Stores().Adopt(fdb.sh); err != nil {
		f.logf("follower: adopting %s: %v", name, err)
		return
	}
	f.tracked[name] = fdb
	f.logf("follower: tracking %s (%d shard(s))", name, d.Shards)
	for i := range fdb.replicas {
		f.wg.Add(1)
		go f.streamLoop(ctx, name, i, fdb.replicas[i])
	}
}

// shardReplicaName names shard i's replica store like the primary names
// its shard store, so streams and stats line up.
func shardReplicaName(name string, i, n int) string {
	if n == 1 {
		return name
	}
	return fmt.Sprintf("%s.s%d", name, i)
}

// streamLoop keeps one shard's WAL stream alive: resume from the
// replica's version, apply until the stream breaks, back off,
// reconnect. A replica that fell past the primary's retention floor —
// or diverged — is reset by the stream's snapshot bootstrap.
func (f *Follower) streamLoop(ctx context.Context, name string, shardIdx int, r *store.Replica) {
	defer f.wg.Done()
	for ctx.Err() == nil {
		err := f.streamOnce(ctx, name, shardIdx, r)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			f.logf("follower: %s shard %d stream: %v", name, shardIdx, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.retry):
		}
	}
}

func (f *Follower) streamOnce(ctx context.Context, name string, shardIdx int, r *store.Replica) error {
	u := fmt.Sprintf("%s/v1/wal/stream?db=%s&shard=%d&from=%d&follow=1&follower=%s",
		f.primary, url.QueryEscape(name), shardIdx, r.Version(), url.QueryEscape(f.id))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream status %d", resp.StatusCode)
	}
	// ApplyStream returns when the stream ends (primary closed, network
	// cut, or ctx cancellation closing the body) or on a protocol error;
	// either way the pending uncommitted batch is discarded and the next
	// connection resumes from the last committed version.
	return r.ApplyStream(resp.Body)
}

// Versions reports each tracked database's global replica version.
func (f *Follower) Versions() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.tracked))
	for name, fdb := range f.tracked {
		out[name] = fdb.sh.Version()
	}
	return out
}
