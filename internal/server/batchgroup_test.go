package server

import (
	"net/http"
	"testing"
)

// TestBatchGroupingThroughServer: repeated named-database items in one
// POST /v1/batch resolve to pointer-identical snapshots (memoized shard
// view unions), so the engine's shared pass answers the duplicates from
// one evaluation. The verdicts stay per-item.
func TestBatchGroupingThroughServer(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	base := s.Engine().Stats().BatchSharedItems

	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Query:     "R(x | y)",
		Databases: []string{"people", "people", "people", "people"},
	})
	ans := decodeBody[BatchResponse](t, resp)
	if len(ans.Results) != 4 {
		t.Fatalf("got %d results", len(ans.Results))
	}
	for i, r := range ans.Results {
		if r.Error != "" || !r.Certain {
			t.Fatalf("result %d = %+v, want certain", i, r)
		}
	}
	if got := s.Engine().Stats().BatchSharedItems - base; got != 3 {
		t.Fatalf("BatchSharedItems delta = %d, want 3 (4 identical items, one evaluation)", got)
	}

	// The counter is exposed on /v1/stats as engine.batchSharedItems.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[StatsResponse](t, sresp)
	if st.Engine.BatchSharedItems != s.Engine().Stats().BatchSharedItems {
		t.Fatalf("/v1/stats batchSharedItems = %d, engine says %d",
			st.Engine.BatchSharedItems, s.Engine().Stats().BatchSharedItems)
	}
	if st.Engine.BatchSharedItems == 0 {
		t.Fatal("/v1/stats batchSharedItems = 0 after a shared batch")
	}

	// Inline-facts items parse fresh snapshots each: never grouped.
	base = s.Engine().Stats().BatchSharedItems
	resp = postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Query: "R(x | y)",
		Facts: []string{"R(a | 1)\n", "R(a | 1)\n"},
	})
	ans = decodeBody[BatchResponse](t, resp)
	if len(ans.Results) != 2 {
		t.Fatalf("got %d results", len(ans.Results))
	}
	if got := s.Engine().Stats().BatchSharedItems - base; got != 0 {
		t.Fatalf("inline facts shared %d items, want 0", got)
	}
}
