package server

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzServerCertainRequest fuzzes the /v1/certain request decoder: for
// arbitrary bytes, ParseCertainRequest must never panic, and a request
// it rejects must map to a 4xx — never a 5xx or a hung handler. Accepted
// requests are NOT evaluated here (query classification is exponential
// in the query, which is a cost bound, not a decoder bug).
func FuzzServerCertainRequest(f *testing.F) {
	f.Add([]byte(`{"query": "R(x | y)", "facts": "R(a | 1)\nR(a | 2)"}`))
	f.Add([]byte(`{"query": "R(x | y)", "database": "people"}`))
	f.Add([]byte(`{"query": "", "facts": ""}`))
	f.Add([]byte(`{"query": "R(x |", "facts": "zzz"}`))
	f.Add([]byte(`{"query": 42}`))
	f.Add([]byte(`{"query": "R(x | y)"}{"trailing": true}`))
	f.Add([]byte(`{"query": "R(x | y)", "unknown": []}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"query": "R(x | y)", "facts": "R(a | 1)", "database": "both"}`))

	s := New(Options{})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseCertainRequest(body)
		if err != nil {
			// The server must turn decode failures into structured 4xx
			// responses, whatever the bytes were.
			r := httptest.NewRequest("POST", "/v1/certain", strings.NewReader(string(body)))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, r)
			if w.Code < 400 || w.Code >= 500 {
				t.Fatalf("undecodable body gave status %d, want 4xx\nbody: %q", w.Code, body)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error response Content-Type = %q", ct)
			}
			if !strings.Contains(w.Body.String(), `"error"`) {
				t.Fatalf("error response lacks structured body: %s", w.Body.String())
			}
			return
		}
		// Decoded requests satisfy the shape invariants.
		if req.Query == "" {
			t.Fatalf("accepted request with empty query: %q", body)
		}
		if (req.Facts == "") == (req.Database == "") {
			t.Fatalf("accepted request with bad facts/database shape: %q", body)
		}
	})
}
