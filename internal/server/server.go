// Package server exposes the certainty engine (internal/engine) as an
// HTTP/JSON service: classification, single-database CERTAINTY checks,
// and batch fan-out, with admission control, per-request timeouts,
// request-size limits, panic isolation, and operational endpoints
// (/healthz, /readyz, /metrics, /debug/vars, optional pprof). Stdlib
// only; see docs/SERVING.md for the API contract.
package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/metrics"
	"cqa/internal/obs"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// Options configures a Server. The zero value of every field selects a
// sensible default; Engine is the only field commonly set.
type Options struct {
	// Engine answers the requests; nil creates a default engine.New.
	Engine *engine.Engine
	// Databases are the preloaded databases addressable by name in
	// /v1/certain and /v1/batch. Each is wrapped in a memory-only
	// versioned store (store.NewMem), so they are also writable through
	// /v1/db/insert and /v1/db/delete. The map and its databases must not
	// be mutated after New.
	Databases map[string]*db.Database
	// Stores is the sharded store set behind the named-database API;
	// nil creates an empty memory-only set with Shards shards per new
	// database. Databases entries whose name is not already a member are
	// adopted into it as single-shard members. The server registers each
	// member's OnApply hook (result-cache invalidation + metrics), so
	// members handed in here must not have their own OnApply.
	Stores *shard.Set
	// Shards is the shard count for databases the server creates when
	// Stores is nil; ≤ 0 selects 1.
	Shards int
	// ReadOnly rejects every mutating endpoint with 403 read_only — the
	// follower serving mode, where writes arrive only via WAL streams.
	ReadOnly bool
	// MaxInFlight bounds concurrently admitted API requests; excess
	// requests are shed with 429 + Retry-After. ≤ 0 selects 64.
	MaxInFlight int
	// RequestTimeout bounds each API request's work; ≤ 0 selects 10s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies; over-limit requests get 413.
	// ≤ 0 selects 1 MiB.
	MaxBodyBytes int64
	// MaxBatchItems bounds the databases of one /v1/batch request;
	// ≤ 0 selects 1024.
	MaxBatchItems int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// WatchHeartbeat is the /v1/watch heartbeat cadence; ≤ 0 selects
	// DefaultWatchHeartbeat.
	WatchHeartbeat time.Duration
	// Metrics receives request counters and latencies; nil creates a
	// fresh registry (exposed via Registry).
	Metrics *metrics.Registry
	// Tracer records per-request traces served at GET /debug/traces; nil
	// creates a default tracer (record everything, obs.DefaultBuffer
	// traces retained). Disable by passing a tracer built with a negative
	// TracerOptions.Sample.
	Tracer *obs.Tracer
}

// Server is the HTTP front end. Create with New, serve via Handler, and
// flip readiness with Drain during shutdown. Safe for concurrent use.
type Server struct {
	opt      Options
	eng      *engine.Engine
	stores   *shard.Set
	reg      *metrics.Registry
	tracer   *obs.Tracer
	sem      chan struct{}
	draining atomic.Bool
	handler  http.Handler
	start    time.Time
}

// New builds a server over the given options.
func New(opt Options) *Server {
	if opt.Engine == nil {
		opt.Engine = engine.New(engine.Options{})
	}
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 64
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 10 * time.Second
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 1 << 20
	}
	if opt.MaxBatchItems <= 0 {
		opt.MaxBatchItems = 1024
	}
	if opt.Metrics == nil {
		opt.Metrics = metrics.NewRegistry()
	}
	if opt.Tracer == nil {
		opt.Tracer = obs.NewTracer(obs.TracerOptions{})
	}
	if opt.Stores == nil {
		// Dir == "" cannot fail: no directory is scanned.
		opt.Stores, _ = shard.OpenSet(store.Options{}, opt.Shards)
	}
	s := &Server{
		opt:    opt,
		eng:    opt.Engine,
		stores: opt.Stores,
		reg:    opt.Metrics,
		tracer: opt.Tracer,
		sem:    make(chan struct{}, opt.MaxInFlight),
		start:  time.Now(),
	}
	// The delta layer reports its decisions and flips through the
	// server's registry; install the hooks before the stores attach so
	// no change outruns them.
	s.eng.SetWatchHooks(engine.WatchHooks{
		OnReeval: func(_, outcome string) {
			s.reg.Counter(metrics.Label("delta_reeval_total", "outcome", outcome)).Inc()
		},
		OnFlip: func(db string) {
			s.reg.Counter(metrics.Label("watch_flips_total", "db", db)).Inc()
		},
		OnFanin: func(watches, groups int) {
			// Subscriptions answered by another subscription's shared
			// evaluation (identical signature on the same database).
			s.reg.Gauge("watch_fanin").Set(int64(watches - groups))
		},
		OnResultInvalidate: func(rel string) {
			s.reg.Counter(metrics.Label("result_cache_invalidations_total", "rel", rel)).Inc()
		},
		Tracer: s.tracer,
	})
	// Preloaded databases become memory-only stores; a durable store that
	// already claimed the name wins (the preload seeded it originally).
	for name, d := range opt.Databases {
		if s.stores.Get(name) == nil {
			_ = s.stores.Adopt(shard.NewShardedFromStores(name, []*store.Store{store.NewMem(name, d)}))
		}
	}
	for _, name := range s.stores.Names() {
		s.attach(name, s.stores.Get(name))
	}
	// Pre-register the counters so /metrics shows zeros before traffic,
	// and surface the engine cache hit rate as a computed value.
	for _, n := range []string{
		"requests_total", "classify_total", "certain_total", "batch_total",
		"batch_items_total", "rejected_total", "timeouts_total",
		"errors_total", "panics_total",
		"db_create_total", "db_insert_total", "db_delete_total",
		"wal_records",
	} {
		s.reg.Counter(n)
	}
	s.reg.Counter("partial_result_total")
	s.reg.Counter("partial_write_total")
	for _, outcome := range []string{"skipped", "reevaluated", "flipped"} {
		s.reg.Counter(metrics.Label("delta_reeval_total", "outcome", outcome))
	}
	s.reg.Gauge("watch_active")
	s.reg.Gauge("watch_fanin")
	s.reg.Gauge("requests_inflight")
	s.reg.Gauge("snapshot_version")
	s.reg.Histogram("request_latency")
	s.reg.Histogram("wal_fsync_latency")
	s.reg.SetFunc("admission_queue_depth", func() any { return uint64(len(s.sem)) })
	s.reg.SetFunc("traces_sampled", func() any { n, _, _ := s.tracer.Stats(); return n })
	s.reg.SetFunc("traces_dropped", func() any { _, n, _ := s.tracer.Stats(); return n })
	s.reg.SetFunc("slow_queries", func() any { _, _, n := s.tracer.Stats(); return n })
	s.reg.SetFunc("engine_cache_hit_rate", func() any {
		st := s.eng.Stats()
		total := st.CacheHits + st.CacheMisses
		if total == 0 {
			return 0.0
		}
		return float64(st.CacheHits) / float64(total)
	})
	s.reg.SetFunc("result_cache_hits", func() any { return s.eng.Stats().ResultHits })
	s.reg.SetFunc("result_cache_misses", func() any { return s.eng.Stats().ResultMisses })
	s.reg.SetFunc("result_cache_invalidations", func() any { return s.eng.Stats().ResultInvalidations })

	mux := http.NewServeMux()
	mux.Handle("POST /v1/classify", s.api("classify_total", s.handleClassify))
	mux.Handle("POST /v1/certain", s.api("certain_total", s.handleCertain))
	mux.Handle("POST /v1/batch", s.api("batch_total", s.handleBatch))
	mux.Handle("POST /v1/db/create", s.api("db_create_total", s.handleDBCreate))
	mux.Handle("POST /v1/db/insert", s.api("db_insert_total", s.handleDBWrite(false)))
	mux.Handle("POST /v1/db/delete", s.api("db_delete_total", s.handleDBWrite(true)))
	mux.HandleFunc("GET /v1/db/info", s.handleDBInfo)
	mux.HandleFunc("GET /v1/shards", s.handleShards)
	mux.HandleFunc("GET /v1/db/facts", s.handleDBFacts)
	// The WAL stream is long-lived by design: it is registered outside
	// the api() middleware so a following replica neither occupies an
	// admission slot nor trips the per-request timeout.
	mux.HandleFunc("GET /v1/wal/stream", s.handleWALStream)
	// Watch streams are long-lived like the WAL stream: registered
	// outside the admission middleware.
	mux.HandleFunc("POST /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	if opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// The trace middleware is outermost so panic-isolation responses can
	// carry the request's trace ID.
	s.handler = s.traced(s.recoverPanics(mux))
	return s
}

// attach wires one sharded store into the server: its batches
// invalidate the engine's result cache (the hook runs under the
// facade's write lock, so ApplyWrite sees global versions in order) and
// feed the store metrics. Each effective mutation is one WAL record on
// its owner shard.
func (s *Server) attach(name string, sh *shard.Sharded) {
	s.reg.Gauge("snapshot_version").Max(int64(sh.Version()))
	sh.SetOnApply(func(c store.Change) {
		s.eng.ApplyWrite(name, c.Version, c.Rels)
		// The hook runs under the facade's write lock, so the published
		// view is exactly the snapshot at c.Version. The union is
		// resolved lazily inside the delta worker — an unwatched
		// database never builds it.
		view := sh.View()
		s.eng.DeltaApply(name, c, func() *db.Database { return view.Union() })
		s.reg.Counter("wal_records").Add(uint64(c.Applied))
		s.reg.Gauge("snapshot_version").Max(int64(c.Version))
	})
}

// Handler returns the fully middleware-wrapped handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Engine exposes the serving engine (for stats and shutdown).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Stores exposes the sharded store set (for follower wiring).
func (s *Server) Stores() *shard.Set { return s.stores }

// Attach registers the server's OnApply hook on an adopted member —
// the follower replicator adopts databases after New.
func (s *Server) Attach(name string, sh *shard.Sharded) { s.attach(name, sh) }

// role names the serving role for /v1/shards.
func (s *Server) role() string {
	if s.opt.ReadOnly {
		return "follower"
	}
	return "primary"
}

// Drain marks the server not-ready: /readyz starts answering 503 so load
// balancers stop routing here, while in-flight and straggler requests
// keep being served. Call before http.Server.Shutdown.
func (s *Server) Drain() { s.draining.Store(true) }

// api wraps an API handler with admission control, the body-size limit,
// the per-request timeout, and request metrics. counterName is the
// per-endpoint counter to bump.
func (s *Server) api(counterName string, h func(w http.ResponseWriter, r *http.Request)) http.Handler {
	endpoint := strings.TrimSuffix(counterName, "_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("requests_total").Inc()
		s.reg.Counter(metrics.Label("requests_by_endpoint_total", "endpoint", endpoint)).Inc()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.reg.Counter("rejected_total").Inc()
			w.Header().Set("Retry-After", "1")
			s.writeErrorTraced(w, r, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("server at max in-flight requests (%d)", s.opt.MaxInFlight))
			return
		}
		s.reg.Counter(counterName).Inc()
		s.reg.Gauge("requests_inflight").Add(1)
		defer s.reg.Gauge("requests_inflight").Add(-1)
		start := time.Now()
		defer func() { s.reg.Histogram("request_latency").Observe(time.Since(start)) }()

		r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	})
}

// recoverPanics is the outermost middleware: a panicking handler becomes
// a 500 with a structured body instead of a dead connection.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.reg.Counter("panics_total").Inc()
				s.writeErrorTraced(w, r, http.StatusInternalServerError, "internal_panic",
					fmt.Sprintf("handler panicked: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// bounded runs fn under the request context: when the context expires
// first, the work keeps running in its goroutine (evaluation is not
// interruptible mid-formula) but the request gets a timeout error.
// Panics inside fn — which runs outside the middleware goroutine —
// become errors here.
func (s *Server) bounded(ctx context.Context, fn func() (any, error)) (any, error) {
	done := make(chan struct{})
	var v any
	var err error
	go func() {
		defer close(done)
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("evaluation panicked: %v", rec)
			}
		}()
		v, err = fn()
	}()
	select {
	case <-done:
		return v, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
