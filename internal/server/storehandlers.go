package server

import (
	"errors"
	"fmt"
	"net/http"

	"cqa/internal/parse"
	"cqa/internal/store"
)

// The mutable-database API: named databases live in versioned stores
// (internal/store) — writers bump a version, readers answer on immutable
// snapshots, and every write flows through the store's WAL when the
// daemon runs with a data directory. See docs/STORE.md.

// handleDBCreate answers POST /v1/db/create: a new named store, durable
// when the server's set has a data directory, optionally seeded with
// inline facts.
func (s *Server) handleDBCreate(w http.ResponseWriter, r *http.Request) {
	var req DBCreateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if req.Name == "" {
		s.writeError(w, http.StatusBadRequest, "missing_name", "request lacks a database name")
		return
	}
	// Parse before creating so a bad seed does not leave an empty store.
	seed, err := parse.Database(req.Facts)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
		return
	}
	st, err := s.stores.Create(req.Name)
	switch {
	case errors.Is(err, store.ErrExists):
		s.writeError(w, http.StatusConflict, "database_exists",
			fmt.Sprintf("database %q already exists", req.Name))
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "bad_name", err.Error())
		return
	}
	s.attach(req.Name, st)
	if _, err := st.ApplyDB(seed); err != nil {
		s.writeError(w, http.StatusInternalServerError, "write_failed", err.Error())
		return
	}
	snap := st.Snapshot()
	s.writeJSON(w, http.StatusOK, DBWriteResponse{
		Database: req.Name,
		Version:  snap.Version,
		Applied:  seed.Size(),
	})
}

// handleDBWrite returns the handler for POST /v1/db/insert (del=false)
// or /v1/db/delete (del=true): one atomic batch of facts applied to a
// named store. The whole batch is one version bump; no-op facts
// (duplicate inserts, absent deletes) are filtered and do not bump.
func (s *Server) handleDBWrite(del bool) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		var req DBWriteRequest
		if err := decodeJSON(r.Body, &req); err != nil {
			s.writeDecodeError(w, err)
			return
		}
		if req.Database == "" {
			s.writeError(w, http.StatusBadRequest, "missing_database", "request lacks a database name")
			return
		}
		st := s.stores.Get(req.Database)
		if st == nil {
			s.writeError(w, http.StatusNotFound, "unknown_database",
				fmt.Sprintf("no database named %q", req.Database))
			return
		}
		batch, err := parse.Database(req.Facts)
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
			return
		}
		var change store.Change
		if del {
			change, err = st.DeleteDB(batch)
		} else {
			change, err = st.ApplyDB(batch)
		}
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "write_failed", err.Error())
			return
		}
		s.writeJSON(w, http.StatusOK, DBWriteResponse{
			Database: req.Database,
			Version:  st.Version(),
			Applied:  change.Applied,
			Touched:  change.Rels,
		})
	}
}

// handleDBInfo answers GET /v1/db/info: every named database with its
// current version, size, relations, and durability counters — all read
// from one consistent snapshot per store.
func (s *Server) handleDBInfo(w http.ResponseWriter, r *http.Request) {
	names := s.stores.Names()
	resp := DBInfoResponse{Databases: make([]DBInfo, 0, len(names))}
	for _, name := range names {
		st := s.stores.Get(name)
		if st == nil { // deleted between Names and Get; nothing to report
			continue
		}
		snap := st.Snapshot()
		stats := st.Stats()
		resp.Databases = append(resp.Databases, DBInfo{
			Name:              name,
			Version:           snap.Version,
			Facts:             snap.DB.Size(),
			Relations:         snap.DB.RelationNames(),
			Durable:           st.Durable(),
			WALRecords:        stats.WALRecords,
			SegmentRecords:    stats.SegmentRecords,
			CheckpointVersion: stats.CheckpointVersion,
			Checkpoints:       stats.Checkpoints,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}
