package server

import (
	"errors"
	"fmt"
	"net/http"

	"cqa/internal/obs"
	"cqa/internal/parse"
	"cqa/internal/store"
)

// The mutable-database API: named databases live in sharded versioned
// stores (internal/shard over internal/store) — a write facade routes
// every fact to its block's owner shard, writers bump a global version,
// readers answer on immutable cross-shard views, and every write flows
// through the owner shard's WAL when the daemon runs with a data
// directory. See docs/STORE.md and docs/SHARDING.md.

// denyReadOnly rejects mutating requests on a follower. It reports true
// when the request was handled (rejected).
func (s *Server) denyReadOnly(w http.ResponseWriter) bool {
	if !s.opt.ReadOnly {
		return false
	}
	s.writeError(w, http.StatusForbidden, "read_only",
		"this server is a read-only follower; write to the primary")
	return true
}

// applyDeclares registers the request's explicit relation signatures on
// every shard before any facts apply — the way a router broadcasts a
// schema so relations empty on some shard are still declared there
// (negated atoms need the empty relation to exist).
func applyDeclares(sh interface {
	Declare(rel string, arity, key int) (store.Change, error)
}, decls []RelSig) error {
	for _, d := range decls {
		if _, err := sh.Declare(d.Name, d.Arity, d.Key); err != nil {
			return err
		}
	}
	return nil
}

// handleDBCreate answers POST /v1/db/create: a new named sharded store,
// durable when the server's set has a data directory, optionally seeded
// with inline facts and explicit declarations.
func (s *Server) handleDBCreate(w http.ResponseWriter, r *http.Request) {
	if s.denyReadOnly(w) {
		return
	}
	var req DBCreateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if req.Name == "" {
		s.writeError(w, http.StatusBadRequest, "missing_name", "request lacks a database name")
		return
	}
	// Parse before creating so a bad seed does not leave an empty store.
	seed, err := parse.Database(req.Facts)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
		return
	}
	sh, err := s.stores.Create(req.Name)
	switch {
	case errors.Is(err, store.ErrExists):
		s.writeError(w, http.StatusConflict, "database_exists",
			fmt.Sprintf("database %q already exists", req.Name))
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "bad_name", err.Error())
		return
	}
	s.attach(req.Name, sh)
	if err := applyDeclares(sh, req.Declare); err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "bad_declare", err.Error())
		return
	}
	wsp := obs.FromContext(r.Context()).StartSpan("wal-append")
	if _, err := sh.ApplyDB(seed); err != nil {
		wsp.Fail(err)
		wsp.End()
		s.writeError(w, http.StatusInternalServerError, "write_failed", err.Error())
		return
	}
	wsp.End()
	s.writeJSON(w, http.StatusOK, DBWriteResponse{
		Database: req.Name,
		Version:  sh.Version(),
		Applied:  seed.Size(),
	})
}

// handleDBWrite returns the handler for POST /v1/db/insert (del=false)
// or /v1/db/delete (del=true): one atomic batch of facts applied to a
// named database, each fact routed to its block's owner shard. The
// whole batch is one global version bump; no-op facts (duplicate
// inserts, absent deletes) are filtered and do not bump.
func (s *Server) handleDBWrite(del bool) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.denyReadOnly(w) {
			return
		}
		var req DBWriteRequest
		if err := decodeJSON(r.Body, &req); err != nil {
			s.writeDecodeError(w, err)
			return
		}
		if req.Database == "" {
			s.writeError(w, http.StatusBadRequest, "missing_database", "request lacks a database name")
			return
		}
		sh := s.stores.Get(req.Database)
		if sh == nil {
			s.writeError(w, http.StatusNotFound, "unknown_database",
				fmt.Sprintf("no database named %q", req.Database))
			return
		}
		batch, err := parse.Database(req.Facts)
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "bad_facts", err.Error())
			return
		}
		if err := applyDeclares(sh, req.Declare); err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "bad_declare", err.Error())
			return
		}
		wsp := obs.FromContext(r.Context()).StartSpan("wal-append")
		var change store.Change
		if del {
			change, err = sh.DeleteDB(batch)
		} else {
			change, err = sh.ApplyDB(batch)
		}
		if err != nil {
			wsp.Fail(err)
			wsp.End()
			s.writeError(w, http.StatusUnprocessableEntity, "write_failed", err.Error())
			return
		}
		wsp.End()
		s.writeJSON(w, http.StatusOK, DBWriteResponse{
			Database: req.Database,
			Version:  sh.Version(),
			Applied:  change.Applied,
			Touched:  change.Rels,
		})
	}
}

// handleDBInfo answers GET /v1/db/info: every named database with its
// global version, total size, relations, and aggregated durability
// counters — all read from one consistent cross-shard view per
// database. Per-shard detail lives in GET /v1/shards.
func (s *Server) handleDBInfo(w http.ResponseWriter, r *http.Request) {
	names := s.stores.Names()
	resp := DBInfoResponse{Databases: make([]DBInfo, 0, len(names))}
	for _, name := range names {
		sh := s.stores.Get(name)
		if sh == nil { // deleted between Names and Get; nothing to report
			continue
		}
		view := sh.View()
		info := DBInfo{
			Name:    name,
			Version: view.Version(),
			Shards:  sh.NumShards(),
			// Declares are broadcast, so shard 0 knows every relation.
			Relations: view.Shard(0).RelationNames(),
			Durable:   sh.Durable(),
		}
		for i := 0; i < view.NumShards(); i++ {
			info.Facts += view.Shard(i).Size()
		}
		for _, st := range sh.Stats() {
			info.WALRecords += st.WALRecords
			info.SegmentRecords += st.SegmentRecords
			info.CheckpointVersion += st.CheckpointVersion
			info.Checkpoints += st.Checkpoints
		}
		resp.Databases = append(resp.Databases, info)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
