package server

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The /v1/watch wire protocol is newline-delimited JSON over a chunked
// response: one header event (type "state", carrying the database and
// canonical query signature) followed by flip, state, and heartbeat
// events. Resume is state-based: a client that reconnects — or whose
// flips were shed by the bounded per-watch queue — converges from the
// next state or heartbeat event, which always carries the settled
// (version, verdict) pair. See docs/DELTA.md.

// Watch event types.
const (
	WatchEventState     = "state"
	WatchEventFlip      = "flip"
	WatchEventHeartbeat = "heartbeat"
)

// WatchRequest is the body of POST /v1/watch.
type WatchRequest struct {
	// Database names the watched store.
	Database string `json:"database"`
	// Query is the watched query in surface syntax.
	Query string `json:"query"`
	// From is an optional version watermark: the header event is
	// delayed until the watch state has caught up to it, so a client
	// resuming after a disconnect never observes the verdict regress
	// behind a version it already acknowledged.
	From uint64 `json:"from,omitempty"`
}

// WatchEvent is one frame of the /v1/watch stream.
type WatchEvent struct {
	// Type is "state", "flip", or "heartbeat". The first frame is
	// always a state frame carrying Database and Signature; later
	// state frames are resynchronizations after shed flips.
	Type string `json:"type"`
	// Database and Signature identify the watch; header frame only.
	Database  string `json:"database,omitempty"`
	Signature string `json:"signature,omitempty"`
	// Version is the store version the frame reflects.
	Version uint64 `json:"version"`
	// From is the pre-flip verdict; flip frames only.
	From *bool `json:"from,omitempty"`
	// Verdict is the certainty verdict at Version.
	Verdict bool `json:"verdict"`
	// Blocks are the dirty blocks that triggered the re-evaluation
	// behind a flip, as "R(k1,k2)" strings; flip frames only.
	Blocks []string `json:"blocks,omitempty"`
}

// EncodeWatchEvent renders one newline-terminated wire frame.
func EncodeWatchEvent(ev WatchEvent) []byte {
	b, err := json.Marshal(ev)
	if err != nil {
		// WatchEvent has no unmarshalable fields; keep the stream alive.
		b = []byte(`{"type":"heartbeat","version":0,"verdict":false}`)
	}
	return append(b, '\n')
}

// ParseWatchEvent decodes one wire frame strictly: unknown fields,
// trailing data, and unknown event types are errors. Exported for the
// protocol fuzz test and the watch clients (loadgen, router).
func ParseWatchEvent(line []byte) (WatchEvent, error) {
	var ev WatchEvent
	if err := decodeJSON(bytes.NewReader(line), &ev); err != nil {
		return WatchEvent{}, err
	}
	switch ev.Type {
	case WatchEventState, WatchEventHeartbeat:
		if ev.From != nil || len(ev.Blocks) != 0 {
			return WatchEvent{}, fmt.Errorf("%s frame carries flip-only fields", ev.Type)
		}
	case WatchEventFlip:
		if ev.From == nil {
			return WatchEvent{}, fmt.Errorf("flip frame lacks from")
		}
		if *ev.From == ev.Verdict {
			return WatchEvent{}, fmt.Errorf("flip frame does not flip")
		}
	default:
		return WatchEvent{}, fmt.Errorf("unknown watch event type %q", ev.Type)
	}
	return ev, nil
}
