package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// The full single-primary replication path over real HTTP: a 2-shard
// primary, a Follower replicating both shard WAL streams, reads served
// read-only from the replica views, and result-cache invalidation
// riding the stream.
func TestFollowerReplicatesOverHTTP(t *testing.T) {
	set, err := shard.OpenSet(store.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, pts := newTestServer(t, Options{Stores: set, Databases: map[string]*db.Database{}})
	mustCreate(t, pts.URL, DBCreateRequest{Name: "d", Facts: "R(k1 | a)\nR(k2 | b)\nR(k3 | c)\n"})

	fsrv := New(Options{Engine: engine.New(engine.Options{}), ReadOnly: true})
	fts := httptest.NewServer(fsrv.Handler())
	t.Cleanup(fts.Close)
	f := NewFollower(FollowerOptions{Primary: pts.URL, ID: "it", Server: fsrv, Retry: 20 * time.Millisecond, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan struct{})
	go func() { f.Run(ctx); close(done) }()
	t.Cleanup(func() { cancel(); <-done })

	primaryVersion := func() uint64 {
		return set.Get("d").Version()
	}
	caughtUp := func() bool {
		return f.Versions()["d"] == primaryVersion()
	}
	waitFor(t, 5*time.Second, "initial catch-up", caughtUp)

	// The follower serves the replicated database read-only.
	resp := postJSON(t, fts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "d"})
	ans := decodeBody[CertainResponse](t, resp)
	if !ans.Certain {
		t.Fatalf("follower answer: %+v", ans)
	}
	resp = postJSON(t, fts.URL+"/v1/db/insert", DBWriteRequest{Database: "d", Facts: "R(k9 | z)"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower write status = %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	// A write on the primary flows through the stream and flips a ground
	// answer on the follower: k1's block gains a rival, so R(k1,a) holds
	// in only some repairs.
	resp = postJSON(t, fts.URL+"/v1/certain", CertainRequest{Query: "R('k1' | 'a')", Database: "d"})
	ans = decodeBody[CertainResponse](t, resp)
	if !ans.Certain {
		t.Fatalf("k1's block is still a singleton; follower answer: %+v", ans)
	}
	postJSON(t, pts.URL+"/v1/db/insert", DBWriteRequest{Database: "d", Facts: "R(k1 | zz)\nR(k2 | zz)\nR(k3 | zz)\n"}).Body.Close()
	waitFor(t, 5*time.Second, "write propagation", caughtUp)
	resp = postJSON(t, fts.URL+"/v1/certain", CertainRequest{Query: "R('k1' | 'a')", Database: "d"})
	ans = decodeBody[CertainResponse](t, resp)
	if ans.Certain {
		t.Fatalf("k1's block is now inconsistent; follower still certain: %+v", ans)
	}
	if ans.Version != primaryVersion() {
		t.Fatalf("follower answered at version %d, primary at %d", ans.Version, primaryVersion())
	}

	// Per-shard follower registration shows up in the primary's stats.
	sresp, err := http.Get(pts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	topo := decodeBody[ShardsResponse](t, sresp)
	if topo.Role != "primary" || len(topo.Databases) != 1 || topo.Databases[0].Shards != 2 {
		t.Fatalf("primary topology: %+v", topo)
	}
	for _, si := range topo.Databases[0].PerShard {
		if si.Followers != 1 {
			t.Fatalf("shard %d reports %d followers, want 1", si.Index, si.Followers)
		}
	}
}

// The router tier over two real shard servers: writes partition by
// block owner, ground-key reads pin one shard, joins merge facts, and a
// dead shard yields explicit partial_result degradation for queries
// that touch it — while queries pinned to the live shard keep working.
func TestRouterScatterGatherAndDegradation(t *testing.T) {
	const n = 2
	shardURLs := make([]string, n)
	shardSrvs := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		_, ts := newTestServer(t, Options{Databases: map[string]*db.Database{}})
		shardSrvs[i] = ts
		shardURLs[i] = ts.URL
	}
	rt := NewRouter(RouterOptions{Shards: shardURLs, Options: Options{Engine: engine.New(engine.Options{})}})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	// Seed enough blocks that both shards own some, and record which
	// shard owns which key.
	var facts string
	keysBy := map[int][]string{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%d", i)
		keysBy[shard.Owner("R", []string{k}, n)] = append(keysBy[shard.Owner("R", []string{k}, n)], k)
		facts += fmt.Sprintf("R(%s | v%d)\n", k, i)
	}
	if len(keysBy[0]) == 0 || len(keysBy[1]) == 0 {
		t.Fatalf("test keys all landed on one shard: %v", keysBy)
	}
	facts += "S(w | k0)\n"
	mustCreate(t, rts.URL, DBCreateRequest{Name: "d", Facts: facts})

	// The partition actually split: neither shard holds all 17 facts.
	for i, ts := range shardSrvs {
		resp, err := http.Get(ts.URL + "/v1/db/info")
		if err != nil {
			t.Fatal(err)
		}
		info := decodeBody[DBInfoResponse](t, resp)
		if len(info.Databases) != 1 || info.Databases[0].Facts == 0 || info.Databases[0].Facts >= 17 {
			t.Fatalf("shard %d holds %+v, want a strict slice", i, info.Databases)
		}
	}

	ask := func(query string) (*CertainResponse, *ErrorBody, int) {
		resp := postJSON(t, rts.URL+"/v1/certain", CertainRequest{Query: query, Database: "d"})
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ans := decodeBody[CertainResponse](t, resp)
			return &ans, nil, resp.StatusCode
		}
		eb := decodeBody[ErrorBody](t, resp)
		return nil, &eb, resp.StatusCode
	}

	// Variable-key single atom: scatter across both shards, certain.
	if ans, _, _ := ask("R(x | y)"); ans == nil || !ans.Certain {
		t.Fatalf("scatter read: %+v", ans)
	}
	// Ground-key single atom: pinned to its owner shard.
	if ans, _, _ := ask(fmt.Sprintf("R('%s' | y)", keysBy[0][0])); ans == nil || !ans.Certain {
		t.Fatalf("pinned read: %+v", ans)
	}
	// Join across shards: facts-merge path.
	if ans, _, _ := ask("S(x | y), R(y | z)"); ans == nil || !ans.Certain {
		t.Fatalf("join read: %+v", ans)
	}
	// Writes partition: the ack sums shard versions and the fact lands.
	resp := postJSON(t, rts.URL+"/v1/db/insert", DBWriteRequest{Database: "d", Facts: "R(k1 | extra)"})
	wr := decodeBody[DBWriteResponse](t, resp)
	if wr.Applied != 1 {
		t.Fatalf("router write: %+v", wr)
	}
	if ans, _, _ := ask("R('k1' | 'extra')"); ans == nil || ans.Certain {
		t.Fatalf("k1's block is now inconsistent; want not certain, got %+v", ans)
	}

	// Kill shard 1. Queries pinned to shard 0 keep answering; queries
	// touching shard 1 degrade to explicit 503 partial_result.
	shardSrvs[1].Close()
	if ans, _, _ := ask(fmt.Sprintf("R('%s' | y)", keysBy[0][0])); ans == nil || !ans.Certain {
		t.Fatalf("pinned read after kill: %+v", ans)
	}
	_, eb, status := ask(fmt.Sprintf("R('%s' | y)", keysBy[1][0]))
	if status != http.StatusServiceUnavailable || eb == nil || eb.Error.Code != "partial_result" {
		t.Fatalf("dead-shard read: status %d, body %+v", status, eb)
	}
	// A scatter that a live shard can prove true short-circuits and
	// still answers 200 despite the dead shard.
	if ans, _, _ := ask("R(x | y)"); ans == nil || !ans.Certain {
		t.Fatalf("scatter read with live-provable answer: %+v", ans)
	}
	// A scatter the live shards answer false needs the dead shard's
	// verdict, so it degrades.
	_, eb, status = ask("R(x | 'no_such_value')")
	if status != http.StatusServiceUnavailable || eb == nil || eb.Error.Code != "partial_result" {
		t.Fatalf("scatter read needing dead shard: status %d, body %+v", status, eb)
	}
	// So does the facts-merge join, which must fetch every shard's slice.
	_, eb, status = ask("S(x | y), R(y | z)")
	if status != http.StatusServiceUnavailable || eb == nil || eb.Error.Code != "partial_result" {
		t.Fatalf("join read with dead shard: status %d, body %+v", status, eb)
	}

	// /v1/shards reports the dead shard.
	hresp, err := http.Get(rts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	topo := decodeBody[ShardsResponse](t, hresp)
	if topo.Role != "router" || len(topo.Shards) != 2 || !topo.Shards[0].Alive || topo.Shards[1].Alive {
		t.Fatalf("router health: %+v", topo)
	}
}

// Reads through the router prefer a shard's replica and fall back to
// the primary when the replica is down.
func TestRouterPrefersReplicas(t *testing.T) {
	_, pts := newTestServer(t, Options{Databases: map[string]*db.Database{}})
	mustCreate(t, pts.URL, DBCreateRequest{Name: "d", Facts: "R(a | 1)"})

	// The "replica" is a plain server with different content, so the
	// test can tell who answered.
	_, replicaTS := newTestServer(t, Options{Databases: map[string]*db.Database{}})
	mustCreate(t, replicaTS.URL, DBCreateRequest{Name: "d", Facts: "R(a | 1)\nR(a | 2)\n"})

	rt := NewRouter(RouterOptions{
		Shards:   []string{pts.URL},
		Replicas: []string{replicaTS.URL},
		Options:  Options{Engine: engine.New(engine.Options{})},
	})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	resp := postJSON(t, rts.URL+"/v1/certain", CertainRequest{Query: "R('a' | '1')", Database: "d"})
	ans := decodeBody[CertainResponse](t, resp)
	if ans.Certain {
		t.Fatalf("replica's inconsistent block should answer (not certain): %+v", ans)
	}
	replicaTS.Close()
	resp = postJSON(t, rts.URL+"/v1/certain", CertainRequest{Query: "R('a' | '1')", Database: "d"})
	ans = decodeBody[CertainResponse](t, resp)
	if !ans.Certain {
		t.Fatalf("primary fallback should answer (certain): %+v", ans)
	}
}
