package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cqa/internal/parse"
	"cqa/internal/schema"
)

func mustQuery(t *testing.T, src string) schema.Query {
	t.Helper()
	q, err := parse.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 256})
	big := CertainRequest{Query: "R(x | y)", Facts: strings.Repeat("R(a | 1)\n", 200)}
	resp := postJSON(t, ts.URL+"/v1/certain", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	out := decodeBody[ErrorBody](t, resp)
	if out.Error.Code != "body_too_large" || out.Error.Status != 413 {
		t.Errorf("error body = %+v", out)
	}
}

func TestMalformedJSON400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"not json":      `{"query": `,
		"unknown field": `{"query": "R(x | y)", "boost": true}`,
		"trailing data": `{"query": "R(x | y)", "facts": ""}{"again": 1}`,
		"wrong type":    `{"query": 42}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/certain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		out := decodeBody[ErrorBody](t, resp)
		if out.Error.Code != "bad_json" || out.Error.Message == "" || out.Error.Status != 400 {
			t.Errorf("%s: error body = %+v", name, out)
		}
	}
	// Shape errors: both or neither of facts/database.
	for _, body := range []string{
		`{"query": "R(x | y)"}`,
		`{"query": "R(x | y)", "facts": "R(a | 1)", "database": "people"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/certain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestBadQueryAndFacts422(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x |", Facts: "R(a | 1)"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query: status = %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Facts: "R(a | 1\n"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad facts: status = %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()
	// Self-join breaks the sjfBCQ¬ contract → query-level 422.
	resp = postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: "R(x | y), R(y | x)"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("self-join: status = %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestUnknownDatabase404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{Query: "R(x | y)", Database: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if out := decodeBody[ErrorBody](t, resp); out.Error.Code != "unknown_database" {
		t.Errorf("error body = %+v", out)
	}
}

// slowRequest starts a /v1/certain POST whose body is held open by a
// pipe, so the handler sits inside the admitted section (reading the
// body) until release is called.
func slowRequest(t *testing.T, url string) (release func(), done <-chan *http.Response) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", url+"/v1/certain", pr)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("slow request failed: %v", err)
			close(ch)
			return
		}
		ch <- resp
	}()
	// Send the opening bytes so the server has surely entered the handler.
	if _, err := pw.Write([]byte(`{"query": "R(x | y)", `)); err != nil {
		t.Fatal(err)
	}
	return func() {
		pw.Write([]byte(`"facts": "R(a | 1)\nR(a | 2)"}`))
		pw.Close()
	}, ch
}

func TestAdmissionControl429(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInFlight: 1})

	release, done := slowRequest(t, ts.URL)
	// The slot is held; the next request must be shed.
	deadline := time.Now().Add(5 * time.Second)
	var resp *http.Response
	for {
		resp = postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: "R(x | y)"})
		if resp.StatusCode == http.StatusTooManyRequests || time.Now().After(deadline) {
			break
		}
		// The slow request may not have been admitted yet; retry.
		resp.Body.Close()
		time.Sleep(time.Millisecond)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if out := decodeBody[ErrorBody](t, resp); out.Error.Code != "overloaded" {
		t.Errorf("error body = %+v", out)
	}

	// Releasing the slot restores service.
	release()
	slow := <-done
	if slow.StatusCode != http.StatusOK {
		t.Fatalf("slow request status = %d, want 200", slow.StatusCode)
	}
	slow.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Query: "R(x | y)"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPerRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{RequestTimeout: 5 * time.Millisecond})
	// A cyclic query outside the planner's decider shapes (negation-free,
	// so neither graph pattern applies) falls back to repair enumeration;
	// 2^20 repairs cannot finish in 5ms, and because every repair
	// satisfies the query (the singleton S-blocks cover block k0 both
	// ways) there is no early exit.
	var facts strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&facts, "R(k%d | a)\nR(k%d | b)\n", i, i)
	}
	facts.WriteString("S(a | k0)\nS(b | k0)\n")
	resp := postJSON(t, ts.URL+"/v1/certain", CertainRequest{
		Query: "R(x | y), S(y | x)",
		Facts: facts.String(),
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if out := decodeBody[ErrorBody](t, resp); out.Error.Code != "timeout" {
		t.Errorf("error body = %+v", out)
	}
}

// TestDrainSurvivesShutdown simulates the SIGTERM path: an in-flight
// request must complete with 200 while http.Server.Shutdown drains, and
// /readyz must flip to 503 as soon as draining starts.
func TestDrainSurvivesShutdown(t *testing.T) {
	s := New(Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Wait for the listener to actually serve.
	waitUntil(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == 200
	})

	release, done := slowRequest(t, base)

	// SIGTERM arrives: drain readiness, then shut down gracefully.
	s.Drain()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", resp.StatusCode)
	}

	var inflightCompleted atomic.Bool
	go func() {
		// Release the in-flight request once Shutdown is surely waiting.
		time.Sleep(20 * time.Millisecond)
		release()
		r := <-done
		if r == nil {
			return
		}
		if r.StatusCode == http.StatusOK {
			var out CertainResponse
			if json.NewDecoder(r.Body).Decode(&out) == nil && out.Certain {
				inflightCompleted.Store(true)
			}
		}
		r.Body.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Shutdown only returns once in-flight requests finished; the slow
	// request must have been answered, not cut off.
	waitUntil(t, func() bool { return inflightCompleted.Load() })
	s.Engine().Close()
	if _, err := s.Engine().Certain(mustQuery(t, "R(x | y)"), nil); err == nil {
		t.Error("engine should reject work after Close")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
