package server

import (
	"fmt"
	"net/http"
	"time"

	"cqa/internal/delta"
	"cqa/internal/parse"
)

// DefaultWatchHeartbeat is the watch stream heartbeat cadence when
// Options.WatchHeartbeat is unset.
const DefaultWatchHeartbeat = 3 * time.Second

// handleWatch answers POST /v1/watch: it registers the query against
// the named database for incremental certainty maintenance and streams
// verdict-flip events as newline-delimited JSON until the client
// disconnects or the database is dropped. Like /v1/wal/stream the
// handler is registered outside the admission middleware — a watcher
// neither occupies an admission slot nor trips the request timeout.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req WatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if req.Database == "" {
		s.writeError(w, http.StatusBadRequest, "missing_database", "request lacks a database name")
		return
	}
	if req.Query == "" {
		s.writeError(w, http.StatusBadRequest, "missing_query", "request lacks a query")
		return
	}
	sh := s.stores.Get(req.Database)
	if sh == nil {
		s.writeError(w, http.StatusNotFound, "unknown_database",
			fmt.Sprintf("no database named %q", req.Database))
		return
	}
	q, err := parse.Query(req.Query)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "bad_query", err.Error())
		return
	}
	view := sh.View()
	watch, state, err := s.eng.RegisterWatch(q, req.Database,
		delta.Snapshot{DB: view.Union(), Version: view.Version()})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "watch_failed", err.Error())
		return
	}
	defer s.eng.UnregisterWatch(watch)
	active := s.reg.Gauge("watch_active")
	active.Add(1)
	defer active.Add(-1)

	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")

	heartbeat := s.opt.WatchHeartbeat
	if heartbeat <= 0 {
		heartbeat = DefaultWatchHeartbeat
	}

	// Resume watermark: hold the header until the watch state reaches
	// req.From, so a reconnecting client never sees its verdict regress
	// behind a version it already processed. Flips that arrive while
	// waiting fold into the header state (the client resynchronizes
	// from it either way).
	for state.Version < req.From {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-watch.Events():
			if !ok {
				return
			}
			state = delta.State{Version: ev.Version, Verdict: ev.To}
		case <-time.After(heartbeat):
			state = watch.State()
		}
	}
	header := WatchEvent{
		Type:      WatchEventState,
		Database:  req.Database,
		Signature: watch.Signature(),
		Version:   state.Version,
		Verdict:   state.Verdict,
	}
	if _, err := w.Write(EncodeWatchEvent(header)); err != nil {
		return
	}
	flush()

	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-watch.Events():
			if !ok {
				// Database dropped (or engine closing): end the stream;
				// the client re-registers against the fresh state.
				return
			}
			frame := WatchEvent{Version: ev.Version, Verdict: ev.To}
			if ev.Resync {
				frame.Type = WatchEventState
			} else {
				frame.Type = WatchEventFlip
				from := ev.From
				frame.From = &from
				frame.Blocks = ev.Blocks
			}
			if _, err := w.Write(EncodeWatchEvent(frame)); err != nil {
				return
			}
			flush()
		case <-hb.C:
			st := watch.State()
			frame := WatchEvent{Type: WatchEventHeartbeat, Version: st.Version, Verdict: st.Verdict}
			if _, err := w.Write(EncodeWatchEvent(frame)); err != nil {
				return
			}
			flush()
		}
	}
}
