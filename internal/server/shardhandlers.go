package server

import (
	"fmt"
	"net/http"
	"strconv"

	"cqa/internal/parse"
	"cqa/internal/store"
)

// Shard-aware operational endpoints: topology and per-shard stats
// (GET /v1/shards), the facts export a router merges for cross-shard
// joins (GET /v1/db/facts), and the WAL stream follower replicas tail
// (GET /v1/wal/stream). See docs/SHARDING.md.

// handleShards answers GET /v1/shards with the serving role and the
// shard topology of every database.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	resp := ShardsResponse{Role: s.role(), DefaultShards: s.stores.ShardCount()}
	for _, name := range s.stores.Names() {
		sh := s.stores.Get(name)
		if sh == nil {
			continue
		}
		view := sh.View()
		d := DBShards{
			Name:    name,
			Shards:  sh.NumShards(),
			Version: view.Version(),
			Durable: sh.Durable(),
		}
		for i, st := range sh.Stats() {
			d.PerShard = append(d.PerShard, ShardInfo{
				Index:             i,
				Version:           st.Version,
				Facts:             view.Shard(i).Size(),
				WALRecords:        st.WALRecords,
				SegmentRecords:    st.SegmentRecords,
				TailRecords:       st.TailRecords,
				TailFloor:         st.TailFloor,
				Followers:         st.Followers,
				CheckpointVersion: st.CheckpointVersion,
				Checkpoints:       st.Checkpoints,
			})
		}
		resp.Databases = append(resp.Databases, d)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleDBFacts answers GET /v1/db/facts?db=<name>[&shard=<i>]: the
// named database's facts (one shard's slice, or the whole union) in the
// cqa database syntax, with every relation signature alongside, at one
// consistent version.
func (s *Server) handleDBFacts(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("db")
	sh := s.stores.Get(name)
	if sh == nil {
		s.writeError(w, http.StatusNotFound, "unknown_database",
			fmt.Sprintf("no database named %q", name))
		return
	}
	view := sh.View()
	shardIdx := -1
	if v := r.URL.Query().Get("shard"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 0 || i >= view.NumShards() {
			s.writeError(w, http.StatusBadRequest, "bad_shard",
				fmt.Sprintf("shard must be in [0, %d)", view.NumShards()))
			return
		}
		shardIdx = i
	}
	d := view.Union()
	if shardIdx >= 0 {
		d = view.Shard(shardIdx)
	}
	facts, err := parse.FormatDatabase(d)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "unrenderable_facts", err.Error())
		return
	}
	resp := FactsResponse{
		Database:  name,
		Shard:     shardIdx,
		Shards:    view.NumShards(),
		Version:   view.Version(),
		Relations: make([]RelSig, 0, 4),
		Facts:     facts,
	}
	// Declares are broadcast, so shard 0 knows every signature — even
	// relations with no facts on the exported shard.
	for _, rel := range view.Shard(0).RelationNames() {
		rr := view.Shard(0).Relation(rel)
		resp.Relations = append(resp.Relations, RelSig{Name: rel, Arity: rr.Arity, Key: rr.Key})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleWALStream answers GET /v1/wal/stream?db=<name>&shard=<i>
// [&from=<version>][&follow=1][&follower=<id>]: the store's catch-up
// stream (snapshot bootstrap or tail resume; see internal/store
// ServeStream). With follow=1 the response never ends on its own — the
// handler is registered outside the admission middleware, so a tailing
// replica occupies no admission slot and hits no request timeout.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sh := s.stores.Get(q.Get("db"))
	if sh == nil {
		s.writeError(w, http.StatusNotFound, "unknown_database",
			fmt.Sprintf("no database named %q", q.Get("db")))
		return
	}
	shardIdx := 0
	if v := q.Get("shard"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 0 || i >= sh.NumShards() {
			s.writeError(w, http.StatusBadRequest, "bad_shard",
				fmt.Sprintf("shard must be in [0, %d)", sh.NumShards()))
			return
		}
		shardIdx = i
	}
	var from uint64
	if v := q.Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_from", "from must be a version number")
			return
		}
		from = n
	}
	o := store.StreamOptions{
		From:     from,
		Follower: q.Get("follower"),
		Follow:   q.Get("follow") == "1" || q.Get("follow") == "true",
		Stop:     r.Context().Done(),
	}
	if f, ok := w.(http.Flusher); ok {
		o.Flush = f.Flush
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	// Past this point the stream owns the connection: errors can only
	// end it, not change the status.
	_ = sh.Shard(shardIdx).ServeStream(w, o)
}
