package attack_test

import (
	"sort"
	"strings"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func edges(t *testing.T, q string) []string {
	t.Helper()
	g := attack.New(parse.MustQuery(q))
	var out []string
	for _, e := range g.Edges() {
		out = append(out, e[0]+"->"+e[1])
	}
	sort.Strings(out)
	return out
}

func eq(t *testing.T, got []string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("edges = %v, want %v", got, want)
	}
}

// Example 4.1: q2 = {P(x,y), ¬R(x|y), ¬S(y|x)} has four edges.
func TestExample41(t *testing.T) {
	got := edges(t, "P(x, y), !R(x | y), !S(y | x)")
	eq(t, got, "R->S", "S->R", "R->P", "S->P")
}

// Example 4.1 closure sets: P⊕={x,y}, R⊕={x}, S⊕={y}.
func TestExample41Oplus(t *testing.T) {
	g := attack.New(parse.MustQuery("P(x, y), !R(x | y), !S(y | x)"))
	if want := schema.NewVarSet("x", "y"); !g.Oplus("P").Equal(want) {
		t.Errorf("P⊕ = %v, want %v", g.Oplus("P"), want)
	}
	if want := schema.NewVarSet("x"); !g.Oplus("R").Equal(want) {
		t.Errorf("R⊕ = %v, want %v", g.Oplus("R"), want)
	}
	if want := schema.NewVarSet("y"); !g.Oplus("S").Equal(want) {
		t.Errorf("S⊕ = %v, want %v", g.Oplus("S"), want)
	}
}

// Example 4.2: q3 = {P(x|y), ¬N('c'|y)} has exactly one edge N → P.
func TestExample42(t *testing.T) {
	got := edges(t, "P(x | y), !N('c' | y)")
	eq(t, got, "N->P")

	g := attack.New(parse.MustQuery("P(x | y), !N('c' | y)"))
	if !g.Oplus("P").Equal(schema.NewVarSet("x")) {
		t.Errorf("P⊕ = %v, want {x}", g.Oplus("P"))
	}
	if !g.Oplus("N").Empty() {
		t.Errorf("N⊕ = %v, want {}", g.Oplus("N"))
	}
	// A witness for N|y ⇝ x is the sequence (y, x).
	wit := g.Witness("N", "y", "x")
	if len(wit) != 2 || wit[0] != "y" || wit[1] != "x" {
		t.Errorf("witness for N|y⇝x = %v, want [y x]", wit)
	}
	if g.Attacks("P", "N") {
		t.Error("P should not attack N")
	}
}

// Example 4.4: the attack graph of q2 is cyclic.
func TestExample44Cyclic(t *testing.T) {
	g := attack.New(parse.MustQuery("P(x, y), !R(x | y), !S(y | x)"))
	if g.IsAcyclic() {
		t.Fatal("attack graph of q2 should be cyclic")
	}
	f, gg, ok := g.TwoCycle()
	if !ok {
		t.Fatal("no 2-cycle found")
	}
	pair := f + gg
	if pair != "RS" && pair != "SR" {
		t.Errorf("2-cycle = (%s, %s), want R,S", f, gg)
	}
	if n := g.NegatedInPair(f, gg); n != 2 {
		t.Errorf("negated atoms in 2-cycle = %d, want 2", n)
	}
}

// Example 4.5: the attack graph of q3 is acyclic.
func TestExample45Acyclic(t *testing.T) {
	g := attack.New(parse.MustQuery("P(x | y), !N('c' | y)"))
	if !g.IsAcyclic() {
		t.Fatal("attack graph of q3 should be acyclic")
	}
}

// Example 4.6: the mayors schema. q1 and q2 are cyclic; qa and qb are
// acyclic with the attacks stated in the paper.
// Likes is all-key (a person may like several towns); Born, Lives, and
// Mayor have simple keys. These signatures are the ones that produce
// exactly the attacks the example states.
func TestExample46Mayors(t *testing.T) {
	q1 := "Mayor(t | p), !Lives(p | t)"
	q2 := "Likes(p, t), !Lives(p | t), !Mayor(t | p)"
	qa := "Lives(p | t), !Born(p | t), !Likes(p, t)"
	qb := "Likes(p, t), !Born(p | t), !Lives(p | t)"

	if attack.New(parse.MustQuery(q1)).IsAcyclic() {
		t.Error("q1 should be cyclic")
	}
	if attack.New(parse.MustQuery(q2)).IsAcyclic() {
		t.Error("q2 should be cyclic")
	}

	ga := attack.New(parse.MustQuery(qa))
	if !ga.IsAcyclic() {
		t.Error("qa should be acyclic")
	}
	// The attack graph of qa contains exactly one attack: Lives → Likes.
	eq(t, edges(t, qa), "Lives->Likes")

	gb := attack.New(parse.MustQuery(qb))
	if !gb.IsAcyclic() {
		t.Error("qb should be acyclic")
	}
	// The attack graph of qb contains two attacks, both ending in Likes.
	eq(t, edges(t, qb), "Born->Likes", "Lives->Likes")
}

// Example 3.2 second query: weakly-guarded but not guarded; all
// machinery should handle the 5-ary negated atom.
func TestWeaklyGuardedBigQuery(t *testing.T) {
	q := parse.MustQuery("R(x | y, z, u), S(y | w, z), T(x | u, w), !N(x | y, z, u, w)")
	if !q.WeaklyGuarded() {
		t.Fatal("query should be weakly-guarded")
	}
	if q.Guarded() {
		t.Fatal("query should not be guarded")
	}
	// The graph must be computable without panicking.
	_ = attack.New(q)
}

// q_Hall (Example 6.12) has an acyclic attack graph: every N_i attacks S.
func TestQHallAcyclic(t *testing.T) {
	q := parse.MustQuery("S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)")
	g := attack.New(q)
	if !g.IsAcyclic() {
		t.Fatal("q_Hall should be acyclic")
	}
	eq(t, edges(t, "S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)"),
		"N1->S", "N2->S", "N3->S")
}

// q0, q1, q2 of Section 5.1: the three canonical hard queries are cyclic,
// with a 2-cycle containing zero, one, and two negated atoms respectively.
func TestCanonicalHardQueries(t *testing.T) {
	cases := []struct {
		src        string
		negInCycle int
	}{
		{"R(x | y), S(y | x)", 0},
		{"R(x | y), !S(y | x)", 1},
		{"R(x, y), !S(x | y), !T(y | x)", 2},
	}
	for _, c := range cases {
		g := attack.New(parse.MustQuery(c.src))
		if g.IsAcyclic() {
			t.Errorf("query %q should have a cyclic attack graph", c.src)
			continue
		}
		f, gg, ok := g.TwoCycle()
		if !ok {
			t.Errorf("query %q: no 2-cycle found", c.src)
			continue
		}
		if n := g.NegatedInPair(f, gg); n != c.negInCycle {
			t.Errorf("query %q: 2-cycle (%s, %s) has %d negated atoms, want %d",
				c.src, f, gg, n, c.negInCycle)
		}
	}
}

// When q⁻ = ∅ the attack graph coincides with the negation-free notion of
// [19]; spot-check a known acyclic join query.
func TestNegationFreePath(t *testing.T) {
	// R(x|y), S(y|z): R attacks S (y ∉ R⊕ ... wait, y ∈ vars(R),
	// R⊕ = closure of {x} under {y→yz} = {x}; witness (y) attacks key(S)).
	// S does not attack R since S⊕ = closure of {y} under {x→xy} = {y},
	// and S's variables z... S|z ⇝ x would need a path z–x avoiding {y}:
	// z co-occurs only with y (in S); no path. Acyclic.
	g := attack.New(parse.MustQuery("R(x | y), S(y | z)"))
	if !g.Attacks("R", "S") {
		t.Error("R should attack S")
	}
	if g.Attacks("S", "R") {
		t.Error("S should not attack R")
	}
	if !g.IsAcyclic() {
		t.Error("path query should be acyclic")
	}
}

// All-key atoms have zero outdegree (used in the proof of Lemma 6.1).
func TestAllKeyZeroOutdegree(t *testing.T) {
	g := attack.New(parse.MustQuery("X(x), Y(y), R(x | y)"))
	for _, rel := range []string{"X", "Y"} {
		if len(g.AttackedVars(rel)) != 0 {
			t.Errorf("all-key atom %s attacks variables %v", rel, g.AttackedVars(rel))
		}
	}
}

// Unattacked variables: in q3 both x and y are attacked by N (Example 4.2
// notes N|y ⇝ y and N|y ⇝ x); in the path query R(x|y), S(y|z) only x is
// unattacked.
func TestUnattackedVars(t *testing.T) {
	g := attack.New(parse.MustQuery("P(x | y), !N('c' | y)"))
	uv := g.UnattackedVars()
	if uv.Has("x") {
		t.Error("x should be attacked (N ⇝ x via witness (y, x))")
	}
	if uv.Has("y") {
		t.Error("y should be attacked (N ⇝ y)")
	}

	g2 := attack.New(parse.MustQuery("R(x | y), S(y | z)"))
	uv2 := g2.UnattackedVars()
	if !uv2.Equal(schema.NewVarSet("x")) {
		t.Errorf("unattacked vars = %v, want {x}", uv2)
	}
}
