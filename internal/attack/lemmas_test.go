package attack_test

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/gen"
	"cqa/internal/schema"
)

// randomQueries yields n random weakly-guarded queries.
func randomQueries(seed int64, n int) []schema.Query {
	rng := rand.New(rand.NewSource(seed))
	opts := gen.DefaultQueryOptions()
	out := make([]schema.Query, n)
	for i := range out {
		out[i] = gen.Query(rng, opts)
	}
	return out
}

// Lemma 4.7: if F|w ⇝ u, then for every positive P ≠ F with u ∈ vars(P),
// F attacks some variable of key(P) (hence F → P).
func TestLemma47(t *testing.T) {
	for _, q := range randomQueries(47, 120) {
		g := attack.New(q)
		for _, rel := range g.Atoms() {
			attacked := g.AttackedVars(rel)
			for u := range attacked {
				for _, p := range q.Positive() {
					if p.Rel == rel || !p.Vars().Has(u) {
						continue
					}
					hit := false
					for kv := range p.KeyVars() {
						if attacked.Has(kv) {
							hit = true
							break
						}
					}
					if !hit {
						t.Fatalf("Lemma 4.7 violated in %s: %s ⇝ %s ∈ vars(%s) but no key var of %s attacked",
							q, rel, u, p.Rel, p.Rel)
					}
					if !g.Attacks(rel, p.Rel) {
						t.Fatalf("Lemma 4.7 corollary violated in %s: %s should attack %s", q, rel, p.Rel)
					}
				}
			}
		}
	}
}

// Lemma 4.8: if F → P for positive P, then F attacks every variable of
// vars(P) \ F^{⊕,q}.
func TestLemma48(t *testing.T) {
	for _, q := range randomQueries(48, 120) {
		g := attack.New(q)
		for _, from := range g.Atoms() {
			oplus := g.Oplus(from)
			attacked := g.AttackedVars(from)
			for _, p := range q.Positive() {
				if p.Rel == from || !g.Attacks(from, p.Rel) {
					continue
				}
				for u := range p.Vars().Minus(oplus) {
					if !attacked.Has(u) {
						t.Fatalf("Lemma 4.8 violated in %s: %s → %s but %s ̸⇝ %s ∉ F⊕",
							q, from, p.Rel, from, u)
					}
				}
			}
		}
	}
}

// Lemma 4.9 (weak guards): F → G and G → H imply F → H or G → F. As the
// paper notes, this forces every cyclic attack graph to contain a cycle
// of length two.
func TestLemma49(t *testing.T) {
	for _, q := range randomQueries(49, 150) {
		g := attack.New(q)
		atoms := g.Atoms()
		for _, f := range atoms {
			for _, gg := range atoms {
				if f == gg || !g.Attacks(f, gg) {
					continue
				}
				for _, h := range atoms {
					if h == gg || !g.Attacks(gg, h) {
						continue
					}
					if h == f {
						continue // F → G → F is itself a 2-cycle
					}
					if !g.Attacks(f, h) && !g.Attacks(gg, f) {
						t.Fatalf("Lemma 4.9 violated in %s: %s→%s→%s without %s→%s or %s→%s",
							q, f, gg, h, f, h, gg, f)
					}
				}
			}
		}
		// Consequence: cyclic implies a 2-cycle exists.
		if !g.IsAcyclic() {
			if _, _, ok := g.TwoCycle(); !ok {
				t.Fatalf("cyclic weakly-guarded graph without a 2-cycle: %s", q)
			}
		}
	}
}

// Lemma 6.10: substituting a constant for a variable never creates
// attacks (edges of the substituted query inject into the original) and
// preserves weak-guardedness.
func TestLemma610(t *testing.T) {
	rng := rand.New(rand.NewSource(610))
	for _, q := range randomQueries(611, 100) {
		vars := q.Vars().Sorted()
		if len(vars) == 0 {
			continue
		}
		x := vars[rng.Intn(len(vars))]
		qc := q.Substitute(map[string]schema.Term{x: schema.Const("c·sub")})
		if !qc.WeaklyGuarded() {
			t.Fatalf("Lemma 6.10(2) violated: %s not weakly-guarded after [%s↦c]", qc, x)
		}
		g := attack.New(q)
		gc := attack.New(qc)
		for _, e := range gc.Edges() {
			if !g.Attacks(e[0], e[1]) {
				t.Fatalf("Lemma 6.10(1) violated in %s: edge %s→%s appears only after [%s↦c]",
					q, e[0], e[1], x)
			}
		}
	}
}

// The attack graph does not depend on the order of literals in the query.
func TestAttackOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, q := range randomQueries(1235, 60) {
		perm := rng.Perm(len(q.Lits))
		shuffled := schema.Query{Lits: make([]schema.Literal, len(q.Lits))}
		for i, j := range perm {
			shuffled.Lits[i] = q.Lits[j]
		}
		g1, g2 := attack.New(q), attack.New(shuffled)
		e1, e2 := g1.Edges(), g2.Edges()
		set := make(map[[2]string]bool, len(e1))
		for _, e := range e1 {
			set[e] = true
		}
		if len(e1) != len(e2) {
			t.Fatalf("edge count differs under permutation of %s", q)
		}
		for _, e := range e2 {
			if !set[e] {
				t.Fatalf("edge %v appears only under permutation of %s", e, q)
			}
		}
	}
}

// Negated atoms never receive attacks on ground keys: an atom whose key
// has no variables has in-degree 0.
func TestGroundKeyUnattacked(t *testing.T) {
	for _, q := range randomQueries(77, 80) {
		g := attack.New(q)
		for _, rel := range g.Atoms() {
			a, _ := q.AtomByRel(rel)
			if a.KeyVars().Empty() && g.InDegree(rel) != 0 {
				t.Fatalf("%s: atom %s has ground key but in-degree %d", q, rel, g.InDegree(rel))
			}
		}
	}
}

// Witness sequences returned by the graph are genuine witnesses: they
// start in vars(F), end at the target, avoid F⊕, and consecutive
// variables co-occur in a positive atom.
func TestWitnessSoundness(t *testing.T) {
	for _, q := range randomQueries(99, 80) {
		g := attack.New(q)
		for _, rel := range g.Atoms() {
			a, _ := q.AtomByRel(rel)
			oplus := g.Oplus(rel)
			for w := range g.AttackedVars(rel) {
				u, wit, ok := g.AttackVarWitness(rel, w)
				if !ok {
					t.Fatalf("%s: no witness for %s ⇝ %s", q, rel, w)
				}
				if !a.Vars().Has(u) {
					t.Fatalf("%s: witness start %s not in vars(%s)", q, u, rel)
				}
				if wit[0] != u || wit[len(wit)-1] != w {
					t.Fatalf("%s: witness %v has wrong endpoints", q, wit)
				}
				for _, v := range wit {
					if oplus.Has(v) {
						t.Fatalf("%s: witness %v enters %s⊕", q, wit, rel)
					}
				}
				for i := 0; i+1 < len(wit); i++ {
					cooccur := false
					for _, p := range q.Positive() {
						if p.Vars().Has(wit[i]) && p.Vars().Has(wit[i+1]) {
							cooccur = true
							break
						}
					}
					if !cooccur {
						t.Fatalf("%s: witness step %s–%s not covered by a positive atom", q, wit[i], wit[i+1])
					}
				}
			}
		}
	}
}
