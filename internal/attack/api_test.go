package attack_test

import (
	"strings"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func TestGraphAccessors(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	g := attack.New(q)
	if g.Query().String() != q.String() {
		t.Error("Query accessor broken")
	}
	if !g.AttacksVar("N", "x") || !g.AttacksVar("N", "y") {
		t.Error("N should attack both x and y (Example 4.2)")
	}
	if g.AttacksVar("P", "x") {
		t.Error("P should not attack x (x ∈ P⊕)")
	}
	un := g.Unattacked()
	if len(un) != 1 || un[0] != "N" {
		t.Errorf("unattacked = %v, want [N]", un)
	}
	s := g.String()
	if !strings.Contains(s, "N -> {P}") || !strings.Contains(s, "P -> {}") {
		t.Errorf("String = %q", s)
	}
}

func TestReachFrom(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	g := attack.New(q)
	// N|y reaches both y and x (via the co-occurrence in P).
	if reach := g.ReachFrom("N", "y"); !reach.Equal(schema.NewVarSet("x", "y")) {
		t.Errorf("ReachFrom(N, y) = %v, want {x, y}", reach)
	}
	// P|y reaches only y (x ∈ P⊕ blocks the step).
	if reach := g.ReachFrom("P", "y"); !reach.Equal(schema.NewVarSet("y")) {
		t.Errorf("ReachFrom(P, y) = %v, want {y}", reach)
	}
	// Unknown atom or variable outside vars(F): empty.
	if !g.ReachFrom("Ghost", "y").Empty() {
		t.Error("ReachFrom on unknown relation should be empty")
	}
	if !g.ReachFrom("N", "x").Empty() {
		t.Error("ReachFrom(N, x) should be empty: x ∉ vars(N)")
	}
	// Variable in F⊕: empty.
	if !g.ReachFrom("P", "x").Empty() {
		t.Error("ReachFrom(P, x) should be empty: x ∈ P⊕")
	}
}

func TestWitnessNegativeCases(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	g := attack.New(q)
	if g.Witness("Ghost", "y", "x") != nil {
		t.Error("witness for unknown relation should be nil")
	}
	if g.Witness("N", "zz", "x") != nil {
		t.Error("witness from a variable outside vars(F) should be nil")
	}
	if g.Witness("P", "x", "y") != nil {
		t.Error("witness starting inside F⊕ should be nil")
	}
	if _, _, ok := g.AttackVarWitness("P", "x"); ok {
		t.Error("AttackVarWitness should fail for unattacked targets")
	}
}

func TestNewPanicsOnSelfJoin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on self-joins")
		}
	}()
	q := schema.NewQuery(
		schema.Pos(schema.NewAtom("R", 1, schema.Var("x"))),
		schema.Pos(schema.NewAtom("R", 1, schema.Var("y"))),
	)
	attack.New(q)
}

func TestTwoCycleAbsent(t *testing.T) {
	g := attack.New(parse.MustQuery("R(x | y), S(y | z)"))
	if _, _, ok := g.TwoCycle(); ok {
		t.Error("acyclic graph should have no 2-cycle")
	}
}

func TestDOT(t *testing.T) {
	g := attack.New(parse.MustQuery("R(x | y), !S(y | x)"))
	dot := g.DOT()
	for _, frag := range []string{
		"digraph attack",
		`"R" [label="R(x | y)", shape=ellipse, style=solid];`,
		`"S" [label="¬S(y | x)", shape=box, style=dashed];`,
		`"R" -> "S" [color=red, penwidth=2];`,
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT lacks %q:\n%s", frag, dot)
		}
	}
}
