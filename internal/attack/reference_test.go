package attack_test

import (
	"testing"

	"cqa/internal/attack"
	"cqa/internal/fd"
	"cqa/internal/schema"
)

// bruteAttacksVar decides F ⇝ w literally from the paper's definition: it
// searches for a witness sequence (u₀,…,u_ℓ) with u₀ ∈ vars(F), u_ℓ = w,
// every uᵢ outside F^{⊕,q}, and consecutive variables co-occurring in a
// non-negated atom — enumerating sequences without repeated variables
// (a witness with a repeat can always be shortened).
func bruteAttacksVar(q schema.Query, fRel, w string) bool {
	f, ok := q.AtomByRel(fRel)
	if !ok {
		return false
	}
	var rest []schema.Atom
	for _, p := range q.Positive() {
		if p.Rel != fRel {
			rest = append(rest, p)
		}
	}
	oplus := fd.Closure(fd.FromAtoms(rest), f.KeyVars())
	if oplus.Has(w) {
		return false
	}
	cooccur := func(a, b string) bool {
		for _, p := range q.Positive() {
			vars := p.Vars()
			if vars.Has(a) && vars.Has(b) {
				return true
			}
		}
		return false
	}
	allVars := q.Vars().Sorted()
	var extend func(seq []string, used schema.VarSet) bool
	extend = func(seq []string, used schema.VarSet) bool {
		last := seq[len(seq)-1]
		if last == w {
			return true
		}
		for _, v := range allVars {
			if used.Has(v) || oplus.Has(v) || !cooccur(last, v) {
				continue
			}
			used.Add(v)
			if extend(append(seq, v), used) {
				return true
			}
			delete(used, v)
		}
		return false
	}
	for u := range f.Vars() {
		if oplus.Has(u) {
			continue
		}
		if extend([]string{u}, schema.NewVarSet(u)) {
			return true
		}
	}
	return false
}

// The BFS-based attack computation agrees with the literal witness-
// enumeration reference on every (atom, variable) pair of a corpus of
// random queries — both negation-free and with negated atoms.
func TestAttackAgainstBruteForce(t *testing.T) {
	for _, q := range randomQueries(2024, 150) {
		g := attack.New(q)
		vars := q.Vars().Sorted()
		for _, rel := range g.Atoms() {
			for _, w := range vars {
				got := g.AttacksVar(rel, w)
				want := bruteAttacksVar(q, rel, w)
				if got != want {
					t.Fatalf("%s: %s ⇝ %s: BFS = %v, brute = %v", q, rel, w, got, want)
				}
			}
		}
	}
}

// The atom-level edges agree with the definition F → G ⟺ F ⇝ y for some
// y ∈ key(G), computed through the brute-force variable relation.
func TestEdgesAgainstBruteForce(t *testing.T) {
	for _, q := range randomQueries(2025, 80) {
		g := attack.New(q)
		for _, from := range g.Atoms() {
			for _, to := range g.Atoms() {
				if from == to {
					continue
				}
				toAtom, _ := q.AtomByRel(to)
				want := false
				for y := range toAtom.KeyVars() {
					if bruteAttacksVar(q, from, y) {
						want = true
						break
					}
				}
				if got := g.Attacks(from, to); got != want {
					t.Fatalf("%s: edge %s → %s: BFS = %v, brute = %v", q, from, to, got, want)
				}
			}
		}
	}
}
