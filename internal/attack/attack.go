// Package attack implements the attack graph of Section 4: the closure
// sets F^{⊕,q}, attacks between variables F|u ⇝ w with explicit witness
// sequences, attacks between atoms, acyclicity testing, and the search for
// 2-cycles that drives the hardness side of Theorem 4.3.
package attack

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/fd"
	"cqa/internal/schema"
)

// Graph is the attack graph of a query: vertices are the atoms of
// q⁺ ∪ q⁻ (identified by relation name, which is unique by
// self-join-freeness), and there is an edge F → G when F attacks G.
type Graph struct {
	q schema.Query
	// order lists relation names in query order.
	order []string
	// atoms maps relation name to its atom.
	atoms map[string]schema.Atom
	// negated marks relation names occurring under negation.
	negated map[string]bool
	// oplus maps relation name F to F^{⊕,q}.
	oplus map[string]schema.VarSet
	// attacked maps relation name F to the set of variables F attacks.
	attacked map[string]schema.VarSet
	// edges maps F to the set of G it attacks.
	edges map[string]map[string]bool
}

// New computes the attack graph of q. The query should be validated first;
// New panics on duplicate relation names.
func New(q schema.Query) *Graph {
	g := &Graph{
		q:        q,
		atoms:    make(map[string]schema.Atom),
		negated:  make(map[string]bool),
		oplus:    make(map[string]schema.VarSet),
		attacked: make(map[string]schema.VarSet),
		edges:    make(map[string]map[string]bool),
	}
	for _, l := range q.Lits {
		if _, dup := g.atoms[l.Atom.Rel]; dup {
			panic(fmt.Sprintf("attack: duplicate relation %s (query not self-join-free)", l.Atom.Rel))
		}
		g.order = append(g.order, l.Atom.Rel)
		g.atoms[l.Atom.Rel] = l.Atom
		g.negated[l.Atom.Rel] = l.Neg
	}

	positive := q.Positive()
	for _, rel := range g.order {
		f := g.atoms[rel]
		// K(q⁺ \ {F}): the dependencies of the non-negated atoms other
		// than F. When F is negated, q⁺ \ {F} = q⁺.
		var rest []schema.Atom
		for _, p := range positive {
			if p.Rel != rel {
				rest = append(rest, p)
			}
		}
		g.oplus[rel] = fd.Closure(fd.FromAtoms(rest), f.KeyVars())
		g.attacked[rel] = g.attackedVars(f, g.oplus[rel])
	}

	for _, from := range g.order {
		g.edges[from] = make(map[string]bool)
		for _, to := range g.order {
			if from == to {
				continue
			}
			// F attacks G when F ⇝ y for some y ∈ key(G).
			if !g.attacked[from].Intersect(g.atoms[to].KeyVars()).Empty() {
				g.edges[from][to] = true
			}
		}
	}
	return g
}

// attackedVars computes {w | F ⇝ w}: the variables reachable from
// vars(F) \ F^{⊕,q} in the co-occurrence graph of q⁺, using only variables
// outside F^{⊕,q}.
func (g *Graph) attackedVars(f schema.Atom, oplus schema.VarSet) schema.VarSet {
	allowed := func(v string) bool { return !oplus.Has(v) }
	reached := make(schema.VarSet)
	var queue []string
	for v := range f.Vars() {
		if allowed(v) && !reached[v] {
			reached[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range g.q.Positive() {
			vars := p.Vars()
			if !vars.Has(v) {
				continue
			}
			for w := range vars {
				if allowed(w) && !reached[w] {
					reached[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return reached
}

// Query returns the query the graph was built from.
func (g *Graph) Query() schema.Query { return g.q }

// Atoms returns the relation names in query order.
func (g *Graph) Atoms() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Oplus returns F^{⊕,q} for the atom with the given relation name.
func (g *Graph) Oplus(rel string) schema.VarSet { return g.oplus[rel].Copy() }

// AttackedVars returns the set {w ∈ vars(q) | F ⇝ w}.
func (g *Graph) AttackedVars(rel string) schema.VarSet { return g.attacked[rel].Copy() }

// AttacksVar reports F ⇝ w.
func (g *Graph) AttacksVar(rel, w string) bool { return g.attacked[rel].Has(w) }

// Attacks reports whether the edge F → G is present.
func (g *Graph) Attacks(from, to string) bool { return g.edges[from][to] }

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() [][2]string {
	var out [][2]string
	for _, from := range g.order {
		for _, to := range g.order {
			if g.edges[from][to] {
				out = append(out, [2]string{from, to})
			}
		}
	}
	return out
}

// InDegree returns the number of atoms attacking the given atom.
func (g *Graph) InDegree(rel string) int {
	n := 0
	for _, from := range g.order {
		if g.edges[from][rel] {
			n++
		}
	}
	return n
}

// Unattacked returns the relation names with in-degree 0, in query order.
func (g *Graph) Unattacked() []string {
	var out []string
	for _, rel := range g.order {
		if g.InDegree(rel) == 0 {
			out = append(out, rel)
		}
	}
	return out
}

// UnattackedVars returns the variables x ∈ vars(q) such that no atom
// attacks x. By Corollary 6.9 and Proposition 7.2 these are exactly the
// reifiable variables when negation is weakly-guarded.
func (g *Graph) UnattackedVars() schema.VarSet {
	out := g.q.Vars()
	for _, rel := range g.order {
		out = out.Minus(g.attacked[rel])
	}
	return out
}

// IsAcyclic reports whether the attack graph has no directed cycle.
func (g *Graph) IsAcyclic() bool { return g.FindCycle() == nil }

// FindCycle returns a directed cycle as a list of relation names
// (v₀ → v₁ → … → v₀, the closing vertex not repeated), or nil when the
// graph is acyclic.
func (g *Graph) FindCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	parent := make(map[string]string)
	var cycle []string
	var dfs func(v string) bool
	dfs = func(v string) bool {
		color[v] = gray
		for _, w := range g.order {
			if !g.edges[v][w] {
				continue
			}
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case gray:
				// Found a cycle w → … → v → w.
				cycle = []string{w}
				for x := v; x != w; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse to get w, …, v in edge order.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	for _, v := range g.order {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// TwoCycle returns a pair (F, G) with F → G → F, preferring the pair that
// contains the fewest negated atoms (so the strongest hardness lemma
// applies first: Lemma 5.5 for zero, 5.6 for one, 5.7 for two). It returns
// ok=false when no 2-cycle exists. By Lemma 4.9, a cyclic attack graph of
// a weakly-guarded query always has a 2-cycle.
func (g *Graph) TwoCycle() (f, gg string, ok bool) {
	best := -1
	for _, a := range g.order {
		for _, b := range g.order {
			if a >= b || !g.edges[a][b] || !g.edges[b][a] {
				continue
			}
			n := 0
			if g.negated[a] {
				n++
			}
			if g.negated[b] {
				n++
			}
			if best == -1 || n < best {
				f, gg, best = a, b, n
			}
		}
	}
	return f, gg, best >= 0
}

// NegatedInPair returns how many of the two relation names occur negated
// in the query.
func (g *Graph) NegatedInPair(a, b string) int {
	n := 0
	if g.negated[a] {
		n++
	}
	if g.negated[b] {
		n++
	}
	return n
}

// Witness returns a witness sequence (u₀, …, u_ℓ) for F|u ⇝ w, or nil if
// F|u ̸⇝ w. The sequence starts at u ∈ vars(F) and ends at w, every
// element avoids F^{⊕,q}, and consecutive elements co-occur in a
// non-negated atom.
func (g *Graph) Witness(rel, u, w string) []string {
	f, ok := g.atoms[rel]
	if !ok || !f.Vars().Has(u) {
		return nil
	}
	oplus := g.oplus[rel]
	if oplus.Has(u) || oplus.Has(w) {
		return nil
	}
	if u == w {
		return []string{u}
	}
	parent := map[string]string{u: u}
	queue := []string{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range g.q.Positive() {
			vars := p.Vars()
			if !vars.Has(v) {
				continue
			}
			for x := range vars {
				if oplus.Has(x) {
					continue
				}
				if _, seen := parent[x]; seen {
					continue
				}
				parent[x] = v
				if x == w {
					var path []string
					for y := w; ; y = parent[y] {
						path = append(path, y)
						if y == u {
							break
						}
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				queue = append(queue, x)
			}
		}
	}
	return nil
}

// ReachFrom returns {w | F|u ⇝ w}: the variables attacked by F starting
// from the particular variable u ∈ vars(F). It is empty when u ∉ vars(F)
// or u ∈ F^{⊕,q}.
func (g *Graph) ReachFrom(rel, u string) schema.VarSet {
	out := make(schema.VarSet)
	f, ok := g.atoms[rel]
	if !ok || !f.Vars().Has(u) {
		return out
	}
	oplus := g.oplus[rel]
	if oplus.Has(u) {
		return out
	}
	out[u] = true
	queue := []string{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range g.q.Positive() {
			vars := p.Vars()
			if !vars.Has(v) {
				continue
			}
			for w := range vars {
				if !oplus.Has(w) && !out[w] {
					out[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return out
}

// AttackVarWitness returns a variable u ∈ vars(F) and a witness for
// F|u ⇝ w, or ok=false when F ̸⇝ w.
func (g *Graph) AttackVarWitness(rel, w string) (u string, witness []string, ok bool) {
	if !g.attacked[rel].Has(w) {
		return "", nil, false
	}
	f := g.atoms[rel]
	for _, cand := range f.Vars().Sorted() {
		if wit := g.Witness(rel, cand, w); wit != nil {
			return cand, wit, true
		}
	}
	return "", nil, false
}

// String renders the graph as one line per atom: F -> {G, H}.
func (g *Graph) String() string {
	var b strings.Builder
	for _, from := range g.order {
		var tos []string
		for to := range g.edges[from] {
			if g.edges[from][to] {
				tos = append(tos, to)
			}
		}
		sort.Strings(tos)
		fmt.Fprintf(&b, "%s -> {%s}\n", from, strings.Join(tos, ", "))
	}
	return b.String()
}
