package attack

import (
	"fmt"
	"strings"
)

// DOT renders the attack graph in Graphviz DOT format. Negated atoms are
// drawn as dashed boxes, positive atoms as solid ellipses; edges in an
// attack 2-cycle are highlighted.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph attack {\n")
	b.WriteString("  rankdir=LR;\n")
	for _, rel := range g.order {
		atom := g.atoms[rel]
		shape := "ellipse"
		style := "solid"
		label := atom.String()
		if g.negated[rel] {
			shape = "box"
			style = "dashed"
			label = "¬" + label
		}
		fmt.Fprintf(&b, "  %q [label=%q, shape=%s, style=%s];\n", rel, label, shape, style)
	}
	for _, from := range g.order {
		for _, to := range g.order {
			if !g.edges[from][to] {
				continue
			}
			attrs := ""
			if g.edges[to][from] {
				attrs = " [color=red, penwidth=2]"
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", from, to, attrs)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
