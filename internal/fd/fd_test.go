package fd_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqa/internal/fd"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

func TestClosureBasic(t *testing.T) {
	fds := []fd.FD{
		{From: schema.NewVarSet("x"), To: schema.NewVarSet("x", "y")},
		{From: schema.NewVarSet("y"), To: schema.NewVarSet("y", "z")},
	}
	got := fd.Closure(fds, schema.NewVarSet("x"))
	if !got.Equal(schema.NewVarSet("x", "y", "z")) {
		t.Errorf("closure = %v", got)
	}
}

func TestClosureDoesNotFireWithoutPremise(t *testing.T) {
	fds := []fd.FD{{From: schema.NewVarSet("x", "y"), To: schema.NewVarSet("z")}}
	got := fd.Closure(fds, schema.NewVarSet("x"))
	if !got.Equal(schema.NewVarSet("x")) {
		t.Errorf("closure = %v, want {x}", got)
	}
}

func TestClosureEmptyKey(t *testing.T) {
	// An FD with an empty left side always fires (ground keys).
	fds := []fd.FD{{From: schema.NewVarSet(), To: schema.NewVarSet("y")}}
	got := fd.Closure(fds, schema.NewVarSet())
	if !got.Has("y") {
		t.Errorf("closure = %v, want {y}", got)
	}
}

func TestFromAtoms(t *testing.T) {
	q := parse.MustQuery("R(x | y), S(y, z | w)")
	fds := fd.FromAtoms(q.Positive())
	if len(fds) != 2 {
		t.Fatalf("fds = %v", fds)
	}
	if !fds[0].From.Equal(schema.NewVarSet("x")) || !fds[0].To.Equal(schema.NewVarSet("x", "y")) {
		t.Errorf("fd[0] = %v", fds[0])
	}
	if !fds[1].From.Equal(schema.NewVarSet("y", "z")) || !fds[1].To.Equal(schema.NewVarSet("y", "z", "w")) {
		t.Errorf("fd[1] = %v", fds[1])
	}
}

func TestImplies(t *testing.T) {
	q := parse.MustQuery("R(x | y), S(y | z)")
	fds := fd.FromAtoms(q.Positive())
	if !fd.Implies(fds, schema.NewVarSet("x"), "z") {
		t.Error("x should determine z via y")
	}
	if fd.Implies(fds, schema.NewVarSet("y"), "x") {
		t.Error("y should not determine x")
	}
}

// randFDs builds random dependency sets over a small variable pool.
func randFDs(seed int64) ([]fd.FD, schema.VarSet) {
	rng := rand.New(rand.NewSource(seed))
	pool := []string{"a", "b", "c", "d", "e"}
	pick := func() schema.VarSet {
		s := make(schema.VarSet)
		for _, v := range pool {
			if rng.Intn(3) == 0 {
				s.Add(v)
			}
		}
		return s
	}
	n := rng.Intn(5)
	fds := make([]fd.FD, n)
	for i := range fds {
		fds[i] = fd.FD{From: pick(), To: pick()}
	}
	return fds, pick()
}

// Closure is extensive, monotone, and idempotent.
func TestClosureLaws(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		fds, start := randFDs(seed)
		cl := fd.Closure(fds, start)
		if !start.SubsetOf(cl) {
			return false // extensive
		}
		if !fd.Closure(fds, cl).Equal(cl) {
			return false // idempotent
		}
		bigger := start.Copy().Add("a")
		if !cl.SubsetOf(fd.Closure(fds, bigger)) {
			return false // monotone
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Closure must not mutate its input.
func TestClosurePure(t *testing.T) {
	fds := []fd.FD{{From: schema.NewVarSet("x"), To: schema.NewVarSet("y")}}
	start := schema.NewVarSet("x")
	_ = fd.Closure(fds, start)
	if !start.Equal(schema.NewVarSet("x")) {
		t.Error("Closure mutated the start set")
	}
}
