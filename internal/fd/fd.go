// Package fd implements functional-dependency reasoning over variable
// sets: the dependency set K(p) = {key(F) → vars(F) | F ∈ p} of
// Section 4.1 and the attribute-set closure used to compute F^{⊕,q}.
package fd

import "cqa/internal/schema"

// FD is a functional dependency From → To between sets of variables.
type FD struct {
	From schema.VarSet
	To   schema.VarSet
}

// FromAtoms builds K(p) for a set p of (non-negated) atoms:
// {key(F) → vars(F) | F ∈ p}.
func FromAtoms(atoms []schema.Atom) []FD {
	out := make([]FD, 0, len(atoms))
	for _, a := range atoms {
		out = append(out, FD{From: a.KeyVars(), To: a.Vars()})
	}
	return out
}

// Closure returns the closure of start under the dependencies: the least
// superset S of start such that From ⊆ S implies To ⊆ S for every FD. The
// input set is not modified.
func Closure(fds []FD, start schema.VarSet) schema.VarSet {
	closed := start.Copy()
	for changed := true; changed; {
		changed = false
		for _, d := range fds {
			if d.From.SubsetOf(closed) && !d.To.SubsetOf(closed) {
				closed.AddAll(d.To)
				changed = true
			}
		}
	}
	return closed
}

// Implies reports whether the dependencies entail From → x, i.e. whether x
// is in the closure of From.
func Implies(fds []FD, from schema.VarSet, x string) bool {
	return Closure(fds, from).Has(x)
}
