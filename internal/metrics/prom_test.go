package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLabel(t *testing.T) {
	if got := Label("requests_total"); got != "requests_total" {
		t.Errorf("no labels: %q", got)
	}
	got := Label("shard_rpc_total", "shard", "2", "outcome", "ok")
	if got != `shard_rpc_total{shard="2",outcome="ok"}` {
		t.Errorf("Label = %q", got)
	}
	base, labels := splitSeries(got)
	if base != "shard_rpc_total" || labels != `shard="2",outcome="ok"` {
		t.Errorf("splitSeries = %q / %q", base, labels)
	}
	// Values with quotes, backslashes, and newlines must come back out
	// parseable.
	tricky := Label("m", "q", "a\"b\\c\nd")
	if want := `m{q="a\"b\\c\nd"}`; tricky != want {
		t.Errorf("escaped = %q, want %q", tricky, want)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Counter(Label("eval_total", "strategy", "compiled", "cache", "hit")).Add(3)
	r.Counter(Label("eval_total", "strategy", "tree-walk", "cache", "miss")).Inc()
	r.Gauge("requests_inflight").Set(2)
	r.Histogram("request_latency").Observe(5 * time.Millisecond)
	r.Histogram(Label("shard_rpc_latency", "shard", "0")).Observe(time.Millisecond)
	r.Histogram(Label("shard_rpc_latency", "shard", "1")).Observe(2 * time.Millisecond)
	r.SetFunc("engine_cache_hit_rate", func() any { return 0.75 })
	r.SetFunc("ignored_map", func() any { return map[string]int{"x": 1} })

	text := r.Prometheus()
	if err := LintPrometheus(text); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	exp, err := ParsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("requests_total"); !ok || v != 7 {
		t.Errorf("requests_total = %v %v", v, ok)
	}
	if v, ok := exp.Value("eval_total", "strategy", "compiled", "cache", "hit"); !ok || v != 3 {
		t.Errorf("labeled eval_total = %v %v", v, ok)
	}
	if exp.Types["eval_total"] != "counter" || exp.Types["request_latency_seconds"] != "histogram" {
		t.Errorf("types: %v", exp.Types)
	}
	if v, ok := exp.Value("request_latency_seconds_count"); !ok || v != 1 {
		t.Errorf("histogram count = %v %v", v, ok)
	}
	if v, ok := exp.Value("shard_rpc_latency_seconds_count", "shard", "1"); !ok || v != 1 {
		t.Errorf("labeled histogram count = %v %v", v, ok)
	}
	if v, ok := exp.Value("engine_cache_hit_rate"); !ok || v != 0.75 {
		t.Errorf("func gauge = %v %v", v, ok)
	}
	if got := exp.Find("ignored_map"); got != nil {
		t.Errorf("non-numeric func must be omitted: %v", got)
	}
	// One TYPE line per family, even with several labeled series.
	if n := strings.Count(text, "# TYPE eval_total "); n != 1 {
		t.Errorf("eval_total TYPE lines = %d\n%s", n, text)
	}
	// Buckets carry both the series labels and le.
	if !strings.Contains(text, `shard_rpc_latency_seconds_bucket{shard="0",le="+Inf"}`) {
		t.Errorf("missing labeled +Inf bucket:\n%s", text)
	}
}

func TestLintCatchesBadExpositions(t *testing.T) {
	cases := []struct {
		name string
		text string
		frag string
	}{
		{"sample before type", "x_total 1\n# TYPE x_total counter\n", "before TYPE"},
		{"duplicate series", "# TYPE a gauge\na{k=\"v\"} 1\na{k=\"v\"} 2\n", "duplicate series"},
		{"bad name", "# TYPE 9x counter\n9x 1\n", "invalid"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n", "+Inf"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n", "_count"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n", "_sum"},
		{"unknown type", "# TYPE x flavor\nx 1\n", "unknown type"},
		{"bad value", "# TYPE x gauge\nx pancake\n", "bad value"},
	}
	for _, c := range cases {
		err := LintPrometheus(c.text)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want fragment %q", c.name, err, c.frag)
		}
	}
	good := "# TYPE ok_total counter\nok_total 3\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.9\nh_count 2\n"
	if err := LintPrometheus(good); err != nil {
		t.Errorf("clean exposition rejected: %v", err)
	}
}

// TestQuantileMonotoneUnderRace hammers one histogram from 32 goroutines
// while snapshotting concurrently, asserting the ordering invariants the
// fixed Snapshot guarantees: p50 ≤ p95 ≤ p99 and Count == Σ buckets,
// on every single racing snapshot. Run under -race.
func TestQuantileMonotoneUnderRace(t *testing.T) {
	h := NewHistogram(nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * 100 * time.Microsecond
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(d + time.Duration(i%64)*time.Millisecond)
			}
		}(g)
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		if s.P50 > s.P95 || s.P95 > s.P99 {
			close(stop)
			wg.Wait()
			t.Fatalf("quantiles not monotone under race: p50=%s p95=%s p99=%s", s.P50, s.P95, s.P99)
		}
		var sum uint64
		for _, b := range s.Buckets {
			sum += b.Count
		}
		if s.Count != sum {
			close(stop)
			wg.Wait()
			t.Fatalf("Count %d != bucket sum %d", s.Count, sum)
		}
		if s.Count > 0 && s.P99 > 10*time.Minute {
			close(stop)
			wg.Wait()
			t.Fatalf("absurd quantile under race: p99=%s (min/max race leak)", s.P99)
		}
	}
	close(stop)
	wg.Wait()
}
