package metrics

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family followed by its
// samples. Registry names built with Label are split back into family +
// label set, so `eval_total{strategy="compiled"}` and
// `eval_total{strategy="tree-walk"}` share one family. Histograms are
// exposed with a `_seconds` unit suffix as cumulative `_bucket` series
// (le in seconds) plus `_sum` and `_count`. Callback metrics (SetFunc)
// are exposed as gauges when they return a number and omitted otherwise
// (maps and strings only appear in /debug/vars).
func (r *Registry) Prometheus() string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()

	type series struct {
		labels string
		kind   byte
		c      *Counter
		g      *Gauge
		h      *Histogram
		f      func() any
	}
	fams := make(map[string][]series)
	for _, n := range names {
		r.mu.Lock()
		k := r.kind[n]
		c, g, h, f := r.ctrs[n], r.gauges[n], r.hists[n], r.extra[n]
		r.mu.Unlock()
		base, labels := splitSeries(n)
		if k == 'h' {
			base += "_seconds"
		}
		fams[base] = append(fams[base], series{labels: labels, kind: k, c: c, g: g, h: h, f: f})
	}
	famOrder := make([]string, 0, len(fams))
	for fam := range fams {
		famOrder = append(famOrder, fam)
	}
	sort.Strings(famOrder)

	var b strings.Builder
	for _, fam := range famOrder {
		ss := fams[fam]
		famType := promKind(ss[0].kind)
		b.WriteString("# TYPE ")
		b.WriteString(fam)
		b.WriteByte(' ')
		b.WriteString(famType)
		b.WriteByte('\n')
		for _, s := range ss {
			if promKind(s.kind) != famType {
				// A labeled series whose kind conflicts with its family
				// would make the exposition invalid; registration should
				// have prevented this, but never emit it.
				continue
			}
			switch s.kind {
			case 'c':
				writeSample(&b, fam, s.labels, strconv.FormatUint(s.c.Value(), 10))
			case 'g':
				writeSample(&b, fam, s.labels, strconv.FormatInt(s.g.Value(), 10))
			case 'f':
				if v, ok := toFloat(s.f()); ok {
					writeSample(&b, fam, s.labels, strconv.FormatFloat(v, 'g', -1, 64))
				}
			case 'h':
				snap := s.h.Snapshot()
				var cum uint64
				for _, bk := range snap.Buckets {
					cum += bk.Count
					le := "+Inf"
					if bk.UpperBound != 0 {
						le = formatSeconds(bk.UpperBound)
					}
					writeSample(&b, fam+"_bucket", joinLabels(s.labels, `le="`+le+`"`), strconv.FormatUint(cum, 10))
				}
				writeSample(&b, fam+"_sum", s.labels, strconv.FormatFloat(snap.Sum.Seconds(), 'g', -1, 64))
				writeSample(&b, fam+"_count", s.labels, strconv.FormatUint(snap.Count, 10))
			}
		}
	}
	return b.String()
}

// WritePrometheus writes the Prometheus exposition to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, r.Prometheus())
	return err
}

// promKind maps a registry kind byte to the Prometheus family type.
func promKind(k byte) string {
	switch k {
	case 'c':
		return "counter"
	case 'h':
		return "histogram"
	default: // 'g' and numeric 'f' callbacks
		return "gauge"
	}
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatSeconds renders a duration bound as a seconds float the way
// Prometheus le labels expect.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// toFloat converts the numeric types SetFunc callbacks return.
func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	default:
		return 0, false
	}
}
