package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("requests") != c {
		t.Error("Counter should return the same instance")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after Set = %d, want 7", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name with a different kind should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(nil)
	// 1000 observations uniform over (0, 100ms]: p50 ≈ 50ms, p99 ≈ 99ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %s/%s", s.Min, s.Max)
	}
	// Fixed power-of-two buckets bound the quantile error by the bucket
	// width; accept a factor-of-two band around the exact value.
	checks := []struct {
		name  string
		got   time.Duration
		exact time.Duration
	}{
		{"p50", s.P50, 50 * time.Millisecond},
		{"p95", s.P95, 95 * time.Millisecond},
		{"p99", s.P99, 99 * time.Millisecond},
	}
	for _, c := range checks {
		if c.got < c.exact/2 || c.got > 2*c.exact {
			t.Errorf("%s = %s, want within [%s, %s]", c.name, c.got, c.exact/2, 2*c.exact)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Errorf("percentiles not monotone: %s", s)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.String() != "count=0" {
		t.Errorf("empty snapshot = %+v", s)
	}
	// An observation beyond the last bound lands in the +Inf bucket and
	// percentiles clamp to the observed max.
	h.Observe(time.Minute)
	s = h.Snapshot()
	if s.P99 != time.Minute || s.Max != time.Minute {
		t.Errorf("overflow: p99=%s max=%s", s.P99, s.Max)
	}
	h.Observe(-time.Second) // negative durations clamp to zero
	if got := h.Snapshot().Min; got != 0 {
		t.Errorf("min after negative observe = %s, want 0", got)
	}
}

func TestRegistryJSONAndSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("inflight").Set(1)
	r.Histogram("latency").Observe(2 * time.Millisecond)
	r.SetFunc("hit_rate", func() any { return 0.75 })

	var parsed map[string]any
	if err := json.Unmarshal([]byte(r.String()), &parsed); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, r.String())
	}
	if parsed["reqs"] != float64(3) || parsed["hit_rate"] != 0.75 {
		t.Errorf("JSON values wrong: %v", parsed)
	}
	lat, ok := parsed["latency"].(map[string]any)
	if !ok || lat["count"] != float64(1) {
		t.Errorf("latency histogram wrong: %v", parsed["latency"])
	}

	sum := r.Summary()
	for _, frag := range []string{"reqs=3", "inflight=1", "hit_rate=0.75", "latency{count=1"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary lacks %q: %s", frag, sum)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
				if j%100 == 0 {
					_ = r.String()
					_ = r.Summary()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 16*500 {
		t.Errorf("counter = %d, want %d", got, 16*500)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 16*500 {
		t.Errorf("histogram count = %d, want %d", got, 16*500)
	}
}
