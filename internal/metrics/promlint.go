package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small parser and linter for the Prometheus text
// exposition format, used by the obs smoke tests and `cqaload -obs` to
// assert that what /metrics serves is actually scrapeable — without
// depending on the Prometheus client libraries.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for a label name ("" if absent).
func (s PromSample) Label(name string) string { return s.Labels[name] }

// PromExposition is a parsed /metrics payload.
type PromExposition struct {
	// Types maps family name → declared type (counter, gauge, histogram,
	// summary, untyped).
	Types map[string]string
	// Samples in document order.
	Samples []PromSample
}

// Value returns the value of the sample with the given name and exact
// label set (pass alternating key/value pairs), and whether it exists.
func (e *PromExposition) Value(name string, kv ...string) (float64, bool) {
	want := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		want[kv[i]] = kv[i+1]
	}
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Find returns every sample of the given name.
func (e *PromExposition) Find(name string) []PromSample {
	var out []PromSample
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// ParsePrometheus parses a text exposition. Unknown comment lines are
// skipped; malformed sample or TYPE lines are errors.
func ParsePrometheus(text string) (*PromExposition, error) {
	exp := &PromExposition{Types: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", ln+1, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %q", ln+1, typ, name)
				}
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				exp.Types[name] = typ
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	return exp, nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			if !validLabelName(key) {
				return s, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in %q", rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if _, dup := s.Labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q in %q", key, line)
			}
			s.Labels[key] = val.String()
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after %q in %q", s.Name, line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	return s, nil
}

// family maps a sample name to the family it belongs to, folding the
// histogram/summary suffixes onto their base when that base is declared.
func (e *PromExposition) family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := e.Types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// labelKey canonicalizes a label set (optionally dropping one label) for
// duplicate detection and bucket grouping.
func labelKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// LintPrometheus parses text and checks the structural invariants a real
// scraper relies on: every sample's family carries a TYPE declared
// before its first sample; no duplicate series; histogram buckets are
// cumulative and monotone, end in an le="+Inf" bucket, and agree with
// their _count; _sum is present. Returns nil if the exposition is clean.
func LintPrometheus(text string) error {
	exp, err := ParsePrometheus(text)
	if err != nil {
		return err
	}

	// TYPE-before-samples: re-scan document order.
	declared := make(map[string]bool)
	seen := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				if seen[f[2]] {
					return fmt.Errorf("TYPE for %q after its samples", f[2])
				}
				declared[f[2]] = true
			}
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		s, _ := parseSample(line)
		fam := exp.family(s.Name)
		if !declared[fam] {
			return fmt.Errorf("sample %q before TYPE for family %q", s.Name, fam)
		}
		seen[fam] = true
	}

	dup := make(map[string]bool)
	for _, s := range exp.Samples {
		key := s.Name + "|" + labelKey(s.Labels, "")
		if dup[key] {
			return fmt.Errorf("duplicate series %s{%s}", s.Name, labelKey(s.Labels, ""))
		}
		dup[key] = true
	}

	for fam, typ := range exp.Types {
		if typ != "histogram" {
			continue
		}
		type group struct {
			les  []float64
			cums []float64
		}
		groups := make(map[string]*group)
		for _, s := range exp.Find(fam + "_bucket") {
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s_bucket sample without le label", fam)
			}
			lef, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s_bucket: bad le %q", fam, le)
			}
			k := labelKey(s.Labels, "le")
			g := groups[k]
			if g == nil {
				g = &group{}
				groups[k] = g
			}
			g.les = append(g.les, lef)
			g.cums = append(g.cums, s.Value)
		}
		if len(groups) == 0 {
			return fmt.Errorf("histogram %s has no buckets", fam)
		}
		for k, g := range groups {
			idx := make([]int, len(g.les))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return g.les[idx[a]] < g.les[idx[b]] })
			prev := -1.0
			for _, i := range idx {
				if g.cums[i] < prev {
					return fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%g", fam, k, g.les[i])
				}
				prev = g.cums[i]
			}
			last := idx[len(idx)-1]
			if !math.IsInf(g.les[last], 1) {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", fam, k)
			}
			count, ok := findWithLabels(exp, fam+"_count", k)
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count", fam, k)
			}
			if count != g.cums[last] {
				return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", fam, k, count, g.cums[last])
			}
			if _, ok := findWithLabels(exp, fam+"_sum", k); !ok {
				return fmt.Errorf("histogram %s{%s}: missing _sum", fam, k)
			}
		}
	}
	return nil
}

// findWithLabels returns the sample of name whose canonical label key
// (le excluded) matches key.
func findWithLabels(exp *PromExposition, name, key string) (float64, bool) {
	for _, s := range exp.Find(name) {
		if labelKey(s.Labels, "le") == key {
			return s.Value, true
		}
	}
	return 0, false
}
