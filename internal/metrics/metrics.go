// Package metrics is a small stdlib-only instrumentation library for the
// serving daemon: atomic counters and gauges, fixed-bucket latency
// histograms with percentile snapshots, and a named registry that renders
// either as expvar-compatible JSON (the Registry implements expvar.Var)
// or as a one-line plain-text summary for GET /metrics.
//
// All types are safe for concurrent use. Recording on the hot path is a
// handful of atomic adds; snapshots and rendering pay the iteration cost.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Max raises the gauge to n if n is larger, atomically — for monotonic
// high-water marks (e.g. the latest store snapshot version) updated from
// concurrent writers.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram upper bounds used for request
// latencies: powers of two from 64µs to ~8.6s plus +Inf. Fixed buckets
// keep Observe to one binary search and two atomic adds.
var DefaultLatencyBuckets = func() []time.Duration {
	var b []time.Duration
	for d := 64 * time.Microsecond; d <= 8*time.Second; d *= 2 {
		b = append(b, d)
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram. The zero value is not
// usable; construct with NewHistogram.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Int64    // nanoseconds; durations this large never overflow in practice
	mu     sync.Mutex      // guards min/max only
	min    time.Duration
	max    time.Duration
}

// NewHistogram builds a histogram with the given sorted upper bounds;
// nil selects DefaultLatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	bounds = append([]time.Duration(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1), min: math.MaxInt64}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.mu.Lock()
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count         uint64
	Sum           time.Duration
	Min, Max      time.Duration
	Mean          time.Duration
	P50, P95, P99 time.Duration
	// Buckets holds cumulative counts per upper bound, ending with the
	// +Inf bucket (whose bound is reported as 0).
	Buckets []BucketCount
}

// BucketCount is one histogram bucket: Count observations ≤ UpperBound.
type BucketCount struct {
	UpperBound time.Duration // 0 means +Inf (the overflow bucket)
	Count      uint64        // non-cumulative count in this bucket
}

// Snapshot returns a consistent-enough view (counters are read
// individually, so a snapshot under concurrent Observe is approximate),
// with two hard guarantees that hold even while observations race in:
// Count equals the sum of the bucket counts actually snapshotted, and
// P50 ≤ P95 ≤ P99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]BucketCount, len(h.counts))}
	var total uint64
	for i := range h.counts {
		var ub time.Duration
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		c := h.counts[i].Load()
		s.Buckets[i] = BucketCount{UpperBound: ub, Count: c}
		total += c
	}
	// Count must come from the snapshotted buckets, not a separate total
	// counter: under concurrent Observe the two reads disagree, and a
	// Count above the bucket sum pushes quantile ranks past every bucket.
	s.Count = total
	s.Sum = time.Duration(h.sum.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
		h.mu.Lock()
		s.Min, s.Max = h.min, h.max
		h.mu.Unlock()
		if s.Min > s.Max {
			// An Observe raced between its bucket add and its min/max
			// update; don't clamp quantiles against a sentinel min.
			s.Min = 0
		}
	}
	s.P50 = h.quantile(s, 0.50)
	s.P95 = h.quantile(s, 0.95)
	s.P99 = h.quantile(s, 0.99)
	if s.P95 < s.P50 {
		s.P95 = s.P50
	}
	if s.P99 < s.P95 {
		s.P99 = s.P95
	}
	return s
}

// quantile estimates the q-quantile by linear interpolation inside the
// bucket that holds the target rank. Values beyond the last finite bound
// are clamped to the observed max.
func (h *Histogram) quantile(s HistogramSnapshot, q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, b := range s.Buckets {
		next := cum + float64(b.Count)
		if rank <= next && b.Count > 0 {
			lo := time.Duration(0)
			if i > 0 {
				lo = s.Buckets[i-1].UpperBound
			}
			hi := b.UpperBound
			if hi == 0 { // +Inf bucket: clamp to the observed max
				return s.Max
			}
			frac := (rank - cum) / float64(b.Count)
			est := lo + time.Duration(frac*float64(hi-lo))
			if est > s.Max {
				est = s.Max
			}
			if est < s.Min {
				est = s.Min
			}
			return est
		}
		cum = next
	}
	return s.Max
}

// String renders the snapshot compactly: count, mean, and percentiles.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.P99), round(s.Max))
}

// round trims sub-microsecond noise from printed durations.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// Registry is a named collection of counters, gauges, and histograms.
// Get-or-create accessors make call sites one-liners; iteration is in
// name order so rendered output is stable.
type Registry struct {
	mu     sync.Mutex
	order  []string
	kind   map[string]byte // 'c', 'g', 'h'
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	// extra are callback-backed values included in renderings (e.g. the
	// engine cache hit rate, computed from engine.Stats at read time).
	extra map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kind:   make(map[string]byte),
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		extra:  make(map[string]func() any),
	}
}

func (r *Registry) register(name string, k byte) {
	if prev, ok := r.kind[name]; ok {
		if prev != k {
			panic(fmt.Sprintf("metrics: %q registered as %c and %c", name, prev, k))
		}
		return
	}
	r.kind[name] = k
	r.order = append(r.order, name)
	sort.Strings(r.order)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, 'c')
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, 'g')
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram (DefaultLatencyBuckets), creating
// it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, 'h')
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// SetFunc registers a callback-backed value evaluated at render time.
// Callbacks must be safe for concurrent use and should return a number,
// string, or JSON-marshalable map.
func (r *Registry) SetFunc(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, 'f')
	r.extra[name] = fn
}

// Values returns every metric as a flat name → value map: counters and
// gauges as numbers, histograms as nested maps with count/mean/p50/p95/
// p99/max in nanoseconds, funcs as whatever they return.
func (r *Registry) Values() map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for _, n := range names {
		r.mu.Lock()
		k := r.kind[n]
		c, g, h, f := r.ctrs[n], r.gauges[n], r.hists[n], r.extra[n]
		r.mu.Unlock()
		switch k {
		case 'c':
			out[n] = c.Value()
		case 'g':
			out[n] = g.Value()
		case 'h':
			s := h.Snapshot()
			out[n] = map[string]any{
				"count":   s.Count,
				"mean_ns": int64(s.Mean),
				"p50_ns":  int64(s.P50),
				"p95_ns":  int64(s.P95),
				"p99_ns":  int64(s.P99),
				"max_ns":  int64(s.Max),
			}
		case 'f':
			out[n] = f()
		}
	}
	return out
}

// String renders the registry as JSON, satisfying expvar.Var so a
// Registry can be expvar.Publish'ed and served at /debug/vars.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Values())
	if err != nil {
		// Only a misbehaving SetFunc callback can get here.
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

// Label formats a metric name with label pairs in Prometheus series
// form: Label("shard_rpc_total", "shard", "2", "outcome", "ok") yields
// `shard_rpc_total{shard="2",outcome="ok"}`. The result is used directly
// as a registry name — the registry get-or-create path is the series
// cache — and the Prometheus renderer splits it back apart so all series
// of one family share a base name and a single TYPE line. kv must be
// alternating key/value; values are escaped, keys must already be valid
// label names.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitSeries splits a registry name built by Label back into its base
// family name and the raw label text (without braces). Plain names
// return labels == "".
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// Summary renders a one-line plain-text summary: name=value pairs in name
// order, histograms inlined as their snapshot string.
func (r *Registry) Summary() string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	parts := make([]string, 0, len(names))
	for _, n := range names {
		r.mu.Lock()
		k := r.kind[n]
		c, g, h, f := r.ctrs[n], r.gauges[n], r.hists[n], r.extra[n]
		r.mu.Unlock()
		switch k {
		case 'c':
			parts = append(parts, fmt.Sprintf("%s=%d", n, c.Value()))
		case 'g':
			parts = append(parts, fmt.Sprintf("%s=%d", n, g.Value()))
		case 'h':
			parts = append(parts, fmt.Sprintf("%s{%s}", n, h.Snapshot()))
		case 'f':
			parts = append(parts, fmt.Sprintf("%s=%v", n, f()))
		}
	}
	return strings.Join(parts, " ")
}
