package store_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/store"
)

func TestMemStoreVersioningAndSnapshots(t *testing.T) {
	st := store.NewMem("t", nil)
	if v := st.Version(); v != 0 {
		t.Fatalf("fresh store version = %d, want 0", v)
	}
	if _, err := st.Declare("R", 2, 1); err != nil {
		t.Fatal(err)
	}
	s1 := st.Snapshot()
	ch, err := st.Insert(db.F("R", "a", "1"), db.F("R", "a", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Version != 2 || ch.Applied != 2 {
		t.Fatalf("insert change = %+v, want version 2, applied 2", ch)
	}
	if len(ch.Rels) != 1 || ch.Rels[0] != "R" {
		t.Fatalf("touched rels = %v, want [R]", ch.Rels)
	}
	if len(ch.Blocks) != 2 || ch.Blocks[0].Rel != "R" || ch.Blocks[0].Key[0] != "a" {
		t.Fatalf("touched blocks = %+v", ch.Blocks)
	}
	// The old snapshot is immutable: it still sees zero facts.
	if s1.DB.Size() != 0 {
		t.Fatalf("old snapshot mutated: size = %d", s1.DB.Size())
	}
	s2 := st.Snapshot()
	if s2.Version != 2 || s2.DB.Size() != 2 {
		t.Fatalf("snapshot = v%d size %d, want v2 size 2", s2.Version, s2.DB.Size())
	}
	if s2.DB.IsConsistent() {
		t.Fatal("two key-equal facts should be inconsistent")
	}

	// Deletes shrink blocks; version moves again.
	if _, err := st.Delete(db.F("R", "a", "1")); err != nil {
		t.Fatal(err)
	}
	s3 := st.Snapshot()
	if s3.Version != 3 || s3.DB.Size() != 1 || !s3.DB.IsConsistent() {
		t.Fatalf("after delete: v%d size %d consistent %v", s3.Version, s3.DB.Size(), s3.DB.IsConsistent())
	}
	// s2 still sees both facts.
	if s2.DB.Size() != 2 {
		t.Fatal("published snapshot changed after a later delete")
	}
}

func TestNoOpWritesDoNotBumpVersion(t *testing.T) {
	st := store.NewMem("t", nil)
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"))
	v := st.Version()
	for _, ch := range []func() (store.Change, error){
		func() (store.Change, error) { return st.Insert(db.F("R", "a", "1")) }, // duplicate
		func() (store.Change, error) { return st.Delete(db.F("R", "z", "9")) }, // absent
		func() (store.Change, error) { return st.Declare("R", 2, 1) },          // re-declare
	} {
		c, err := ch()
		if err != nil {
			t.Fatal(err)
		}
		if c.Applied != 0 || c.Version != v {
			t.Fatalf("no-op write changed state: %+v (version was %d)", c, v)
		}
	}
	if st.Version() != v {
		t.Fatalf("version drifted to %d", st.Version())
	}
}

func TestApplyErrorsLeaveStoreUntouched(t *testing.T) {
	st := store.NewMem("t", nil)
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"))
	v := st.Version()
	if _, err := st.Insert(db.F("R", "b", "2"), db.F("R", "only-one-arg")); err == nil {
		t.Fatal("arity mismatch should fail the batch")
	}
	if _, err := st.Declare("R", 3, 1); err == nil {
		t.Fatal("signature clash should fail")
	}
	s := st.Snapshot()
	if s.Version != v || s.DB.Size() != 1 || s.DB.Has(db.F("R", "b", "2")) {
		t.Fatalf("failed batch leaked state: v%d size %d", s.Version, s.DB.Size())
	}
}

func TestOnApplyOrderingAndContent(t *testing.T) {
	st := store.NewMem("t", nil)
	var got []store.Change
	st.SetOnApply(func(c store.Change) { got = append(got, c) })
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"))
	st.Insert(db.F("R", "a", "1")) // no-op: no callback
	st.Delete(db.F("R", "a", "1"))
	if len(got) != 3 {
		t.Fatalf("callbacks = %d, want 3 (no-ops silent)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Version != got[i-1].Version+1 {
			t.Fatalf("callback versions out of order: %+v", got)
		}
	}
	if !reflect.DeepEqual(got[2].Rels, []string{"R"}) {
		t.Fatalf("delete change rels = %v", got[2].Rels)
	}
}

func TestApplyDBAndDeleteDB(t *testing.T) {
	st := store.NewMem("t", nil)
	src := parse.MustDatabase("R(a | 1)\nR(a | 2)\nS(x | y)")
	ch, err := st.ApplyDB(src)
	if err != nil {
		t.Fatal(err)
	}
	// 2 declares + 3 inserts, one version bump.
	if ch.Applied != 5 || ch.Version != 1 {
		t.Fatalf("ApplyDB change = %+v", ch)
	}
	if !reflect.DeepEqual(ch.Rels, []string{"R", "S"}) {
		t.Fatalf("ApplyDB rels = %v", ch.Rels)
	}
	del := parse.MustDatabase("R(a | 1)")
	if _, err := st.DeleteDB(del); err != nil {
		t.Fatal(err)
	}
	s := st.Snapshot()
	if s.DB.Size() != 2 || s.DB.Has(db.F("R", "a", "1")) {
		t.Fatalf("DeleteDB left %d facts", s.DB.Size())
	}
}

func TestDurableRoundTripAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opt := store.Options{Dir: dir, CheckpointEvery: 4}
	st, err := store.Open("people", opt)
	if err != nil {
		t.Fatal(err)
	}
	st.Declare("R", 2, 1)
	for _, f := range []db.Fact{
		db.F("R", "a", "1"), db.F("R", "a", "2"), db.F("R", "b", "1"),
	} {
		if _, err := st.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	// 4 records (1 declare + 3 inserts) ≥ CheckpointEvery: auto-checkpoint.
	stats := st.Stats()
	if stats.Checkpoints == 0 || stats.SegmentRecords != 0 {
		t.Fatalf("expected auto-checkpoint: %+v", stats)
	}
	st.Delete(db.F("R", "a", "2"))
	want := st.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := store.Open("people", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Snapshot()
	if got.Version != want.Version {
		t.Fatalf("recovered version = %d, want %d", got.Version, want.Version)
	}
	if got.DB.String() != want.DB.String() {
		t.Fatalf("recovered db:\n%s\nwant:\n%s", got.DB.String(), want.DB.String())
	}
	// Writes continue from the recovered version.
	ch, err := re.Insert(db.F("R", "c", "9"))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Version != want.Version+1 {
		t.Fatalf("post-recovery version = %d, want %d", ch.Version, want.Version+1)
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	st := store.NewMem("t", nil)
	snap := st.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(db.F("R", "a", "1")); err == nil {
		t.Fatal("write after Close should fail")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	_ = snap.DB.Size() // snapshots outlive Close
}

func TestSetCreateAdoptAndReopen(t *testing.T) {
	dir := t.TempDir()
	set, err := store.OpenSet(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if names := set.Names(); len(names) != 0 {
		t.Fatalf("fresh set has members: %v", names)
	}
	st, err := set.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Create("alpha"); err == nil {
		t.Fatal("duplicate Create should fail")
	}
	if _, err := set.Create("../evil"); err == nil {
		t.Fatal("path-traversal name should fail")
	}
	st.Declare("R", 1, 1)
	st.Insert(db.F("R", "x"))
	if err := set.Adopt(store.NewMem("mem", parse.MustDatabase("S(a | b)"))); err != nil {
		t.Fatal(err)
	}
	if got := set.Names(); !reflect.DeepEqual(got, []string{"alpha", "mem"}) {
		t.Fatalf("names = %v", got)
	}
	if err := set.CloseAll(); err != nil {
		t.Fatal(err)
	}

	// Reopen discovers alpha (durable) but not mem (memory-only).
	set2, err := store.OpenSet(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer set2.CloseAll()
	if got := set2.Names(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("reopened names = %v", got)
	}
	if d := set2.Get("alpha").Snapshot().DB; !d.Has(db.F("R", "x")) {
		t.Fatal("reopened store lost facts")
	}
}

// A crash between checkpoint and WAL truncation leaves the log
// double-covering the checkpoint; replay must not double-apply.
func TestRecoveryWithStaleWALRecords(t *testing.T) {
	dir := t.TempDir()
	opt := store.Options{Dir: dir, CheckpointEvery: 1 << 30}
	st, err := store.Open("d", opt)
	if err != nil {
		t.Fatal(err)
	}
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"))
	st.Delete(db.F("R", "a", "1"))
	st.Insert(db.F("R", "a", "2"))
	// Simulate the crash window: checkpoint written, WAL not truncated.
	walPath := filepath.Join(dir, "d.wal")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := st.Snapshot()
	st.Close()
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := store.Open("d", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Snapshot()
	if got.Version != want.Version || got.DB.String() != want.DB.String() {
		t.Fatalf("double-covered replay diverged: v%d\n%s\nwant v%d\n%s",
			got.Version, got.DB.String(), want.Version, want.DB.String())
	}
}
