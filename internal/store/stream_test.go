package store_test

import (
	"bytes"
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/store"
)

// serveTo drains st's stream for a client at version from into a buffer.
func serveTo(t *testing.T, st *store.Store, from uint64, follower string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.ServeStream(&buf, store.StreamOptions{From: from, Follower: follower}); err != nil {
		t.Fatalf("ServeStream(from=%d): %v", from, err)
	}
	return buf.Bytes()
}

func sameState(t *testing.T, a, b store.Snapshot, label string) {
	t.Helper()
	if a.Version != b.Version {
		t.Fatalf("%s: version %d vs %d", label, a.Version, b.Version)
	}
	if a.DB.String() != b.DB.String() {
		t.Fatalf("%s: state diverged at v%d:\n%s\nvs\n%s", label, a.Version, a.DB.String(), b.DB.String())
	}
}

func TestStreamTailRoundTrip(t *testing.T) {
	p := store.NewMem("d", nil)
	p.Declare("R", 2, 1)
	p.Insert(db.F("R", "a", "1"), db.F("R", "a", "2"))
	p.Insert(db.F("R", "b", "1"))
	p.Delete(db.F("R", "a", "2"))

	r := store.NewReplica("d")
	if err := r.ApplyStream(bytes.NewReader(serveTo(t, p, 0, "f1"))); err != nil {
		t.Fatalf("ApplyStream: %v", err)
	}
	sameState(t, p.Snapshot(), r.Store().Snapshot(), "after initial catch-up")

	// Incremental resume from the replica's own version.
	p.Insert(db.F("R", "c", "9"))
	p.Delete(db.F("R", "b", "1"))
	if err := r.ApplyStream(bytes.NewReader(serveTo(t, p, r.Version(), "f1"))); err != nil {
		t.Fatalf("resume ApplyStream: %v", err)
	}
	sameState(t, p.Snapshot(), r.Store().Snapshot(), "after resume")

	batches, records, resets := r.Stats()
	if resets != 0 {
		t.Fatalf("tail round trip took %d snapshot resets, want 0", resets)
	}
	if batches == 0 || records == 0 {
		t.Fatalf("no batches/records applied (batches=%d records=%d)", batches, records)
	}
	if acks := p.FollowerAcks(); acks["f1"] != p.Version() {
		t.Fatalf("follower ack = %d, want %d", acks["f1"], p.Version())
	}
}

func TestStreamSnapshotBootstrap(t *testing.T) {
	dir := t.TempDir()
	p, err := store.Open("d", store.Options{Dir: dir, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Declare("R", 2, 1)
	for i := 0; i < 10; i++ {
		p.Insert(db.F("R", string(rune('a'+i)), "1"))
	}
	// Checkpoints have advanced the retention floor past version 0.
	if _, ok := p.TailSince(0); ok {
		t.Fatalf("tail still reaches version 0 after checkpoints (stats %+v)", p.Stats())
	}

	r := store.NewReplica("d")
	if err := r.ApplyStream(bytes.NewReader(serveTo(t, p, 0, ""))); err != nil {
		t.Fatalf("ApplyStream: %v", err)
	}
	sameState(t, p.Snapshot(), r.Store().Snapshot(), "after snapshot bootstrap")
	if _, _, resets := r.Stats(); resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
}

func TestStreamTornBatchIsAtomic(t *testing.T) {
	p := store.NewMem("d", nil)
	p.Declare("R", 2, 1)
	p.Insert(db.F("R", "a", "1"))
	beforeLast := p.Snapshot()
	p.Insert(db.F("R", "b", "1"), db.F("R", "b", "2"), db.F("R", "b", "3"))

	full := serveTo(t, p, 0, "")
	// Cut the stream inside the last batch: its commit marker (the final
	// frame) is lost, so the batch must not publish.
	torn := full[:len(full)-5]

	r := store.NewReplica("d")
	if err := r.ApplyStream(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn stream applied without error")
	}
	sameState(t, beforeLast, r.Store().Snapshot(), "after torn stream")

	// Reconnect from the replica's version converges.
	if err := r.ApplyStream(bytes.NewReader(serveTo(t, p, r.Version(), ""))); err != nil {
		t.Fatalf("reconnect ApplyStream: %v", err)
	}
	sameState(t, p.Snapshot(), r.Store().Snapshot(), "after reconnect")
}

func TestStreamDivergentFollowerResets(t *testing.T) {
	p := store.NewMem("d", nil)
	p.Declare("R", 2, 1)
	p.Insert(db.F("R", "a", "1"))

	// A replica from a lost incarnation claims a version the primary
	// never produced; the stream must reset it, not tail it.
	r := store.NewReplica("d")
	r.Store().Declare("Zombie", 1, 1)
	for i := 0; i < 40; i++ {
		r.Store().Insert(db.F("Zombie", string(rune('a'+i%26))))
	}
	if r.Version() <= p.Version() {
		t.Fatalf("test setup: replica %d not ahead of primary %d", r.Version(), p.Version())
	}
	if err := r.ApplyStream(bytes.NewReader(serveTo(t, p, r.Version(), ""))); err != nil {
		t.Fatalf("ApplyStream: %v", err)
	}
	sameState(t, p.Snapshot(), r.Store().Snapshot(), "after divergence reset")
	if strings.Contains(r.Store().Snapshot().DB.String(), "Zombie") {
		t.Fatal("divergent state survived the reset")
	}
}

func TestStreamOnBatchAndOnReset(t *testing.T) {
	p := store.NewMem("d", nil)
	p.Declare("R", 2, 1)
	p.Insert(db.F("R", "a", "1"))

	r := store.NewReplica("d")
	var batchRels []string
	var resetAt uint64
	r.SetOnBatch(func(c store.Change) { batchRels = append(batchRels, c.Rels...) })
	r.SetOnReset(func(v uint64) { resetAt = v })

	if err := r.ApplyStream(bytes.NewReader(serveTo(t, p, 0, ""))); err != nil {
		t.Fatal(err)
	}
	if len(batchRels) == 0 || batchRels[0] != "R" {
		t.Fatalf("onBatch saw rels %v, want [R ...]", batchRels)
	}
	if resetAt != 0 {
		t.Fatalf("unexpected reset at %d", resetAt)
	}

	// Force a bootstrap (replica far ahead) and observe the reset hook.
	r2 := store.NewReplica("d")
	r2.SetOnReset(func(v uint64) { resetAt = v })
	for i := 0; i < 10; i++ {
		r2.Store().Insert(db.F("R", "x", "0")) // no declare: these all fail
	}
	r2.Store().Declare("S", 1, 1)
	for i := 0; i < 10; i++ {
		r2.Store().Insert(db.F("S", string(rune('a'+i))))
	}
	if err := r2.ApplyStream(bytes.NewReader(serveTo(t, p, r2.Version(), ""))); err != nil {
		t.Fatal(err)
	}
	if resetAt != p.Version() {
		t.Fatalf("onReset at %d, want %d", resetAt, p.Version())
	}
}
