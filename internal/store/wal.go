// WAL record format. Every mutation the store acknowledges is first
// framed as one append-only record:
//
//	u32 LE  payload length n (1 ≤ n ≤ maxRecordLen)
//	u32 LE  IEEE CRC-32 of the payload
//	n bytes payload
//
// The payload is, in order: the store version the record produces
// (uvarint), the op kind (one byte), the relation name (uvarint length +
// bytes), then kind-specific fields — declare carries arity and key
// (uvarints), insert and delete carry the argument count followed by the
// arguments (each uvarint length + bytes). Multiple records may share a
// version: a batch applies atomically under one version bump.
//
// Replay reads records sequentially and stops at the first anomaly —
// a short header or payload (the torn tail a crash mid-append leaves
// behind), a CRC mismatch, or an undecodable payload. Everything before
// the anomaly is intact by CRC; everything after is discarded, so a torn
// write can never materialize a phantom fact.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Op kinds. opCommit never appears in on-disk logs: it is synthesized
// by the WAL streaming endpoint to mark a version boundary, so a
// follower publishes a replicated batch only once it is known complete
// (see stream.go and docs/SHARDING.md).
const (
	opDeclare byte = 1
	opInsert  byte = 2
	opDelete  byte = 3
	opCommit  byte = 4
)

// maxRecordLen bounds one record's payload; longer lengths in a header
// are treated as corruption rather than allocated.
const maxRecordLen = 1 << 20

// walOp is one decoded mutation.
type walOp struct {
	kind  byte
	rel   string
	arity int
	key   int
	args  []string
}

// walRec is one WAL record: the version it produces and its op.
type walRec struct {
	version uint64
	op      walOp
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeRecord frames one record, returning header + payload bytes.
func encodeRecord(rec walRec) []byte {
	p := binary.AppendUvarint(nil, rec.version)
	p = append(p, rec.op.kind)
	p = appendString(p, rec.op.rel)
	switch rec.op.kind {
	case opDeclare:
		p = binary.AppendUvarint(p, uint64(rec.op.arity))
		p = binary.AppendUvarint(p, uint64(rec.op.key))
	case opCommit:
		// Version and kind only; the empty relation name is already framed.
	default:
		p = binary.AppendUvarint(p, uint64(len(rec.op.args)))
		for _, a := range rec.op.args {
			p = appendString(p, a)
		}
	}
	out := make([]byte, 8, 8+len(p))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(p))
	return append(out, p...)
}

// cursor is a bounds-checked reader over one payload.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: truncated uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) byte1() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("store: truncated byte at offset %d", c.off)
	}
	b := c.b[c.off]
	c.off++
	return b, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(c.b)-c.off) {
		return "", fmt.Errorf("store: string length %d exceeds payload", n)
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// decodePayload decodes one CRC-verified payload strictly: every byte
// must be consumed and every count must fit the remaining bytes.
func decodePayload(p []byte) (walRec, error) {
	c := &cursor{b: p}
	var rec walRec
	var err error
	if rec.version, err = c.uvarint(); err != nil {
		return rec, err
	}
	if rec.op.kind, err = c.byte1(); err != nil {
		return rec, err
	}
	if rec.op.rel, err = c.str(); err != nil {
		return rec, err
	}
	switch rec.op.kind {
	case opDeclare:
		arity, err := c.uvarint()
		if err != nil {
			return rec, err
		}
		key, err := c.uvarint()
		if err != nil {
			return rec, err
		}
		if arity == 0 || arity > maxRecordLen || key == 0 || key > arity {
			return rec, fmt.Errorf("store: invalid signature [%d, %d] in declare record", arity, key)
		}
		rec.op.arity, rec.op.key = int(arity), int(key)
	case opCommit:
		if rec.op.rel != "" {
			return rec, fmt.Errorf("store: commit record names relation %q", rec.op.rel)
		}
	case opInsert, opDelete:
		n, err := c.uvarint()
		if err != nil {
			return rec, err
		}
		if n > uint64(len(p)) { // each arg needs ≥ 1 byte of payload
			return rec, fmt.Errorf("store: argument count %d exceeds payload", n)
		}
		rec.op.args = make([]string, n)
		for i := range rec.op.args {
			if rec.op.args[i], err = c.str(); err != nil {
				return rec, err
			}
		}
	default:
		return rec, fmt.Errorf("store: unknown op kind %d", rec.op.kind)
	}
	if c.off != len(p) {
		return rec, fmt.Errorf("store: %d trailing bytes in record payload", len(p)-c.off)
	}
	return rec, nil
}

// readRecords decodes the longest valid record prefix of data. It
// returns the decoded records, the byte length of that prefix (the
// truncation point for a torn tail), and a non-nil err when the prefix
// ends at corruption (CRC mismatch, bad length, undecodable payload)
// rather than at a clean or short tail. readRecords never panics,
// whatever the input.
func readRecords(data []byte) (recs []walRec, valid int, err error) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil // clean end
		}
		if len(rest) < 8 {
			return recs, off, nil // torn header
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxRecordLen {
			return recs, off, fmt.Errorf("store: implausible record length %d at offset %d", n, off)
		}
		if uint32(len(rest)-8) < n {
			return recs, off, nil // torn payload
		}
		p := rest[8 : 8+n]
		if crc32.ChecksumIEEE(p) != crc {
			return recs, off, fmt.Errorf("store: CRC mismatch at offset %d", off)
		}
		rec, derr := decodePayload(p)
		if derr != nil {
			return recs, off, fmt.Errorf("store: record at offset %d: %w", off, derr)
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
}
