// Follower replicas: applying a WAL stream to a memory-only store.
// A Replica wraps a mem store and consumes streams produced by
// Store.ServeStream, publishing each batch only at its commit marker
// so readers on the replica never observe a torn batch, however the
// stream dies.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"cqa/internal/db"
)

// maxPendingOps bounds one uncommitted replicated batch; a stream
// claiming more is corrupt or hostile.
const maxPendingOps = 1 << 20

// applyReplicated applies one complete batch at an exact version — the
// follower-side counterpart of apply. Replicated stores are memory-only
// (their durability lives upstream); the version is forced to the
// primary's so exact-version reads agree across the fleet, and the
// batch publishes even when every op was a no-op locally.
func (s *Store) applyReplicated(version uint64, ops []walOp) (Change, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Change{}, ErrClosed
	}
	if s.wal != nil {
		return Change{}, errors.New("store: replicated apply onto a durable store")
	}
	cur := s.cur.Load()
	if version <= cur.Version {
		return Change{Version: cur.Version}, nil // duplicate delivery
	}

	touched := make(map[string]bool)
	for _, o := range ops {
		touched[o.rel] = true
	}
	rels := make([]string, 0, len(touched))
	for r := range touched {
		rels = append(rels, r)
	}
	next := cur.DB.CloneCOW(rels...)

	var change Change
	relSet := make(map[string]bool)
	for _, o := range ops {
		effective, block, err := applyEffective(next, o)
		if err != nil {
			return Change{}, err
		}
		if !effective {
			continue
		}
		change.Applied++
		relSet[o.rel] = true
		if block != nil {
			change.Blocks = append(change.Blocks, BlockRef{Rel: o.rel, Key: block})
		}
		s.tail = append(s.tail, tailRec{version: version,
			frame: encodeRecord(walRec{version: version, op: o})})
	}
	for r := range relSet {
		change.Rels = append(change.Rels, r)
	}
	sort.Strings(change.Rels)
	change.Version = version

	if prevIx := cur.DB.InternedIfBuilt(); prevIx != nil {
		next.SeedInterned(db.InternNext(prevIx, next))
	}
	s.cur.Store(&Snapshot{DB: next, Version: version})
	s.notifyLocked()
	if s.onApply != nil {
		s.onApply(change)
	}
	s.maintainTailLocked(version)
	return change, nil
}

// ResetTo replaces a memory-only store's contents wholesale — the
// snapshot-bootstrap landing. The tail is cleared (nothing before the
// reset can be streamed onward) and every waiter is woken.
func (s *Store) ResetTo(d *db.Database, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		return errors.New("store: reset of a durable store")
	}
	if d == nil {
		d = db.New()
	}
	s.tail = nil
	s.tailFloor = version
	s.cur.Store(&Snapshot{DB: d, Version: version})
	s.notifyLocked()
	return nil
}

// Replica consumes WAL streams into a memory-only store. One stream at
// a time; reconnect by calling ApplyStream again with a fresh stream
// opened from Store().Version().
type Replica struct {
	st *Store

	mu      sync.Mutex // serializes ApplyStream
	onBatch func(Change)
	onReset func(version uint64)

	batches atomic.Uint64
	records atomic.Uint64
	resets  atomic.Uint64
}

// NewReplica returns a replica over a fresh memory-only store.
func NewReplica(name string) *Replica {
	return &Replica{st: NewMem(name, nil)}
}

// Store returns the underlying store for reads (and Set adoption).
func (r *Replica) Store() *Store { return r.st }

// Version returns the last committed replicated version.
func (r *Replica) Version() uint64 { return r.st.Version() }

// SetOnBatch registers fn to run after every committed batch, in
// version order.
func (r *Replica) SetOnBatch(fn func(Change)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onBatch = fn
}

// SetOnReset registers fn to run after every snapshot-bootstrap reset.
// Cached results derived from earlier versions of this replica must be
// dropped: a reset may reuse version numbers of a divergent incarnation.
func (r *Replica) SetOnReset(fn func(version uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onReset = fn
}

// Stats reports stream-application counters: committed batches, applied
// records, snapshot resets.
func (r *Replica) Stats() (batches, records, resets uint64) {
	return r.batches.Load(), r.records.Load(), r.resets.Load()
}

// ApplyStream consumes one stream produced by ServeStream: header,
// optional snapshot bootstrap, then record frames, committing a batch
// at each opCommit marker. It returns nil when the stream ends cleanly
// at a batch boundary and an error otherwise; in both cases the store
// is consistent at the last committed version, and the caller may
// reconnect from Version().
func (r *Replica) ApplyStream(src io.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	br := bufio.NewReaderSize(src, 64<<10)

	line, err := br.ReadSlice('\n')
	if err != nil {
		return fmt.Errorf("store: reading stream header: %w", err)
	}
	var h StreamHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return fmt.Errorf("store: decoding stream header: %w", err)
	}
	switch h.Mode {
	case "snapshot":
		if h.Records < 0 || h.Records > maxPendingOps {
			return fmt.Errorf("store: implausible snapshot record count %d", h.Records)
		}
		d := db.New()
		for i := 0; i < h.Records; i++ {
			rec, err := readStreamRecord(br)
			if err != nil {
				return fmt.Errorf("store: snapshot bootstrap record %d/%d: %w", i, h.Records, err)
			}
			if rec.version != h.Version {
				return fmt.Errorf("store: snapshot record at version %d, want %d", rec.version, h.Version)
			}
			if rec.op.kind == opCommit {
				return fmt.Errorf("store: commit marker inside snapshot bootstrap (record %d/%d)", i, h.Records)
			}
			if err := applyOp(d, rec.op); err != nil {
				return fmt.Errorf("store: snapshot bootstrap: %w", err)
			}
		}
		if err := r.st.ResetTo(d, h.Version); err != nil {
			return err
		}
		r.resets.Add(1)
		r.records.Add(uint64(h.Records))
		if r.onReset != nil {
			r.onReset(h.Version)
		}
	case "tail":
	default:
		return fmt.Errorf("store: unknown stream mode %q", h.Mode)
	}

	var pending []walOp
	var pendingV uint64
	for {
		rec, err := readStreamRecord(br)
		if err == io.EOF {
			if len(pending) > 0 {
				return fmt.Errorf("store: stream ended mid-batch at version %d (%d records dropped)",
					pendingV, len(pending))
			}
			return nil
		}
		if err != nil {
			return err
		}
		if rec.op.kind == opCommit {
			if len(pending) == 0 {
				continue // heartbeat, or the marker closing a bootstrap
			}
			if rec.version != pendingV {
				return fmt.Errorf("store: commit marker for version %d closes batch at version %d",
					rec.version, pendingV)
			}
			change, err := r.st.applyReplicated(pendingV, pending)
			if err != nil {
				return err
			}
			r.batches.Add(1)
			r.records.Add(uint64(len(pending)))
			pending, pendingV = nil, 0
			if r.onBatch != nil {
				r.onBatch(change)
			}
			continue
		}
		if rec.version <= r.st.Version() {
			continue // duplicate delivery of an already-committed version
		}
		if len(pending) > 0 && rec.version != pendingV {
			return fmt.Errorf("store: version %d record arrived before version %d committed",
				rec.version, pendingV)
		}
		if len(pending) >= maxPendingOps {
			return fmt.Errorf("store: uncommitted batch exceeds %d records", maxPendingOps)
		}
		pendingV = rec.version
		pending = append(pending, rec.op)
	}
}

// readStreamRecord reads one CRC-framed record from a stream. io.EOF
// at a frame boundary is a clean end; anything else (torn header or
// payload, CRC mismatch, undecodable payload) is an error.
func readStreamRecord(br *bufio.Reader) (walRec, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return walRec{}, io.EOF
		}
		return walRec{}, fmt.Errorf("store: torn stream frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordLen {
		return walRec{}, fmt.Errorf("store: implausible stream record length %d", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(br, p); err != nil {
		return walRec{}, fmt.Errorf("store: torn stream record payload: %w", err)
	}
	if crc32.ChecksumIEEE(p) != crc {
		return walRec{}, errors.New("store: stream record CRC mismatch")
	}
	rec, err := decodePayload(p)
	if err != nil {
		return walRec{}, fmt.Errorf("store: stream record: %w", err)
	}
	return rec, nil
}
