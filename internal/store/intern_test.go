package store

import (
	"testing"

	"cqa/internal/db"
)

// Once a reader has interned a snapshot, writes keep the interner chain
// warm: the next version's view shares the dictionary and reuses the
// indexes of every relation the write did not touch.
func TestApplyChainsInternedViews(t *testing.T) {
	s := NewMem("intern", nil)
	defer s.Close()
	if _, err := s.Declare("R", 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Declare("S", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(db.F("R", "a", "b"), db.F("S", "c")); err != nil {
		t.Fatal(err)
	}

	snap1 := s.Snapshot()
	ix1 := snap1.DB.Interned() // reader interns version 1

	if _, err := s.Insert(db.F("S", "d")); err != nil {
		t.Fatal(err)
	}
	snap2 := s.Snapshot()
	ix2 := snap2.DB.InternedIfBuilt()
	if ix2 == nil {
		t.Fatal("apply did not seed the next snapshot's interned view")
	}
	if ix2.Relation("R") != ix1.Relation("R") {
		t.Fatal("untouched relation index was rebuilt instead of reused")
	}
	if ix2.Relation("S") == ix1.Relation("S") {
		t.Fatal("touched relation index was wrongly reused")
	}
	id1, ok1 := ix1.ID("a")
	id2, ok2 := ix2.ID("a")
	if !ok1 || !ok2 || id1 != id2 {
		t.Fatal("constant ids drifted across the version chain")
	}
	// A snapshot that was never interned does not force interning.
	s2 := NewMem("cold", nil)
	defer s2.Close()
	if _, err := s2.Declare("R", 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Insert(db.F("R", "x", "y")); err != nil {
		t.Fatal(err)
	}
	if s2.Snapshot().DB.InternedIfBuilt() != nil {
		t.Fatal("write eagerly interned a never-read store")
	}
}
