// Snapshot checkpoint files. A checkpoint is the full database rendered
// as an 8-byte magic, the store version (u64 LE), and one WAL-framed
// record per declaration and fact. Checkpoints are written to a temp
// file, fsynced, and renamed into place, so a crash mid-checkpoint
// leaves the previous checkpoint intact; the WAL is only truncated
// after the rename succeeds, and replay skips records whose version is
// already covered by the checkpoint.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"

	"cqa/internal/db"
)

var snapMagic = []byte("CQASNAP1")

// snapshotRecords renders d as WAL-framed declare and insert records at
// version, returning the frames and the record count. It is the shared
// body of checkpoint files and stream snapshot bootstraps.
func snapshotRecords(d *db.Database, version uint64) ([]byte, int) {
	var buf bytes.Buffer
	count := 0
	for _, name := range d.RelationNames() {
		r := d.Relation(name)
		buf.Write(encodeRecord(walRec{version: version,
			op: walOp{kind: opDeclare, rel: name, arity: r.Arity, key: r.Key}}))
		count++
		for _, f := range d.Facts(name) {
			buf.Write(encodeRecord(walRec{version: version,
				op: walOp{kind: opInsert, rel: name, args: f.Args}}))
			count++
		}
	}
	return buf.Bytes(), count
}

// writeSnapshotFile atomically replaces path with a checkpoint of d at
// version.
func writeSnapshotFile(path string, d *db.Database, version uint64) error {
	var buf bytes.Buffer
	buf.Write(snapMagic)
	var vb [8]byte
	binary.LittleEndian.PutUint64(vb[:], version)
	buf.Write(vb[:])
	body, _ := snapshotRecords(d, version)
	buf.Write(body)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// readSnapshotFile loads a checkpoint. Unlike the WAL — whose tail may
// legitimately be torn — a checkpoint was published by an atomic rename,
// so any damage is a hard error rather than something to truncate away.
func readSnapshotFile(path string) (*db.Database, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(snapMagic)+8 || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, 0, fmt.Errorf("store: %s is not a snapshot file", path)
	}
	version := binary.LittleEndian.Uint64(data[len(snapMagic):])
	body := data[len(snapMagic)+8:]
	recs, valid, err := readRecords(body)
	if err != nil {
		return nil, 0, fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
	}
	if valid != len(body) {
		return nil, 0, fmt.Errorf("store: snapshot %s has %d trailing bytes", path, len(body)-valid)
	}
	d := db.New()
	for _, rec := range recs {
		if err := applyOp(d, rec.op); err != nil {
			return nil, 0, fmt.Errorf("store: snapshot %s: %w", path, err)
		}
	}
	return d, version, nil
}

// applyOp replays one op onto a mutable database during recovery.
// Inserts and deletes are idempotent, so records double-covered by a
// checkpoint (a crash between checkpoint and WAL truncation) are
// harmless even before the version filter.
func applyOp(d *db.Database, o walOp) error {
	switch o.kind {
	case opDeclare:
		return d.DeclareRelation(o.rel, o.arity, o.key)
	case opInsert:
		return d.Insert(db.Fact{Rel: o.rel, Args: o.args})
	case opDelete:
		d.Remove(db.Fact{Rel: o.rel, Args: o.args})
		return nil
	default:
		return fmt.Errorf("store: unknown op kind %d", o.kind)
	}
}
