// Package store is the mutable, versioned fact store underneath the
// serving stack. It wraps internal/db with three capabilities the
// immutable preloaded databases of the daemon lack:
//
//   - Copy-on-write snapshots: writers bump a monotonic version and
//     publish a fresh immutable *db.Database view; readers take the
//     current snapshot with one atomic load and evaluate against it for
//     as long as they like, never blocking a writer and never observing
//     a torn write. A write deep-copies only the relations it touches —
//     untouched relations are shared between consecutive versions.
//
//   - Durability: every acknowledged mutation is first appended to a
//     CRC-framed write-ahead log, with periodic full-snapshot
//     checkpoints. Recovery replays the checkpoint plus the WAL records
//     it does not cover, truncating a torn tail (the partial record a
//     crash mid-append leaves behind) instead of failing.
//
//   - Block-level dirty tracking: every write reports the relations and
//     blocks (maximal key-equal groups — the paper's unit of
//     inconsistency) it touched, feeding the engine's incremental
//     result-cache invalidation: a write can only change CERTAINTY(q)
//     answers for queries that mention a touched relation.
//
// See docs/STORE.md for the record format and recovery semantics.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqa/internal/db"
)

// ErrClosed is returned by mutations on a closed store.
var ErrClosed = errors.New("store: closed")

// DefaultCheckpointEvery is the WAL record count between automatic
// checkpoints when Options.CheckpointEvery ≤ 0.
const DefaultCheckpointEvery = 1024

// DefaultMaxFollowerLag is the version lag beyond which a registered
// follower is evicted from the retention floor when
// Options.MaxFollowerLag ≤ 0.
const DefaultMaxFollowerLag = 4096

// Options configures a store.
type Options struct {
	// Dir is the data directory; "" selects a memory-only store (no
	// durability, same snapshot and versioning semantics).
	Dir string
	// CheckpointEvery is the number of WAL records after which the store
	// checkpoints and truncates the log; ≤ 0 selects
	// DefaultCheckpointEvery.
	CheckpointEvery int
	// Sync fsyncs the WAL after every acknowledged batch. Off, a crash
	// can lose writes still in the OS page cache (but never corrupt:
	// replay stops at the torn tail either way).
	Sync bool
	// MaxFollowerLag caps how many versions behind the current one a
	// registered follower may hold the retention floor. A follower lagging
	// further is evicted: its records are reclaimed and its next stream
	// request falls back to a snapshot bootstrap. ≤ 0 selects
	// DefaultMaxFollowerLag.
	MaxFollowerLag int
	// OnFsync, when non-nil, observes the duration of every WAL fsync
	// performed because Sync is set. Called under the store's write lock;
	// keep it cheap (a histogram observation, not I/O).
	OnFsync func(d time.Duration)
}

// Snapshot is one immutable version of the database. DB must not be
// mutated by callers; it remains valid (and consistent) forever, even
// as the store moves on.
type Snapshot struct {
	DB      *db.Database
	Version uint64
}

// BlockRef names one touched block: a relation and the key values of a
// maximal key-equal group.
type BlockRef struct {
	Rel string
	Key []string
}

// Change describes one acknowledged write batch.
type Change struct {
	// Version is the store version after the write; when Applied is 0
	// the batch was a no-op and Version is unchanged.
	Version uint64
	// Applied counts the mutations that took effect (duplicate inserts,
	// absent deletes, and re-declarations are filtered out).
	Applied int
	// Rels are the relations touched, sorted. Result-cache invalidation
	// keys off this set: queries not mentioning any touched relation
	// keep their cached answers.
	Rels []string
	// Blocks are the blocks touched, in application order.
	Blocks []BlockRef
}

// Stats is a point-in-time view of a store's counters.
type Stats struct {
	Version           uint64 // current published version
	CheckpointVersion uint64 // version of the last checkpoint (0 = none)
	Checkpoints       uint64 // checkpoints written since open
	WALRecords        uint64 // records appended since open
	RecoveredRecords  uint64 // WAL records replayed at open
	SegmentRecords    uint64 // records in the current WAL segment
	TailRecords       uint64 // records retained in memory for streaming
	TailFloor         uint64 // versions ≤ TailFloor need a snapshot bootstrap
	Followers         int    // registered stream followers
}

// Store is a mutable, versioned fact database. Any number of goroutines
// may take and read snapshots concurrently; mutations are serialized
// internally and safe to issue from any goroutine.
type Store struct {
	name string
	opt  Options

	mu      sync.Mutex // serializes writers, checkpoints, Close
	wal     *os.File   // nil for memory-only stores
	closed  bool
	onApply func(Change)

	cur atomic.Pointer[Snapshot]

	segRecords  uint64 // records in the current WAL segment
	sinceCkpt   uint64 // records appended since the last checkpoint
	walRecords  atomic.Uint64
	recovered   uint64
	checkpoints atomic.Uint64
	checkpointV atomic.Uint64

	// Streaming state (under mu). tail holds the encoded frames of every
	// record with version > tailFloor, serving follower catch-up without
	// touching disk; followers maps follower id → acknowledged version,
	// and holds the retention floor down (see retentionFloorLocked).
	tail      []tailRec
	tailFloor uint64
	followers map[string]uint64
	changed   chan struct{} // closed and replaced on every publish
}

// tailRec is one retained record: its version and its encoded frame.
type tailRec struct {
	version uint64
	frame   []byte
}

// NewMem returns a memory-only store adopting base (nil selects an
// empty database) as its version-0 snapshot. The caller must not mutate
// base afterwards.
func NewMem(name string, base *db.Database) *Store {
	return NewMemAt(name, base, 0)
}

// NewMemAt is NewMem starting at an arbitrary version — the seed of a
// follower replica bootstrapped from a primary's snapshot.
func NewMemAt(name string, base *db.Database, version uint64) *Store {
	if base == nil {
		base = db.New()
	}
	s := &Store{name: name, followers: make(map[string]uint64), changed: make(chan struct{})}
	s.tailFloor = version
	s.cur.Store(&Snapshot{DB: base, Version: version})
	return s
}

// Open opens (or creates) the durable store named name under opt.Dir,
// recovering from the checkpoint and WAL left by a previous process.
// A torn WAL tail is truncated; everything acknowledged before it is
// recovered exactly. With opt.Dir == "" Open degenerates to NewMem.
func Open(name string, opt Options) (*Store, error) {
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = DefaultCheckpointEvery
	}
	if opt.MaxFollowerLag <= 0 {
		opt.MaxFollowerLag = DefaultMaxFollowerLag
	}
	if opt.Dir == "" {
		s := NewMem(name, nil)
		s.opt = opt
		return s, nil
	}
	if err := validName(name); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{name: name, opt: opt, followers: make(map[string]uint64), changed: make(chan struct{})}

	base := db.New()
	var version uint64
	if d, v, err := readSnapshotFile(s.snapPath()); err == nil {
		base, version = d, v
		s.checkpointV.Store(v)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	walPath := s.walPath()
	if data, err := os.ReadFile(walPath); err == nil {
		recs, valid, _ := readRecords(data)
		if valid < len(data) {
			// Torn or corrupt tail: keep the acknowledged prefix.
			if err := os.Truncate(walPath, int64(valid)); err != nil {
				return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
			}
		}
		// Skip only records the checkpoint already covers (a crash
		// between checkpoint write and WAL truncation leaves them
		// behind). A batch spans several records sharing one version, so
		// the cutoff must be the checkpoint version, not the running
		// replay version.
		ckpt := version
		for _, rec := range recs {
			s.segRecords++
			if rec.version <= ckpt {
				continue
			}
			s.sinceCkpt++
			if err := applyOp(base, rec.op); err != nil {
				return nil, fmt.Errorf("store: replaying WAL for %s: %w", name, err)
			}
			if rec.version > version {
				version = rec.version
			}
		}
		s.recovered = uint64(len(recs))
		// Rebuild the streaming tail from the retained records, so a
		// restarted primary can still serve incremental catch-up for
		// versions the previous process retained on disk.
		s.tailFloor = version
		for _, rec := range recs {
			if rec.version-1 < s.tailFloor {
				s.tailFloor = rec.version - 1
			}
			s.tail = append(s.tail, tailRec{version: rec.version, frame: encodeRecord(rec)})
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if len(s.tail) == 0 {
		s.tailFloor = version
	}

	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.wal = f
	s.cur.Store(&Snapshot{DB: base, Version: version})
	return s, nil
}

func (s *Store) walPath() string  { return filepath.Join(s.opt.Dir, s.name+".wal") }
func (s *Store) snapPath() string { return filepath.Join(s.opt.Dir, s.name+".snap") }

// ValidName reports whether name is acceptable as a store name —
// filesystem- and URL-safe tokens only. Exported for the sharded set,
// which must validate logical names before deriving shard store names.
func ValidName(name string) error { return validName(name) }

// validName restricts store names to filesystem- and URL-safe tokens.
func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("store: invalid name %q", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return fmt.Errorf("store: invalid name %q (want [A-Za-z0-9._-]+)", name)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("store: invalid name %q (must not start with a dot)", name)
	}
	return nil
}

// Name returns the store's name.
func (s *Store) Name() string { return s.name }

// Durable reports whether writes are persisted (the store was opened
// with a data directory, as opposed to NewMem).
func (s *Store) Durable() bool { return s.opt.Dir != "" }

// Snapshot returns the current immutable snapshot with one atomic load;
// it never blocks, not even against an in-flight writer.
func (s *Store) Snapshot() Snapshot { return *s.cur.Load() }

// Version returns the current published version.
func (s *Store) Version() uint64 { return s.cur.Load().Version }

// SetOnApply registers fn to run after every effective write, while the
// writer lock is still held — callbacks therefore observe changes in
// version order, which the engine's result-cache invalidation depends
// on. fn must not call back into the store's mutation API.
func (s *Store) SetOnApply(fn func(Change)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onApply = fn
}

// Declare registers a relation with signature [arity, key].
func (s *Store) Declare(name string, arity, key int) (Change, error) {
	return s.apply([]walOp{{kind: opDeclare, rel: name, arity: arity, key: key}})
}

// Insert adds facts as one atomic batch (one version bump).
func (s *Store) Insert(facts ...db.Fact) (Change, error) {
	ops := make([]walOp, len(facts))
	for i, f := range facts {
		ops[i] = walOp{kind: opInsert, rel: f.Rel, args: f.Args}
	}
	return s.apply(ops)
}

// Delete removes facts as one atomic batch.
func (s *Store) Delete(facts ...db.Fact) (Change, error) {
	ops := make([]walOp, len(facts))
	for i, f := range facts {
		ops[i] = walOp{kind: opDelete, rel: f.Rel, args: f.Args}
	}
	return s.apply(ops)
}

// ApplyDB declares every relation of src and inserts every fact, as one
// atomic batch. It is the bridge from parsed fact text (parse.Database)
// to store mutations.
func (s *Store) ApplyDB(src *db.Database) (Change, error) {
	var ops []walOp
	for _, name := range src.RelationNames() {
		r := src.Relation(name)
		ops = append(ops, walOp{kind: opDeclare, rel: name, arity: r.Arity, key: r.Key})
		for _, f := range src.Facts(name) {
			ops = append(ops, walOp{kind: opInsert, rel: name, args: f.Args})
		}
	}
	return s.apply(ops)
}

// DeleteDB removes every fact of src (declarations are ignored), as one
// atomic batch.
func (s *Store) DeleteDB(src *db.Database) (Change, error) {
	var ops []walOp
	for _, name := range src.RelationNames() {
		for _, f := range src.Facts(name) {
			ops = append(ops, walOp{kind: opDelete, rel: name, args: f.Args})
		}
	}
	return s.apply(ops)
}

// apply validates, filters, logs, and publishes one batch.
func (s *Store) apply(ops []walOp) (Change, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Change{}, ErrClosed
	}
	cur := s.cur.Load()

	// Copy-on-write: deep-copy exactly the relations this batch names;
	// everything else is shared with the previous snapshot.
	touched := make(map[string]bool)
	for _, o := range ops {
		touched[o.rel] = true
	}
	rels := make([]string, 0, len(touched))
	for r := range touched {
		rels = append(rels, r)
	}
	next := cur.DB.CloneCOW(rels...)

	version := cur.Version + 1
	var change Change
	var logged []byte
	var frames []tailRec
	relSet := make(map[string]bool)
	for _, o := range ops {
		effective, block, err := applyEffective(next, o)
		if err != nil {
			return Change{}, err // nothing published, nothing logged
		}
		if !effective {
			continue
		}
		change.Applied++
		relSet[o.rel] = true
		if block != nil {
			change.Blocks = append(change.Blocks, BlockRef{Rel: o.rel, Key: block})
		}
		frame := encodeRecord(walRec{version: version, op: o})
		frames = append(frames, tailRec{version: version, frame: frame})
		if s.wal != nil {
			logged = append(logged, frame...)
		}
	}
	if change.Applied == 0 {
		return Change{Version: cur.Version}, nil
	}
	for r := range relSet {
		change.Rels = append(change.Rels, r)
	}
	sort.Strings(change.Rels)
	change.Version = version

	if s.wal != nil {
		if _, err := s.wal.Write(logged); err != nil {
			// The log may now hold a partial batch; refuse further writes
			// rather than risk acknowledged state diverging from the log.
			s.closed = true
			return Change{}, fmt.Errorf("store: WAL append failed, store closed: %w", err)
		}
		if s.opt.Sync {
			start := time.Now()
			if err := s.wal.Sync(); err != nil {
				s.closed = true
				return Change{}, fmt.Errorf("store: WAL sync failed, store closed: %w", err)
			}
			if s.opt.OnFsync != nil {
				s.opt.OnFsync(time.Since(start))
			}
		}
		n := uint64(change.Applied)
		s.segRecords += n
		s.sinceCkpt += n
		s.walRecords.Add(n)
	}

	// Keep the compiled-evaluator interner chain warm: when readers have
	// interned the previous snapshot, build the next version's view by
	// reusing the shared dictionary and the indexes of every untouched
	// (pointer-shared) relation, so a write re-indexes only the relations
	// it touched. When no reader ever interned, skip — the first compiled
	// evaluation on the new snapshot will build (and memoize) a view.
	if prevIx := cur.DB.InternedIfBuilt(); prevIx != nil {
		next.SeedInterned(db.InternNext(prevIx, next))
	}

	s.cur.Store(&Snapshot{DB: next, Version: version})
	s.tail = append(s.tail, frames...)
	s.notifyLocked()
	if s.onApply != nil {
		s.onApply(change)
	}
	if s.wal != nil && s.sinceCkpt >= uint64(s.opt.CheckpointEvery) {
		if err := s.checkpointLocked(); err != nil {
			return change, fmt.Errorf("store: checkpoint failed (write applied): %w", err)
		}
	} else if s.wal == nil {
		s.maintainTailLocked(version)
	}
	return change, nil
}

// notifyLocked wakes Changed waiters by closing and replacing the
// broadcast channel.
func (s *Store) notifyLocked() {
	if s.changed == nil {
		s.changed = make(chan struct{})
		return
	}
	close(s.changed)
	s.changed = make(chan struct{})
}

// Changed returns a channel closed at the next publish (or Close). Take
// it, check the version, and take a fresh one to wait again.
func (s *Store) Changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.changed == nil {
		s.changed = make(chan struct{})
	}
	return s.changed
}

// maintainTailLocked bounds a memory-only store's streaming tail: once
// it exceeds twice the checkpoint interval, records below the retention
// floor are dropped (a durable store prunes at checkpoint instead).
func (s *Store) maintainTailLocked(version uint64) {
	every := s.opt.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if len(s.tail) <= 2*every {
		return
	}
	s.pruneTailLocked(s.retentionFloorLocked(version))
}

// retentionFloorLocked computes the version below which records may be
// reclaimed: target (the checkpoint or current version), held down by
// the slowest registered follower. Followers lagging beyond
// MaxFollowerLag are evicted first — their next stream request gets a
// snapshot bootstrap rather than holding retention forever.
func (s *Store) retentionFloorLocked(target uint64) uint64 {
	lag := uint64(s.opt.MaxFollowerLag)
	if lag == 0 {
		lag = DefaultMaxFollowerLag
	}
	cur := s.cur.Load().Version
	for id, ack := range s.followers {
		if cur-ack > lag {
			delete(s.followers, id)
		}
	}
	floor := target
	for _, ack := range s.followers {
		if ack < floor {
			floor = ack
		}
	}
	return floor
}

// pruneTailLocked drops tail records with version ≤ floor and raises
// the tail floor. It never lowers the floor.
func (s *Store) pruneTailLocked(floor uint64) {
	if floor < s.tailFloor {
		floor = s.tailFloor
	}
	i := 0
	for i < len(s.tail) && s.tail[i].version <= floor {
		i++
	}
	if i > 0 {
		s.tail = append([]tailRec(nil), s.tail[i:]...)
	}
	s.tailFloor = floor
}

// applyEffective applies one op to next, reporting whether it changed
// anything and, for fact ops, the touched block's key values.
func applyEffective(next *db.Database, o walOp) (bool, []string, error) {
	switch o.kind {
	case opDeclare:
		if next.Relation(o.rel) != nil {
			// Existing relation: DeclareRelation checks signature agreement.
			return false, nil, next.DeclareRelation(o.rel, o.arity, o.key)
		}
		return true, nil, next.DeclareRelation(o.rel, o.arity, o.key)
	case opInsert:
		f := db.Fact{Rel: o.rel, Args: o.args}
		if next.Has(f) {
			return false, nil, nil
		}
		if err := next.Insert(f); err != nil {
			return false, nil, err
		}
		r := next.Relation(o.rel)
		return true, o.args[:r.Key], nil
	case opDelete:
		f := db.Fact{Rel: o.rel, Args: o.args}
		if !next.Has(f) {
			return false, nil, nil
		}
		r := next.Relation(o.rel)
		next.Remove(f)
		return true, o.args[:r.Key], nil
	default:
		return false, nil, fmt.Errorf("store: unknown op kind %d", o.kind)
	}
}

// Checkpoint forces a snapshot checkpoint and WAL truncation now. It is
// a no-op for memory-only stores.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	cur := s.cur.Load()
	if err := writeSnapshotFile(s.snapPath(), cur.DB, cur.Version); err != nil {
		return err
	}
	// Only after the checkpoint is durably in place may the log shrink.
	// A crash in between double-covers some records; replay's version
	// filter (and op idempotence) makes that harmless.
	//
	// Retention floor: the checkpoint covers everything ≤ cur.Version,
	// but a registered follower still needs records after its last
	// acknowledged version, so the log keeps the suffix above
	// min(checkpoint version, slowest follower ack) instead of
	// truncating to zero unconditionally.
	floor := s.retentionFloorLocked(cur.Version)
	s.pruneTailLocked(floor)
	if len(s.tail) == 0 {
		if err := s.wal.Truncate(0); err != nil {
			return err
		}
		s.segRecords = 0
	} else {
		var buf []byte
		for _, tr := range s.tail {
			buf = append(buf, tr.frame...)
		}
		tmp := s.walPath() + ".tmp"
		if err := os.WriteFile(tmp, buf, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, s.walPath()); err != nil {
			os.Remove(tmp)
			return err
		}
		// The old append fd points at the replaced inode; reopen.
		f, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.wal.Close()
		s.wal = f
		s.segRecords = uint64(len(s.tail))
	}
	s.sinceCkpt = 0
	s.checkpoints.Add(1)
	s.checkpointV.Store(cur.Version)
	return nil
}

// Close checkpoints (when durable and the segment is non-empty) and
// releases the WAL. Snapshots already taken remain readable; mutations
// fail with ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.notifyLocked() // wake stream waiters so they observe the close
	if s.wal == nil {
		return nil
	}
	var err error
	if s.sinceCkpt > 0 {
		err = s.checkpointLocked()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	cur := s.cur.Load()
	s.mu.Lock()
	seg := s.segRecords
	tailN := uint64(len(s.tail))
	tailFloor := s.tailFloor
	followers := len(s.followers)
	s.mu.Unlock()
	return Stats{
		Version:           cur.Version,
		CheckpointVersion: s.checkpointV.Load(),
		Checkpoints:       s.checkpoints.Load(),
		WALRecords:        s.walRecords.Load(),
		RecoveredRecords:  s.recovered,
		SegmentRecords:    seg,
		TailRecords:       tailN,
		TailFloor:         tailFloor,
		Followers:         followers,
	}
}
