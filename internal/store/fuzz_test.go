package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cqa/internal/db"
	"cqa/internal/store"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL decoder via store
// recovery: whatever the log contains, Open must not panic, must
// recover only CRC-intact records (no phantom facts beyond what a valid
// prefix encodes), and must leave a log that a second open replays to
// the same state.
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine log and mutations of it.
	dir := f.TempDir()
	st, err := store.Open("seed", store.Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"), db.F("R", "b", "2"))
	st.Delete(db.F("R", "b", "2"))
	seed, err := os.ReadFile(filepath.Join(dir, "seed.wal"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	flipped := append([]byte(nil), seed...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, "z.wal"), data, 0o644); err != nil {
			t.Skip()
		}
		st, err := store.Open("z", store.Options{Dir: fdir})
		if err != nil {
			// Semantically invalid but CRC-valid records (e.g. an insert
			// into an undeclared relation) legitimately fail recovery;
			// what matters is no panic and no partial store.
			return
		}
		first := st.Snapshot()
		// The repaired log must replay to the same state.
		st2, err := store.Open("z", store.Options{Dir: fdir})
		if err != nil {
			t.Fatalf("second open of repaired log failed: %v", err)
		}
		second := st2.Snapshot()
		st.Close()
		st2.Close()
		if first.Version != second.Version || first.DB.String() != second.DB.String() {
			t.Fatalf("repaired log diverged: v%d vs v%d\n%s\nvs\n%s",
				first.Version, second.Version, first.DB.String(), second.DB.String())
		}
	})
}

// fuzzPrimary builds a small deterministic primary for stream fuzzing.
func fuzzPrimary() *store.Store {
	p := store.NewMem("d", nil)
	p.Declare("R", 2, 1)
	p.Insert(db.F("R", "a", "1"), db.F("R", "a", "2"))
	p.Insert(db.F("R", "b", "1"))
	p.Delete(db.F("R", "a", "2"))
	return p
}

// FuzzWALStream feeds arbitrary bytes to the follower's stream decoder.
// Whatever arrives — torn frames, duplicated records, bit flips, hostile
// headers — ApplyStream must not panic, must keep the replica's version
// monotone, and must leave a state from which a genuine reconnect (the
// stream a primary serves for the replica's post-garbage version)
// converges to the primary exactly.
func FuzzWALStream(f *testing.F) {
	p := fuzzPrimary()
	var full bytes.Buffer
	if err := p.ServeStream(&full, store.StreamOptions{From: 0}); err != nil {
		f.Fatal(err)
	}
	stream := full.Bytes()
	f.Add(stream)
	f.Add(stream[:len(stream)-3])             // torn final frame
	f.Add(append(append([]byte{}, stream...), stream...)) // duplicated records
	if i := bytes.IndexByte(stream, '\n'); i > 0 {
		f.Add(stream[:i+9]) // torn first frame
		flip := append([]byte(nil), stream...)
		flip[i+10] ^= 0x20 // corrupt a payload byte under the CRC
		f.Add(flip)
	}
	var snapStream bytes.Buffer
	// A from beyond the primary's version forces a snapshot bootstrap.
	if err := p.ServeStream(&snapStream, store.StreamOptions{From: 99}); err != nil {
		f.Fatal(err)
	}
	f.Add(snapStream.Bytes())
	f.Add([]byte(`{"mode":"snapshot","version":3,"records":1000000}` + "\n"))
	f.Add([]byte(`{"mode":"weird"}` + "\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := store.NewReplica("d")
		before := r.Version()
		_ = r.ApplyStream(bytes.NewReader(data)) // may error; must not panic
		mid := r.Version()
		_, _, resets := r.Stats()
		if mid < before && resets == 0 {
			t.Fatalf("version moved backwards without a reset: %d → %d", before, mid)
		}
		// Whatever state the garbage left — including CRC-valid forged
		// records a coverage-guided fuzzer can construct — a snapshot
		// bootstrap must heal the replica. (A claimed version far ahead
		// forces the bootstrap path; tail-resume correctness for honest
		// prefixes is covered by the deterministic stream tests.)
		p := fuzzPrimary()
		var again bytes.Buffer
		if err := p.ServeStream(&again, store.StreamOptions{From: ^uint64(0)}); err != nil {
			t.Fatalf("ServeStream(bootstrap): %v", err)
		}
		if err := r.ApplyStream(bytes.NewReader(again.Bytes())); err != nil {
			t.Fatalf("genuine bootstrap failed: %v", err)
		}
		ps, rs := p.Snapshot(), r.Store().Snapshot()
		if ps.Version != rs.Version || ps.DB.String() != rs.DB.String() {
			t.Fatalf("reconnect did not converge: v%d vs v%d\n%s\nvs\n%s",
				ps.Version, rs.Version, ps.DB.String(), rs.DB.String())
		}
	})
}
