package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"cqa/internal/db"
	"cqa/internal/store"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL decoder via store
// recovery: whatever the log contains, Open must not panic, must
// recover only CRC-intact records (no phantom facts beyond what a valid
// prefix encodes), and must leave a log that a second open replays to
// the same state.
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine log and mutations of it.
	dir := f.TempDir()
	st, err := store.Open("seed", store.Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"), db.F("R", "b", "2"))
	st.Delete(db.F("R", "b", "2"))
	seed, err := os.ReadFile(filepath.Join(dir, "seed.wal"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	flipped := append([]byte(nil), seed...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, "z.wal"), data, 0o644); err != nil {
			t.Skip()
		}
		st, err := store.Open("z", store.Options{Dir: fdir})
		if err != nil {
			// Semantically invalid but CRC-valid records (e.g. an insert
			// into an undeclared relation) legitimately fail recovery;
			// what matters is no panic and no partial store.
			return
		}
		first := st.Snapshot()
		// The repaired log must replay to the same state.
		st2, err := store.Open("z", store.Options{Dir: fdir})
		if err != nil {
			t.Fatalf("second open of repaired log failed: %v", err)
		}
		second := st2.Snapshot()
		st.Close()
		st2.Close()
		if first.Version != second.Version || first.DB.String() != second.DB.String() {
			t.Fatalf("repaired log diverged: v%d vs v%d\n%s\nvs\n%s",
				first.Version, second.Version, first.DB.String(), second.DB.String())
		}
	})
}
