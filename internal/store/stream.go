// WAL streaming: the catch-up protocol between a primary store and its
// follower replicas.
//
// A stream is one JSON header line followed by CRC-framed WAL records
// (the exact on-disk format of wal.go). Two modes:
//
//   - "tail": the follower's version is within the primary's retained
//     tail, so the stream resumes with records strictly after it.
//   - "snapshot": the follower pre-dates the oldest retained record (or
//     claims a version the primary never produced — a divergent
//     incarnation), so the stream opens with a full snapshot bootstrap:
//     header.Records frames rendering the current database, which the
//     follower must apply atomically as a reset before tailing.
//
// Every version's records are followed by one opCommit frame carrying
// that version. A follower buffers records and publishes only at the
// commit marker, so a stream cut mid-batch can never materialize a
// torn write — the pending records are dropped and re-sent on
// reconnect. See docs/SHARDING.md for the full state machine.
package store

import (
	"encoding/json"
	"fmt"
	"io"
)

// StreamHeader is the first line of a WAL stream, JSON-encoded and
// newline-terminated.
type StreamHeader struct {
	// Database is the serving store's name.
	Database string `json:"database"`
	// Mode is "tail" or "snapshot".
	Mode string `json:"mode"`
	// Version is the resume point: in tail mode the version the stream
	// continues after; in snapshot mode the version of the bootstrap.
	Version uint64 `json:"version"`
	// Records is the number of bootstrap frames that follow the header
	// in snapshot mode (0 in tail mode).
	Records int `json:"records"`
}

// TailBatch is one version's worth of retained records.
type TailBatch struct {
	Version uint64
	Frames  []byte // concatenated CRC-framed records, without commit marker
	Records int
}

// TailSince returns the retained batches with version > from, grouped
// by version, and whether from is still within the retained tail. A
// false return means the retention floor has advanced past from and the
// caller needs a snapshot bootstrap.
func (s *Store) TailSince(from uint64) ([]TailBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.tailFloor {
		return nil, false
	}
	var out []TailBatch
	for _, tr := range s.tail {
		if tr.version <= from {
			continue
		}
		if len(out) == 0 || out[len(out)-1].Version != tr.version {
			out = append(out, TailBatch{Version: tr.version})
		}
		b := &out[len(out)-1]
		b.Frames = append(b.Frames, tr.frame...)
		b.Records++
	}
	return out, true
}

// RegisterFollower records that follower id has applied everything up
// to ack; the retention floor will not advance past ack until the
// follower advances, unregisters, or falls further behind than
// MaxFollowerLag. Registration is idempotent and never moves an
// existing ack backwards.
func (s *Store) RegisterFollower(id string, ack uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := s.cur.Load().Version; ack > cur {
		ack = cur
	}
	if prev, ok := s.followers[id]; ok && prev >= ack {
		return
	}
	s.followers[id] = ack
}

// AckFollower advances follower id's acknowledged version (never
// backwards). Unknown ids re-register.
func (s *Store) AckFollower(id string, ack uint64) { s.RegisterFollower(id, ack) }

// UnregisterFollower releases the retention hold of follower id.
func (s *Store) UnregisterFollower(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.followers, id)
}

// FollowerAcks returns a copy of the registered follower → ack map.
func (s *Store) FollowerAcks() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.followers))
	for id, ack := range s.followers {
		out[id] = ack
	}
	return out
}

// commitFrame encodes the opCommit marker closing version v.
func commitFrame(v uint64) []byte {
	return encodeRecord(walRec{version: v, op: walOp{kind: opCommit}})
}

// StreamOptions configures ServeStream.
type StreamOptions struct {
	// From is the version the client has already applied.
	From uint64
	// Follower, when non-empty, registers the client in the retention
	// floor and advances its ack as batches are written.
	Follower string
	// Follow keeps the stream open, pushing new batches as they commit,
	// until Stop closes or the store closes. Off, the stream ends once
	// the current tail is drained.
	Follow bool
	// Stop ends a following stream when closed. Optional.
	Stop <-chan struct{}
	// Flush, when non-nil, runs after the header and after every batch —
	// the hook for HTTP response flushing.
	Flush func()
}

// ServeStream writes the catch-up stream for o.From to w: a header,
// a snapshot bootstrap when the tail no longer reaches back to o.From
// (or o.From is ahead of this store — a divergent follower that must
// reset), then tail batches, each closed by a commit marker. It returns
// nil on a clean end (tail drained, Stop closed, or store closed) and
// the write error otherwise.
func (s *Store) ServeStream(w io.Writer, o StreamOptions) error {
	from := o.From
	snap := s.Snapshot()
	_, inTail := s.TailSince(from)
	if o.Follower != "" {
		s.RegisterFollower(o.Follower, from)
	}

	if !inTail || from > snap.Version {
		// Snapshot bootstrap: render the current snapshot as frames and
		// reset the follower to it.
		frames, count := snapshotRecords(snap.DB, snap.Version)
		hdr, err := json.Marshal(StreamHeader{
			Database: s.name, Mode: "snapshot", Version: snap.Version, Records: count,
		})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(hdr, '\n')); err != nil {
			return err
		}
		if _, err := w.Write(frames); err != nil {
			return err
		}
		if _, err := w.Write(commitFrame(snap.Version)); err != nil {
			return err
		}
		from = snap.Version
	} else {
		hdr, err := json.Marshal(StreamHeader{Database: s.name, Mode: "tail", Version: from})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(hdr, '\n')); err != nil {
			return err
		}
	}
	if o.Flush != nil {
		o.Flush()
	}
	if o.Follower != "" {
		s.AckFollower(o.Follower, from)
	}

	for {
		// Take the change channel before draining: a publish between the
		// drain and the wait then still wakes us.
		ch := s.Changed()
		batches, ok := s.TailSince(from)
		if !ok {
			return fmt.Errorf("store: retention floor passed version %d mid-stream", from)
		}
		for _, b := range batches {
			if _, err := w.Write(b.Frames); err != nil {
				return err
			}
			if _, err := w.Write(commitFrame(b.Version)); err != nil {
				return err
			}
			from = b.Version
			if o.Follower != "" {
				s.AckFollower(o.Follower, from)
			}
			if o.Flush != nil {
				o.Flush()
			}
		}
		if !o.Follow {
			return nil
		}
		if s.IsClosed() {
			return nil
		}
		select {
		case <-ch:
		case <-o.Stop:
			return nil
		}
	}
}

// IsClosed reports whether Close has been called.
func (s *Store) IsClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
