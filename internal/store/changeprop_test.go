package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/schema"
)

// TestChangeBlockCompleteness is the property behind incremental
// maintenance: the Change a store reports for a batch must name every
// block whose content differs between the consecutive snapshots. If a
// query's certain answer flips across a batch, some reported dirty
// block witnesses it — delta re-evaluation keyed off Change.Blocks can
// therefore never miss a flip. The same property is asserted for the
// replica apply path (WAL stream replay, including delete ops), whose
// Changes must match the primary's batch for batch.
func TestChangeBlockCompleteness(t *testing.T) {
	const (
		rounds = 150
		keys   = 6
		values = 4
	)
	rng := rand.New(rand.NewSource(11))

	seed, err := parse.Database("R(k0 | v0)\nS(k0 | v1)\nR(k1 | v2)\n")
	if err != nil {
		t.Fatal(err)
	}
	// Seed through the WAL (not the adopted base) so the replica leg
	// below can replay the whole history from version 0.
	primary := NewMem("prop", nil)
	primary.RegisterFollower("prop-test", 0)
	seedChange, err := primary.ApplyDB(seed)
	if err != nil {
		t.Fatal(err)
	}

	queries := parseQueries(t,
		"R('k0' | 'v0')",
		"R('k2' | y)",
		"S('k1' | x)",
		"R(x | y)",
		"R(x | y), !S(y | x)",
		"R('k3' | x), !S('k3' | x)",
	)

	changes := make(map[uint64]Change)
	primary.SetOnApply(func(c Change) { changes[c.Version] = c })
	snaps := map[uint64]*db.Database{seedChange.Version: primary.Snapshot().DB.Clone()}
	versions := []uint64{seedChange.Version}

	randFact := func() db.Fact {
		rel := "R"
		if rng.Intn(3) == 0 {
			rel = "S"
		}
		return db.F(rel, fmt.Sprintf("k%d", rng.Intn(keys)), fmt.Sprintf("v%d", rng.Intn(values)))
	}
	for i := 0; i < rounds; i++ {
		var c Change
		var err error
		switch rng.Intn(5) {
		case 0: // single delete
			c, err = primary.Delete(randFact())
		case 1: // multi-fact insert batch
			batch := db.New()
			batch.MustDeclare("R", 2, 1)
			batch.MustDeclare("S", 2, 1)
			for j := rng.Intn(4) + 1; j > 0; j-- {
				f := randFact()
				if !batch.Has(f) {
					batch.MustInsert(f)
				}
			}
			c, err = primary.ApplyDB(batch)
		case 2: // multi-fact delete batch
			batch := db.New()
			batch.MustDeclare("R", 2, 1)
			batch.MustDeclare("S", 2, 1)
			for j := rng.Intn(4) + 1; j > 0; j-- {
				f := randFact()
				if !batch.Has(f) {
					batch.MustInsert(f)
				}
			}
			c, err = primary.DeleteDB(batch)
		default: // single insert
			c, err = primary.Insert(randFact())
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if c.Applied == 0 {
			continue
		}
		snaps[c.Version] = primary.Snapshot().DB.Clone()
		versions = append(versions, c.Version)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	if len(versions) < 50 {
		t.Fatalf("only %d effective batches; the mix is degenerate", len(versions))
	}

	// The property, batch by batch.
	for i := 1; i < len(versions); i++ {
		prev, next := snaps[versions[i-1]], snaps[versions[i]]
		c, ok := changes[versions[i]]
		if !ok {
			t.Fatalf("version %d has no reported Change", versions[i])
		}
		reported := blockSet(c.Blocks)
		diff := blockDiff(prev, next)
		for b := range diff {
			if !reported[b] {
				t.Fatalf("v%d: block %s differs between snapshots but is not in Change.Blocks %v",
					versions[i], b, c.Blocks)
			}
		}
		for qi, q := range queries {
			was := mustCertain(t, q, prev)
			now := mustCertain(t, q, next)
			if was == now {
				continue
			}
			// A flip needs a witness: some reported dirty block whose
			// content actually changed.
			witnessed := false
			for b := range diff {
				if reported[b] {
					witnessed = true
					break
				}
			}
			if !witnessed {
				t.Fatalf("v%d: query %d flipped %v→%v with no dirty block witness in %v",
					versions[i], qi, was, now, c.Blocks)
			}
		}
	}

	// Replica leg: replay the whole run through the WAL stream protocol
	// and require identical per-version Changes (delete ops flow through
	// Replica.ApplyStream's op decoding) and an identical final state.
	var buf bytes.Buffer
	if err := primary.ServeStream(&buf, StreamOptions{From: 0}); err != nil {
		t.Fatal(err)
	}
	replica := NewReplica("prop")
	got := make(map[uint64]Change)
	replica.SetOnBatch(func(c Change) { got[c.Version] = c })
	replica.SetOnReset(func(version uint64) {
		t.Fatalf("replica reset at v%d: the stream should have been a pure tail", version)
	})
	if err := replica.ApplyStream(&buf); err != nil {
		t.Fatal(err)
	}
	for v, want := range changes {
		rc, ok := got[v]
		if !ok {
			t.Fatalf("replica never reported v%d", v)
		}
		if !sameBlockSet(want.Blocks, rc.Blocks) {
			t.Fatalf("v%d: primary blocks %v, replica blocks %v", v, want.Blocks, rc.Blocks)
		}
	}
	final := primary.Snapshot().DB
	repl := replica.Store().Snapshot().DB
	if final.Size() != repl.Size() {
		t.Fatalf("replica size %d, primary size %d", repl.Size(), final.Size())
	}
	for _, f := range final.AllFacts() {
		if !repl.Has(f) {
			t.Fatalf("replica lacks %v", f)
		}
	}
}

func parseQueries(t *testing.T, srcs ...string) []schema.Query {
	t.Helper()
	out := make([]schema.Query, len(srcs))
	for i, src := range srcs {
		q, err := parse.Query(src)
		if err != nil {
			t.Fatalf("bad query %q: %v", src, err)
		}
		out[i] = q
	}
	return out
}

func mustCertain(t *testing.T, q schema.Query, d *db.Database) bool {
	t.Helper()
	v, err := core.Certain(q, d, core.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// blockID renders a block as "rel|k1|k2" using the relation's declared
// key arity.
func blockID(rel string, key []string) string {
	return rel + "|" + strings.Join(key, "|")
}

func blockSet(refs []BlockRef) map[string]bool {
	out := make(map[string]bool, len(refs))
	for _, b := range refs {
		out[blockID(b.Rel, b.Key)] = true
	}
	return out
}

func sameBlockSet(a, b []BlockRef) bool {
	sa, sb := blockSet(a), blockSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

// blockDiff returns the blocks whose fact sets differ between two
// snapshots, across all relations of either.
func blockDiff(prev, next *db.Database) map[string]bool {
	out := make(map[string]bool)
	mark := func(from, against *db.Database) {
		for _, rel := range from.RelationNames() {
			r := from.Relation(rel)
			for _, f := range from.Facts(rel) {
				if !against.Has(f) {
					out[blockID(rel, f.Args[:r.Key])] = true
				}
			}
		}
	}
	mark(prev, next)
	mark(next, prev)
	return out
}
