package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"cqa/internal/db"
	"cqa/internal/store"
)

func walSize(t *testing.T, dir, name string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, name+".wal"))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRetentionHoldsForFollower exercises the reclaim path: a
// registered follower pins WAL records past a checkpoint; acking to the
// head releases them.
func TestRetentionHoldsForFollower(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open("d", store.Options{Dir: dir, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Declare("R", 2, 1)
	st.Insert(db.F("R", "a", "1"))
	pin := st.Version()
	st.RegisterFollower("f", pin)

	for i := 0; i < 30; i++ {
		st.Insert(db.F("R", "k", string(rune('a'+i))))
	}
	stats := st.Stats()
	if stats.Checkpoints == 0 {
		t.Fatalf("no checkpoint happened: %+v", stats)
	}
	if stats.TailFloor != pin {
		t.Fatalf("tail floor %d, want follower pin %d", stats.TailFloor, pin)
	}
	// The WAL still holds every record after the pin, even though the
	// checkpoint covers them.
	if batches, ok := st.TailSince(pin); !ok || len(batches) != 30 {
		t.Fatalf("TailSince(pin) = %d batches, ok=%v; want 30", len(batches), ok)
	}
	retained := walSize(t, dir, "d")

	// A restart must preserve the follower's window: the retained
	// records come back from disk.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = store.Open("d", store.Options{Dir: dir, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if batches, ok := st.TailSince(pin); !ok || len(batches) != 30 {
		t.Fatalf("after restart: TailSince(pin) = %d batches, ok=%v; want 30", len(batches), ok)
	}
	st.RegisterFollower("f", pin)

	// Acking to the head releases the hold at the next checkpoint.
	st.AckFollower("f", st.Version())
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stats = st.Stats()
	if stats.TailFloor != stats.Version {
		t.Fatalf("tail floor %d after full ack, want %d", stats.TailFloor, stats.Version)
	}
	if stats.SegmentRecords != 0 {
		t.Fatalf("WAL retains %d records after full ack", stats.SegmentRecords)
	}
	if sz := walSize(t, dir, "d"); sz >= retained {
		t.Fatalf("WAL did not shrink: %d → %d bytes", retained, sz)
	}
	if _, ok := st.TailSince(pin); ok {
		t.Fatal("reclaimed records still claimed streamable")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionEvictsLaggard: a follower lagging beyond MaxFollowerLag
// loses its hold; its next stream request gets a snapshot bootstrap.
func TestRetentionEvictsLaggard(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open("d", store.Options{Dir: dir, CheckpointEvery: 4, MaxFollowerLag: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Declare("R", 2, 1)
	st.RegisterFollower("slow", st.Version())
	for i := 0; i < 40; i++ {
		st.Insert(db.F("R", "k", string(rune('a'+i))))
	}
	stats := st.Stats()
	if stats.Followers != 0 {
		t.Fatalf("laggard not evicted: %+v", stats)
	}
	if _, ok := st.TailSince(1); ok {
		t.Fatal("evicted laggard's window still retained")
	}
	// The unbounded-retention bug this guards against: without eviction
	// and floor advance the WAL would hold all 40 records forever.
	if stats.SegmentRecords > 8 {
		t.Fatalf("WAL retains %d records for an evicted laggard", stats.SegmentRecords)
	}
}

// TestMemTailBounded: a memory-only store with no followers must not
// retain its tail indefinitely.
func TestMemTailBounded(t *testing.T) {
	st, err := store.Open("d", store.Options{CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	st.Declare("R", 2, 1)
	for i := 0; i < 200; i++ {
		st.Insert(db.F("R", "k", string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	if stats := st.Stats(); stats.TailRecords > 17 {
		t.Fatalf("mem tail grew unbounded: %+v", stats)
	}
}
