package store_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/store"
)

// 32 concurrent snapshot readers against a writer loop on one store:
// run under -race (make race covers this package). Readers must always
// observe an internally consistent snapshot — the invariant maintained
// by the writer (every R key has either both or neither of its two
// value facts) can never be seen half-applied.
func TestRaceSnapshotReadersVsWriter(t *testing.T) {
	st := store.NewMem("race", nil)
	if _, err := st.Declare("R", 2, 1); err != nil {
		t.Fatal(err)
	}

	const readers = 32
	const writes = 200
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: for each round, atomically insert a two-fact block, then
	// atomically delete it. Any snapshot must see 0 or 2 facts per key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < writes; i++ {
			key := string(rune('a' + i%8))
			pair := []db.Fact{db.F("R", key, "x"), db.F("R", key, "y")}
			if _, err := st.Insert(pair...); err != nil {
				t.Error(err)
				return
			}
			if _, err := st.Delete(pair...); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for !stop.Load() {
				snap := st.Snapshot()
				if snap.Version < last {
					t.Errorf("version went backwards: %d after %d", snap.Version, last)
					return
				}
				last = snap.Version
				// Torn-write check: block sizes are 0 or 2, never 1.
				snap.DB.Blocks("R", func(b []db.Fact) bool {
					if len(b) != 2 {
						t.Errorf("snapshot v%d sees torn block of %d facts", snap.Version, len(b))
						return false
					}
					return true
				})
				// Exercise the read paths that memoize state.
				_ = snap.DB.ActiveDomain()
				_ = snap.DB.NumRepairs()
				_ = snap.DB.IsConsistent()
				reads.Add(1)
			}
		}()
	}
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers never ran")
	}
	if got := st.Version(); got != 2*writes+1 { // declare + insert/delete pairs
		t.Fatalf("final version = %d, want %d", got, 2*writes+1)
	}
}

// Concurrent writers through a Set: creates, adopts, and mutations from
// many goroutines must be safe.
func TestRaceSetConcurrentUse(t *testing.T) {
	set, err := store.OpenSet(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.CloseAll()
	seed := parse.MustDatabase("R(a | 1)")
	if err := set.Adopt(store.NewMem("shared", seed)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := set.Get("shared")
			for i := 0; i < 50; i++ {
				val := string(rune('0' + g))
				if _, err := st.Insert(db.F("R", "k", val)); err != nil {
					t.Error(err)
					return
				}
				_ = st.Snapshot().DB.Size()
				_ = set.Names()
			}
		}(g)
	}
	wg.Wait()
	if got := set.Get("shared").Snapshot().DB.Size(); got != 9 {
		t.Fatalf("final size = %d, want 9 (seed + 8 distinct values)", got)
	}
}
