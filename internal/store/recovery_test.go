package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/store"
)

// seqFact is the i-th fact of the deterministic write sequence used by
// the recovery tests.
func seqFact(i int) db.Fact {
	return db.F("R", string(rune('a'+i%4)), string(rune('0'+i)))
}

// writeSeq opens a fresh durable store named "k" in dir and applies the
// declare plus n single-fact writes, then abandons the store without
// Close — leaving the files exactly as a SIGKILL would. It returns the
// rendered database after every acknowledged version.
func writeSeq(t *testing.T, dir string, n int) []string {
	t.Helper()
	st, err := store.Open("k", store.Options{Dir: dir, CheckpointEvery: 1 << 30, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	states := []string{st.Snapshot().DB.String()} // empty, pre-declare
	if _, err := st.Declare("R", 2, 1); err != nil {
		t.Fatal(err)
	}
	states = append(states, st.Snapshot().DB.String())
	for i := 0; i < n; i++ {
		if _, err := st.Insert(seqFact(i)); err != nil {
			t.Fatal(err)
		}
		states = append(states, st.Snapshot().DB.String())
	}
	return states
}

// Truncating the WAL mid-record must recover exactly an acknowledged
// prefix: every cut point lands on some previously acknowledged state,
// never on a phantom, and recovery repairs the file so a second open
// agrees.
func TestKillAndRecoverTruncatedWAL(t *testing.T) {
	dir := t.TempDir()
	acked := writeSeq(t, dir, 8)
	valid := make(map[string]bool, len(acked))
	for _, s := range acked {
		valid[s] = true
	}
	walPath := filepath.Join(dir, "k.wal")
	snapPath := filepath.Join(dir, "k.snap")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the log at every 7th byte boundary, which lands both on and
	// between record boundaries.
	for cut := len(full); cut >= 0; cut -= 7 {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open("k", store.Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		got := st.Snapshot().DB.String()
		if !valid[got] {
			t.Fatalf("cut %d: recovered a state never acknowledged:\n%s", cut, got)
		}
		// Recovery truncated the torn tail: reopening the repaired log
		// (bypassing Close, which would checkpoint) reproduces the state.
		repaired, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(repaired) > cut {
			t.Fatalf("cut %d: recovery grew the log to %d bytes", cut, len(repaired))
		}
		st2, err := store.Open("k", store.Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: second open failed: %v", cut, err)
		}
		if got2 := st2.Snapshot().DB.String(); got2 != got {
			t.Fatalf("cut %d: second recovery diverged:\n%s\nvs\n%s", cut, got2, got)
		}
		// Close checkpoints; drop the snapshot so the next (shorter) cut
		// still exercises pure WAL replay.
		st.Close()
		st2.Close()
		os.Remove(snapPath)
	}
}

// The last acknowledged write survives a kill: with Sync on, a write
// whose Insert returned is recovered even though the store was never
// closed.
func TestLastAcknowledgedWriteSurvives(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open("ack", store.Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	st.Declare("R", 2, 1)
	ch, err := st.Insert(db.F("R", "last", "write"))
	if err != nil {
		t.Fatal(err)
	}
	// No Close: the WAL file is abandoned like a SIGKILL would leave it.
	re, err := store.Open("ack", store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Snapshot(); got.Version != ch.Version || !got.DB.Has(db.F("R", "last", "write")) {
		t.Fatalf("acknowledged write lost: recovered v%d\n%s", got.Version, got.DB.String())
	}
	if re.Stats().RecoveredRecords != 2 {
		t.Fatalf("recovered records = %d, want 2", re.Stats().RecoveredRecords)
	}
}

// Corrupting a byte in the tail record must not produce phantom facts:
// the CRC rejects the record and recovery stops at the previous one.
func TestCorruptTailRecordIsDropped(t *testing.T) {
	dir := t.TempDir()
	writeSeq(t, dir, 3)
	walPath := filepath.Join(dir, "k.wal")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-1] ^= 0xFF
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open("k", store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery with corrupt tail failed: %v", err)
	}
	defer st.Close()
	if got := st.Snapshot().DB.Size(); got != 2 {
		t.Fatalf("recovered %d facts, want 2 (corrupt third dropped)", got)
	}
	if st.Snapshot().DB.Has(seqFact(2)) {
		t.Fatal("corrupt record resurrected its fact")
	}
}

// A batch spans several WAL records sharing one version; recovery must
// replay all of them, not just the first per version (regression: the
// replay cutoff was the running version instead of the checkpoint
// version, dropping everything after a batch's first record).
func TestMultiRecordBatchSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open("b", store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seed := parse.MustDatabase("R(a | 1)\nR(a | 2)\nS(z | z)")
	if _, err := st.ApplyDB(seed); err != nil { // declares + inserts, one version
		t.Fatal(err)
	}
	if _, err := st.Insert(db.F("R", "b", "7"), db.F("S", "y", "y")); err != nil {
		t.Fatal(err)
	}
	want := st.Snapshot()
	// No Close: the WAL is the only surviving state, like a SIGKILL.

	st2, err := store.Open("b", store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Snapshot()
	if got.Version != want.Version {
		t.Fatalf("recovered version %d, want %d", got.Version, want.Version)
	}
	if got.DB.String() != want.DB.String() {
		t.Fatalf("recovered database diverged:\n%s\nwant:\n%s", got.DB.String(), want.DB.String())
	}
	if got.DB.Size() != 5 {
		t.Fatalf("recovered %d facts, want 5", got.DB.Size())
	}
}
