package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrExists is returned by Set.Create for a name already in use.
var ErrExists = errors.New("store: database already exists")

// Set is a named collection of stores sharing one data directory and
// one Options. The daemon owns a Set: durable stores are discovered in
// (and created under) Options.Dir, while preloaded read-mostly
// databases can be adopted as memory-only members. Safe for concurrent
// use.
type Set struct {
	opt Options

	mu     sync.Mutex
	stores map[string]*Store
}

// OpenSet opens every store found in opt.Dir (any basename with a .wal
// or .snap file). With opt.Dir == "" the set starts empty and Create
// makes memory-only stores.
func OpenSet(opt Options) (*Set, error) {
	set := &Set{opt: opt, stores: make(map[string]*Store)}
	if opt.Dir == "" {
		return set, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		switch {
		case strings.HasSuffix(n, ".wal"):
			names[strings.TrimSuffix(n, ".wal")] = true
		case strings.HasSuffix(n, ".snap"):
			names[strings.TrimSuffix(n, ".snap")] = true
		}
	}
	for n := range names {
		st, err := Open(n, opt)
		if err != nil {
			set.CloseAll()
			return nil, fmt.Errorf("store: opening %s: %w", n, err)
		}
		set.stores[n] = st
	}
	return set, nil
}

// Get returns the named store, or nil.
func (s *Set) Get(name string) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stores[name]
}

// Names returns the member names, sorted.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.stores))
	for n := range s.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Create opens a fresh store under the set's options (durable when the
// set has a data directory). It fails with ErrExists for a taken name.
func (s *Set) Create(name string) (*Store, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stores[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	st, err := Open(name, s.opt)
	if err != nil {
		return nil, err
	}
	s.stores[name] = st
	return st, nil
}

// Adopt adds an existing store (typically a NewMem wrapping a preloaded
// database) under its own name. It fails with ErrExists for a taken
// name.
func (s *Set) Adopt(st *Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stores[st.Name()]; ok {
		return fmt.Errorf("%w: %s", ErrExists, st.Name())
	}
	s.stores[st.Name()] = st
	return nil
}

// CloseAll closes every member, returning the first error.
func (s *Set) CloseAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, st := range s.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
