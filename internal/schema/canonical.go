package schema

import (
	"sort"
	"strconv"
	"strings"
)

// Signature returns a canonical key for q: two queries have equal
// signatures iff they are identical up to literal order and a consistent
// renaming of variables. Constants, relation names, signatures [n, k],
// and polarity are preserved verbatim. Self-join-freeness makes sorting
// literals by relation name a total order, after which variables are
// numbered by first occurrence; the encoding is unambiguous (fields are
// separated by control characters that cannot occur in parsed input), so
// the query shape is reconstructible from the signature up to variable
// names.
//
// Because CERTAINTY(q) is a Boolean problem, its answer — and the
// classification verdict — is invariant under variable renaming, which is
// what makes Signature a sound cache key for prepared plans.
func (q Query) Signature() string {
	lits := append([]Literal(nil), q.Lits...)
	sort.SliceStable(lits, func(i, j int) bool { return lits[i].Atom.Rel < lits[j].Atom.Rel })
	names := make(map[string]string)
	var b strings.Builder
	for _, l := range lits {
		if l.Neg {
			b.WriteByte('!')
		}
		// Length-prefixed so relation names containing control
		// characters cannot forge encoding structure.
		b.WriteString(strconv.Itoa(len(l.Atom.Rel)))
		b.WriteByte(':')
		b.WriteString(l.Atom.Rel)
		b.WriteByte('\x01')
		b.WriteString(strconv.Itoa(len(l.Atom.Terms)))
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(l.Atom.Key))
		for _, t := range l.Atom.Terms {
			if t.IsVar {
				n, ok := names[t.Name]
				if !ok {
					n = "v" + strconv.Itoa(len(names))
					names[t.Name] = n
				}
				b.WriteByte('\x02')
				b.WriteString(n)
			} else {
				// Length-prefixed so constants containing control
				// characters cannot forge encoding structure.
				b.WriteByte('\x03')
				b.WriteString(strconv.Itoa(len(t.Name)))
				b.WriteByte(':')
				b.WriteString(t.Name)
			}
		}
		b.WriteByte('\x04')
	}
	return b.String()
}
