package schema

import (
	"fmt"
	"strings"
)

// Atom is an R-atom R(s₁,…,sₙ) over a relation with signature [n, k]: the
// first Key positions form the primary key. Following the paper, every
// relation name carries exactly one signature within a query, so the
// signature is stored on the atom itself.
type Atom struct {
	// Rel is the relation name.
	Rel string
	// Key is the number of primary-key positions (1 ≤ Key ≤ len(Terms)).
	Key int
	// Terms are the arguments, key positions first.
	Terms []Term
}

// NewAtom builds an atom; key is the number of leading key positions.
func NewAtom(rel string, key int, terms ...Term) Atom {
	return Atom{Rel: rel, Key: key, Terms: terms}
}

// Arity returns the number of positions of the atom.
func (a Atom) Arity() int { return len(a.Terms) }

// AllKey reports whether the signature is [n, n] (every position is a key
// position). All-key atoms are pivotal in the rewriting: an all-key
// relation can never be inconsistent.
func (a Atom) AllKey() bool { return a.Key == len(a.Terms) }

// SimpleKey reports whether the signature has a single key position.
func (a Atom) SimpleKey() bool { return a.Key == 1 }

// KeyTerms returns the terms in primary-key positions.
func (a Atom) KeyTerms() []Term { return a.Terms[:a.Key] }

// NonKeyTerms returns the terms in non-primary-key positions.
func (a Atom) NonKeyTerms() []Term { return a.Terms[a.Key:] }

// KeyVars returns key(a): the set of variables in key positions.
func (a Atom) KeyVars() VarSet {
	s := make(VarSet)
	for _, t := range a.KeyTerms() {
		if t.IsVar {
			s[t.Name] = true
		}
	}
	return s
}

// Vars returns vars(a): the set of variables occurring anywhere in a.
func (a Atom) Vars() VarSet {
	s := make(VarSet)
	for _, t := range a.Terms {
		if t.IsVar {
			s[t.Name] = true
		}
	}
	return s
}

// NonKeyVars returns vars(a) \ key(a) — note this is the set difference of
// the variable sets, not the variables of non-key positions (a variable may
// occur both in key and non-key positions).
func (a Atom) NonKeyVars() VarSet { return a.Vars().Minus(a.KeyVars()) }

// IsGround reports whether the atom contains no variables (i.e. it is a
// fact pattern).
func (a Atom) IsGround() bool { return a.Vars().Empty() }

// KeyIsGround reports whether every key position holds a constant.
func (a Atom) KeyIsGround() bool { return a.KeyVars().Empty() }

// Substitute returns a copy of the atom with every variable occurring in
// sub replaced by its image. Variables not in sub are left unchanged.
func (a Atom) Substitute(sub map[string]Term) Atom {
	terms := make([]Term, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVar {
			if img, ok := sub[t.Name]; ok {
				terms[i] = img
				continue
			}
		}
		terms[i] = t
	}
	return Atom{Rel: a.Rel, Key: a.Key, Terms: terms}
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || a.Key != b.Key || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

// String renders the atom in the repository's concrete syntax, with a `|`
// separating key from non-key positions: R(x | y). All-key atoms have no
// separator: R(x, y).
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			if i == a.Key {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Literal is an atom or a negated atom.
type Literal struct {
	// Neg reports whether the literal is a negated atom ¬Atom.
	Neg  bool
	Atom Atom
}

// Pos wraps an atom as a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg wraps an atom as a negated literal.
func Neg(a Atom) Literal { return Literal{Neg: true, Atom: a} }

// String renders the literal; negation is written with a leading `!`.
func (l Literal) String() string {
	if l.Neg {
		return "!" + l.Atom.String()
	}
	return l.Atom.String()
}

// Diseq is a disequality ⟨v₁,…,vₗ⟩ ≠ ⟨t₁,…,tₗ⟩ from Definition 6.3: it is
// satisfied when vᵢ ≠ tᵢ for at least one i (a disjunction). In the paper
// the left side is a sequence of distinct variables and the right side a
// sequence of constants; during rewriting the right side may also hold
// variables that are treated as constants, so both sides are general terms.
type Diseq struct {
	Left  []Term
	Right []Term
}

// NewDiseq builds a disequality; both sides must have equal length.
func NewDiseq(left, right []Term) Diseq {
	if len(left) != len(right) {
		panic(fmt.Sprintf("schema: disequality sides have lengths %d and %d", len(left), len(right)))
	}
	return Diseq{Left: left, Right: right}
}

// Vars returns the set of variables occurring on either side.
func (d Diseq) Vars() VarSet {
	s := make(VarSet)
	for _, t := range d.Left {
		if t.IsVar {
			s[t.Name] = true
		}
	}
	for _, t := range d.Right {
		if t.IsVar {
			s[t.Name] = true
		}
	}
	return s
}

// Substitute applies a substitution to both sides.
func (d Diseq) Substitute(sub map[string]Term) Diseq {
	apply := func(ts []Term) []Term {
		out := make([]Term, len(ts))
		for i, t := range ts {
			if t.IsVar {
				if img, ok := sub[t.Name]; ok {
					out[i] = img
					continue
				}
			}
			out[i] = t
		}
		return out
	}
	return Diseq{Left: apply(d.Left), Right: apply(d.Right)}
}

// String renders the disequality as <v1,v2> != <c1,c2>.
func (d Diseq) String() string {
	side := func(ts []Term) string {
		parts := make([]string, len(ts))
		for i, t := range ts {
			parts[i] = t.String()
		}
		return "<" + strings.Join(parts, ",") + ">"
	}
	return side(d.Left) + " != " + side(d.Right)
}
