package schema_test

import (
	"math/rand"
	"testing"

	"cqa/internal/parse"
	"cqa/internal/schema"
)

func sig(t *testing.T, src string) string {
	t.Helper()
	q, err := parse.Query(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Signature()
}

// Alpha-equivalent queries — renamed variables, reordered literals — must
// share a signature; structurally different queries must not.
func TestSignatureEquivalence(t *testing.T) {
	same := [][2]string{
		{"R(x | y), !S(y | x)", "R(a | b), !S(b | a)"},
		{"R(x | y), !S(y | x)", "!S(b | a), R(a | b)"},
		{"R(x | y, 'c')", "R(u | w, 'c')"},
		{"P(x | y), Q(y | z)", "Q(b | c), P(a | b)"},
	}
	for _, pair := range same {
		if sig(t, pair[0]) != sig(t, pair[1]) {
			t.Errorf("signatures differ for alpha-equivalent %q and %q", pair[0], pair[1])
		}
	}
	distinct := [][2]string{
		{"R(x | y)", "R(x, y)"},                      // different key
		{"R(x | y)", "R(x | x)"},                     // variable pattern
		{"R(x | y), !S(y | x)", "R(x | y), S(y | x)"}, // polarity
		{"R(x | 'c')", "R(x | 'd')"},                 // constants verbatim
		{"R(x | y)", "T(x | y)"},                     // relation name
		{"R(x | y), S(x | y)", "R(x | y), S(y | x)"}, // join pattern
	}
	for _, pair := range distinct {
		if sig(t, pair[0]) == sig(t, pair[1]) {
			t.Errorf("signatures collide for distinct %q and %q", pair[0], pair[1])
		}
	}
}

// A signature is stable across parse → print → parse round trips and
// across random literal shuffles with fresh variable names.
func TestSignatureStableUnderRenamingAndShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	queries := []string{
		"R(x | y), !S(y | x)",
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"P0(x, y | z), P1(z | x), !N0(x | y), !N1(z | z)",
	}
	fresh := []string{"m", "n", "o", "p", "q", "r"}
	for _, src := range queries {
		q := parse.MustQuery(src)
		want := q.Signature()
		for trial := 0; trial < 20; trial++ {
			// Rename variables with a random bijection.
			vars := q.Vars().Sorted()
			perm := rng.Perm(len(fresh))
			sub := make(map[string]schema.Term, len(vars))
			for i, v := range vars {
				sub[v] = schema.Var(fresh[perm[i]])
			}
			renamed := q.Substitute(sub)
			// Shuffle the literals.
			lits := append([]schema.Literal(nil), renamed.Lits...)
			rng.Shuffle(len(lits), func(i, j int) { lits[i], lits[j] = lits[j], lits[i] })
			shuffled := schema.NewQuery(lits...)
			if got := shuffled.Signature(); got != want {
				t.Fatalf("%s: signature changed under renaming+shuffle (trial %d)", src, trial)
			}
		}
	}
}
