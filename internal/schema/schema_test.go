package schema_test

import (
	"strings"
	"testing"
	"testing/quick"

	"cqa/internal/schema"
)

func atom(rel string, key int, terms ...schema.Term) schema.Atom {
	return schema.NewAtom(rel, key, terms...)
}

var (
	x = schema.Var("x")
	y = schema.Var("y")
	z = schema.Var("z")
	c = schema.Const("c")
)

func TestTermString(t *testing.T) {
	if got := x.String(); got != "x" {
		t.Errorf("var string = %q", got)
	}
	if got := c.String(); got != "'c'" {
		t.Errorf("const string = %q", got)
	}
}

func TestAtomBasics(t *testing.T) {
	a := atom("R", 1, x, y)
	if a.Arity() != 2 || a.AllKey() || !a.SimpleKey() {
		t.Errorf("signature broken: %+v", a)
	}
	if !a.KeyVars().Equal(schema.NewVarSet("x")) {
		t.Errorf("key vars = %v", a.KeyVars())
	}
	if !a.Vars().Equal(schema.NewVarSet("x", "y")) {
		t.Errorf("vars = %v", a.Vars())
	}
	if !a.NonKeyVars().Equal(schema.NewVarSet("y")) {
		t.Errorf("non-key vars = %v", a.NonKeyVars())
	}
	if got := a.String(); got != "R(x | y)" {
		t.Errorf("string = %q", got)
	}
	b := atom("R", 2, x, y)
	if !b.AllKey() {
		t.Error("R(x,y) with key 2 should be all-key")
	}
	if got := b.String(); got != "R(x, y)" {
		t.Errorf("all-key string = %q", got)
	}
}

// A variable occurring in both key and non-key positions: NonKeyVars is
// the set difference, per the paper's vars(F) \ key(F).
func TestNonKeyVarsSetDifference(t *testing.T) {
	a := atom("R", 1, x, x, y)
	if !a.NonKeyVars().Equal(schema.NewVarSet("y")) {
		t.Errorf("non-key vars = %v, want {y}", a.NonKeyVars())
	}
}

func TestAtomSubstitute(t *testing.T) {
	a := atom("R", 1, x, y)
	got := a.Substitute(map[string]schema.Term{"x": c})
	want := atom("R", 1, c, y)
	if !got.Equal(want) {
		t.Errorf("substitute = %v, want %v", got, want)
	}
	// The original atom must be unchanged.
	if !a.Equal(atom("R", 1, x, y)) {
		t.Error("substitute mutated the receiver")
	}
}

func TestQueryPartition(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y)),
		schema.Neg(atom("S", 1, x, y)),
		schema.Neg(atom("T", 1, y, x)),
	)
	if len(q.Positive()) != 1 || len(q.Negated()) != 2 {
		t.Fatalf("partition broken: %v / %v", q.Positive(), q.Negated())
	}
	if !q.IsNegated("S") || q.IsNegated("R") {
		t.Error("IsNegated broken")
	}
	if _, ok := q.AtomByRel("T"); !ok {
		t.Error("AtomByRel(T) missed")
	}
	if _, ok := q.AtomByRel("U"); ok {
		t.Error("AtomByRel(U) found a ghost")
	}
}

func TestValidateSelfJoin(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y)),
		schema.Pos(atom("R", 1, y, x)),
	)
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "self-join") {
		t.Errorf("err = %v, want self-join error", err)
	}
}

func TestValidateSafety(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y)),
		schema.Neg(atom("S", 1, z)),
	)
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "safety") {
		t.Errorf("err = %v, want safety error", err)
	}
}

func TestValidateSignature(t *testing.T) {
	q := schema.NewQuery(schema.Pos(schema.Atom{Rel: "R", Key: 0, Terms: []schema.Term{x}}))
	if err := q.Validate(); err == nil {
		t.Error("key 0 should be invalid")
	}
	q = schema.NewQuery(schema.Pos(schema.Atom{Rel: "R", Key: 2, Terms: []schema.Term{x}}))
	if err := q.Validate(); err == nil {
		t.Error("key > arity should be invalid")
	}
	q = schema.NewQuery(schema.Pos(schema.Atom{Rel: "R"}))
	if err := q.Validate(); err == nil {
		t.Error("arity 0 should be invalid")
	}
}

// Example 3.2: the first query is not weakly-guarded; the second is
// weakly-guarded but not guarded.
func TestExample32Guardedness(t *testing.T) {
	q1 := schema.NewQuery(
		schema.Pos(atom("X", 1, x)),
		schema.Pos(atom("Y", 1, y)),
		schema.Neg(atom("R", 1, x, y)),
		schema.Neg(atom("S", 1, y, x)),
	)
	if q1.WeaklyGuarded() {
		t.Error("q1 of Example 3.2 should not be weakly-guarded")
	}

	u := schema.Var("u")
	w := schema.Var("w")
	q2 := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y, z, u)),
		schema.Pos(atom("S", 1, y, w, z)),
		schema.Pos(atom("T", 1, x, u, w)),
		schema.Neg(atom("N", 1, x, y, z, u, w)),
	)
	if !q2.WeaklyGuarded() {
		t.Error("q2 of Example 3.2 should be weakly-guarded")
	}
	if q2.Guarded() {
		t.Error("q2 of Example 3.2 should not be guarded")
	}
}

func TestGuardedImpliesWeaklyGuarded(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y)),
		schema.Neg(atom("S", 1, y, x)),
	)
	if !q.Guarded() || !q.WeaklyGuarded() {
		t.Error("guarded query misclassified")
	}
}

func TestQueryWithout(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y)),
		schema.Neg(atom("S", 1, y, x)),
	)
	q2 := q.Without("S")
	if len(q2.Lits) != 1 || q2.Lits[0].Atom.Rel != "R" {
		t.Errorf("Without = %v", q2)
	}
	// The original is untouched.
	if len(q.Lits) != 2 {
		t.Error("Without mutated the receiver")
	}
}

func TestQuerySubstituteAndString(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, y)),
		schema.Neg(atom("S", 1, y, x)),
	)
	got := q.Substitute(map[string]schema.Term{"y": c})
	if got.String() != "R(x | 'c'), !S('c' | x)" {
		t.Errorf("substituted string = %q", got.String())
	}
}

func TestDiseq(t *testing.T) {
	d := schema.NewDiseq([]schema.Term{x, y}, []schema.Term{c, c})
	if !d.Vars().Equal(schema.NewVarSet("x", "y")) {
		t.Errorf("diseq vars = %v", d.Vars())
	}
	d2 := d.Substitute(map[string]schema.Term{"x": schema.Const("d")})
	if d2.Left[0].IsVar {
		t.Error("substitute did not reach diseq left side")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched diseq lengths should panic")
		}
	}()
	schema.NewDiseq([]schema.Term{x}, []schema.Term{})
}

func TestExtQueryWeaklyGuarded(t *testing.T) {
	q := schema.NewQuery(schema.Pos(atom("R", 1, x, y)), schema.Pos(atom("T", 1, y, z)))
	e := schema.Ext(q).WithDiseq(schema.NewDiseq([]schema.Term{x, y}, []schema.Term{c, c}))
	if !e.WeaklyGuarded() {
		t.Error("x,y co-occur in R; diseq should be weakly-guarded")
	}
	e2 := schema.Ext(q).WithDiseq(schema.NewDiseq([]schema.Term{x, z}, []schema.Term{c, c}))
	if e2.WeaklyGuarded() {
		t.Error("x,z do not co-occur; diseq should not be weakly-guarded")
	}
}

// VarSet laws, property-based.
func TestVarSetProperties(t *testing.T) {
	mk := func(names []string) schema.VarSet {
		s := make(schema.VarSet)
		for _, n := range names {
			if n != "" {
				s.Add(n)
			}
		}
		return s
	}
	// Union is commutative and contains both operands.
	err := quick.Check(func(a, b []string) bool {
		sa, sb := mk(a), mk(b)
		u1, u2 := sa.Union(sb), sb.Union(sa)
		return u1.Equal(u2) && sa.SubsetOf(u1) && sb.SubsetOf(u1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
	// Minus removes exactly the intersection.
	err = quick.Check(func(a, b []string) bool {
		sa, sb := mk(a), mk(b)
		m := sa.Minus(sb)
		return m.Intersect(sb).Empty() && m.Union(sa.Intersect(sb)).Equal(sa)
	}, nil)
	if err != nil {
		t.Error(err)
	}
	// Copy is independent.
	s := mk([]string{"a", "b"})
	cp := s.Copy()
	cp.Add("c")
	if s.Has("c") {
		t.Error("Copy is aliased")
	}
}

func TestVarSetSortedString(t *testing.T) {
	s := schema.NewVarSet("b", "a")
	if got := s.String(); got != "{a, b}" {
		t.Errorf("set string = %q", got)
	}
}

func TestQueryCloneDeep(t *testing.T) {
	q := schema.NewQuery(schema.Pos(atom("R", 1, x, y)))
	cl := q.Clone()
	cl.Lits[0].Atom.Terms[0] = c
	if !q.Lits[0].Atom.Terms[0].IsVar {
		t.Error("Clone shares term storage")
	}
}

func TestConstants(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(atom("R", 1, x, c)),
		schema.Neg(atom("S", 1, c, schema.Const("d"))),
	)
	consts := q.Constants()
	if !consts["c"] || !consts["d"] || len(consts) != 2 {
		t.Errorf("constants = %v", consts)
	}
}
