package schema

import (
	"errors"
	"fmt"
	"strings"
)

// Query is a (candidate) query in sjfBCQ¬: a set of literals, kept in a
// stable slice order for deterministic output. Construction does not
// validate; call Validate to check self-join-freeness and safety.
type Query struct {
	Lits []Literal
}

// NewQuery builds a query from literals.
func NewQuery(lits ...Literal) Query { return Query{Lits: lits} }

// Positive returns q⁺, the non-negated atoms in query order.
func (q Query) Positive() []Atom {
	var out []Atom
	for _, l := range q.Lits {
		if !l.Neg {
			out = append(out, l.Atom)
		}
	}
	return out
}

// Negated returns q⁻, the atoms whose negation appears in q, in query order.
func (q Query) Negated() []Atom {
	var out []Atom
	for _, l := range q.Lits {
		if l.Neg {
			out = append(out, l.Atom)
		}
	}
	return out
}

// Atoms returns q⁺ ∪ q⁻ in query order.
func (q Query) Atoms() []Atom {
	out := make([]Atom, len(q.Lits))
	for i, l := range q.Lits {
		out[i] = l.Atom
	}
	return out
}

// AtomByRel returns the atom with the given relation name and whether the
// query contains one. Self-join-freeness makes the answer unique.
func (q Query) AtomByRel(rel string) (Atom, bool) {
	for _, l := range q.Lits {
		if l.Atom.Rel == rel {
			return l.Atom, true
		}
	}
	return Atom{}, false
}

// IsNegated reports whether the atom with the given relation name occurs
// negated. The result is meaningful only for relation names present in q.
func (q Query) IsNegated(rel string) bool {
	for _, l := range q.Lits {
		if l.Atom.Rel == rel {
			return l.Neg
		}
	}
	return false
}

// Vars returns vars(q).
func (q Query) Vars() VarSet {
	s := make(VarSet)
	for _, l := range q.Lits {
		s.AddAll(l.Atom.Vars())
	}
	return s
}

// PositiveVars returns the union of vars(P) for P ∈ q⁺.
func (q Query) PositiveVars() VarSet {
	s := make(VarSet)
	for _, l := range q.Lits {
		if !l.Neg {
			s.AddAll(l.Atom.Vars())
		}
	}
	return s
}

// Constants returns the set of constant values occurring in q.
func (q Query) Constants() map[string]bool {
	s := make(map[string]bool)
	for _, l := range q.Lits {
		for _, t := range l.Atom.Terms {
			if !t.IsVar {
				s[t.Name] = true
			}
		}
	}
	return s
}

// Substitute applies a substitution to every literal, returning the query
// q_[x⃗ ↦ c⃗] of the paper.
func (q Query) Substitute(sub map[string]Term) Query {
	lits := make([]Literal, len(q.Lits))
	for i, l := range q.Lits {
		lits[i] = Literal{Neg: l.Neg, Atom: l.Atom.Substitute(sub)}
	}
	return Query{Lits: lits}
}

// Without returns a copy of q with the literal for the given relation name
// removed (both F and ¬F, though self-join-freeness means at most one
// exists).
func (q Query) Without(rel string) Query {
	var lits []Literal
	for _, l := range q.Lits {
		if l.Atom.Rel != rel {
			lits = append(lits, l)
		}
	}
	return Query{Lits: lits}
}

// Clone returns a deep copy of the query.
func (q Query) Clone() Query {
	lits := make([]Literal, len(q.Lits))
	for i, l := range q.Lits {
		terms := make([]Term, len(l.Atom.Terms))
		copy(terms, l.Atom.Terms)
		lits[i] = Literal{Neg: l.Neg, Atom: Atom{Rel: l.Atom.Rel, Key: l.Atom.Key, Terms: terms}}
	}
	return Query{Lits: lits}
}

// String renders the query as a comma-separated list of literals.
func (q Query) String() string {
	parts := make([]string, len(q.Lits))
	for i, l := range q.Lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ")
}

// Validate checks that q is a well-formed member of sjfBCQ¬:
//
//   - every atom has arity ≥ 1 and 1 ≤ key ≤ arity;
//   - no two literals share a relation name (self-join-freeness);
//   - every variable of a negated atom occurs in a non-negated atom
//     (safety).
func (q Query) Validate() error {
	seen := make(map[string]bool)
	for _, l := range q.Lits {
		a := l.Atom
		if a.Rel == "" {
			return errors.New("schema: atom with empty relation name")
		}
		if len(a.Terms) == 0 {
			return fmt.Errorf("schema: atom %s has arity 0", a.Rel)
		}
		if a.Key < 1 || a.Key > len(a.Terms) {
			return fmt.Errorf("schema: atom %s has invalid signature [%d, %d]", a.Rel, len(a.Terms), a.Key)
		}
		if seen[a.Rel] {
			return fmt.Errorf("schema: relation %s occurs twice (self-join)", a.Rel)
		}
		seen[a.Rel] = true
	}
	pos := q.PositiveVars()
	for _, n := range q.Negated() {
		if !n.Vars().SubsetOf(pos) {
			return fmt.Errorf("schema: negated atom %s violates safety: variables %s do not all occur in a non-negated atom",
				n, n.Vars().Minus(pos))
		}
	}
	return nil
}

// coveredByPositive reports whether variables x and y occur together in
// some non-negated atom of q. When x == y it reports whether x occurs in a
// non-negated atom at all.
func (q Query) coveredByPositive(x, y string) bool {
	for _, p := range q.Positive() {
		vars := p.Vars()
		if vars[x] && vars[y] {
			return true
		}
	}
	return false
}

// WeaklyGuarded reports whether negation in q is weakly-guarded: for every
// N ∈ q⁻ and all x, y ∈ vars(N), some P ∈ q⁺ has both x and y.
func (q Query) WeaklyGuarded() bool {
	for _, n := range q.Negated() {
		vars := n.Vars().Sorted()
		for i, x := range vars {
			for _, y := range vars[i:] {
				if !q.coveredByPositive(x, y) {
					return false
				}
			}
		}
	}
	return true
}

// Guarded reports whether negation in q is guarded: for every N ∈ q⁻ there
// is a P ∈ q⁺ with vars(N) ⊆ vars(P). Guarded implies weakly-guarded.
func (q Query) Guarded() bool {
	for _, n := range q.Negated() {
		nv := n.Vars()
		ok := false
		for _, p := range q.Positive() {
			if nv.SubsetOf(p.Vars()) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ExtQuery is a query in sjfBCQ¬≠ (Definition 6.3): a query plus a set of
// disequalities. The plain Query embeds as an ExtQuery with no
// disequalities.
type ExtQuery struct {
	Query
	Diseqs []Diseq
}

// Ext wraps a plain query as an extended query.
func Ext(q Query) ExtQuery { return ExtQuery{Query: q} }

// WithDiseq returns a copy of the extended query with one more
// disequality.
func (e ExtQuery) WithDiseq(d Diseq) ExtQuery {
	ds := make([]Diseq, len(e.Diseqs)+1)
	copy(ds, e.Diseqs)
	ds[len(e.Diseqs)] = d
	return ExtQuery{Query: e.Query, Diseqs: ds}
}

// Substitute applies a substitution to the query part and all
// disequalities.
func (e ExtQuery) Substitute(sub map[string]Term) ExtQuery {
	ds := make([]Diseq, len(e.Diseqs))
	for i, d := range e.Diseqs {
		ds[i] = d.Substitute(sub)
	}
	return ExtQuery{Query: e.Query.Substitute(sub), Diseqs: ds}
}

// Vars returns the variables of the query part and of all disequalities.
func (e ExtQuery) Vars() VarSet {
	s := e.Query.Vars()
	for _, d := range e.Diseqs {
		s.AddAll(d.Vars())
	}
	return s
}

// WeaklyGuarded extends weak-guardedness to disequalities per
// Definition 6.3: every pair of left-hand-side variables of a disequality
// must co-occur in a non-negated atom.
func (e ExtQuery) WeaklyGuarded() bool {
	if !e.Query.WeaklyGuarded() {
		return false
	}
	for _, d := range e.Diseqs {
		left := make(VarSet)
		for _, t := range d.Left {
			if t.IsVar {
				left[t.Name] = true
			}
		}
		vars := left.Sorted()
		for i, x := range vars {
			for _, y := range vars[i:] {
				if !e.coveredByPositive(x, y) {
					return false
				}
			}
		}
	}
	return true
}

// String renders the extended query.
func (e ExtQuery) String() string {
	s := e.Query.String()
	for _, d := range e.Diseqs {
		if s != "" {
			s += ", "
		}
		s += d.String()
	}
	return s
}
