// Package schema defines the syntactic objects of the paper: terms, atoms
// with primary-key signatures, and self-join-free Boolean conjunctive
// queries with negated atoms (the class sjfBCQ¬ of Koutris & Wijsen,
// PODS 2018), together with the validity notions used throughout — safety,
// self-join-freeness, guarded and weakly-guarded negation — and the
// extension sjfBCQ¬≠ with disequalities (Definition 6.3).
package schema

import (
	"sort"
	"strings"
)

// Term is a variable or a constant. The zero value is the empty constant.
type Term struct {
	// IsVar reports whether the term is a variable; otherwise it is a
	// constant.
	IsVar bool
	// Name is the variable name or the constant value.
	Name string
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{IsVar: true, Name: name} }

// Const returns a constant term with the given value.
func Const(value string) Term { return Term{IsVar: false, Name: value} }

// String renders the term. Constants are single-quoted so that they are
// never confused with variables.
func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	return "'" + t.Name + "'"
}

// VarSet is a set of variable names.
type VarSet map[string]bool

// NewVarSet builds a set from the given names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Has reports membership.
func (s VarSet) Has(name string) bool { return s[name] }

// Add inserts a name and returns the set for chaining.
func (s VarSet) Add(name string) VarSet {
	s[name] = true
	return s
}

// AddAll inserts every element of other.
func (s VarSet) AddAll(other VarSet) VarSet {
	for n := range other {
		s[n] = true
	}
	return s
}

// Copy returns an independent copy of the set.
func (s VarSet) Copy() VarSet {
	c := make(VarSet, len(s))
	for n := range s {
		c[n] = true
	}
	return c
}

// Union returns a new set containing the elements of both sets.
func (s VarSet) Union(other VarSet) VarSet { return s.Copy().AddAll(other) }

// Intersect returns a new set with the elements common to both sets.
func (s VarSet) Intersect(other VarSet) VarSet {
	c := make(VarSet)
	for n := range s {
		if other[n] {
			c[n] = true
		}
	}
	return c
}

// Minus returns a new set with the elements of s not in other.
func (s VarSet) Minus(other VarSet) VarSet {
	c := make(VarSet)
	for n := range s {
		if !other[n] {
			c[n] = true
		}
	}
	return c
}

// SubsetOf reports whether every element of s belongs to other.
func (s VarSet) SubsetOf(other VarSet) bool {
	for n := range s {
		if !other[n] {
			return false
		}
	}
	return true
}

// Equal reports whether both sets have the same elements.
func (s VarSet) Equal(other VarSet) bool {
	return len(s) == len(other) && s.SubsetOf(other)
}

// Empty reports whether the set has no elements.
func (s VarSet) Empty() bool { return len(s) == 0 }

// Sorted returns the elements in lexicographic order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the set as {a, b, c}.
func (s VarSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}
