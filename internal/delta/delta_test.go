package delta

import (
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/store"
)

// harness wires one memory store into a Manager the way the server
// does: OnApply captures the (change, snapshot) pair synchronously.
type harness struct {
	t   *testing.T
	st  *store.Store
	mgr *Manager
}

func newHarness(t *testing.T, seed string, opt Options) *harness {
	t.Helper()
	base, err := parse.Database(seed)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, st: store.NewMem("test", base), mgr: New(opt)}
	h.st.SetOnApply(func(c store.Change) {
		snap := h.st.Snapshot()
		h.mgr.Apply("test", c, func() *db.Database { return snap.DB })
	})
	t.Cleanup(h.mgr.Close)
	return h
}

func (h *harness) watch(query string) (*Watch, State) {
	h.t.Helper()
	q, err := parse.Query(query)
	if err != nil {
		h.t.Fatal(err)
	}
	prep, err := core.Prepare(q)
	if err != nil {
		h.t.Fatal(err)
	}
	snap := h.st.Snapshot()
	w, state, err := h.mgr.Register("test", query, prep, Snapshot{DB: snap.DB, Version: snap.Version})
	if err != nil {
		h.t.Fatal(err)
	}
	return w, state
}

func (h *harness) insert(rel, key, val string) store.Change {
	h.t.Helper()
	c, err := h.st.Insert(db.F(rel, key, val))
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

func (h *harness) delete(rel, key, val string) store.Change {
	h.t.Helper()
	c, err := h.st.Delete(db.F(rel, key, val))
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

// TestDeltaSkipFlip is the core behavior check: irrelevant relations
// and untouched blocks skip, support hits re-evaluate, and verdict
// flips publish exact events.
func TestDeltaSkipFlip(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\nR(k9 | v0)\nR(k9 | v1)\nR(k5 | v1)\nT(t0 | u0)\n", Options{})
	w, state := h.watch("R('k0' | 'v0')")
	if !state.Verdict {
		t.Fatalf("initial verdict false, want true (block k0 is {v0})")
	}

	// A write to an unmentioned relation must skip.
	h.insert("T", "t1", "u1")
	h.mgr.Quiesce("test")
	skipped, reevaled, flipped := h.mgr.Counters()
	if skipped != 1 || reevaled != 0 || flipped != 0 {
		t.Fatalf("after T write: counters=(%d,%d,%d), want (1,0,0)", skipped, reevaled, flipped)
	}

	// Deleting R(k9|v1) dirties only block k9: outside the support, and
	// its column values (k9, v1) survive elsewhere in R, so candidate
	// sets are unchanged — the registration must skip.
	h.delete("R", "k9", "v1")
	h.mgr.Quiesce("test")
	skipped, reevaled, flipped = h.mgr.Counters()
	if skipped != 2 || reevaled != 0 || flipped != 0 {
		t.Fatalf("after k9 delete: counters=(%d,%d,%d), want (2,0,0)", skipped, reevaled, flipped)
	}
	select {
	case ev := <-w.Events():
		t.Fatalf("unexpected event %+v", ev)
	default:
	}

	// Writing into block k0 hits the support and flips the verdict.
	c := h.insert("R", "k0", "v1")
	h.mgr.Quiesce("test")
	_, _, flipped = h.mgr.Counters()
	if flipped != 1 {
		t.Fatalf("flipped=%d, want 1", flipped)
	}
	ev := <-w.Events()
	if ev.Version != c.Version || !ev.From || ev.To || ev.Resync {
		t.Fatalf("flip event %+v, want version=%d from=true to=false", ev, c.Version)
	}
	if len(ev.Blocks) != 1 || ev.Blocks[0] != "R(k0)" {
		t.Fatalf("trigger blocks %v, want [R(k0)]", ev.Blocks)
	}
	if st := w.State(); st.Version != c.Version || st.Verdict {
		t.Fatalf("state %+v, want version=%d verdict=false", st, c.Version)
	}
}

// TestDeltaNewValueForcesReeval: a dirty block carrying a value the
// recorded view never interned must re-evaluate even though its hash
// cannot occur in the support (the rule that makes synthetic constant
// ids safe).
func TestDeltaNewValueForcesReeval(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\n", Options{})
	w, state := h.watch("R('fresh' | y)")
	if state.Verdict {
		t.Fatalf("initial verdict true, want false ('fresh' has no block)")
	}
	c := h.insert("R", "fresh", "v0")
	h.mgr.Quiesce("test")
	ev := <-w.Events()
	if ev.Version != c.Version || ev.From || !ev.To {
		t.Fatalf("flip event %+v, want version=%d false→true", ev, c.Version)
	}
}

// TestDeltaNonFOFallback: queries without a compiled rewriting degrade
// to relation-level skipping but stay exact.
func TestDeltaNonFOFallback(t *testing.T) {
	// q1-shaped mutual negation is the paper's canonical non-FO query.
	h := newHarness(t, "R(a | b)\nS(b | a)\nT(t0 | u0)\n", Options{})
	w, state := h.watch("R(x | y), !S(y | x)")
	_ = state
	h.insert("T", "t9", "u9")
	h.mgr.Quiesce("test")
	skipped, _, _ := h.mgr.Counters()
	if skipped != 1 {
		t.Fatalf("non-FO watch did not skip an irrelevant write (skipped=%d)", skipped)
	}
	h.insert("S", "b", "c")
	h.mgr.Quiesce("test")
	skipped2, reevaled, flipped := h.mgr.Counters()
	if skipped2 != skipped || reevaled+flipped == 0 {
		t.Fatalf("non-FO watch did not re-evaluate on a mentioned-relation write: (%d,%d,%d)", skipped2, reevaled, flipped)
	}
	_ = w
}

// TestDeltaSlowConsumerResync: a full event queue sheds flips and the
// next deliverable event arrives as a Resync state event.
func TestDeltaSlowConsumerResync(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\n", Options{WatchBuffer: 1})
	w, _ := h.watch("R('k0' | 'v0')")
	// Three flips without draining: true→false, false→true, true→false.
	h.insert("R", "k0", "v1")
	h.delete("R", "k0", "v1")
	h.insert("R", "k0", "v1")
	h.mgr.Quiesce("test")

	ev1 := <-w.Events()
	if ev1.Resync || !ev1.From || ev1.To {
		t.Fatalf("first event %+v, want plain flip true→false", ev1)
	}
	// The second flip was shed (queue capacity 1); the third must have
	// arrived as a resync carrying the latest verdict.
	h.insert("R", "k0", "v2")
	h.mgr.Quiesce("test")
	ev2 := <-w.Events()
	if !ev2.Resync {
		t.Fatalf("second delivered event %+v, want Resync after shedding", ev2)
	}
	if ev2.To != false {
		t.Fatalf("resync verdict %v, want false", ev2.To)
	}
}

// TestDeltaUnregisterCloses: unregistering closes the event channel.
func TestDeltaUnregisterCloses(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\n", Options{})
	w, _ := h.watch("R('k0' | y)")
	h.mgr.Unregister(w)
	h.mgr.Quiesce("test")
	if _, ok := <-w.Events(); ok {
		t.Fatalf("events channel still open after Unregister")
	}
}

// TestDeltaDropDB closes every watch.
func TestDeltaDropDB(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\n", Options{})
	w, _ := h.watch("R('k0' | y)")
	h.mgr.DropDB("test")
	if _, ok := <-w.Events(); ok {
		t.Fatalf("events channel still open after DropDB")
	}
	// A dropped database can be watched again (fresh state).
	_, state := h.watch("R('k0' | y)")
	if !state.Verdict {
		t.Fatalf("re-registered watch verdict false, want true")
	}
}
