package delta

import (
	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/store"
)

// changeCtx is the per-change decision context shared by every
// registration of one database: resolved dirty-block ids and hashes,
// the interned views of the previous and current snapshots, and the
// memoized per-(block, column) candidate-set checks. Everything is
// computed lazily — a change against a database whose registrations
// all skip on the relation test never interns anything.
type changeCtx struct {
	c    store.Change
	prev *db.Database
	cur  *db.Database

	inited  bool
	chainOK bool // prev and cur share one dictionary chain
	prevIx  *db.Interned
	curIx   *db.Interned

	keys   [][]int32 // per dirty block: resolved key ids (nil = unresolvable)
	maxID  []int32   // per dirty block: max key id
	hashes []uint64  // per dirty block: fo block hash

	candMemo map[candKey]bool
}

type candKey struct {
	block int
	col   int
}

// init resolves the interned views and dirty-block ids once. The
// worker processes changes strictly in order, so chaining cur's
// dictionary off prev's here (when the store's own seeding raced past
// it) keeps ids stable for every later change and support set.
func (cc *changeCtx) init() {
	if cc.inited {
		return
	}
	cc.inited = true
	if cc.prev == nil {
		return
	}
	cc.prevIx = cc.prev.Interned()
	cc.curIx = cc.cur.InternedIfBuilt()
	if cc.curIx == nil {
		ix := db.InternNext(cc.prevIx, cc.cur)
		cc.cur.SeedInterned(ix)
		cc.curIx = ix
	}
	cc.chainOK = cc.prevIx.SameDict(cc.curIx)
	if !cc.chainOK {
		return
	}
	cc.keys = make([][]int32, len(cc.c.Blocks))
	cc.maxID = make([]int32, len(cc.c.Blocks))
	cc.hashes = make([]uint64, len(cc.c.Blocks))
	for i, b := range cc.c.Blocks {
		ids := make([]int32, len(b.Key))
		max := int32(-1)
		ok := true
		for j, v := range b.Key {
			id, found := cc.curIx.ID(v)
			if !found {
				ok = false
				break
			}
			ids[j] = id
			if id > max {
				max = id
			}
		}
		if !ok {
			cc.keys[i] = nil
			continue
		}
		cc.keys[i] = ids
		cc.maxID[i] = max
		cc.hashes[i] = fo.BlockHashIDs(fo.BlockSeed(b.Rel), ids)
	}
}

// decide reports whether g must be re-evaluated for this change, plus
// the dirty blocks of g's relations (the flip event's trigger blocks).
// A false result is a proof that g's verdict is unchanged — see the
// package comment for the replay argument each rule discharges.
func (cc *changeCtx) decide(g *regGroup) (reeval bool, triggers []store.BlockRef) {
	touched := false
	for _, r := range cc.c.Rels {
		if g.rels[r] {
			touched = true
			break
		}
	}
	if !touched {
		// Rule 0: no relation the query mentions changed.
		return false, nil
	}
	relBlocks := make(map[string]bool)
	for _, b := range cc.c.Blocks {
		if g.rels[b.Rel] {
			triggers = append(triggers, b)
			relBlocks[b.Rel] = true
		}
	}
	if g.sup == nil {
		// Relation-level mode: no support recorded (non-FO query,
		// compile fallback, or domain-quantifying program).
		return true, triggers
	}
	cc.init()
	if cc.prev == nil || !cc.chainOK || !g.sup.Ix.SameDict(cc.curIx) {
		// The dictionary chain broke somewhere between the recorded run
		// and this version; recorded ids are not comparable.
		return true, triggers
	}
	for _, r := range g.sup.AbsentRels {
		if relBlocks[r] {
			// The recorded run saw no relation at all here; any write to
			// it changes probe answers from the constant false.
			return true, triggers
		}
	}
	for _, r := range cc.c.Rels {
		if g.rels[r] && !relBlocks[r] {
			// A watched relation is reported touched without block
			// detail; nothing to intersect against.
			return true, triggers
		}
	}
	supN := g.sup.Ix.NumIDs()
	for i, b := range cc.c.Blocks {
		if !g.rels[b.Rel] {
			continue
		}
		ids := cc.keys[i]
		if ids == nil || cc.maxID[i] >= supN {
			// Rule 1: the block carries a value the recorded view did
			// not know. Unresolved constants got synthetic ids in the
			// recorded run, so hashes are not comparable — and a fresh
			// value can extend candidate lists.
			return true, triggers
		}
		if g.sup.Holds(cc.hashes[i]) {
			// Rule 3: the recorded run probed this block; its answer may
			// have changed.
			return true, triggers
		}
		for _, col := range g.candCols[b.Rel] {
			if cc.candChanged(i, b.Rel, ids, col) {
				// Rule 2: the block's delta changes the value set of a
				// candidate-source column.
				return true, triggers
			}
		}
	}
	return false, nil
}

// candChanged reports whether dirty block i's row delta changes the
// distinct-value set of column col of rel — i.e. adds a value absent
// from the previous posting list or retires a value absent from the
// current one. Memoized per (block, column) across registrations.
func (cc *changeCtx) candChanged(i int, rel string, key []int32, col int) bool {
	k := candKey{block: i, col: col}
	if cc.candMemo == nil {
		cc.candMemo = make(map[candKey]bool)
	}
	if v, ok := cc.candMemo[k]; ok {
		return v
	}
	changed := cc.candChangedSlow(rel, key, col)
	cc.candMemo[k] = changed
	return changed
}

func (cc *changeCtx) candChangedSlow(rel string, key []int32, col int) bool {
	prevRel := cc.prevIx.Relation(rel)
	curRel := cc.curIx.Relation(rel)
	prevVals := blockColVals(prevRel, key, col)
	curVals := blockColVals(curRel, key, col)
	for v := range curVals {
		if !prevVals[v] && (prevRel == nil || !prevRel.PostingHas(col, v)) {
			return true // value entered the column's distinct set
		}
	}
	for v := range prevVals {
		if !curVals[v] && (curRel == nil || !curRel.PostingHas(col, v)) {
			return true // value left the column's distinct set
		}
	}
	return false
}

// blockColVals collects the distinct values of column col within one
// block of r.
func blockColVals(r *db.InternedRelation, key []int32, col int) map[int32]bool {
	if r == nil || col >= r.Arity {
		return nil
	}
	rows := r.BlockRows(key)
	if len(rows) == 0 {
		return nil
	}
	vals := make(map[int32]bool, len(rows))
	for _, row := range rows {
		vals[r.Row(int(row))[col]] = true
	}
	return vals
}
