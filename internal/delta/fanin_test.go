package delta

import (
	"sync"
	"testing"
)

// Identical subscriptions share one registration group: one decision
// per change, every member gets the flip event, and the fan-in counts
// track joins and leaves.
func TestDeltaFanInShares(t *testing.T) {
	var mu sync.Mutex
	var lastW, lastG int
	h := newHarness(t, "R(k0 | v0)\nT(t0 | u0)\n", Options{
		OnFanin: func(watches, groups int) {
			mu.Lock()
			lastW, lastG = watches, groups
			mu.Unlock()
		},
	})

	w1, s1 := h.watch("R(x | y), !T(x | y)")
	w2, s2 := h.watch("R(x | y), !T(x | y)") // same signature: joins w1's group
	w3, _ := h.watch("T(x | y)")             // its own group

	if s1.Verdict != s2.Verdict || s1.Version != s2.Version {
		t.Fatalf("joined watch state %+v != leader state %+v", s2, s1)
	}
	if w, g := h.mgr.FanIn(); w != 3 || g != 2 {
		t.Fatalf("FanIn = (%d, %d), want (3, 2)", w, g)
	}
	mu.Lock()
	if lastW != 3 || lastG != 2 {
		t.Fatalf("OnFanin last = (%d, %d), want (3, 2)", lastW, lastG)
	}
	mu.Unlock()

	// One decision per group per change, not per watch: this insert
	// touches only T, so the R-group skips and the T-group re-evaluates
	// — two decisions for three watches.
	base := func() uint64 { s, r, f := h.mgr.Counters(); return s + r + f }()
	h.insert("T", "t1", "u1")
	h.mgr.Quiesce("test")
	if got := func() uint64 { s, r, f := h.mgr.Counters(); return s + r + f }() - base; got != 2 {
		t.Fatalf("decisions per change = %d, want 2 (one per group)", got)
	}

	// A flip reaches every member of the shared group.
	h.insert("T", "k0", "v0") // falsifies !T(x|y) at R's witness
	h.mgr.Quiesce("test")
	for i, w := range []*Watch{w1, w2} {
		select {
		case ev := <-w.Events():
			if ev.To != false || ev.Resync {
				t.Fatalf("watch %d: unexpected event %+v", i, ev)
			}
		default:
			t.Fatalf("watch %d: no flip event delivered", i)
		}
	}

	// Leaving a shared group keeps it alive for the remaining member;
	// the last leave dissolves it.
	h.mgr.Unregister(w2)
	h.mgr.Quiesce("test")
	if w, g := h.mgr.FanIn(); w != 2 || g != 2 {
		t.Fatalf("after first leave: FanIn = (%d, %d), want (2, 2)", w, g)
	}
	h.mgr.Unregister(w1)
	h.mgr.Unregister(w3)
	h.mgr.Quiesce("test")
	if w, g := h.mgr.FanIn(); w != 0 || g != 0 {
		t.Fatalf("after all leaves: FanIn = (%d, %d), want (0, 0)", w, g)
	}
}

// A watch joining an existing group still maintains its own published
// state and event queue: un-consumed members gap independently.
func TestDeltaFanInIndependentQueues(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\n", Options{WatchBuffer: 1})
	w1, _ := h.watch("R(x | y)")
	w2, _ := h.watch("R(x | y)")

	// Two flips: delete then re-insert. With a 1-deep queue, a consumer
	// that reads between flips sees both; one that never reads keeps the
	// first and gaps the second into a later resync.
	h.delete("R", "k0", "v0")
	h.mgr.Quiesce("test")
	if ev := <-w1.Events(); ev.To != false {
		t.Fatalf("w1 first event: %+v", ev)
	}
	h.insert("R", "k0", "v0")
	h.mgr.Quiesce("test")
	if ev := <-w1.Events(); ev.To != true {
		t.Fatalf("w1 second event: %+v", ev)
	}
	if ev := <-w2.Events(); ev.To != false || ev.Resync {
		t.Fatalf("w2 first event: %+v", ev)
	}
	st := w2.State()
	if st.Verdict != true {
		t.Fatalf("w2 published state: %+v", st)
	}
}

// DropDB resets the fan-in population.
func TestDeltaFanInDrop(t *testing.T) {
	h := newHarness(t, "R(k0 | v0)\n", Options{})
	w1, _ := h.watch("R(x | y)")
	w2, _ := h.watch("R(x | y)")
	if w, g := h.mgr.FanIn(); w != 2 || g != 1 {
		t.Fatalf("FanIn = (%d, %d), want (2, 1)", w, g)
	}
	h.mgr.DropDB("test")
	for range w1.Events() {
	}
	for range w2.Events() {
	}
	if w, g := h.mgr.FanIn(); w != 0 || g != 0 {
		t.Fatalf("after drop: FanIn = (%d, %d), want (0, 0)", w, g)
	}
}
