// Package delta maintains registered queries' certain answers
// incrementally. For each registered (query, database) pair it keeps
// the last verdict plus a compact support set of the blocks the
// compiled evaluation consulted (fo.Support). On every acknowledged
// write batch (store.Change) it intersects the dirty blocks with each
// registration's support to decide whether the verdict can have
// changed; only affected registrations are re-evaluated, and verdict
// flips are published to the registration's bounded event queue.
//
// Soundness rests on a replay argument over the compiled evaluator: an
// evaluation run is a deterministic function of (constant resolution,
// candidate lists, membership-probe answers). A change is skipped for a
// registration only when all three provably survive it:
//
//  1. constant resolution — ids are stable along the interned
//     dictionary chain (db.Interned.SameDict), and any dirty block
//     carrying a value the recorded view did not know forces
//     re-evaluation;
//  2. candidate lists — a dirty block whose row delta adds a value to,
//     or retires a value from, any column the program draws quantifier
//     candidates from (fo.Program.CandSources) forces re-evaluation;
//     programs that fall back to active-domain candidates are excluded
//     from block-level skipping entirely;
//  3. probe answers — a dirty block whose hash occurs in the recorded
//     support forces re-evaluation; blocks outside the support were
//     never consulted, so their changes cannot alter any probe along
//     the recorded trajectory.
//
// Queries without a compiled rewriting (the planner's cyclic classes
// and the naive fallback) degrade to relation-level skipping: they are
// re-evaluated whenever a write touches a relation they mention, which
// is still exact — their deciders are near-linear — just not
// block-proportional. See docs/DELTA.md.
package delta

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/obs"
	"cqa/internal/store"
)

// Outcome labels what a change meant for one registration; the values
// match the delta_reeval_total{outcome} metric.
const (
	OutcomeSkipped     = "skipped"
	OutcomeReevaluated = "reevaluated"
	OutcomeFlipped     = "flipped"
)

// DefaultWatchBuffer is the per-watch event queue capacity when
// Options.WatchBuffer is unset.
const DefaultWatchBuffer = 64

// Options configures a Manager.
type Options struct {
	// OnReeval is invoked once per (change, registration group) with the
	// decision outcome (Outcome*). Registrations with the same canonical
	// signature on the same database share one group, one support set,
	// and one decision. Nil is allowed.
	OnReeval func(db, outcome string)
	// OnFanin is invoked whenever the registration population changes,
	// with the total watch count and the (smaller or equal) group count.
	// watches − groups is the number of subscriptions answered by another
	// subscription's evaluation. Nil is allowed.
	OnFanin func(watches, groups int)
	// OnFlip is invoked once per published verdict flip. Nil is allowed.
	OnFlip func(db string)
	// Tracer records one "delta" trace per processed change that had
	// registrations; nil disables tracing.
	Tracer *obs.Tracer
	// WatchBuffer is the per-watch event queue capacity; a consumer
	// that falls behind loses intermediate flips and is resynced with a
	// state event (Event.Resync). ≤ 0 selects DefaultWatchBuffer.
	WatchBuffer int
}

// Snapshot pairs a database snapshot with its store version.
type Snapshot struct {
	DB      *db.Database
	Version uint64
}

// State is a (version, verdict) pair.
type State struct {
	Version uint64
	Verdict bool
}

// Event is one published notification: a verdict flip at a version,
// carrying the dirty blocks that triggered the re-evaluation — or,
// when Resync is set, a state resynchronization after the consumer
// fell behind (From is meaningless then).
type Event struct {
	Version uint64
	From    bool
	To      bool
	Blocks  []string
	Resync  bool
}

// Manager owns the per-database delta state. All processing is
// asynchronous: Apply enqueues and returns immediately (it is called
// under the store's writer lock), a per-database worker goroutine
// processes changes strictly in version order — no coalescing, so
// every intermediate flip is observed and published.
type Manager struct {
	opt Options

	mu     sync.Mutex
	dbs    map[string]*dbState
	closed bool

	tracer atomic.Pointer[obs.Tracer]

	skipped  atomic.Uint64
	reevaled atomic.Uint64
	flipped  atomic.Uint64

	watchN atomic.Int64
	groupN atomic.Int64
}

// New builds a Manager.
func New(opt Options) *Manager {
	if opt.WatchBuffer <= 0 {
		opt.WatchBuffer = DefaultWatchBuffer
	}
	m := &Manager{opt: opt, dbs: make(map[string]*dbState)}
	if opt.Tracer != nil {
		m.tracer.Store(opt.Tracer)
	}
	return m
}

// SetTracer installs (or replaces) the tracer; the serving layer's
// registry exists only after the engine — and its manager — are built.
func (m *Manager) SetTracer(t *obs.Tracer) {
	if t != nil {
		m.tracer.Store(t)
	}
}

// Counters reports how many (change, registration group) decisions
// were skipped, re-evaluated without a flip, and re-evaluated with a
// flip.
func (m *Manager) Counters() (skipped, reevaluated, flipped uint64) {
	return m.skipped.Load(), m.reevaled.Load(), m.flipped.Load()
}

// FanIn reports the current registration population: total watches and
// the distinct (signature, database) groups backing them. watches −
// groups is the number of subscriptions sharing another subscription's
// support set and re-evaluations.
func (m *Manager) FanIn() (watches, groups int) {
	return int(m.watchN.Load()), int(m.groupN.Load())
}

// fanin adjusts the population counters and fires the OnFanin hook.
func (m *Manager) fanin(dWatch, dGroup int64) {
	w := m.watchN.Add(dWatch)
	g := m.groupN.Add(dGroup)
	if m.opt.OnFanin != nil {
		m.opt.OnFanin(int(w), int(g))
	}
}

// op is one unit of per-database worker input.
type op struct {
	// change op: version/change/dbFn set.
	change store.Change
	dbFn   func() *db.Database

	// control ops.
	register   *Watch
	regPrep    *core.Prepared
	regSnap    Snapshot
	regDone    chan regResult
	unregister *Watch
	quiesce    chan struct{}
	drop       bool
}

type regResult struct {
	state State
	err   error
}

// dbState is one database's delta state, owned by its worker.
type dbState struct {
	m    *Manager
	name string

	mu    sync.Mutex
	queue []op
	wake  chan struct{}
	stop  bool

	// Worker-owned; untouched by other goroutines. Registrations are
	// grouped by canonical query signature: every watch with the same
	// signature on this database shares one group — one support set, one
	// skip decision, one re-evaluation per change (the fan-in).
	groups      map[string]*regGroup
	nWatches    int
	lastVersion uint64
	lastDBFn    func() *db.Database
	lastDB      *db.Database // memoized lastDBFn result
}

func (m *Manager) state(name string, create bool) *dbState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	st := m.dbs[name]
	if st == nil && create {
		st = &dbState{
			m:      m,
			name:   name,
			wake:   make(chan struct{}, 1),
			groups: make(map[string]*regGroup),
		}
		m.dbs[name] = st
		go st.run()
	}
	return st
}

func (st *dbState) enqueue(o op) {
	st.mu.Lock()
	if st.stop {
		st.mu.Unlock()
		if o.regDone != nil {
			o.regDone <- regResult{err: fmt.Errorf("delta: database %s dropped", st.name)}
		}
		if o.quiesce != nil {
			close(o.quiesce)
		}
		return
	}
	st.queue = append(st.queue, o)
	st.mu.Unlock()
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// Apply feeds one acknowledged write batch. dbFn must return the
// database snapshot at exactly c.Version; it is resolved lazily (never
// when the database has no registrations), so feeding a sharded view
// whose union is expensive costs nothing until someone watches. Apply
// never blocks on delta work and is safe to call under the store's
// writer lock.
func (m *Manager) Apply(dbName string, c store.Change, dbFn func() *db.Database) {
	st := m.state(dbName, true)
	if st == nil {
		return
	}
	st.enqueue(op{change: c, dbFn: dbFn})
}

// Register admits a new watch for (query, database) and blocks until
// the worker has linearized it against the change stream: the returned
// State is the verdict at the version the watch starts from, and every
// later flip is delivered on Watch.Events. snap must be a consistent
// (snapshot, version) capture; if the worker has already processed a
// later change, the registration is evaluated against that later state
// instead, so no change between snap.Version and the returned
// State.Version is lost or double-reported.
//
// A registration whose signature already has a group on dbName joins it
// without a fresh evaluation (fan-in): it adopts the group's settled
// verdict and shares its support set and future re-evaluations.
func (m *Manager) Register(dbName, signature string, prep *core.Prepared, snap Snapshot) (*Watch, State, error) {
	w := &Watch{
		db:        dbName,
		signature: signature,
		events:    make(chan Event, m.opt.WatchBuffer),
	}
	st := m.state(dbName, true)
	if st == nil {
		return nil, State{}, fmt.Errorf("delta: manager closed")
	}
	done := make(chan regResult, 1)
	st.enqueue(op{register: w, regPrep: prep, regSnap: snap, regDone: done})
	res := <-done
	if res.err != nil {
		return nil, State{}, res.err
	}
	return w, res.state, nil
}

// Unregister removes a watch; its event channel is closed by the
// worker. Unregistering twice, or after DropDB/Close, is a no-op.
func (m *Manager) Unregister(w *Watch) {
	if w == nil {
		return
	}
	st := m.state(w.db, false)
	if st == nil {
		return
	}
	st.enqueue(op{unregister: w})
}

// DropDB discards a database's delta state and closes every watch on
// it (the serving layer drops databases on follower resets).
func (m *Manager) DropDB(dbName string) {
	st := m.state(dbName, false)
	if st == nil {
		return
	}
	st.enqueue(op{drop: true})
	m.mu.Lock()
	if m.dbs[dbName] == st {
		delete(m.dbs, dbName)
	}
	m.mu.Unlock()
}

// Quiesce blocks until every change enqueued for the database before
// the call has been processed. Used by tests and benchmarks.
func (m *Manager) Quiesce(dbName string) {
	st := m.state(dbName, false)
	if st == nil {
		return
	}
	done := make(chan struct{})
	st.enqueue(op{quiesce: done})
	<-done
}

// Close stops every worker and closes every watch.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	states := make([]*dbState, 0, len(m.dbs))
	for _, st := range m.dbs {
		states = append(states, st)
	}
	m.dbs = map[string]*dbState{}
	m.mu.Unlock()
	for _, st := range states {
		st.enqueue(op{drop: true})
	}
}

// run is the per-database worker loop: strict FIFO over the op queue.
func (st *dbState) run() {
	for {
		st.mu.Lock()
		if len(st.queue) == 0 {
			st.mu.Unlock()
			<-st.wake
			continue
		}
		o := st.queue[0]
		st.queue = st.queue[1:]
		st.mu.Unlock()

		switch {
		case o.regDone != nil:
			o.regDone <- st.admit(o.register, o.regPrep, o.regSnap)
		case o.unregister != nil:
			st.removeWatch(o.unregister)
		case o.quiesce != nil:
			close(o.quiesce)
		case o.drop:
			st.shutdown()
			return
		default:
			st.processChange(o)
		}
	}
}

// removeWatch drops one watch from its group, dissolving the group when
// it was the last member.
func (st *dbState) removeWatch(w *Watch) {
	g := st.groups[w.signature]
	if g == nil {
		return
	}
	if _, ok := g.watches[w]; !ok {
		return
	}
	delete(g.watches, w)
	close(w.events)
	st.nWatches--
	if len(g.watches) == 0 {
		delete(st.groups, w.signature)
		st.m.fanin(-1, -1)
	} else {
		st.m.fanin(-1, 0)
	}
}

// shutdown closes every watch and fails every queued control op. The
// fan-in counters drop before the channels close, so a consumer that
// observes the close sees the settled population.
func (st *dbState) shutdown() {
	if st.nWatches > 0 || len(st.groups) > 0 {
		st.m.fanin(-int64(st.nWatches), -int64(len(st.groups)))
	}
	for _, g := range st.groups {
		for w := range g.watches {
			close(w.events)
		}
	}
	st.groups = map[string]*regGroup{}
	st.nWatches = 0
	st.mu.Lock()
	st.stop = true
	rest := st.queue
	st.queue = nil
	st.mu.Unlock()
	for _, o := range rest {
		if o.regDone != nil {
			o.regDone <- regResult{err: fmt.Errorf("delta: database %s dropped", st.name)}
		}
		if o.quiesce != nil {
			close(o.quiesce)
		}
	}
}

// admit installs a new registration: it joins the signature's existing
// group when one exists (re-evaluating only if the registration's
// snapshot is ahead of the group's settled version), or creates and
// evaluates a fresh group at the worker's current state (or the
// registration's own snapshot when the worker has seen nothing newer).
func (st *dbState) admit(w *Watch, prep *core.Prepared, snap Snapshot) regResult {
	d, version := snap.DB, snap.Version
	if st.lastVersion > version {
		d, version = st.currentDB(), st.lastVersion
	} else if st.lastVersion == 0 && st.lastDBFn == nil {
		// First sight of this database: the registration's snapshot is
		// the freshest state we know.
		st.lastVersion = version
		cached := d
		st.lastDBFn = func() *db.Database { return cached }
		st.lastDB = d
	}
	g := st.groups[w.signature]
	created := g == nil
	if created {
		g = newRegGroup(w.signature, prep)
		st.groups[w.signature] = g
	}
	if created || version > g.version {
		// A joining watch whose snapshot is ahead of the group's settled
		// state refreshes the whole group; otherwise the group's verdict
		// is already current and the join costs no evaluation.
		g.evaluate(d)
		g.version = version
	}
	g.watches[w] = struct{}{}
	w.setState(g.version, g.verdict)
	st.nWatches++
	if created {
		st.m.fanin(1, 1)
	} else {
		st.m.fanin(1, 0)
	}
	return regResult{state: State{Version: g.version, Verdict: g.verdict}}
}

func (st *dbState) currentDB() *db.Database {
	if st.lastDB == nil && st.lastDBFn != nil {
		st.lastDB = st.lastDBFn()
	}
	return st.lastDB
}

// processChange runs the skip/re-evaluate decision for every
// registration against one change, in version order.
func (st *dbState) processChange(o op) {
	c := o.change
	if c.Version <= st.lastVersion && st.lastVersion != 0 {
		return // duplicate delivery
	}
	if len(st.groups) == 0 {
		// Nobody watches: just advance the tracked snapshot (lazily).
		st.lastVersion = c.Version
		st.lastDBFn = o.dbFn
		st.lastDB = nil
		return
	}
	prev := st.currentDB()
	cur := o.dbFn()

	tr := st.m.tracer.Load().Start("delta", "")
	sp := tr.StartSpan("delta")
	sp.SetAttr("db", st.name).SetAttr("version", fmt.Sprint(c.Version))

	cc := &changeCtx{c: c, prev: prev, cur: cur}
	var nSkip, nReeval, nFlip int
	for _, g := range st.groups {
		if c.Version <= g.version {
			// The group was admitted against a snapshot at or past this
			// change (a registration raced ahead of the change stream);
			// its verdict already reflects it.
			continue
		}
		reeval, triggers := cc.decide(g)
		if !reeval {
			// A proven skip settles the verdict at the new version too:
			// advance the published state so heartbeats report progress.
			g.setState(c.Version)
			nSkip++
			st.m.skipped.Add(1)
			st.m.hookReeval(st.name, OutcomeSkipped)
			continue
		}
		old := g.verdict
		g.evaluate(cur)
		g.setState(c.Version)
		if g.verdict != old {
			nFlip++
			st.m.flipped.Add(1)
			st.m.hookReeval(st.name, OutcomeFlipped)
			if st.m.opt.OnFlip != nil {
				st.m.opt.OnFlip(st.name)
			}
			for w := range g.watches {
				w.emit(Event{Version: c.Version, From: old, To: g.verdict, Blocks: formatBlocks(triggers)})
			}
		} else {
			nReeval++
			st.m.reevaled.Add(1)
			st.m.hookReeval(st.name, OutcomeReevaluated)
			for w := range g.watches {
				if w.gapped {
					// The consumer shed flips earlier; the settled state is
					// the next deliverable event, collapsed into a Resync by
					// emit.
					w.emit(Event{Version: c.Version, From: old, To: g.verdict})
				}
			}
		}
	}
	sp.SetAttr("blocks", fmt.Sprint(len(c.Blocks))).
		SetAttr("skipped", fmt.Sprint(nSkip)).
		SetAttr("reevaluated", fmt.Sprint(nReeval)).
		SetAttr("flipped", fmt.Sprint(nFlip))
	sp.End()
	tr.Finish()

	st.lastVersion = c.Version
	st.lastDBFn = o.dbFn
	st.lastDB = cur
}

func (m *Manager) hookReeval(db, outcome string) {
	if m.opt.OnReeval != nil {
		m.opt.OnReeval(db, outcome)
	}
}

// formatBlocks renders trigger blocks as "R(k1,k2)" strings.
func formatBlocks(refs []store.BlockRef) []string {
	if len(refs) == 0 {
		return nil
	}
	out := make([]string, len(refs))
	for i, b := range refs {
		out[i] = fmt.Sprintf("%s(%s)", b.Rel, strings.Join(b.Key, ","))
	}
	return out
}

// regGroup is the shared evaluation state of every watch registered
// with one canonical signature on one database: the prepared plan, the
// static program analysis, the settled verdict, and the recorded
// support set. All fields are worker-owned. Grouping is the watch
// fan-in — N identical subscriptions cost one support set and one
// re-evaluation per change, not N.
type regGroup struct {
	signature string
	prep      *core.Prepared

	// Static program analysis, set at group creation.
	rels       map[string]bool  // relations the query/program mentions
	candCols   map[string][]int // candidate-source columns per relation
	usesDomain bool

	// Evaluation state.
	verdict bool
	sup     *fo.Support // nil when block-level skipping is unavailable
	version uint64      // version the verdict is settled at

	watches map[*Watch]struct{}
}

func newRegGroup(signature string, prep *core.Prepared) *regGroup {
	g := &regGroup{
		signature: signature,
		prep:      prep,
		rels:      make(map[string]bool),
		candCols:  make(map[string][]int),
		watches:   make(map[*Watch]struct{}),
	}
	if prog := prep.Program(); prog != nil {
		for _, r := range prog.Rels() {
			g.rels[r] = true
		}
		for _, cs := range prog.CandSources() {
			g.candCols[cs.Rel] = append(g.candCols[cs.Rel], cs.Col)
		}
		g.usesDomain = prog.UsesDomain()
	} else {
		for _, r := range prep.QueryRels() {
			g.rels[r] = true
		}
	}
	return g
}

// evaluate recomputes the group verdict and support against d.
// Block-level skipping requires a compiled program that never
// quantifies over the active domain; everything else keeps sup nil and
// degrades to relation-level skipping.
func (g *regGroup) evaluate(d *db.Database) {
	verdict, sup, supported := g.prep.CertainSupport(d)
	g.verdict = verdict
	if supported && !g.usesDomain {
		g.sup = sup
	} else {
		g.sup = nil
	}
}

// setState settles the group at version and fans the published state
// out to every member watch.
func (g *regGroup) setState(version uint64) {
	g.version = version
	for w := range g.watches {
		w.setState(version, g.verdict)
	}
}

// Watch is one registered (query, database) subscription. Verdict
// maintenance lives on the watch's group; the watch itself carries only
// its event queue and published state. Consumers read events from
// Events and may poll State concurrently.
type Watch struct {
	db        string
	signature string

	// Worker-owned delivery state.
	gapped bool

	// Published state, readable concurrently (heartbeats poll it).
	stateMu sync.Mutex
	version uint64
	stVerd  bool

	events chan Event
}

// DB returns the database the watch is registered against.
func (w *Watch) DB() string { return w.db }

// Signature returns the canonical query signature of the watch.
func (w *Watch) Signature() string { return w.signature }

// Events returns the watch's event stream. The channel is closed by
// Unregister, DropDB, and Close.
func (w *Watch) Events() <-chan Event { return w.events }

// State returns the last settled (version, verdict) pair. Safe for
// concurrent use; the serving layer embeds it in heartbeats so a
// consumer that lost events to shedding converges anyway.
func (w *Watch) State() State {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	return State{Version: w.version, Verdict: w.stVerd}
}

func (w *Watch) setState(version uint64, verdict bool) {
	w.stateMu.Lock()
	w.version = version
	w.stVerd = verdict
	w.stateMu.Unlock()
}

// emit delivers an event without ever blocking the worker: when the
// consumer's queue is full the event is dropped and the watch marked
// gapped; the next deliverable event is collapsed into a Resync state
// event so the consumer knows intermediate flips were shed.
func (w *Watch) emit(ev Event) {
	if w.gapped {
		ev = Event{Version: ev.Version, To: ev.To, Resync: true}
	}
	select {
	case w.events <- ev:
		w.gapped = false
	default:
		w.gapped = true
	}
}
