// Package gen generates workloads for the test suite and the benchmark
// harness: random typed databases with controlled block structure for a
// given query, random bipartite graphs (BPM), random two-component forests
// (UFA), random S-COVERING instances, and random sjfBCQ¬ queries.
//
// All generators are deterministic functions of the provided *rand.Rand,
// so every experiment is reproducible from its seed.
package gen

import (
	"fmt"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/graphx"
	"cqa/internal/matching"
	"cqa/internal/reduction"
	"cqa/internal/schema"
)

// DBOptions controls random database generation for a query.
type DBOptions struct {
	// BlocksPerRelation is the number of blocks generated per relation.
	BlocksPerRelation int
	// MaxBlockSize bounds the facts per block (≥ 1); sizes are uniform
	// in [1, MaxBlockSize].
	MaxBlockSize int
	// DomainPerVariable is the pool size for each variable's type.
	DomainPerVariable int
	// ConstantBias is the probability that a position holding a constant
	// in the query atom receives exactly that constant (making matches
	// possible); the rest draw from a small noise pool.
	ConstantBias float64
}

// DefaultDBOptions are small enough for naive repair enumeration.
func DefaultDBOptions() DBOptions {
	return DBOptions{BlocksPerRelation: 3, MaxBlockSize: 2, DomainPerVariable: 3, ConstantBias: 0.7}
}

// Database generates a random database typed relative to q (Section 3):
// each variable has its own constant pool, and every position of every
// generated fact draws from the pool of the variable at that position in
// the query's atom (or honours the query's constant with probability
// ConstantBias).
func Database(rng *rand.Rand, q schema.Query, opt DBOptions) *db.Database {
	d := db.New()
	pool := func(v string, i int) string {
		return fmt.Sprintf("%s·%d", v, rng.Intn(opt.DomainPerVariable))
	}
	for _, a := range q.Atoms() {
		d.MustDeclare(a.Rel, a.Arity(), a.Key)
		for b := 0; b < opt.BlocksPerRelation; b++ {
			key := make([]string, a.Key)
			for i, t := range a.KeyTerms() {
				key[i] = drawValue(rng, t, pool, opt, i)
			}
			size := 1 + rng.Intn(opt.MaxBlockSize)
			for s := 0; s < size; s++ {
				args := append([]string{}, key...)
				for i, t := range a.NonKeyTerms() {
					args = append(args, drawValue(rng, t, pool, opt, a.Key+i))
				}
				d.MustInsert(db.Fact{Rel: a.Rel, Args: args})
			}
		}
	}
	return d
}

func drawValue(rng *rand.Rand, t schema.Term, pool func(string, int) string, opt DBOptions, i int) string {
	if t.IsVar {
		return pool(t.Name, i)
	}
	if rng.Float64() < opt.ConstantBias {
		return t.Name
	}
	return fmt.Sprintf("noise·%d", rng.Intn(opt.DomainPerVariable))
}

// Bipartite generates a random bipartite graph with n vertices per side
// and edge probability p, then adds one random edge to every isolated
// left vertex so that the Lemma 5.2 reduction applies.
func Bipartite(rng *rand.Rand, n int, p float64) *graphx.Bipartite {
	left := make([]string, n)
	right := make([]string, n)
	for i := 0; i < n; i++ {
		left[i] = fmt.Sprintf("a%d", i)
		right[i] = fmt.Sprintf("b%d", i)
	}
	b := graphx.NewBipartite(left, right)
	for _, l := range left {
		for _, r := range right {
			if rng.Float64() < p {
				mustAddEdge(b, l, r)
			}
		}
	}
	for _, l := range left {
		if len(b.Adj[l]) == 0 {
			mustAddEdge(b, l, right[rng.Intn(n)])
		}
	}
	return b
}

func mustAddEdge(b *graphx.Bipartite, l, r string) {
	if err := b.AddEdge(l, r); err != nil {
		panic(err)
	}
}

// UFA generates a random Undirected Forest Accessibility instance: two
// random trees with the given vertex counts (each ≥ 2), and two query
// nodes that are connected with probability ½.
func UFA(rng *rand.Rand, n1, n2 int) reduction.UFAInstance {
	g := graphx.NewUndirected()
	tree := func(prefix string, n int) []string {
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("%s%d", prefix, i)
			g.AddVertex(names[i])
			if i > 0 {
				// Random attachment keeps the component a tree.
				if err := g.AddEdge(names[i], names[rng.Intn(i)]); err != nil {
					panic(err)
				}
			}
		}
		return names
	}
	c1 := tree("u", n1)
	c2 := tree("v", n2)
	u := c1[rng.Intn(len(c1))]
	var v string
	if rng.Intn(2) == 0 {
		// Same component (connected), but distinct from u: the
		// reduction needs a path of length ≥ 1.
		for v = c1[rng.Intn(len(c1))]; v == u; v = c1[rng.Intn(len(c1))] {
		}
	} else {
		v = c2[rng.Intn(len(c2))] // other component: not connected
	}
	return reduction.UFAInstance{Graph: g, U: u, V: v}
}

// SCovering generates a random S-COVERING instance with nS elements, nT
// subsets, and membership probability p.
func SCovering(rng *rand.Rand, nS, nT int, p float64) matching.SCoveringInstance {
	s := make([]string, nS)
	for i := range s {
		s[i] = fmt.Sprintf("e%d", i)
	}
	t := make([][]string, nT)
	for i := range t {
		for _, a := range s {
			if rng.Float64() < p {
				t[i] = append(t[i], a)
			}
		}
	}
	return matching.SCoveringInstance{S: s, T: t}
}
