package gen

import (
	"fmt"
	"math/rand"

	"cqa/internal/schema"
)

// QueryOptions controls random query generation.
type QueryOptions struct {
	// MaxPositive and MaxNegated bound the atom counts (at least one
	// positive atom is always generated).
	MaxPositive, MaxNegated int
	// MaxArity bounds atom arity (≥ 1).
	MaxArity int
	// Vars is the variable pool.
	Vars []string
	// ConstProb is the probability that an atom position holds a
	// constant instead of a variable.
	ConstProb float64
}

// DefaultQueryOptions generate small queries suitable for exhaustive
// validation against the naive engine.
func DefaultQueryOptions() QueryOptions {
	return QueryOptions{
		MaxPositive: 3,
		MaxNegated:  2,
		MaxArity:    3,
		Vars:        []string{"x", "y", "z", "w"},
		ConstProb:   0.15,
	}
}

// Query generates a random valid sjfBCQ¬ query with weakly-guarded
// negation. Negated atoms draw their variables from the variables of one
// or two positive atoms and the result is re-checked, so a mix of guarded
// and weakly-guarded-only queries is produced. The attack graph may be
// cyclic or acyclic; callers classify.
func Query(rng *rand.Rand, opt QueryOptions) schema.Query {
	for {
		q, ok := tryQuery(rng, opt)
		if !ok {
			continue
		}
		if err := q.Validate(); err != nil {
			continue
		}
		if !q.WeaklyGuarded() {
			continue
		}
		return q
	}
}

func tryQuery(rng *rand.Rand, opt QueryOptions) (schema.Query, bool) {
	nPos := 1 + rng.Intn(opt.MaxPositive)
	nNeg := rng.Intn(opt.MaxNegated + 1)
	var lits []schema.Literal

	var posAtoms []schema.Atom
	for i := 0; i < nPos; i++ {
		arity := 1 + rng.Intn(opt.MaxArity)
		key := 1 + rng.Intn(arity)
		terms := make([]schema.Term, arity)
		for j := range terms {
			if rng.Float64() < opt.ConstProb {
				terms[j] = schema.Const(fmt.Sprintf("c%d", rng.Intn(2)))
			} else {
				terms[j] = schema.Var(opt.Vars[rng.Intn(len(opt.Vars))])
			}
		}
		a := schema.NewAtom(fmt.Sprintf("P%d", i), key, terms...)
		if a.Vars().Empty() {
			return schema.Query{}, false // ground positive atoms are boring
		}
		posAtoms = append(posAtoms, a)
		lits = append(lits, schema.Pos(a))
	}

	for i := 0; i < nNeg; i++ {
		// Draw variables from one or two positive atoms; one keeps the
		// negation guarded, two often yields weakly-guarded-only.
		src := posAtoms[rng.Intn(len(posAtoms))].Vars()
		if rng.Intn(3) == 0 {
			src = src.Union(posAtoms[rng.Intn(len(posAtoms))].Vars())
		}
		varPool := src.Sorted()
		arity := 1 + rng.Intn(opt.MaxArity)
		key := 1 + rng.Intn(arity)
		terms := make([]schema.Term, arity)
		for j := range terms {
			if rng.Float64() < opt.ConstProb || len(varPool) == 0 {
				terms[j] = schema.Const(fmt.Sprintf("c%d", rng.Intn(2)))
			} else {
				terms[j] = schema.Var(varPool[rng.Intn(len(varPool))])
			}
		}
		lits = append(lits, schema.Neg(schema.NewAtom(fmt.Sprintf("N%d", i), key, terms...)))
	}
	return schema.NewQuery(lits...), true
}
