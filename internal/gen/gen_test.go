package gen_test

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/gen"
	"cqa/internal/parse"
)

func TestDatabaseIsTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := parse.MustQuery("R(x | y), !S(y | x)")
	d := gen.Database(rng, q, gen.DefaultDBOptions())
	if d.Relation("R") == nil || d.Relation("S") == nil {
		t.Fatal("relations not declared")
	}
	// Typed discipline: R's column 0 holds x-values, S's column 1 too.
	for _, f := range d.Facts("R") {
		if !strings.HasPrefix(f.Args[0], "x·") {
			t.Errorf("R key %q not of type x", f.Args[0])
		}
		if !strings.HasPrefix(f.Args[1], "y·") {
			t.Errorf("R value %q not of type y", f.Args[1])
		}
	}
	for _, f := range d.Facts("S") {
		if !strings.HasPrefix(f.Args[0], "y·") || !strings.HasPrefix(f.Args[1], "x·") {
			t.Errorf("S fact %v not typed", f)
		}
	}
}

func TestDatabaseBlockBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := parse.MustQuery("R(x | y)")
	opt := gen.DBOptions{BlocksPerRelation: 5, MaxBlockSize: 3, DomainPerVariable: 10, ConstantBias: 1}
	d := gen.Database(rng, q, opt)
	r := d.Relation("R")
	if r.NumBlocks() > 5 {
		t.Errorf("blocks = %d > 5", r.NumBlocks())
	}
	// Generated "blocks" with colliding keys merge, so the per-block
	// bound is loose: at most all generated facts in one block.
	d.Blocks("R", func(b []db.Fact) bool {
		if len(b) > 5*3 {
			t.Errorf("block size %d exceeds total generated facts", len(b))
		}
		return true
	})
}

func TestDatabaseHonoursConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := parse.MustQuery("N('c' | y)")
	opt := gen.DefaultDBOptions()
	opt.ConstantBias = 1.0
	d := gen.Database(rng, q, opt)
	for _, f := range d.Facts("N") {
		if f.Args[0] != "c" {
			t.Errorf("constant position got %q", f.Args[0])
		}
	}
}

func TestBipartiteNoIsolatedLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		b := gen.Bipartite(rng, 1+rng.Intn(6), 0.1)
		if len(b.Left) != len(b.Right) {
			t.Fatal("sides must be equal")
		}
		for _, l := range b.Left {
			if len(b.Adj[l]) == 0 {
				t.Fatalf("left vertex %s isolated", l)
			}
		}
	}
}

func TestUFAInstancesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		inst := gen.UFA(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		if err := inst.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSCoveringShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := gen.SCovering(rng, 4, 3, 0.5)
	if len(inst.S) != 4 || len(inst.T) != 3 {
		t.Fatalf("shape = %d elements, %d sets", len(inst.S), len(inst.T))
	}
	for _, tset := range inst.T {
		for _, a := range tset {
			found := false
			for _, s := range inst.S {
				if s == a {
					found = true
				}
			}
			if !found {
				t.Fatalf("set member %s not in S", a)
			}
		}
	}
}

func TestQueryGeneratorProducesValidQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := gen.DefaultQueryOptions()
	foCount, hardCount := 0, 0
	for i := 0; i < 100; i++ {
		q := gen.Query(rng, opts)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid query %s: %v", q, err)
		}
		if !q.WeaklyGuarded() {
			t.Fatalf("non-weakly-guarded query %s", q)
		}
		cls, err := core.Classify(q)
		if err != nil {
			t.Fatalf("classify %s: %v", q, err)
		}
		switch cls.Verdict {
		case core.VerdictFO:
			foCount++
		case core.VerdictNotFO:
			hardCount++
		default:
			t.Fatalf("weakly-guarded query %s classified out of scope", q)
		}
	}
	// The generator must exercise both sides of the dichotomy.
	if foCount == 0 || hardCount == 0 {
		t.Errorf("generator one-sided: %d FO, %d hard", foCount, hardCount)
	}
}

func TestDeterminism(t *testing.T) {
	q := parse.MustQuery("R(x | y)")
	d1 := gen.Database(rand.New(rand.NewSource(9)), q, gen.DefaultDBOptions())
	d2 := gen.Database(rand.New(rand.NewSource(9)), q, gen.DefaultDBOptions())
	if d1.String() != d2.String() {
		t.Error("same seed produced different databases")
	}
	q1 := gen.Query(rand.New(rand.NewSource(10)), gen.DefaultQueryOptions())
	q2 := gen.Query(rand.New(rand.NewSource(10)), gen.DefaultQueryOptions())
	if q1.String() != q2.String() {
		t.Error("same seed produced different queries")
	}
}
