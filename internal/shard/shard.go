// Package shard partitions a versioned fact store into N shard stores
// by block key. The key-equal block is the paper's unit of
// inconsistency: every repair of a database chooses exactly one fact
// per block, independently across blocks, so any partition that keeps
// blocks whole preserves the repair structure — shard i's repairs are
// exactly the restrictions of the full database's repairs to shard i's
// blocks. That is what makes scatter-gather certainty sound (see
// docs/SHARDING.md for the argument and its limits).
//
// Facts are routed by an FNV-1a hash of the relation name and the
// canonical key strings — not the interned integer ids, which are
// process-local and would route the same block differently across
// restarts and replicas.
//
// A Sharded store serializes writes across its shards and publishes a
// combined View (per-shard snapshots plus a global version, the sum of
// shard versions) atomically at batch boundaries, so readers never
// observe a half-applied cross-shard batch even though the underlying
// shard WALs commit independently.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cqa/internal/db"
	"cqa/internal/store"
)

// Owner returns the shard owning the block (rel, key) among n shards.
// Blocks are atomic: a fact's shard depends only on its key values, so
// every fact of a block lands on the same shard. The relation name is
// deliberately NOT hashed: same-key blocks of different relations
// co-locate, so a ground-key query over several relations (a join with
// its negation guards on one key) touches exactly one shard — it stays
// answerable when every other shard is down, and the router can serve
// it from one slice instead of gathering several. Correctness never
// depends on this choice (any per-block placement is sound); only
// locality does.
func Owner(rel string, key []string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, k := range key {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime64
		}
		h ^= 0x1f
		h *= prime64 // separator: "ab"+"c" must differ from "a"+"bc"
	}
	return int(h % uint64(n))
}

// HashFunc routes a block to a shard; the default is Owner. Tests
// override it on a Sharded to force adversarial placements.
type HashFunc func(rel string, key []string, n int) int

// View is one consistent cross-shard read view: per-shard snapshots
// taken under the write lock, plus the global version (the sum of
// shard versions — monotone, and recoverable after restart from the
// shard WALs alone).
type View struct {
	snaps   []store.Snapshot
	version uint64
	hash    HashFunc

	unionOnce sync.Once
	union     *db.Database
}

// Owner returns the shard owning block (rel, key) under the placement
// this view was built with. Query pruning must use this — not the
// package-level Owner — so a non-default placement (the adversarial
// test hook) routes reads and writes identically.
func (v *View) Owner(rel string, key []string) int {
	if v.hash == nil {
		return Owner(rel, key, len(v.snaps))
	}
	return v.hash(rel, key, len(v.snaps))
}

// NumShards returns the shard count.
func (v *View) NumShards() int { return len(v.snaps) }

// Shard returns shard i's database.
func (v *View) Shard(i int) *db.Database { return v.snaps[i].DB }

// ShardVersion returns shard i's store version.
func (v *View) ShardVersion(i int) uint64 { return v.snaps[i].Version }

// Version returns the global version.
func (v *View) Version() uint64 { return v.version }

// Union returns the merged database — every shard's facts in one view,
// built on first use and memoized for the View's lifetime. Queries
// that join across blocks evaluate here; single-atom queries never
// need it.
func (v *View) Union() *db.Database {
	v.unionOnce.Do(func() {
		if len(v.snaps) == 1 {
			v.union = v.snaps[0].DB
			return
		}
		out := db.New()
		for _, sn := range v.snaps {
			for _, name := range sn.DB.RelationNames() {
				r := sn.DB.Relation(name)
				// Signatures agree by construction: declares are broadcast.
				if err := out.DeclareRelation(name, r.Arity, r.Key); err != nil {
					continue
				}
				for _, f := range sn.DB.Facts(name) {
					out.Insert(f)
				}
			}
		}
		v.union = out
	})
	return v.union
}

// Sharded is N shard stores behind one write facade.
type Sharded struct {
	name   string
	shards []*store.Store
	hash   HashFunc

	mu      sync.Mutex // serializes writes and view publication
	onApply func(store.Change)
	closed  bool

	cur atomic.Pointer[View]
}

// NewSharded opens (or creates) an n-shard store named name. Shard i's
// store is "<name>.s<i>" under opt — durable when opt.Dir is set. With
// n == 1 the single shard uses the plain name, so a pre-sharding data
// directory keeps working.
func NewSharded(name string, n int, opt store.Options) (*Sharded, error) {
	if n <= 0 {
		n = 1
	}
	s := &Sharded{name: name, hash: Owner}
	for i := 0; i < n; i++ {
		st, err := store.Open(shardStoreName(name, i, n), opt)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, st)
	}
	s.publishLocked()
	return s, nil
}

// NewShardedFromStores wraps existing stores (typically follower
// replicas, or a single adopted memory store) without opening anything.
func NewShardedFromStores(name string, stores []*store.Store) *Sharded {
	s := &Sharded{name: name, hash: Owner, shards: stores}
	s.publishLocked()
	return s
}

// shardStoreName names shard i's underlying store.
func shardStoreName(name string, i, n int) string {
	if n == 1 {
		return name
	}
	return fmt.Sprintf("%s.s%d", name, i)
}

// SetHash overrides block routing — test hook for adversarial
// placements. Must be called before any facts are written.
func (s *Sharded) SetHash(h HashFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hash = h
}

// Name returns the logical database name.
func (s *Sharded) Name() string { return s.name }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's underlying store — the streaming and
// stats surface; mutations must go through the Sharded facade.
func (s *Sharded) Shard(i int) *store.Store { return s.shards[i] }

// Stores returns the underlying shard stores in order.
func (s *Sharded) Stores() []*store.Store { return s.shards }

// View returns the current consistent cross-shard view with one atomic
// load.
func (s *Sharded) View() *View { return s.cur.Load() }

// Version returns the current global version.
func (s *Sharded) Version() uint64 { return s.cur.Load().version }

// Durable reports whether the shards persist writes.
func (s *Sharded) Durable() bool {
	return len(s.shards) > 0 && s.shards[0].Durable()
}

// SetOnApply registers fn to run once per acknowledged batch, after
// view publication and while the write lock is held — batches are
// observed in global-version order.
func (s *Sharded) SetOnApply(fn func(store.Change)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onApply = fn
}

// publishLocked snapshots every shard and installs the combined view.
func (s *Sharded) publishLocked() *View {
	v := &View{snaps: make([]store.Snapshot, len(s.shards)), hash: s.hash}
	for i, st := range s.shards {
		v.snaps[i] = st.Snapshot()
		v.version += v.snaps[i].Version
	}
	s.cur.Store(v)
	return v
}

// Refresh re-snapshots the shards and publishes a fresh view. The
// follower path calls this after replica batches, which commit outside
// the Sharded facade.
func (s *Sharded) Refresh() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked()
}

// shardOps is one shard's slice of a logical batch.
type shardOps struct {
	declares []decl
	inserts  []db.Fact
	deletes  []db.Fact
}

type decl struct {
	rel        string
	arity, key int
}

// Declare registers a relation on every shard (any shard may hold any
// of its blocks).
func (s *Sharded) Declare(rel string, arity, key int) (store.Change, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.Change{}, store.ErrClosed
	}
	if err := checkDecl(s.cur.Load(), decl{rel, arity, key}); err != nil {
		return store.Change{}, err
	}
	per := make([]shardOps, len(s.shards))
	for i := range per {
		per[i].declares = append(per[i].declares, decl{rel, arity, key})
	}
	return s.applyBatchLocked(per)
}

// checkDecl validates a declaration against the published view before
// any shard applies it, so a bad batch fails whole rather than leaving
// shards disagreeing.
func checkDecl(v *View, d decl) error {
	if d.arity <= 0 || d.key <= 0 || d.key > d.arity {
		return fmt.Errorf("shard: invalid signature [%d, %d] for %s", d.arity, d.key, d.rel)
	}
	if r := v.snaps[0].DB.Relation(d.rel); r != nil && (r.Arity != d.arity || r.Key != d.key) {
		return fmt.Errorf("shard: relation %s already declared with signature [%d, %d]",
			d.rel, r.Arity, r.Key)
	}
	return nil
}

// route picks the owner shard for fact f, resolving the key prefix
// from relation signatures visible in view (or staged declares).
// Arity is checked here, before any shard applies anything, so a bad
// fact fails the whole batch instead of splitting it.
func (s *Sharded) route(f db.Fact, v *View, staged map[string]decl) (int, error) {
	arity, key := 0, 0
	if d, ok := staged[f.Rel]; ok {
		arity, key = d.arity, d.key
	} else if r := v.snaps[0].DB.Relation(f.Rel); r != nil {
		arity, key = r.Arity, r.Key
	} else {
		return 0, fmt.Errorf("shard: relation %s is not declared", f.Rel)
	}
	if len(f.Args) != arity {
		return 0, fmt.Errorf("shard: fact %s has %d args, relation has arity %d",
			f.Rel, len(f.Args), arity)
	}
	return s.hash(f.Rel, f.Args[:key], len(s.shards)), nil
}

// Insert adds facts as one logical batch, each routed to its block's
// owner shard.
func (s *Sharded) Insert(facts ...db.Fact) (store.Change, error) {
	return s.applyFacts(facts, nil, nil)
}

// Delete removes facts as one logical batch.
func (s *Sharded) Delete(facts ...db.Fact) (store.Change, error) {
	return s.applyFacts(nil, facts, nil)
}

// ApplyDB declares every relation of src on every shard and routes
// every fact to its owner, as one logical batch.
func (s *Sharded) ApplyDB(src *db.Database) (store.Change, error) {
	staged := make(map[string]decl)
	var ins []db.Fact
	for _, name := range src.RelationNames() {
		r := src.Relation(name)
		staged[name] = decl{name, r.Arity, r.Key}
		ins = append(ins, src.Facts(name)...)
	}
	return s.applyFacts(ins, nil, staged)
}

// DeleteDB removes every fact of src as one logical batch.
func (s *Sharded) DeleteDB(src *db.Database) (store.Change, error) {
	var del []db.Fact
	for _, name := range src.RelationNames() {
		del = append(del, src.Facts(name)...)
	}
	return s.applyFacts(nil, del, nil)
}

// applyFacts partitions a batch by owner shard and applies it. staged
// carries declarations that ride in the same batch (ApplyDB).
func (s *Sharded) applyFacts(ins, del []db.Fact, staged map[string]decl) (store.Change, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.Change{}, store.ErrClosed
	}
	v := s.cur.Load()
	per := make([]shardOps, len(s.shards))
	if staged != nil {
		names := make([]string, 0, len(staged))
		for n := range staged {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := checkDecl(v, staged[n]); err != nil {
				return store.Change{}, err
			}
		}
		for i := range per {
			for _, n := range names {
				per[i].declares = append(per[i].declares, staged[n])
			}
		}
	}
	for _, f := range ins {
		i, err := s.route(f, v, staged)
		if err != nil {
			return store.Change{}, err
		}
		per[i].inserts = append(per[i].inserts, f)
	}
	for _, f := range del {
		i, err := s.route(f, v, staged)
		if err != nil {
			return store.Change{}, err
		}
		per[i].deletes = append(per[i].deletes, f)
	}
	return s.applyBatchLocked(per)
}

// applyBatchLocked applies each shard's slice of the batch and
// publishes one combined view. A multi-shard batch is not crash-atomic
// across shard WALs (each shard commits its slice independently);
// readers of the facade still never observe a partial batch, because
// the view is published once, after every shard has applied.
func (s *Sharded) applyBatchLocked(per []shardOps) (store.Change, error) {
	var agg store.Change
	relSet := make(map[string]bool)
	for i, ops := range per {
		if len(ops.declares) == 0 && len(ops.inserts) == 0 && len(ops.deletes) == 0 {
			continue
		}
		st := s.shards[i]
		for _, d := range ops.declares {
			ch, err := st.Declare(d.rel, d.arity, d.key)
			if err != nil {
				s.publishLocked()
				return store.Change{}, err
			}
			mergeChange(&agg, ch, relSet)
		}
		if len(ops.inserts) > 0 {
			ch, err := st.Insert(ops.inserts...)
			if err != nil {
				s.publishLocked()
				return store.Change{}, err
			}
			mergeChange(&agg, ch, relSet)
		}
		if len(ops.deletes) > 0 {
			ch, err := st.Delete(ops.deletes...)
			if err != nil {
				s.publishLocked()
				return store.Change{}, err
			}
			mergeChange(&agg, ch, relSet)
		}
	}
	v := s.publishLocked()
	agg.Version = v.version
	for r := range relSet {
		agg.Rels = append(agg.Rels, r)
	}
	sort.Strings(agg.Rels)
	if agg.Applied > 0 && s.onApply != nil {
		s.onApply(agg)
	}
	return agg, nil
}

func mergeChange(agg *store.Change, ch store.Change, relSet map[string]bool) {
	agg.Applied += ch.Applied
	for _, r := range ch.Rels {
		relSet[r] = true
	}
	agg.Blocks = append(agg.Blocks, ch.Blocks...)
}

// Stats returns per-shard store stats, in shard order.
func (s *Sharded) Stats() []store.Stats {
	out := make([]store.Stats, len(s.shards))
	for i, st := range s.shards {
		out[i] = st.Stats()
	}
	return out
}

// Checkpoint checkpoints every durable shard.
func (s *Sharded) Checkpoint() error {
	for _, st := range s.shards {
		if err := st.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every shard, returning the first error.
func (s *Sharded) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, st := range s.shards {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
