package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/server"
	"cqa/internal/shard"
)

// cqadBin is built once for the whole package.
var cqadBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "chaostest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cqadBin, err = BuildCqad(dir)
	if err != nil {
		os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// chaosRounds reads the round count from CHAOS_ROUNDS; the default
// keeps `go test ./...` fast, the acceptance run uses 20.
func chaosRounds() int {
	if s := os.Getenv("CHAOS_ROUNDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 2
}

const (
	chaosDB     = "chaos"
	chaosKeys   = 32
	chaosValues = 3
)

// harness drives one topology: client-side shadow, key ownership, and
// the query/validation helpers shared by the chaos and smoke tests.
type harness struct {
	t      *testing.T
	tp     *Topology
	client *http.Client
	shadow *db.Database
	rng    *rand.Rand

	truthMu sync.Mutex
	truth   map[string]bool // memoized per (query, shadow generation)
}

func newHarness(t *testing.T, tp *Topology, seed int64) *harness {
	h := &harness{
		t:      t,
		tp:     tp,
		client: &http.Client{Timeout: 30 * time.Second},
		rng:    rand.New(rand.NewSource(seed)),
		truth:  map[string]bool{},
	}
	var seedFacts strings.Builder
	for i := 0; i < chaosKeys; i++ {
		fmt.Fprintf(&seedFacts, "R(k%d | v%d)\n", i, h.rng.Intn(chaosValues))
		if i%2 == 0 {
			fmt.Fprintf(&seedFacts, "S(k%d | v%d)\n", i, h.rng.Intn(chaosValues))
		}
	}
	shadow, err := parse.Database(seedFacts.String())
	if err != nil {
		t.Fatal(err)
	}
	h.shadow = shadow
	var ack server.DBWriteResponse
	if err := h.post(tp.Router.URL+"/v1/db/create",
		server.DBCreateRequest{Name: chaosDB, Facts: seedFacts.String()}, &ack); err != nil {
		t.Fatalf("creating %s: %v", chaosDB, err)
	}
	return h
}

// owner returns the shard owning key k's blocks. The placement hashes
// key values only, so R(k...) and S(k...) co-locate and every query the
// harness issues touches exactly one shard.
func (h *harness) owner(k int) int {
	return shard.Owner("R", []string{fmt.Sprintf("k%d", k)}, len(h.tp.Shards))
}

// keyOwnedBy returns some key owned by s, and one not owned by s.
func (h *harness) keyOwnedBy(s int) (owned, other int) {
	owned, other = -1, -1
	for k := 0; k < chaosKeys; k++ {
		if h.owner(k) == s {
			if owned < 0 {
				owned = k
			}
		} else if other < 0 {
			other = k
		}
	}
	if owned < 0 || other < 0 {
		h.t.Fatalf("key space does not cover shard %d and its complement", s)
	}
	return owned, other
}

// writeBatch issues n random single-fact writes through the router and
// mirrors them into the shadow. Every shard must be alive.
func (h *harness) writeBatch(n int) {
	h.truthMu.Lock()
	h.truth = map[string]bool{}
	h.truthMu.Unlock()
	for i := 0; i < n; i++ {
		rel := "R"
		if h.rng.Intn(3) == 0 {
			rel = "S"
		}
		fact := db.F(rel, fmt.Sprintf("k%d", h.rng.Intn(chaosKeys)), fmt.Sprintf("v%d", h.rng.Intn(chaosValues)))
		del := h.rng.Intn(3) == 0
		path := "/v1/db/insert"
		if del {
			path = "/v1/db/delete"
		}
		var ack server.DBWriteResponse
		err := h.post(h.tp.Router.URL+path, server.DBWriteRequest{
			Database: chaosDB,
			Facts:    fmt.Sprintf("%s(%s | %s)\n", fact.Rel, fact.Args[0], fact.Args[1]),
		}, &ack)
		if err != nil {
			h.t.Fatalf("write %d: %v", i, err)
		}
		switch {
		case del && h.shadow.Has(fact):
			h.shadow.Remove(fact)
		case !del && !h.shadow.Has(fact):
			h.shadow.MustInsert(fact)
		}
	}
}

// query picks a ground-key query shape for key k.
func (h *harness) query(k int) string {
	switch h.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("R('k%d' | y)", k)
	case 1:
		return fmt.Sprintf("R('k%d' | 'v%d')", k, h.rng.Intn(chaosValues))
	default:
		return fmt.Sprintf("R('k%d' | x), !S('k%d' | x)", k, k)
	}
}

// want computes ground truth for a query on the current shadow. Safe
// for concurrent use (the background readers share the memo).
func (h *harness) want(query string) bool {
	h.truthMu.Lock()
	v, ok := h.truth[query]
	h.truthMu.Unlock()
	if ok {
		return v
	}
	q, err := parse.Query(query)
	if err != nil {
		h.t.Fatalf("bad query %q: %v", query, err)
	}
	v, err = core.Certain(q, h.shadow, core.EngineAuto)
	if err != nil {
		h.t.Fatalf("ground truth for %q: %v", query, err)
	}
	h.truthMu.Lock()
	h.truth[query] = v
	h.truthMu.Unlock()
	return v
}

// ask issues a read through the router. It returns (answer, errCode):
// errCode "" on 200, the structured error code otherwise.
func (h *harness) ask(query string) (bool, string) {
	var out server.CertainResponse
	err := h.post(h.tp.Router.URL+"/v1/certain",
		server.CertainRequest{Query: query, Database: chaosDB}, &out)
	if err == nil {
		return out.Certain, ""
	}
	if se, ok := err.(*statusError); ok && se.code != "" {
		return false, se.code
	}
	return false, "unreachable: " + err.Error()
}

// mustAnswer asserts a query answers 200 with the shadow's answer.
func (h *harness) mustAnswer(query string) {
	h.t.Helper()
	got, code := h.ask(query)
	if code != "" {
		h.t.Fatalf("%q: unexpected error %q", query, code)
	}
	if want := h.want(query); got != want {
		h.t.Fatalf("WRONG ANSWER: %q served %v, shadow says %v", query, got, want)
	}
}

// quiesceFollower waits until the follower's served version matches
// its primary shard's, so replica-preferring reads see the shadow's
// content.
func (h *harness) quiesceFollower() {
	if h.tp.Follower == nil {
		return
	}
	h.t.Helper()
	primary := h.tp.Shards[h.tp.FollowerShard]
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		pv, perr := h.version(primary.URL)
		fv, ferr := h.version(h.tp.Follower.URL)
		if perr == nil && ferr == nil && pv == fv {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	h.t.Fatalf("follower did not catch up with %s within 15s", primary.Name)
}

// version reads a server's served version of the chaos database.
func (h *harness) version(base string) (uint64, error) {
	resp, err := h.client.Get(base + "/v1/db/info")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var info server.DBInfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, err
	}
	for _, d := range info.Databases {
		if d.Name == chaosDB {
			return d.Version, nil
		}
	}
	return 0, fmt.Errorf("%s does not serve %s", base, chaosDB)
}

// statusError carries a structured error body from a non-200 response.
type statusError struct {
	status int
	code   string
	msg    string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s: %s", e.status, e.code, e.msg) }

func (h *harness) post(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := h.client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb server.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Code != "" {
			return &statusError{resp.StatusCode, eb.Error.Code, eb.Error.Message}
		}
		return &statusError{resp.StatusCode, "", string(bytes.TrimSpace(raw))}
	}
	return json.Unmarshal(raw, out)
}

// TestChaosKillRecover is the fault-injection acceptance test: rounds
// of write → quiesce → SIGKILL a random process → assert degraded
// serving is explicit and every served answer is correct → restart →
// assert full recovery. CHAOS_ROUNDS=20 is the acceptance setting.
func TestChaosKillRecover(t *testing.T) {
	dir := t.TempDir()
	tp, err := Boot(BootOptions{
		Bin:      cqadBin,
		Dir:      dir,
		Shards:   4,
		Durable:  true,
		Follower: true,
		// A non-zero shard carries the replica: the failover paths must
		// not depend on the replicated shard being the first one.
		FollowerShard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	h := newHarness(t, tp, 42)
	rounds := chaosRounds()

	for round := 0; round < rounds; round++ {
		h.writeBatch(8)
		h.quiesceFollower()

		// Background readers hammer across the kill window: every 200
		// must match the shadow; errors must be explicit, never wrong.
		stopBg := make(chan struct{})
		var bgWrong []string
		var bgMu sync.Mutex
		var bgWg sync.WaitGroup
		for c := 0; c < 4; c++ {
			bgWg.Add(1)
			go func(c int) {
				defer bgWg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + c)))
				for {
					select {
					case <-stopBg:
						return
					default:
					}
					k := rng.Intn(chaosKeys)
					query := fmt.Sprintf("R('k%d' | 'v%d')", k, rng.Intn(chaosValues))
					got, code := h.ask(query)
					if code == "" && got != h.want(query) {
						bgMu.Lock()
						bgWrong = append(bgWrong, fmt.Sprintf("%q served %v", query, got))
						bgMu.Unlock()
					}
				}
			}(c)
		}

		victimShard := h.rng.Intn(len(tp.Shards) + 1) // len == the follower
		followerDown := victimShard == len(tp.Shards)
		if !followerDown {
			victim := tp.Shards[victimShard]
			t.Logf("round %d: SIGKILL %s", round, victim.Name)
			if err := victim.Kill(); err != nil {
				t.Fatal(err)
			}
			owned, other := h.keyOwnedBy(victimShard)
			// Keys on live shards keep answering exactly.
			h.mustAnswer(h.query(other))
			if victimShard == tp.FollowerShard {
				// The replicated shard: its reads fail over to the
				// follower and must still be exact.
				h.mustAnswer(h.query(owned))
			} else {
				// Unreplicated dead shard: reads touching it degrade to
				// the explicit partial-result error.
				if _, code := h.ask(h.query(owned)); code != "partial_result" {
					t.Fatalf("round %d: read touching dead %s: got %q, want partial_result", round, victim.Name, code)
				}
			}
			// Writes fan out to every shard (schema broadcast), so any
			// dead shard makes writes fail explicitly — partial, named.
			err := h.post(tp.Router.URL+"/v1/db/insert", server.DBWriteRequest{
				Database: chaosDB, Facts: fmt.Sprintf("R(k%d | vX)\n", owned),
			}, &server.DBWriteResponse{})
			if se, ok := err.(*statusError); !ok || se.code != "partial_write" {
				t.Fatalf("round %d: write with dead shard: %v, want partial_write", round, err)
			}
			// Restart: the shard recovers from its own WAL and rejoins
			// (the router holds no state — pure hashing).
			if err := victim.Start(); err != nil {
				t.Fatal(err)
			}
			if err := victim.WaitHealthy(10 * time.Second); err != nil {
				t.Fatal(err)
			}
		} else {
			t.Logf("round %d: SIGKILL follower (cut the WAL stream)", round)
			if err := tp.Follower.Kill(); err != nil {
				t.Fatal(err)
			}
			// Replica-preferring reads fall back to the primary.
			owned, _ := h.keyOwnedBy(tp.FollowerShard)
			h.mustAnswer(h.query(owned))
		}

		// The background check compares every 200 against the *latest*
		// shadow, which is only sound while replica reads are quiesced:
		// a follower mid-bootstrap serves a consistent but stale
		// version. So the readers cover the kill window, and the
		// follower restarts only after they stop; its catch-up is
		// validated by the quiesced sweep below.
		close(stopBg)
		bgWg.Wait()
		if len(bgWrong) > 0 {
			t.Fatalf("round %d: %d wrong background answer(s): %s", round, len(bgWrong), bgWrong[0])
		}
		if followerDown {
			if err := tp.Follower.Start(); err != nil {
				t.Fatal(err)
			}
			if err := tp.Follower.WaitHealthy(10 * time.Second); err != nil {
				t.Fatal(err)
			}
		}

		// Full recovery: every key answers exactly through the router.
		h.quiesceFollower()
		for k := 0; k < chaosKeys; k++ {
			h.mustAnswer(h.query(k))
		}
	}
}

// TestShardSmoke is the thin `make shard-smoke` cycle: boot a 4-shard
// topology, serve, SIGKILL one shard, verify explicit degradation,
// restart it, verify recovered serving.
func TestShardSmoke(t *testing.T) {
	dir := t.TempDir()
	tp, err := Boot(BootOptions{Bin: cqadBin, Dir: dir, Shards: 4, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	h := newHarness(t, tp, 7)
	h.writeBatch(6)
	for k := 0; k < chaosKeys; k += 5 {
		h.mustAnswer(h.query(k))
	}

	victim := 1
	owned, other := h.keyOwnedBy(victim)
	if err := tp.Shards[victim].Kill(); err != nil {
		t.Fatal(err)
	}
	h.mustAnswer(h.query(other))
	if _, code := h.ask(h.query(owned)); code != "partial_result" {
		t.Fatalf("read touching dead shard: got %q, want partial_result", code)
	}
	if err := tp.Shards[victim].Start(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Shards[victim].WaitHealthy(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.mustAnswer(h.query(owned))
	h.writeBatch(4)
	for k := 0; k < chaosKeys; k++ {
		h.mustAnswer(h.query(k))
	}
}
