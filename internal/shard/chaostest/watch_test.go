package chaostest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/parse"
	"cqa/internal/server"
)

// watchCollector keeps one router /v1/watch stream alive across shard
// kills, recording every frame. It reconnects with the last seen
// version as the resume watermark, exactly like a production consumer.
type watchCollector struct {
	mu         sync.Mutex
	frames     []server.WatchEvent
	maxVersion uint64
	verdict    bool // settled by state/flip frames
	started    bool

	cancel context.CancelFunc
	done   chan struct{}
}

func startWatchCollector(baseURL, database, query string) *watchCollector {
	ctx, cancel := context.WithCancel(context.Background())
	wc := &watchCollector{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(wc.done)
		client := &http.Client{}
		for ctx.Err() == nil {
			wc.streamOnce(ctx, client, baseURL, database, query)
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
	}()
	return wc
}

func (wc *watchCollector) streamOnce(ctx context.Context, client *http.Client, baseURL, database, query string) {
	wc.mu.Lock()
	from := wc.maxVersion
	wc.mu.Unlock()
	body, _ := json.Marshal(server.WatchRequest{Database: database, Query: query, From: from})
	req, err := http.NewRequestWithContext(ctx, "POST", baseURL+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		ev, err := server.ParseWatchEvent(sc.Bytes())
		if err != nil {
			return
		}
		wc.mu.Lock()
		wc.frames = append(wc.frames, ev)
		if ev.Version > wc.maxVersion {
			wc.maxVersion = ev.Version
		}
		if ev.Type == server.WatchEventState || ev.Type == server.WatchEventFlip {
			wc.verdict = ev.Verdict
			wc.started = true
		}
		wc.mu.Unlock()
	}
}

func (wc *watchCollector) state() (uint64, bool, bool) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.maxVersion, wc.verdict, wc.started
}

func (wc *watchCollector) stop() []server.WatchEvent {
	wc.cancel()
	<-wc.done
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.frames
}

// TestChaosWatchResume SIGKILLs the shard owning a watched key while a
// router /v1/watch stream is live: the stream must keep its last
// settled state (heartbeats), resume when the shard recovers from its
// WAL, and deliver every subsequent flip — with no flip missed and
// none fabricated, checked frame-by-frame against a version-keyed
// client shadow.
func TestChaosWatchResume(t *testing.T) {
	dir := t.TempDir()
	tp, err := Boot(BootOptions{
		Bin:           cqadBin,
		Dir:           dir,
		Shards:        4,
		Durable:       true,
		Follower:      true,
		FollowerShard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	h := newHarness(t, tp, 99)

	// The victim must be unreplicated, so the stream genuinely breaks.
	victim := 0
	for victim == tp.FollowerShard {
		victim++
	}
	key, _ := h.keyOwnedBy(victim)
	watchQuery := fmt.Sprintf("R('k%d' | 'v0')", key)
	q, err := parse.Query(watchQuery)
	if err != nil {
		t.Fatal(err)
	}

	// truth maps every acknowledged global version to the watched
	// query's shadow verdict at that version.
	truth := make(map[uint64]bool)
	record := func(version uint64) {
		want, err := core.Certain(q, h.shadow, core.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		truth[version] = want
	}
	write := func(rel, key, val string, del bool) uint64 {
		t.Helper()
		path := "/v1/db/insert"
		if del {
			path = "/v1/db/delete"
		}
		var ack server.DBWriteResponse
		err := h.post(tp.Router.URL+path, server.DBWriteRequest{
			Database: chaosDB,
			Facts:    fmt.Sprintf("%s(%s | %s)\n", rel, key, val),
		}, &ack)
		if err != nil {
			t.Fatalf("write %s(%s|%s): %v", rel, key, val, err)
		}
		f := db.F(rel, key, val)
		switch {
		case del && h.shadow.Has(f):
			h.shadow.Remove(f)
		case !del && !h.shadow.Has(f):
			h.shadow.MustInsert(f)
		}
		record(ack.Version)
		return ack.Version
	}

	// Normalize the watched block to exactly {R(k|v0)} so the flip
	// writes below toggle the verdict deterministically.
	kstr := fmt.Sprintf("k%d", key)
	write("R", kstr, "v0", false)
	for v := 1; v < chaosValues; v++ {
		write("R", kstr, fmt.Sprintf("v%d", v), true)
	}
	baseVersion, err := h.version(tp.Router.URL)
	if err != nil {
		t.Fatal(err)
	}
	record(baseVersion)

	wc := startWatchCollector(tp.Router.URL, chaosDB, watchQuery)
	defer wc.stop()
	waitFor := func(version uint64, verdict bool, what string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			v, got, started := wc.state()
			if started && v >= version && got == verdict {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: stream at v%d verdict %v, want v%d verdict %v", what, v, got, version, verdict)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	waitFor(baseVersion, truth[baseVersion], "header")

	// flipWrite toggles R(k|v1): present makes the verdict false,
	// absent makes it true (the block is otherwise exactly {v0}).
	present := false
	flipWrite := func() uint64 {
		v := write("R", kstr, "v1", present)
		present = !present
		return v
	}
	for i := 0; i < 3; i++ {
		v := flipWrite()
		waitFor(v, truth[v], "pre-kill flip")
	}

	killVersion, _, _ := wc.state()
	t.Logf("SIGKILL %s mid-stream at v%d", tp.Shards[victim].Name, killVersion)
	if err := tp.Shards[victim].Kill(); err != nil {
		t.Fatal(err)
	}
	// The stream must hold its settled state while the shard is down —
	// no fabricated flips from the broken shard stream.
	time.Sleep(1 * time.Second)
	if _, got, _ := wc.state(); got != truth[killVersion] {
		t.Fatalf("stream verdict drifted to %v while %s was down", got, tp.Shards[victim].Name)
	}
	if err := tp.Shards[victim].Start(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Shards[victim].WaitHealthy(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var finalVersion uint64
	for i := 0; i < 3; i++ {
		finalVersion = flipWrite()
		waitFor(finalVersion, truth[finalVersion], "post-restart flip")
	}

	frames := wc.stop()
	validateWatchFrames(t, frames, truth, finalVersion, killVersion)
}

// validateWatchFrames is the exactness check: every frame's verdict
// must match the shadow at the frame's version, flips must chain, and
// every truth change between consecutive baselines must be covered.
func validateWatchFrames(t *testing.T, frames []server.WatchEvent, truth map[uint64]bool, finalVersion, killVersion uint64) {
	t.Helper()
	versions := make([]uint64, 0, len(truth))
	for v := range truth {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	between := func(lo, hi uint64, verdict bool) error {
		i := sort.Search(len(versions), func(i int) bool { return versions[i] > lo })
		for ; i < len(versions) && versions[i] < hi; i++ {
			if truth[versions[i]] != verdict {
				return fmt.Errorf("verdict flipped at v%d but no flip frame covers it", versions[i])
			}
		}
		return nil
	}

	var lastVerdict bool
	var lastVersion uint64
	started := false
	flips, postRestartFlips := 0, 0
	for fi, ev := range frames {
		want, ok := truth[ev.Version]
		if !ok {
			t.Fatalf("frame %d (%+v): version %d was never acknowledged", fi, ev, ev.Version)
		}
		switch ev.Type {
		case server.WatchEventState:
			if ev.Verdict != want {
				t.Fatalf("frame %d (%+v): state verdict %v, shadow says %v", fi, ev, ev.Verdict, want)
			}
			lastVerdict, lastVersion, started = ev.Verdict, ev.Version, true
		case server.WatchEventHeartbeat:
			if ev.Verdict != want {
				t.Fatalf("frame %d (%+v): heartbeat verdict %v, shadow says %v", fi, ev, ev.Verdict, want)
			}
		case server.WatchEventFlip:
			if !started {
				t.Fatalf("frame %d (%+v): flip before the header state", fi, ev)
			}
			if *ev.From != lastVerdict {
				t.Fatalf("frame %d (%+v): flip from %v, stream settled on %v — a flip was missed", fi, ev, *ev.From, lastVerdict)
			}
			if ev.Verdict != want {
				t.Fatalf("frame %d (%+v): FABRICATED FLIP: to %v, shadow says %v", fi, ev, ev.Verdict, want)
			}
			if err := between(lastVersion, ev.Version, lastVerdict); err != nil {
				t.Fatalf("frame %d (%+v): %v", fi, ev, err)
			}
			flips++
			if ev.Version > killVersion {
				postRestartFlips++
			}
			lastVerdict, lastVersion = ev.Verdict, ev.Version
		}
	}
	if !started {
		t.Fatal("stream delivered no state frame")
	}
	if err := between(lastVersion, finalVersion, lastVerdict); err != nil {
		t.Fatalf("tail: %v", err)
	}
	if lastVersion < finalVersion && truth[finalVersion] != lastVerdict {
		t.Fatalf("final verdict %v at v%d never pushed (stream settled on %v)", truth[finalVersion], finalVersion, lastVerdict)
	}
	if flips < 4 {
		t.Fatalf("expected at least 4 flip frames across 6 flip writes, got %d", flips)
	}
	if postRestartFlips == 0 {
		t.Fatal("no flip frame after the shard restart: the stream did not resume")
	}
}
