package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"cqa/internal/metrics"
	"cqa/internal/obs"
	"cqa/internal/server"
)

// postTraced posts body with a caller-chosen trace ID (join semantics:
// the server always records it) and returns the structured error code
// ("" on 200) plus the echoed trace header.
func (h *harness) postTraced(url, traceID string, body, out any) (code, echoed string) {
	h.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := h.client.Do(req)
	if err != nil {
		h.t.Fatalf("traced post: %v", err)
	}
	defer resp.Body.Close()
	echoed = resp.Header.Get(obs.TraceHeader)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb server.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Code != "" {
			return eb.Error.Code, echoed
		}
		return fmt.Sprintf("status %d", resp.StatusCode), echoed
	}
	if err := json.Unmarshal(raw, out); err != nil {
		h.t.Fatal(err)
	}
	return "", echoed
}

// trace fetches one trace by ID from a server's /debug/traces.
func (h *harness) trace(base, id string) *obs.TraceView {
	h.t.Helper()
	resp, err := h.client.Get(base + "/debug/traces?id=" + id)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		h.t.Fatal(err)
	}
	if len(doc.Traces) == 0 {
		return nil
	}
	return &doc.Traces[0]
}

// scrape parses a server's /metrics Prometheus exposition.
func (h *harness) scrape(base string) *metrics.PromExposition {
	h.t.Helper()
	resp, err := h.client.Get(base + "/metrics")
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := metrics.LintPrometheus(string(raw)); err != nil {
		h.t.Fatalf("%s/metrics does not lint: %v", base, err)
	}
	exp, err := metrics.ParsePrometheus(string(raw))
	if err != nil {
		h.t.Fatal(err)
	}
	return exp
}

func spanAttr(sp obs.SpanView, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestObsKillCoherence asserts the observability plane tells the truth
// under fault injection: a read that dies against a SIGKILLed shard
// leaves a trace whose rpc span names the dead shard and carries the
// error, the router's partial_result_total counter moves, and once the
// topology recovers the follower's replication-lag gauge reads zero.
func TestObsKillCoherence(t *testing.T) {
	dir := t.TempDir()
	tp, err := Boot(BootOptions{
		Bin:      cqadBin,
		Dir:      dir,
		Shards:   4,
		Durable:  true,
		Follower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	h := newHarness(t, tp, 11)
	h.writeBatch(6)
	h.quiesceFollower()

	// An unreplicated shard, so its death degrades reads explicitly.
	const victim = 1
	owned, _ := h.keyOwnedBy(victim)
	query := fmt.Sprintf("R('k%d' | 'v0')", owned)

	// Healthy baseline: the pinned read's trace shows a clean rpc to the
	// owner shard, and the shard records spans under the same ID.
	var out server.CertainResponse
	code, echoed := h.postTraced(tp.Router.URL+"/v1/certain", "obs-ok", server.CertainRequest{
		Query: query, Database: chaosDB,
	}, &out)
	if code != "" {
		t.Fatalf("healthy traced read failed: %s", code)
	}
	if echoed != "obs-ok" {
		t.Fatalf("response header names trace %q, want obs-ok", echoed)
	}
	tr := h.trace(tp.Router.URL, "obs-ok")
	if tr == nil {
		t.Fatal("router has no trace obs-ok")
	}
	foundOK := false
	for _, sp := range tr.Spans {
		if sp.Name == "rpc" && spanAttr(sp, "shard") == fmt.Sprint(victim) && sp.Error == "" {
			foundOK = true
		}
	}
	if !foundOK {
		t.Fatalf("healthy trace has no clean rpc span for shard %d: %+v", victim, tr.Spans)
	}
	if str := h.trace(tp.Shards[victim].URL, "obs-ok"); str == nil {
		t.Fatalf("shard %d did not join trace obs-ok", victim)
	}

	before, _ := h.scrape(tp.Router.URL).Value("partial_result_total")

	if err := tp.Shards[victim].Kill(); err != nil {
		t.Fatal(err)
	}
	code, echoed = h.postTraced(tp.Router.URL+"/v1/certain", "obs-kill", server.CertainRequest{
		Query: query, Database: chaosDB,
	}, &out)
	if code != "partial_result" {
		t.Fatalf("read against dead shard: got %q, want partial_result", code)
	}
	if echoed != "obs-kill" {
		t.Fatalf("degraded response names trace %q, want obs-kill", echoed)
	}

	tr = h.trace(tp.Router.URL, "obs-kill")
	if tr == nil {
		t.Fatal("router has no trace obs-kill")
	}
	foundErr := false
	for _, sp := range tr.Spans {
		if sp.Name == "rpc" && spanAttr(sp, "shard") == fmt.Sprint(victim) && sp.Error != "" {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatalf("degraded trace has no failed rpc span for shard %d: %+v", victim, tr.Spans)
	}

	after, ok := h.scrape(tp.Router.URL).Value("partial_result_total")
	if !ok || after < before+1 {
		t.Fatalf("partial_result_total = %g (was %g), want an increment", after, before)
	}
	if n, ok := h.scrape(tp.Router.URL).Value("shard_rpc_total",
		"shard", fmt.Sprint(victim), "outcome", "error"); !ok || n < 1 {
		t.Fatalf("shard_rpc_total{shard=%d,outcome=error} = %g, want ≥ 1", victim, n)
	}

	if err := tp.Shards[victim].Start(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Shards[victim].WaitHealthy(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.writeBatch(4)
	h.quiesceFollower()

	// Recovery clears the replication-lag gauge: the follower's next
	// discovery tick compares its applied version against the primary's
	// topology and must land on zero.
	deadline := time.Now().Add(20 * time.Second)
	for {
		lag, ok := h.scrape(tp.Follower.URL).Value("follower_lag_versions", "db", chaosDB)
		if ok && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower_lag_versions{db=%s} = %g (present=%v), want 0 after recovery", chaosDB, lag, ok)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The recovered shard answers the same pinned read exactly again.
	h.mustAnswer(query)
}
